GO ?= go
BENCH_COUNT ?= 1

.PHONY: check vet build test race benchbuild bench

## check: everything CI runs — vet, build, tests, the race detector over
## the concurrency-critical packages, and a compile+link of every
## benchmark binary (run with zero iterations) so bench-only code can't
## rot between bench runs.
check: vet build test race benchbuild

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/storage ./internal/wal ./internal/latch ./internal/core ./internal/lock ./internal/txn

benchbuild:
	$(GO) test -run '^$$' -bench '^$$' ./... >/dev/null

## bench: all microbenchmarks with allocation stats (root experiment
## benchmarks plus the lock/txn/wal substrate benchmarks). Set
## BENCH_COUNT>1 for variance estimates.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s -count $(BENCH_COUNT) ./...
