GO ?= go
BENCH_COUNT ?= 1
TORTURE_ROUNDS ?= 24
TORTURE_SEED ?= 7
REAL_ROUNDS ?= 20

.PHONY: check vet build test race benchbuild expbuild bench torture realcrash churn

## check: everything CI runs — vet, build, tests, the race detector over
## the concurrency-critical packages (including the commit-pipeline and
## early-lock-release tests in internal/wal and internal/txn), a
## compile+link of every benchmark binary (run with zero iterations) so
## bench-only code can't rot between bench runs, a compile+link of the
## experiment runner (T20 and friends live outside _test files), a short
## seeded fault-injection torture run, the real-crash (SIGKILL) recovery
## gate over real files, and the sustained-churn steady-state gate.
check: vet build test race benchbuild expbuild torture realcrash churn

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/storage ./internal/wal ./internal/latch ./internal/core ./internal/lock ./internal/txn ./internal/tsb ./internal/spatial ./internal/recovery ./internal/engine ./internal/maint

benchbuild:
	$(GO) test -run '^$$' -bench '^$$' ./... >/dev/null

## expbuild: compile+link the experiment runner so the T20 vectorized-
## paths experiment (and the rest of internal/bench) can't rot: experiments
## are plain package code, not _test files, so `test` alone won't catch
## a broken one until the next full bench run.
expbuild:
	$(GO) build -o /dev/null ./cmd/pitree-bench

## torture: seeded crash-point fault-injection rounds across all three
## access methods. Failures print the reproducing seed and failpoint.
torture:
	$(GO) run ./cmd/pitree-verify -torture -rounds $(TORTURE_ROUNDS) -seed $(TORTURE_SEED)

## realcrash: each round runs a seeded workload in a forked child
## against real WAL segments and page files, SIGKILLs it at a seeded
## moment, then recovers in the parent and audits the streamed ack
## oracle: acked commits durable, no ghosts, space map exact.
realcrash:
	$(GO) run ./cmd/pitree-verify -torture -real -rounds $(REAL_ROUNDS) -seed $(TORTURE_SEED)

## churn: sustained-churn steady-state gate — a rolling key window turned
## over repeatedly must leave the store size flat with pages recycled.
churn:
	$(GO) run ./cmd/pitree-verify -churn

## bench: all microbenchmarks with allocation stats (root experiment
## benchmarks plus the lock/txn/wal substrate benchmarks). Set
## BENCH_COUNT>1 for variance estimates. -cpu 1,4 runs the traversal
## micro-benchmarks both uncontended and parallel; read 1-CPU numbers
## with the caveat in bench_test.go.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1s -cpu 1,4 -count $(BENCH_COUNT) ./...
