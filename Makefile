GO ?= go

.PHONY: check vet build test race bench

## check: everything CI runs — vet, build, tests, and the race detector
## over the concurrency-critical packages.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/storage ./internal/wal ./internal/latch ./internal/core

## bench: root microbenchmarks (WAL append, pool fetch, tree ops).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1s .
