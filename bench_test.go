// Package repro's root test file holds the testing.B benchmarks, one per
// experiment table/figure (see DESIGN.md §3 and EXPERIMENTS.md). The
// cmd/pitree-bench binary prints the full parameter sweeps; these
// benchmarks expose the same code paths to `go test -bench`.
package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
	"repro/internal/spatial"
	"repro/internal/storage"
	"repro/internal/tsb"
	"repro/internal/wal"
)

const benchPreload = 20000

func methods(capacity int) []bench.Method { return bench.AllMethods() }

// BenchmarkT1SearchScaling: table T1 / figure F1 — parallel search
// throughput per method (parallelism = GOMAXPROCS).
func BenchmarkT1SearchScaling(b *testing.B) {
	for _, m := range bench.AllMethods() {
		b.Run(m.Name, func(b *testing.B) {
			kv, closer := m.New(64)
			defer closer()
			bench.Preload(kv, benchPreload)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := (seq.Add(1) * 2654435761) % benchPreload
					kv.Search(keys.Uint64(k * 2))
				}
			})
		})
	}
}

// BenchmarkT2MixedScaling: table T2 — 50/50 search/insert.
func BenchmarkT2MixedScaling(b *testing.B) {
	for _, m := range bench.AllMethods() {
		b.Run(m.Name, func(b *testing.B) {
			kv, closer := m.New(64)
			defer closer()
			bench.Preload(kv, benchPreload)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					if n%2 == 0 {
						kv.Search(keys.Uint64((n * 2654435761 % benchPreload) * 2))
					} else {
						kv.Insert(keys.Uint64(uint64(benchPreload)*2+n*2+1), []byte("w"))
					}
				}
			})
		})
	}
}

// BenchmarkT3SMORate: table T3 / figure F2 — insert-only throughput as
// capacity shrinks (split rate rises).
func BenchmarkT3SMORate(b *testing.B) {
	for _, capacity := range []int{128, 32, 8} {
		for _, m := range bench.AllMethods() {
			b.Run(fmt.Sprintf("%s/cap%d", m.Name, capacity), func(b *testing.B) {
				kv, closer := m.New(capacity)
				defer closer()
				var seq atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						kv.Insert(keys.Uint64(seq.Add(1)), []byte("w"))
					}
				})
			})
		}
	}
}

// BenchmarkT6LatchHold: table T6 — cost of an insert including its share
// of short index-level atomic actions.
func BenchmarkT6LatchHold(b *testing.B) {
	pi := bench.NewPiTree(engine.Options{}, core.Options{LeafCapacity: 32, IndexCapacity: 32, Consolidation: true})
	defer pi.Close()
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pi.Insert(keys.Uint64(seq.Add(1)), []byte("v"))
		}
	})
}

// BenchmarkT7MoveLocks: table T7 — transactional inserts under both undo
// regimes.
func BenchmarkT7MoveLocks(b *testing.B) {
	for _, rg := range []struct {
		name string
		e    engine.Options
	}{{"logical", engine.Options{}}, {"page-oriented", engine.Options{PageOriented: true}}} {
		b.Run(rg.name, func(b *testing.B) {
			pi := bench.NewPiTree(rg.e, core.Options{LeafCapacity: 16, IndexCapacity: 16, Consolidation: true})
			defer pi.Close()
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					tx := pi.E.TM.Begin()
					k := seq.Add(1)
					if err := pi.T.Insert(tx, keys.Uint64(k), []byte("v")); err != nil {
						_ = tx.Abort()
						continue
					}
					_ = tx.Commit()
				}
			})
		})
	}
}

// BenchmarkT8Invariants: table T8 — mixed workload under each invariant
// regime.
func BenchmarkT8Invariants(b *testing.B) {
	for _, rg := range []struct {
		name string
		opts core.Options
	}{
		{"CNS", core.Options{Consolidation: false}},
		{"CP-dealloc-a", core.Options{Consolidation: true}},
		{"CP-dealloc-b", core.Options{Consolidation: true, DeallocIsUpdate: true}},
	} {
		b.Run(rg.name, func(b *testing.B) {
			opts := rg.opts
			opts.LeafCapacity = 32
			opts.IndexCapacity = 32
			pi := bench.NewPiTree(engine.Options{}, opts)
			defer pi.Close()
			bench.Preload(pi, benchPreload/2)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					k := keys.Uint64((n % uint64(benchPreload/2)) * 2)
					switch n % 4 {
					case 0:
						_ = pi.T.Delete(nil, k)
					case 1:
						_ = pi.T.Insert(nil, k, []byte("re"))
					default:
						_, _, _ = pi.T.Search(nil, k)
					}
				}
			})
		})
	}
}

// BenchmarkT9SavedPath: table T9 — posting cost with saved paths, via
// insert streams that constantly split.
func BenchmarkT9SavedPath(b *testing.B) {
	for _, rg := range []struct {
		name string
		opts core.Options
	}{
		{"CNS-trusted-path", core.Options{Consolidation: false}},
		{"CP-root-retraversal", core.Options{Consolidation: true}},
		{"CP-stateid-verified", core.Options{Consolidation: true, DeallocIsUpdate: true}},
	} {
		b.Run(rg.name, func(b *testing.B) {
			opts := rg.opts
			opts.LeafCapacity = 16
			opts.IndexCapacity = 16
			pi := bench.NewPiTree(engine.Options{}, opts)
			defer pi.Close()
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					pi.Insert(keys.Uint64(seq.Add(1)), []byte("v"))
				}
			})
		})
	}
}

// BenchmarkT10TSB: table T10 — current vs as-of reads on a versioned
// history.
func BenchmarkT10TSB(b *testing.B) {
	e := engine.New(engine.Options{})
	bd := tsb.Register(e.Reg)
	st := e.AddStore(1, tsb.Codec{})
	tree, err := tsb.Create(st, e.TM, e.Locks, bd, "b10", tsb.Options{DataCapacity: 32, IndexCapacity: 32, SyncCompletion: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tree.Close()
	const nKeys = 1000
	var mid uint64
	for v := 0; v < 8; v++ {
		for k := 0; k < nKeys; k++ {
			if err := tree.Put(nil, keys.Uint64(uint64(k)), []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		if v == 4 {
			mid = tree.Now()
		}
		tree.DrainCompletions()
	}
	b.Run("current", func(b *testing.B) {
		now := tree.Now()
		for i := 0; i < b.N; i++ {
			_, _, _ = tree.GetAsOf(nil, keys.Uint64(uint64(i%nKeys)), now)
		}
	})
	b.Run("as-of-mid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _, _ = tree.GetAsOf(nil, keys.Uint64(uint64(i%nKeys)), mid)
		}
	})
}

// BenchmarkT11Spatial: table T11 — point inserts and region queries on
// the multi-attribute tree.
func BenchmarkT11Spatial(b *testing.B) {
	e := engine.New(engine.Options{})
	bd := spatial.Register(e.Reg)
	st := e.AddStore(1, spatial.Codec{})
	tree, err := spatial.Create(st, e.TM, e.Locks, bd, "b11", spatial.Options{DataCapacity: 32, IndexCapacity: 16, SyncCompletion: true})
	if err != nil {
		b.Fatal(err)
	}
	defer tree.Close()
	rng := uint64(88172645463325252)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := spatial.Point{X: next() % spatial.MaxCoord, Y: next() % spatial.MaxCoord}
			_ = tree.Insert(nil, p, []byte("v"))
		}
	})
	tree.DrainCompletions()
	b.Run("region-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := next() % (spatial.MaxCoord / 2)
			y := next() % (spatial.MaxCoord / 2)
			q := spatial.Rect{X0: x, Y0: y, X1: x + spatial.MaxCoord/32, Y1: y + spatial.MaxCoord/32}
			_ = tree.RegionQuery(q, func(spatial.Point, []byte) bool { return true })
		}
	})
}

// BenchmarkT12Recovery: table T12 — restart cost for a 10k-insert log.
func BenchmarkT12Recovery(b *testing.B) {
	build := func() *engine.CrashImage {
		e := engine.New(engine.Options{})
		bd := core.Register(e.Reg, false)
		st := e.AddStore(1, core.Codec{})
		tree, err := core.Create(st, e.TM, e.Locks, bd, "b12", core.Options{LeafCapacity: 32, IndexCapacity: 32, Consolidation: true, SyncCompletion: true})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			_ = tree.Insert(nil, keys.Uint64(uint64(i)), []byte("v"))
		}
		tree.DrainCompletions()
		e.Log.ForceAll()
		tree.Close()
		return e.Crash(nil)
	}
	img := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e2 := engine.Restarted(img, engine.Options{})
		core.Register(e2.Reg, false)
		e2.AttachStore(1, core.Codec{}, img.Disks[1].Snapshot())
		if _, err := e2.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCodec stores raw byte slices as pages (storage-substrate
// microbenchmarks only).
type benchCodec struct{}

func (benchCodec) EncodePage(v any) ([]byte, error) { return append([]byte(nil), v.([]byte)...), nil }
func (benchCodec) DecodePage(b []byte) (any, error) { return append([]byte(nil), b...), nil }

// BenchmarkWALAppendParallel measures raw log-append throughput with all
// workers appending small update records concurrently, plus a variant
// where every 64th append forces the log (group commit). The *-disarmed
// variants attach a fault injector with no armed failpoints: their delta
// against the plain variants is the cost of the always-compiled-in
// fault probes on the log's hot path (expected to be noise).
func BenchmarkWALAppendParallel(b *testing.B) {
	payload := make([]byte, 64)
	for _, v := range []struct {
		name string
		inj  *fault.Injector
	}{{"append", nil}, {"append-disarmed", fault.New(1)}} {
		b.Run(v.name, func(b *testing.B) {
			l := wal.New()
			l.SetInjector(v.inj)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Append(&wal.Record{Type: wal.RecUpdate, TxnID: 1, StoreID: 1, PageID: 2, Payload: payload})
				}
			})
		})
	}
	for _, v := range []struct {
		name string
		inj  *fault.Injector
	}{{"append-force64", nil}, {"append-force64-disarmed", fault.New(1)}} {
		b.Run(v.name, func(b *testing.B) {
			l := wal.New()
			l.SetInjector(v.inj)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				n := 0
				for pb.Next() {
					lsn := l.Append(&wal.Record{Type: wal.RecUpdate, TxnID: 1, StoreID: 1, PageID: 2, Payload: payload})
					if n++; n%64 == 0 {
						if err := l.Force(lsn); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
	// Every append is a "commit" demanding durability before returning:
	// the worst case for a force-per-commit scheme and the best case for
	// group commit. forces/op shows the coalescing factor.
	b.Run("append-groupcommit", func(b *testing.B) {
		l := wal.New()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				lsn := l.Append(&wal.Record{Type: wal.RecCommit, TxnID: 1, Payload: payload})
				l.ForceGroup(lsn)
			}
		})
		_, flushes := l.Stats()
		b.ReportMetric(float64(flushes)/float64(b.N), "forces/op")
	})
}

// BenchmarkPoolFetchParallel measures Fetch/Unpin throughput against a
// preloaded store: unbounded (pure hit path), bounded with the working
// set resident (hit path + replacement bookkeeping), and bounded with a
// working set 4x capacity (eviction + reload churn).
func BenchmarkPoolFetchParallel(b *testing.B) {
	const nPages = 1024
	build := func() storage.Disk {
		log := wal.New()
		p := storage.NewPool(1, storage.NewDisk(), log, benchCodec{}, 0)
		for i := 0; i < nPages; i++ {
			pid := storage.PageID(2 + i)
			f, err := p.Create(pid)
			if err != nil {
				b.Fatal(err)
			}
			f.Latch.AcquireX()
			f.Data = []byte{byte(i)}
			lsn := log.Append(&wal.Record{Type: wal.RecUpdate, StoreID: 1, PageID: uint64(pid)})
			f.MarkDirty(lsn)
			f.Latch.ReleaseX()
			p.Unpin(f)
		}
		if _, err := p.FlushAll(); err != nil {
			b.Fatal(err)
		}
		return p.Disk()
	}
	disk := build()
	// The *-disarmed variants route every disk access through a
	// FaultyDisk carrying an injector with nothing armed, and attach the
	// same injector to the pool's eviction failpoint: the delta against
	// the plain variants is the full disarmed probe cost on the
	// fetch/evict hot path.
	for _, cfg := range []struct {
		name string
		cap  int
		inj  *fault.Injector
	}{
		{"unbounded", 0, nil},
		{"bounded-resident", nPages * 2, nil},
		{"bounded-thrash", nPages / 4, nil},
		{"bounded-thrash-disarmed", nPages / 4, fault.New(1)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			d := disk
			if cfg.inj != nil {
				d = storage.NewFaultyDisk(disk, cfg.inj)
			}
			p := storage.NewPool(1, d, wal.New(), benchCodec{}, cfg.cap)
			p.SetInjector(cfg.inj)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					pid := storage.PageID(2 + (seq.Add(1)*2654435761)%nPages)
					f, err := p.Fetch(pid)
					if err != nil {
						b.Error(err)
						return
					}
					p.Unpin(f)
				}
			})
		})
	}
}

// BenchmarkBaselineSanity pins the baseline trees' single-thread insert
// cost so regressions in the comparators are visible too.
func BenchmarkBaselineSanity(b *testing.B) {
	for _, kv := range []baseline.KV{
		baseline.NewSubtreeLatch(64),
		baseline.NewSerialSMO(64),
		baseline.NewGlobalLock(64),
	} {
		b.Run(kv.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kv.Insert(keys.Uint64(uint64(i)), []byte("v"))
			}
		})
	}
}
