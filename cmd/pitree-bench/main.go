// Command pitree-bench regenerates the experiment tables and figure
// series of DESIGN.md / EXPERIMENTS.md.
//
// Usage:
//
//	pitree-bench                 # run every experiment
//	pitree-bench -exp T1,T4,T10  # run a subset
//	pitree-bench -quick          # smaller sizes (default true)
//	pitree-bench -full           # larger sizes for stabler numbers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (T1..T20, F1, F2) or 'all'")
	full := flag.Bool("full", false, "larger workload sizes (slower, stabler numbers)")
	jsonPath := flag.String("json", "", "also write machine-readable metrics to this file")
	flag.Parse()

	p := bench.Quick()
	if *full {
		p.Preload = 200_000
		p.OpsPerThread = 100_000
		p.Threads = []int{1, 2, 4, 8, 16, 32}
	}
	if *jsonPath != "" {
		p.Report = &bench.Report{}
	}

	runners := []struct {
		id  string
		fn  func()
		doc string
	}{
		{"T1", func() { bench.T1SearchScaling(os.Stdout, p) }, "search scaling vs baselines"},
		{"T2", func() { bench.T2MixedScaling(os.Stdout, p) }, "mixed scaling vs baselines"},
		{"F1", func() { bench.F1Figure(os.Stdout, p) }, "throughput curves (CSV)"},
		{"T3", func() { bench.T3SMORate(os.Stdout, p) }, "decomposed vs serial SMOs"},
		{"F2", func() { bench.F2Crossover(os.Stdout, p) }, "SMO-rate crossover (CSV)"},
		{"T4", func() { bench.T4CrashMatrix(os.Stdout, p) }, "crash at every log boundary"},
		{"T5", func() { bench.T5LazyCompletion(os.Stdout, p) }, "lazy completion after crash"},
		{"T6", func() { bench.T6LatchHold(os.Stdout, p) }, "index latch hold times"},
		{"T7", func() { bench.T7MoveLocks(os.Stdout, p) }, "move locks: page vs logical undo"},
		{"T8", func() { bench.T8Invariants(os.Stdout, p) }, "CNS vs CP regimes"},
		{"T9", func() { bench.T9SavedPath(os.Stdout, p) }, "saved-path verification"},
		{"T10", func() { bench.T10TSB(os.Stdout, p) }, "TSB-tree time splits"},
		{"T11", func() { bench.T11Spatial(os.Stdout, p) }, "multi-attribute clipping"},
		{"T12", func() { bench.T12Recovery(os.Stdout, p) }, "recovery & relative durability"},
		{"T13", func() { bench.T13GroupCommit(os.Stdout, p) }, "group commit: forces per commit"},
		{"T15", func() { bench.T15ParallelRestart(os.Stdout, p) }, "parallel restart: log x dirty pages x workers"},
		{"T16", func() { bench.T16SnapshotReads(os.Stdout, p) }, "snapshot reads: lock-free MVCC vs locked reads"},
		{"T17", func() { bench.T17Churn(os.Stdout, p) }, "sustained churn: consolidation + free-space recycling"},
		{"T18", func() { bench.T18FileStorage(os.Stdout, p) }, "durable file-backed storage: fsync tax + group commit"},
		{"T19", func() { bench.T19PipelinedCommit(os.Stdout, p) }, "pipelined commit: ELR + write/sync overlap vs serial"},
		{"T20", func() { bench.T20BatchedOps(os.Stdout, p) }, "vectorized paths: batched MultiPut + scan read-ahead"},
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}

	ran := 0
	for _, r := range runners {
		if all || want[r.id] {
			fmt.Printf("\n=== %s: %s ===\n", r.id, r.doc)
			r.fn()
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:", *expFlag)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := p.Report.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote metrics to %s\n", *jsonPath)
	}
}
