// Command pitree-demo walks through the paper's lifecycle on a tiny tree
// with verbose narration: inserts that split nodes, the intermediate
// state between the two atomic actions of a structure change, lazy
// completion, a crash, and recovery.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

func main() {
	fmt.Println("Π-tree demo: decomposed structure changes, lazy completion, crash recovery")
	fmt.Println()

	topts := core.Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, SyncCompletion: true, NoCompletion: true}
	e := engine.New(engine.Options{})
	b := core.Register(e.Reg, false)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "demo", topts)
	check(err)

	fmt.Println("1. Insert 20 keys with node capacity 4; index-term POSTING IS SUPPRESSED,")
	fmt.Println("   so every split leaves the intermediate state: a new node reachable only")
	fmt.Println("   through its container's side pointer (perfectly legal in a Π-tree).")
	for i := 0; i < 20; i++ {
		check(tree.Insert(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("value-%d", i))))
	}
	shape, err := tree.Verify()
	check(err)
	fmt.Printf("   -> %d leaf splits committed, tree verified WELL-FORMED in the intermediate state\n",
		tree.Stats.LeafSplits.Load())
	fmt.Printf("   -> shape: height=%d nodes/level=%v records=%d\n\n", shape.Height, shape.NodesAtLevel, shape.Records)

	fmt.Println("2. Searches still find every key, by traversing side pointers:")
	for _, k := range []uint64{0, 7, 19} {
		v, ok, err := tree.Search(nil, keys.Uint64(k))
		check(err)
		fmt.Printf("   search(%d) = %q (found=%v)\n", k, v, ok)
	}
	fmt.Printf("   -> side traversals so far: %d\n\n", tree.Stats.SideTraversals.Load())

	fmt.Println("3. CRASH with the structure changes incomplete (log forced, pages not).")
	check(e.Log.ForceAll())
	tree.Close()
	img := e.Crash(nil)

	e2 := engine.Restarted(img, engine.Options{})
	b2 := core.Register(e2.Reg, false)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	check(err)
	topts.NoCompletion = false // normal processing resumes with completion on
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "demo", topts)
	check(err)
	check(e2.FinishRecovery(pend))
	defer tree2.Close()
	fmt.Printf("   -> restart: %d records redone, %d loser actions rolled back,\n",
		pend.Stats.RedoneRecords, pend.Stats.LoserActions)
	fmt.Println("      and NO special measures for the interrupted structure changes (innovation 4)")
	_, err = tree2.Verify()
	check(err)
	fmt.Println("   -> recovered tree verified well-formed, still in the intermediate state")
	fmt.Println()

	fmt.Println("4. Normal processing detects the incomplete changes (side-pointer traversals)")
	fmt.Println("   and schedules completing atomic actions; each re-tests the tree state, so")
	fmt.Println("   duplicates are harmless:")
	for i := 0; i < 20; i++ {
		_, _, err := tree2.Search(nil, keys.Uint64(uint64(i)))
		check(err)
	}
	tree2.DrainCompletions()
	st3 := tree2.Stats.Snapshot()
	fmt.Printf("   -> postings scheduled=%d performed=%d already-done=%d\n",
		st3.PostsScheduled, st3.PostsPerformed, st3.PostsAlreadyDone)
	_, err = tree2.Verify()
	check(err)
	fmt.Println("   -> structure changes completed; tree verified again")
	fmt.Println()

	fmt.Println("5. Transactions: an abort rolls back its inserts (and only its own):")
	tx := e2.TM.Begin()
	check(tree2.Insert(tx, keys.Uint64(100), []byte("doomed")))
	check(tree2.Insert(tx, keys.Uint64(101), []byte("doomed")))
	check(tx.Abort())
	for _, k := range []uint64{100, 101} {
		if _, ok, _ := tree2.Search(nil, keys.Uint64(k)); ok {
			panic("aborted key visible")
		}
	}
	fmt.Println("   -> aborted keys 100,101 are gone; the 20 committed keys remain")
	n, err := tree2.Count()
	check(err)
	fmt.Printf("   -> final record count: %d\n", n)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
