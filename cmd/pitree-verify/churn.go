package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/maint"
)

// runChurn is the sustained-churn gate: a rolling key window (constant
// live set) turned over several times with background consolidation on.
// It fails if the store does not reach a steady state — allocated pages
// trending up, or freed pages never recycled into new splits — or if the
// tree or its free-space map is ill-formed afterwards. This is the CI
// guard for the steady-state property T17 measures.
func runChurn() error {
	const (
		window = 3000
		turns  = 5
		slack  = 8 // boundary wobble allowance, in pages
	)
	e := engine.New(engine.Options{})
	b := core.Register(e.Reg, false)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "churn", core.Options{
		LeafCapacity:   16,
		IndexCapacity:  16,
		Consolidation:  true,
		SyncCompletion: true,
		Governor:       maint.New(1_000_000, maint.DefaultHighWater, nil),
	})
	if err != nil {
		return err
	}
	defer tree.Close()

	for k := 0; k < window; k++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(k)), []byte("c")); err != nil {
			return err
		}
	}
	tree.DrainCompletions()

	var first int64
	head := uint64(window)
	for c := 0; c < turns; c++ {
		for i := 0; i < window; i++ {
			if err := tree.Insert(nil, keys.Uint64(head), []byte("c")); err != nil {
				return err
			}
			if err := tree.Delete(nil, keys.Uint64(head-window)); err != nil {
				return err
			}
			head++
		}
		tree.DrainCompletions()
		alloc, err := st.AllocatedPages()
		if err != nil {
			return err
		}
		if c == 0 {
			first = alloc
		} else if alloc > first+slack {
			return fmt.Errorf("store grows under churn: %d pages after turnover 1, %d after turnover %d", first, alloc, c+1)
		}
		fmt.Printf("  turnover %d: %d allocated pages (recycled %d, freed %d)\n",
			c+1, alloc, st.Space.Recycled.Load(), st.Space.Freed.Load())
	}

	if st.Space.Recycled.Load() == 0 {
		return fmt.Errorf("no pages recycled despite %d freed", st.Space.Freed.Load())
	}
	if _, err := tree.Verify(); err != nil {
		return fmt.Errorf("tree ill-formed after churn: %w", err)
	}
	fmt.Println("churn gate ok: store bounded, pages recycled, tree and free map well-formed")
	return nil
}
