// Command pitree-verify runs an extended randomized crash-recovery
// check: repeated rounds of transactional traffic, a crash at a random
// stable point, restart, well-formedness verification, and an oracle
// comparison of surviving keys. Exit status 0 means every round held.
//
// Usage:
//
//	pitree-verify -rounds 20 -txns 200 -seed 7
//
// With -torture, each round instead arms one seeded failpoint (torn
// page writes, dead or flaky log devices, crashes mid-SMO, mid-eviction
// or mid-group-commit) under a concurrent workload, rotating across the
// Π-tree, TSB-tree and hB-tree, and verifies committed-data durability,
// no-ghost-uncommitted, and well-formedness after recovery:
//
//	pitree-verify -torture -rounds 60 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

func main() {
	rounds := flag.Int("rounds", 10, "independent crash/recovery rounds")
	txns := flag.Int("txns", 150, "transactions per round")
	seed := flag.Int64("seed", 1, "workload seed")
	pageOriented := flag.Bool("page-undo", false, "use page-oriented record undo")
	torture := flag.Bool("torture", false, "fault-injection torture mode (seeded failpoint per round)")
	churn := flag.Bool("churn", false, "sustained-churn gate: bounded store size + page recycling")
	workers := flag.Int("workers", 4, "torture: concurrent workload goroutines")
	ops := flag.Int("ops", 120, "torture: operations per worker per round")
	real := flag.Bool("real", false, "with -torture: real-crash mode — run each round's workload in a forked file-backed child and SIGKILL it")
	realChild := flag.Bool("real-child", false, "internal: run as a real-crash workload child")
	childDir := flag.String("dir", "", "internal: real-crash child data directory")
	childTree := flag.String("tree", "", "internal: real-crash child tree kind")
	childSync := flag.String("sync", "always", "internal: real-crash child WAL sync policy (always|never)")
	flag.Parse()

	if *realChild {
		if err := runRealChild(*childDir, *childTree, *childSync, *seed, *workers, *ops, *pageOriented); err != nil {
			fmt.Fprintf(os.Stderr, "real-crash child FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *churn {
		if err := runChurn(); err != nil {
			fmt.Fprintf(os.Stderr, "churn gate FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *torture {
		cfg := tortureConfig{
			rounds: *rounds, workers: *workers, ops: *ops,
			seed: *seed, pageOriented: *pageOriented,
		}
		if *real {
			if err := runRealCrash(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "real-crash torture FAILED: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runTorture(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "torture FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	for round := 0; round < *rounds; round++ {
		if err := runRound(rng, *txns, *pageOriented); err != nil {
			fmt.Fprintf(os.Stderr, "round %d FAILED: %v\n", round, err)
			os.Exit(1)
		}
		fmt.Printf("round %d ok\n", round)
	}
	fmt.Println("all rounds verified: well-formed trees, committed data intact, losers rolled back")
}

func runRound(rng *rand.Rand, txns int, pageOriented bool) error {
	eopts := engine.Options{PageOriented: pageOriented}
	topts := core.Options{LeafCapacity: 6, IndexCapacity: 6, Consolidation: true, SyncCompletion: true}
	e := engine.New(eopts)
	b := core.Register(e.Reg, pageOriented)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "v", topts)
	if err != nil {
		return err
	}

	committed := map[uint64]bool{}
	for i := 0; i < txns; i++ {
		tx := e.TM.Begin()
		batch := []uint64{}
		failed := false
		for j := 0; j < 1+rng.Intn(4); j++ {
			k := uint64(rng.Intn(txns * 2))
			var err error
			if committed[k] && rng.Intn(2) == 0 {
				err = tree.Delete(tx, keys.Uint64(k))
				if err == nil {
					batch = append(batch, k|1<<63) // deletion marker
				}
			} else if !committed[k] {
				err = tree.Insert(tx, keys.Uint64(k), []byte("v"))
				if err == nil {
					batch = append(batch, k)
				}
			}
			if err != nil && err != core.ErrKeyExists && err != core.ErrKeyNotFound {
				failed = true
				break
			}
		}
		if failed || rng.Intn(4) == 0 {
			_ = tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		for _, k := range batch {
			if k&(1<<63) != 0 {
				delete(committed, k&^(1<<63))
			} else {
				committed[k] = true
			}
		}
		if rng.Intn(10) == 0 {
			tree.DrainCompletions()
		}
		if rng.Intn(25) == 0 {
			if _, err := e.FlushAll(); err != nil {
				panic(err)
			}
		}
	}
	tree.DrainCompletions()
	tree.Close()
	// Crash at the stable point (user commits forced the log as they went).
	img := e.Crash(nil)

	e2 := engine.Restarted(img, eopts)
	b2 := core.Register(e2.Reg, pageOriented)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	if err != nil {
		return err
	}
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "v", topts)
	if err != nil {
		return err
	}
	defer tree2.Close()
	if err := pend.UndoLosers(e2.TM); err != nil {
		return err
	}
	fmt.Printf("  recovery: %s\n", pend.Stats.Summary())
	shape, err := tree2.Verify()
	if err != nil {
		return fmt.Errorf("ill-formed after restart: %w", err)
	}
	if shape.Records != len(committed) {
		return fmt.Errorf("records=%d, oracle=%d", shape.Records, len(committed))
	}
	for k := range committed {
		if _, ok, err := tree2.Search(nil, keys.Uint64(k)); err != nil || !ok {
			return fmt.Errorf("committed key %d lost (err=%v)", k, err)
		}
	}
	return nil
}
