// Real-crash torture mode: instead of simulating a crash by freezing an
// in-memory stable image, each round forks a CHILD PROCESS running a
// seeded transactional workload against real files — segmented WAL plus
// checksummed page files — and SIGKILLs it at a seeded moment. The
// parent then recovers from whatever bytes actually reached the page
// cache and audits the exact durability oracle the child streamed over
// its stdout pipe.
//
// The ack protocol makes the oracle exact despite the asynchronous
// kill. Each worker is sequential and writes one line per event, every
// line a single write(2) (atomic for pipes):
//
//	try <w> <k> <op> <val>   immediately before Commit
//	ack <w> <k>              Commit returned nil — durable, must survive
//	nak <w> <k>              Commit failed — rolled back, must be absent
//	abt <w> <k> <val>        deliberate abort — must be absent
//	done                     workload finished; engine closed cleanly
//
// A try is printed before Commit starts, so any value that reaches the
// tree has its try on the pipe; an ack is printed after Commit returns,
// so at most one COMMIT per worker is unresolved at the kill — exactly
// the one that may have been in flight. A vectorized batch commit
// prints one try per batch key before Commit and one ack/nak per key
// after, so a worker's unresolved tries are always the key set of that
// single in-flight commit. Recovery must show, per touched key, either
// the last acked state or (for an unresolved try's key only) the
// in-flight state — and because the in-flight commit is atomic, its
// keys must resolve uniformly: all applied or all rolled back. A mixed
// outcome is a partial batch. Everything else is a ghost or a loss.
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// realDraws derives the round's maintenance posture from the seed alone
// so parent and child agree without plumbing more flags.
func realDraws(seed int64) tortDraws {
	rng := rand.New(rand.NewSource(seed ^ 0x5eedc0de))
	return tortDraws{
		consolidation: rng.Intn(2) == 0,
		reclaim:       rng.Intn(2) == 0,
		govBudget:     []int{0, 64, 256}[rng.Intn(3)],
	}
}

func findTreeKind(name string) (treeKind, bool) {
	for _, k := range tortureKinds() {
		if k.name == name {
			return k, true
		}
	}
	return treeKind{}, false
}

// --- child ---------------------------------------------------------------

// runRealChild is the forked workload process. It opens a file-backed
// engine in dir, runs the seeded concurrent workload streaming the ack
// protocol to stdout, and — if the parent's SIGKILL never arrives —
// closes cleanly and prints done.
func runRealChild(dir, treeName, syncPol string, seed int64, workers, ops int, pageOriented bool) error {
	kind, ok := findTreeKind(treeName)
	if !ok {
		return fmt.Errorf("unknown tree kind %q", treeName)
	}
	pol := wal.SyncAlways
	if syncPol == "never" {
		pol = wal.SyncNever
	}
	e, recovered, err := engine.Open(engine.Options{
		DataDir:           dir,
		SegmentSize:       1 << 15,
		SlotSize:          4096,
		Sync:              pol,
		PoolCapacity:      40,
		PageOriented:      pageOriented,
		WriteBackInterval: time.Millisecond,
		WriteBackBatch:    16,
		PrefetchWindow:    8,
	})
	if err != nil {
		return err
	}
	if recovered {
		return fmt.Errorf("fresh round dir claims a prior incarnation")
	}
	draws := realDraws(seed)
	tree, err := kind.create(e, draws)
	if err != nil {
		return fmt.Errorf("create: %v", err)
	}

	var outMu sync.Mutex
	emit := func(format string, args ...any) {
		outMu.Lock()
		fmt.Fprintf(os.Stdout, format+"\n", args...)
		outMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed ^ int64(w+1)*7919))
			present := map[uint64]bool{}
			seq := 0
			for i := 0; i < ops; i++ {
				if e.Degraded() {
					return
				}
				// Some commits are vectorized batches: one try per batch key
				// before Commit, one ack/nak per key after, so the kill can
				// land with the whole batch in flight and recovery is audited
				// for all-or-nothing resolution.
				if bt, isBatcher := tree.(tortBatcher); isBatcher && wrng.Intn(5) == 0 {
					n := 2 + wrng.Intn(7)
					bks := make([]uint64, 0, n)
					bvs := make([][]byte, 0, n)
					inBatch := make(map[uint64]bool, n)
					for len(bks) < n {
						k := uint64(w + workers*wrng.Intn(ops/2+1))
						if inBatch[k] {
							continue
						}
						inBatch[k] = true
						seq++
						bks = append(bks, k)
						bvs = append(bvs, []byte(fmt.Sprintf("v%d.%d.%d", w, k, seq)))
					}
					tx := e.TM.Begin()
					if err := bt.insertBatch(tx, bks, bvs); err != nil {
						_ = tx.Abort()
						continue
					}
					if wrng.Intn(8) == 0 {
						_ = tx.Abort()
						for j, k := range bks {
							emit("abt %d %d %s", w, k, bvs[j])
						}
						continue
					}
					for j, k := range bks {
						emit("try %d %d put %s", w, k, bvs[j])
					}
					if err := tx.Commit(); err != nil {
						for _, k := range bks {
							emit("nak %d %d", w, k)
						}
						continue
					}
					for _, k := range bks {
						emit("ack %d %d", w, k)
						present[k] = true
					}
					continue
				}
				k := uint64(w + workers*wrng.Intn(ops/2+1))
				tx := e.TM.Begin()
				del := present[k] && wrng.Intn(2) == 0
				val := "-"
				var opErr error
				if del {
					opErr = tree.remove(tx, k)
				} else {
					seq++
					val = fmt.Sprintf("v%d.%d.%d", w, k, seq)
					opErr = tree.insert(tx, k, []byte(val))
				}
				if opErr != nil {
					_ = tx.Abort()
					continue
				}
				if wrng.Intn(8) == 0 {
					_ = tx.Abort()
					emit("abt %d %d %s", w, k, val)
					continue
				}
				op := "put"
				if del {
					op = "del"
				}
				emit("try %d %d %s %s", w, k, op, val)
				if err := tx.Commit(); err != nil {
					emit("nak %d %d", w, k)
					continue
				}
				emit("ack %d %d", w, k)
				present[k] = !del
			}
		}(w)
	}

	// Background chaos: real flushes and checkpoints, which on this
	// engine also fsync page files and recycle WAL segments under fire.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		crng := rand.New(rand.NewSource(seed * 31))
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch crng.Intn(4) {
			case 0:
				_, _ = e.FlushAll()
			case 1:
				_, _ = e.Checkpoint()
			case 2:
				tree.drain()
			case 3:
				// Full scans keep the pool's read-ahead busy against real
				// page files so the kill can land with prefetches in flight.
				if sc, isScanner := tree.(tortScanner); isScanner {
					_ = sc.scanSome()
				}
			}
			time.Sleep(time.Duration(200+crng.Intn(1800)) * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	chaosWG.Wait()
	tree.drain()
	tree.close()
	if err := e.Close(); err != nil {
		return fmt.Errorf("close: %v", err)
	}
	emit("done")
	return nil
}

// --- parent --------------------------------------------------------------

// realTry is one in-flight-capable commit attempt.
type realTry struct {
	k   uint64
	del bool
	val string
}

// realOracle is the durability contract parsed from one child's pipe.
type realOracle struct {
	acked []map[uint64]oracleVal // per worker: last acked state per key
	tried []map[uint64]bool      // per worker: keys with any resolved-or-not attempt
	// pending holds each worker's unresolved tries. Workers are
	// sequential, so all of a worker's entries belong to the single commit
	// that was in flight at the kill: one entry for a single-key commit, a
	// key set for a batch commit.
	pending [][]realTry
	clean   bool // child printed done (clean close, no kill)
}

func parseRealAcks(out []byte, workers int) (*realOracle, error) {
	o := &realOracle{
		acked:   make([]map[uint64]oracleVal, workers),
		tried:   make([]map[uint64]bool, workers),
		pending: make([][]realTry, workers),
	}
	for w := 0; w < workers; w++ {
		o.acked[w] = map[uint64]oracleVal{}
		o.tried[w] = map[uint64]bool{}
	}
	lines := strings.Split(string(out), "\n")
	// SIGKILL can only cut the stream between lines (each line is one
	// write), but guard against a torn last line anyway.
	if n := len(lines); n > 0 && lines[n-1] != "" {
		lines = lines[:n-1]
	}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		var w int
		var k uint64
		if len(f) >= 3 {
			wi, err1 := strconv.Atoi(f[1])
			kv, err2 := strconv.ParseUint(f[2], 10, 64)
			if err1 != nil || err2 != nil || wi < 0 || wi >= workers {
				return nil, fmt.Errorf("bad ack line %q", line)
			}
			w, k = wi, kv
		}
		switch f[0] {
		case "try":
			if len(f) != 5 {
				return nil, fmt.Errorf("protocol violation at %q", line)
			}
			// Tries stack only within one batch commit, whose keys are
			// distinct by construction.
			for _, q := range o.pending[w] {
				if q.k == k {
					return nil, fmt.Errorf("duplicate pending try at %q", line)
				}
			}
			o.pending[w] = append(o.pending[w], realTry{k: k, del: f[3] == "del", val: f[4]})
			o.tried[w][k] = true
		case "ack", "nak":
			idx := -1
			for i, q := range o.pending[w] {
				if q.k == k {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("%s without matching try: %q", f[0], line)
			}
			if p := o.pending[w][idx]; f[0] == "ack" {
				if p.del {
					o.acked[w][k] = oracleVal{}
				} else {
					o.acked[w][k] = oracleVal{present: true, val: p.val}
				}
			}
			o.pending[w] = append(o.pending[w][:idx], o.pending[w][idx+1:]...)
		case "abt":
			if len(f) != 4 {
				return nil, fmt.Errorf("bad abt line %q", line)
			}
			o.tried[w][k] = true
		case "done":
			o.clean = true
		default:
			return nil, fmt.Errorf("unknown ack line %q", line)
		}
	}
	return o, nil
}

// anyAcked reports whether any commit was ever acknowledged.
func (o *realOracle) anyAcked() bool {
	for _, m := range o.acked {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// auditRecovered checks the recovered tree against the ack oracle: every
// key any worker touched must show its last acked state — or, for an
// unresolved try's key, the in-flight commit's state. The unresolved
// tries of one worker all belong to a single atomic commit, so they must
// also resolve uniformly: a batch that applied some keys and rolled back
// others is a partial-batch ghost. Anything else is a lost commit or a
// ghost.
func (o *realOracle) auditRecovered(tree tortTree) error {
	for w := range o.tried {
		applied, rolledBack := 0, 0
		for k := range o.tried[w] {
			got, ok, err := tree.lookup(k)
			if err != nil {
				return fmt.Errorf("lookup %d: %v", k, err)
			}
			entry, acked := o.acked[w][k]
			matchOld := false
			if acked && entry.present {
				matchOld = ok && string(got) == entry.val
			} else {
				// Acked-deleted or never acked: must be absent.
				matchOld = !ok
			}
			var p *realTry
			for i := range o.pending[w] {
				if o.pending[w][i].k == k {
					p = &o.pending[w][i]
					break
				}
			}
			matchNew := false
			if p != nil {
				// The in-flight commit may have made it down before the
				// kill; its exact outcome is the only other legal state.
				if p.del {
					matchNew = !ok
				} else {
					matchNew = ok && string(got) == p.val
				}
			}
			if p != nil && matchNew != matchOld {
				// Unambiguous resolution of one in-flight key (a delete of a
				// never-acked key matches both ways and constrains nothing).
				if matchNew {
					applied++
				} else {
					rolledBack++
				}
			}
			if matchOld || matchNew {
				continue
			}
			if acked && entry.present {
				return fmt.Errorf("durability violation: acked key %d = %q ok=%v, committed %q", k, got, ok, entry.val)
			}
			return fmt.Errorf("ghost: key %d = %q present after recovery, last acked state was absent", k, got)
		}
		if applied > 0 && rolledBack > 0 {
			return fmt.Errorf("partial batch: worker %d's in-flight commit applied %d keys but rolled back %d", w, applied, rolledBack)
		}
	}
	return nil
}

func runRealCrash(cfg tortureConfig) error {
	bin, err := os.Executable()
	if err != nil {
		return fmt.Errorf("self path: %v", err)
	}
	kinds := tortureKinds()
	for round := 0; round < cfg.rounds; round++ {
		seed := cfg.seed + int64(round)*999983
		kind := kinds[round%len(kinds)]
		rng := rand.New(rand.NewSource(seed))
		syncPol := []string{"always", "never"}[rng.Intn(2)]
		killAfter := time.Duration(2+rng.Intn(150)) * time.Millisecond
		recWorkers := 1 << rng.Intn(4)
		clean, err := realCrashRound(bin, seed, kind, syncPol, killAfter, recWorkers, cfg)
		if err != nil {
			return fmt.Errorf("real round %d (tree=%s sync=%s kill=%v workers=%d seed=%d): %w\nreproduce with: pitree-verify -torture -real -seed %d -rounds %d",
				round, kind.name, syncPol, killAfter, recWorkers, seed, err, cfg.seed, round+1)
		}
		outcome := "killed"
		if clean {
			outcome = "finished"
		}
		fmt.Printf("real round %d ok (tree=%s sync=%s kill=%v recovery-workers=%d child=%s)\n",
			round, kind.name, syncPol, killAfter, recWorkers, outcome)
	}
	fmt.Println("all real-crash rounds verified: acked commits durable, no ghosts, trees well-formed")
	return nil
}

func realCrashRound(bin string, seed int64, kind treeKind, syncPol string, killAfter time.Duration, recWorkers int, cfg tortureConfig) (clean bool, err error) {
	dir, err := os.MkdirTemp("", "pitree-real-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)

	args := []string{
		"-real-child", "-dir", dir, "-tree", kind.name, "-sync", syncPol,
		"-seed", strconv.FormatInt(seed, 10),
		"-workers", strconv.Itoa(cfg.workers), "-ops", strconv.Itoa(cfg.ops),
	}
	if cfg.pageOriented {
		args = append(args, "-page-undo")
	}
	cmd := exec.Command(bin, args...)
	var out, errOut bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errOut
	if err := cmd.Start(); err != nil {
		return false, fmt.Errorf("fork child: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	killed := false
	select {
	case <-time.After(killAfter):
		killed = true
		_ = cmd.Process.Kill()
		<-waitErr
	case werr := <-waitErr:
		// Child finished before the kill: it must have exited clean.
		if werr != nil {
			return false, fmt.Errorf("child failed before kill: %v\nchild stderr:\n%s", werr, errOut.String())
		}
	}

	oracle, err := parseRealAcks(out.Bytes(), cfg.workers)
	if err != nil {
		return false, err
	}
	if killed && oracle.clean {
		// Raced: the child printed done just as the kill landed. Treat
		// as a clean finish.
		killed = false
	}
	if !killed && !oracle.clean {
		return false, fmt.Errorf("child exited without done\nchild stderr:\n%s", errOut.String())
	}

	// Recover in-process from the real files the child left behind.
	e2, recovered, err := engine.Open(engine.Options{
		DataDir:         dir,
		PageOriented:    cfg.pageOriented,
		RecoveryWorkers: recWorkers,
	})
	if err != nil {
		return false, fmt.Errorf("reopen: %v", err)
	}
	defer e2.Close()
	if !recovered {
		// No log survived at all: legal only if nothing was ever acked.
		if oracle.anyAcked() || oracle.clean {
			return false, fmt.Errorf("no WAL found but commits were acked")
		}
		return !killed, nil
	}
	draws := realDraws(seed)
	var pend recoveryPending
	tree2, err := openRealTree(kind, e2, &pend, draws)
	if err != nil {
		// The kill may predate the tree's creation becoming stable; then
		// nothing can have been acked.
		if oracle.anyAcked() {
			return false, fmt.Errorf("tree unopenable after crash (%v) but commits were acked", err)
		}
		return !killed, nil
	}
	defer tree2.close()
	if pend.finish != nil {
		if err := pend.finish(); err != nil {
			return false, fmt.Errorf("undo losers: %v", err)
		}
	}

	// Space audit over the replayed log (the shadow seeds itself from
	// the checkpoint's space image, so segment recycling is fine).
	shadow, err := recovery.AuditSpace(e2.Log.FullImage())
	if err != nil {
		return false, fmt.Errorf("space audit: %v", err)
	}
	if err := recovery.CheckSpace(shadow, e2.Pools()...); err != nil {
		return false, fmt.Errorf("space audit: %v", err)
	}

	if err := tree2.verify(); err != nil {
		return false, fmt.Errorf("tree ill-formed after recovery: %v", err)
	}
	if err := oracle.auditRecovered(tree2); err != nil {
		return false, err
	}
	// Lazy completion must converge whatever structure changes the kill
	// left half-done.
	tree2.drain()
	if err := tree2.verify(); err != nil {
		return false, fmt.Errorf("tree ill-formed after completion: %v", err)
	}
	return !killed, nil
}

// openRealTree runs the restart protocol against the child's files,
// converting the engine's open-time panics (a store file whose header
// write itself was cut by the kill) into ordinary errors.
func openRealTree(kind treeKind, e *engine.Engine, pend *recoveryPending, draws tortDraws) (tree tortTree, err error) {
	defer func() {
		if r := recover(); r != nil {
			tree, err = nil, fmt.Errorf("restart panic: %v", r)
		}
	}()
	return kind.open(e, nil, pend, draws)
}
