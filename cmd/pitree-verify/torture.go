// Crash-point torture mode: concurrent transactional workloads against
// an engine whose stable layer is armed with one seeded failpoint per
// round — a torn page write, a dead or flaky log device, a crash latch
// tripped mid-eviction, mid-SMO, or mid-group-commit. The round then
// recovers from exactly the frozen stable state and checks three
// properties: every acknowledged commit survived, nothing unacknowledged
// ghosted in, and the tree is well-formed with lazy completion able to
// converge it. Every round is reproducible from (-seed, round).
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
	"repro/internal/maint"
	"repro/internal/recovery"
	"repro/internal/spatial"
	"repro/internal/storage"
	"repro/internal/tsb"
	"repro/internal/txn"
	"repro/internal/wal"
)

// tortTree is the uniform surface the torture loop drives. Adapters
// normalize the three access methods to insert/remove/lookup on uint64
// keys; remove on a tree without deletions reports unsupported.
type tortTree interface {
	insert(tx *txn.Txn, k uint64, v []byte) error
	remove(tx *txn.Txn, k uint64) error
	lookup(k uint64) ([]byte, bool, error)
	drain()
	close()
	verify() error
}

// tortBatcher is the optional vectorized-write surface: trees with a
// MultiPut expose it so workers can commit multi-key batches and the
// crash-mid-batch-apply round has a real batch to land in.
type tortBatcher interface {
	insertBatch(tx *txn.Txn, ks []uint64, vs [][]byte) error
}

// tortScanner is the optional range-scan surface. Scans feed successor
// hints to the buffer pool's read-ahead, so the transient-prefetch round
// has traffic to fault; a faulted prefetch must degrade to the
// foreground fetch, never to wrong scan output.
type tortScanner interface {
	scanSome() error
}

// tortDraws is the per-round maintenance configuration: each round rolls
// whether background consolidation and page reclamation are on and how
// hard the governor throttles them, so every fault in the menu is
// eventually crossed with every maintenance posture.
type tortDraws struct {
	consolidation bool // core: utilization-triggered merges
	reclaim       bool // tsb + spatial: free retired/empty pages
	govBudget     int  // pages/sec for background maintenance; 0 = unpaced
}

// governor builds a fresh pacing governor for one tree instance (create
// and reopen each get their own token bucket).
func (d tortDraws) governor() *maint.Governor {
	if d.govBudget == 0 {
		return nil
	}
	return maint.New(d.govBudget, 8, nil)
}

func (d tortDraws) String() string {
	return fmt.Sprintf("consol=%v reclaim=%v budget=%d", d.consolidation, d.reclaim, d.govBudget)
}

// treeKind builds and reopens one access method over an engine.
type treeKind struct {
	name   string
	create func(e *engine.Engine, d tortDraws) (tortTree, error)
	open   func(e *engine.Engine, img *engine.CrashImage, pend *recoveryPending, d tortDraws) (tortTree, error)
}

// recoveryPending defers the undo pass until the tree is open (logical
// record undo needs the tree bound).
type recoveryPending struct {
	finish func() error
}

const tortureStoreID = 1

// tortStore binds the torture store for a restart: over a crash image's
// disk snapshot (simulated-crash rounds) or, when img is nil, over the
// engine's own backing — which on a file-backed engine is the store's
// real page file, re-read from disk (real-crash rounds).
func tortStore(e *engine.Engine, img *engine.CrashImage, codec storage.Codec) *storage.Store {
	if img != nil {
		return e.AttachStore(tortureStoreID, codec, img.Disks[tortureStoreID])
	}
	return e.AddStore(tortureStoreID, codec)
}

// --- core Π-tree adapter ------------------------------------------------

type coreTort struct{ t *core.Tree }

func (a coreTort) insert(tx *txn.Txn, k uint64, v []byte) error {
	return a.t.Insert(tx, keys.Uint64(k), v)
}
func (a coreTort) remove(tx *txn.Txn, k uint64) error { return a.t.Delete(tx, keys.Uint64(k)) }
func (a coreTort) lookup(k uint64) ([]byte, bool, error) {
	return a.t.Search(nil, keys.Uint64(k))
}
func (a coreTort) drain()        { a.t.DrainCompletions() }
func (a coreTort) close()        { a.t.Close() }
func (a coreTort) verify() error { _, err := a.t.Verify(); return err }

func (a coreTort) insertBatch(tx *txn.Txn, ks []uint64, vs [][]byte) error {
	bk := make([]keys.Key, len(ks))
	for i, k := range ks {
		bk[i] = keys.Uint64(k)
	}
	return a.t.MultiPut(tx, bk, vs)
}

func (a coreTort) scanSome() error {
	return a.t.RangeScan(nil, nil, nil, func(keys.Key, []byte) bool { return true })
}

func coreTortOpts(pessimistic bool, d tortDraws) core.Options {
	return core.Options{LeafCapacity: 6, IndexCapacity: 6, Consolidation: d.consolidation,
		CompletionWorkers: 2, PessimisticDescent: pessimistic, Governor: d.governor()}
}

// --- TSB-tree adapter ---------------------------------------------------

type tsbTort struct{ t *tsb.Tree }

func (a tsbTort) insert(tx *txn.Txn, k uint64, v []byte) error {
	return a.t.Put(tx, keys.Uint64(k), v)
}
func (a tsbTort) remove(tx *txn.Txn, k uint64) error { return a.t.Delete(tx, keys.Uint64(k)) }
func (a tsbTort) lookup(k uint64) ([]byte, bool, error) {
	return a.t.Get(nil, keys.Uint64(k))
}
func (a tsbTort) drain()        { a.t.DrainCompletions() }
func (a tsbTort) close()        { a.t.Close() }
func (a tsbTort) verify() error { _, err := a.t.Verify(); return err }

func (a tsbTort) insertBatch(tx *txn.Txn, ks []uint64, vs [][]byte) error {
	bk := make([]keys.Key, len(ks))
	for i, k := range ks {
		bk[i] = keys.Uint64(k)
	}
	return a.t.MultiPut(tx, bk, vs)
}

func (a tsbTort) scanSome() error {
	return a.t.ScanAsOf(a.t.Now(), nil, nil, func(keys.Key, []byte) bool { return true })
}

func tsbTortOpts(pessimistic bool, d tortDraws) tsb.Options {
	// GC is on: version garbage collection runs off committed time splits
	// while the snapshot readers race it, so reclamation is under torture
	// too.
	return tsb.Options{DataCapacity: 6, IndexCapacity: 6, CompletionWorkers: 2,
		PessimisticDescent: pessimistic, GC: true, Reclaim: d.reclaim, Governor: d.governor()}
}

// --- spatial hB-tree adapter -------------------------------------------

type spatialTort struct{ t *spatial.Tree }

// tortPoint maps a workload key to a point; splitmix64 spreads the keys
// across the space so data-node splits happen everywhere.
func tortPoint(k uint64) spatial.Point {
	z := k + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return spatial.Point{X: z % spatial.MaxCoord, Y: (z >> 32) % spatial.MaxCoord}
}

func (a spatialTort) insert(tx *txn.Txn, k uint64, v []byte) error {
	return a.t.Insert(tx, tortPoint(k), v)
}
func (a spatialTort) remove(tx *txn.Txn, k uint64) error { return a.t.Delete(tx, tortPoint(k)) }
func (a spatialTort) lookup(k uint64) ([]byte, bool, error) {
	return a.t.Search(nil, tortPoint(k))
}
func (a spatialTort) drain()        { a.t.DrainCompletions() }
func (a spatialTort) close()        { a.t.Close() }
func (a spatialTort) verify() error { _, err := a.t.Verify(); return err }

func spatialTortOpts(pessimistic bool, d tortDraws) spatial.Options {
	return spatial.Options{DataCapacity: 6, IndexCapacity: 6, CompletionWorkers: 2,
		PessimisticDescent: pessimistic, Reclaim: d.reclaim, Governor: d.governor()}
}

// tortureKinds lists each access method twice: with the default
// optimistic (version-validated) descent and with the fully latched
// descent, so every fault in the menu is crossed with both navigation
// disciplines.
func tortureKinds() []treeKind {
	var kinds []treeKind
	for _, m := range []struct {
		suffix      string
		pessimistic bool
	}{{"", false}, {"-latched", true}} {
		pess := m.pessimistic
		kinds = append(kinds,
			treeKind{
				name: "core" + m.suffix,
				create: func(e *engine.Engine, d tortDraws) (tortTree, error) {
					b := core.Register(e.Reg, e.Opts.PageOriented)
					st := e.AddStore(tortureStoreID, core.Codec{})
					t, err := core.Create(st, e.TM, e.Locks, b, "tort", coreTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return coreTort{t}, nil
				},
				open: func(e *engine.Engine, img *engine.CrashImage, pend *recoveryPending, d tortDraws) (tortTree, error) {
					b := core.Register(e.Reg, e.Opts.PageOriented)
					st := tortStore(e, img, core.Codec{})
					p, err := e.AnalyzeAndRedo()
					if err != nil {
						return nil, err
					}
					pend.finish = func() error { return e.FinishRecovery(p) }
					t, err := core.Open(st, e.TM, e.Locks, b, "tort", coreTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return coreTort{t}, nil
				},
			},
			treeKind{
				name: "tsb" + m.suffix,
				create: func(e *engine.Engine, d tortDraws) (tortTree, error) {
					b := tsb.Register(e.Reg)
					st := e.AddStore(tortureStoreID, tsb.Codec{})
					t, err := tsb.Create(st, e.TM, e.Locks, b, "tort", tsbTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return tsbTort{t}, nil
				},
				open: func(e *engine.Engine, img *engine.CrashImage, pend *recoveryPending, d tortDraws) (tortTree, error) {
					b := tsb.Register(e.Reg)
					st := tortStore(e, img, tsb.Codec{})
					p, err := e.AnalyzeAndRedo()
					if err != nil {
						return nil, err
					}
					pend.finish = func() error { return e.FinishRecovery(p) }
					t, err := tsb.Open(st, e.TM, e.Locks, b, "tort", tsbTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return tsbTort{t}, nil
				},
			},
			treeKind{
				name: "spatial" + m.suffix,
				create: func(e *engine.Engine, d tortDraws) (tortTree, error) {
					b := spatial.Register(e.Reg)
					st := e.AddStore(tortureStoreID, spatial.Codec{})
					t, err := spatial.Create(st, e.TM, e.Locks, b, "tort", spatialTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return spatialTort{t}, nil
				},
				open: func(e *engine.Engine, img *engine.CrashImage, pend *recoveryPending, d tortDraws) (tortTree, error) {
					b := spatial.Register(e.Reg)
					st := tortStore(e, img, spatial.Codec{})
					p, err := e.AnalyzeAndRedo()
					if err != nil {
						return nil, err
					}
					pend.finish = func() error { return e.FinishRecovery(p) }
					t, err := spatial.Open(st, e.TM, e.Locks, b, "tort", spatialTortOpts(pess, d))
					if err != nil {
						return nil, err
					}
					return spatialTort{t}, nil
				},
			},
		)
	}
	return kinds
}

// --- failure menu -------------------------------------------------------

// menuEntry is one way a round can hurt the system. spread bounds the
// randomized After (which hit of the failpoint fires).
type menuEntry struct {
	name   string
	point  string
	spec   fault.Spec
	spread int
}

func tortureMenu() []menuEntry {
	return []menuEntry{
		{"torn-page-write+crash", "disk.write", fault.Spec{Kind: fault.Torn, Crash: true}, 12},
		{"permanent-disk-write", "disk.write", fault.Spec{Kind: fault.Permanent}, 12},
		{"transient-disk-write", "disk.write", fault.Spec{Kind: fault.Transient, Count: 3}, 12},
		{"transient-disk-read", "disk.read", fault.Spec{Kind: fault.Transient, Count: 3}, 12},
		{"torn-log-sync+crash", wal.FPSync, fault.Spec{Kind: fault.Torn, Crash: true}, 40},
		{"permanent-log-sync", wal.FPSync, fault.Spec{Kind: fault.Permanent}, 40},
		{"crash-at-log-sync", wal.FPSync, fault.Spec{Kind: fault.None, Crash: true}, 40},
		{"crash-mid-eviction", "pool.evict", fault.Spec{Kind: fault.None, Crash: true}, 20},
		{"crash-mid-smo-commit", txn.FPAACommit, fault.Spec{Kind: fault.None, Crash: true}, 30},
		{"crash-mid-user-commit", txn.FPUserCommit, fault.Spec{Kind: fault.None, Crash: true}, 40},
		// Pipelined-commit crash points: after early lock release but
		// before the commit record is stable (dependents may already have
		// read the doomed state — no ack of theirs may survive either),
		// and between the flush pipeline's write and sync stages (bytes
		// are in the sink but not fsynced; recovery must not treat them
		// as stable under SyncAlways semantics).
		{"crash-at-elr", txn.FPELR, fault.Spec{Kind: fault.None, Crash: true}, 40},
		{"crash-between-write-and-sync", wal.FPWrite, fault.Spec{Kind: fault.None, Crash: true}, 40},
		// Maintenance crash points: mid-consolidation (between the merge's
		// page free and its commit) and mid-free (before the free-space map
		// meta write). They only fire on rounds whose draws turn the
		// relevant maintenance on — otherwise the round degenerates to a
		// clean end-of-round freeze, which is itself a valid case.
		{"crash-mid-consolidate", storage.FPConsolidate, fault.Spec{Kind: fault.None, Crash: true}, 8},
		{"crash-mid-free", storage.FPStoreFree, fault.Spec{Kind: fault.None, Crash: true}, 8},
		// Vectorized-path crash points. crash-mid-batch-apply fires between
		// two leaf-runs of one batched MultiPut — earlier runs fully logged,
		// later runs never started — so recovery must resolve the batch per
		// record against the ack oracle: an unacked batch leaves no ghosts,
		// an acked one loses nothing. transient-prefetch flakes the pool's
		// background read-ahead; scans must fall back to synchronous fetches
		// and never surface wrong data. Rounds on trees without the batch or
		// scan surface degenerate to a clean end-of-round freeze.
		{"crash-mid-batch-apply", core.FPBatchApply, fault.Spec{Kind: fault.None, Crash: true}, 6},
		{"transient-prefetch", storage.FPPoolPrefetch, fault.Spec{Kind: fault.Transient, Count: 3}, 6},
	}
}

// --- the torture loop ---------------------------------------------------

// oracleVal is the durably-committed state of one key: its value, or
// absent. Only the owning worker mutates an entry, so no lock is needed
// until the workers are joined.
type oracleVal struct {
	present bool
	val     string
}

type tortureConfig struct {
	rounds, workers, ops int
	seed                 int64
	pageOriented         bool
}

// --- snapshot-isolation oracle (TSB rounds only) ------------------------
//
// One writer commits rounds over a key space disjoint from the torture
// workers: each round rewrites every snap key with the round number, and
// an acked commit records it as the newest durable round. Readers race it
// (and version GC) with lock-free snapshots and assert, per snapshot:
// every key shows the SAME round (no torn snapshot), the round was never
// aborted (no ghosts), it is at least the newest round acked before
// capture (captured-after-commit monotonicity), and a repeated read does
// not move. After the crash, the keys must hold exactly the last acked
// round.

const (
	snapKeyBase = uint64(1) << 40 // far above any worker key
	snapKeys    = 8
)

type snapOracle struct {
	last    atomic.Int64 // newest acked round; -1 before any commit
	aborted sync.Map     // round -> true: commit failed or was aborted

	mu        sync.Mutex
	violation error // first consistency violation
}

func (s *snapOracle) fail(err error) {
	s.mu.Lock()
	if s.violation == nil {
		s.violation = err
	}
	s.mu.Unlock()
}

func (s *snapOracle) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.violation
}

// runSnapWriter commits rounds until the armed fault stops the world or
// the round's bounded workers finish (stop).
func runSnapWriter(e *engine.Engine, inj *fault.Injector, tree tortTree, s *snapOracle, seed int64, stop *atomic.Bool) {
	wrng := rand.New(rand.NewSource(seed * 104729))
	for round := int64(0); !stop.Load() && !inj.Crashed() && !e.Degraded(); round++ {
		tx := e.TM.Begin()
		ok := true
		for i := uint64(0); i < snapKeys; i++ {
			if err := tree.insert(tx, snapKeyBase+i, []byte(fmt.Sprintf("s%d", round))); err != nil {
				ok = false
				break
			}
		}
		if !ok || wrng.Intn(6) == 0 {
			s.aborted.Store(round, true)
			_ = tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			s.aborted.Store(round, true)
			continue
		}
		s.last.Store(round)
	}
}

// runSnapReader takes snapshots and checks each one is a consistent
// committed prefix. Read errors (injected faults) abort the iteration;
// only consistency violations count.
func runSnapReader(e *engine.Engine, inj *fault.Injector, t *tsb.Tree, s *snapOracle, stop *atomic.Bool) {
	var buf []byte
	for !stop.Load() && !inj.Crashed() && !e.Degraded() {
		r0 := s.last.Load()
		snap := e.TM.BeginSnapshot(nil)
		round, torn := int64(-1), false
		failed := false
		for i := uint64(0); i < snapKeys; i++ {
			v, ok, err := t.SnapshotGet(snap, keys.Uint64(snapKeyBase+i), buf)
			if err != nil {
				failed = true
				break
			}
			buf = v[:0]
			r := int64(-1)
			if ok {
				if _, err := fmt.Sscanf(string(v), "s%d", &r); err != nil {
					s.fail(fmt.Errorf("snap key %d: unparsable value %q", i, v))
					snap.Release()
					return
				}
			}
			if i == 0 {
				round = r
			} else if r != round {
				torn = true
			}
		}
		if failed {
			snap.Release()
			continue
		}
		switch {
		case torn:
			s.fail(fmt.Errorf("torn snapshot at ts %d: keys show mixed rounds (first %d)", snap.TS(), round))
		case round < r0:
			s.fail(fmt.Errorf("snapshot at ts %d went back in time: sees round %d, round %d was acked before capture", snap.TS(), round, r0))
		case round >= 0:
			if _, bad := s.aborted.Load(round); bad {
				s.fail(fmt.Errorf("snapshot at ts %d sees aborted round %d", snap.TS(), round))
			}
		}
		// Repeated read must not move.
		if round >= 0 {
			v, ok, err := t.SnapshotGet(snap, keys.Uint64(snapKeyBase), buf)
			if err == nil && (!ok || string(v) != fmt.Sprintf("s%d", round)) {
				s.fail(fmt.Errorf("repeat read moved inside snapshot ts %d: %q ok=%v, expected round %d", snap.TS(), v, ok, round))
			}
			if err == nil {
				buf = v[:0]
			}
		}
		snap.Release()
	}
}

func runTorture(cfg tortureConfig) error {
	kinds := tortureKinds()
	menu := tortureMenu()
	for round := 0; round < cfg.rounds; round++ {
		seed := cfg.seed + int64(round)*1000003
		kind := kinds[round%len(kinds)]
		rng := rand.New(rand.NewSource(seed))
		entry := menu[rng.Intn(len(menu))]
		// The recovery worker count joins the fault menu: every fault is
		// crossed with serial and parallel restart shapes. The maintenance
		// draws cross it again with consolidation/reclaim postures.
		recWorkers := 1 << rng.Intn(4)
		draws := tortDraws{
			consolidation: rng.Intn(2) == 0,
			reclaim:       rng.Intn(2) == 0,
			govBudget:     []int{0, 64, 256}[rng.Intn(3)],
		}
		restart, err := tortureRound(seed, kind, entry, recWorkers, draws, rng, cfg)
		if err != nil {
			return fmt.Errorf("round %d (tree=%s fault=%s workers=%d %v seed=%d): %w\nreproduce with: pitree-verify -torture -seed %d -rounds %d",
				round, kind.name, entry.name, recWorkers, draws, seed, err, cfg.seed, round+1)
		}
		fmt.Printf("torture round %d ok (tree=%s fault=%s workers=%d %v restart=%v)\n",
			round, kind.name, entry.name, recWorkers, draws, restart.Round(10*time.Microsecond))
	}
	fmt.Println("all torture rounds verified: committed data durable, no ghosts, trees well-formed")
	return nil
}

func tortureRound(seed int64, kind treeKind, entry menuEntry, recWorkers int, draws tortDraws, rng *rand.Rand, cfg tortureConfig) (time.Duration, error) {
	inj := fault.New(seed)
	spec := entry.spec
	spec.After = 1 + int64(rng.Intn(entry.spread))
	inj.Arm(entry.point, spec)

	eopts := engine.Options{Injector: inj, PoolCapacity: 40, PageOriented: cfg.pageOriented,
		PrefetchWindow: 8}
	e := engine.New(eopts)
	tree, err := kind.create(e, draws)
	if err != nil {
		// Creation can only fail if the fault fired this early; the round
		// degenerates to "nothing ever committed", which recovery of an
		// empty image trivially satisfies.
		if errors.Is(err, fault.ErrInjected) || inj.Crashed() {
			return 0, nil
		}
		return 0, fmt.Errorf("create: %v", err)
	}

	// Concurrent transactional workload. Workers own disjoint key sets,
	// so each worker's oracle entries are exact: a nil Commit guarantees
	// durability (the commit record was stable when acked) and a non-nil
	// Commit guarantees rollback (the record can never become stable).
	oracle := make([]map[uint64]oracleVal, cfg.workers)
	attempted := make([]map[uint64]bool, cfg.workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		oracle[w] = make(map[uint64]oracleVal)
		attempted[w] = make(map[uint64]bool)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed ^ int64(w+1)*7919))
			seq := 0
			for i := 0; i < cfg.ops; i++ {
				if inj.Crashed() || e.Degraded() {
					return
				}
				// Some transactions commit a multi-key vectorized batch
				// instead of a single op. The whole batch acks or rolls back
				// as one commit, so on ack every batch key joins the oracle;
				// otherwise every batch key must be absent (or at its prior
				// acked state) after recovery — a crash that lands between
				// two leaf-runs of the batch must not leak a partial batch.
				if bt, isBatcher := tree.(tortBatcher); isBatcher && wrng.Intn(5) == 0 {
					n := 2 + wrng.Intn(7)
					bks := make([]uint64, 0, n)
					bvs := make([][]byte, 0, n)
					inBatch := make(map[uint64]bool, n)
					for len(bks) < n {
						k := uint64(w + cfg.workers*wrng.Intn(cfg.ops/2+1))
						if inBatch[k] {
							continue
						}
						inBatch[k] = true
						seq++
						bks = append(bks, k)
						bvs = append(bvs, []byte(fmt.Sprintf("v%d.%d.%d", w, k, seq)))
					}
					tx := e.TM.Begin()
					if err := bt.insertBatch(tx, bks, bvs); err != nil {
						_ = tx.Abort()
						continue
					}
					for _, k := range bks {
						attempted[w][k] = true
					}
					if wrng.Intn(8) == 0 {
						_ = tx.Abort()
						continue
					}
					if err := tx.Commit(); err != nil {
						continue
					}
					for j, k := range bks {
						oracle[w][k] = oracleVal{present: true, val: string(bvs[j])}
					}
					continue
				}
				k := uint64(w + cfg.workers*wrng.Intn(cfg.ops/2+1))
				present := oracle[w][k].present
				tx := e.TM.Begin()
				var opErr error
				del := false
				val := ""
				if present && wrng.Intn(2) == 0 {
					del = true
					opErr = tree.remove(tx, k)
				} else {
					seq++
					val = fmt.Sprintf("v%d.%d.%d", w, k, seq)
					opErr = tree.insert(tx, k, []byte(val))
				}
				if opErr != nil {
					_ = tx.Abort()
					continue
				}
				attempted[w][k] = true
				if wrng.Intn(8) == 0 {
					_ = tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					// Not durable, rolled back: oracle unchanged.
					continue
				}
				if del {
					oracle[w][k] = oracleVal{}
				} else {
					oracle[w][k] = oracleVal{present: true, val: val}
				}
			}
		}(w)
	}

	// On TSB rounds, a snapshot writer and lock-free snapshot readers join
	// the mix on their own key space, racing the workers, the chaos below,
	// and background version GC. They run until the workers finish their
	// bounded op counts (or the armed fault crashes the world first — many
	// menu entries never trip): snapStop is their off switch, flipped
	// after wg drains so they cannot outlive the round.
	var snapO *snapOracle
	var snapWG sync.WaitGroup
	var snapStop atomic.Bool
	if tt, isTSB := tree.(tsbTort); isTSB {
		snapO = &snapOracle{}
		snapO.last.Store(-1)
		snapWG.Add(3)
		go func() { defer snapWG.Done(); runSnapWriter(e, inj, tree, snapO, seed, &snapStop) }()
		for r := 0; r < 2; r++ {
			go func() { defer snapWG.Done(); runSnapReader(e, inj, tt.t, snapO, &snapStop) }()
		}
	}

	// Background chaos: flushes, checkpoints, drains — all failable.
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		crng := rand.New(rand.NewSource(seed * 31))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if inj.Crashed() {
				return
			}
			switch crng.Intn(4) {
			case 0:
				_, _ = e.FlushAll()
			case 1:
				_, _ = e.Checkpoint()
			case 2:
				tree.drain()
			case 3:
				// Full scans drive the pool's read-ahead so the
				// transient-prefetch round has hints to fault.
				if sc, isScanner := tree.(tortScanner); isScanner {
					_ = sc.scanSome()
				}
			}
		}
	}()

	wg.Wait()
	snapStop.Store(true)
	snapWG.Wait()
	close(stop)
	chaosWG.Wait()

	if snapO != nil {
		if err := snapO.err(); err != nil {
			return 0, fmt.Errorf("snapshot oracle: %w (trips: %v)", err, inj.Trips())
		}
	}

	// Freeze the world if the armed fault never crashed it (permanent /
	// transient entries, or an After past the workload's hit count).
	if !inj.Crashed() {
		inj.TripCrash()
	}
	tree.close()
	// Park the read-ahead workers: the crash image is about to be taken
	// and this engine abandoned, so no prefetcher may outlive the round.
	for _, p := range e.Pools() {
		p.StopPrefetch()
	}
	img := e.Crash(nil)

	// Restart clean: the injector died with the process. The drawn worker
	// count routes recovery through the serial or parallel pipeline.
	restartStart := time.Now()
	e2 := engine.Restarted(img, engine.Options{PageOriented: cfg.pageOriented, RecoveryWorkers: recWorkers})
	var pend recoveryPending
	tree2, err := kind.open(e2, img, &pend, draws)
	if err != nil {
		// The crash may predate the tree creation becoming stable; then
		// nothing can have committed.
		for w := range oracle {
			for k, v := range oracle[w] {
				if v.present {
					return 0, fmt.Errorf("tree unopenable after crash (%v) but key %d was acked", err, k)
				}
			}
		}
		return time.Since(restartStart), nil
	}
	defer tree2.close()
	if pend.finish != nil {
		if err := pend.finish(); err != nil {
			return 0, fmt.Errorf("undo losers: %v", err)
		}
	}
	restart := time.Since(restartStart)

	// Space audit: replay the full log's alloc/free history (including this
	// restart's CLRs) through the alternation oracle and cross-check the
	// recovered free-space map against it.
	shadow, err := recovery.AuditSpace(e2.Log.FullImage())
	if err != nil {
		return 0, fmt.Errorf("space audit: %v\ntrips: %v", err, inj.Trips())
	}
	if err := recovery.CheckSpace(shadow, e2.Pools()...); err != nil {
		return 0, fmt.Errorf("space audit: %v\ntrips: %v", err, inj.Trips())
	}

	if err := tree2.verify(); err != nil {
		return 0, fmt.Errorf("tree ill-formed after recovery: %v\ntrips: %v", err, inj.Trips())
	}
	for w := range oracle {
		for k, v := range oracle[w] {
			got, ok, err := tree2.lookup(k)
			if err != nil {
				return 0, fmt.Errorf("lookup %d: %v", k, err)
			}
			if v.present {
				if !ok {
					return 0, fmt.Errorf("durability violation: committed key %d lost (trips: %v)", k, inj.Trips())
				}
				if string(got) != v.val {
					return 0, fmt.Errorf("durability violation: key %d = %q, committed %q", k, got, v.val)
				}
			} else if ok {
				return 0, fmt.Errorf("ghost: deleted key %d present after recovery", k)
			}
		}
		// No-ghost: keys attempted but never acked must be absent.
		for k := range attempted[w] {
			if _, acked := oracle[w][k]; acked {
				continue
			}
			if _, ok, _ := tree2.lookup(k); ok {
				return 0, fmt.Errorf("ghost: unacked key %d present after recovery (trips: %v)", k, inj.Trips())
			}
		}
	}
	// The snapshot writer's last acked round must have survived intact:
	// every snap key holds exactly that round (later rounds either acked —
	// making them the last — or failed their commit and rolled back).
	if snapO != nil {
		if last := snapO.last.Load(); last >= 0 {
			want := fmt.Sprintf("s%d", last)
			for i := uint64(0); i < snapKeys; i++ {
				got, ok, err := tree2.lookup(snapKeyBase + i)
				if err != nil {
					return 0, fmt.Errorf("snap key %d: %v", i, err)
				}
				if !ok || string(got) != want {
					return 0, fmt.Errorf("snapshot durability violation: snap key %d = %q ok=%v, committed %q (trips: %v)",
						i, got, ok, want, inj.Trips())
				}
			}
		}
	}

	// Lazy completion must converge the recovered tree.
	tree2.drain()
	if err := tree2.verify(); err != nil {
		return 0, fmt.Errorf("tree ill-formed after completion: %v", err)
	}
	return restart, nil
}
