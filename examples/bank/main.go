// Bank: concurrent transfer transactions over a Π-tree under
// page-oriented UNDO — the regime where data-node splits interact with
// transactions through move locks (§4.2). Transfers run on many
// goroutines, deadlock victims retry, a fraction aborts deliberately, and
// the invariant (total balance constant) is checked at the end and again
// after a crash+recovery.
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/lock"
)

const (
	accounts       = 500
	initialBalance = 1000
	workers        = 8
	transfersEach  = 400
)

func encodeBalance(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

func decodeBalance(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b))
}

func main() {
	eopts := engine.Options{PageOriented: true}
	e := engine.New(eopts)
	binding := core.Register(e.Reg, true)
	store := e.AddStore(1, core.Codec{})
	tree, err := core.Create(store, e.TM, e.Locks, binding, "accounts",
		core.Options{LeafCapacity: 16, IndexCapacity: 16, Consolidation: true})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < accounts; i++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(i)), encodeBalance(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var deadlocks, aborted, committed int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersEach; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amount := int64(rng.Intn(50) + 1)
				for {
					err := transfer(e, tree, from, to, amount, rng.Intn(20) == 0)
					if errors.Is(err, lock.ErrDeadlock) {
						mu.Lock()
						deadlocks++
						mu.Unlock()
						continue // victim retries, like a real client
					}
					if errors.Is(err, errDeliberateAbort) {
						mu.Lock()
						aborted++
						mu.Unlock()
						break
					}
					if err != nil {
						log.Fatalf("transfer: %v", err)
					}
					mu.Lock()
					committed++
					mu.Unlock()
					break
				}
			}
		}(w)
	}
	wg.Wait()
	tree.DrainCompletions()

	total := sumBalances(tree)
	fmt.Printf("transfers committed=%d aborted=%d deadlock-retries=%d\n", committed, aborted, deadlocks)
	fmt.Printf("total balance: %d (expected %d) — invariant %s\n",
		total, accounts*initialBalance, okStr(total == accounts*initialBalance))

	// Crash and recover; the invariant must survive.
	if err := e.Log.ForceAll(); err != nil {
		panic(err)
	}
	tree.Close()
	img := e.Crash(nil)
	e2 := engine.Restarted(img, eopts)
	b2 := core.Register(e2.Reg, true)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "accounts",
		core.Options{LeafCapacity: 16, IndexCapacity: 16, Consolidation: true})
	if err != nil {
		log.Fatal(err)
	}
	defer tree2.Close()
	if err := e2.FinishRecovery(pend); err != nil {
		log.Fatal(err)
	}
	total2 := sumBalances(tree2)
	fmt.Printf("after crash+recovery: total balance %d — invariant %s\n",
		total2, okStr(total2 == accounts*initialBalance))
	st := tree2.Stats.Snapshot()
	_ = st
	fmt.Printf("tree stats during run: splits=%d inTxnSplits=%d moveLockWaits=%d consolidations=%d\n",
		tree.Stats.LeafSplits.Load(), tree.Stats.InTxnSplits.Load(),
		tree.Stats.MoveLockWaits.Load(), tree.Stats.Consolidations.Load())
}

var errDeliberateAbort = errors.New("deliberate abort")

// transfer moves amount between two accounts in one transaction.
func transfer(e *engine.Engine, tree *core.Tree, from, to uint64, amount int64, sabotage bool) error {
	tx := e.TM.Begin()
	abort := func(err error) error {
		_ = tx.Abort()
		return err
	}
	fromV, ok, err := tree.Search(tx, keys.Uint64(from))
	if err != nil || !ok {
		return abort(err)
	}
	toV, ok, err := tree.Search(tx, keys.Uint64(to))
	if err != nil || !ok {
		return abort(err)
	}
	fb, tb := decodeBalance(fromV), decodeBalance(toV)
	if fb < amount {
		return abort(nil) // insufficient funds: clean abort, not an error
	}
	if err := tree.Update(tx, keys.Uint64(from), encodeBalance(fb-amount)); err != nil {
		return abort(err)
	}
	if err := tree.Update(tx, keys.Uint64(to), encodeBalance(tb+amount)); err != nil {
		return abort(err)
	}
	if sabotage {
		return abort(errDeliberateAbort)
	}
	return tx.Commit()
}

func sumBalances(tree *core.Tree) int64 {
	var total int64
	_ = tree.RangeScan(nil, nil, nil, func(k keys.Key, v []byte) bool {
		total += decodeBalance(v)
		return true
	})
	return total
}

func okStr(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}
