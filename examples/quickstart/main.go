// Quickstart: create a Π-tree, write and read data, survive a crash.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

func main() {
	// An engine bundles the substrates: write-ahead log, lock manager,
	// buffer pools, transaction manager.
	e := engine.New(engine.Options{})
	binding := core.Register(e.Reg, e.Opts.PageOriented)
	store := e.AddStore(1, core.Codec{})

	tree, err := core.Create(store, e.TM, e.Locks, binding, "people", core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Non-transactional writes: each is its own atomic action.
	for i, name := range []string{"ada", "grace", "edsger", "barbara", "tony"} {
		if err := tree.Insert(nil, keys.String(name), []byte(fmt.Sprintf("employee-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	v, ok, err := tree.Search(nil, keys.String("grace"))
	fmt.Printf("grace -> %q (found=%v, err=%v)\n", v, ok, err)

	// Batched writes and reads: a sorted batch descends the tree once
	// per distinct leaf instead of once per key, applying every key for
	// a leaf under a single latch hold and logging the whole run as one
	// group append. One call, one atomic action per run.
	cities := []string{"berlin", "kyoto", "lima", "oslo", "quito"}
	bk := make([]keys.Key, len(cities))
	bv := make([][]byte, len(cities))
	for i, c := range cities {
		bk[i] = keys.String(c)
		bv[i] = []byte("city")
	}
	if err := tree.MultiPut(nil, bk, bv); err != nil {
		log.Fatal(err)
	}
	vals := make([][]byte, len(bk))
	found := make([]bool, len(bk))
	if err := tree.MultiGet(nil, bk, vals, found); err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	stats := tree.Stats.Snapshot()
	fmt.Printf("batched: MultiGet found %d/%d; %d batch ops saved %d leaf visits\n",
		hits, len(bk), stats.BatchOps, stats.LeafVisitsSaved)

	// Transactional writes: all-or-nothing.
	tx := e.TM.Begin()
	_ = tree.Insert(tx, keys.String("zaphod"), []byte("not real"))
	_ = tx.Abort()
	if _, ok, _ := tree.Search(nil, keys.String("zaphod")); !ok {
		fmt.Println("aborted insert rolled back")
	}

	// Ordered iteration.
	fmt.Println("all keys in order:")
	_ = tree.RangeScan(nil, nil, nil, func(k keys.Key, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	})

	// Crash and recover: the stable state is the forced log prefix plus
	// whatever pages were flushed; restart replays history.
	if err := e.Log.ForceAll(); err != nil {
		panic(err)
	}
	tree.Close()
	img := e.Crash(nil)

	e2 := engine.Restarted(img, e.Opts)
	b2 := core.Register(e2.Reg, e2.Opts.PageOriented)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "people", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tree2.Close()
	if err := e2.FinishRecovery(pend); err != nil {
		log.Fatal(err)
	}
	n, err := tree2.Count()
	fmt.Printf("after crash+recovery: %d records (err=%v)\n", n, err)
}
