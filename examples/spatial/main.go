// Spatial: a two-dimensional asset index on the multi-attribute Π-tree.
// Assets live at (x, y) coordinates; region queries find everything in a
// viewport. Under the hood, splits by either attribute partition the
// space, and wide regions clipped by index splits become multi-parent
// children — the §3.3 consolidation constraint in action.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/spatial"
)

func main() {
	e := engine.New(engine.Options{})
	binding := spatial.Register(e.Reg)
	store := e.AddStore(1, spatial.Codec{})
	tree, err := spatial.Create(store, e.TM, e.Locks, binding, "assets",
		spatial.Options{DataCapacity: 16, IndexCapacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer tree.Close()

	// Scatter assets over the map. Coordinates span [0, 2^32).
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	kinds := []string{"tree", "rock", "chest", "npc"}
	for i := 0; i < n; i++ {
		p := spatial.Point{
			X: rng.Uint64() % spatial.MaxCoord,
			Y: rng.Uint64() % spatial.MaxCoord,
		}
		kind := kinds[rng.Intn(len(kinds))]
		if err := tree.Insert(nil, p, []byte(kind)); err != nil && err != spatial.ErrPointExists {
			log.Fatal(err)
		}
	}
	tree.DrainCompletions()

	// A viewport query: the north-west sixteenth of the map.
	view := spatial.Rect{
		X0: 0, Y0: 0,
		X1: spatial.MaxCoord / 4, Y1: spatial.MaxCoord / 4,
	}
	counts := map[string]int{}
	err = tree.RegionQuery(view, func(p spatial.Point, v []byte) bool {
		counts[string(v)]++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("viewport %v holds %d assets: %v\n", view, total, counts)

	// Transactional placement: all-or-nothing building of a structure.
	tx := e.TM.Begin()
	base := spatial.Point{X: spatial.MaxCoord / 2, Y: spatial.MaxCoord / 2}
	for dx := uint64(0); dx < 3; dx++ {
		for dy := uint64(0); dy < 3; dy++ {
			p := spatial.Point{X: base.X + dx, Y: base.Y + dy}
			if err := tree.Insert(tx, p, []byte("wall")); err != nil {
				log.Fatal(err)
			}
		}
	}
	_ = tx.Abort() // the build is cancelled: every wall tile vanishes
	walls := 0
	_ = tree.RegionQuery(spatial.Rect{X0: base.X, Y0: base.Y, X1: base.X + 3, Y1: base.Y + 3},
		func(spatial.Point, []byte) bool { walls++; return true })
	fmt.Printf("after aborted build: %d wall tiles (expected 0)\n", walls)

	// Structure report: the clipping machinery at work.
	shape, err := tree.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: height=%d dataNodes=%d indexNodes=%d clippedTerms=%d\n",
		shape.Height, shape.DataNodes, shape.IndexNodes, shape.Clipped)
	fmt.Println("space partition verified: regions are disjoint and cover the whole map")
}
