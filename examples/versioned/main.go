// Versioned: time travel with the TSB-tree. An inventory of products is
// updated over several "days" (logical timestamps); historical states
// remain queryable exactly as they were, even after the history has been
// time-split out of the current nodes and after a crash.
//
//	go run ./examples/versioned
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/tsb"
)

func main() {
	e := engine.New(engine.Options{})
	binding := tsb.Register(e.Reg)
	store := e.AddStore(1, tsb.Codec{})
	tree, err := tsb.Create(store, e.TM, e.Locks, binding, "inventory",
		tsb.Options{DataCapacity: 16, IndexCapacity: 16})
	if err != nil {
		log.Fatal(err)
	}

	products := []string{"anvil", "bugle", "crate", "dynamo", "easel"}
	var dayEnd []uint64

	// Day 1: everything in stock.
	for _, p := range products {
		must(tree.Put(nil, keys.String(p), []byte("in stock: 10")))
	}
	dayEnd = append(dayEnd, tree.Now())

	// Day 2: some sales, one discontinued.
	must(tree.Put(nil, keys.String("anvil"), []byte("in stock: 3")))
	must(tree.Put(nil, keys.String("bugle"), []byte("in stock: 7")))
	must(tree.Delete(nil, keys.String("easel")))
	dayEnd = append(dayEnd, tree.Now())

	// Day 3: restock and a new product.
	must(tree.Put(nil, keys.String("anvil"), []byte("in stock: 20")))
	must(tree.Put(nil, keys.String("flume"), []byte("in stock: 5")))
	dayEnd = append(dayEnd, tree.Now())
	tree.DrainCompletions()

	show := func(asOf uint64, label string) {
		fmt.Printf("%s:\n", label)
		_ = tree.ScanAsOf(asOf, nil, nil, func(k keys.Key, v []byte) bool {
			fmt.Printf("  %-8s %s\n", k, v)
			return true
		})
	}
	show(dayEnd[0], "inventory as of day 1")
	show(dayEnd[1], "inventory as of day 2 (easel discontinued)")
	show(dayEnd[2], "inventory now")

	// Point query into history.
	v, ok, err := tree.GetAsOf(nil, keys.String("anvil"), dayEnd[1])
	fmt.Printf("anvil on day 2: %q (found=%v, err=%v)\n", v, ok, err)

	// History survives crashes: versions are as durable as everything
	// else in the write-ahead log.
	must(e.Log.ForceAll())
	tree.Close()
	img := e.Crash(nil)
	e2 := engine.Restarted(img, e.Opts)
	b2 := tsb.Register(e2.Reg)
	st2 := e2.AttachStore(1, tsb.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := tsb.Open(st2, e2.TM, e2.Locks, b2, "inventory", tsb.Options{DataCapacity: 16, IndexCapacity: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer tree2.Close()
	if err := e2.FinishRecovery(pend); err != nil {
		log.Fatal(err)
	}
	v, ok, _ = tree2.GetAsOf(nil, keys.String("easel"), dayEnd[0])
	fmt.Printf("after crash+recovery, easel on day 1: %q (found=%v)\n", v, ok)
	if _, ok, _ := tree2.GetAsOf(nil, keys.String("easel"), dayEnd[1]); !ok {
		fmt.Println("and still discontinued on day 2 — history is exact")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
