// Package baseline implements the comparator index trees the paper's
// claims are measured against:
//
//   - SubtreeLatch: a B+-tree with Bayer–Schkolnick-style pessimistic
//     descent — writers hold exclusive latches on the whole unsafe path,
//     readers latch-couple in share mode [1, 18].
//   - SerialSMO: a B-link tree whose structure modifications are SERIAL,
//     in the spirit the paper attributes to ARIES/IM ("complete
//     structural changes are serial", §1): a tree-wide SMO latch is held
//     exclusively for the entire split-and-post sequence, and every
//     operation runs under its share mode.
//   - GlobalLock: a B+-tree under one reader-writer lock — the floor.
//
// The baselines are deliberately in-memory and unlogged, which biases
// the comparison IN THEIR FAVOR: the Π-tree in internal/core pays for
// write-ahead logging and lock management in the same benchmarks and
// still has to win on concurrency for the paper's claims to reproduce.
package baseline

import "repro/internal/keys"

// KV is the common surface the benchmark harness drives.
type KV interface {
	// Insert adds key=val; inserting an existing key overwrites (the
	// benchmarks use unique keys, so the distinction never matters).
	Insert(k keys.Key, v []byte)
	// Search returns the value for k.
	Search(k keys.Key) ([]byte, bool)
	// Scan visits keys in [lo, hi) in order; nil hi means unbounded.
	Scan(lo, hi keys.Key, fn func(k keys.Key, v []byte) bool)
	// Label names the method in benchmark output.
	Label() string
}
