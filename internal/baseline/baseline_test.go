package baseline

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keys"
)

func trees(capacity int) []KV {
	return []KV{
		NewSubtreeLatch(capacity),
		NewSerialSMO(capacity),
		NewGlobalLock(capacity),
	}
}

func TestSequentialCorrectness(t *testing.T) {
	for _, tree := range trees(8) {
		t.Run(tree.Label(), func(t *testing.T) {
			const n = 3000
			rng := rand.New(rand.NewSource(1))
			perm := rng.Perm(n)
			for _, i := range perm {
				tree.Insert(keys.Uint64(uint64(i)), []byte(fmt.Sprintf("v%d", i)))
			}
			for i := 0; i < n; i++ {
				v, ok := tree.Search(keys.Uint64(uint64(i)))
				if !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("key %d: %q %v", i, v, ok)
				}
			}
			if _, ok := tree.Search(keys.Uint64(n + 5)); ok {
				t.Fatal("phantom key")
			}
			// Ordered scan sees every key in [100, 200).
			var got []uint64
			tree.Scan(keys.Uint64(100), keys.Uint64(200), func(k keys.Key, v []byte) bool {
				got = append(got, keys.ToUint64(k))
				return true
			})
			if len(got) != 100 {
				t.Fatalf("scan: %d keys", len(got))
			}
			for i, k := range got {
				if k != uint64(100+i) {
					t.Fatalf("scan[%d] = %d", i, k)
				}
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for _, tree := range trees(8) {
		t.Run(tree.Label(), func(t *testing.T) {
			k := keys.Uint64(42)
			tree.Insert(k, []byte("a"))
			tree.Insert(k, []byte("b"))
			if v, ok := tree.Search(k); !ok || string(v) != "b" {
				t.Fatalf("overwrite: %q %v", v, ok)
			}
		})
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	for _, capacity := range []int{8, 64} {
		for _, tree := range trees(capacity) {
			t.Run(fmt.Sprintf("%s/cap%d", tree.Label(), capacity), func(t *testing.T) {
				const workers = 8
				const perWorker = 500
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < perWorker; i++ {
							k := uint64(w*perWorker + i)
							tree.Insert(keys.Uint64(k), []byte{byte(w)})
							// Read back something already inserted.
							if _, ok := tree.Search(keys.Uint64(k)); !ok {
								t.Errorf("worker %d lost key %d", w, k)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				for i := 0; i < workers*perWorker; i++ {
					if _, ok := tree.Search(keys.Uint64(uint64(i))); !ok {
						t.Fatalf("key %d missing after concurrent load", i)
					}
				}
			})
		}
	}
}
