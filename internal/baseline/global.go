package baseline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keys"
)

// GlobalLock is a B+-tree protected by a single reader-writer lock: all
// writers serialize, readers share. The floor every concurrency scheme
// must clear.
type GlobalLock struct {
	capacity int
	mu       sync.RWMutex
	root     *glNode

	exclusions  atomic.Int64
	exclusiveNs atomic.Int64
}

// ExclusionStats reports tree-wide exclusive holds: every write.
func (t *GlobalLock) ExclusionStats() (count int64, total time.Duration) {
	return t.exclusions.Load(), time.Duration(t.exclusiveNs.Load())
}

type glNode struct {
	leaf bool
	keys []keys.Key
	vals [][]byte
	kids []*glNode
}

func (n *glNode) find(k keys.Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return keys.Compare(n.keys[i], k) >= 0
	})
	if i < len(n.keys) && keys.Equal(n.keys[i], k) {
		return i, true
	}
	return i, false
}

func (n *glNode) childIdx(k keys.Key) int {
	i, exact := n.find(k)
	if !exact {
		if i == 0 {
			return 0
		}
		i--
	}
	return i
}

// NewGlobalLock returns a tree whose nodes hold up to capacity entries.
func NewGlobalLock(capacity int) *GlobalLock {
	if capacity < 4 {
		capacity = 4
	}
	return &GlobalLock{capacity: capacity, root: &glNode{leaf: true}}
}

// Label implements KV.
func (t *GlobalLock) Label() string { return "global-lock" }

// Search implements KV.
func (t *GlobalLock) Search(k keys.Key) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := t.root
	for !cur.leaf {
		cur = cur.kids[cur.childIdx(k)]
	}
	if i, ok := cur.find(k); ok {
		return cur.vals[i], true
	}
	return nil, false
}

// Scan implements KV.
func (t *GlobalLock) Scan(lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var walk func(n *glNode) bool
	walk = func(n *glNode) bool {
		if n.leaf {
			for i, k := range n.keys {
				if lo != nil && keys.Compare(k, lo) < 0 {
					continue
				}
				if hi != nil && keys.Compare(k, hi) >= 0 {
					return false
				}
				if !fn(k, n.vals[i]) {
					return false
				}
			}
			return true
		}
		start := 0
		if lo != nil {
			start = n.childIdx(lo)
		}
		for i := start; i < len(n.kids); i++ {
			if hi != nil && i < len(n.keys) && n.keys[i] != nil && keys.Compare(n.keys[i], hi) >= 0 {
				return false
			}
			if !walk(n.kids[i]) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Insert implements KV.
func (t *GlobalLock) Insert(k keys.Key, v []byte) {
	t.mu.Lock()
	start := time.Now()
	defer func() {
		t.exclusiveNs.Add(time.Since(start).Nanoseconds())
		t.exclusions.Add(1)
		t.mu.Unlock()
	}()
	sep, right := t.insert(t.root, k, v)
	if right != nil {
		left := &glNode{leaf: t.root.leaf, keys: t.root.keys, vals: t.root.vals, kids: t.root.kids}
		t.root = &glNode{leaf: false, keys: []keys.Key{nil, sep}, kids: []*glNode{left, right}}
	}
}

// insert recursively adds (k, v) under n and returns a promoted
// separator and new right node if n split.
func (t *GlobalLock) insert(n *glNode, k keys.Key, v []byte) (keys.Key, *glNode) {
	if n.leaf {
		i, exact := n.find(k)
		if exact {
			n.vals[i] = v
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = keys.Clone(k)
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
	} else {
		ci := n.childIdx(k)
		sep, right := t.insert(n.kids[ci], k, v)
		if right != nil {
			j, _ := n.find(sep)
			n.keys = append(n.keys, nil)
			copy(n.keys[j+1:], n.keys[j:])
			n.keys[j] = sep
			n.kids = append(n.kids, nil)
			copy(n.kids[j+1:], n.kids[j:])
			n.kids[j] = right
		}
	}
	if len(n.keys) <= t.capacity {
		return nil, nil
	}
	mid := len(n.keys) / 2
	sep := keys.Clone(n.keys[mid])
	right := &glNode{leaf: n.leaf}
	right.keys = append([]keys.Key(nil), n.keys[mid:]...)
	n.keys = append([]keys.Key(nil), n.keys[:mid]...)
	if n.leaf {
		right.vals = append([][]byte(nil), n.vals[mid:]...)
		n.vals = append([][]byte(nil), n.vals[:mid]...)
	} else {
		right.kids = append([]*glNode(nil), n.kids[mid:]...)
		n.kids = append([]*glNode(nil), n.kids[:mid]...)
	}
	return sep, right
}
