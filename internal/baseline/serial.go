package baseline

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keys"
	"repro/internal/latch"
)

// SerialSMO is a B-link tree whose structure modifications are serial:
// one tree-wide SMO latch is held exclusively for the ENTIRE structure
// change (leaf split plus every index-term posting, possibly up to a
// root growth), while every ordinary operation holds it in share mode.
// This is the contrast case for the paper's innovation 2: "By contrast,
// in ARIES/IM complete structural changes are serial." Searches still
// use side pointers, so the data organization matches internal/core; the
// difference under measurement is purely the SMO discipline.
type SerialSMO struct {
	capacity int
	smo      sync.RWMutex
	root     *slNode // root grows in place and never moves

	// Exclusion accounting: spans during which the tree-wide SMO latch
	// was held exclusively, stalling every concurrent operation.
	exclusions  atomic.Int64
	exclusiveNs atomic.Int64
}

// ExclusionStats reports how often and for how long this tree held a
// tree-wide exclusive resource (the serial-SMO latch).
func (t *SerialSMO) ExclusionStats() (count int64, total time.Duration) {
	return t.exclusions.Load(), time.Duration(t.exclusiveNs.Load())
}

type slNode struct {
	latch latch.Latch
	leaf  bool
	keys  []keys.Key
	vals  [][]byte
	kids  []*slNode
	right *slNode
	high  keys.Bound
}

func (n *slNode) find(k keys.Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return keys.Compare(n.keys[i], k) >= 0
	})
	if i < len(n.keys) && keys.Equal(n.keys[i], k) {
		return i, true
	}
	return i, false
}

func (n *slNode) childFor(k keys.Key) *slNode {
	i, exact := n.find(k)
	if !exact {
		if i == 0 {
			return n.kids[0]
		}
		i--
	}
	return n.kids[i]
}

func (n *slNode) contains(k keys.Key) bool { return n.high.ContainsBelow(k) }

// NewSerialSMO returns a tree whose nodes hold up to capacity entries.
func NewSerialSMO(capacity int) *SerialSMO {
	if capacity < 4 {
		capacity = 4
	}
	return &SerialSMO{capacity: capacity, root: &slNode{leaf: true, high: keys.Inf}}
}

// Label implements KV.
func (t *SerialSMO) Label() string { return "serial-smo" }

// descend returns the latched leaf covering k. Caller holds t.smo.RLock.
func (t *SerialSMO) descend(k keys.Key, exclusiveLeaf bool) *slNode {
	cur := t.root
	cur.latch.AcquireS()
	for {
		for !cur.contains(k) {
			next := cur.right
			next.latch.AcquireS()
			cur.latch.ReleaseS()
			cur = next
		}
		if cur.leaf {
			if !exclusiveLeaf {
				return cur
			}
			// Re-acquire exclusively; revalidate coverage after the gap.
			cur.latch.ReleaseS()
			cur.latch.AcquireX()
			for !cur.contains(k) {
				next := cur.right
				next.latch.AcquireX()
				cur.latch.ReleaseX()
				cur = next
			}
			return cur
		}
		next := cur.childFor(k)
		next.latch.AcquireS()
		cur.latch.ReleaseS()
		cur = next
	}
}

// Search implements KV.
func (t *SerialSMO) Search(k keys.Key) ([]byte, bool) {
	t.smo.RLock()
	defer t.smo.RUnlock()
	leaf := t.descend(k, false)
	i, ok := leaf.find(k)
	var v []byte
	if ok {
		v = leaf.vals[i]
	}
	leaf.latch.ReleaseS()
	return v, ok
}

// Scan implements KV via the leaf chain.
func (t *SerialSMO) Scan(lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) {
	t.smo.RLock()
	defer t.smo.RUnlock()
	cur := t.descend(lo, false)
	cursor := lo
	for {
		for i, k := range cur.keys {
			if keys.Compare(k, cursor) < 0 {
				continue
			}
			if hi != nil && keys.Compare(k, hi) >= 0 {
				cur.latch.ReleaseS()
				return
			}
			if !fn(k, cur.vals[i]) {
				cur.latch.ReleaseS()
				return
			}
		}
		if cur.high.Unbounded || (hi != nil && keys.Compare(cur.high.Key, hi) >= 0) {
			cur.latch.ReleaseS()
			return
		}
		cursor = cur.high.Key
		next := cur.right
		next.latch.AcquireS()
		cur.latch.ReleaseS()
		cur = next
	}
}

// Insert implements KV. A full leaf forces the SERIAL structure change:
// release everything, take the SMO latch exclusively (draining all
// concurrent operations), perform the complete multi-level change, then
// retry.
func (t *SerialSMO) Insert(k keys.Key, v []byte) {
	for {
		t.smo.RLock()
		leaf := t.descend(k, true)
		if len(leaf.keys) < t.capacity {
			i, exact := leaf.find(k)
			if exact {
				leaf.vals[i] = v
			} else {
				leaf.keys = append(leaf.keys, nil)
				copy(leaf.keys[i+1:], leaf.keys[i:])
				leaf.keys[i] = keys.Clone(k)
				leaf.vals = append(leaf.vals, nil)
				copy(leaf.vals[i+1:], leaf.vals[i:])
				leaf.vals[i] = v
			}
			leaf.latch.ReleaseX()
			t.smo.RUnlock()
			return
		}
		leaf.latch.ReleaseX()
		t.smo.RUnlock()

		// Serial SMO: the whole structure change under the exclusive
		// tree latch, splits and postings to every level at once.
		t.smo.Lock()
		start := time.Now()
		t.splitPathFor(k)
		t.exclusiveNs.Add(time.Since(start).Nanoseconds())
		t.exclusions.Add(1)
		t.smo.Unlock()
	}
}

// splitPathFor performs, under the exclusive SMO latch, every split
// needed so the leaf covering k has room. No node latches are needed:
// the SMO latch excludes all other operations.
func (t *SerialSMO) splitPathFor(k keys.Key) {
	// Find the path root->leaf (no sibling chasing needed: postings are
	// always complete in this design).
	var path []*slNode
	cur := t.root
	for {
		for !cur.contains(k) {
			cur = cur.right
		}
		path = append(path, cur)
		if cur.leaf {
			break
		}
		cur = cur.childFor(k)
	}
	leaf := path[len(path)-1]
	if len(leaf.keys) < t.capacity {
		return // someone else already split (we re-check after Lock)
	}
	// Split bottom-up; every index term posted immediately (the split
	// and all postings are one serial unit).
	for level := len(path) - 1; level >= 0; level-- {
		n := path[level]
		if len(n.keys) < t.capacity {
			break
		}
		mid := len(n.keys) / 2
		sep := keys.Clone(n.keys[mid])
		right := &slNode{leaf: n.leaf, right: n.right, high: n.high}
		right.keys = append([]keys.Key(nil), n.keys[mid:]...)
		if n.leaf {
			right.vals = append([][]byte(nil), n.vals[mid:]...)
			n.vals = append([][]byte(nil), n.vals[:mid]...)
		} else {
			right.kids = append([]*slNode(nil), n.kids[mid:]...)
			n.kids = append([]*slNode(nil), n.kids[:mid]...)
		}
		n.keys = append([]keys.Key(nil), n.keys[:mid]...)
		n.right = right
		n.high = keys.At(sep)

		if level > 0 {
			p := path[level-1]
			j, _ := p.find(sep)
			p.keys = append(p.keys, nil)
			copy(p.keys[j+1:], p.keys[j:])
			p.keys[j] = sep
			p.kids = append(p.kids, nil)
			copy(p.kids[j+1:], p.kids[j:])
			p.kids[j] = right
		} else {
			// Root grows in place.
			left := &slNode{leaf: n.leaf, keys: n.keys, vals: n.vals, kids: n.kids, right: right, high: keys.At(sep)}
			n.leaf = false
			n.keys = []keys.Key{nil, sep}
			n.vals = nil
			n.kids = []*slNode{left, right}
			n.right = nil
			n.high = keys.Inf
		}
	}
}
