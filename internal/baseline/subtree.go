package baseline

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/keys"
	"repro/internal/latch"
)

// SubtreeLatch is the Bayer–Schkolnick pessimistic B+-tree: a writer
// holds exclusive latches on every node of the path from the deepest
// SAFE ancestor (one that cannot split) down to the leaf, so a split
// never needs to re-acquire anything — at the price of excluding readers
// from that whole subtree for the duration. Readers latch-couple with
// share latches. This is the classic pre-B-link design that B-link-style
// methods were shown to beat [18], which is what experiments T1–T3
// reproduce.
type SubtreeLatch struct {
	capacity int
	// anchor guards the root pointer and is ordered before every node;
	// the root grows in place, so the anchor is only held exclusively
	// while the root itself is unsafe.
	anchor latch.Latch
	root   *stNode

	exclusions  atomic.Int64
	exclusiveNs atomic.Int64
}

// ExclusionStats reports tree-wide exclusive holds: inserts that latched
// the anchor exclusively because the root was unsafe. (Subtree-wide
// exclusion below the root is additional and not counted here.)
func (t *SubtreeLatch) ExclusionStats() (count int64, total time.Duration) {
	return t.exclusions.Load(), time.Duration(t.exclusiveNs.Load())
}

type stNode struct {
	latch   latch.Latch
	leaf    bool
	keys    []keys.Key
	vals    [][]byte  // leaves
	kids    []*stNode // internal; kids[i] covers [keys[i], keys[i+1])
	highKey keys.Bound
}

func (n *stNode) find(k keys.Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool {
		return keys.Compare(n.keys[i], k) >= 0
	})
	if i < len(n.keys) && keys.Equal(n.keys[i], k) {
		return i, true
	}
	return i, false
}

func (n *stNode) childFor(k keys.Key) (*stNode, int) {
	i, exact := n.find(k)
	if !exact {
		if i == 0 {
			return n.kids[0], 0
		}
		i--
	}
	return n.kids[i], i
}

// NewSubtreeLatch returns a tree whose nodes hold up to capacity entries.
func NewSubtreeLatch(capacity int) *SubtreeLatch {
	if capacity < 4 {
		capacity = 4
	}
	return &SubtreeLatch{capacity: capacity, root: &stNode{leaf: true, highKey: keys.Inf}}
}

// Label implements KV.
func (t *SubtreeLatch) Label() string { return "subtree-latch" }

// Search implements KV with share-mode latch coupling.
func (t *SubtreeLatch) Search(k keys.Key) ([]byte, bool) {
	t.anchor.AcquireS()
	cur := t.root
	cur.latch.AcquireS()
	t.anchor.ReleaseS()
	for !cur.leaf {
		next, _ := cur.childFor(k)
		next.latch.AcquireS()
		cur.latch.ReleaseS()
		cur = next
	}
	i, ok := cur.find(k)
	var v []byte
	if ok {
		v = cur.vals[i]
	}
	cur.latch.ReleaseS()
	return v, ok
}

// Scan implements KV by repeated descents (no leaf links in this design).
func (t *SubtreeLatch) Scan(lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) {
	cursor := keys.Clone(lo)
	for {
		t.anchor.AcquireS()
		cur := t.root
		cur.latch.AcquireS()
		t.anchor.ReleaseS()
		for !cur.leaf {
			next, _ := cur.childFor(cursor)
			next.latch.AcquireS()
			cur.latch.ReleaseS()
			cur = next
		}
		for i, k := range cur.keys {
			if keys.Compare(k, cursor) < 0 {
				continue
			}
			if hi != nil && keys.Compare(k, hi) >= 0 {
				cur.latch.ReleaseS()
				return
			}
			if !fn(k, cur.vals[i]) {
				cur.latch.ReleaseS()
				return
			}
		}
		if cur.highKey.Unbounded {
			cur.latch.ReleaseS()
			return
		}
		cursor = keys.Clone(cur.highKey.Key)
		cur.latch.ReleaseS()
		if hi != nil && keys.Compare(cursor, hi) >= 0 {
			return
		}
	}
}

// Insert implements KV: exclusive latches on the whole unsafe path.
func (t *SubtreeLatch) Insert(k keys.Key, v []byte) {
	t.anchor.AcquireX()
	anchorStart := time.Now()
	cur := t.root
	cur.latch.AcquireX()
	held := []*stNode{cur}
	anchorHeld := true
	noteAnchor := func() {
		t.exclusiveNs.Add(time.Since(anchorStart).Nanoseconds())
		t.exclusions.Add(1)
	}

	safe := func(n *stNode) bool { return len(n.keys) < t.capacity-1 }
	releaseAncestors := func() {
		for _, h := range held[:len(held)-1] {
			h.latch.ReleaseX()
		}
		held = held[len(held)-1:]
		if anchorHeld {
			noteAnchor()
			t.anchor.ReleaseX()
			anchorHeld = false
		}
	}
	if safe(cur) {
		noteAnchor()
		t.anchor.ReleaseX()
		anchorHeld = false
	}
	for !cur.leaf {
		next, _ := cur.childFor(k)
		next.latch.AcquireX()
		held = append(held, next)
		cur = next
		if safe(cur) {
			releaseAncestors()
		}
	}

	i, exact := cur.find(k)
	if exact {
		cur.vals[i] = v
	} else {
		cur.keys = append(cur.keys, nil)
		copy(cur.keys[i+1:], cur.keys[i:])
		cur.keys[i] = keys.Clone(k)
		cur.vals = append(cur.vals, nil)
		copy(cur.vals[i+1:], cur.vals[i:])
		cur.vals[i] = v
	}

	// Split bottom-up along the held (unsafe) path.
	for level := len(held) - 1; level >= 0 && len(held[level].keys) > t.capacity; level-- {
		n := held[level]
		sep, right := t.split(n)
		if level > 0 {
			p := held[level-1]
			j, _ := p.find(sep)
			p.keys = append(p.keys, nil)
			copy(p.keys[j+1:], p.keys[j:])
			p.keys[j] = sep
			p.kids = append(p.kids, nil)
			copy(p.kids[j+1:], p.kids[j:])
			p.kids[j] = right
		} else {
			// Root split: grow in place (the anchor is held exactly when
			// the root was unsafe).
			left := &stNode{leaf: n.leaf, keys: n.keys, vals: n.vals, kids: n.kids, highKey: keys.At(sep)}
			n.leaf = false
			n.keys = []keys.Key{nil, sep}
			n.vals = nil
			n.kids = []*stNode{left, right}
			n.highKey = keys.Inf
		}
	}
	for _, h := range held {
		h.latch.ReleaseX()
	}
	if anchorHeld {
		noteAnchor()
		t.anchor.ReleaseX()
	}
}

func (t *SubtreeLatch) split(n *stNode) (keys.Key, *stNode) {
	mid := len(n.keys) / 2
	sep := keys.Clone(n.keys[mid])
	right := &stNode{leaf: n.leaf, highKey: n.highKey}
	right.keys = append([]keys.Key(nil), n.keys[mid:]...)
	if n.leaf {
		right.vals = append([][]byte(nil), n.vals[mid:]...)
		n.vals = append([][]byte(nil), n.vals[:mid]...)
	} else {
		right.kids = append([]*stNode(nil), n.kids[mid:]...)
		n.kids = append([]*stNode(nil), n.kids[:mid]...)
	}
	n.keys = append([]keys.Key(nil), n.keys[:mid]...)
	n.highKey = keys.At(sep)
	return sep, right
}
