package bench

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

// TestRunSmoke drives the workload runner at tiny sizes over every
// method, which keeps the harness itself exercised by `go test`.
func TestRunSmoke(t *testing.T) {
	for _, m := range AllMethods() {
		t.Run(m.Name, func(t *testing.T) {
			kv, closer := m.New(16)
			defer closer()
			Preload(kv, 500)
			r := Run(kv, 2, 300, 500, Mix{SearchPct: 50, InsertPct: 40})
			if r.Ops != 600 || r.OpsPerSec() <= 0 {
				t.Fatalf("result: %+v", r)
			}
			// Preloaded keys must still be there.
			if _, ok := kv.Search(keys.Uint64(0)); !ok {
				t.Fatal("preloaded key lost")
			}
		})
	}
}

// TestExperimentsSmoke runs the cheap experiment printers at reduced
// sizes and sanity-checks their output.
func TestExperimentsSmoke(t *testing.T) {
	p := Params{Threads: []int{1, 2}, Preload: 2000, OpsPerThread: 500, Capacity: 16, Report: &Report{}}
	var buf bytes.Buffer
	T4CrashMatrix(&buf, p)
	T5LazyCompletion(&buf, p)
	T9SavedPath(&buf, p)
	T13GroupCommit(&buf, p)
	out := buf.String()
	for _, want := range []string{"T4:", "logical-undo/CP", "T5:", "residual side traversals", "T9:", "T13:", "relative durability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if len(p.Report.Metrics) == 0 {
		t.Fatal("experiments recorded no metrics")
	}
	for _, m := range p.Report.Metrics {
		if m.Name == "aa-only-forces" && m.Value != 0 {
			t.Fatalf("aa-only-forces = %v, want 0 (relative durability)", m.Value)
		}
	}
}

// Traversal micro-benchmarks: the interior-descent cost of a point
// lookup, optimistic vs fully latched. Run with `-cpu 1,4` (the Makefile
// bench target does): the optimistic path's advantage is contended latch
// traffic it avoids, so 1-CPU numbers understate it badly — with a
// single P there is no latch contention to remove, and the two variants
// should be read as a sanity floor, not a speedup claim. The multi-CPU
// variant is the measurement.
func benchmarkSearchDescent(b *testing.B, pessimistic bool) {
	const preload = 50_000
	pi := NewPiTree(engine.Options{}, core.Options{
		LeafCapacity:       64,
		IndexCapacity:      64,
		Consolidation:      true,
		CompletionWorkers:  2,
		PessimisticDescent: pessimistic,
	})
	defer pi.Close()
	Preload(pi, preload)
	pi.T.DrainCompletions()
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 0, 64)
		base := seq.Add(0x9E3779B97F4A7C15)
		i := uint64(0)
		for pb.Next() {
			k := ((base + i) % preload) * 2
			i++
			v, ok, err := pi.T.SearchInto(nil, keys.Uint64(k), buf)
			if err != nil || !ok {
				b.Fatalf("search %d: found=%v err=%v", k, ok, err)
			}
			buf = v[:0]
		}
	})
}

func BenchmarkSearchDescentOptimistic(b *testing.B) { benchmarkSearchDescent(b, false) }
func BenchmarkSearchDescentLatched(b *testing.B)   { benchmarkSearchDescent(b, true) }

// TestPercentileDur pins the percentile helper.
func TestPercentileDur(t *testing.T) {
	if percentileDur(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}
