package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/keys"
)

// TestRunSmoke drives the workload runner at tiny sizes over every
// method, which keeps the harness itself exercised by `go test`.
func TestRunSmoke(t *testing.T) {
	for _, m := range AllMethods() {
		t.Run(m.Name, func(t *testing.T) {
			kv, closer := m.New(16)
			defer closer()
			Preload(kv, 500)
			r := Run(kv, 2, 300, 500, Mix{SearchPct: 50, InsertPct: 40})
			if r.Ops != 600 || r.OpsPerSec() <= 0 {
				t.Fatalf("result: %+v", r)
			}
			// Preloaded keys must still be there.
			if _, ok := kv.Search(keys.Uint64(0)); !ok {
				t.Fatal("preloaded key lost")
			}
		})
	}
}

// TestExperimentsSmoke runs the cheap experiment printers at reduced
// sizes and sanity-checks their output.
func TestExperimentsSmoke(t *testing.T) {
	p := Params{Threads: []int{1, 2}, Preload: 2000, OpsPerThread: 500, Capacity: 16, Report: &Report{}}
	var buf bytes.Buffer
	T4CrashMatrix(&buf, p)
	T5LazyCompletion(&buf, p)
	T9SavedPath(&buf, p)
	T13GroupCommit(&buf, p)
	out := buf.String()
	for _, want := range []string{"T4:", "logical-undo/CP", "T5:", "residual side traversals", "T9:", "T13:", "relative durability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if len(p.Report.Metrics) == 0 {
		t.Fatal("experiments recorded no metrics")
	}
	for _, m := range p.Report.Metrics {
		if m.Name == "aa-only-forces" && m.Value != 0 {
			t.Fatalf("aa-only-forces = %v, want 0 (relative durability)", m.Value)
		}
	}
}

// TestPercentileDur pins the percentile helper.
func TestPercentileDur(t *testing.T) {
	if percentileDur(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}
