package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/latch"
)

// Params tune experiment sizes; Quick() keeps everything laptop-fast.
type Params struct {
	Threads      []int
	Preload      int
	OpsPerThread int
	Capacity     int

	// Report, when non-nil, collects machine-readable metrics alongside
	// the printed tables (pitree-bench -json).
	Report *Report
}

// Quick returns the default parameter set.
func Quick() Params {
	return Params{
		Threads:      []int{1, 2, 4, 8, 16},
		Preload:      50_000,
		OpsPerThread: 20_000,
		Capacity:     64,
	}
}

// T1SearchScaling is experiment T1: 100% search throughput vs thread
// count, Π-tree against all baselines. Reproduces the [18]-style finding
// that the B-link family scales where subtree latching and coarse locks
// do not.
func T1SearchScaling(w io.Writer, p Params) {
	runScaling(w, p, Mix{SearchPct: 100}, "T1", "T1: search-only throughput (kops/s) vs threads")
}

// T2MixedScaling is experiment T2: 50% search / 50% insert.
func T2MixedScaling(w io.Writer, p Params) {
	runScaling(w, p, Mix{SearchPct: 50, InsertPct: 50}, "T2", "T2: 50/50 search/insert throughput (kops/s) vs threads")
}

// F1Figure prints the same data as CSV series for plotting (the paper's
// claims as a figure: throughput curves per method).
func F1Figure(w io.Writer, p Params) {
	fmt.Fprintln(w, "\nF1: throughput curves (CSV: mix,method,threads,ops_per_sec)")
	for _, mix := range []struct {
		name string
		m    Mix
	}{{"search", Mix{SearchPct: 100}}, {"mixed", Mix{SearchPct: 50, InsertPct: 50}}} {
		for _, method := range AllMethods() {
			for _, tc := range p.Threads {
				kv, closer := method.New(p.Capacity)
				Preload(kv, p.Preload)
				r := Run(kv, tc, p.OpsPerThread, p.Preload, mix.m)
				closer()
				fmt.Fprintf(w, "%s,%s,%d,%.0f\n", mix.name, method.Name, tc, r.OpsPerSec())
			}
		}
	}
}

func runScaling(w io.Writer, p Params, mix Mix, id, title string) {
	rows := make(map[string][]Result)
	order := []string{}
	var poolLines []string
	for _, method := range AllMethods() {
		order = append(order, method.Name)
		for _, tc := range p.Threads {
			kv, closer := method.New(p.Capacity)
			Preload(kv, p.Preload)
			r := Run(kv, tc, p.OpsPerThread, p.Preload, mix)
			p.Report.Add(id, fmt.Sprintf("%s/threads=%d", method.Name, tc), r.OpsPerSec(), "ops/s")
			if pt, ok := kv.(*PiTree); ok {
				s := pt.PoolStats()
				ts := pt.T.Stats.Snapshot()
				optRatio := 0.0
				if ts.OptimisticHits+ts.OptimisticRetries > 0 {
					optRatio = float64(ts.OptimisticHits) / float64(ts.OptimisticHits+ts.OptimisticRetries)
				}
				p.Report.Add(id, fmt.Sprintf("%s/threads=%d/opt-hit-ratio", method.Name, tc), optRatio, "ratio")
				p.Report.Add(id, fmt.Sprintf("%s/threads=%d/opt-fallbacks", method.Name, tc), float64(ts.OptimisticFallbacks), "count")
				poolLines = append(poolLines, fmt.Sprintf(
					"  threads=%-2d hits=%d misses=%d evictions=%d hit-ratio=%.2f%% opt-hits=%d opt-retries=%d opt-fallbacks=%d opt-hit-ratio=%.2f%%",
					tc, s.Hits, s.Misses, s.Evictions, 100*s.HitRatio(),
					ts.OptimisticHits, ts.OptimisticRetries, ts.OptimisticFallbacks, 100*optRatio))
			}
			closer()
			rows[method.Name] = append(rows[method.Name], r)
		}
	}
	printOrdered(w, title, p.Threads, order, rows)
	if len(poolLines) > 0 {
		fmt.Fprintln(w, "pi-tree buffer pool:")
		for _, ln := range poolLines {
			fmt.Fprintln(w, ln)
		}
	}
}

func printOrdered(w io.Writer, title string, threads []int, order []string, rows map[string][]Result) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-16s", "method")
	for _, tc := range threads {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d thr", tc))
	}
	fmt.Fprintf(w, "%12s\n", "scale")
	for _, name := range order {
		results := rows[name]
		fmt.Fprintf(w, "%-16s", name)
		var first, last float64
		for i, r := range results {
			ops := r.OpsPerSec()
			if i == 0 {
				first = ops
			}
			last = ops
			fmt.Fprintf(w, "%12.1f", ops/1000)
		}
		scale := 0.0
		if first > 0 {
			scale = last / first
		}
		fmt.Fprintf(w, "%11.2fx\n", scale)
	}
}

// T3SMORate is experiment T3 (and F2 as a crossover series): insert-only
// throughput as node capacity shrinks — smaller nodes mean more frequent
// splits, so the penalty of SERIAL structure changes grows while the
// decomposed atomic actions of the Π-tree keep SMOs off the critical
// path (innovation 2 vs the ARIES/IM discipline).
func T3SMORate(w io.Writer, p Params) {
	caps := []int{128, 32, 8}
	threads := 8
	fmt.Fprintf(w, "\nT3: insert-only throughput (kops/s) at %d threads vs node capacity (split rate rises rightward)\n", threads)
	fmt.Fprintf(w, "%-16s", "method")
	for _, c := range caps {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("cap %d", c))
	}
	fmt.Fprintf(w, "\n")
	for _, method := range AllMethods() {
		fmt.Fprintf(w, "%-16s", method.Name)
		for _, c := range caps {
			kv, closer := method.New(c)
			Preload(kv, p.Preload/5)
			r := Run(kv, threads, p.OpsPerThread/2, p.Preload/5, Mix{InsertPct: 100})
			closer()
			fmt.Fprintf(w, "%12.1f", r.OpsPerSec()/1000)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintln(w, "F2 series (CSV: method,capacity,ops_per_sec) printed by -exp F2")

	// Part two: SEARCH LATENCY while splits rage. This is the paper's
	// claim in a form measurable even on one CPU: under serial SMOs a
	// search can be blocked for the duration of an entire multi-level
	// structure change, while decomposed atomic actions never make a
	// search wait for more than one short page-level action.
	fmt.Fprintf(w, "\nT3b: search latency under an SMO storm (capacity 8, 4 insert goroutines + 1 probing searcher)\n")
	fmt.Fprintf(w, "%-16s%12s%12s%12s%14s\n", "method", "p50", "p99", "p99.9", "max")
	for _, method := range AllMethods() {
		kv, closer := method.New(8)
		Preload(kv, p.Preload/10)
		lat := measureSearchLatency(kv, p.Preload/10, p.OpsPerThread/4)
		closer()
		p.Report.Add("T3b", method.Name+"/p50", float64(percentileDur(lat, 50).Nanoseconds()), "ns")
		p.Report.Add("T3b", method.Name+"/p99", float64(percentileDur(lat, 99).Nanoseconds()), "ns")
		fmt.Fprintf(w, "%-16s%12v%12v%12v%14v\n", method.Name,
			percentileDur(lat, 50), percentileDur(lat, 99), percentileDur(lat, 99.9), percentileDur(lat, 100))
	}

	// Part three: TREE-WIDE EXCLUSION, the scheduler-independent form of
	// the claim. A structure change in the Π-tree never holds a resource
	// that stalls the whole tree — every action is page-local. The
	// baselines each hold one: serial-SMO's tree latch for whole
	// structure changes, the subtree tree's root anchor while the root is
	// unsafe, and the global lock for every single write.
	fmt.Fprintf(w, "\nT3c: tree-wide exclusive holds during 20k inserts (capacity 8, single-threaded for determinism)\n")
	fmt.Fprintf(w, "%-16s%14s%16s%18s\n", "method", "holds", "total excl.", "excl. per insert")
	for _, method := range AllMethods() {
		kv, closer := method.New(8)
		const n = 20000
		for i := 0; i < n; i++ {
			kv.Insert(keys.Uint64(uint64(i)*0x9E3779B97F4A7C15>>16), []byte("w"))
		}
		count, total := int64(0), time.Duration(0)
		if ex, ok := kv.(interface {
			ExclusionStats() (int64, time.Duration)
		}); ok {
			count, total = ex.ExclusionStats()
		}
		closer()
		fmt.Fprintf(w, "%-16s%14d%16v%18v\n", method.Name, count, total.Round(time.Microsecond), (total / n).Round(time.Nanosecond))
	}
	fmt.Fprintln(w, "(pi-tree holds NO tree-wide exclusive resource: its structure changes are page-local atomic actions)")
}

// measureSearchLatency runs insert goroutines that split constantly and
// one searcher that records per-operation latency.
func measureSearchLatency(kv KV, preloaded, inserts int) []time.Duration {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < inserts; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := seq.Add(1)
				k := (s * 0x9E3779B97F4A7C15 % uint64(preloaded*4)) * 2
				kv.Insert(keys.Uint64(k+1), []byte("w"))
			}
		}()
	}
	var lat []time.Duration
	si, hasSI := kv.(searchIntoKV)
	buf := make([]byte, 0, 64)
	for i := 0; i < 20000; i++ {
		k := uint64(i%preloaded) * 2
		t0 := time.Now()
		if hasSI {
			if v, _ := si.SearchInto(keys.Uint64(k), buf); v != nil {
				buf = v[:0]
			}
		} else {
			kv.Search(keys.Uint64(k))
		}
		lat = append(lat, time.Since(t0))
	}
	close(stop)
	wg.Wait()
	return lat
}

func percentileDur(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// F2Crossover prints the T3 data as CSV.
func F2Crossover(w io.Writer, p Params) {
	fmt.Fprintln(w, "\nF2: SMO-rate crossover (CSV: method,capacity,ops_per_sec)")
	for _, method := range AllMethods() {
		for _, c := range []int{256, 128, 64, 32, 16, 8} {
			kv, closer := method.New(c)
			Preload(kv, p.Preload/5)
			r := Run(kv, 8, p.OpsPerThread/2, p.Preload/5, Mix{InsertPct: 100})
			closer()
			fmt.Fprintf(w, "%s,%d,%.0f\n", method.Name, c, r.OpsPerSec())
		}
	}
}

// T6LatchHold is experiment T6: the distribution of U/X latch hold times
// on index nodes (levels >= 1) under a mixed workload — the paper's
// claim that all actions above the data level are short independent
// atomic actions that do not impede normal activity.
func T6LatchHold(w io.Writer, p Params) {
	timer := &latch.HoldTimer{}
	pi := NewPiTree(engine.Options{}, core.Options{
		LeafCapacity:  p.Capacity,
		IndexCapacity: p.Capacity,
		Consolidation: true,
		IndexHold:     timer,
	})
	defer pi.Close()
	Preload(pi, p.Preload/2)
	Run(pi, 8, p.OpsPerThread/2, p.Preload/2, Mix{SearchPct: 40, InsertPct: 60})
	pi.T.DrainCompletions()
	fmt.Fprintf(w, "\nT6: U/X latch hold times on index nodes (mixed workload, 8 threads)\n")
	fmt.Fprintf(w, "holds=%d p50=%v p95=%v p99=%v max=%v\n",
		timer.Count(), timer.Percentile(50), timer.Percentile(95), timer.Percentile(99), timer.Percentile(100))
	st := pi.T.Stats.Snapshot()
	fmt.Fprintf(w, "splits: leaf=%d index=%d rootGrowths=%d postsPerformed=%d sideTraversals=%d\n",
		st.LeafSplits, st.IndexSplits, st.RootGrowths, st.PostsPerformed, st.SideTraversals)
}

// T9SavedPath is experiment T9: how often index-term posting can reuse
// the remembered path (state identifiers unchanged) instead of a full
// re-traversal, across the three §5.2 regimes.
func T9SavedPath(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT9: saved-path verification during postings (insert-heavy, capacity 16)\n")
	fmt.Fprintf(w, "%-28s%12s%12s%12s\n", "regime", "hits", "misses", "hit rate")
	regimes := []struct {
		name string
		opts core.Options
	}{
		{"CNS (immortal nodes)", core.Options{Consolidation: false}},
		{"CP, dealloc not update", core.Options{Consolidation: true}},
		{"CP, dealloc is update", core.Options{Consolidation: true, DeallocIsUpdate: true}},
	}
	for _, rg := range regimes {
		opts := rg.opts
		opts.LeafCapacity = 16
		opts.IndexCapacity = 16
		pi := NewPiTree(engine.Options{}, opts)
		Run(pi, 8, p.OpsPerThread/2, 1, Mix{InsertPct: 100})
		pi.T.DrainCompletions()
		st := pi.T.Stats.Snapshot()
		total := st.PathVerifyHits + st.PathVerifyMisses
		rate := 0.0
		if total > 0 {
			rate = float64(st.PathVerifyHits) / float64(total)
		}
		fmt.Fprintf(w, "%-28s%12d%12d%11.1f%%\n", rg.name, st.PathVerifyHits, st.PathVerifyMisses, rate*100)
		pi.Close()
	}
	fmt.Fprintln(w, "(CP with 'dealloc not update' must re-traverse from the root: hits are structural zero)")
}

// T8Invariants is experiment T8: CNS single-latch descent vs CP latch
// coupling, and both de-allocation strategies, under a delete-heavy
// workload that exercises consolidation.
func T8Invariants(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT8: invariant regimes under mixed insert/delete/search (8 threads, kops/s)\n")
	fmt.Fprintf(w, "%-28s%12s%14s%14s\n", "regime", "kops/s", "consolidations", "restarts")
	regimes := []struct {
		name string
		opts core.Options
	}{
		{"CNS (no consolidation)", core.Options{Consolidation: false}},
		{"CP, dealloc not update", core.Options{Consolidation: true}},
		{"CP, dealloc is update", core.Options{Consolidation: true, DeallocIsUpdate: true}},
	}
	for _, rg := range regimes {
		opts := rg.opts
		opts.LeafCapacity = 32
		opts.IndexCapacity = 32
		pi := NewPiTree(engine.Options{}, opts)
		Preload(pi, p.Preload/5)
		start := time.Now()
		res := runWithDeletes(pi, 8, p.OpsPerThread/2, p.Preload/5)
		elapsed := time.Since(start)
		pi.T.DrainCompletions()
		st := pi.T.Stats.Snapshot()
		fmt.Fprintf(w, "%-28s%12.1f%14d%14d\n", rg.name, float64(res)/elapsed.Seconds()/1000, st.Consolidations, st.Restarts)
		pi.Close()
	}
}

func runWithDeletes(pi *PiTree, threads, opsPerThread, preloaded int) int {
	done := make(chan int, threads)
	stripe := preloaded / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			n := 0
			// Each thread owns a contiguous stripe and deletes it front to
			// back (emptying whole leaves, which is what actually drives
			// consolidation), reinserting behind itself and searching the
			// not-yet-deleted tail.
			base := w * stripe
			delCursor, reinsCursor := 0, 0
			for i := 0; i < opsPerThread; i++ {
				switch i % 4 {
				case 0, 1:
					k := uint64(base+delCursor%stripe) * 2
					delCursor++
					_ = pi.T.Delete(nil, keys.Uint64(k))
				case 2:
					k := uint64(base+reinsCursor%stripe) * 2
					reinsCursor++
					_ = pi.T.Insert(nil, keys.Uint64(k), []byte("re"))
				default:
					k := uint64(base+(delCursor+7)%stripe) * 2
					_, _, _ = pi.T.Search(nil, keys.Uint64(k))
				}
				n++
			}
			done <- n
		}(w)
	}
	total := 0
	for w := 0; w < threads; w++ {
		total += <-done
	}
	return total
}
