package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/recovery"
	"repro/internal/spatial"
	"repro/internal/tsb"
)

// T4CrashMatrix is experiment T4: run a scripted transactional workload,
// crash at every log-record boundary, restart, and verify the tree is
// well-formed and contains exactly the surviving committed data. This is
// innovation 4 quantified: recovery never takes special measures for
// interrupted structure changes.
func T4CrashMatrix(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT4: crash-at-every-log-boundary matrix (committed txns survive, losers roll back, tree stays well-formed)\n")
	fmt.Fprintf(w, "%-24s%12s%12s%12s%14s\n", "regime", "boundaries", "verified", "SMO losers", "txn losers")
	type regime struct {
		name  string
		eopts engine.Options
		topts core.Options
	}
	regimes := []regime{
		{"logical-undo/CP", engine.Options{}, core.Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, SyncCompletion: true}},
		{"page-undo/CP", engine.Options{PageOriented: true}, core.Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, SyncCompletion: true}},
	}
	for _, rg := range regimes {
		e := engine.New(rg.eopts)
		b := core.Register(e.Reg, rg.eopts.PageOriented)
		st := e.AddStore(1, core.Codec{})
		tree, err := core.Create(st, e.TM, e.Locks, b, "t4", rg.topts)
		if err != nil {
			panic(err)
		}
		const n = 60
		for i := 0; i < n; i++ {
			tx := e.TM.Begin()
			if err := tree.Insert(tx, keys.Uint64(uint64(i)), []byte("v")); err != nil {
				panic(err)
			}
			if i%7 == 3 {
				_ = tx.Abort()
			} else {
				_ = tx.Commit()
			}
			if i%5 == 4 {
				tree.DrainCompletions()
			}
		}
		tree.DrainCompletions()
		if err := e.Log.ForceAll(); err != nil {
			panic(err)
		}
		tree.Close()

		boundaries := e.Log.FullImage().Boundaries()
		verified := 0
		smoLosers, txnLosers := 0, 0
		for _, cut := range boundaries {
			cut := cut
			img := e.Crash(&cut)
			e2 := engine.Restarted(img, rg.eopts)
			b2 := core.Register(e2.Reg, rg.eopts.PageOriented)
			st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
			pend, err := e2.AnalyzeAndRedo()
			if err != nil {
				panic(err)
			}
			tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "t4", rg.topts)
			if err != nil {
				// Cut precedes tree creation: only acceptable failure.
				_ = pend.UndoLosers(e2.TM)
				continue
			}
			if err := e2.FinishRecovery(pend); err != nil {
				panic(err)
			}
			smoLosers += pend.Stats.LoserActions
			txnLosers += pend.Stats.LoserTxns
			if _, err := st2.Root("t4"); err != nil {
				// Undo rolled back an uncommitted tree creation that the
				// pre-undo Open transiently observed: a cleanly absent
				// tree, not a verification failure.
				tree2.Close()
				continue
			}
			if _, err := tree2.Verify(); err != nil {
				panic(fmt.Sprintf("%s: cut %d: %v", rg.name, cut, err))
			}
			verified++
			tree2.Close()
		}
		fmt.Fprintf(w, "%-24s%12d%12d%12d%14d\n", rg.name, len(boundaries), verified, smoLosers, txnLosers)
	}
	fmt.Fprintln(w, "(a panic above would mean an ill-formed tree after some crash point; none occurred)")
}

// T5LazyCompletion is experiment T5: freeze structure changes between
// their two atomic actions, crash, restart, then run traffic and count
// how lazily-scheduled postings complete the interrupted SMOs — and how
// duplicate schedulings are defused by the state test.
func T5LazyCompletion(w io.Writer, p Params) {
	topts := core.Options{LeafCapacity: 8, IndexCapacity: 8, Consolidation: true, SyncCompletion: true, NoCompletion: true}
	e := engine.New(engine.Options{})
	b := core.Register(e.Reg, false)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "t5", topts)
	if err != nil {
		panic(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(i)), []byte("v")); err != nil {
			panic(err)
		}
	}
	splits := tree.Stats.LeafSplits.Load() + tree.Stats.RootGrowths.Load()
	if err := e.Log.ForceAll(); err != nil {
		panic(err)
	}
	tree.Close()

	img := e.Crash(nil)
	topts.NoCompletion = false
	e2 := engine.Restarted(img, engine.Options{})
	b2 := core.Register(e2.Reg, false)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, _ := e2.AnalyzeAndRedo()
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "t5", topts)
	if err != nil {
		panic(err)
	}
	_ = e2.FinishRecovery(pend)
	defer tree2.Close()

	sideBefore := tree2.Stats.SideTraversals.Load()
	for i := 0; i < n; i++ {
		if _, ok, _ := tree2.Search(nil, keys.Uint64(uint64(i))); !ok {
			panic(fmt.Sprintf("key %d lost", i))
		}
	}
	firstPass := tree2.Stats.SideTraversals.Load() - sideBefore
	tree2.DrainCompletions()
	st5 := tree2.Stats.Snapshot()
	pre := tree2.Stats.SideTraversals.Load()
	for i := 0; i < n; i++ {
		_, _, _ = tree2.Search(nil, keys.Uint64(uint64(i)))
	}
	residual := tree2.Stats.SideTraversals.Load() - pre
	if _, err := tree2.Verify(); err != nil {
		panic(err)
	}
	fmt.Fprintf(w, "\nT5: lazy completion after crash mid-SMO\n")
	fmt.Fprintf(w, "splits frozen incomplete at crash:    %d\n", splits)
	fmt.Fprintf(w, "side traversals by first search pass: %d\n", firstPass)
	fmt.Fprintf(w, "postings scheduled / performed:       %d / %d\n", st5.PostsScheduled, st5.PostsPerformed)
	fmt.Fprintf(w, "duplicate postings defused (no-op):   %d\n", st5.PostsAlreadyDone+st5.PostsObsolete)
	fmt.Fprintf(w, "residual side traversals after done:  %d (0 = tree fully completed)\n", residual)
}

// T7MoveLocks is experiment T7: transactional insert throughput under
// page-oriented UNDO (move locks, in-transaction splits) vs logical UNDO
// (all splits independent) — §4.2's cost, quantified.
func T7MoveLocks(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT7: move-lock cost — transactional inserts, 8 threads, capacity 16 (kops/s)\n")
	fmt.Fprintf(w, "%-24s%10s%14s%12s%11s%9s%9s%9s\n",
		"undo regime", "kops/s", "moveLockWaits", "inTxnSplits", "deadlocks", "waits", "grants", "stripes")
	for _, rg := range []struct {
		name string
		e    engine.Options
		o    core.Options
	}{
		{"logical (non-page)", engine.Options{}, core.Options{}},
		{"page-oriented/page-MV", engine.Options{PageOriented: true}, core.Options{}},
		{"page-oriented/record-MV", engine.Options{PageOriented: true}, core.Options{RecordMoveLocks: true}},
	} {
		topts := rg.o
		topts.LeafCapacity = 16
		topts.IndexCapacity = 16
		topts.Consolidation = true
		pi := NewPiTree(rg.e, topts)
		start := time.Now()
		total := runTxnInserts(pi, 8, p.OpsPerThread/4)
		elapsed := time.Since(start)
		pi.T.DrainCompletions()
		st := pi.T.Stats.Snapshot()
		lm := pi.E.Locks.StatsSnapshot()
		kops := float64(total) / elapsed.Seconds() / 1000
		fmt.Fprintf(w, "%-24s%10.1f%14d%12d%11d%9d%9d%9d\n", rg.name,
			kops, st.MoveLockWaits, st.InTxnSplits, lm.Deadlocks, lm.Waits, lm.Grants, lm.Stripes)
		p.Report.Add("T7", rg.name+"/kops", kops, "kops/s")
		p.Report.Add("T7", rg.name+"/lock-waits", float64(lm.Waits), "count")
		p.Report.Add("T7", rg.name+"/deadlocks", float64(lm.Deadlocks), "count")
		p.Report.Add("T7", rg.name+"/lock-grants", float64(lm.Grants), "count")
		pi.Close()
	}
}

func runTxnInserts(pi *PiTree, threads, txPerThread int) int {
	done := make(chan int, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			n := 0
			for i := 0; i < txPerThread; i++ {
				tx := pi.E.TM.Begin()
				ok := true
				for j := 0; j < 5; j++ {
					k := uint64(w)<<40 | uint64(i*5+j)
					if err := pi.T.Insert(tx, keys.Uint64(k), []byte("v")); err != nil {
						ok = false
						break
					}
				}
				if ok {
					_ = tx.Commit()
					n += 5
				} else {
					_ = tx.Abort()
				}
			}
			done <- n
		}(w)
	}
	total := 0
	for w := 0; w < threads; w++ {
		total += <-done
	}
	return total
}

// T10TSB is experiment T10: the TSB-tree keeps current-version access
// fast by time-splitting history out of current nodes, while as-of
// queries stay exact.
func T10TSB(w io.Writer, p Params) {
	e := engine.New(engine.Options{})
	b := tsb.Register(e.Reg)
	st := e.AddStore(1, tsb.Codec{})
	tree, err := tsb.Create(st, e.TM, e.Locks, b, "t10", tsb.Options{DataCapacity: 32, IndexCapacity: 32, SyncCompletion: true})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	const nKeys = 2000
	const versionsPerKey = 10
	var sampleTimes []uint64
	for v := 0; v < versionsPerKey; v++ {
		for k := 0; k < nKeys; k++ {
			if err := tree.Put(nil, keys.Uint64(uint64(k)), []byte(fmt.Sprintf("v%d", v))); err != nil {
				panic(err)
			}
		}
		sampleTimes = append(sampleTimes, tree.Now())
		tree.DrainCompletions()
	}
	shape, err := tree.Verify()
	if err != nil {
		panic(err)
	}

	measure := func(asOf uint64, label string) {
		start := time.Now()
		const probes = 20000
		for i := 0; i < probes; i++ {
			k := keys.Uint64(uint64(i % nKeys))
			if _, ok, err := tree.GetAsOf(nil, k, asOf); err != nil || !ok {
				panic(fmt.Sprintf("probe %s key %d: ok=%v err=%v", label, i%nKeys, ok, err))
			}
		}
		el := time.Since(start)
		fmt.Fprintf(w, "%-28s%12.1f kops/s\n", label, float64(probes)/el.Seconds()/1000)
	}

	fmt.Fprintf(w, "\nT10: TSB-tree — %d keys x %d versions\n", nKeys, versionsPerKey)
	fmt.Fprintf(w, "time splits=%d key splits=%d current nodes=%d history nodes=%d height=%d\n",
		tree.Stats.TimeSplits.Load(), tree.Stats.KeySplits.Load(), shape.CurrentNodes, shape.HistoryNodes, shape.Height)
	measure(tree.Now(), "current-version reads")
	measure(sampleTimes[len(sampleTimes)/2], "as-of reads (mid history)")
	measure(sampleTimes[0], "as-of reads (oldest)")
	fmt.Fprintf(w, "current-node versions=%d of %d total (history moved out of the current path)\n",
		shape.CurrentVersions, shape.Versions)
}

// T11Spatial is experiment T11: the multi-attribute Π-tree under random
// points — clipping produces multi-parent children that the §3.3
// consolidation test must reject, and region queries stay exact.
func T11Spatial(w io.Writer, p Params) {
	e := engine.New(engine.Options{})
	b := spatial.Register(e.Reg)
	st := e.AddStore(1, spatial.Codec{})
	tree, err := spatial.Create(st, e.TM, e.Locks, b, "t11", spatial.Options{DataCapacity: 16, IndexCapacity: 8, SyncCompletion: true})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	rng := newRng(123)
	const n = 20000
	inserted := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		pt := spatial.Point{X: rng.Uint64() % spatial.MaxCoord, Y: rng.Uint64() % spatial.MaxCoord}
		if err := tree.Insert(nil, pt, []byte("v")); err == nil {
			inserted++
		}
	}
	insertElapsed := time.Since(start)
	tree.DrainCompletions()
	shape, err := tree.Verify()
	if err != nil {
		panic(err)
	}
	// Region query probes.
	start = time.Now()
	const queries = 2000
	hits := 0
	for i := 0; i < queries; i++ {
		x := rng.Uint64() % (spatial.MaxCoord / 2)
		y := rng.Uint64() % (spatial.MaxCoord / 2)
		q := spatial.Rect{X0: x, Y0: y, X1: x + spatial.MaxCoord/16, Y1: y + spatial.MaxCoord/16}
		_ = tree.RegionQuery(q, func(pt spatial.Point, v []byte) bool {
			hits++
			return true
		})
	}
	qElapsed := time.Since(start)

	fmt.Fprintf(w, "\nT11: multi-attribute Π-tree — %d random points\n", inserted)
	fmt.Fprintf(w, "inserts: %.1f kops/s; region queries: %.1f q/s (%.1f hits avg)\n",
		float64(inserted)/insertElapsed.Seconds()/1000, float64(queries)/qElapsed.Seconds(), float64(hits)/float64(queries))
	fmt.Fprintf(w, "data nodes=%d index nodes=%d height=%d clipped terms=%d (multi-parent children present: %v)\n",
		shape.DataNodes, shape.IndexNodes, shape.Height, shape.Clipped, shape.Clipped > 0)
	fmt.Fprintf(w, "space partition verified: pairwise disjoint regions covering the full key space\n")
}

// T12Recovery is experiment T12: restart cost vs checkpointing, and the
// log-force savings of relative durability for atomic actions (§4.3.1).
func T12Recovery(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT12: recovery and relative durability\n")

	run := func(checkpoint bool) (recovery.Stats, time.Duration, int64) {
		e := engine.New(engine.Options{})
		b := core.Register(e.Reg, false)
		st := e.AddStore(1, core.Codec{})
		tree, err := core.Create(st, e.TM, e.Locks, b, "t12", core.Options{LeafCapacity: 32, IndexCapacity: 32, Consolidation: true, SyncCompletion: true})
		if err != nil {
			panic(err)
		}
		for i := 0; i < 20000; i++ {
			if err := tree.Insert(nil, keys.Uint64(uint64(i)), []byte("v")); err != nil {
				panic(err)
			}
			if checkpoint && i%5000 == 4999 {
				tree.DrainCompletions()
				if _, err := e.FlushAll(); err != nil {
					panic(err)
				}
				if _, err := e.Checkpoint(); err != nil {
					panic(err)
				}
			}
		}
		tree.DrainCompletions()
		if err := e.Log.ForceAll(); err != nil {
			panic(err)
		}
		_, flushes := e.Log.Stats()
		tree.Close()
		img := e.Crash(nil)

		e2 := engine.Restarted(img, engine.Options{})
		core.Register(e2.Reg, false)
		e2.AttachStore(1, core.Codec{}, img.Disks[1])
		start := time.Now()
		stats, err := e2.Recover()
		if err != nil {
			panic(err)
		}
		return stats, time.Since(start), flushes
	}

	noCkpt, dNo, _ := run(false)
	withCkpt, dYes, _ := run(true)
	fmt.Fprintf(w, "%-32s%14s%14s%12s\n", "variant", "redo records", "skipped", "restart")
	fmt.Fprintf(w, "%-32s%14d%14d%12v\n", "no checkpoint", noCkpt.RedoneRecords, noCkpt.RedoSkipped, dNo.Round(time.Millisecond))
	fmt.Fprintf(w, "%-32s%14d%14d%12v\n", "checkpoint every 5k inserts", withCkpt.RedoneRecords, withCkpt.RedoSkipped, dYes.Round(time.Millisecond))

	// Relative durability: count physical log forces with and without
	// forcing on every atomic-action commit.
	forceCount := func(force bool) int64 {
		e := engine.New(engine.Options{ForceOnAACommit: force})
		b := core.Register(e.Reg, false)
		st := e.AddStore(1, core.Codec{})
		tree, _ := core.Create(st, e.TM, e.Locks, b, "t12b", core.Options{LeafCapacity: 16, IndexCapacity: 16, Consolidation: true, SyncCompletion: true})
		for i := 0; i < 5000; i++ {
			_ = tree.Insert(nil, keys.Uint64(uint64(i)), []byte("v"))
		}
		tree.DrainCompletions()
		tree.Close()
		_, flushes := e.Log.Stats()
		return flushes
	}
	relForces, aaForces := forceCount(false), forceCount(true)
	fmt.Fprintf(w, "log forces for 5k inserts: relative durability=%d, force-per-AA-commit=%d\n",
		relForces, aaForces)
	p.Report.Add("T12", "restart-no-ckpt", dNo.Seconds()*1000, "ms")
	p.Report.Add("T12", "restart-with-ckpt", dYes.Seconds()*1000, "ms")
	p.Report.Add("T12", "forces/relative-durability", float64(relForces), "count")
	p.Report.Add("T12", "forces/force-per-aa-commit", float64(aaForces), "count")
}

// tiny deterministic rng without math/rand import gymnastics.
type xorshift struct{ s uint64 }

func newRng(seed uint64) *xorshift { return &xorshift{s: seed | 1} }

func (x *xorshift) Uint64() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}
