package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

// T13GroupCommit is experiment T13: commit throughput and physical force
// count as committer concurrency grows. Each committer runs
// single-insert transactions ending in a durable commit; with group
// commit the leader of each force round carries every commit registered
// so far, so forces-per-commit falls well below 1 as soon as committers
// overlap while every commit still returns with its record stable. The
// final line re-checks relative durability (§4.3.1) under concurrency:
// an atomic-action-only workload performs zero forces.
func T13GroupCommit(w io.Writer, p Params) {
	fmt.Fprintf(w, "\nT13: group commit — transactional single-insert commits (capacity 32)\n")
	fmt.Fprintf(w, "%-12s%10s%12s%12s%12s%16s\n",
		"committers", "kops/s", "commits", "forces", "rounds", "forces/commit")
	for _, committers := range []int{1, 2, 4, 8, 16} {
		pi := NewPiTree(engine.Options{}, core.Options{
			LeafCapacity: 32, IndexCapacity: 32, Consolidation: true,
		})
		_, before := pi.E.Log.Stats()
		start := time.Now()
		total := runTxnInserts(pi, committers, p.OpsPerThread/8)
		elapsed := time.Since(start)
		pi.T.DrainCompletions()
		_, after := pi.E.Log.Stats()
		_, rounds := pi.E.Log.GroupCommitStats()
		commits := total / 5 // runTxnInserts commits 5 inserts per txn
		forces := after - before
		perCommit := float64(forces) / float64(commits)
		kops := float64(total) / elapsed.Seconds() / 1000
		fmt.Fprintf(w, "%-12d%10.1f%12d%12d%12d%16.3f\n",
			committers, kops, commits, forces, rounds, perCommit)
		p.Report.Add("T13", fmt.Sprintf("committers=%d/kops", committers), kops, "kops/s")
		p.Report.Add("T13", fmt.Sprintf("committers=%d/forces-per-commit", committers), perCommit, "ratio")
		pi.Close()
	}

	// Atomic actions never force, grouped or not.
	pi := NewPiTree(engine.Options{}, core.Options{
		LeafCapacity: 32, IndexCapacity: 32, Consolidation: true,
	})
	_, before := pi.E.Log.Stats()
	for i := 0; i < 5000; i++ {
		pi.Insert(keys.Uint64(uint64(i)), []byte("v"))
	}
	pi.T.DrainCompletions()
	_, after := pi.E.Log.Stats()
	fmt.Fprintf(w, "atomic-action-only workload (5k inserts): %d forces (relative durability)\n", after-before)
	p.Report.Add("T13", "aa-only-forces", float64(after-before), "count")
	pi.Close()
}
