package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/recovery"
)

// T15ParallelRestart is experiment T15: restart wall time under the
// parallel recovery pipeline across log length, dirty-page population and
// worker count. Each configuration builds one crashed image (insert
// workload, optional mid-run flush+checkpoint, a handful of uncommitted
// losers forced into the log), then recovers fresh snapshots of that same
// image under the serial two-scan restart and under the fused pipeline at
// 1/2/4/8 workers. The fused pipeline wins even on one core: analysis and
// redo planning share a single zero-copy log scan, and each page is
// fetched, pinned and latched once for its whole record batch instead of
// once per record; extra workers then overlap independent pages.
func T15ParallelRestart(w io.Writer, p Params) {
	inserts := 15_000
	long := 40_000
	if p.OpsPerThread > 50_000 { // -full
		inserts, long = 40_000, 100_000
	}

	type config struct {
		name     string
		inserts  int
		flushAt  int // FlushAll+Checkpoint after this many inserts (0 = never)
		stealers int // extra FlushAll sweeps spread over the run
	}
	configs := []config{
		{"short log, all pages dirty", inserts, 0, 0},
		{"long log, all pages dirty", long, 0, 0},
		{"long log, half flushed + ckpt", long, long / 2, 0},
		{"long log, steal-heavy (fetch-skip)", long, long / 2, 6},
	}

	fmt.Fprintf(w, "\nT15: parallel restart — log length x dirty pages x workers\n")
	for _, cfg := range configs {
		img := buildRestartImage(cfg.inserts, cfg.flushAt, cfg.stealers)

		fmt.Fprintf(w, "\n%s (%d inserts):\n", cfg.name, cfg.inserts)
		fmt.Fprintf(w, "%-12s%10s%10s%12s%12s%12s%12s%12s\n",
			"variant", "restart", "speedup", "analysis", "redo", "undo", "redo Mrec/s", "skip pages")

		var serialT time.Duration
		for _, v := range []struct {
			name string
			opts engine.Options
		}{
			{"serial", engine.Options{SerialRestart: true}},
			{"workers=1", engine.Options{RecoveryWorkers: 1}},
			{"workers=2", engine.Options{RecoveryWorkers: 2}},
			{"workers=4", engine.Options{RecoveryWorkers: 4}},
			{"workers=8", engine.Options{RecoveryWorkers: 8}},
		} {
			st, elapsed := recoverImage(img, v.opts)
			if v.name == "serial" {
				serialT = elapsed
			}
			speedup := serialT.Seconds() / elapsed.Seconds()
			fmt.Fprintf(w, "%-12s%10v%9.2fx%12v%12v%12v%12.2f%12d\n",
				v.name, elapsed.Round(10*time.Microsecond), speedup,
				st.AnalysisTime.Round(10*time.Microsecond),
				st.RedoTime.Round(10*time.Microsecond),
				st.UndoTime.Round(10*time.Microsecond),
				st.RedoRate()/1e6, st.FetchSkippedPages)
			tag := fmt.Sprintf("%s/%s", cfg.name, v.name)
			p.Report.Add("T15", tag+"/restart-ms", elapsed.Seconds()*1000, "ms")
			p.Report.Add("T15", tag+"/speedup", speedup, "x")
		}
	}
}

// buildRestartImage runs an insert workload with cfg's flush/checkpoint
// pattern, leaves three uncommitted user transactions in the forced log,
// and crashes.
func buildRestartImage(inserts, flushAt, stealers int) *engine.CrashImage {
	e := engine.New(engine.Options{})
	b := core.Register(e.Reg, false)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "t15",
		core.Options{LeafCapacity: 32, IndexCapacity: 32, Consolidation: true, SyncCompletion: true})
	if err != nil {
		panic(err)
	}
	stealEvery := 0
	if stealers > 0 {
		stealEvery = inserts / (stealers + 1)
	}
	for i := 0; i < inserts; i++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(i)), []byte("v")); err != nil {
			panic(err)
		}
		if flushAt > 0 && i == flushAt {
			tree.DrainCompletions()
			if _, err := e.FlushAll(); err != nil {
				panic(err)
			}
			if _, err := e.Checkpoint(); err != nil {
				panic(err)
			}
		}
		if stealEvery > 0 && i%stealEvery == stealEvery-1 {
			if _, err := e.FlushAll(); err != nil {
				panic(err)
			}
		}
	}
	tree.DrainCompletions()
	// Losers: user transactions whose updates are forced but never
	// committed, so restart's undo phase has real work.
	for t := 0; t < 3; t++ {
		tx := e.TM.Begin()
		for j := 0; j < 40; j++ {
			_ = tree.Insert(tx, keys.Uint64(uint64(inserts+t*1000+j)), []byte("loser"))
		}
	}
	if err := e.Log.ForceAll(); err != nil {
		panic(err)
	}
	tree.Close()
	return e.Crash(nil)
}

// recoverImage restarts a fresh snapshot of img under opts and reports
// the recovery stats and restart wall time (best of three runs). It
// follows the full restart protocol — analysis+redo, tree open, loser
// undo — since logical record undo needs the tree bound.
func recoverImage(img *engine.CrashImage, opts engine.Options) (recovery.Stats, time.Duration) {
	var best time.Duration
	var stats recovery.Stats
	for run := 0; run < 5; run++ {
		e2 := engine.Restarted(img, opts)
		b := core.Register(e2.Reg, false)
		st := e2.AttachStore(1, core.Codec{}, img.Disks[1].Snapshot())
		runtime.GC() // GC debt from prior runs must not bill this one
		start := time.Now()
		pend, err := e2.AnalyzeAndRedo()
		if err != nil {
			panic(err)
		}
		tree, err := core.Open(st, e2.TM, e2.Locks, b, "t15",
			core.Options{LeafCapacity: 32, IndexCapacity: 32, Consolidation: true, SyncCompletion: true})
		if err != nil {
			panic(err)
		}
		if err := pend.UndoLosers(e2.TM); err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		tree.Close()
		if run == 0 || elapsed < best {
			best, stats = elapsed, pend.Stats
		}
	}
	return stats, best
}
