package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/tsb"
)

// T16SnapshotReads is experiment T16: lock-free snapshot-isolation reads
// against lock-based consistent reads on the TSB-tree, under a zipfian
// read-heavy workload with a concurrent committing writer.
//
// Both read modes give a transaction-consistent view. The locked mode is
// the classical one: a read transaction takes the record S lock on every
// key it touches (strict 2PL), so hot keys serialize readers against the
// writer's X locks and every batch pays Begin/Commit. The snapshot mode
// captures (read timestamp, in-flight set) once and then reads through
// the version store with no locks at all — writers never wait for
// readers and readers never wait for writers. The experiment measures
// read throughput for both modes at 1/4/8 reader threads, the writer's
// throughput during each phase (flatness is the point: snapshot readers
// must not slow the writer), the lock-manager grant delta attributable
// to reads (zero for snapshots), and what version GC reclaimed behind
// the moving visibility horizon.
func T16SnapshotReads(w io.Writer, p Params) {
	const (
		nKeys       = 10_000
		batch       = 128 // reads per transaction / per snapshot capture
		writerBatch = 8   // puts per writer transaction
		preloadVers = 3
	)
	readsPerThread := p.OpsPerThread
	if readsPerThread < 10_000 {
		readsPerThread = 10_000
	}

	e := engine.New(engine.Options{})
	b := tsb.Register(e.Reg)
	st := e.AddStore(1, tsb.Codec{})
	tree, err := tsb.Create(st, e.TM, e.Locks, b, "t16",
		tsb.Options{DataCapacity: 32, IndexCapacity: 32, GC: true})
	if err != nil {
		panic(err)
	}
	defer tree.Close()

	for r := 0; r < preloadVers; r++ {
		for k := 0; k < nKeys; k++ {
			if err := tree.Put(nil, keys.Uint64(uint64(k)), []byte(fmt.Sprintf("p%d", r))); err != nil {
				panic(err)
			}
		}
	}
	tree.DrainCompletions()

	// Lock-based consistent read: batch reads under one transaction whose
	// record S locks are held to commit. Deadlocks (reader S against
	// writer X taken in opposite orders) abort the batch, which retries
	// under a fresh transaction — exactly what a 2PL system does.
	lockedReader := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.1, 1, nKeys-1)
		done := 0
		for done < readsPerThread {
			tx := e.TM.Begin()
			ok := true
			for i := 0; i < batch && done < readsPerThread; i++ {
				if _, _, err := tree.Get(tx, keys.Uint64(zipf.Uint64())); err != nil {
					ok = false
					break
				}
				done++
			}
			if ok {
				if err := tx.Commit(); err != nil {
					panic(err)
				}
			} else {
				_ = tx.Abort()
			}
		}
	}

	snapReader := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.1, 1, nKeys-1)
		buf := make([]byte, 0, 64)
		done := 0
		for done < readsPerThread {
			snap := e.BeginSnapshot()
			for i := 0; i < batch && done < readsPerThread; i++ {
				v, _, err := tree.SnapshotGet(snap, keys.Uint64(zipf.Uint64()), buf)
				if err != nil {
					panic(err)
				}
				if v != nil {
					buf = v[:0]
				}
				done++
			}
			snap.Release()
		}
	}

	// The writer is zipfian like the readers: update skew follows read
	// skew in real workloads, and it is exactly the hot keys where locked
	// readers queue behind the writer's X locks (held to commit, which
	// includes the log force) while snapshot readers never wait.
	writer := func(stop *atomic.Bool, n *atomic.Int64, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.1, 1, nKeys-1)
		for !stop.Load() {
			tx := e.TM.Begin()
			ok := true
			for i := 0; i < writerBatch; i++ {
				if err := tree.Put(tx, keys.Uint64(zipf.Uint64()), []byte("w")); err != nil {
					ok = false
					break
				}
			}
			if ok && tx.Commit() == nil {
				n.Add(writerBatch)
			} else if !ok {
				_ = tx.Abort()
			}
		}
	}

	// Lock-freedom check first, with no writer running: the grant delta
	// across a pure snapshot-read burst must be exactly zero.
	grantsBefore := e.Locks.Grants()
	snapReader(101)
	snapGrants := e.Locks.Grants() - grantsBefore
	p.Report.Add("T16", "snapshot/lock-grants", float64(snapGrants), "count")

	fmt.Fprintf(w, "\nT16: snapshot reads — zipfian(1.1) over %d keys, %d reads/thread, batch %d, one committing writer\n",
		nKeys, readsPerThread, batch)
	fmt.Fprintf(w, "snapshot-read lock grants (no writer): %d\n", snapGrants)
	fmt.Fprintf(w, "%-10s%14s%14s%10s%16s%16s\n",
		"threads", "locked kops", "snapshot kops", "speedup", "writer@locked", "writer@snapshot")

	run := func(tc int, read func(int64)) (readKops, writerKops float64, lag uint64) {
		var stop atomic.Bool
		var wrote atomic.Int64
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() { defer wwg.Done(); writer(&stop, &wrote, int64(tc)*31 + 7) }()

		var lagSample atomic.Uint64
		go func() {
			time.Sleep(30 * time.Millisecond)
			oldest, stable := e.TM.Watermarks()
			if stable > oldest && oldest != 0 {
				lagSample.Store(stable - oldest)
			}
		}()

		var rwg sync.WaitGroup
		start := time.Now()
		for t := 0; t < tc; t++ {
			rwg.Add(1)
			go func(t int) { defer rwg.Done(); read(int64(t)*7919 + 13) }(t)
		}
		rwg.Wait()
		el := time.Since(start)
		stop.Store(true)
		wwg.Wait()
		return float64(tc*readsPerThread) / el.Seconds() / 1000,
			float64(wrote.Load()) / el.Seconds() / 1000,
			lagSample.Load()
	}

	for _, tc := range []int{1, 4, 8} {
		lk, lw, _ := run(tc, lockedReader)
		sk, sw, lag := run(tc, snapReader)
		speedup := sk / lk
		fmt.Fprintf(w, "%-10d%14.1f%14.1f%9.2fx%16.1f%16.1f\n", tc, lk, sk, speedup, lw, sw)
		p.Report.Add("T16", fmt.Sprintf("locked/threads=%d", tc), lk*1000, "ops/s")
		p.Report.Add("T16", fmt.Sprintf("snapshot/threads=%d", tc), sk*1000, "ops/s")
		p.Report.Add("T16", fmt.Sprintf("speedup/threads=%d", tc), speedup, "x")
		p.Report.Add("T16", fmt.Sprintf("writer/locked/threads=%d", tc), lw*1000, "ops/s")
		p.Report.Add("T16", fmt.Sprintf("writer/snapshot/threads=%d", tc), sw*1000, "ops/s")
		if lag > 0 {
			p.Report.Add("T16", fmt.Sprintf("oldest-snapshot-lag/threads=%d", tc), float64(lag), "ticks")
		}
	}

	// Writer flatness at a fixed offered read load. Raw writer columns
	// above confound two effects on shared CPUs: locked readers donate
	// the core to the writer whenever they block, lock-free readers never
	// do. Pacing the readers (4 threads, small batches with sleeps, well
	// under either mode's capacity) holds the read load constant, so the
	// writer's throughput difference is purely what the readers' locks
	// cost it: S-lock queues on hot keys in locked mode, nothing in
	// snapshot mode.
	paced := func(snapshot bool) float64 {
		var stop atomic.Bool
		var wrote atomic.Int64
		var wwg sync.WaitGroup
		wwg.Add(1)
		go func() { defer wwg.Done(); writer(&stop, &wrote, 99) }()
		var rwg sync.WaitGroup
		deadline := time.Now().Add(2 * time.Second)
		start := time.Now()
		for t := 0; t < 4; t++ {
			rwg.Add(1)
			go func(seed int64) {
				defer rwg.Done()
				rng := rand.New(rand.NewSource(seed))
				zipf := rand.NewZipf(rng, 1.1, 1, nKeys-1)
				buf := make([]byte, 0, 64)
				for time.Now().Before(deadline) {
					if snapshot {
						snap := e.BeginSnapshot()
						for i := 0; i < 16; i++ {
							if v, _, err := tree.SnapshotGet(snap, keys.Uint64(zipf.Uint64()), buf); err == nil && v != nil {
								buf = v[:0]
							}
						}
						snap.Release()
					} else {
						tx := e.TM.Begin()
						ok := true
						for i := 0; i < 16; i++ {
							if _, _, err := tree.Get(tx, keys.Uint64(zipf.Uint64())); err != nil {
								ok = false
								break
							}
						}
						if ok {
							_ = tx.Commit()
						} else {
							_ = tx.Abort()
						}
					}
					time.Sleep(1600 * time.Microsecond)
				}
			}(int64(t) + 555)
		}
		rwg.Wait()
		el := time.Since(start)
		stop.Store(true)
		wwg.Wait()
		return float64(wrote.Load()) / el.Seconds() / 1000
	}
	pl := paced(false)
	ps := paced(true)
	fmt.Fprintf(w, "writer under paced reads (4 threads, fixed load): locked readers %.1f kops, snapshot readers %.1f kops\n", pl, ps)
	p.Report.Add("T16", "writer/paced-locked", pl*1000, "ops/s")
	p.Report.Add("T16", "writer/paced-snapshot", ps*1000, "ops/s")

	tree.DrainCompletions()
	if _, err := tree.RunGC(); err != nil {
		panic(err)
	}
	s := &tree.Stats
	fmt.Fprintf(w, "snapshot gets=%d hist-walks=%d restarts=%d | gc passes=%d retired nodes=%d reclaimed versions=%d removed terms=%d\n",
		s.SnapshotGets.Load(), s.SnapshotHistWalks.Load(), s.Restarts.Load(),
		s.GCPasses.Load(), s.GCRetiredNodes.Load(), s.GCReclaimedVersions.Load(), s.GCRemovedTerms.Load())
	p.Report.Add("T16", "gc/retired-nodes", float64(s.GCRetiredNodes.Load()), "count")
	p.Report.Add("T16", "gc/reclaimed-versions", float64(s.GCReclaimedVersions.Load()), "count")
	p.Report.Add("T16", "snapshot/hist-walks", float64(s.SnapshotHistWalks.Load()), "count")
}
