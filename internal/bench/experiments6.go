package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/maint"
)

// T17Churn is experiment T17: steady-state store size under sustained
// churn. A rolling key window (insert at the head, delete at the tail,
// constant live set) empties old leaves continuously; without background
// consolidation those leaves linger and the store grows without bound,
// while with consolidation + the persistent free-space map the emptied
// pages are merged away, freed, and recycled into new splits, so the
// store plateaus near the live-data footprint. The table shows allocated
// pages after each full window turnover plus the space-map and
// consolidation counters behind the curve.
func T17Churn(w io.Writer, p Params) {
	window := p.Preload / 5
	if window < 2_000 {
		window = 2_000
	}
	const cycles = 8

	fmt.Fprintf(w, "\nT17: rolling-window churn, %d live keys, %d full turnovers (leaf capacity 16)\n", window, cycles)
	fmt.Fprintf(w, "%-14s", "consolidation")
	for c := 1; c <= cycles; c++ {
		fmt.Fprintf(w, "%8s", fmt.Sprintf("turn%d", c))
	}
	fmt.Fprintf(w, "%10s%10s%10s%9s%8s%9s\n", "recycled", "extended", "freed", "consols", "batches", "kops/s")

	for _, consol := range []bool{false, true} {
		e := engine.New(engine.Options{})
		b := core.Register(e.Reg, false)
		st := e.AddStore(1, core.Codec{})
		// Consolidation runs on real background workers here (not
		// SyncCompletion) so the run exercises governor admission; the
		// per-cycle DrainCompletions below is the measurement barrier.
		gov := maint.New(50_000, maint.DefaultHighWater, nil)
		tree, err := core.Create(st, e.TM, e.Locks, b, "t17", core.Options{
			LeafCapacity:      16,
			IndexCapacity:     16,
			Consolidation:     consol,
			CompletionWorkers: 2,
			Governor:          gov,
		})
		if err != nil {
			panic(err)
		}

		for k := 0; k < window; k++ {
			if err := tree.Insert(nil, keys.Uint64(uint64(k)), []byte("c")); err != nil {
				panic(err)
			}
		}
		tree.DrainCompletions()

		label := "off"
		if consol {
			label = "on"
		}
		fmt.Fprintf(w, "%-14s", label)
		head := uint64(window)
		start := time.Now()
		for c := 0; c < cycles; c++ {
			for i := 0; i < window; i++ {
				if err := tree.Insert(nil, keys.Uint64(head), []byte("c")); err != nil && err != core.ErrKeyExists {
					panic(err)
				}
				if err := tree.Delete(nil, keys.Uint64(head-uint64(window))); err != nil && err != core.ErrKeyNotFound {
					panic(err)
				}
				head++
			}
			tree.DrainCompletions()
			alloc, err := st.AllocatedPages()
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(w, "%8d", alloc)
			p.Report.Add("T17", fmt.Sprintf("churn.alloc_pages.turn%d.consol=%s", c+1, label), float64(alloc), "pages")
		}
		elapsed := time.Since(start)

		s := tree.Stats.Snapshot()
		kops := float64(2*cycles*window) / elapsed.Seconds() / 1000
		fmt.Fprintf(w, "%10d%10d%10d%9d%8d%9.1f\n",
			st.Space.Recycled.Load(), st.Space.Extended.Load(), st.Space.Freed.Load(),
			s.Consolidations, s.MergeBatches, kops)

		var leaves, low int64
		for i, n := range s.UtilHist {
			leaves += n
			if i < 4 {
				low += n
			}
		}
		p.Report.Add("T17", "churn.pages_recycled.consol="+label, float64(st.Space.Recycled.Load()), "pages")
		p.Report.Add("T17", "churn.pages_freed.consol="+label, float64(st.Space.Freed.Load()), "pages")
		p.Report.Add("T17", "churn.pages_extended.consol="+label, float64(st.Space.Extended.Load()), "pages")
		p.Report.Add("T17", "churn.consolidations.consol="+label, float64(s.Consolidations), "merges")
		p.Report.Add("T17", "churn.merge_batches.consol="+label, float64(s.MergeBatches), "tasks")
		p.Report.Add("T17", "churn.ops_per_sec.consol="+label, float64(2*cycles*window)/elapsed.Seconds(), "ops/s")
		if leaves > 0 {
			p.Report.Add("T17", "churn.low_util_leaf_frac.consol="+label, float64(low)/float64(leaves), "fraction")
		}
		gs := gov.Stats()
		p.Report.Add("T17", "churn.governor_admits.consol="+label, float64(gs.Admits), "tasks")
		p.Report.Add("T17", "churn.governor_throttled.consol="+label, float64(gs.Throttled), "tasks")
		p.Report.Add("T17", "churn.governor_bypasses.consol="+label, float64(gs.Bypasses), "tasks")
		p.Report.Add("T17", "churn.governor_max_queue.consol="+label, float64(gs.MaxDepth), "tasks")

		tree.Close()
	}
	fmt.Fprintf(w, "(steady state: with consolidation the turnover series plateaus and recycled > 0;\n without it the store grows by roughly the window's page count every turnover)\n")
}
