package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/wal"
)

// T18FileStorage is experiment T18: the cost of real durability. The
// same transactional insert workload runs against three stable layers —
// the in-memory simulated disk, the file-backed engine with an fsync on
// every group-commit round (SyncAlways), and the file-backed engine
// leaving durability to the page cache (SyncNever, the posture the
// real-crash torture gate recovers from). Group commit is what keeps
// the fsync tax sublinear: concurrent committers share one segment
// write and one fsync per round, so fsyncs/commit falls as threads
// rise. The file columns also surface the physical-work counters: WAL
// segments created and recycled across the mid-run checkpoint, and
// page-slot checksum verifications performed by the dual-slot store.
func T18FileStorage(w io.Writer, p Params) {
	ops := p.OpsPerThread / 4
	if ops < 1_000 {
		ops = 1_000
	}
	threads := []int{1, 4, 16}

	fmt.Fprintf(w, "\nT18: durable file-backed storage, %d single-insert commits/thread (group commit on)\n", ops)
	fmt.Fprintf(w, "%-12s%8s%9s%15s%15s%7s%7s%10s\n",
		"backend", "threads", "kops/s", "forces/commit", "fsyncs/commit", "segs+", "segs~", "cksums")

	for _, backend := range []string{"mem", "file-always", "file-never"} {
		for _, th := range threads {
			var e *engine.Engine
			var dir string
			switch backend {
			case "mem":
				e = engine.New(engine.Options{PoolCapacity: 128})
			default:
				var err error
				dir, err = os.MkdirTemp("", "pitree-t18-*")
				if err != nil {
					panic(err)
				}
				pol := wal.SyncAlways
				if backend == "file-never" {
					pol = wal.SyncNever
				}
				e, _, err = engine.Open(engine.Options{
					DataDir:           dir,
					PoolCapacity:      128,
					SegmentSize:       256 << 10,
					Sync:              pol,
					WriteBackInterval: 2 * time.Millisecond,
				})
				if err != nil {
					panic(err)
				}
			}
			b := core.Register(e.Reg, false)
			st := e.AddStore(1, core.Codec{})
			tree, err := core.Create(st, e.TM, e.Locks, b, "t18", core.Options{
				LeafCapacity: 64, IndexCapacity: 64, CompletionWorkers: 2,
			})
			if err != nil {
				panic(err)
			}

			var wg sync.WaitGroup
			start := time.Now()
			for t := 0; t < th; t++ {
				wg.Add(1)
				go func(t int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						tx := e.TM.Begin()
						k := uint64(t*ops + i)
						if err := tree.Insert(tx, keys.Uint64(k), []byte("t18")); err != nil {
							_ = tx.Abort()
							continue
						}
						if err := tx.Commit(); err != nil {
							panic(err)
						}
						// One fuzzy checkpoint mid-run: on the file
						// backends it syncs the page file and recycles
						// the WAL segments behind the horizon.
						if t == 0 && i == ops/2 {
							if _, err := e.Checkpoint(); err != nil {
								panic(err)
							}
						}
					}
				}(t)
			}
			wg.Wait()
			elapsed := time.Since(start)

			commits := float64(th * ops)
			_, flushes := e.Log.Stats()
			ws, ds := e.FileStats()
			var cksums int64
			for _, d := range ds {
				cksums += d.ChecksumChecks
			}
			kops := commits / elapsed.Seconds() / 1000
			fmt.Fprintf(w, "%-12s%8d%9.1f%15.3f%15.3f%7d%7d%10d\n",
				backend, th, kops,
				float64(flushes)/commits, float64(ws.Fsyncs)/commits,
				ws.SegmentsCreated, ws.SegmentsRecycled, cksums)

			tag := fmt.Sprintf("backend=%s.threads=%d", backend, th)
			p.Report.Add("T18", "file.ops_per_sec."+tag, commits/elapsed.Seconds(), "ops/s")
			p.Report.Add("T18", "file.forces_per_commit."+tag, float64(flushes)/commits, "forces/commit")
			p.Report.Add("T18", "file.fsyncs_per_commit."+tag, float64(ws.Fsyncs)/commits, "fsyncs/commit")
			p.Report.Add("T18", "file.segments_created."+tag, float64(ws.SegmentsCreated), "segments")
			p.Report.Add("T18", "file.segments_recycled."+tag, float64(ws.SegmentsRecycled), "segments")
			p.Report.Add("T18", "file.checksum_verifies."+tag, float64(cksums), "checks")

			tree.Close()
			if err := e.Close(); err != nil {
				panic(err)
			}
			if dir != "" {
				os.RemoveAll(dir)
			}
		}
	}
	fmt.Fprintf(w, "(claim: group commit amortizes the fsync tax — fsyncs/commit falls with concurrency;\n SyncNever shows the page-cache ceiling the real-crash gate recovers from)\n")
}
