package bench

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/wal"
)

// latHist is a fixed half-log2-bucketed latency histogram: bucket i
// holds samples with sqrt(2)^i ns as an upper bound, so adjacent
// buckets are ~1.41x apart — fine enough to resolve a 1.5x shift.
// Fixed-size and allocation-free on the record path; per-thread copies
// merge by element-wise sum.
type latHist struct {
	buckets [96]int64
}

func (h *latHist) record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	if ns > 4e9 { // clamp at 4s so ns*ns stays in uint64
		ns = 4e9
	}
	// ceil(2*log2(ns)) == bits needed for ns^2-1.
	i := bits.Len64(ns*ns - 1)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// quantile sample — a <=1.42x overestimate, identical across the
// configurations being compared.
func (h *latHist) quantile(q float64) time.Duration {
	var total int64
	for _, c := range h.buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > rank {
			return time.Duration(math.Pow(2, float64(i)/2))
		}
	}
	return time.Duration(math.Pow(2, float64(len(h.buckets)-1)/2))
}

// T19PipelinedCommit is experiment T19: the three-stage commit pipeline
// against the serial PR 8 path, on the workload the pipeline exists
// for — committers contending on a small set of hot records, with the
// commit record forced to a real file-backed log. Each transaction
// updates one of 4 hot keys round-robin, so record X locks collide
// constantly. The serial path holds every X lock across its round's
// full write+fsync, so a hot key's chain advances once per force and
// waiters queue behind the device; the pipelined path releases locks at
// commit-record append (early lock release, with the reader inheriting
// a commit dependency), overlaps the next round's vectored segment
// write with the previous round's fsync, and lets the whole chain ride
// one group-commit round. The claim is a tail-latency one: under
// SyncAlways at high thread counts, p99 commit latency drops >=1.5x
// and throughput holds or rises. flush-stall is total wall time inside
// sink fsyncs (the sync stage); SyncNever isolates the CPU-path cost
// of the extra pipeline coordination.
func T19PipelinedCommit(w io.Writer, p Params) {
	ops := p.OpsPerThread / 4
	if ops < 1_000 {
		ops = 1_000
	}
	const hotKeys = 4
	committers := []int{1, 4, 16}

	fmt.Fprintf(w, "\nT19: pipelined commit path vs serial, %d hot-key update commits/committer (file-backed, %d hot keys)\n", ops, hotKeys)
	fmt.Fprintf(w, "%-12s%-10s%9s%9s%11s%11s%13s%10s\n",
		"sync", "pipeline", "threads", "kops/s", "p50(us)", "p99(us)", "stall(ms)", "overlaps")

	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncNever} {
		polName := "always"
		if pol == wal.SyncNever {
			polName = "never"
		}
		for _, pipe := range []bool{true, false} {
			pipeName := "on"
			if !pipe {
				pipeName = "off"
			}
			for _, th := range committers {
				dir, err := os.MkdirTemp("", "pitree-t19-*")
				if err != nil {
					panic(err)
				}
				e, _, err := engine.Open(engine.Options{
					DataDir:           dir,
					PoolCapacity:      128,
					SegmentSize:       256 << 10,
					Sync:              pol,
					WriteBackInterval: 2 * time.Millisecond,
					SerialCommit:      !pipe,
				})
				if err != nil {
					panic(err)
				}
				b := core.Register(e.Reg, false)
				st := e.AddStore(1, core.Codec{})
				tree, err := core.Create(st, e.TM, e.Locks, b, "t19", core.Options{
					LeafCapacity: 64, IndexCapacity: 64, CompletionWorkers: 2,
				})
				if err != nil {
					panic(err)
				}
				val := make([]byte, 128)
				for i := 0; i < hotKeys; i++ {
					tx := e.TM.Begin()
					if err := tree.Insert(tx, keys.Uint64(uint64(i)), val); err != nil {
						panic(err)
					}
					if err := tx.Commit(); err != nil {
						panic(err)
					}
				}

				hists := make([]latHist, th)
				var wg sync.WaitGroup
				start := time.Now()
				for t := 0; t < th; t++ {
					wg.Add(1)
					go func(t int) {
						defer wg.Done()
						h := &hists[t]
						for i := 0; i < ops; i++ {
							tx := e.TM.Begin()
							k := uint64((t + i) % hotKeys)
							c0 := time.Now()
							if err := tree.Update(tx, keys.Uint64(k), val); err != nil {
								_ = tx.Abort()
								continue
							}
							if err := tx.Commit(); err != nil {
								panic(err)
							}
							h.record(time.Since(c0))
						}
					}(t)
				}
				wg.Wait()
				elapsed := time.Since(start)

				var merged latHist
				for i := range hists {
					merged.merge(&hists[i])
				}
				commits := float64(th * ops)
				kops := commits / elapsed.Seconds() / 1000
				p50 := merged.quantile(0.50)
				p99 := merged.quantile(0.99)
				ps := e.Log.PipelineStatsSnapshot()
				stallMs := float64(ps.SyncNanos) / 1e6

				fmt.Fprintf(w, "%-12s%-10s%9d%9.1f%11.1f%11.1f%13.1f%10d\n",
					polName, pipeName, th, kops,
					float64(p50.Nanoseconds())/1e3, float64(p99.Nanoseconds())/1e3,
					stallMs, ps.Overlaps)

				tag := fmt.Sprintf("sync=%s.pipeline=%s.threads=%d", polName, pipeName, th)
				p.Report.Add("T19", "commit.ops_per_sec."+tag, commits/elapsed.Seconds(), "ops/s")
				p.Report.Add("T19", "commit.latency_p50."+tag, float64(p50.Nanoseconds())/1e3, "us")
				p.Report.Add("T19", "commit.latency_p99."+tag, float64(p99.Nanoseconds())/1e3, "us")
				p.Report.Add("T19", "commit.flush_stall."+tag, stallMs, "ms")
				p.Report.Add("T19", "commit.overlaps."+tag, float64(ps.Overlaps), "rounds")

				tree.Close()
				if err := e.Close(); err != nil {
					panic(err)
				}
				os.RemoveAll(dir)
			}
		}
	}
	fmt.Fprintf(w, "(claim: with fsync on the commit path and contended records, early lock release +\n write/sync overlap cut p99 commit latency — a hot chain no longer advances once per\n fsync — at no throughput cost; SyncNever isolates the CPU-path coordination cost)\n")
}
