package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// t20Engine builds one file-backed engine + Π-tree for a T20 cell.
// readLat > 0 wraps the store's page file in a LatencyDisk so reads
// carry emulated device latency — the scan cells use it because on a
// memory-backed temp filesystem a page read is a microsecond memcpy
// with no stall for read-ahead to hide.
func t20Engine(pol wal.SyncPolicy, poolCap, prefetchWindow, leafCap int, readLat time.Duration) (*engine.Engine, *core.Tree, string) {
	dir, err := os.MkdirTemp("", "pitree-t20-*")
	if err != nil {
		panic(err)
	}
	e, _, err := engine.Open(engine.Options{
		DataDir:           dir,
		PoolCapacity:      poolCap,
		SegmentSize:       256 << 10,
		SlotSize:          16 << 10,
		Sync:              pol,
		WriteBackInterval: 2 * time.Millisecond,
		PrefetchWindow:    prefetchWindow,
	})
	if err != nil {
		panic(err)
	}
	b := core.Register(e.Reg, false)
	var st *storage.Store
	if readLat > 0 {
		fd, err := storage.OpenFileDisk(filepath.Join(dir, "store-1.pages"), 16<<10)
		if err != nil {
			panic(err)
		}
		st = e.AttachStore(1, core.Codec{}, storage.NewLatencyDisk(fd, readLat))
	} else {
		st = e.AddStore(1, core.Codec{})
	}
	tree, err := core.Create(st, e.TM, e.Locks, b, "t20", core.Options{
		LeafCapacity: leafCap, IndexCapacity: 64, CompletionWorkers: 2,
	})
	if err != nil {
		panic(err)
	}
	return e, tree, dir
}

// T20BatchedOps is experiment T20: the vectorized access paths against
// their per-key equivalents.
//
// Write phase: every transaction inserts one window of `batch`
// contiguous fresh keys, either as one MultiPut (one descent, one latch
// hold, one lock-manager interaction, and one group WAL append per
// leaf-run) or as a loop of single-key Inserts (each paying the full
// descent + lock + log cost). Windows come off a global sequence, so all
// threads pound the tree's right edge — the contended configuration the
// batch path exists for: under it, the looped writer acquires and drops
// the hot tail latch once per key while the batched writer holds it once
// per run. The claim is >=2x keys/s for MultiPut at batch >= 64 on
// contended (multi-thread) cells.
//
// Scan phase: a pool much smaller than the tree forces RangeScan to read
// leaves from the page file; with read-ahead on, the prefetcher chains
// along leaf side pointers and overlaps the next leaves' reads with the
// current leaf's callback work. Page reads carry emulated device latency
// (LatencyDisk) because the host's temp filesystem answers from memory —
// there is no stall to hide without it — and the callback does a fixed
// amount of per-record hashing, standing in for the predicate/aggregate
// work real scans do; overlap needs both sides to be nonzero. The claim
// is prefetch-on > prefetch-off on file-mode scan throughput, with the
// hit/wasted counters showing the window did real work rather than
// churning the pool.
func T20BatchedOps(w io.Writer, p Params) {
	keysPerThread := p.OpsPerThread / 4
	if keysPerThread < 2_000 {
		keysPerThread = 2_000
	}
	batches := []int{16, 64, 256}
	threadCounts := []int{1, 4, 16}

	fmt.Fprintf(w, "\nT20: batched MultiPut vs looped Insert, %d fresh keys/thread (file-backed, contiguous windows)\n", keysPerThread)
	fmt.Fprintf(w, "%-8s%7s%9s%12s%12s%9s%12s%14s\n",
		"sync", "batch", "threads", "loop(k/s)", "multi(k/s)", "speedup", "batch-ops", "visits-saved")

	for _, pol := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncNever} {
		polName := "always"
		if pol == wal.SyncNever {
			polName = "never"
		}
		for _, batch := range batches {
			for _, th := range threadCounts {
				var loopKps, multiKps float64
				var batchOps, visitsSaved int64
				for _, vectored := range []bool{false, true} {
					e, tree, dir := t20Engine(pol, 256, 0, 128, 0)
					var windowSeq atomic.Uint64
					val := make([]byte, 64)
					txns := keysPerThread / batch
					if txns < 1 {
						txns = 1
					}
					bk := make([][]keys.Key, th)
					bv := make([][][]byte, th)
					for t := 0; t < th; t++ {
						bk[t] = make([]keys.Key, batch)
						bv[t] = make([][]byte, batch)
						for i := range bv[t] {
							bv[t][i] = val
						}
					}
					var wg sync.WaitGroup
					start := time.Now()
					for t := 0; t < th; t++ {
						wg.Add(1)
						go func(t int) {
							defer wg.Done()
							for n := 0; n < txns; n++ {
								base := windowSeq.Add(1) * uint64(batch)
								for i := 0; i < batch; i++ {
									bk[t][i] = keys.Uint64(base + uint64(i))
								}
								tx := e.TM.Begin()
								var err error
								if vectored {
									err = tree.MultiPut(tx, bk[t], bv[t])
								} else {
									for i := 0; i < batch && err == nil; i++ {
										err = tree.Insert(tx, bk[t][i], val)
									}
								}
								if err != nil {
									_ = tx.Abort()
									continue
								}
								if err := tx.Commit(); err != nil {
									panic(err)
								}
							}
						}(t)
					}
					wg.Wait()
					elapsed := time.Since(start)
					kps := float64(th*txns*batch) / elapsed.Seconds() / 1000
					if vectored {
						multiKps = kps
						snap := tree.Stats.Snapshot()
						batchOps = snap.BatchOps
						visitsSaved = snap.LeafVisitsSaved
					} else {
						loopKps = kps
					}
					tree.Close()
					if err := e.Close(); err != nil {
						panic(err)
					}
					os.RemoveAll(dir)
				}
				speedup := 0.0
				if loopKps > 0 {
					speedup = multiKps / loopKps
				}
				fmt.Fprintf(w, "%-8s%7d%9d%12.1f%12.1f%8.2fx%12d%14d\n",
					polName, batch, th, loopKps, multiKps, speedup, batchOps, visitsSaved)

				tag := fmt.Sprintf("sync=%s.batch=%d.threads=%d", polName, batch, th)
				p.Report.Add("T20", "write.looped_kops."+tag, loopKps, "kops/s")
				p.Report.Add("T20", "write.multiput_kops."+tag, multiKps, "kops/s")
				p.Report.Add("T20", "write.speedup."+tag, speedup, "x")
				p.Report.Add("T20", "write.batch_ops."+tag, float64(batchOps), "ops")
				p.Report.Add("T20", "write.leaf_visits_saved."+tag, float64(visitsSaved), "visits")
			}
		}
	}

	// --- scan phase: read-ahead on vs off over a pool-overflowing tree ---
	scanKeys := p.Preload
	if scanKeys < 30_000 {
		scanKeys = 30_000
	}
	const poolCap = 128 // ~1/4 of the tree's leaves: scans must hit the file
	const sweeps = 3
	// Emulated device read latency and per-record consumer work. ~100µs
	// approximates a networked or cloud block device; the hash rounds put
	// per-leaf callback time in the same regime so there is computation
	// for the read-ahead to overlap with.
	const scanReadLat = 100 * time.Microsecond
	const hashRounds = 32
	fmt.Fprintf(w, "\nT20 scan: file-mode RangeScan over %d keys, pool %d frames, %d sweeps, %v/read device latency\n", scanKeys, poolCap, sweeps, scanReadLat)
	fmt.Fprintf(w, "%-10s%12s%10s%10s%10s%10s\n", "prefetch", "keys/s", "issued", "hit", "wasted", "misses")

	var offKps, onKps float64
	for _, window := range []int{0, 16} {
		e, tree, dir := t20Engine(wal.SyncNever, poolCap, window, 64, scanReadLat)
		val := make([]byte, 64)
		bk := make([]keys.Key, 256)
		bv := make([][]byte, 256)
		for i := range bv {
			bv[i] = val
		}
		for base := 0; base < scanKeys; base += len(bk) {
			for i := range bk {
				bk[i] = keys.Uint64(uint64(base + i))
			}
			if err := tree.MultiPut(nil, bk, bv); err != nil {
				panic(err)
			}
		}
		if _, err := e.FlushAll(); err != nil {
			panic(err)
		}

		var sum uint64
		count := 0
		start := time.Now()
		for s := 0; s < sweeps; s++ {
			if err := tree.RangeScan(nil, nil, nil, func(_ keys.Key, v []byte) bool {
				// Per-record consumer work, the window the read-ahead
				// overlaps the next leaves' disk reads with.
				for r := 0; r < hashRounds; r++ {
					for _, b := range v {
						sum = sum*31 + uint64(b)
					}
				}
				count++
				return true
			}); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start)
		_ = sum
		kps := float64(count) / elapsed.Seconds() / 1000

		var ps = e.Pools()[0].Stats()
		name := "off"
		if window > 0 {
			name = "on"
			onKps = kps
		} else {
			offKps = kps
		}
		fmt.Fprintf(w, "%-10s%12.1f%10d%10d%10d%10d\n",
			name, kps, ps.PrefetchIssued, ps.PrefetchHit, ps.PrefetchWasted, ps.Misses)
		p.Report.Add("T20", "scan.keys_per_sec.prefetch="+name, kps*1000, "keys/s")
		p.Report.Add("T20", "scan.prefetch_issued.prefetch="+name, float64(ps.PrefetchIssued), "reads")
		p.Report.Add("T20", "scan.prefetch_hit.prefetch="+name, float64(ps.PrefetchHit), "fetches")
		p.Report.Add("T20", "scan.prefetch_wasted.prefetch="+name, float64(ps.PrefetchWasted), "frames")

		tree.Close()
		if err := e.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)
	}
	if offKps > 0 {
		p.Report.Add("T20", "scan.prefetch_speedup", onKps/offKps, "x")
		fmt.Fprintf(w, "(prefetch-on/off = %.2fx)\n", onKps/offKps)
	}
	fmt.Fprintf(w, "(claim: one descent + one latch hold + one lock interaction + one group append per\n leaf-run makes vectorized writes >=2x looped singles at batch >= 64 under contention;\n scan read-ahead overlaps the successor leaf's read+decode with consumer work)\n")
}
