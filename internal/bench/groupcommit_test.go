package bench

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
)

// TestGroupCommitCrashReplay is the durability half of the group-commit
// contract, checked the way T4 checks recovery: run concurrent
// committers whose forces coalesce, crash keeping only the stable log
// prefix (no ForceAll — exactly what an acknowledged commit guarantees),
// restart, and require every acknowledged transaction's key to be
// present and the tree well-formed.
func TestGroupCommitCrashReplay(t *testing.T) {
	eopts := engine.Options{}
	topts := core.Options{LeafCapacity: 8, IndexCapacity: 8, Consolidation: true}
	e := engine.New(eopts)
	b := core.Register(e.Reg, false)
	st := e.AddStore(1, core.Codec{})
	tree, err := core.Create(st, e.TM, e.Locks, b, "gc", topts)
	if err != nil {
		t.Fatal(err)
	}

	const committers = 8
	const perG = 30
	acked := make([][]uint64, committers)
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := uint64(g)*1_000_000 + uint64(i)
				tx := e.TM.Begin()
				if err := tree.Insert(tx, keys.Uint64(k), []byte("v")); err != nil {
					_ = tx.Abort()
					continue
				}
				if err := tx.Commit(); err == nil {
					acked[g] = append(acked[g], k)
				}
			}
		}(g)
	}
	wg.Wait()
	tree.Close()

	// The committers must actually have shared force rounds — otherwise
	// this test degenerates to the plain commit-durability test.
	_, flushes := e.Log.Stats()
	if flushes >= committers*perG {
		t.Fatalf("flushes = %d for %d commits; no group-commit coalescing", flushes, committers*perG)
	}

	// Crash with the stable prefix only: acknowledged commits are in it
	// by the ForceGroup contract, unforced tails (end records, trailing
	// completions) are lost.
	img := e.Crash(nil)
	e2 := engine.Restarted(img, eopts)
	b2 := core.Register(e2.Reg, false)
	st2 := e2.AttachStore(1, core.Codec{}, img.Disks[1])
	pend, err := e2.AnalyzeAndRedo()
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := core.Open(st2, e2.TM, e2.Locks, b2, "gc", topts)
	if err != nil {
		t.Fatal(err)
	}
	defer tree2.Close()
	if err := e2.FinishRecovery(pend); err != nil {
		t.Fatal(err)
	}
	if _, err := tree2.Verify(); err != nil {
		t.Fatalf("tree ill-formed after group-commit crash: %v", err)
	}
	total := 0
	for g := 0; g < committers; g++ {
		for _, k := range acked[g] {
			if _, ok, err := tree2.Search(nil, keys.Uint64(k)); err != nil || !ok {
				t.Fatalf("acknowledged key %d lost after crash (err=%v)", k, err)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no commits were acknowledged")
	}
	t.Logf("recovered all %d acknowledged commits; flushes=%d", total, flushes)
}
