// Package bench is the experiment harness: workload generators, a
// concurrency driver, and one runner per experiment in DESIGN.md's index
// (T1..T12, F1..F2). Each runner prints the table or figure series the
// experiment defines; EXPERIMENTS.md records representative results next
// to the paper's claims.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/storage"
)

// KV is the method-agnostic surface the driver runs against (identical
// to baseline.KV; the Π-tree joins through an adapter so it pays its full
// logging and locking costs while the baselines run bare).
type KV = baseline.KV

// PiTree adapts core.Tree to the driver.
type PiTree struct {
	T *core.Tree
	E *engine.Engine
}

// NewPiTree builds a fresh engine + Π-tree for one benchmark run.
func NewPiTree(eopts engine.Options, topts core.Options) *PiTree {
	e := engine.New(eopts)
	b := core.Register(e.Reg, eopts.PageOriented)
	st := e.AddStore(1, core.Codec{})
	t, err := core.Create(st, e.TM, e.Locks, b, "bench", topts)
	if err != nil {
		panic(err)
	}
	return &PiTree{T: t, E: e}
}

// Insert implements KV (non-transactional single-op atomic actions).
func (p *PiTree) Insert(k keys.Key, v []byte) {
	if err := p.T.Insert(nil, k, v); err != nil && err != core.ErrKeyExists {
		panic(err)
	}
}

// Search implements KV.
func (p *PiTree) Search(k keys.Key) ([]byte, bool) {
	v, ok, err := p.T.Search(nil, k)
	if err != nil {
		panic(err)
	}
	return v, ok
}

// SearchInto implements searchIntoKV, exposing the tree's allocation-free
// lookup to the driver.
func (p *PiTree) SearchInto(k keys.Key, buf []byte) ([]byte, bool) {
	v, ok, err := p.T.SearchInto(nil, k, buf)
	if err != nil {
		panic(err)
	}
	return v, ok
}

// Scan implements KV.
func (p *PiTree) Scan(lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) {
	if err := p.T.RangeScan(nil, lo, hi, fn); err != nil {
		panic(err)
	}
}

// Label implements KV.
func (p *PiTree) Label() string { return "pi-tree" }

// Close stops background workers.
func (p *PiTree) Close() { p.T.Close() }

// PoolStats sums buffer-pool counters across the engine's stores.
func (p *PiTree) PoolStats() storage.PoolStats {
	var s storage.PoolStats
	for _, pool := range p.E.Pools() {
		ps := pool.Stats()
		s.Flushes += ps.Flushes
		s.Misses += ps.Misses
		s.Hits += ps.Hits
		s.Evictions += ps.Evictions
		s.PrefetchIssued += ps.PrefetchIssued
		s.PrefetchHit += ps.PrefetchHit
		s.PrefetchWasted += ps.PrefetchWasted
	}
	return s
}

// searchIntoKV is an optional KV extension: a lookup that appends the
// value to a caller-owned buffer instead of allocating a copy per hit.
// The driver uses it when present so a method with an allocation-free
// read path is measured through it; the returned slice is only read
// before the worker's next operation. The baselines hand out uncopied
// references from Search already, so this levels the field rather than
// tilting it.
type searchIntoKV interface {
	SearchInto(k keys.Key, buf []byte) ([]byte, bool)
}

// Mix is an operation mix in percent; the remainder after Search and
// Insert is range scans of ~100 keys.
type Mix struct {
	SearchPct int
	InsertPct int
}

// Result is one measured cell.
type Result struct {
	Method  string
	Threads int
	Ops     int
	Elapsed time.Duration
}

// OpsPerSec returns the cell's throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Preload inserts n sequential even keys (leaving odd gaps for later
// inserts) single-threaded.
func Preload(kv KV, n int) {
	for i := 0; i < n; i++ {
		kv.Insert(keys.Uint64(uint64(i*2)), []byte("preload"))
	}
}

// Run drives opsPerThread operations on each of `threads` goroutines
// against kv and reports aggregate throughput. Searches hit preloaded
// even keys; inserts produce globally unique odd keys.
func Run(kv KV, threads, opsPerThread, preloaded int, mix Mix) Result {
	var insertSeq atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			si, hasSI := kv.(searchIntoKV)
			buf := make([]byte, 0, 64)
			for i := 0; i < opsPerThread; i++ {
				roll := rng.Intn(100)
				switch {
				case roll < mix.SearchPct:
					k := uint64(rng.Intn(preloaded)) * 2
					if hasSI {
						if v, _ := si.SearchInto(keys.Uint64(k), buf); v != nil {
							buf = v[:0]
						}
					} else {
						kv.Search(keys.Uint64(k))
					}
				case roll < mix.SearchPct+mix.InsertPct:
					// Odd keys interleaved within the preloaded range:
					// uniform pressure across all leaves (a monotone or
					// out-of-range stream would turn the rightmost path
					// into a hot spot no real workload has). Re-inserting
					// an existing odd key degenerates to an upsert probe.
					seq := insertSeq.Add(1)
					k := (seq*0x9E3779B97F4A7C15%uint64(preloaded))*2 + 1
					kv.Insert(keys.Uint64(k), []byte("w"))
				default:
					lo := uint64(rng.Intn(preloaded)) * 2
					cnt := 0
					kv.Scan(keys.Uint64(lo), nil, func(keys.Key, []byte) bool {
						cnt++
						return cnt < 100
					})
				}
			}
		}(w)
	}
	wg.Wait()
	return Result{Method: kv.Label(), Threads: threads, Ops: threads * opsPerThread, Elapsed: time.Since(start)}
}

// Table prints a threads-by-method throughput matrix (ops/sec, thousands)
// with a speedup-vs-1-thread column per method.
func Table(w io.Writer, title string, threadCounts []int, rows map[string][]Result) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-16s", "method")
	for _, tc := range threadCounts {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("%d thr", tc))
	}
	fmt.Fprintf(w, "%12s\n", "scale")
	for method, results := range rows {
		fmt.Fprintf(w, "%-16s", method)
		var first, last float64
		for i, r := range results {
			ops := r.OpsPerSec()
			if i == 0 {
				first = ops
			}
			last = ops
			fmt.Fprintf(w, "%12.1f", ops/1000)
		}
		scale := 0.0
		if first > 0 {
			scale = last / first
		}
		fmt.Fprintf(w, "%11.2fx\n", scale)
	}
}

// Method is a comparison-set entry: a named constructor producing a
// fresh instance (and a cleanup) per benchmark cell.
type Method struct {
	Name string
	New  func(capacity int) (KV, func())
}

// AllMethods returns the full comparison set. The Π-tree runs with its
// complete substrate (WAL, buffer pool, locks, completion workers); the
// baselines run bare and in memory.
func AllMethods() []Method {
	return []Method{
		{Name: "pi-tree", New: func(capacity int) (KV, func()) {
			pi := NewPiTree(engine.Options{}, core.Options{
				LeafCapacity:  capacity,
				IndexCapacity: capacity,
				Consolidation: true,
			})
			return pi, pi.Close
		}},
		{Name: "subtree-latch", New: func(capacity int) (KV, func()) {
			return baseline.NewSubtreeLatch(capacity), func() {}
		}},
		{Name: "serial-smo", New: func(capacity int) (KV, func()) {
			return baseline.NewSerialSMO(capacity), func() {}
		}},
		{Name: "global-lock", New: func(capacity int) (KV, func()) {
			return baseline.NewGlobalLock(capacity), func() {}
		}},
	}
}
