package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
)

// Metric is one machine-readable measurement emitted by an experiment:
// the experiment id, a metric name qualified enough to be compared
// across runs (method/threads baked in), the value, and its unit.
type Metric struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
}

// Report collects Metrics across experiments for -json output. A nil
// *Report ignores Add, so experiments record unconditionally and the
// human-readable path pays nothing.
type Report struct {
	mu      sync.Mutex
	Metrics []Metric
}

// Add records one measurement. Safe on a nil receiver and from
// concurrent goroutines.
func (r *Report) Add(experiment, name string, value float64, unit string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.Metrics = append(r.Metrics, Metric{Experiment: experiment, Name: name, Value: value, Unit: unit})
	r.mu.Unlock()
}

// reportFile is the on-disk shape: enough environment to interpret the
// numbers, then the flat metric list.
type reportFile struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Metrics    []Metric `json:"metrics"`
}

// WriteJSON writes the collected metrics to path (pretty-printed, one
// stable ordering: insertion order).
func (r *Report) WriteJSON(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := reportFile{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Metrics:    r.Metrics,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
