package core

import (
	"errors"
	"sync"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/txn"
)

// FPBatchApply is the failpoint probed in the batched write path after the
// run's locks are granted but before anything is logged or applied, so an
// injected crash lands exactly between two leaf-runs of one batch: some
// runs fully logged and applied, the rest never started. Recovery must
// resolve that to the per-record oracle — there is no batch-granule
// atomicity to restore.
const FPBatchApply = "core.batchapply"

// errBatchArgs reports mismatched parallel-slice lengths.
var errBatchArgs = errors.New("core: batch argument slices have different lengths")

// batchScratch holds the reusable per-batch working storage: the key
// permutation, the run's lock names, and the run's group-update records.
// Pooled so a steady stream of batches allocates nothing (see
// TestMultiGetAllocs).
type batchScratch struct {
	idx   []int
	names []lock.Name
	ups   []txn.GroupUpdate
}

var batchScratchPool sync.Pool

// takeBatchScratch returns a scratch with idx initialized to the identity
// permutation of length n.
func takeBatchScratch(n int) *batchScratch {
	sc, _ := batchScratchPool.Get().(*batchScratch)
	if sc == nil {
		sc = new(batchScratch)
	}
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	sc.idx = sc.idx[:n]
	for i := range sc.idx {
		sc.idx[i] = i
	}
	return sc
}

func putBatchScratch(sc *batchScratch) {
	for i := range sc.ups {
		sc.ups[i] = txn.GroupUpdate{} // drop payload references
	}
	sc.ups = sc.ups[:0]
	batchScratchPool.Put(sc)
}

// sortIdx sorts the index permutation by key. Binary-insertion sort: the
// batch sizes this path is built for are modest, and sort.Slice's closure
// is a heap allocation the zero-allocation MultiGet path cannot afford.
func sortIdx(idx []int, ks []keys.Key) {
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && keys.Compare(ks[idx[j-1]], ks[idx[j]]) > 0 {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
}

// runEnd extends a run starting at pos: every following batch key the leaf
// directly contains joins the run (sorted order makes the containable
// suffix contiguous).
func runEnd(leaf *nref, ks []keys.Key, idx []int, pos int) int {
	end := pos + 1
	for end < len(idx) && leaf.n.DirectlyContains(ks[idx[end]]) {
		end++
	}
	return end
}

// lockRun takes the run's record locks in one lock-manager interaction.
// It returns errRetry after a No-Wait dance (latch released, blocking
// acquisition of the conflicting name, run restarted) and nil when every
// lock is held with the latch kept. Because every batch locks its keys in
// sorted order, two batches' acquisition orders agree and batch-vs-batch
// deadlocks cannot arise from these locks alone; a conflict with a
// single-key writer falls back to the blocking path, where the waits-for
// detector remains the backstop.
func (t *Tree) lockRun(o *opCtx, leaf *nref, ks []keys.Key, run []int, sc *batchScratch, mode lock.Mode) error {
	if o.txn == nil {
		return nil
	}
	names := sc.names[:0]
	for _, i := range run {
		names = append(names, t.recLockName(ks[i]))
	}
	sc.names = names
	fail := o.txn.TryLockBatch(names, mode)
	if fail < 0 {
		return nil
	}
	o.release(leaf)
	if err := o.txn.Lock(names[fail], mode); err != nil {
		return err
	}
	return errRetry
}

// MultiGet looks up a batch of keys with one descent and one latch hold
// per distinct leaf. found[i] and vals[i] report key ks[i]; each value is
// appended to vals[i][:0], so callers reusing the slices across batches
// pay no per-hit allocation. With a non-nil transaction the whole run is
// S-locked in a single lock-manager interaction. ks need not be sorted.
func (t *Tree) MultiGet(tx *txn.Txn, ks []keys.Key, vals [][]byte, found []bool) error {
	if len(vals) != len(ks) || len(found) != len(ks) {
		return errBatchArgs
	}
	if len(ks) == 0 {
		return nil
	}
	t.Stats.Searches.Add(int64(len(ks)))
	sc := takeBatchScratch(len(ks))
	sortIdx(sc.idx, ks)
	// Hand-rolled retry loop, like SearchInto: a retryLoop closure would
	// capture the slices and allocate on every batch.
	pos := 0
	for pos < len(ks) {
		o := t.newOp(tx)
		leaf, err := t.descendTo(o, ks[sc.idx[pos]], 0, latch.S, true, nil)
		if err == nil {
			end := runEnd(&leaf, ks, sc.idx, pos)
			run := sc.idx[pos:end]
			err = t.lockRun(o, &leaf, ks, run, sc, lock.S)
			if err == nil {
				for _, i := range run {
					if j, ok := leaf.n.search(ks[i]); ok {
						vals[i] = append(vals[i][:0], leaf.n.Entries[j].Value...)
						found[i] = true
					} else {
						found[i] = false
					}
				}
				o.release(&leaf)
				t.Stats.BatchOps.Add(1)
				t.Stats.LeafVisitsSaved.Add(int64(len(run) - 1))
				pos = end
			}
		}
		o.done()
		if err != nil {
			if errors.Is(err, errRetry) {
				t.Stats.Restarts.Add(1)
				continue
			}
			putBatchScratch(sc)
			return err
		}
	}
	putBatchScratch(sc)
	return nil
}

// MultiPut upserts a batch of key/value pairs: ks[i] gets vals[i],
// inserting or replacing as needed. Keys are processed in sorted order,
// grouped into leaf-runs: each distinct target leaf costs one descent,
// one latch hold, one lock-manager interaction, and one group append of
// the run's per-key WAL records. Undo and redo stay per-record, so a
// crash mid-batch recovers each logged record independently — committed
// runs stay, the rest never happened. ks need not be sorted; duplicate
// keys apply in batch order.
func (t *Tree) MultiPut(tx *txn.Txn, ks []keys.Key, vals [][]byte) error {
	if len(vals) != len(ks) {
		return errBatchArgs
	}
	return t.batchMutate(tx, ks, vals, false)
}

// MultiDelete removes a batch of keys, grouped into leaf-runs like
// MultiPut. Keys not present are skipped, not errors: the batch's
// postcondition is absence.
func (t *Tree) MultiDelete(tx *txn.Txn, ks []keys.Key) error {
	return t.batchMutate(tx, ks, nil, true)
}

func (t *Tree) batchMutate(tx *txn.Txn, ks []keys.Key, vals [][]byte, del bool) error {
	if len(ks) == 0 {
		return nil
	}
	sc := takeBatchScratch(len(ks))
	defer putBatchScratch(sc)
	sortIdx(sc.idx, ks)
	pos := 0
	for pos < len(ks) {
		if err := t.retryLoop(func() error {
			return t.mutateRun(tx, ks, vals, del, sc, &pos)
		}); err != nil {
			return err
		}
	}
	return nil
}

// mutateRun applies one leaf-run: descend with a U latch to the leaf
// containing the first unprocessed key, extend the run across every batch
// key that leaf directly contains, lock the run, and apply it under a
// single X latch with the run's log records emitted as one group append.
// On success pos advances past the applied keys; errRetry re-enters with
// pos unchanged (or advanced past a partial run when the leaf filled
// mid-run, with the remainder re-descending into the post-split leaves).
func (t *Tree) mutateRun(tx *txn.Txn, ks []keys.Key, vals [][]byte, del bool, sc *batchScratch, pos *int) error {
	o := t.newOp(tx)
	defer o.done()
	path := newPath()
	leaf, err := t.descendTo(o, ks[sc.idx[*pos]], 0, latch.U, true, path)
	if err != nil {
		return err
	}
	end := runEnd(&leaf, ks, sc.idx, *pos)
	run := sc.idx[*pos:end]

	if err := t.lockRun(o, &leaf, ks, run, sc, lock.X); err != nil {
		return err
	}

	if len(leaf.n.Entries) >= t.opts.LeafCapacity {
		if err := t.splitLeaf(o, &leaf, path); err != nil {
			return err
		}
		return errRetry
	}

	// Page-granule IX lock, as in modify: marks this transaction as an
	// updater of the leaf for later move locks to wait on.
	if tx != nil && t.binding.PageOriented() {
		if restart, err := o.lockDance(&leaf, t.pageLockName(leaf.pid()), lock.IX); err != nil {
			return err
		} else if restart {
			return errRetry
		}
	}

	act := tx
	var aa *txn.Txn
	if act == nil {
		aa = t.tm.BeginAtomicAction()
		act = aa
	}

	// Crash/fault point between runs: nothing of this run is logged or
	// applied yet, so an injected failure here leaves a cleanly partial
	// batch for recovery to judge per record.
	if err := t.store.Pool.Probe(FPBatchApply); err != nil {
		if aa != nil {
			_ = aa.Abort() // nothing logged; empty abort keeps the log tidy
		}
		o.release(&leaf)
		return err
	}

	o.promote(&leaf)
	oldCount := len(leaf.n.Entries)
	ups := sc.ups[:0]
	applied := 0
	for _, i := range run {
		k := ks[i]
		if del {
			j, exists := leaf.n.search(k)
			if exists {
				old := leaf.n.Entries[j].Value
				ups = append(ups, txn.GroupUpdate{Kind: KindDeleteRecord, Payload: encKV(k, old)})
				leaf.n.deleteEntry(k)
				t.Stats.Deletes.Add(1)
			}
		} else if j, exists := leaf.n.search(k); exists {
			old := leaf.n.Entries[j].Value
			ups = append(ups, txn.GroupUpdate{Kind: KindUpdateRecord, Payload: encKVV(k, vals[i], old)})
			leaf.n.Entries[j].Value = append([]byte(nil), vals[i]...)
			t.Stats.Updates.Add(1)
		} else {
			if len(leaf.n.Entries) >= t.opts.LeafCapacity {
				// The leaf filled mid-run. Stop here: the applied prefix is
				// logged below, and the remainder restarts with a fresh
				// descent that splits this leaf first.
				break
			}
			ups = append(ups, txn.GroupUpdate{Kind: KindInsertRecord, Payload: encKV(k, vals[i])})
			leaf.n.insertEntry(Entry{Key: keys.Clone(k), Value: append([]byte(nil), vals[i]...)})
			t.Stats.Inserts.Add(1)
		}
		applied++
	}
	sc.ups = ups
	if len(ups) > 0 {
		first, last := act.LogUpdateGroup(t.store.Pool.StoreID, uint64(leaf.pid()), ups)
		// Both marks matter: the first publishes recLSN covering the whole
		// run if the page was clean, the second advances pageLSN to the
		// run's last record.
		leaf.f.MarkDirty(first)
		leaf.f.MarkDirty(last)
	}
	t.Stats.NoteLeafUtil(oldCount, len(leaf.n.Entries), t.opts.LeafCapacity)
	t.Stats.BatchOps.Add(1)
	t.Stats.LeafVisitsSaved.Add(int64(applied - 1))
	// Commit before unlatching, as in modify: the atomic action's effects
	// must be durable-ordered before any dependent action can observe them.
	if aa != nil {
		if cerr := aa.Commit(); cerr != nil {
			o.release(&leaf)
			return cerr
		}
	}
	if del {
		t.maybeScheduleConsolidation(&leaf)
	}
	o.release(&leaf)
	*pos += applied
	return nil
}
