package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
)

func TestMultiPutMultiGetRoundTrip(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	rng := rand.New(rand.NewSource(10))

	const n = 500
	perm := rng.Perm(n)
	ks := make([]keys.Key, 0, 64)
	vs := make([][]byte, 0, 64)
	flush := func() {
		if err := fx.tree.MultiPut(nil, ks, vs); err != nil {
			t.Fatalf("MultiPut: %v", err)
		}
		ks, vs = ks[:0], vs[:0]
	}
	for _, i := range perm {
		ks = append(ks, keys.Uint64(uint64(i)))
		vs = append(vs, val(i))
		if len(ks) == 64 {
			flush()
		}
	}
	flush()

	shape := fx.mustVerify(t)
	if shape.Records != n {
		t.Fatalf("records = %d, want %d", shape.Records, n)
	}
	if got := fx.tree.Stats.BatchOps.Load(); got == 0 {
		t.Fatal("BatchOps stayed zero")
	}
	if got := fx.tree.Stats.LeafVisitsSaved.Load(); got == 0 {
		t.Fatal("LeafVisitsSaved stayed zero")
	}

	// MultiGet over a shuffled mix of present and absent keys.
	gk := make([]keys.Key, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		gk = append(gk, keys.Uint64(uint64(i)))
	}
	rng.Shuffle(len(gk), func(i, j int) { gk[i], gk[j] = gk[j], gk[i] })
	gv := make([][]byte, len(gk))
	found := make([]bool, len(gk))
	if err := fx.tree.MultiGet(nil, gk, gv, found); err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i, k := range gk {
		id := keys.ToUint64(k)
		if id < n {
			if !found[i] || string(gv[i]) != string(val(int(id))) {
				t.Fatalf("key %d: found=%v val=%q", id, found[i], gv[i])
			}
		} else if found[i] {
			t.Fatalf("absent key %d reported found", id)
		}
	}

	// MultiPut over existing keys takes the update path.
	up := []keys.Key{keys.Uint64(3), keys.Uint64(400), keys.Uint64(77)}
	if err := fx.tree.MultiPut(nil, up, [][]byte{[]byte("a"), []byte("b"), []byte("c")}); err != nil {
		t.Fatalf("MultiPut update: %v", err)
	}
	if v, ok, _ := fx.tree.Search(nil, keys.Uint64(400)); !ok || string(v) != "b" {
		t.Fatalf("updated key 400: ok=%v v=%q", ok, v)
	}

	// MultiDelete removes present keys and skips absent ones.
	dk := make([]keys.Key, 0, n/2+2)
	for i := 0; i < n; i += 2 {
		dk = append(dk, keys.Uint64(uint64(i)))
	}
	dk = append(dk, keys.Uint64(9999), keys.Uint64(10001))
	if err := fx.tree.MultiDelete(nil, dk); err != nil {
		t.Fatalf("MultiDelete: %v", err)
	}
	shape = fx.mustVerify(t)
	if shape.Records != n/2 {
		t.Fatalf("after delete: records = %d, want %d", shape.Records, n/2)
	}
	for i := 0; i < n; i++ {
		_, ok, _ := fx.tree.Search(nil, keys.Uint64(uint64(i)))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d: present=%v", i, ok)
		}
	}
}

// TestMultiPutMatchesLoopedInserts drives identical operation streams
// through the batch path and the per-key path and requires identical
// final contents — the serial equivalence oracle for the vectorized path.
func TestMultiPutMatchesLoopedInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fxA := newFixture(t, engine.Options{}, defaultTestOpts())
	fxB := newFixture(t, engine.Options{}, defaultTestOpts())
	const rounds = 20
	for r := 0; r < rounds; r++ {
		var ks []keys.Key
		var vs [][]byte
		for i := 0; i < 100; i++ {
			k := uint64(rng.Intn(1000))
			ks = append(ks, keys.Uint64(k))
			vs = append(vs, []byte(fmt.Sprintf("r%d-%d", r, k)))
		}
		if err := fxA.tree.MultiPut(nil, ks, vs); err != nil {
			t.Fatalf("MultiPut: %v", err)
		}
		for i := range ks {
			if err := fxB.tree.Insert(nil, ks[i], vs[i]); err == ErrKeyExists {
				err = fxB.tree.Update(nil, ks[i], vs[i])
				if err != nil {
					t.Fatalf("update: %v", err)
				}
			} else if err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
	}
	type kv struct{ k, v string }
	collect := func(tr *Tree) []kv {
		var out []kv
		if err := tr.RangeScan(nil, nil, nil, func(k keys.Key, v []byte) bool {
			out = append(out, kv{string(k), string(v)})
			return true
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		return out
	}
	a, b := collect(fxA.tree), collect(fxB.tree)
	if len(a) != len(b) {
		t.Fatalf("content diverged: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultiPutTxnAbort(t *testing.T) {
	for _, pageOriented := range []bool{false, true} {
		t.Run(fmt.Sprintf("pageOriented=%v", pageOriented), func(t *testing.T) {
			fx := newFixture(t, engine.Options{PageOriented: pageOriented}, defaultTestOpts())
			var ks []keys.Key
			var vs [][]byte
			for i := 0; i < 40; i++ {
				ks = append(ks, keys.Uint64(uint64(i)))
				vs = append(vs, val(i))
			}
			tx := fx.e.TM.Begin()
			if err := fx.tree.MultiPut(tx, ks, vs); err != nil {
				t.Fatalf("MultiPut: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Aborted batch: updates, deletes, and fresh inserts all undone.
			tx2 := fx.e.TM.Begin()
			var ks2 []keys.Key
			var vs2 [][]byte
			for i := 20; i < 80; i++ {
				ks2 = append(ks2, keys.Uint64(uint64(i)))
				vs2 = append(vs2, []byte("doomed"))
			}
			if err := fx.tree.MultiPut(tx2, ks2, vs2); err != nil {
				t.Fatalf("MultiPut in tx2: %v", err)
			}
			if err := fx.tree.MultiDelete(tx2, []keys.Key{keys.Uint64(1), keys.Uint64(2)}); err != nil {
				t.Fatalf("MultiDelete in tx2: %v", err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
			fx.tree.DrainCompletions()
			shape := fx.mustVerify(t)
			if shape.Records != 40 {
				t.Fatalf("records = %d, want 40", shape.Records)
			}
			for i := 0; i < 40; i++ {
				v, ok, _ := fx.tree.Search(nil, keys.Uint64(uint64(i)))
				if !ok || string(v) != string(val(i)) {
					t.Fatalf("key %d: ok=%v v=%q", i, ok, v)
				}
			}
		})
	}
}

// TestBatchCrashMidApply arms the core.batchapply crash point mid-way
// through a non-transactional batch: every leaf-run is its own atomic
// action, so recovery must keep exactly the runs whose commit records
// reached the stable log and roll back any partially-logged run — no
// partial-batch ghosts.
func TestBatchCrashMidApply(t *testing.T) {
	inj := fault.New(77)
	fx := newFixture(t, engine.Options{Injector: inj}, defaultTestOpts())
	// Committed, forced baseline.
	var ks []keys.Key
	var vs [][]byte
	for i := 0; i < 100; i++ {
		ks = append(ks, keys.Uint64(uint64(i)))
		vs = append(vs, val(i))
	}
	if err := fx.tree.MultiPut(nil, ks, vs); err != nil {
		t.Fatalf("baseline MultiPut: %v", err)
	}
	fx.tree.DrainCompletions()
	fx.e.Log.ForceAll()

	// Crash on the 3rd leaf-run of the next batch. Kind None: the probe
	// itself succeeds, but stable state freezes from that instant.
	inj.Arm(FPBatchApply, fault.Spec{Kind: fault.None, Crash: true, After: 3})
	var ks2 []keys.Key
	var vs2 [][]byte
	for i := 100; i < 300; i++ {
		ks2 = append(ks2, keys.Uint64(uint64(i)))
		vs2 = append(vs2, []byte("post-crash"))
	}
	if err := fx.tree.MultiPut(nil, ks2, vs2); err != nil {
		t.Fatalf("MultiPut over crash point: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("crash point never fired")
	}

	fx2 := fx.crashRestart(t, nil)
	shape := fx2.mustVerify(t)
	// Per-op oracle: every baseline key intact; every batch key either
	// fully applied with the batch value or absent.
	for i := 0; i < 100; i++ {
		v, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("baseline key %d: ok=%v v=%q err=%v", i, ok, v, err)
		}
	}
	survivors := 0
	for i := 100; i < 300; i++ {
		v, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if string(v) != "post-crash" {
				t.Fatalf("batch key %d: ghost value %q", i, v)
			}
			survivors++
		}
	}
	if want := shape.Records - 100; survivors != want {
		t.Fatalf("verify counted %d batch records, search found %d", want, survivors)
	}
}

// TestMultiGetAllocs: point batches riding the pooled per-op contexts and
// caller-provided result storage must not allocate.
func TestMultiGetAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are meaningless")
	}
	opts := defaultTestOpts()
	opts.LeafCapacity = 64
	opts.IndexCapacity = 64
	opts.CheckLatchOrder = false
	fx := newFixture(t, engine.Options{}, opts)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	fx.tree.DrainCompletions()

	ks := make([]keys.Key, 16)
	vals := make([][]byte, len(ks))
	found := make([]bool, len(ks))
	for i := range ks {
		ks[i] = keys.Uint64(uint64((i * 131) % n))
		vals[i] = make([]byte, 0, 64)
	}
	// Warm the op and scratch pools and the value buffers.
	for i := 0; i < 100; i++ {
		if err := fx.tree.MultiGet(nil, ks, vals, found); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := fx.tree.MultiGet(nil, ks, vals, found); err != nil {
			t.Error(err)
		}
		for i := range found {
			if !found[i] {
				t.Error("key vanished")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("MultiGet allocates %.1f objects per batch, want 0", allocs)
	}
}

func TestBatchArgMismatch(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	ks := []keys.Key{keys.Uint64(1)}
	if err := fx.tree.MultiPut(nil, ks, nil); err != errBatchArgs {
		t.Fatalf("MultiPut mismatch: %v", err)
	}
	if err := fx.tree.MultiGet(nil, ks, nil, nil); err != errBatchArgs {
		t.Fatalf("MultiGet mismatch: %v", err)
	}
	if err := fx.tree.MultiPut(nil, nil, nil); err != nil {
		t.Fatalf("empty MultiPut: %v", err)
	}
}

// TestBatchCheckpointRecLSN: a batched run's single group append must
// publish a recLSN covering its FIRST record when it dirties a clean
// page. A fuzzy checkpoint lands between the run and the page's next
// flush; if the page's dirty-table entry carried the group's LAST LSN,
// analysis would drop the earlier records of the run from the redo plan
// and the crash would silently lose committed updates.
func TestBatchCheckpointRecLSN(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	var ks []keys.Key
	var vs [][]byte
	for i := 0; i < 6; i++ {
		ks = append(ks, keys.Uint64(uint64(i)))
		if err := fx.tree.Insert(nil, ks[i], val(i)); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
		vs = append(vs, []byte(fmt.Sprintf("group-%d", i)))
	}
	fx.tree.DrainCompletions()
	// Clean every frame so the batched run below is the clean->dirty
	// transition that assigns the leaf's recLSN.
	if _, err := fx.e.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// One leaf-run of updates: records r1..rn in one group append.
	if err := fx.tree.MultiPut(nil, ks, vs); err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	// Fuzzy checkpoint captures the dirty leaf's recLSN; the page itself
	// is never flushed again before the crash.
	if _, err := fx.e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatalf("force: %v", err)
	}

	fx2 := fx.crashRestart(t, nil)
	fx2.mustVerify(t)
	for i := 0; i < 6; i++ {
		v, ok, err := fx2.tree.Search(nil, ks[i])
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != string(vs[i]) {
			t.Fatalf("key %d = %q after recovery, batch committed %q", i, v, vs[i])
		}
	}
}
