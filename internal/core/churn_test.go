package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
)

// TestChurnSteadyState drives a rolling key window (constant live set,
// continuous insert-at-head/delete-at-tail) and asserts the store reaches
// a steady state: consolidation plus the free-space map must hold the
// allocated page count flat once the first full turnover has passed, with
// freed pages recycled into new splits. This pins the two consolidation
// completeness rules — budget-cut sweeps reschedule their remainder, and
// index merges cascade a task down to the newly adjacent children —
// without either of which the store leaks a few stranded nodes per
// turnover, unbounded over time.
func TestChurnSteadyState(t *testing.T) {
	e := engine.New(engine.Options{})
	b := Register(e.Reg, false)
	st := e.AddStore(1, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "churn", Options{
		LeafCapacity: 16, IndexCapacity: 16, Consolidation: true, SyncCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	const window = 2000
	const turns = 6
	for k := 0; k < window; k++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(k)), []byte("c")); err != nil {
			t.Fatal(err)
		}
	}
	tree.DrainCompletions()

	var allocAt [turns]int64
	head := uint64(window)
	for c := 0; c < turns; c++ {
		for i := 0; i < window; i++ {
			if err := tree.Insert(nil, keys.Uint64(head), []byte("c")); err != nil {
				t.Fatal(err)
			}
			if err := tree.Delete(nil, keys.Uint64(head-window)); err != nil {
				t.Fatal(err)
			}
			head++
		}
		tree.DrainCompletions()
		if allocAt[c], err = st.AllocatedPages(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Verify(); err != nil {
		t.Fatal(err)
	}

	// Steady state: after the first turnover the allocated page count may
	// wobble by a handful of boundary pages but must not trend upward.
	for c := 1; c < turns; c++ {
		if allocAt[c] > allocAt[0]+5 {
			t.Fatalf("store grows under churn: alloc per turnover %v", allocAt)
		}
	}
	if st.Space.Recycled.Load() == 0 {
		t.Fatalf("no pages recycled despite %d freed", st.Space.Freed.Load())
	}
	// The window turns over completely each cycle, so frees must track the
	// leaf churn rate, not trail it.
	if freed := st.Space.Freed.Load(); freed < int64(turns*window/16) {
		t.Fatalf("freed only %d pages across %d turnovers", freed, turns)
	}
}
