package core

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/maint"
)

// TestEngineCloseDrainsScheduledConsolidations guts a tree so dozens of
// consolidations are queued behind a slow governor, then closes the
// engine. Close must run every scheduled completion to commit (bypassing
// the pacer), force the log, and flush the pools — so a reopen from the
// stable image redoes nothing and finds no half-merged structure.
func TestEngineCloseDrainsScheduledConsolidations(t *testing.T) {
	e := engine.New(engine.Options{})
	b := Register(e.Reg, false)
	st := e.AddStore(testStoreID, Codec{})
	opts := Options{
		LeafCapacity:    8,
		IndexCapacity:   8,
		Consolidation:   true,
		CheckLatchOrder: true,
		// One admission per second: without the drain bypass the backlog
		// below would take (bounded-pause) ages; with it, Close is quick.
		Governor: maint.New(1, 1<<30, nil),
	}
	tree, err := Create(st, e.TM, e.Locks, b, "test", opts)
	if err != nil {
		t.Fatalf("create tree: %v", err)
	}
	e.RegisterCloser(tree.Close)

	const n, keep = 400, 20
	for i := 0; i < n; i++ {
		if err := tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := keep; i < n; i++ {
		if err := tree.Delete(nil, keys.Uint64(uint64(i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}

	start := time.Now()
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("close took %v; drain did not bypass the governor", el)
	}
	if tree.Stats.Consolidations.Load() == 0 {
		t.Fatal("close dropped every scheduled consolidation")
	}

	// Checkpoint the quiesced engine so the reopen's redo scan is bounded
	// by the flushed state Close produced.
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	img := e.Crash(nil)
	e2 := engine.Restarted(img, e.Opts)
	b2 := Register(e2.Reg, false)
	st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
	p, err := e2.AnalyzeAndRedo()
	if err != nil {
		t.Fatalf("analyze+redo: %v", err)
	}
	if p.Stats.RedoneRecords != 0 {
		t.Fatalf("reopen after Close redid %d records, want 0", p.Stats.RedoneRecords)
	}
	tree2, err := Open(st2, e2.TM, e2.Locks, b2, "test", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer tree2.Close()
	if err := e2.FinishRecovery(p); err != nil {
		t.Fatalf("undo losers: %v", err)
	}
	shape, err := tree2.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if shape.Records != keep {
		t.Fatalf("records = %d, want %d", shape.Records, keep)
	}
	for i := 0; i < keep; i++ {
		if _, ok, err := tree2.Search(nil, keys.Uint64(uint64(i))); err != nil || !ok {
			t.Fatalf("key %d lost across close-reopen: ok=%v err=%v", i, ok, err)
		}
	}
}
