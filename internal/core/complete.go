package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/keys"
	"repro/internal/storage"
)

// taskKey identifies a pending completion for duplicate folding. It is a
// comparable value — scheduling a task from the hot path allocates no
// strings. Post tasks carry the separator as an FNV-1a fingerprint; a
// collision folds two distinct posts, which lazy completion repairs the
// next time a traversal crosses the unposted sibling (§5.1: every
// completing action re-tests the tree state anyway).
type taskKey struct {
	kind  uint8
	level int
	pid   storage.PageID
	sep   uint64
}

const (
	taskPost uint8 = iota + 1
	taskConsolidate
	taskRootShrink
)

// fingerprint is FNV-1a over a key, for taskKey dedup.
func fingerprint(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// postTask asks for the index term describing a split to be posted at
// `level` (§5.3's LEVEL): sep is the new node's low key (the KEY searched
// for), newPid its address, and path the remembered traversal (§5.2).
type postTask struct {
	level  int
	sep    keys.Key
	newPid storage.PageID
	path   *Path
}

func (t postTask) key() taskKey {
	return taskKey{kind: taskPost, level: t.level, pid: t.newPid, sep: fingerprint(t.sep)}
}

// consolidateTask asks for an attempt to consolidate the under-utilized
// node pid (whose responsible space starts at low) at `level`.
type consolidateTask struct {
	level int
	low   keys.Key
	pid   storage.PageID
}

func (t consolidateTask) key() taskKey {
	return taskKey{kind: taskConsolidate, level: t.level, pid: t.pid}
}

// rootShrinkTask asks for a height-reduction attempt.
type rootShrinkTask struct{}

func (rootShrinkTask) key() taskKey { return taskKey{kind: taskRootShrink} }

type completionTask interface{ key() taskKey }

// completer schedules and executes completing atomic actions: index-term
// postings and node consolidations. Scheduling is non-blocking and safe
// to call while holding latches; execution happens on worker goroutines
// (or inside DrainCompletions when SyncCompletion is set). Duplicate
// schedulings of the same pending task are folded together — additional
// duplicates that slip through are harmless because every completing
// action re-tests the tree state before changing anything (§5.1).
type completer struct {
	t       *Tree
	mu      sync.Mutex
	cond    *sync.Cond
	tasks   []completionTask
	pending map[taskKey]struct{}
	active  int
	stopped bool
	wg      sync.WaitGroup
	// draining suspends governor pacing so shutdown drains at full speed.
	draining atomic.Bool
}

// depth reports the current queue depth (scheduled, unpopped tasks).
func (c *completer) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks)
}

func newCompleter(t *Tree) *completer {
	c := &completer{
		t:       t,
		pending: make(map[taskKey]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if !t.opts.SyncCompletion {
		for i := 0; i < t.opts.CompletionWorkers; i++ {
			c.wg.Add(1)
			go c.worker()
		}
	}
	return c
}

func (c *completer) schedule(task completionTask) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if _, dup := c.pending[task.key()]; dup {
		c.mu.Unlock()
		return
	}
	c.pending[task.key()] = struct{}{}
	c.tasks = append(c.tasks, task)
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *completer) schedulePost(task postTask) {
	if task.path == nil {
		task.path = newPath()
	}
	c.t.Stats.PostsScheduled.Add(1)
	c.schedule(task)
}

func (c *completer) scheduleConsolidate(task consolidateTask) {
	c.schedule(task)
}

func (c *completer) scheduleRootShrink() {
	c.schedule(rootShrinkTask{})
}

// pop removes the next task, or returns nil if none (and, when block is
// true, waits for one unless stopped).
func (c *completer) pop(block bool) completionTask {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.tasks) == 0 {
		if !block || c.stopped {
			return nil
		}
		c.cond.Wait()
	}
	task := c.tasks[0]
	c.tasks = c.tasks[1:]
	delete(c.pending, task.key())
	c.active++
	return task
}

func (c *completer) done() {
	c.mu.Lock()
	c.active--
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *completer) run(task completionTask) {
	defer c.done()
	switch task := task.(type) {
	case postTask:
		c.t.postIndexTerm(task)
	case consolidateTask:
		c.t.consolidate(task)
	case rootShrinkTask:
		c.t.shrinkRoot()
	}
}

func (c *completer) worker() {
	defer c.wg.Done()
	for {
		task := c.pop(true)
		if task == nil {
			return
		}
		// Consolidation work is paced by the maintenance governor so
		// merges never convoy foreground mutators; index-term posts run
		// unpaced (they complete structure changes the foreground is
		// already navigating around). Draining bypasses the pacer.
		switch task.(type) {
		case consolidateTask, rootShrinkTask:
			if !c.draining.Load() {
				c.t.opts.Governor.Admit(c.depth())
			}
		}
		c.run(task)
	}
}

// drain processes or waits out every scheduled task. In SyncCompletion
// mode the calling goroutine executes them; otherwise it waits for the
// workers to go idle with an empty queue.
func (c *completer) drain() {
	if c.t.opts.SyncCompletion {
		for {
			task := c.pop(false)
			if task == nil {
				return
			}
			c.run(task)
		}
	}
	c.mu.Lock()
	for len(c.tasks) > 0 || c.active > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

func (c *completer) stop() {
	c.mu.Lock()
	c.stopped = true
	c.tasks = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// closeDrain is the orderly shutdown: work off every pending completion
// (including consolidations they escalate into), then stop the workers.
// Unlike stop alone, nothing pending is discarded, so a close-then-reopen
// never finds structure changes that were scheduled but silently dropped.
func (c *completer) closeDrain() {
	c.draining.Store(true)
	c.drain()
	c.stop()
}
