package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/lock"
)

// concurrentOpts uses background completion workers, as production would.
func concurrentOpts() Options {
	return Options{
		LeafCapacity:      16,
		IndexCapacity:     16,
		Consolidation:     true,
		CompletionWorkers: 2,
		CheckLatchOrder:   true,
	}
}

func TestConcurrentDisjointInserts(t *testing.T) {
	fx := newFixture(t, engine.Options{}, concurrentOpts())
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := keys.Uint64(uint64(w*perWorker + i))
				if err := fx.tree.Insert(nil, k, val(i)); err != nil {
					errs <- fmt.Errorf("worker %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	shape := fx.mustVerify(t)
	if shape.Records != workers*perWorker {
		t.Fatalf("records = %d, want %d", shape.Records, workers*perWorker)
	}
}

func TestConcurrentInsertSearchScan(t *testing.T) {
	fx := newFixture(t, engine.Options{}, concurrentOpts())
	// Preload.
	for i := 0; i < 500; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i*2)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg, wgReaders sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Writers insert odd keys.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 500; i += 4 {
				if err := fx.tree.Insert(nil, keys.Uint64(uint64(i*2+1)), val(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers hammer searches for preloaded keys, which must always be
	// found regardless of concurrent structure changes.
	for r := 0; r < 4; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(500)
				_, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i*2)))
				if err != nil || !ok {
					errs <- fmt.Errorf("reader: key %d ok=%v err=%v", i*2, ok, err)
					return
				}
			}
		}(r)
	}
	// One scanner repeatedly walks a range; counts must only grow for the
	// even keys it can rely on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			n := 0
			err := fx.tree.RangeScan(nil, keys.Uint64(0), keys.Uint64(1000), func(k keys.Key, v []byte) bool {
				n++
				return true
			})
			if err != nil {
				errs <- err
				return
			}
			if n < 500 {
				errs <- fmt.Errorf("scan saw %d < 500 preloaded keys", n)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	wgReaders.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	shape := fx.mustVerify(t)
	if shape.Records != 1000 {
		t.Fatalf("records = %d, want 1000", shape.Records)
	}
}

func TestConcurrentInsertDeleteWithConsolidation(t *testing.T) {
	fx := newFixture(t, engine.Options{}, concurrentOpts())
	const n = 2000
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// Deleters remove 3 of every 4 keys, concurrently, driving heavy
	// consolidation; a reader keeps checking the surviving stripe.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w + 1; i < n; i += 4 {
				if err := fx.tree.Delete(nil, keys.Uint64(uint64(i))); err != nil {
					errs <- fmt.Errorf("delete %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 2000; j++ {
			i := (j * 16) % n
			_, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i)))
			if err != nil || !ok {
				errs <- fmt.Errorf("surviving key %d: ok=%v err=%v", i, ok, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	shape := fx.mustVerify(t)
	if shape.Records != n/4 {
		t.Fatalf("records = %d, want %d", shape.Records, n/4)
	}
	if fx.tree.Stats.Consolidations.Load() == 0 {
		t.Fatal("expected consolidations to run")
	}
}

func TestConcurrentTransactionsWithAborts(t *testing.T) {
	for _, pageOriented := range []bool{false, true} {
		t.Run(fmt.Sprintf("pageOriented=%v", pageOriented), func(t *testing.T) {
			fx := newFixture(t, engine.Options{PageOriented: pageOriented}, concurrentOpts())
			const workers = 6
			const txPerWorker = 20
			const keysPerTx = 10

			committed := make([]map[uint64]bool, workers)
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				committed[w] = make(map[uint64]bool)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w * 1009)))
					for txi := 0; txi < txPerWorker; txi++ {
						deadlocked := false
						tx := fx.e.TM.Begin()
						batch := make([]uint64, 0, keysPerTx)
						for j := 0; j < keysPerTx; j++ {
							k := uint64(w)<<32 | uint64(txi*keysPerTx+j)
							err := fx.tree.Insert(tx, keys.Uint64(k), val(j))
							if errors.Is(err, lock.ErrDeadlock) {
								// Deadlock victim: abort and retry the whole
								// transaction, as a real client would.
								deadlocked = true
								break
							}
							if err != nil {
								errs <- fmt.Errorf("worker %d tx %d insert: %w", w, txi, err)
								_ = tx.Abort()
								return
							}
							batch = append(batch, k)
						}
						if deadlocked {
							if err := tx.Abort(); err != nil {
								errs <- err
								return
							}
							txi-- // retry
							continue
						}
						if rng.Intn(3) == 0 {
							if err := tx.Abort(); err != nil {
								errs <- err
								return
							}
						} else {
							if err := tx.Commit(); err != nil {
								errs <- err
								return
							}
							for _, k := range batch {
								committed[w][k] = true
							}
						}
					}
				}(w)
			}
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			fx.tree.DrainCompletions()
			shape := fx.mustVerify(t)

			want := 0
			for w := 0; w < workers; w++ {
				for k := range committed[w] {
					want++
					_, ok, err := fx.tree.Search(nil, keys.Uint64(k))
					if err != nil || !ok {
						t.Fatalf("committed key %d missing (ok=%v err=%v)", k, ok, err)
					}
				}
			}
			if shape.Records != want {
				t.Fatalf("records = %d, want %d committed", shape.Records, want)
			}
		})
	}
}
