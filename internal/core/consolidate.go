package core

import (
	"errors"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/storage"
)

// consolidate attempts to absorb an under-utilized node into an adjacent
// node at the same level (§3.3, §5): contents always move from the
// contained node into its containing node, the contained node's index
// term is deleted from their (single, shared) parent, and the contained
// node is de-allocated — all in ONE atomic action spanning two levels.
//
// The preconditions of §3.3 are re-tested under latches before anything
// changes: both nodes must be referenced by index terms in the same
// parent node, and the contained node only by that parent (B-link nodes
// never have multiple parents, so the second condition is structural
// here; the multi-attribute tree in internal/spatial has to check its
// multi-parent marks).
func (t *Tree) consolidate(task consolidateTask) {
	if !t.opts.Consolidation {
		return
	}
	t.Stats.ConsolidateTries.Add(1)
	_ = t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		parent, err := t.descendTo(o, task.low, task.level+1, latch.U, false, nil)
		if err != nil {
			if errors.Is(err, errLevelGone) {
				return nil
			}
			return err
		}

		// Locate the task's index term; its node is the merge seed.
		i, exact := parent.n.search(task.low)
		if !exact || parent.n.Entries[i].Child != task.pid {
			o.release(&parent)
			return nil // already consolidated or never posted: obsolete
		}
		// Promote the parent before latching any child (§4.1.1 promotion
		// rule); the whole batched sweep below runs under this one X hold,
		// which is what amortizes the parent pin+latch over several merges.
		o.promote(&parent)

		// Batched sweep: starting one term left of the seed, try adjacent
		// pairs under the single parent hold. A committed merge keeps the
		// index in place (the removed term shifted its successor in); a
		// skipped pair moves right. Both the merge count and the probe
		// count are bounded so one sweep cannot monopolize the parent.
		budget := t.opts.MergeBatch
		merges, probes := 0, 0
		idx := i - 1
		if idx < 0 {
			idx = 0
		}
		for idx+1 < len(parent.n.Entries) && merges < budget && probes < 2*budget {
			probes++
			merged, stop, err := t.tryMerge(o, &parent, idx, idx+1)
			if err != nil {
				o.release(&parent)
				return err
			}
			if stop {
				break
			}
			if merged {
				merges++
			} else {
				idx++
			}
		}

		parentEntries := len(parent.n.Entries)
		parentIsRoot := parent.pid() == t.root
		parentPid := parent.pid()
		parentLow := keys.Clone(parent.n.Low)
		parentLevel := parent.n.Level
		// A sweep cut short — batch budget, probe cap, or move-lock
		// contention — may leave qualifying pairs behind, and nothing
		// re-triggers them: the drained leaves' deletes are done, so without
		// a continuation the remainder is stranded until the next structure
		// change happens to land under this parent (under churn: never).
		// Re-seed a task at the stopping position; a task only reschedules
		// after freeing at least one node, so the chain terminates.
		if merges > 0 && idx+1 < len(parent.n.Entries) {
			e := parent.n.Entries[idx]
			t.comp.scheduleConsolidate(consolidateTask{level: task.level, low: keys.Clone(e.Key), pid: e.Child})
		}
		o.release(&parent)

		if merges == 0 {
			return nil
		}
		if merges > 1 {
			t.Stats.MergeBatches.Add(1)
		}
		// Escalate (§5: "Consolidation of index terms can lead to further
		// node consolidation, escalating tree changes to the next level").
		if parentIsRoot {
			if parentEntries == 1 {
				t.comp.scheduleRootShrink()
			}
		} else if parentEntries < int(float64(t.opts.IndexCapacity)*t.opts.MinUtilization) {
			t.comp.scheduleConsolidate(consolidateTask{level: parentLevel, low: parentLow, pid: parentPid})
		}
		return nil
	})
}

// tryMerge merges parent's children at term positions bIdx (container)
// and cIdx (contained) if every §3.3 precondition still holds. It reports
// whether a merge was committed and whether the caller's sweep should
// stop (move-lock contention: the action's pages are busy and further
// pairs under this parent will likely hit the same transactions). The
// parent stays latched in every case — the caller owns its release — so
// one parent visit can try several pairs.
func (t *Tree) tryMerge(o *opCtx, parent *nref, bIdx, cIdx int) (merged, stop bool, err error) {
	bEntry := parent.n.Entries[bIdx]
	cEntry := parent.n.Entries[cIdx]
	level := parent.n.Level - 1
	capacity := t.opts.IndexCapacity
	if level == 0 {
		capacity = t.opts.LeafCapacity
	}

	// Latch-and-promote strictly TOP-DOWN, honoring the §4.1.1 promotion
	// rule: each node is promoted to X while no higher-ordered latch is
	// held, so the coupled readers the promotion waits out can always
	// drain downward through latches we have not taken yet. (Promoting
	// the parent while already holding a child's U latch deadlocks with a
	// reader that holds parent-S and waits for that child — the exact
	// cycle the rule exists to prevent.) The caller promoted the parent.
	b, err := o.acquire(bEntry.Child, latch.U, level)
	if err != nil {
		return false, true, err
	}
	structOK := !b.n.Dead && b.n.Right == cEntry.Child &&
		!b.n.High.Unbounded && keys.Equal(b.n.High.Key, cEntry.Key)
	if !structOK {
		o.release(&b)
		return false, false, nil
	}
	o.promote(&b)
	c, err := o.acquire(cEntry.Child, latch.U, level)
	if err != nil {
		o.release(&b)
		return false, true, err
	}
	threshold := int(float64(capacity) * t.opts.MinUtilization)
	ok := !c.n.Dead && keys.Equal(c.n.Low, cEntry.Key) &&
		len(b.n.Entries)+len(c.n.Entries) <= capacity &&
		(len(b.n.Entries) < threshold || len(c.n.Entries) < threshold)
	if !ok {
		o.release(&c)
		o.release(&b)
		return false, false, nil
	}
	o.promote(&c)

	aa := t.tm.BeginAtomicAction()
	if level == 0 && t.binding.PageOriented() {
		// Records move between pages: the move lock must exclude every
		// transaction with undoable updates on either page. TryLock only —
		// holding three latches while waiting for locks would break the
		// No-Wait rule; contention simply defers the consolidation.
		if !aa.TryLock(t.pageLockName(b.pid()), lock.MV) ||
			!aa.TryLock(t.pageLockName(c.pid()), lock.MV) {
			_ = aa.Abort()
			o.release(&c)
			o.release(&b)
			return false, true, nil
		}
	}

	bLen, cLen := len(b.n.Entries), len(c.n.Entries)
	absorbed := c.n.clone()
	preB := b.n.clone()
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(b.pid()), KindConsolidateMove, encConsolidateMove(absorbed, preB))
	for _, e := range absorbed.Entries {
		b.n.insertEntry(e)
	}
	b.n.High = absorbed.High
	b.n.Right = absorbed.Right
	b.f.MarkDirty(lsn)

	lsn = aa.LogUpdate(t.store.Pool.StoreID, uint64(parent.pid()), KindRemoveIndexTerm, encTerm(cEntry.Key, cEntry.Child))
	parent.n.deleteEntry(cEntry.Key)
	parent.f.MarkDirty(lsn)

	if t.opts.DeallocIsUpdate {
		// Strategy (b): bump the victim's state identifier so saved-path
		// verification can prove de-allocation happened (§5.2.2(b)).
		lsn = aa.LogUpdate(t.store.Pool.StoreID, uint64(c.pid()), KindMarkDead, nil)
		c.n.Dead = true
		c.f.MarkDirty(lsn)
	}
	cPid := c.pid()
	if err := t.store.Free(aa, &o.tr, cPid); err != nil {
		// The free is the last change; abandoning the action rolls back
		// the move and term removal too.
		o.release(&c)
		o.release(&b)
		_ = aa.Abort()
		return false, true, err
	}
	if err := t.store.Pool.Probe(storage.FPConsolidate); err != nil {
		o.release(&c)
		o.release(&b)
		_ = aa.Abort()
		return false, true, err
	}

	// Commit before unlatching: nothing may observe the consolidated
	// state until the action's commit record is in the log.
	cerr := aa.Commit()
	o.release(&c)
	o.release(&b)
	if cerr != nil {
		return false, true, cerr
	}
	t.Stats.Consolidations.Add(1)
	if level == 0 {
		t.Stats.NoteLeafUtil(bLen, bLen+cLen, capacity)
		t.Stats.NoteLeafUtil(cLen, -1, capacity)
	} else {
		// Downward cascade, the counterpart of the upward escalation: the
		// absorbing index node now holds the absorbed node's child terms
		// adjacent to its own, so children separated by the old node
		// boundary can pair up for the first time. Nothing else re-triggers
		// them — their deletes are long done — so under sustained churn
		// each index merge would otherwise strand one under-filled child
		// per junction. Seed a task at the junction's left term.
		j := preB.Entries[len(preB.Entries)-1]
		t.comp.scheduleConsolidate(consolidateTask{level: level - 1, low: keys.Clone(j.Key), pid: j.Child})
	}
	return true, false, nil
}

// shrinkRoot reduces tree height by absorbing the root's single remaining
// child, when that child is the only node of its level. The root page
// itself never moves and is never de-allocated (§5.2.2 depends on that),
// so the absorption rewrites the root in place.
func (t *Tree) shrinkRoot() {
	if !t.opts.Consolidation {
		return
	}
	_ = t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		root, err := o.acquire(t.root, latch.U, maxLevel)
		if err != nil {
			return err
		}
		if root.n.IsLeaf() || len(root.n.Entries) != 1 {
			o.release(&root)
			return nil
		}
		childPid := root.n.Entries[0].Child
		child, err := o.acquire(childPid, latch.U, root.n.Level-1)
		if err != nil {
			o.release(&root)
			return err
		}
		if child.n.Dead || child.n.Right != storage.NilPage || !child.n.High.Unbounded {
			o.release(&child)
			o.release(&root)
			return nil
		}
		aa := t.tm.BeginAtomicAction()
		if child.n.IsLeaf() && t.binding.PageOriented() {
			if !aa.TryLock(t.pageLockName(childPid), lock.MV) {
				_ = aa.Abort()
				o.release(&child)
				o.release(&root)
				return nil
			}
		}
		// Top-down promotion per §4.1.1: the child's U latch would block
		// the root promotion's reader drain, so the root must be X before
		// the child's promotion begins — but the root promotion must not
		// happen while the child U latch is held either. Re-order: drop
		// the child, promote the root, re-latch and re-verify the child.
		o.release(&child)
		o.promote(&root)
		if len(root.n.Entries) != 1 || root.n.Entries[0].Child != childPid {
			o.release(&root)
			_ = aa.Abort()
			return nil
		}
		child, err = o.acquire(childPid, latch.U, root.n.Level-1)
		if err != nil {
			o.release(&root)
			_ = aa.Abort()
			return err
		}
		if child.n.Dead || child.n.Right != storage.NilPage || !child.n.High.Unbounded {
			o.release(&child)
			o.release(&root)
			_ = aa.Abort()
			return nil
		}
		o.promote(&child)

		absorbed := child.n.clone()
		pre := root.n.clone()
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(t.root), KindRootShrink, encConsolidateMove(absorbed, pre))
		root.n.Level = absorbed.Level
		root.n.Entries = absorbed.Entries
		root.n.High = absorbed.High
		root.n.Right = absorbed.Right
		root.f.MarkDirty(lsn)

		if t.opts.DeallocIsUpdate {
			lsn = aa.LogUpdate(t.store.Pool.StoreID, uint64(childPid), KindMarkDead, nil)
			child.n.Dead = true
			child.f.MarkDirty(lsn)
		}
		if err := t.store.Free(aa, &o.tr, childPid); err != nil {
			o.release(&child)
			o.release(&root)
			_ = aa.Abort()
			return err
		}
		if err := t.store.Pool.Probe(storage.FPConsolidate); err != nil {
			o.release(&child)
			o.release(&root)
			_ = aa.Abort()
			return err
		}
		cerr := aa.Commit()
		o.release(&child)
		o.release(&root)
		if cerr != nil {
			return cerr
		}
		t.Stats.RootShrinks.Add(1)
		return nil
	})
}
