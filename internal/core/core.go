package core
