package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestTornLeafWriteMidSMORecovery is the satellite scenario for the
// Π-tree: crash between the node-split atomic action and the index-term
// posting, with the flush racing the crash torn on a page write (the
// stale image persists). Restart must repeat history over the stale
// image, the intermediate split state must be well-formed and fully
// reachable via side pointers, and lazy completion must finish the SMOs
// — innovation 4 under an actively hostile stable layer.
func TestTornLeafWriteMidSMORecovery(t *testing.T) {
	inj := fault.New(0xC0DE)
	opts := defaultTestOpts()
	opts.NoCompletion = true // freeze every SMO between its two actions
	fx := newFixture(t, engine.Options{Injector: inj}, opts)
	const n = 120
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fx.tree.Stats.LeafSplits.Load() == 0 {
		t.Fatal("workload produced no splits")
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	// Flush with a torn page write in the middle: one page keeps its
	// stale (or absent) image while neighbours get current ones — the
	// classic partially-flushed crash state.
	inj.Arm(storage.FPDiskWrite, fault.Spec{Kind: fault.Torn, After: 3})
	_, err := fx.e.FlushAll()
	if !fault.IsTorn(err) {
		t.Fatalf("flush did not tear: %v", err)
	}
	if fx.e.Degraded() {
		t.Fatal("a page-write fault must not degrade the log")
	}
	inj.Disarm(storage.FPDiskWrite)

	// Crash and restart clean (the fault lives and dies with the crashed
	// incarnation), with completion enabled so the tree can finish the
	// frozen SMOs lazily.
	fx.e.Opts.Injector = nil
	fx.tree.opts.NoCompletion = false
	fx2 := fx.crashRestart(t, nil)

	shape, err := fx2.tree.Verify()
	if err != nil {
		t.Fatalf("tree ill-formed after torn-write recovery: %v", err)
	}
	if shape.Records != n {
		t.Fatalf("records = %d, want %d", shape.Records, n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	if fx2.tree.Stats.SideTraversals.Load() == 0 {
		t.Fatal("expected side traversals through unposted siblings")
	}
	fx2.tree.DrainCompletions()
	if fx2.tree.Stats.PostsPerformed.Load() == 0 {
		t.Fatal("lazy completion performed no postings")
	}
	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("after completion: %v", err)
	}
}

// TestPermanentLogFaultDegradesReadOnly kills the log device under a
// live tree: in-flight and future commits must be rejected with the
// typed degradation error (rolled back, not silently lost), the engine
// must report Degraded, and concurrent readers must keep being served
// from the buffered and stable state.
func TestPermanentLogFaultDegradesReadOnly(t *testing.T) {
	inj := fault.New(0xDEAD)
	fx := newFixture(t, engine.Options{Injector: inj}, defaultTestOpts())
	const n = 60
	for i := 0; i < n; i++ {
		tx := fx.e.TM.Begin()
		if err := fx.tree.Insert(tx, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	fx.tree.DrainCompletions()
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	// The log device dies permanently.
	inj.Arm(wal.FPSync, fault.Spec{Kind: fault.Permanent, Count: -1})

	// Concurrent writers and readers against the dying engine.
	const writers, readers = 4, 4
	var wg sync.WaitGroup
	writeErrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := fx.e.TM.Begin()
			if err := fx.tree.Insert(tx, keys.Uint64(uint64(1000+w)), val(1000+w)); err != nil {
				writeErrs[w] = err
				_ = tx.Abort()
				return
			}
			writeErrs[w] = tx.Commit()
		}(w)
	}
	readErrs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				v, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i)))
				if err != nil || !ok || string(v) != string(val(i)) {
					readErrs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()

	for w, err := range writeErrs {
		if err == nil {
			t.Fatalf("writer %d committed on a dead log device", w)
		}
		if !errors.Is(err, engine.ErrDegraded) {
			t.Fatalf("writer %d: %v is not ErrDegraded", w, err)
		}
	}
	for r, err := range readErrs {
		if err != nil {
			t.Fatalf("reader %d failed in degraded mode: %v", r, err)
		}
	}
	if !fx.e.Degraded() {
		t.Fatal("engine does not report degraded mode")
	}
	// Degradation is sticky: a later commit still fails.
	tx := fx.e.TM.Begin()
	if err := fx.tree.Insert(tx, keys.Uint64(2000), val(2000)); err == nil {
		if err := tx.Commit(); !errors.Is(err, engine.ErrDegraded) {
			t.Fatalf("late commit: %v", err)
		}
	} else {
		_ = tx.Abort()
	}
	// And reads still work after the dust settles.
	for i := 0; i < n; i++ {
		if _, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i))); err != nil || !ok {
			t.Fatalf("degraded read of key %d: ok=%v err=%v", i, ok, err)
		}
	}
}
