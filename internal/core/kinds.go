package core

import (
	"fmt"
	"sync"

	"repro/internal/enc"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Log record kinds owned by the Π-tree (range 10..29). Every structural
// operation is physiological: redo is a pure function of (page, payload),
// and undo is expressed as a compensating operation on the same page
// (page-oriented) or as a logical re-traversal (non-page-oriented record
// undo, selected per engine).
const (
	// KindFormatNode installs a complete node image on a fresh page (the
	// new sibling of a split, or the relocated root contents). Redo-only:
	// aborting the allocator entry reclaims the page.
	KindFormatNode wal.Kind = 10
	// KindSplitTruncate removes the delegated upper part from a split
	// node and installs its new sibling term.
	KindSplitTruncate wal.Kind = 11
	// KindRestoreImage replaces a node with a stored pre-image; it is the
	// compensation for multi-entry structural updates.
	KindRestoreImage wal.Kind = 12
	// KindInsertRecord adds a data record to a leaf.
	KindInsertRecord wal.Kind = 13
	// KindDeleteRecord removes a data record from a leaf.
	KindDeleteRecord wal.Kind = 14
	// KindUpdateRecord changes a data record's value in place.
	KindUpdateRecord wal.Kind = 15
	// KindPostIndexTerm adds an index term to an index node (§5.3 step 4).
	KindPostIndexTerm wal.Kind = 16
	// KindRemoveIndexTerm deletes an index term (consolidation).
	KindRemoveIndexTerm wal.Kind = 17
	// KindRootGrow turns the root into an index node over two new
	// children after a root split (§5.3 Space Test, root case).
	KindRootGrow wal.Kind = 18
	// KindConsolidateMove appends a contained node's entries to its
	// container and takes over its sibling term (§3.3).
	KindConsolidateMove wal.Kind = 19
	// KindMarkDead flags a de-allocated node, bumping its state
	// identifier — strategy (b) of §5.2.2.
	KindMarkDead wal.Kind = 20
	// KindMarkAlive clears the flag (compensation for KindMarkDead).
	KindMarkAlive wal.Kind = 21
	// KindRootShrink absorbs the root's single child, reducing tree
	// height after consolidations.
	KindRootShrink wal.Kind = 22
)

// --- payload codecs -----------------------------------------------------

func encKV(key keys.Key, val []byte) []byte {
	var w enc.Writer
	w.Bytes32(key)
	w.Bytes32(val)
	return w.Bytes()
}

func decKV(b []byte) (keys.Key, []byte, error) {
	r := enc.NewReader(b)
	k := r.Bytes32()
	v := r.Bytes32()
	return k, v, r.Err()
}

func encKVV(key keys.Key, newVal, oldVal []byte) []byte {
	var w enc.Writer
	w.Bytes32(key)
	w.Bytes32(newVal)
	w.Bytes32(oldVal)
	return w.Bytes()
}

func decKVV(b []byte) (keys.Key, []byte, []byte, error) {
	r := enc.NewReader(b)
	k := r.Bytes32()
	nv := r.Bytes32()
	ov := r.Bytes32()
	return k, nv, ov, r.Err()
}

func encTerm(key keys.Key, child storage.PageID) []byte {
	var w enc.Writer
	w.Bytes32(key)
	w.U64(uint64(child))
	return w.Bytes()
}

func decTerm(b []byte) (keys.Key, storage.PageID, error) {
	r := enc.NewReader(b)
	k := r.Bytes32()
	c := storage.PageID(r.U64())
	return k, c, r.Err()
}

func encNodeImage(n *Node) []byte {
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes()
}

func decNodeImage(b []byte) (*Node, error) {
	return decodeNode(enc.NewReader(b))
}

// splitTruncate payload: the separator, the new sibling, and the full
// pre-image for compensation.
func encSplitTruncate(sep keys.Key, right storage.PageID, pre *Node) []byte {
	var w enc.Writer
	w.Bytes32(sep)
	w.U64(uint64(right))
	encodeNode(&w, pre)
	return w.Bytes()
}

func decSplitTruncate(b []byte) (sep keys.Key, right storage.PageID, pre *Node, err error) {
	r := enc.NewReader(b)
	sep = r.Bytes32()
	right = storage.PageID(r.U64())
	pre, err = decodeNode(r)
	if err != nil {
		return nil, 0, nil, err
	}
	return sep, right, pre, r.Err()
}

// rootGrow payload: the two index terms of the grown root plus the full
// pre-image for compensation.
func encRootGrow(termA, termB Entry, pre *Node) []byte {
	var w enc.Writer
	encodeEntry(&w, termA)
	encodeEntry(&w, termB)
	encodeNode(&w, pre)
	return w.Bytes()
}

func decRootGrow(b []byte) (termA, termB Entry, pre *Node, err error) {
	r := enc.NewReader(b)
	termA, err = decodeEntry(r)
	if err != nil {
		return
	}
	termB, err = decodeEntry(r)
	if err != nil {
		return
	}
	pre, err = decodeNode(r)
	return
}

// consolidateMove payload: the absorbed node's image (entries plus the
// sibling term the container takes over) and the container's pre-image.
func encConsolidateMove(absorbed, pre *Node) []byte {
	var w enc.Writer
	encodeNode(&w, absorbed)
	encodeNode(&w, pre)
	return w.Bytes()
}

func decConsolidateMove(b []byte) (absorbed, pre *Node, err error) {
	r := enc.NewReader(b)
	absorbed, err = decodeNode(r)
	if err != nil {
		return
	}
	pre, err = decodeNode(r)
	return
}

// --- handler registration ------------------------------------------------

// Binding connects the registered record kinds to live Tree instances so
// that logical (non-page-oriented) undo can re-traverse. One Binding
// serves all Π-trees in an engine.
type Binding struct {
	mu           sync.RWMutex
	trees        map[uint32]*Tree
	pageOriented bool
}

// PageOriented reports whether record undo is page-oriented in this
// engine.
func (b *Binding) PageOriented() bool { return b.pageOriented }

// Bind registers a tree for its store ID.
func (b *Binding) Bind(t *Tree) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trees[t.store.Pool.StoreID] = t
}

func (b *Binding) tree(storeID uint32) (*Tree, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.trees[storeID]
	if !ok {
		return nil, fmt.Errorf("core: no tree bound for store %d", storeID)
	}
	return t, nil
}

func nodeOf(f *storage.Frame) (*Node, error) {
	n, ok := f.Data.(*Node)
	if !ok {
		return nil, fmt.Errorf("core: page %d holds %T, not a node", f.ID, f.Data)
	}
	return n, nil
}

// Register installs the Π-tree record kinds into reg. pageOriented selects
// the record-undo discipline for data records (§4.2): when true, undo is
// on the same page and splits that move uncommitted updates must run
// inside the updating transaction under a move lock; when false, record
// undo re-traverses the tree, and all splits run as independent atomic
// actions.
func Register(reg *storage.Registry, pageOriented bool) *Binding {
	b := &Binding{trees: make(map[uint32]*Tree), pageOriented: pageOriented}

	reg.Register(KindFormatNode, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decNodeImage(rec.Payload)
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
		// Redo-only: the page itself needs no compensation; undoing the
		// allocation reclaims it.
	})

	reg.Register(KindRestoreImage, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decNodeImage(rec.Payload)
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
		// Only ever appears as a CLR; never undone.
	})

	reg.Register(KindSplitTruncate, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			sep, right, _, err := decSplitTruncate(rec.Payload)
			if err != nil {
				return err
			}
			i, _ := n.search(sep)
			n.Entries = n.Entries[:i]
			n.High = keys.At(sep)
			n.Right = right
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decSplitTruncate(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindRestoreImage, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
		},
	})

	insertHandler := storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, v, err := decKV(rec.Payload)
			if err != nil {
				return err
			}
			n.insertEntry(Entry{Key: k, Value: v})
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			k, v, err := decKV(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindDeleteRecord, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encKV(k, v)}, nil
		},
	}
	deleteHandler := storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, _, err := decKV(rec.Payload)
			if err != nil {
				return err
			}
			n.deleteEntry(k)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			k, v, err := decKV(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindInsertRecord, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encKV(k, v)}, nil
		},
	}
	updateHandler := storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, nv, _, err := decKVV(rec.Payload)
			if err != nil {
				return err
			}
			if i, ok := n.search(k); ok {
				n.Entries[i].Value = nv
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			k, nv, ov, err := decKVV(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindUpdateRecord, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encKVV(k, ov, nv)}, nil
		},
	}
	if !pageOriented {
		// Non-page-oriented record undo: compensate by re-traversing the
		// tree to wherever the record lives now. Structure changes never
		// need undoing against moved records, which is why this mode lets
		// even data-node splits run outside the transaction (§6).
		insertHandler.LogicalUndo = func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			k, _, err := decKV(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoDelete(rec, k)
		}
		deleteHandler.LogicalUndo = func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			k, v, err := decKV(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoInsert(rec, k, v)
		}
		updateHandler.LogicalUndo = func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			k, _, ov, err := decKVV(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoUpdate(rec, k, ov)
		}
	}
	reg.Register(KindInsertRecord, insertHandler)
	reg.Register(KindDeleteRecord, deleteHandler)
	reg.Register(KindUpdateRecord, updateHandler)

	reg.Register(KindPostIndexTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, child, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			n.insertEntry(Entry{Key: k, Child: child})
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindRemoveIndexTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})

	reg.Register(KindRemoveIndexTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, _, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			n.deleteEntry(k)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindPostIndexTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})

	reg.Register(KindRootGrow, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			termA, termB, _, err := decRootGrow(rec.Payload)
			if err != nil {
				return err
			}
			n.Level++
			n.Entries = []Entry{termA, termB}
			n.High = keys.Inf
			n.Right = storage.NilPage
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decRootGrow(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindRestoreImage, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
		},
	})

	reg.Register(KindConsolidateMove, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			absorbed, _, err := decConsolidateMove(rec.Payload)
			if err != nil {
				return err
			}
			for _, e := range absorbed.Entries {
				n.insertEntry(e)
			}
			n.High = absorbed.High
			n.Right = absorbed.Right
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, pre, err := decConsolidateMove(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindRestoreImage, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
		},
	})

	reg.Register(KindMarkDead, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			n.Dead = true
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindMarkAlive, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID)}, nil
		},
	})
	reg.Register(KindMarkAlive, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			n.Dead = false
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindMarkDead, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID)}, nil
		},
	})

	reg.Register(KindRootShrink, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			absorbed, _, err := decConsolidateMove(rec.Payload)
			if err != nil {
				return err
			}
			n.Level = absorbed.Level
			n.Entries = absorbed.Entries
			n.High = absorbed.High
			n.Right = absorbed.Right
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, pre, err := decConsolidateMove(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return storage.Compensation{Kind: KindRestoreImage, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
		},
	})

	return b
}
