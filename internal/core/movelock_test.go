package core

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/keys"
)

// TestRecordMoveLocksBlockSplit exercises the record-set realization of
// the move lock (§4.2.2): a transaction holding an undoable update on a
// record that a split would move must block the (independent) split
// until it finishes.
func TestRecordMoveLocksBlockSplit(t *testing.T) {
	opts := defaultTestOpts()
	opts.RecordMoveLocks = true
	opts.LeafCapacity = 8
	fx := newFixture(t, engine.Options{PageOriented: true}, opts)

	// Fill one leaf to one-below capacity.
	for i := 0; i < 7; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i*10)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// tx updates a record in the upper half (it will be "to be moved").
	tx := fx.e.TM.Begin()
	if err := fx.tree.Update(tx, keys.Uint64(60), []byte("pending")); err != nil {
		t.Fatal(err)
	}

	// An eighth insert fills the leaf; the ninth forces the split, whose
	// record-granule move lock must wait for tx.
	if err := fx.tree.Insert(nil, keys.Uint64(5), val(99)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- fx.tree.Insert(nil, keys.Uint64(15), val(100))
	}()

	select {
	case err := <-done:
		t.Fatalf("split completed while the mover's record was update-locked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// Blocked, as required.
	}
	if splits := fx.tree.Stats.LeafSplits.Load() + fx.tree.Stats.RootGrowths.Load(); splits != 0 {
		t.Fatalf("split happened under the move lock: %d", splits)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("insert after unblock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("split never unblocked after the updater committed")
	}
	if fx.tree.Stats.MoveLockWaits.Load() == 0 {
		t.Fatal("no move-lock wait recorded")
	}
	if fx.tree.Stats.LeafSplits.Load()+fx.tree.Stats.RootGrowths.Load() == 0 {
		t.Fatal("split never happened")
	}
	fx.mustVerify(t)
}

// TestRecordMoveLocksCorrectness runs the transactional abort workload
// under the record-granule realization.
func TestRecordMoveLocksCorrectness(t *testing.T) {
	opts := defaultTestOpts()
	opts.RecordMoveLocks = true
	fx := newFixture(t, engine.Options{PageOriented: true}, opts)
	tx := fx.e.TM.Begin()
	for i := 0; i < 40; i++ {
		if err := fx.tree.Insert(tx, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := fx.e.TM.Begin()
	for i := 40; i < 80; i++ {
		if err := fx.tree.Insert(tx2, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	shape := fx.mustVerify(t)
	if shape.Records != 40 {
		t.Fatalf("records = %d, want 40", shape.Records)
	}
	// Crash and recover under the same options.
	fx.e.Log.ForceAll()
	fx2 := fx.crashRestart(t, nil)
	shape2 := fx2.mustVerify(t)
	if shape2.Records != 40 {
		t.Fatalf("after restart: records = %d", shape2.Records)
	}
}
