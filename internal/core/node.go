// Package core implements the Π-tree of Lomet & Salzberg (SIGMOD 1992),
// instantiated as a B-link tree over a one-dimensional key space, together
// with the paper's full concurrency-and-recovery protocol:
//
//   - structure changes decomposed into short atomic actions, each leaving
//     the tree well-formed (§5);
//   - node splits in one atomic action, index-term posting in another,
//     with the §5.3 posting algorithm implemented step for step;
//   - lazy completion of interrupted structure changes, discovered by side
//     pointer traversals during normal operation (§5.1);
//   - S/U/X latching with deadlock avoidance by resource ordering, the
//     No-Wait rule against latch-lock deadlocks, and move locks for
//     page-oriented UNDO (§4);
//   - saved-path re-traversal verified by state identifiers, under both
//     the CNS (no consolidation) and CP (consolidation possible)
//     invariants and both de-allocation strategies (§5.2);
//   - node consolidation as a single atomic action spanning two adjacent
//     levels (§3.3, §5).
//
// Every node is responsible for a half-open key interval. It directly
// contains [Low, High) and delegates [High, ...) to the sibling its side
// pointer references, so each level of the tree partitions the whole key
// space — the invariant that gives the Π-tree its name.
package core

import (
	"fmt"

	"repro/internal/enc"
	"repro/internal/keys"
	"repro/internal/storage"
)

// Entry is one slot of a node: a data record (Value) in leaves, an index
// term (Child) in index nodes. For an index term, Key is the low bound of
// the space the child is responsible for; the term's space extends to the
// next entry's key (or the node's High).
type Entry struct {
	Key   keys.Key
	Value []byte
	Child storage.PageID
}

// Node is the decoded contents of one Π-tree page.
//
// Responsibility vs. direct containment (§2.1.1): the node is responsible
// for [Low, end-of-its-sibling-chain); it directly contains [Low, High)
// and its sibling term — the (High, Right) pair — delegates [High, ...)
// to the contained node Right. Right is NilPage for the last node of a
// level, in which case High is unbounded.
type Node struct {
	// Level is 0 for data (leaf) nodes; index nodes sit one level above
	// their children.
	Level int
	// Low is the inclusive lower bound of the node's responsible space
	// (nil = -infinity). It never changes while the node is allocated.
	Low keys.Key
	// High is the exclusive upper bound of the directly contained space.
	High keys.Bound
	// Right is the side pointer to the sibling node responsible for
	// [High, ...): the sibling term of §2.1.1.
	Right storage.PageID
	// Dead marks a de-allocated node under the "de-allocation is a node
	// update" strategy (§5.2.2(b)); the state identifier bump that sets
	// it is what re-traversals detect.
	Dead bool
	// Entries are sorted by Key. In an index node the first entry's key
	// equals Low: the union of index-term spaces must cover the directly
	// contained space (well-formedness rule 4).
	Entries []Entry
}

// IsLeaf reports whether the node is a data node.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// DirectlyContains reports whether k is in the node's directly contained
// space.
func (n *Node) DirectlyContains(k keys.Key) bool {
	if n.Low != nil && keys.Compare(k, n.Low) < 0 {
		return false
	}
	return n.High.ContainsBelow(k)
}

// search returns the position of k among the entries and whether an entry
// with exactly key k exists. The binary search is written out rather than
// going through sort.Search: node lookups run several times per descent
// on every operation, and the explicit loop drops the closure call per
// probe and exits on an exact match (keys are unique within a node), so a
// hit costs one comparison per level of the search instead of a full
// lower-bound pass plus an equality check.
func (n *Node) search(k keys.Key) (int, bool) {
	lo, hi := 0, len(n.Entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c := keys.Compare(n.Entries[mid].Key, k)
		if c < 0 {
			lo = mid + 1
		} else if c > 0 {
			hi = mid
		} else {
			return mid, true
		}
	}
	return lo, false
}

// childFor returns the index term covering k: the entry with the largest
// key <= k. ok is false when k precedes every entry (possible only
// transiently or on malformed nodes; callers treat it as "retry").
func (n *Node) childFor(k keys.Key) (Entry, bool) {
	i, exact := n.search(k)
	if exact {
		return n.Entries[i], true
	}
	if i == 0 {
		return Entry{}, false
	}
	return n.Entries[i-1], true
}

// insertEntry places e at its sorted position. It reports whether an
// entry with the same key already existed (in which case nothing changes).
func (n *Node) insertEntry(e Entry) bool {
	i, exact := n.search(e.Key)
	if exact {
		return false
	}
	n.Entries = append(n.Entries, Entry{})
	copy(n.Entries[i+1:], n.Entries[i:])
	n.Entries[i] = e
	return true
}

// deleteEntry removes the entry with key k, reporting whether it existed.
func (n *Node) deleteEntry(k keys.Key) (Entry, bool) {
	i, exact := n.search(k)
	if !exact {
		return Entry{}, false
	}
	e := n.Entries[i]
	n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
	return e, true
}

// clone returns a deep copy of the node, used for undo payloads.
func (n *Node) clone() *Node {
	c := &Node{
		Level: n.Level,
		Low:   keys.Clone(n.Low),
		High:  n.High,
		Right: n.Right,
		Dead:  n.Dead,
	}
	c.High.Key = keys.Clone(n.High.Key)
	c.Entries = make([]Entry, len(n.Entries))
	for i, e := range n.Entries {
		c.Entries[i] = Entry{Key: keys.Clone(e.Key), Child: e.Child}
		if e.Value != nil {
			c.Entries[i].Value = append([]byte(nil), e.Value...)
		}
	}
	return c
}

// String renders a compact diagnostic form.
func (n *Node) String() string {
	iv := keys.Interval{Low: n.Low, High: n.High}
	return fmt.Sprintf("node{L%d %s right=%d n=%d dead=%v}", n.Level, iv, n.Right, len(n.Entries), n.Dead)
}

// encodeNode serializes a node (page image or log payload).
func encodeNode(w *enc.Writer, n *Node) {
	w.U16(uint16(n.Level))
	w.Bool(n.Dead)
	w.Bytes32(n.Low)
	w.Bool(n.High.Unbounded)
	w.Bytes32(n.High.Key)
	w.U64(uint64(n.Right))
	w.U32(uint32(len(n.Entries)))
	for _, e := range n.Entries {
		encodeEntry(w, e)
	}
}

func decodeNode(r *enc.Reader) (*Node, error) {
	n := &Node{}
	n.Level = int(r.U16())
	n.Dead = r.Bool()
	n.Low = r.Bytes32()
	n.High.Unbounded = r.Bool()
	n.High.Key = r.Bytes32()
	n.Right = storage.PageID(r.U64())
	cnt := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	n.Entries = make([]Entry, 0, cnt)
	for i := 0; i < cnt; i++ {
		e, err := decodeEntry(r)
		if err != nil {
			return nil, err
		}
		n.Entries = append(n.Entries, e)
	}
	return n, r.Err()
}

func encodeEntry(w *enc.Writer, e Entry) {
	w.Bytes32(e.Key)
	w.Bytes32(e.Value)
	w.U64(uint64(e.Child))
}

func decodeEntry(r *enc.Reader) (Entry, error) {
	e := Entry{
		Key:   r.Bytes32(),
		Value: r.Bytes32(),
	}
	e.Child = storage.PageID(r.U64())
	return e, r.Err()
}

// Codec is the storage.Codec for Π-tree pages.
type Codec struct{}

// EncodePage implements storage.Codec.
func (Codec) EncodePage(v any) ([]byte, error) {
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("core: cannot encode page of type %T", v)
	}
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes(), nil
}

// DecodePage implements storage.Codec.
func (Codec) DecodePage(b []byte) (any, error) {
	return decodeNode(enc.NewReader(b))
}

// SuccessorHint implements storage.SuccessorCodec: a leaf's scan-order
// successor is its side pointer, which is what RangeScan follows. Index
// nodes return no hint — read-ahead chains along the leaf level only.
func (Codec) SuccessorHint(data any) storage.PageID {
	if n, ok := data.(*Node); ok && n.Level == 0 {
		return n.Right
	}
	return storage.NilPage
}
