//go:build !race

package core

// raceEnabled gates tests whose expectations the race runtime breaks.
const raceEnabled = false
