package core

import (
	"errors"
	"fmt"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
)

// lockDance acquires a database lock for tx under the No-Wait rule
// (§4.1.2): if the lock is free it is taken without waiting; otherwise the
// held data-node latch is released before blocking, and the operation is
// restarted afterwards (the lock stays held, so the retry's TryLock
// succeeds immediately). A nil error with restart=false means the lock is
// held and the latch was kept.
func (o *opCtx) lockDance(r *nref, name lock.Name, mode lock.Mode) (restart bool, err error) {
	if o.txn == nil {
		return false, nil
	}
	if o.txn.TryLock(name, mode) {
		return false, nil
	}
	o.release(r)
	if err := o.txn.Lock(name, mode); err != nil {
		return false, err
	}
	return true, nil
}

// Search looks up key and returns a copy of its value. With a non-nil
// transaction the record is read under an S lock held to transaction end
// (degree-3 reads); with nil it is a latched-only read.
func (t *Tree) Search(tx *txn.Txn, key keys.Key) (val []byte, found bool, err error) {
	return t.SearchInto(tx, key, nil)
}

// SearchInto is Search with caller-provided value storage: the record's
// value is appended to buf (which may be nil) and the result returned,
// so a caller reusing a scratch buffer across lookups pays no per-hit
// allocation. The returned slice aliases buf's array when it had
// capacity. Locking semantics match Search.
func (t *Tree) SearchInto(tx *txn.Txn, key keys.Key, buf []byte) (val []byte, found bool, err error) {
	t.Stats.Searches.Add(1)
	// The retry loop is written out instead of going through t.retryLoop:
	// a closure there would capture key/buf/val and is the one heap
	// allocation left on the point-lookup path (see TestSearchIntoAllocs).
	for {
		o := t.newOp(tx)
		leaf, err := t.descendTo(o, key, 0, latch.S, true, nil)
		if err == nil {
			var restart bool
			restart, err = o.lockDance(&leaf, t.recLockName(key), lock.S)
			if err == nil && restart {
				err = errRetry // lock acquired; redo the descent under it
			}
			if err == nil {
				if i, ok := leaf.n.search(key); ok {
					val = append(buf[:0], leaf.n.Entries[i].Value...)
					found = true
				}
				o.release(&leaf)
				o.done()
				return val, found, nil
			}
		}
		o.done()
		if errors.Is(err, errRetry) {
			t.Stats.Restarts.Add(1)
			continue
		}
		return nil, false, err
	}
}

// Insert adds key with value. It returns ErrKeyExists if the key is
// already present. With a nil transaction the insert runs as its own
// atomic action (non-transactional mode: no database locks, immediate
// commit).
func (t *Tree) Insert(tx *txn.Txn, key keys.Key, value []byte) error {
	t.Stats.Inserts.Add(1)
	return t.modify(tx, key, func(o *opCtx, leaf *nref, lg storage.UpdateLogger) error {
		if _, exists := leaf.n.search(key); exists {
			return ErrKeyExists
		}
		o.promote(leaf)
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindInsertRecord, encKV(key, value))
		leaf.n.insertEntry(Entry{Key: keys.Clone(key), Value: append([]byte(nil), value...)})
		leaf.f.MarkDirty(lsn)
		t.Stats.NoteLeafUtil(len(leaf.n.Entries)-1, len(leaf.n.Entries), t.opts.LeafCapacity)
		return nil
	})
}

// Update replaces the value of an existing key; ErrKeyNotFound otherwise.
func (t *Tree) Update(tx *txn.Txn, key keys.Key, value []byte) error {
	t.Stats.Updates.Add(1)
	return t.modify(tx, key, func(o *opCtx, leaf *nref, lg storage.UpdateLogger) error {
		i, exists := leaf.n.search(key)
		if !exists {
			return ErrKeyNotFound
		}
		o.promote(leaf)
		old := leaf.n.Entries[i].Value
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindUpdateRecord, encKVV(key, value, old))
		leaf.n.Entries[i].Value = append([]byte(nil), value...)
		leaf.f.MarkDirty(lsn)
		return nil
	})
}

// Delete removes key; ErrKeyNotFound if absent. Under the CP invariant a
// leaf left under-utilized schedules a consolidation attempt (§5.1).
func (t *Tree) Delete(tx *txn.Txn, key keys.Key) error {
	t.Stats.Deletes.Add(1)
	return t.modify(tx, key, func(o *opCtx, leaf *nref, lg storage.UpdateLogger) error {
		i, exists := leaf.n.search(key)
		if !exists {
			return ErrKeyNotFound
		}
		o.promote(leaf)
		old := leaf.n.Entries[i].Value
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindDeleteRecord, encKV(key, old))
		leaf.n.deleteEntry(key)
		leaf.f.MarkDirty(lsn)
		t.Stats.NoteLeafUtil(len(leaf.n.Entries)+1, len(leaf.n.Entries), t.opts.LeafCapacity)
		t.maybeScheduleConsolidation(leaf)
		return nil
	})
}

// modify is the shared write path: descend with a U latch on the target
// leaf, take the record X lock and (page-oriented mode) the page IX lock
// under the No-Wait rule, split if the leaf is full, and then run apply
// under the X latch. With tx == nil the change is logged in a fresh
// atomic action that commits immediately.
func (t *Tree) modify(tx *txn.Txn, key keys.Key, apply func(o *opCtx, leaf *nref, lg storage.UpdateLogger) error) error {
	return t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		path := newPath()
		leaf, err := t.descendTo(o, key, 0, latch.U, true, path)
		if err != nil {
			return err
		}
		if restart, err := o.lockDance(&leaf, t.recLockName(key), lock.X); err != nil {
			return err
		} else if restart {
			return errRetry
		}

		if len(leaf.n.Entries) >= t.opts.LeafCapacity {
			// Full: split first, then retry the modification. The split
			// runs either as an independent atomic action or inside tx
			// (page-oriented mode when tx already updated this node).
			if err := t.splitLeaf(o, &leaf, path); err != nil {
				return err
			}
			return errRetry
		}

		// Page-granule IX lock marks us as an updater of this leaf, which
		// is what a later move lock must wait for (§4.2.2). Taken only in
		// page-oriented mode, and only now that we know we will modify
		// this page.
		if tx != nil && t.binding.PageOriented() {
			if restart, err := o.lockDance(&leaf, t.pageLockName(leaf.pid()), lock.IX); err != nil {
				return err
			} else if restart {
				return errRetry
			}
		}

		var lg storage.UpdateLogger
		var aa *txn.Txn
		if tx != nil {
			lg = tx
		} else {
			aa = t.tm.BeginAtomicAction()
			lg = aa
		}
		err = apply(o, &leaf, lg)
		// Commit before unlatching: no other action may observe this
		// action's changes until its commit record is in the log, or a
		// dependent commit could force the log without it and a crash
		// would undo a change others built on.
		if aa != nil {
			if err != nil {
				// Nothing was logged; an empty abort keeps the log tidy.
				_ = aa.Abort()
			} else if cerr := aa.Commit(); cerr != nil {
				o.release(&leaf)
				return cerr
			}
		}
		o.release(&leaf)
		return err
	})
}

// splitLeaf splits the U-latched leaf. On return the latch is released
// (whatever the outcome) and the caller retries its operation.
//
// Mode selection (§4.2.1): with non-page-oriented (logical) undo, every
// split is an independent atomic action. With page-oriented undo the
// split is independent only if the triggering transaction has not updated
// anything on this leaf; otherwise the records to be moved include the
// transaction's own uncommitted updates, the move could not be undone
// independently, and the split must run inside the transaction, its move
// lock held to end of transaction and its index-term posting deferred to
// commit.
func (t *Tree) splitLeaf(o *opCtx, leaf *nref, path *Path) error {
	tx := o.txn
	pageName := t.pageLockName(leaf.pid())

	inTxn := false
	if t.binding.PageOriented() && tx != nil {
		if _, held := t.lm.HeldMode(tx.ID, pageName); held {
			inTxn = true
		}
	}

	if inTxn {
		return t.splitLeafInTxn(o, leaf, path, pageName)
	}

	// Independent atomic action.
	aa := t.tm.BeginAtomicAction()
	if t.binding.PageOriented() {
		if t.opts.RecordMoveLocks {
			// Record-set realization (§4.2.2): MV-lock every record that
			// the split will move. A conflict means some transaction has
			// an undoable update on a to-be-moved record; the No-Wait
			// rule forces the latch down before blocking, and the retry
			// re-examines the (possibly changed) node.
			mid := len(leaf.n.Entries) / 2
			for _, e := range leaf.n.Entries[mid:] {
				name := t.recLockName(e.Key)
				if aa.TryLock(name, lock.MV) {
					continue
				}
				o.release(leaf)
				t.Stats.MoveLockWaits.Add(1)
				err := aa.Lock(name, lock.MV)
				_ = aa.Abort()
				if err != nil {
					return err
				}
				return errRetry
			}
		} else {
			// Page-granule realization: one lock that waits for every
			// transaction updating records on this page.
			if !aa.TryLock(pageName, lock.MV) {
				o.release(leaf)
				t.Stats.MoveLockWaits.Add(1)
				err := aa.Lock(pageName, lock.MV)
				_ = aa.Abort()
				if err != nil {
					return err
				}
				return errRetry
			}
		}
	}
	o.promote(leaf)
	sep, newPid, err := t.splitNode(o, leaf, aa)
	if err != nil {
		_ = aa.Abort()
		return t.handleSplitError(o, leaf, err)
	}
	// Commit before unlatching (see modify): the new sibling becomes
	// reachable only once the old node's latch drops, by which time the
	// split's commit record precedes anything a dependent action can log.
	if cerr := aa.Commit(); cerr != nil {
		o.release(leaf)
		return cerr
	}
	o.release(leaf)
	if newPid != storage.NilPage {
		t.schedulePostAfterSplit(path, sep, newPid)
	}
	return nil
}

// handleSplitError releases the latch and, for a new-page lock conflict
// (a stale page-granule lock surviving from the page's previous
// incarnation), waits the holder out before retrying.
func (t *Tree) handleSplitError(o *opCtx, held *nref, err error) error {
	o.release(held)
	var pl *errPageLocked
	if errors.As(err, &pl) {
		t.Stats.MoveLockWaits.Add(1)
		w := t.tm.BeginAtomicAction()
		lerr := w.Lock(pl.name, lock.MV)
		_ = w.Abort()
		if lerr != nil {
			return lerr
		}
		return errRetry
	}
	return err
}

// splitLeafInTxn performs the split inside the updating transaction.
func (t *Tree) splitLeafInTxn(o *opCtx, leaf *nref, path *Path, pageName lock.Name) error {
	tx := o.txn
	// Upgrade our IX to the move lock; other updaters force the No-Wait
	// dance.
	if !tx.TryLock(pageName, lock.MV) {
		o.release(leaf)
		t.Stats.MoveLockWaits.Add(1)
		if err := tx.Lock(pageName, lock.MV); err != nil {
			return err
		}
		return errRetry
	}
	o.promote(leaf)

	// Under the CNS invariant nodes are immortal: the new page must not
	// be freed even if tx aborts, because a concurrent traversal may
	// still hold its address with no latch coupling to protect it. The
	// allocation is wrapped in a nested top-level action so an abort
	// leaks the page instead of reclaiming it. Under CP, coupling makes
	// reclamation safe and the allocation stays in tx's undo chain.
	var nt txn.NestedToken
	useNTA := !t.opts.Consolidation
	if useNTA {
		nt = tx.BeginNested()
	}
	sep, newPid, err := t.splitNode(o, leaf, tx)
	if useNTA {
		tx.CommitNested(nt)
	}
	if err != nil {
		return t.handleSplitError(o, leaf, err)
	}
	o.release(leaf)
	if newPid != storage.NilPage {
		t.Stats.InTxnSplits.Add(1)
		sepCopy := keys.Clone(sep)
		p := path.clone()
		// §4.2.2: "The posting of the index term for splits cannot occur
		// until and unless T commits."
		tx.OnCommit(func() { t.schedulePostAfterSplit(p, sepCopy, newPid) })
	}
	return nil
}

// errPageLocked reports that a freshly allocated page's lock name is
// still held by a transaction that knew the page's previous incarnation;
// the split must back off and wait it out.
type errPageLocked struct {
	name lock.Name
}

func (e *errPageLocked) Error() string {
	return "core: new page's lock name still held: " + e.name.String()
}

// lockNewDataPage takes the move lock on a just-allocated data page
// before the page becomes reachable, so that no updater can slip a record
// into it before the splitting action is committed (or, for an
// in-transaction split, finished). On a stale-lock conflict the
// allocation is compensated (freed) and errPageLocked returned.
func (t *Tree) lockNewDataPage(o *opCtx, act *txn.Txn, level int, pid storage.PageID) error {
	if level != 0 || !t.binding.PageOriented() {
		return nil
	}
	name := t.pageLockName(pid)
	if act.TryLock(name, lock.MV) {
		return nil
	}
	if err := t.store.Free(act, &o.tr, pid); err != nil {
		return err
	}
	return &errPageLocked{name: name}
}

// splitNode performs the mechanical split of the X-latched node r,
// logging through the acting transaction (an independent atomic action,
// or the updating transaction itself for in-transaction splits). For a
// non-root node it creates a sibling and returns the separator and new
// page ID for index-term posting. For the root it grows the tree in place
// (§5.3: the root never moves) and returns NilPage — no posting is
// needed, both terms were installed here.
func (t *Tree) splitNode(o *opCtx, r *nref, act *txn.Txn) (keys.Key, storage.PageID, error) {
	n := r.n
	if len(n.Entries) < 2 {
		return nil, storage.NilPage, fmt.Errorf("core: split of node %d with %d entries", r.pid(), len(n.Entries))
	}
	mid := len(n.Entries) / 2
	sep := keys.Clone(n.Entries[mid].Key)
	pre := n.clone()

	if r.pid() == t.root {
		return t.growRoot(o, r, act, pre, sep, mid)
	}

	newPid, err := t.store.Alloc(act, &o.tr)
	if err != nil {
		return nil, storage.NilPage, err
	}
	if err := t.lockNewDataPage(o, act, n.Level, newPid); err != nil {
		return nil, storage.NilPage, err
	}
	sibling := &Node{
		Level:   n.Level,
		Low:     sep,
		High:    pre.High,
		Right:   pre.Right,
		Entries: append([]Entry(nil), pre.Entries[mid:]...),
	}
	fnew, err := t.store.Pool.Create(newPid)
	if err != nil {
		return nil, storage.NilPage, err
	}
	fnew.Latch.AcquireX()
	o.tr.Acquired(&fnew.Latch, o.rank(n.Level), latch.X)
	lsnF := act.LogUpdate(t.store.Pool.StoreID, uint64(newPid), KindFormatNode, encNodeImage(sibling))
	fnew.Data = sibling
	fnew.MarkDirty(lsnF)
	o.tr.Released(&fnew.Latch)
	fnew.Latch.ReleaseX()
	t.store.Pool.Unpin(fnew)

	lsnT := act.LogUpdate(t.store.Pool.StoreID, uint64(r.pid()), KindSplitTruncate, encSplitTruncate(sep, newPid, pre))
	n.Entries = n.Entries[:mid]
	n.High = keys.At(sep)
	n.Right = newPid
	r.f.MarkDirty(lsnT)

	if n.Level == 0 {
		t.Stats.LeafSplits.Add(1)
		t.Stats.NoteLeafUtil(len(pre.Entries), mid, t.opts.LeafCapacity)
		t.Stats.NoteLeafUtil(-1, len(pre.Entries)-mid, t.opts.LeafCapacity)
	} else {
		t.Stats.IndexSplits.Add(1)
	}
	return sep, newPid, nil
}

// growRoot splits the root in place: the lower half moves to a new node
// A, the upper half to a new node B with A's side pointer referencing B,
// and the root becomes an index node over both. Height increases by one;
// the root page never moves and is never de-allocated (§5.2.2 relies on
// this).
func (t *Tree) growRoot(o *opCtx, r *nref, act *txn.Txn, pre *Node, sep keys.Key, mid int) (keys.Key, storage.PageID, error) {
	n := r.n
	pidB, err := t.store.Alloc(act, &o.tr)
	if err != nil {
		return nil, storage.NilPage, err
	}
	if err := t.lockNewDataPage(o, act, pre.Level, pidB); err != nil {
		return nil, storage.NilPage, err
	}
	pidA, err := t.store.Alloc(act, &o.tr)
	if err != nil {
		return nil, storage.NilPage, err
	}
	if err := t.lockNewDataPage(o, act, pre.Level, pidA); err != nil {
		return nil, storage.NilPage, err
	}

	// The halves must NOT share pre's backing array: an in-place append
	// during a later insert into one node would overwrite the other's
	// entries.
	nodeB := &Node{
		Level:   pre.Level,
		Low:     sep,
		High:    pre.High,
		Right:   pre.Right,
		Entries: append([]Entry(nil), pre.Entries[mid:]...),
	}
	nodeA := &Node{
		Level:   pre.Level,
		Low:     keys.Clone(pre.Low),
		High:    keys.At(sep),
		Right:   pidB,
		Entries: append([]Entry(nil), pre.Entries[:mid]...),
	}

	for _, nn := range []struct {
		pid  storage.PageID
		node *Node
	}{{pidB, nodeB}, {pidA, nodeA}} {
		f, err := t.store.Pool.Create(nn.pid)
		if err != nil {
			return nil, storage.NilPage, err
		}
		f.Latch.AcquireX()
		o.tr.Acquired(&f.Latch, o.rank(pre.Level), latch.X)
		lsn := act.LogUpdate(t.store.Pool.StoreID, uint64(nn.pid), KindFormatNode, encNodeImage(nn.node))
		f.Data = nn.node
		f.MarkDirty(lsn)
		o.tr.Released(&f.Latch)
		f.Latch.ReleaseX()
		t.store.Pool.Unpin(f)
	}

	termA := Entry{Key: keys.Clone(pre.Low), Child: pidA}
	termB := Entry{Key: keys.Clone(sep), Child: pidB}
	lsn := act.LogUpdate(t.store.Pool.StoreID, uint64(r.pid()), KindRootGrow, encRootGrow(termA, termB, pre))
	n.Level++
	n.Entries = []Entry{termA, termB}
	n.High = keys.Inf
	n.Right = storage.NilPage
	r.f.MarkDirty(lsn)

	t.Stats.RootGrowths.Add(1)
	if pre.Level == 0 {
		// The root leaf's entries moved into two new leaves.
		t.Stats.NoteLeafUtil(len(pre.Entries), -1, t.opts.LeafCapacity)
		t.Stats.NoteLeafUtil(-1, mid, t.opts.LeafCapacity)
		t.Stats.NoteLeafUtil(-1, len(pre.Entries)-mid, t.opts.LeafCapacity)
	}
	return nil, storage.NilPage, nil
}

// schedulePostAfterSplit queues the index-term posting atomic action for
// a committed split (§3.2.1 step 6: "Posting occurs in a separate atomic
// action from the action that performs the split").
func (t *Tree) schedulePostAfterSplit(path *Path, sep keys.Key, newPid storage.PageID) {
	if t.opts.NoCompletion || t.comp == nil {
		return
	}
	t.comp.schedulePost(postTask{
		level:  1, // a leaf split posts one level up
		sep:    sep,
		newPid: newPid,
		path:   path,
	})
}

// maybeScheduleConsolidation queues a consolidation attempt for an
// under-utilized non-root node (CP invariant only).
func (t *Tree) maybeScheduleConsolidation(r *nref) {
	if !t.opts.Consolidation || t.opts.NoCompletion || t.comp == nil {
		return
	}
	if r.pid() == t.root {
		return
	}
	if len(r.n.Entries) >= int(float64(t.opts.LeafCapacity)*t.opts.MinUtilization) {
		return
	}
	t.comp.scheduleConsolidate(consolidateTask{
		level: r.n.Level,
		low:   keys.Clone(r.n.Low),
		pid:   r.pid(),
	})
}

// RangeScan calls fn for each key in [lo, hi) in order, stopping early if
// fn returns false. hi may be nil for an unbounded scan. The scan is
// latch-consistent per leaf; with a non-nil transaction each returned
// record is S-locked first (held to transaction end). Keys and values
// passed to fn are copies.
func (t *Tree) RangeScan(tx *txn.Txn, lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) error {
	type rec struct {
		k keys.Key
		v []byte
	}
	cursor := keys.Clone(lo)
	for {
		var batch []rec
		var nextCursor keys.Key
		done := false
		err := t.retryLoop(func() error {
			batch = batch[:0]
			o := t.newOp(tx)
			defer o.done()
			leaf, err := t.descendTo(o, cursor, 0, latch.S, true, nil)
			if err != nil {
				return err
			}
			// Collect this leaf's qualifying records, then move on; locks
			// (if any) are taken after release, one record at a time, per
			// the No-Wait rule.
			for _, e := range leaf.n.Entries {
				if keys.Compare(e.Key, cursor) < 0 {
					continue
				}
				if hi != nil && keys.Compare(e.Key, hi) >= 0 {
					done = true
					break
				}
				batch = append(batch, rec{k: keys.Clone(e.Key), v: append([]byte(nil), e.Value...)})
			}
			if !done {
				if leaf.n.High.Unbounded {
					done = true
				} else {
					nextCursor = keys.Clone(leaf.n.High.Key)
					if hi != nil && keys.Compare(nextCursor, hi) >= 0 {
						done = true
					}
				}
			}
			if !done {
				// Read-ahead: start the successor leaf's disk read now so it
				// overlaps the callback work on this leaf's batch.
				t.store.Pool.PrefetchAsync(leaf.n.Right)
			}
			o.release(&leaf)
			return nil
		})
		if err != nil {
			return err
		}
		for _, r := range batch {
			if tx != nil {
				if err := tx.Lock(t.recLockName(r.k), lock.S); err != nil {
					return err
				}
			}
			if !fn(r.k, r.v) {
				return nil
			}
		}
		if done {
			return nil
		}
		cursor = nextCursor
	}
}
