package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
)

// optimisticOpts is a production-shaped configuration: background
// completion, no latch-order tracking overhead, optimistic descent on.
func optimisticOpts() Options {
	return Options{
		LeafCapacity:      16,
		IndexCapacity:     16,
		Consolidation:     true,
		CompletionWorkers: 2,
	}
}

// TestOptimisticHitRatio checks the acceptance bar for the optimistic
// descent on a read-only workload: at least 90% of interior-node visits
// must be served from validated snapshots, with no descent falling back
// to the latched path once the snapshots are warm.
func TestOptimisticHitRatio(t *testing.T) {
	fx := newFixture(t, engine.Options{}, optimisticOpts())
	const n = 2000
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	fx.tree.DrainCompletions()
	fx.tree.Stats.OptimisticHits.Store(0)
	fx.tree.Stats.OptimisticRetries.Store(0)
	fx.tree.Stats.OptimisticFallbacks.Store(0)

	for i := 0; i < n; i++ {
		if _, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i))); err != nil || !ok {
			t.Fatalf("search %d: found=%v err=%v", i, ok, err)
		}
	}
	hits := fx.tree.Stats.OptimisticHits.Load()
	retries := fx.tree.Stats.OptimisticRetries.Load()
	fallbacks := fx.tree.Stats.OptimisticFallbacks.Load()
	if hits == 0 {
		t.Fatal("no optimistic hits on a read-only workload")
	}
	if ratio := float64(hits) / float64(hits+retries); ratio < 0.90 {
		t.Fatalf("optimistic hit ratio %.3f (hits=%d retries=%d), want >= 0.90", ratio, hits, retries)
	}
	if fallbacks != 0 {
		t.Fatalf("%d pessimistic fallbacks on a read-only workload", fallbacks)
	}
}

// TestOptimisticSMOStorm is the key-space responsibility property test:
// optimistic searchers run against continuous splits (inserts) and
// consolidations (deletes). A key that is always present must be found
// by every search — an unlatched traversal that lands on a stale or
// de-allocated node and misses would be a ghost miss.
func TestOptimisticSMOStorm(t *testing.T) {
	fx := newFixture(t, engine.Options{}, optimisticOpts())

	// Stable keys: inserted once, never touched again. Interleaved with
	// the churn ranges so SMOs happen all around them.
	const stable = 400
	for i := 0; i < stable; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i*1000)), val(i)); err != nil {
			t.Fatalf("insert stable %d: %v", i, err)
		}
	}

	const writers = 4
	const searchers = 4
	const churnRounds = 60
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+searchers)

	// Writers: fill and drain disjoint churn ranges, forcing splits on
	// the way up and consolidations on the way down, at every level.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer stop.Store(true)
			base := uint64(w*1000 + 1)
			for r := 0; r < churnRounds; r++ {
				for i := uint64(0); i < 120; i++ {
					k := keys.Uint64(base + uint64(w)*1_000_000 + i*7%997)
					_ = fx.tree.Insert(nil, k, val(int(i)))
				}
				for i := uint64(0); i < 120; i++ {
					k := keys.Uint64(base + uint64(w)*1_000_000 + i*7%997)
					_ = fx.tree.Delete(nil, k)
				}
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			var buf []byte
			for !stop.Load() {
				i := rng.Intn(stable)
				v, ok, err := fx.tree.SearchInto(nil, keys.Uint64(uint64(i*1000)), buf)
				if err != nil {
					errs <- fmt.Errorf("searcher %d: %v", s, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("ghost miss: stable key %d not found", i*1000)
					return
				}
				if string(v) != string(val(i)) {
					errs <- fmt.Errorf("stable key %d: value %q, want %q", i*1000, v, val(i))
					return
				}
				buf = v[:0]
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fx.tree.Stats.OptimisticHits.Load() == 0 {
		t.Fatal("storm exercised no optimistic visits")
	}
	shape := fx.mustVerify(t)
	if shape.Records < stable {
		t.Fatalf("records = %d, want >= %d", shape.Records, stable)
	}
	for i := 0; i < stable; i++ {
		if _, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i*1000))); err != nil || !ok {
			t.Fatalf("post-storm search %d: found=%v err=%v", i*1000, ok, err)
		}
	}
}

// TestSearchIntoAllocs pins the per-lookup allocation budget of the
// pooled-opCtx SearchInto path, both optimistic and fully latched: zero —
// SearchInto hand-rolls its retry loop precisely so no closure escapes.
func TestSearchIntoAllocs(t *testing.T) {
	for _, tc := range []struct {
		name        string
		pessimistic bool
		budget      float64
	}{
		{"optimistic", false, 0},
		{"latched", true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := optimisticOpts()
			opts.PessimisticDescent = tc.pessimistic
			fx := newFixture(t, engine.Options{}, opts)
			const n = 1000
			for i := 0; i < n; i++ {
				if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			fx.tree.DrainCompletions()
			k := keys.Uint64(uint64(n / 2))
			buf := make([]byte, 0, 64)
			// Warm the opCtx pool and (optimistic path) the nav snapshots.
			for i := 0; i < 100; i++ {
				if _, ok, err := fx.tree.SearchInto(nil, k, buf); err != nil || !ok {
					t.Fatalf("warmup search: found=%v err=%v", ok, err)
				}
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, ok, _ := fx.tree.SearchInto(nil, k, buf); !ok {
					t.Error("key vanished")
				}
			})
			if allocs > tc.budget {
				t.Fatalf("SearchInto allocates %.1f objects/op, budget %.0f", allocs, tc.budget)
			}
		})
	}
}
