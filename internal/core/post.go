package core

import (
	"errors"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/storage"
)

// postIndexTerm is the completing atomic action of §5.3: post the index
// term describing a split at task.level. It follows the paper's four
// steps — Search, Verify Split, Space Test, Update NODE — and terminates
// silently whenever the re-tested tree state shows the posting is already
// done or no longer needed, which is what makes completion idempotent and
// duplicate schedulings harmless.
func (t *Tree) postIndexTerm(task postTask) {
	t.Stats.PostAttempts.Add(1)
	err := t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()

		// Step 1 — Search: reach the U-latched NODE at LEVEL whose
		// directly contained space includes KEY, exploiting the saved
		// path where the invariant in force permits (§5.2).
		node, err := t.searchToLevel(o, task)
		if err != nil {
			if errors.Is(err, errLevelGone) {
				t.Stats.PostsObsolete.Add(1)
				return nil
			}
			return err
		}

		// Step 2 — Verify Split: re-test the state.
		if _, posted := node.n.search(task.sep); posted {
			t.Stats.PostsAlreadyDone.Add(1)
			o.release(&node)
			return nil
		}
		termKey := keys.Clone(task.sep)
		termChild := task.newPid
		if t.opts.Consolidation {
			// CP: the split child may have been consolidated away, or
			// further split; verify by visiting the child with the
			// largest index term key below KEY and checking its sibling
			// term (§5.3). The term actually posted is that sibling —
			// possibly "a new ADDRESS".
			e, ok := node.n.childFor(task.sep)
			if !ok {
				t.Stats.PostsObsolete.Add(1)
				o.release(&node)
				return nil
			}
			child, err := o.acquire(e.Child, latch.S, node.n.Level-1)
			if err != nil {
				o.release(&node)
				return err
			}
			if child.n.Dead {
				o.release(&child)
				o.release(&node)
				return errRetry
			}
			if child.n.DirectlyContains(task.sep) || child.n.Right == storage.NilPage {
				// The space containing KEY has been reabsorbed: the node
				// whose index term was to be posted has been deleted.
				t.Stats.PostsObsolete.Add(1)
				o.release(&child)
				o.release(&node)
				return nil
			}
			termKey = keys.Clone(child.n.High.Key)
			termChild = child.n.Right
			o.release(&child)
			if _, posted := node.n.search(termKey); posted {
				t.Stats.PostsAlreadyDone.Add(1)
				o.release(&node)
				return nil
			}
		}
		// In page-oriented mode a move-locked split's posting must wait
		// for the moving transaction's commit; its commit hook will
		// reschedule. (A traversal would not even have scheduled us, but
		// a crash-recovered queue entry or stale task could.)
		if t.binding.PageOriented() && t.lm.MoveLocked(t.pageLockName(termChild)) {
			t.Stats.PostsSuppressedMV.Add(1)
			o.release(&node)
			return nil
		}

		// The action now updates the tree: start the atomic action and
		// make NODE exclusively ours. (Promotion is safe: only the U
		// latch on NODE is held.) Every latch the action takes from here
		// on is RETAINED until the action commits — §5.3 releases all
		// latches at the end of the action — so no concurrent action can
		// observe, and build on, an uncommitted intermediate of this one.
		// Follow-up postings for splits performed inside this action are
		// likewise queued only after it commits.
		aa := t.tm.BeginAtomicAction()
		var followUps []postTask
		var held []nref
		releaseAll := func() {
			o.release(&node)
			for i := len(held) - 1; i >= 0; i-- {
				o.release(&held[i])
			}
			held = nil
		}
		o.promote(&node)

		// Step 3 — Space Test.
		for len(node.n.Entries) >= t.opts.IndexCapacity {
			sep2, newPid2, err := t.splitNode(o, &node, aa)
			if err != nil {
				releaseAll()
				_ = aa.Abort()
				return err
			}
			if newPid2 == storage.NilPage {
				// The root grew in place; NODE's old contents are now one
				// level down. Descend to whichever new node directly
				// contains KEY and repeat the space test there.
				childEntry, ok := node.n.childFor(termKey)
				if !ok {
					releaseAll()
					_ = aa.Abort()
					return errRetry
				}
				next, err := o.acquire(childEntry.Child, latch.X, node.n.Level-1)
				if err != nil {
					releaseAll()
					_ = aa.Abort()
					return err
				}
				held = append(held, node)
				node = next
				continue
			}
			// Regular split: keep the half that directly contains KEY,
			// and queue the posting of this split one level up.
			followUps = append(followUps, postTask{
				level:  node.n.Level + 1,
				sep:    keys.Clone(sep2),
				newPid: newPid2,
				path:   task.path.clone(),
			})
			if !node.n.DirectlyContains(termKey) {
				next, err := o.acquire(node.n.Right, latch.X, node.n.Level)
				if err != nil {
					releaseAll()
					_ = aa.Abort()
					return err
				}
				held = append(held, node)
				node = next
			}
		}

		// Step 4 — Update NODE, commit, and only then release latches.
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindPostIndexTerm, encTerm(termKey, termChild))
		node.n.insertEntry(Entry{Key: termKey, Child: termChild})
		node.f.MarkDirty(lsn)
		err = aa.Commit()
		releaseAll()
		if err != nil {
			return err
		}
		for _, fu := range followUps {
			t.comp.schedulePost(fu)
		}
		t.Stats.PostsPerformed.Add(1)
		return nil
	})
	if err != nil {
		// Completing actions are best-effort: the intermediate state is
		// well-formed and a later traversal will rediscover it. Count it.
		t.Stats.PostsObsolete.Add(1)
	}
}

// searchToLevel implements §5.3 step 1 plus the §5.2 saved-state rules:
//
//   - CNS invariant: nodes are immortal, so re-traversals start directly
//     at the remembered parent and side-traverse right.
//   - CP with "de-allocation is a node update" (strategy (b)): the
//     remembered parent may be used iff its state identifier is unchanged
//     (a de-allocation would have bumped it); otherwise fall back to a
//     root descent.
//   - CP with "de-allocation is not a node update" (strategy (a)): the
//     remembered node cannot be proven allocated, so re-traversals start
//     at the root, which never moves and is never de-allocated.
func (t *Tree) searchToLevel(o *opCtx, task postTask) (nref, error) {
	if pe, ok := task.path.get(task.level); ok && (!t.opts.Consolidation || t.opts.DeallocIsUpdate) {
		r, err := o.acquire(pe.pid, latch.U, task.level)
		if err == nil {
			trusted := r.n.Level == task.level &&
				(r.n.Low == nil || keys.Compare(task.sep, r.n.Low) >= 0)
			if t.opts.Consolidation {
				// Strategy (b): unchanged state id proves the node is
				// still allocated and exactly as remembered.
				trusted = trusted && r.f.PageLSN() == pe.lsn && !r.n.Dead
			}
			if trusted {
				if r.f.PageLSN() == pe.lsn {
					t.Stats.PathVerifyHits.Add(1)
				} else {
					t.Stats.PathVerifyMisses.Add(1)
				}
				for !r.n.DirectlyContains(task.sep) {
					if r.n.Right == storage.NilPage {
						o.release(&r)
						return nref{}, errRetry
					}
					t.Stats.SideTraversals.Add(1)
					next, err := t.step(o, &r, r.n.Right, latch.U, task.level)
					if err != nil {
						return nref{}, err
					}
					r = next
				}
				return r, nil
			}
			o.release(&r)
		}
		t.Stats.PathVerifyMisses.Add(1)
	}
	return t.descendTo(o, task.sep, task.level, latch.U, false, nil)
}
