package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/storage"
)

// TestNodeEncodeDecodeProperty: the page codec round-trips arbitrary
// nodes exactly.
func TestNodeEncodeDecodeProperty(t *testing.T) {
	f := func(level uint8, low []byte, highUnbounded bool, high []byte, right uint64, dead bool, ks [][]byte, vs [][]byte) bool {
		n := &Node{
			Level: int(level % 32),
			Low:   low,
			High:  keys.Bound{Unbounded: highUnbounded, Key: high},
			Right: storage.PageID(right),
			Dead:  dead,
		}
		for i := range ks {
			e := Entry{Key: ks[i]}
			if i < len(vs) {
				e.Value = vs[i]
			}
			n.Entries = append(n.Entries, e)
		}
		enc, err := (Codec{}).EncodePage(n)
		if err != nil {
			return false
		}
		dec, err := (Codec{}).DecodePage(enc)
		if err != nil {
			return false
		}
		m := dec.(*Node)
		if m.Level != n.Level || m.Dead != n.Dead || m.Right != n.Right {
			return false
		}
		if !bytes.Equal(m.Low, n.Low) && !(m.Low == nil && n.Low == nil) {
			return false
		}
		if m.High.Unbounded != n.High.Unbounded || !bytes.Equal(m.High.Key, n.High.Key) && !(m.High.Key == nil && n.High.Key == nil) {
			return false
		}
		if len(m.Entries) != len(n.Entries) {
			return false
		}
		for i := range m.Entries {
			if !bytes.Equal(m.Entries[i].Key, n.Entries[i].Key) && !(m.Entries[i].Key == nil && n.Entries[i].Key == nil) {
				return false
			}
			if !bytes.Equal(m.Entries[i].Value, n.Entries[i].Value) && !(m.Entries[i].Value == nil && n.Entries[i].Value == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeEntryOpsProperty: insertEntry/deleteEntry/search keep the
// entries sorted and behave like a sorted map.
func TestNodeEntryOpsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		n := &Node{High: keys.Inf}
		oracle := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 64)
			if op%2 == 0 {
				inserted := n.insertEntry(Entry{Key: keys.Uint64(k)})
				if inserted == oracle[k] {
					return false // must insert iff absent
				}
				oracle[k] = true
			} else {
				_, removed := n.deleteEntry(keys.Uint64(k))
				if removed != oracle[k] {
					return false
				}
				delete(oracle, k)
			}
			// Invariant: sorted, unique, matches oracle.
			if len(n.Entries) != len(oracle) {
				return false
			}
			for i := range n.Entries {
				if i > 0 && keys.Compare(n.Entries[i-1].Key, n.Entries[i].Key) >= 0 {
					return false
				}
				if !oracle[keys.ToUint64(n.Entries[i].Key)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomOpsVsOracle drives a long random sequence of Insert / Update /
// Delete / Search / RangeScan against a map oracle, verifying well-
// formedness periodically, across the invariant regimes.
func TestRandomOpsVsOracle(t *testing.T) {
	for _, rg := range []struct {
		name string
		opts Options
	}{
		{"cns", Options{LeafCapacity: 5, IndexCapacity: 5, SyncCompletion: true, CheckLatchOrder: true}},
		{"cp-a", Options{LeafCapacity: 5, IndexCapacity: 5, Consolidation: true, SyncCompletion: true, CheckLatchOrder: true}},
		{"cp-b", Options{LeafCapacity: 5, IndexCapacity: 5, Consolidation: true, DeallocIsUpdate: true, SyncCompletion: true, CheckLatchOrder: true}},
	} {
		t.Run(rg.name, func(t *testing.T) {
			fx := newFixture(t, engine.Options{}, rg.opts)
			rng := rand.New(rand.NewSource(99))
			oracle := map[uint64]string{}
			const keyspace = 400
			for i := 0; i < 6000; i++ {
				k := uint64(rng.Intn(keyspace))
				kk := keys.Uint64(k)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // insert
					err := fx.tree.Insert(nil, kk, []byte(fmt.Sprintf("v%d", i)))
					if _, exists := oracle[k]; exists {
						if err != ErrKeyExists {
							t.Fatalf("op %d: insert dup err=%v", i, err)
						}
					} else {
						if err != nil {
							t.Fatalf("op %d: insert err=%v", i, err)
						}
						oracle[k] = fmt.Sprintf("v%d", i)
					}
				case 4, 5: // delete
					err := fx.tree.Delete(nil, kk)
					if _, exists := oracle[k]; exists {
						if err != nil {
							t.Fatalf("op %d: delete err=%v", i, err)
						}
						delete(oracle, k)
					} else if err != ErrKeyNotFound {
						t.Fatalf("op %d: delete missing err=%v", i, err)
					}
				case 6: // update
					err := fx.tree.Update(nil, kk, []byte(fmt.Sprintf("u%d", i)))
					if _, exists := oracle[k]; exists {
						if err != nil {
							t.Fatalf("op %d: update err=%v", i, err)
						}
						oracle[k] = fmt.Sprintf("u%d", i)
					} else if err != ErrKeyNotFound {
						t.Fatalf("op %d: update missing err=%v", i, err)
					}
				case 7, 8: // search
					v, ok, err := fx.tree.Search(nil, kk)
					if err != nil {
						t.Fatalf("op %d: search err=%v", i, err)
					}
					want, exists := oracle[k]
					if ok != exists || (ok && string(v) != want) {
						t.Fatalf("op %d: search %d got (%q,%v) want (%q,%v)", i, k, v, ok, want, exists)
					}
				default: // scan a small range
					lo := uint64(rng.Intn(keyspace))
					hi := lo + uint64(rng.Intn(40))
					var got []uint64
					err := fx.tree.RangeScan(nil, keys.Uint64(lo), keys.Uint64(hi), func(k keys.Key, v []byte) bool {
						got = append(got, keys.ToUint64(k))
						return true
					})
					if err != nil {
						t.Fatalf("op %d: scan err=%v", i, err)
					}
					want := 0
					for kk := lo; kk < hi; kk++ {
						if _, ok := oracle[kk]; ok {
							want++
						}
					}
					if len(got) != want {
						t.Fatalf("op %d: scan [%d,%d) got %d keys want %d", i, lo, hi, len(got), want)
					}
				}
				if i%1500 == 1499 {
					fx.tree.DrainCompletions()
					if _, err := fx.tree.Verify(); err != nil {
						t.Fatalf("op %d: verify: %v", i, err)
					}
				}
			}
			shape := fx.mustVerify(t)
			if shape.Records != len(oracle) {
				t.Fatalf("final records=%d oracle=%d", shape.Records, len(oracle))
			}
		})
	}
}

// TestIntermediateStatesAreAlwaysSearchable checks the §2.1.3 claim that
// a Π-tree is well-formed at EVERY point between atomic actions: with
// completion disabled entirely, arbitrarily long unposted sibling chains
// still serve correct searches and scans.
func TestIntermediateStatesAreAlwaysSearchable(t *testing.T) {
	opts := Options{LeafCapacity: 4, IndexCapacity: 4, SyncCompletion: true, NoCompletion: true, CheckLatchOrder: true}
	fx := newFixture(t, engine.Options{}, opts)
	const n = 300
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
		// The root's single level-1 node accumulates a huge unposted chain.
	}
	shape, err := fx.tree.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if shape.Records != n {
		t.Fatalf("records=%d", shape.Records)
	}
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("key %d: %q %v %v", i, v, ok, err)
		}
	}
	count := 0
	if err := fx.tree.RangeScan(nil, nil, nil, func(keys.Key, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan saw %d", count)
	}
	if fx.tree.Stats.SideTraversals.Load() == 0 {
		t.Fatal("expected side traversals through the unposted chain")
	}
}
