//go:build race

package core

// raceEnabled gates tests whose expectations the race runtime breaks
// (sync.Pool intentionally drops items under -race, so allocation
// counts on pooled paths are meaningless there).
const raceEnabled = true
