package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestCrashMatrix is the heart of experiment T4: run a scripted workload,
// then simulate a crash at EVERY log record boundary and verify that
// restart always produces a well-formed tree containing exactly the
// records whose transactions are (a) committed within the surviving log
// prefix and (b) not rolled back. No page is ever flushed during the run,
// so every prefix is a consistent crash image (the WAL rule "flush forces
// the log first" is trivially satisfied), and redo reconstructs the whole
// tree from the log.
func TestCrashMatrix(t *testing.T) {
	type combo struct {
		name string
		e    engine.Options
		o    Options
	}
	combos := []combo{
		{"cp-logical", engine.Options{}, Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, SyncCompletion: true, CheckLatchOrder: true}},
		{"cp-pageoriented", engine.Options{PageOriented: true}, Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, SyncCompletion: true, CheckLatchOrder: true}},
		{"cns-logical", engine.Options{}, Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: false, SyncCompletion: true, CheckLatchOrder: true}},
		{"cp-deallocupd", engine.Options{PageOriented: true}, Options{LeafCapacity: 4, IndexCapacity: 4, Consolidation: true, DeallocIsUpdate: true, SyncCompletion: true, CheckLatchOrder: true}},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			fx := newFixture(t, c.e, c.o)
			const n = 40

			// committedBy[k] = EndLSN after k's committing transaction
			// finished: if the log survives through it, k must be present.
			// startedAt[k] = EndLSN before k's transaction began: if the
			// log is cut before it, k must be absent.
			committedBy := make(map[int]wal.LSN)
			startedAt := make(map[int]wal.LSN)
			aborted := make(map[int]bool)

			for i := 0; i < n; i++ {
				startedAt[i] = fx.e.Log.EndLSN()
				tx := fx.e.TM.Begin()
				if err := fx.tree.Insert(tx, keys.Uint64(uint64(i)), val(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				if i%7 == 3 {
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
					aborted[i] = true
				} else {
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					committedBy[i] = fx.e.Log.EndLSN()
				}
				if i%5 == 4 {
					fx.tree.DrainCompletions() // interleave postings with inserts
				}
			}
			fx.tree.DrainCompletions()
			fx.e.Log.ForceAll()

			boundaries := fx.e.Log.FullImage().Boundaries()
			if len(boundaries) < n {
				t.Fatalf("suspiciously few log boundaries: %d", len(boundaries))
			}
			for bi, cut := range boundaries {
				cut := cut
				fx2, ok := fx.tryCrashRestart(t, &cut)
				if !ok {
					// The cut fell before tree creation was complete; the
					// only acceptable failure is a cleanly absent tree.
					continue
				}
				shape, err := fx2.tree.Verify()
				if err != nil {
					t.Fatalf("cut at boundary %d (LSN %d): tree ill-formed: %v", bi, cut, err)
				}
				for i := 0; i < n; i++ {
					_, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
					if err != nil {
						t.Fatalf("cut %d: search %d: %v", cut, i, err)
					}
					switch {
					case aborted[i]:
						if ok && committedBy[i] != 0 {
							t.Fatalf("cut %d: aborted key %d present", cut, i)
						}
						// Aborted keys may transiently appear only if the cut
						// falls inside the abort; restart finishes the
						// rollback, so they must be gone.
						if ok {
							t.Fatalf("cut %d: aborted key %d present after restart undo", cut, i)
						}
					case committedBy[i] != 0 && cut >= committedBy[i]:
						if !ok {
							t.Fatalf("cut %d: committed key %d (by %d) lost", cut, i, committedBy[i])
						}
					case cut <= startedAt[i]:
						if ok {
							t.Fatalf("cut %d: unstarted key %d present", cut, i)
						}
					default:
						// Commit record may or may not be inside the prefix;
						// either outcome is atomic, which Verify plus the
						// other cases already established.
					}
				}
				_ = shape
				fx2.tree.Close()
			}
		})
	}
}

// TestCrashMidSMOLeavesWellFormedIntermediateState crashes between the
// two atomic actions of a structure change — after the node-split action
// commits but before the index-posting action runs — and checks
// innovation 4: recovery takes no special measures, the intermediate
// state persists well-formed, and normal processing completes it later.
func TestCrashMidSMOLeavesWellFormedIntermediateState(t *testing.T) {
	opts := defaultTestOpts()
	opts.NoCompletion = true // freeze every SMO between its two actions
	fx := newFixture(t, engine.Options{}, opts)
	const n = 120
	for i := 0; i < n; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	splits := fx.tree.Stats.LeafSplits.Load()
	if splits == 0 {
		t.Fatal("workload produced no splits")
	}
	fx.e.Log.ForceAll()

	// Crash with the SMOs incomplete; the restarted tree runs with
	// completion enabled so normal processing can finish them lazily.
	fx.tree.opts.NoCompletion = false
	fx2 := fx.crashRestart(t, nil)
	// Recovery must NOT have completed the SMOs: completion is lazy.
	shape, err := fx2.tree.Verify()
	if err != nil {
		t.Fatalf("intermediate state ill-formed after restart: %v", err)
	}
	if shape.Records != n {
		t.Fatalf("records = %d, want %d", shape.Records, n)
	}

	// All data reachable purely via side pointers.
	for i := 0; i < n; i++ {
		v, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
	}
	sideBefore := fx2.tree.Stats.SideTraversals.Load()
	if sideBefore == 0 {
		t.Fatal("expected side traversals through unposted siblings")
	}
	// Traversals scheduled completing actions; drain them and verify the
	// tree converges: far fewer side traversals afterwards.
	fx2.tree.DrainCompletions()
	if fx2.tree.Stats.PostsPerformed.Load() == 0 {
		t.Fatal("no postings performed by lazy completion")
	}
	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("after completion: %v", err)
	}
	pre := fx2.tree.Stats.SideTraversals.Load()
	for i := 0; i < n; i++ {
		if _, ok, _ := fx2.tree.Search(nil, keys.Uint64(uint64(i))); !ok {
			t.Fatalf("key %d lost after completion", i)
		}
	}
	fx2.tree.DrainCompletions()
	post := fx2.tree.Stats.SideTraversals.Load() - pre
	if post != 0 {
		// With NoCompletion still set no postings beyond the drained ones
		// could run; allow residual side traversals only if completion is
		// disabled.
		if !fx2.tree.opts.NoCompletion {
			t.Fatalf("still %d side traversals after completion", post)
		}
	}
}

// TestCompletionIdempotence schedules the same posting many times; the
// Verify-Split state test must make all but one a no-op (§5.1: "Before
// posting the index term, we test that the posting has not already been
// done and still needs to be done").
func TestCompletionIdempotence(t *testing.T) {
	opts := defaultTestOpts()
	opts.NoCompletion = true
	fx := newFixture(t, engine.Options{}, opts)
	for i := 0; i < 30; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fx.tree.Stats.LeafSplits.Load() == 0 {
		t.Fatal("no splits")
	}
	// Re-enable completion and hand-schedule duplicate postings for every
	// unposted sibling found at level 0.
	fx.tree.opts.NoCompletion = false
	tasks := collectUnpostedSiblings(t, fx.tree)
	if len(tasks) == 0 {
		t.Fatal("no unposted siblings found")
	}
	for rep := 0; rep < 5; rep++ {
		for _, task := range tasks {
			fx.tree.postIndexTerm(task)
		}
	}
	performed := fx.tree.Stats.PostsPerformed.Load()
	already := fx.tree.Stats.PostsAlreadyDone.Load()
	if performed == 0 || already == 0 {
		t.Fatalf("performed=%d alreadyDone=%d; want both > 0", performed, already)
	}
	if int(performed) > len(tasks) {
		t.Fatalf("performed %d postings for %d distinct splits", performed, len(tasks))
	}
	if _, err := fx.tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

// collectUnpostedSiblings walks level 0 and builds a posting task for
// every sibling pointer (posted or not; the state test sorts them out).
func collectUnpostedSiblings(t *testing.T, tree *Tree) []postTask {
	t.Helper()
	var tasks []postTask
	pool := tree.store.Pool
	pid := tree.leftmostOfLevel(t, 0)
	for pid != 0 {
		f, err := pool.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		n := f.Data.(*Node)
		if n.Right != 0 {
			tasks = append(tasks, postTask{
				level:  1,
				sep:    keys.Clone(n.High.Key),
				newPid: n.Right,
				path:   newPath(),
			})
		}
		pid = n.Right
		pool.Unpin(f)
	}
	return tasks
}

// leftmostOfLevel descends first-child pointers to the target level
// (quiescent test helper).
func (t *Tree) leftmostOfLevel(tb testing.TB, level int) storage.PageID {
	pool := t.store.Pool
	cur := t.root
	for {
		f, err := pool.Fetch(cur)
		if err != nil {
			tb.Fatal(err)
		}
		n := f.Data.(*Node)
		if n.Level == level {
			pool.Unpin(f)
			return cur
		}
		next := n.Entries[0].Child
		pool.Unpin(f)
		cur = next
	}
}
