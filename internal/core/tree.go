package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/maint"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options configure one Π-tree.
type Options struct {
	// LeafCapacity and IndexCapacity are the maximum entry counts of data
	// and index nodes; they stand in for page size. Defaults: 64, 64.
	LeafCapacity  int
	IndexCapacity int
	// MinUtilization is the fraction of capacity below which a node is
	// considered for consolidation (CP mode only). Default 0.25.
	MinUtilization float64
	// Consolidation selects the CP invariant (§5.2.2): nodes may be
	// consolidated and de-allocated, so traversals latch-couple and
	// postings verify. When false the CNS invariant (§5.2.1) holds: nodes
	// are immortal, one latch at a time suffices, and saved state is
	// trusted.
	Consolidation bool
	// DeallocIsUpdate selects strategy (b) of §5.2.2: de-allocation bumps
	// the victim's state identifier, so re-traversals may start from the
	// remembered parent. With strategy (a) re-traversals start at the
	// root, which never moves and is never de-allocated.
	DeallocIsUpdate bool
	// SyncCompletion runs completing atomic actions inline, immediately
	// after the operation that scheduled them, instead of on background
	// workers. Deterministic tests use it.
	SyncCompletion bool
	// CompletionWorkers is the background completion pool size (ignored
	// with SyncCompletion). Default 2.
	CompletionWorkers int
	// NoCompletion suppresses all scheduled completions; experiment T5
	// uses it to hold the tree in intermediate states.
	NoCompletion bool
	// RecordMoveLocks selects the record-set realization of the move
	// lock (§4.2.2) for INDEPENDENT data-node splits under page-oriented
	// undo: the splitting action MV-locks each record to be moved rather
	// than the whole page. Waiting for one of those locks releases the
	// node latch, and the retried split re-examines the node — the
	// paper's "no change, different locks required, or even that the
	// move is no longer required" outcomes fall out of the retry.
	// In-transaction splits and consolidations keep the page-granule
	// lock ("once granted, no update activity can alter the locking
	// required. This one lock is sufficient.").
	RecordMoveLocks bool
	// CheckLatchOrder enables per-operation latch order assertions.
	CheckLatchOrder bool
	// IndexHold, when set, records hold durations of U/X latches on index
	// nodes (levels >= 1) for experiment T6.
	IndexHold *latch.HoldTimer
	// PessimisticDescent disables the optimistic (version-validated)
	// interior descent, forcing every traversal onto the fully latched
	// path. Comparison benchmarks and targeted tests use it; leave false
	// for normal operation.
	PessimisticDescent bool
	// Governor paces background consolidation work against foreground
	// load. Nil means unpaced (every scheduled merge runs immediately).
	// Several trees may share one governor: the budget is then a global
	// maintenance budget for the engine.
	Governor *maint.Governor
	// MergeBatch bounds how many adjacent-pair merges one consolidation
	// task may commit under a single parent X hold, amortizing the parent
	// latch and descent over several merges. Default 4.
	MergeBatch int
}

func (o Options) normalized() Options {
	if o.LeafCapacity <= 0 {
		o.LeafCapacity = 64
	}
	if o.IndexCapacity <= 0 {
		o.IndexCapacity = 64
	}
	if o.LeafCapacity < 4 {
		o.LeafCapacity = 4
	}
	if o.IndexCapacity < 4 {
		o.IndexCapacity = 4
	}
	if o.MinUtilization <= 0 {
		o.MinUtilization = 0.25
	}
	if o.CompletionWorkers <= 0 {
		o.CompletionWorkers = 2
	}
	if o.MergeBatch <= 0 {
		o.MergeBatch = 4
	}
	return o
}

// Stats counts tree events; all fields are atomically updated and may be
// read concurrently.
type Stats struct {
	Searches          atomic.Int64
	Inserts           atomic.Int64
	Deletes           atomic.Int64
	Updates           atomic.Int64
	LeafSplits        atomic.Int64
	IndexSplits       atomic.Int64
	RootGrowths       atomic.Int64
	SideTraversals    atomic.Int64
	PostsScheduled    atomic.Int64
	PostAttempts      atomic.Int64
	PostsPerformed    atomic.Int64
	PostsAlreadyDone  atomic.Int64
	PostsObsolete     atomic.Int64
	PostsSuppressedMV atomic.Int64
	Consolidations    atomic.Int64
	ConsolidateTries  atomic.Int64
	RootShrinks       atomic.Int64
	PathVerifyHits    atomic.Int64
	PathVerifyMisses  atomic.Int64
	Restarts          atomic.Int64 // operation-level retries
	InTxnSplits       atomic.Int64 // page-oriented splits inside the updating txn
	MoveLockWaits     atomic.Int64
	// Optimistic-descent counters: interior-node visits served from a
	// validated published snapshot (hits), visits that had to refresh the
	// snapshot under a brief S latch or failed post-fetch validation
	// (retries), and whole descents abandoned to the latched path
	// (fallbacks).
	OptimisticHits      atomic.Int64
	OptimisticRetries   atomic.Int64
	OptimisticFallbacks atomic.Int64
	// MergeBatches counts consolidation tasks that committed more than one
	// merge under a single parent hold.
	MergeBatches atomic.Int64
	// BatchOps counts leaf-runs applied by the vectorized MultiGet /
	// MultiPut / MultiDelete paths (one count per single-descent,
	// single-latch group). LeafVisitsSaved counts the descents those runs
	// avoided relative to per-key operations (run length minus one, summed).
	BatchOps        atomic.Int64
	LeafVisitsSaved atomic.Int64
	// UtilHist is a leaf-utilization histogram: bucket i counts leaves
	// whose live-entry fraction is in [i/8, (i+1)/8), with bucket 8 for
	// exactly-full. Maintained incrementally at every mutation that
	// changes a leaf's entry count — this is the utilization signal the
	// consolidation scheduler reads without sweeping the tree. Counts are
	// relative to the tree state at Open (a freshly created tree starts
	// exact), so an opened tree's buckets are deltas, not absolutes.
	UtilHist [9]atomic.Int64
}

// utilBucket maps an entry count to its histogram bucket.
func utilBucket(n, capacity int) int {
	if capacity <= 0 {
		return 0
	}
	b := n * 8 / capacity
	if b < 0 {
		b = 0
	}
	if b > 8 {
		b = 8
	}
	return b
}

// NoteLeafUtil moves one leaf between utilization buckets: old and new
// are entry counts, with a negative value meaning the leaf does not
// exist on that side (created when old < 0, dropped when new < 0).
func (s *Stats) NoteLeafUtil(old, newCount, capacity int) {
	if old >= 0 {
		s.UtilHist[utilBucket(old, capacity)].Add(-1)
	}
	if newCount >= 0 {
		s.UtilHist[utilBucket(newCount, capacity)].Add(1)
	}
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Searches, Inserts, Deletes, Updates                int64
	LeafSplits, IndexSplits, RootGrowths               int64
	SideTraversals                                     int64
	PostsScheduled, PostAttempts, PostsPerformed       int64
	PostsAlreadyDone, PostsObsolete, PostsSuppressedMV int64
	Consolidations, ConsolidateTries, RootShrinks      int64
	PathVerifyHits, PathVerifyMisses                   int64
	Restarts, InTxnSplits, MoveLockWaits               int64
	OptimisticHits, OptimisticRetries                  int64
	OptimisticFallbacks                                int64
	MergeBatches                                       int64
	BatchOps, LeafVisitsSaved                          int64
	UtilHist                                           [9]int64
}

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() StatsSnapshot {
	var hist [9]int64
	for i := range s.UtilHist {
		hist[i] = s.UtilHist[i].Load()
	}
	return StatsSnapshot{
		MergeBatches: s.MergeBatches.Load(), UtilHist: hist,
		BatchOps: s.BatchOps.Load(), LeafVisitsSaved: s.LeafVisitsSaved.Load(),
		Searches: s.Searches.Load(), Inserts: s.Inserts.Load(), Deletes: s.Deletes.Load(), Updates: s.Updates.Load(),
		LeafSplits: s.LeafSplits.Load(), IndexSplits: s.IndexSplits.Load(), RootGrowths: s.RootGrowths.Load(),
		SideTraversals: s.SideTraversals.Load(),
		PostsScheduled: s.PostsScheduled.Load(), PostAttempts: s.PostAttempts.Load(), PostsPerformed: s.PostsPerformed.Load(),
		PostsAlreadyDone: s.PostsAlreadyDone.Load(), PostsObsolete: s.PostsObsolete.Load(), PostsSuppressedMV: s.PostsSuppressedMV.Load(),
		Consolidations: s.Consolidations.Load(), ConsolidateTries: s.ConsolidateTries.Load(), RootShrinks: s.RootShrinks.Load(),
		PathVerifyHits: s.PathVerifyHits.Load(), PathVerifyMisses: s.PathVerifyMisses.Load(),
		Restarts: s.Restarts.Load(), InTxnSplits: s.InTxnSplits.Load(), MoveLockWaits: s.MoveLockWaits.Load(),
		OptimisticHits: s.OptimisticHits.Load(), OptimisticRetries: s.OptimisticRetries.Load(),
		OptimisticFallbacks: s.OptimisticFallbacks.Load(),
	}
}

// Tree is one Π-tree (B-link instance). All methods are safe for
// concurrent use by multiple goroutines and transactions.
type Tree struct {
	// Name identifies the tree in its store's root directory and in lock
	// names.
	Name string

	// lockSpace is the tree's lock namespace, derived once from Name so
	// building a lock.Name on the hot path is allocation-free.
	lockSpace uint32

	store   *storage.Store
	tm      *txn.Manager
	lm      *lock.Manager
	binding *Binding
	opts    Options
	root    storage.PageID
	comp    *completer

	// opPool recycles opCtx values across operations; see newOp/done.
	opPool sync.Pool

	// rootf caches the root's buffer frame with one permanent pin, taken
	// lazily on first use and dropped by Close. The root page ID is fixed
	// for the tree's lifetime and the root node is never de-allocated, so
	// the frame never goes stale; the cache turns the hottest fetch of
	// every descent — the root, visited by every operation — into a single
	// atomic load instead of a page-table lookup.
	rootf atomic.Pointer[storage.Frame]

	// Stats are the tree's event counters.
	Stats Stats
}

// ErrKeyExists is returned by Insert for a duplicate key.
var ErrKeyExists = errors.New("core: key already exists")

// ErrKeyNotFound is returned by Update and Delete for a missing key.
var ErrKeyNotFound = errors.New("core: key not found")

// errRetry restarts an operation from the descent; it never escapes the
// package.
var errRetry = errors.New("core: internal retry")

// Create builds a new, empty Π-tree named name in store (bootstrapping
// the store's meta page if needed) and returns it ready for use. The
// whole creation is one atomic action.
func Create(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	t := &Tree{
		Name:      name,
		lockSpace: lock.SpaceID("pitree", name),
		store:     store,
		tm:        tm,
		lm:        lm,
		binding:   b,
		opts:      opts.normalized(),
	}
	aa := tm.BeginAtomicAction()
	o := t.newOp(aa)
	defer o.done()

	if f, err := store.Pool.Fetch(storage.MetaPage); err == nil {
		store.Pool.Unpin(f)
	} else if errors.Is(err, storage.ErrPageNotFound) {
		if err := store.Bootstrap(aa); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	rootPid, err := store.Alloc(aa, &o.tr)
	if err != nil {
		return nil, err
	}
	f, err := store.Pool.Create(rootPid)
	if err != nil {
		return nil, err
	}
	f.Latch.AcquireX()
	root := &Node{Level: 0, Low: nil, High: keys.Inf, Right: storage.NilPage}
	f.Data = root
	lsn := aa.LogUpdate(store.Pool.StoreID, uint64(rootPid), KindFormatNode, encNodeImage(root))
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	store.Pool.Unpin(f)

	if err := store.SetRoot(aa, &o.tr, name, rootPid); err != nil {
		return nil, err
	}
	if err := aa.Commit(); err != nil {
		return nil, err
	}
	t.root = rootPid
	t.comp = newCompleter(t)
	t.Stats.NoteLeafUtil(-1, 0, t.opts.LeafCapacity)
	b.Bind(t)
	return t, nil
}

// Open attaches to an existing tree named name in store, e.g. after a
// restart.
func Open(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	rootPid, err := store.Root(name)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		Name:      name,
		lockSpace: lock.SpaceID("pitree", name),
		store:     store,
		tm:        tm,
		lm:        lm,
		binding:   b,
		opts:      opts.normalized(),
		root:      rootPid,
	}
	t.comp = newCompleter(t)
	b.Bind(t)
	return t, nil
}

// Close drains every pending completing action (no scheduled structure
// change is silently dropped — a close-then-reopen must never replay
// against half-merged nodes), stops the background workers, and waits
// for in-flight actions to finish. It also drops the cached root pin (a
// straggling operation may briefly re-cache it; the pin is process-local
// bookkeeping, so that is harmless).
func (t *Tree) Close() {
	t.comp.closeDrain()
	if f := t.rootf.Swap(nil); f != nil {
		t.store.Pool.Unpin(f)
	}
}

// rootFrame returns the root's frame, pinned for the caller, via the
// cache in t.rootf. The first call fetches and keeps one extra permanent
// pin; later calls re-pin the cached frame (safe: the permanent pin keeps
// the count non-zero, see Frame.Pin).
func (t *Tree) rootFrame() (*storage.Frame, error) {
	if f := t.rootf.Load(); f != nil {
		f.Pin()
		return f, nil
	}
	f, err := t.store.Pool.Fetch(t.root)
	if err != nil {
		return nil, err
	}
	if !t.rootf.CompareAndSwap(nil, f) {
		// Lost the race to cache; use the winner's entry (the same frame —
		// one page ID maps to one buffered frame) and return our fetch pin
		// as the caller's.
		return f, nil
	}
	// Our fetch pin becomes the cache's permanent pin; take another for
	// the caller.
	f.Pin()
	return f, nil
}

// DrainCompletions blocks until every scheduled completing action has been
// processed. Tests and experiments use it to reach a quiescent state.
func (t *Tree) DrainCompletions() {
	t.comp.drain()
}

// Options returns the tree's normalized options.
func (t *Tree) Options() Options { return t.opts }

// RootPID returns the root's page ID (fixed for the tree's lifetime).
func (t *Tree) RootPID() storage.PageID { return t.root }

// Store returns the underlying store (verifier and tests use it).
func (t *Tree) Store() *storage.Store { return t.store }

// --- lock names ----------------------------------------------------------

func (t *Tree) recLockName(k keys.Key) lock.Name {
	return lock.KeyName(t.lockSpace, k)
}

func (t *Tree) pageLockName(pid storage.PageID) lock.Name {
	return lock.PageName(t.lockSpace, uint64(pid))
}

// --- operation context ----------------------------------------------------

// opCtx carries per-operation latch-order state. Ranks are derived from
// the tree level (parents before children) plus a per-operation sequence
// number (containing nodes before contained nodes along a side chain).
// Contexts are pooled per tree: obtain one with newOp, return it with
// done (which also asserts no latches leaked).
type opCtx struct {
	t   *Tree
	txn *txn.Txn // nil for plain reads outside any transaction
	tr  latch.Tracker
	seq uint64
}

func (t *Tree) newOp(tx *txn.Txn) *opCtx {
	o, _ := t.opPool.Get().(*opCtx)
	if o == nil {
		o = new(opCtx)
	}
	o.t = t
	o.txn = tx
	o.seq = 0
	o.tr.Reset(t.opts.CheckLatchOrder)
	return o
}

// done asserts the operation released everything and returns the context
// to the tree's pool. Callers must not touch o afterwards.
func (o *opCtx) done() {
	o.tr.AssertNoneHeld()
	o.txn = nil
	o.t.opPool.Put(o)
}

// maxLevel bounds the tree height for rank arithmetic.
const maxLevel = 63

func (o *opCtx) rank(level int) latch.Rank {
	o.seq++
	return latch.Rank(uint64(maxLevel-level)<<40 | (o.seq & (1<<40 - 1)))
}

func (o *opCtx) txnID() wal.TxnID {
	if o.txn == nil {
		return wal.NilTxn
	}
	return o.txn.ID
}

// nref is a pinned, latched node reference.
type nref struct {
	f     *storage.Frame
	n     *Node
	mode  latch.Mode
	since time.Time // set for instrumented index-node holds
	timed bool
}

func (r *nref) pid() storage.PageID { return r.f.ID }
func (r *nref) valid() bool         { return r.f != nil }

// acquire pins and latches pid in mode.
func (o *opCtx) acquire(pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	f, err := o.t.store.Pool.Fetch(pid)
	if err != nil {
		return nref{}, err
	}
	f.Latch.Acquire(mode)
	o.tr.Acquired(&f.Latch, o.rank(level), mode)
	n, ok := f.Data.(*Node)
	if !ok {
		o.tr.Released(&f.Latch)
		f.Latch.Release(mode)
		o.t.store.Pool.Unpin(f)
		return nref{}, fmt.Errorf("core: page %d holds %T, not a node", pid, f.Data)
	}
	r := nref{f: f, n: n, mode: mode}
	if o.t.opts.IndexHold != nil && level >= 1 && mode != latch.S {
		r.since = time.Now()
		r.timed = true
	}
	return r, nil
}

// release unlatches and unpins r.
func (o *opCtx) release(r *nref) {
	if !r.valid() {
		return
	}
	if r.timed {
		o.t.opts.IndexHold.Observe(time.Since(r.since))
	}
	o.tr.Released(&r.f.Latch)
	r.f.Latch.Release(r.mode)
	o.t.store.Pool.Unpin(r.f)
	r.f = nil
	r.n = nil
}

// promote upgrades r from U to X, honoring the §4.1.1 promotion rule.
func (o *opCtx) promote(r *nref) {
	if r.mode != latch.U {
		panic("core: promote of non-U reference")
	}
	r.f.Latch.Promote()
	o.tr.Promoted(&r.f.Latch)
	r.mode = latch.X
}

// --- saved paths -----------------------------------------------------------

// pathEntry remembers a traversed node and its state identifier at visit
// time (§5.2: search key, nodes on the path, and their state ids).
type pathEntry struct {
	pid storage.PageID
	lsn wal.LSN
}

// Path is the remembered root-to-target path indexed by level.
type Path struct {
	byLevel map[int]pathEntry
}

func newPath() *Path { return &Path{byLevel: make(map[int]pathEntry)} }

func (p *Path) set(level int, pid storage.PageID, lsn wal.LSN) {
	p.byLevel[level] = pathEntry{pid: pid, lsn: lsn}
}

func (p *Path) get(level int) (pathEntry, bool) {
	e, ok := p.byLevel[level]
	return e, ok
}

func (p *Path) clone() *Path {
	c := newPath()
	for l, e := range p.byLevel {
		c.byLevel[l] = e
	}
	return c
}

// --- descent ----------------------------------------------------------------

// rootLevel reads the root's current level.
func (t *Tree) rootLevel(o *opCtx) (int, error) {
	r, err := o.acquire(t.root, latch.S, maxLevel)
	if err != nil {
		return 0, err
	}
	lvl := r.n.Level
	o.release(&r)
	return lvl, nil
}

// errLevelGone reports a descent target level above the current root.
var errLevelGone = errors.New("core: target level no longer exists")

// descendTo walks from the root to the node at stopLevel whose directly
// contained space includes key, returning it latched in finalMode along
// with the remembered path. Interior levels are navigated optimistically
// (version-validated snapshot reads, no latches, no pins held across
// levels); after bounded validation failures the whole descent falls
// back to the fully latched discipline. Side-pointer traversals below
// the root trigger lazy completion scheduling when sched is true (§5.1).
func (t *Tree) descendTo(o *opCtx, key keys.Key, stopLevel int, finalMode latch.Mode, sched bool, path *Path) (nref, error) {
	if !t.opts.PessimisticDescent {
		if r, err, ok := t.descendOptimistic(o, key, stopLevel, finalMode, sched, path); ok {
			return r, err
		}
		t.Stats.OptimisticFallbacks.Add(1)
	}
	return t.descendLatched(o, key, stopLevel, finalMode, sched, path)
}

// descendLatched is the fully latched descent. Latch discipline follows
// the invariant in force: CP couples (two latches held across each
// edge), CNS holds one latch at a time.
func (t *Tree) descendLatched(o *opCtx, key keys.Key, stopLevel int, finalMode latch.Mode, sched bool, path *Path) (nref, error) {
	// The root is acquired in finalMode directly when it is the target;
	// its level is only known once latched, so retry on mismatch.
	cur, err := o.acquire(t.root, latch.S, maxLevel)
	if err != nil {
		return nref{}, err
	}
	if cur.n.Level < stopLevel {
		o.release(&cur)
		return nref{}, errLevelGone
	}
	if cur.n.Level == stopLevel && finalMode != latch.S {
		// Re-acquire in the requested mode. The root never moves, so
		// dropping the S latch first is safe in both invariants.
		lvl := cur.n.Level
		o.release(&cur)
		cur, err = o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err
		}
		if cur.n.Level != stopLevel {
			o.release(&cur)
			return nref{}, errRetry
		}
	}
	return t.descendFrom(o, cur, key, stopLevel, finalMode, sched, path)
}

// descendFrom continues a latched descent from cur (already latched, at
// or above stopLevel) down to the stopLevel node directly containing
// key. The optimistic descent also lands here for the final level's side
// traversal, which always runs latched.
func (t *Tree) descendFrom(o *opCtx, cur nref, key keys.Key, stopLevel int, finalMode latch.Mode, sched bool, path *Path) (nref, error) {
	for {
		// Side traversal: the key has been delegated to a sibling.
		for !cur.n.DirectlyContains(key) {
			if cur.n.Low != nil && keys.Compare(key, cur.n.Low) < 0 {
				// Keys below Low cannot be reached by following right
				// pointers; the structure changed under us.
				o.release(&cur)
				return nref{}, errRetry
			}
			sib := cur.n.Right
			if sib == storage.NilPage {
				o.release(&cur)
				return nref{}, errRetry
			}
			t.Stats.SideTraversals.Add(1)
			if sched {
				t.noteIncomplete(o, cur.n, cur.pid(), path)
			}
			next, err := t.step(o, &cur, sib, cur.mode, cur.n.Level)
			if err != nil {
				return nref{}, err
			}
			cur = next
		}

		if cur.n.Level == stopLevel {
			return cur, nil
		}

		e, ok := cur.n.childFor(key)
		if !ok {
			o.release(&cur)
			return nref{}, errRetry
		}
		childLevel := cur.n.Level - 1
		childMode := latch.S
		if childLevel == stopLevel {
			childMode = finalMode
		}
		if path != nil {
			path.set(cur.n.Level, cur.pid(), cur.f.PageLSN())
		}
		next, err := t.step(o, &cur, e.Child, childMode, childLevel)
		if err != nil {
			return nref{}, err
		}
		cur = next
	}
}

// --- optimistic descent ------------------------------------------------------

// optRetries bounds full-descent restarts after validation failures
// before the operation falls back to the latched path. Restarting from
// the root is cheap (a handful of atomic loads per level), so a small
// budget absorbs transient SMO interference without risking livelock
// against a write-heavy run.
const optRetries = 3

// navRef is an unlatched, pinned view of a node: an immutable snapshot n
// proved current at latch version v. The pin keeps the frame (and its
// version counter) from being recycled while the reference is live.
type navRef struct {
	f *storage.Frame
	n *Node
	v uint64
}

// optCounters accumulates a descent's snapshot-read outcomes locally so
// the hot path touches the shared Stats words once per operation instead
// of once per level (on a multicore run those are contended cache lines).
type optCounters struct {
	hits    int64
	retries int64
}

// navLoad returns a validated snapshot of the pinned frame f. The fast
// path is three atomic loads (published snapshot, version check); when
// the published snapshot is missing or stale a brief S latch refreshes
// it — the only latch traffic an optimistic descent ever generates, paid
// once per node mutation rather than once per visit. ok is false when
// the frame does not hold a node (the caller falls back to the latched
// path, which surfaces the real error).
func (t *Tree) navLoad(f *storage.Frame, c *optCounters) (navRef, bool) {
	if data, pub, ok := f.NavSnapshot(); ok {
		if v, quiet := f.Latch.OptimisticRead(); quiet && v == pub {
			n, isNode := data.(*Node)
			if !isNode {
				return navRef{}, false
			}
			c.hits++
			return navRef{f: f, n: n, v: v}, true
		}
		c.retries++
	}
	f.Latch.AcquireS()
	n, isNode := f.Data.(*Node)
	if !isNode {
		f.Latch.ReleaseS()
		return navRef{}, false
	}
	snap := n.clone()
	v := f.Latch.Version()
	f.PublishNav(snap, v)
	f.Latch.ReleaseS()
	return navRef{f: f, n: snap, v: v}, true
}

// descendOptimistic runs bounded optimistic passes from the root; ok is
// false when the budget is exhausted (or a frame held a non-node) and
// the caller must fall back to the latched descent.
func (t *Tree) descendOptimistic(o *opCtx, key keys.Key, stopLevel int, finalMode latch.Mode, sched bool, path *Path) (nref, error, bool) {
	var c optCounters
	r, err, ok := nref{}, error(nil), false
	for attempt := 0; attempt <= optRetries; attempt++ {
		var done bool
		r, err, done = t.optPass(o, &c, key, stopLevel, finalMode, sched, path)
		if done {
			ok = true
			break
		}
	}
	if c.hits > 0 {
		t.Stats.OptimisticHits.Add(c.hits)
	}
	if c.retries > 0 {
		t.Stats.OptimisticRetries.Add(c.retries)
	}
	return r, err, ok
}

// optPass is one optimistic descent from the root. done is false when a
// validation failure (or non-node frame) aborted the pass; the caller
// restarts or falls back. The protocol per edge, following Lomet &
// Salzberg's well-formedness argument (§3-§4, see DESIGN.md):
//
//  1. read the source node through a validated snapshot (navLoad);
//  2. pin the target frame named by the snapshot;
//  3. load the target's own validated snapshot;
//  4. re-validate the source's version, with the source still pinned.
//
// Step 4 closes the free/re-allocate window: every de-allocation of a
// node is preceded — inside the same atomic action, under X latches — by
// removing the last reference to it (the parent's index term, or the
// left sibling's side pointer), so an unchanged source proves the target
// was still live when step 3 read it. A target snapshot so validated is
// exactly what a latched reader could have seen, and side pointers make
// any such well-formed state navigable. Leaves are never read
// optimistically: the final node is latched in finalMode (then the
// source is re-validated), keeping the No-Wait rule, move locks, and
// degree-3 locking untouched.
func (t *Tree) optPass(o *opCtx, c *optCounters, key keys.Key, stopLevel int, finalMode latch.Mode, sched bool, path *Path) (nref, error, bool) {
	pool := t.store.Pool
	f, err := t.rootFrame()
	if err != nil {
		return nref{}, err, true
	}
	cur, ok := t.navLoad(f, c)
	if !ok {
		pool.Unpin(f)
		return nref{}, nil, false
	}
	if cur.n.Level < stopLevel {
		pool.Unpin(f)
		return nref{}, errLevelGone, true
	}
	if cur.n.Level == stopLevel {
		// The root is the target. It never moves and is never
		// de-allocated, so no source validation is needed — just latch it
		// and re-check the level like the latched path does.
		lvl := cur.n.Level
		pool.Unpin(f)
		r, err := o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err, true
		}
		if r.n.Level != stopLevel {
			o.release(&r)
			return nref{}, errRetry, true
		}
		r2, err := t.descendFrom(o, r, key, stopLevel, finalMode, sched, path)
		return r2, err, true
	}

	for {
		// Side traversal on validated snapshots.
		if !cur.n.DirectlyContains(key) {
			if cur.n.Low != nil && keys.Compare(key, cur.n.Low) < 0 {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			sib := cur.n.Right
			if sib == storage.NilPage {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			t.Stats.SideTraversals.Add(1)
			if sched {
				t.noteIncomplete(o, cur.n, cur.f.ID, path)
			}
			next, err, done := t.optStep(cur, c, sib, cur.n.Level)
			if !done {
				return nref{}, nil, false
			}
			if err != nil {
				return nref{}, err, true
			}
			cur = next
			continue
		}

		e, ok := cur.n.childFor(key)
		if !ok {
			pool.Unpin(cur.f)
			return nref{}, errRetry, true
		}
		childLevel := cur.n.Level - 1
		if path != nil {
			path.set(cur.n.Level, cur.f.ID, cur.f.PageLSN())
		}
		if childLevel == stopLevel {
			// Final edge: latch the child in finalMode, then prove the
			// parent still references it before trusting it.
			r, err := o.acquire(e.Child, finalMode, childLevel)
			if err != nil {
				stale := !cur.f.Latch.Validate(cur.v)
				pool.Unpin(cur.f)
				if stale {
					return nref{}, nil, false
				}
				return nref{}, err, true
			}
			if !cur.f.Latch.Validate(cur.v) {
				o.release(&r)
				pool.Unpin(cur.f)
				return nref{}, nil, false
			}
			pool.Unpin(cur.f)
			if r.n.Dead {
				o.release(&r)
				return nref{}, errRetry, true
			}
			if r.n.Level != stopLevel {
				o.release(&r)
				return nref{}, nil, false
			}
			r2, err := t.descendFrom(o, r, key, stopLevel, finalMode, sched, path)
			return r2, err, true
		}
		next, err, done := t.optStep(cur, c, e.Child, childLevel)
		if !done {
			return nref{}, nil, false
		}
		if err != nil {
			return nref{}, err, true
		}
		cur = next
	}
}

// optStep follows one validated edge from cur to pid (expected at
// level): pin the target, snapshot it, then re-validate the source (see
// optPass steps 2-4). cur's pin is consumed. done=false aborts the pass
// on validation failure; a non-nil error is terminal for the operation.
func (t *Tree) optStep(cur navRef, c *optCounters, pid storage.PageID, level int) (navRef, error, bool) {
	pool := t.store.Pool
	nf, err := pool.Fetch(pid)
	if err != nil {
		// The pointer came from a validated snapshot, but the target may
		// have been freed since; distinguish a stale pointer from a real
		// I/O error by re-validating the source.
		stale := !cur.f.Latch.Validate(cur.v)
		pool.Unpin(cur.f)
		if stale {
			return navRef{}, nil, false
		}
		return navRef{}, err, true
	}
	next, ok := t.navLoad(nf, c)
	if !ok || !cur.f.Latch.Validate(cur.v) {
		pool.Unpin(nf)
		pool.Unpin(cur.f)
		return navRef{}, nil, false
	}
	pool.Unpin(cur.f)
	if next.n.Dead {
		// Strategy (b) leaves de-allocated nodes marked; a pointer read
		// before the consolidation committed can still land here. Retry
		// from the root, as the latched step does.
		pool.Unpin(nf)
		return navRef{}, errRetry, true
	}
	if next.n.Level != level {
		// Defense in depth: a validated chain cannot produce a level
		// mismatch (see optPass), so treat one as staleness.
		pool.Unpin(nf)
		return navRef{}, nil, false
	}
	return next, nil, true
}

// step moves from *cur to pid, applying the coupling discipline: under CP
// the new node is latched before cur is released; under CNS cur is
// released first ("only one latch at a time", §5.2.1).
func (t *Tree) step(o *opCtx, cur *nref, pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	if t.opts.Consolidation {
		next, err := o.acquire(pid, mode, level)
		o.release(cur)
		if err != nil {
			return nref{}, err
		}
		if next.n.Dead {
			// Strategy (b) leaves de-allocated nodes marked; a pointer
			// read before the consolidation committed can still land
			// here. Retry from the root.
			o.release(&next)
			return nref{}, errRetry
		}
		return next, nil
	}
	o.release(cur)
	return o.acquire(pid, mode, level)
}

// noteIncomplete schedules the completing atomic action for a detected
// intermediate state: cur has a sibling not yet posted in the parent (or
// the parent simply was not on our search path). Move-locked splits are
// skipped: their posting must await the updating transaction's commit
// (§4.2.2).
func (t *Tree) noteIncomplete(o *opCtx, n *Node, pid storage.PageID, path *Path) {
	if t.opts.NoCompletion || t.comp == nil {
		return
	}
	if n.High.Unbounded || n.Right == storage.NilPage {
		return
	}
	if t.binding.PageOriented() && t.lm.MoveLocked(t.pageLockName(pid)) {
		t.Stats.PostsSuppressedMV.Add(1)
		return
	}
	var p *Path
	if path != nil {
		p = path.clone()
	} else {
		p = newPath()
	}
	t.comp.schedulePost(postTask{
		level:  n.Level + 1,
		sep:    keys.Clone(n.High.Key),
		newPid: n.Right,
		path:   p,
	})
}

// retryLoop runs fn until it succeeds or fails with a real error,
// translating errRetry and errLevelGone into restarts.
func (t *Tree) retryLoop(fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if errors.Is(err, errRetry) {
			t.Stats.Restarts.Add(1)
			continue
		}
		return err
	}
}
