package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/wal"
)

// fixture bundles an engine with one Π-tree for tests.
type fixture struct {
	e    *engine.Engine
	b    *Binding
	tree *Tree
}

const testStoreID = 7

func defaultTestOpts() Options {
	return Options{
		LeafCapacity:    8,
		IndexCapacity:   8,
		Consolidation:   true,
		SyncCompletion:  true,
		CheckLatchOrder: true,
	}
}

func newFixture(t testing.TB, eopts engine.Options, topts Options) *fixture {
	t.Helper()
	e := engine.New(eopts)
	b := Register(e.Reg, eopts.PageOriented)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "test", topts)
	if err != nil {
		t.Fatalf("create tree: %v", err)
	}
	t.Cleanup(tree.Close)
	return &fixture{e: e, b: b, tree: tree}
}

// crashRestart simulates a crash (optionally truncating the log at lsn)
// and performs the ordered restart: analysis+redo, re-open, undo.
func (fx *fixture) crashRestart(t testing.TB, truncateAt *wal.LSN) *fixture {
	t.Helper()
	fx2, ok := fx.tryCrashRestart(t, truncateAt)
	if !ok {
		t.Fatalf("reopen tree failed after restart")
	}
	return fx2
}

// tryCrashRestart is crashRestart for crash points that may precede the
// tree's creation becoming durable: it reports ok=false when the restarted
// store has no tree (the only failure it tolerates).
func (fx *fixture) tryCrashRestart(t testing.TB, truncateAt *wal.LSN) (*fixture, bool) {
	t.Helper()
	img := fx.e.Crash(truncateAt)
	fx.tree.Close()
	e2 := engine.Restarted(img, fx.e.Opts)
	b2 := Register(e2.Reg, fx.e.Opts.PageOriented)
	st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
	p, err := e2.AnalyzeAndRedo()
	if err != nil {
		t.Fatalf("analyze+redo: %v", err)
	}
	tree2, err := Open(st2, e2.TM, e2.Locks, b2, "test", fx.tree.opts)
	if err != nil {
		// Undo must still run so the incomplete creation is rolled back.
		if uerr := e2.FinishRecovery(p); uerr != nil {
			t.Fatalf("undo losers after failed open: %v", uerr)
		}
		return nil, false
	}
	if err := e2.FinishRecovery(p); err != nil {
		t.Fatalf("undo losers: %v", err)
	}
	// Undo may have rolled back an uncommitted tree creation that the
	// pre-undo Open transiently observed; re-check the catalog.
	if _, err := st2.Root("test"); err != nil {
		tree2.Close()
		return nil, false
	}
	t.Cleanup(tree2.Close)
	return &fixture{e: e2, b: b2, tree: tree2}, true
}

func (fx *fixture) mustVerify(t testing.TB) TreeShape {
	t.Helper()
	fx.tree.DrainCompletions()
	shape, err := fx.tree.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return shape
}

func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertSearchSmall(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	for i := 0; i < 100; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		v, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("search %d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != string(val(i)) {
			t.Fatalf("search %d: got %q", i, v)
		}
	}
	if _, ok, _ := fx.tree.Search(nil, keys.Uint64(1000)); ok {
		t.Fatal("found missing key")
	}
	shape := fx.mustVerify(t)
	if shape.Records != 100 {
		t.Fatalf("records = %d, want 100", shape.Records)
	}
	if shape.Height < 2 {
		t.Fatalf("height = %d, want >= 2 (leaf capacity 8)", shape.Height)
	}
}

func TestInsertRandomOrderAndDuplicates(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(500)
	for _, i := range perm {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := fx.tree.Insert(nil, keys.Uint64(7), val(7)); err != ErrKeyExists {
		t.Fatalf("duplicate insert: err = %v, want ErrKeyExists", err)
	}
	shape := fx.mustVerify(t)
	if shape.Records != 500 {
		t.Fatalf("records = %d, want 500", shape.Records)
	}
}

func TestUpdateDelete(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	for i := 0; i < 200; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i += 2 {
		if err := fx.tree.Update(nil, keys.Uint64(uint64(i)), []byte("updated")); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	for i := 1; i < 200; i += 2 {
		if err := fx.tree.Delete(nil, keys.Uint64(uint64(i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := fx.tree.Delete(nil, keys.Uint64(1)); err != ErrKeyNotFound {
		t.Fatalf("double delete: err = %v, want ErrKeyNotFound", err)
	}
	if err := fx.tree.Update(nil, keys.Uint64(1), nil); err != ErrKeyNotFound {
		t.Fatalf("update missing: err = %v, want ErrKeyNotFound", err)
	}
	for i := 0; i < 200; i++ {
		v, ok, err := fx.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if !ok || string(v) != "updated" {
				t.Fatalf("key %d: ok=%v v=%q", i, ok, v)
			}
		} else if ok {
			t.Fatalf("deleted key %d still present", i)
		}
	}
	shape := fx.mustVerify(t)
	if shape.Records != 100 {
		t.Fatalf("records = %d, want 100", shape.Records)
	}
}

func TestRangeScan(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	for i := 0; i < 300; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i*2)), val(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := fx.tree.RangeScan(nil, keys.Uint64(100), keys.Uint64(200), func(k keys.Key, v []byte) bool {
		got = append(got, keys.ToUint64(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("scan returned %d keys, want 50", len(got))
	}
	for i, k := range got {
		if k != uint64(100+2*i) {
			t.Fatalf("scan[%d] = %d, want %d", i, k, 100+2*i)
		}
	}
	// Early stop.
	n := 0
	err = fx.tree.RangeScan(nil, nil, nil, func(k keys.Key, v []byte) bool {
		n++
		return n < 10
	})
	if err != nil || n != 10 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	fx := newFixture(t, engine.Options{}, defaultTestOpts())
	for i := 0; i < 150; i++ {
		if err := fx.tree.Insert(nil, keys.Uint64(uint64(i)), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	fx.tree.DrainCompletions()
	// Make everything durable-eligible: force the log but flush nothing.
	fx.e.Log.ForceAll()
	fx2 := fx.crashRestart(t, nil)
	shape := fx2.mustVerify(t)
	if shape.Records != 150 {
		t.Fatalf("after recovery: records = %d, want 150", shape.Records)
	}
	for i := 0; i < 150; i++ {
		v, ok, err := fx2.tree.Search(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("after recovery: key %d ok=%v v=%q err=%v", i, ok, v, err)
		}
	}
}

func TestTxnCommitAbort(t *testing.T) {
	for _, pageOriented := range []bool{false, true} {
		t.Run(fmt.Sprintf("pageOriented=%v", pageOriented), func(t *testing.T) {
			fx := newFixture(t, engine.Options{PageOriented: pageOriented}, defaultTestOpts())
			// Committed transaction.
			tx := fx.e.TM.Begin()
			for i := 0; i < 30; i++ {
				if err := fx.tree.Insert(tx, keys.Uint64(uint64(i)), val(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Aborted transaction: inserts + deletes + updates, all undone.
			tx2 := fx.e.TM.Begin()
			for i := 30; i < 60; i++ {
				if err := fx.tree.Insert(tx2, keys.Uint64(uint64(i)), val(i)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := fx.tree.Delete(tx2, keys.Uint64(5)); err != nil {
				t.Fatal(err)
			}
			if err := fx.tree.Update(tx2, keys.Uint64(6), []byte("doomed")); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
			fx.tree.DrainCompletions()
			shape := fx.mustVerify(t)
			if shape.Records != 30 {
				t.Fatalf("records = %d, want 30", shape.Records)
			}
			for i := 0; i < 30; i++ {
				v, ok, _ := fx.tree.Search(nil, keys.Uint64(uint64(i)))
				if !ok || string(v) != string(val(i)) {
					t.Fatalf("key %d: ok=%v v=%q", i, ok, v)
				}
			}
		})
	}
}
