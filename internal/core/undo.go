package core

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/wal"
)

// Logical (non-page-oriented) record undo, §4.2/§6: the compensating
// change is applied to whatever page the record lives on NOW, found by a
// fresh tree traversal. This is what frees data-node splits from the
// updating transaction: a structure change can move uncommitted records,
// because undo no longer insists on revisiting the original page.
//
// Each function ends by logging a CLR whose UndoNext is the compensated
// record's PrevLSN, so rollback (runtime or restart) never repeats it.

func (t *Tree) undoTxn(rec *wal.Record) (clrLogger, error) {
	tx, ok := t.tm.Lookup(rec.TxnID)
	if !ok {
		return nil, fmt.Errorf("core: logical undo for unknown txn %d", rec.TxnID)
	}
	return tx, nil
}

// clrLogger is the slice of txn.Txn logical undo needs.
type clrLogger interface {
	LogCLR(storeID uint32, pageID uint64, kind wal.Kind, payload []byte, undoNext wal.LSN) wal.LSN
}

// logicalUndoDelete compensates an insert by deleting k from wherever it
// now lives.
func (t *Tree) logicalUndoDelete(rec *wal.Record, k keys.Key) error {
	tx, err := t.undoTxn(rec)
	if err != nil {
		return err
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		leaf, err := t.descendTo(o, k, 0, latch.U, false, nil)
		if err != nil {
			return err
		}
		i, ok := leaf.n.search(k)
		if !ok {
			// Repeating history guarantees the record is present; if it
			// is not, the chain must still advance past this record.
			o.release(&leaf)
			tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
			return nil
		}
		old := leaf.n.Entries[i].Value
		o.promote(&leaf)
		lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(leaf.pid()), KindDeleteRecord, encKV(k, old), rec.PrevLSN)
		leaf.n.deleteEntry(k)
		leaf.f.MarkDirty(lsn)
		o.release(&leaf)
		return nil
	})
}

// logicalUndoInsert compensates a delete by re-inserting (k, v), splitting
// on the way if the leaf that now covers k is full.
func (t *Tree) logicalUndoInsert(rec *wal.Record, k keys.Key, v []byte) error {
	tx, err := t.undoTxn(rec)
	if err != nil {
		return err
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		path := newPath()
		leaf, err := t.descendTo(o, k, 0, latch.U, false, path)
		if err != nil {
			return err
		}
		if len(leaf.n.Entries) >= t.opts.LeafCapacity {
			// Undo can split: in logical-undo mode every split is an
			// independent atomic action (o.txn is nil here, so splitLeaf
			// takes that path).
			if err := t.splitLeaf(o, &leaf, path); err != nil {
				return err
			}
			return errRetry
		}
		if _, dup := leaf.n.search(k); dup {
			o.release(&leaf)
			tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
			return nil
		}
		o.promote(&leaf)
		lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(leaf.pid()), KindInsertRecord, encKV(k, v), rec.PrevLSN)
		leaf.n.insertEntry(Entry{Key: keys.Clone(k), Value: append([]byte(nil), v...)})
		leaf.f.MarkDirty(lsn)
		o.release(&leaf)
		return nil
	})
}

// logicalUndoUpdate compensates an update by restoring the old value.
func (t *Tree) logicalUndoUpdate(rec *wal.Record, k keys.Key, oldVal []byte) error {
	tx, err := t.undoTxn(rec)
	if err != nil {
		return err
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		leaf, err := t.descendTo(o, k, 0, latch.U, false, nil)
		if err != nil {
			return err
		}
		i, ok := leaf.n.search(k)
		if !ok {
			o.release(&leaf)
			tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
			return nil
		}
		cur := leaf.n.Entries[i].Value
		o.promote(&leaf)
		lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(leaf.pid()), KindUpdateRecord, encKVV(k, oldVal, cur), rec.PrevLSN)
		leaf.n.Entries[i].Value = append([]byte(nil), oldVal...)
		leaf.f.MarkDirty(lsn)
		o.release(&leaf)
		return nil
	})
}
