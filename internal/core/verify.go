package core

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/storage"
)

// TreeShape summarizes a verified tree.
type TreeShape struct {
	Height       int   // number of levels (1 = a single leaf root)
	NodesAtLevel []int // index = level
	Records      int
	// Entries counts all slots, index terms included.
	Entries int
}

// Verify checks the well-formedness rules of §2.1.3 over the whole tree
// and returns its shape. It must run with no concurrent mutators (tests
// call it at quiescent points and after restarts); it uses no latches so
// it can also inspect a freshly recovered store before workers start.
//
// Checked invariants:
//
//  1. every node is responsible for a subspace (Low/High consistency);
//  2. every sibling term delegates a subspace of its containing node to
//     an allocated, live node whose Low equals the delegation point;
//  3. every index term references an allocated node at the level below
//     that is responsible for the space the term describes;
//  4. index terms plus the sibling term cover the node's responsibility:
//     each level, chased through side pointers, partitions the entire
//     key space with no gaps or overlaps;
//  5. level-0 nodes hold only data records; higher nodes only terms;
//  6. a root exists that is responsible for the entire space.
func (t *Tree) Verify() (TreeShape, error) {
	var shape TreeShape
	pool := t.store.Pool

	// Every page the walk touches is reachable; the set feeds the store's
	// free-space cross-check at the end (no page both free and reachable).
	reachable := make(map[storage.PageID]bool)
	getNode := func(pid storage.PageID) (*Node, error) {
		f, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		defer pool.Unpin(f)
		n, ok := f.Data.(*Node)
		if !ok {
			return nil, fmt.Errorf("page %d holds %T, not a node", pid, f.Data)
		}
		reachable[pid] = true
		return n, nil
	}

	root, err := getNode(t.root)
	if err != nil {
		return shape, fmt.Errorf("core verify: root: %w", err)
	}
	if root.Low != nil || !root.High.Unbounded || root.Right != storage.NilPage {
		return shape, fmt.Errorf("core verify: root %d not responsible for the entire space: %v", t.root, root)
	}
	if root.Dead {
		return shape, fmt.Errorf("core verify: root %d marked dead", t.root)
	}
	shape.Height = root.Level + 1
	shape.NodesAtLevel = make([]int, root.Level+1)

	leftmost := t.root
	for level := root.Level; level >= 0; level-- {
		first, err := getNode(leftmost)
		if err != nil {
			return shape, fmt.Errorf("core verify: leftmost of level %d: %w", level, err)
		}
		if first.Level != level {
			return shape, fmt.Errorf("core verify: expected level %d at page %d, found %d", level, leftmost, first.Level)
		}
		if first.Low != nil {
			return shape, fmt.Errorf("core verify: leftmost node %d of level %d has Low=%x", leftmost, level, first.Low)
		}

		// Walk the level chain: it must partition the whole key space.
		pid := leftmost
		var prevHigh keys.Bound
		started := false
		var lastKey keys.Key
		haveLast := false
		for pid != storage.NilPage {
			n, err := getNode(pid)
			if err != nil {
				return shape, fmt.Errorf("core verify: level %d chain at page %d: %w", level, pid, err)
			}
			if alloc, err := t.store.IsAllocated(pid); err != nil {
				return shape, err
			} else if !alloc {
				return shape, fmt.Errorf("core verify: reachable page %d of level %d is not allocated", pid, level)
			}
			if n.Dead {
				return shape, fmt.Errorf("core verify: reachable page %d of level %d is marked dead", pid, level)
			}
			if n.Level != level {
				return shape, fmt.Errorf("core verify: page %d in level-%d chain has level %d", pid, level, n.Level)
			}
			if started {
				if prevHigh.Unbounded || !keys.Equal(prevHigh.Key, n.Low) {
					return shape, fmt.Errorf("core verify: level %d gap/overlap at page %d: prev high %v vs low %x", level, pid, prevHigh, n.Low)
				}
			}
			if !n.High.Unbounded && n.Right == storage.NilPage {
				return shape, fmt.Errorf("core verify: page %d of level %d has bounded space %v but no sibling", pid, level, n.High)
			}
			if n.High.Unbounded && n.Right != storage.NilPage {
				return shape, fmt.Errorf("core verify: page %d of level %d is unbounded but has sibling %d", pid, level, n.Right)
			}

			// Per-node entry checks.
			for i, e := range n.Entries {
				if i > 0 && keys.Compare(n.Entries[i-1].Key, e.Key) >= 0 {
					return shape, fmt.Errorf("core verify: page %d entries out of order at %d", pid, i)
				}
				if n.Low != nil && keys.Compare(e.Key, n.Low) < 0 {
					return shape, fmt.Errorf("core verify: page %d entry %x below node low %x", pid, e.Key, n.Low)
				}
				if !n.High.ContainsBelow(e.Key) {
					return shape, fmt.Errorf("core verify: page %d entry %x at/above node high %v", pid, e.Key, n.High)
				}
				if level == 0 {
					if e.Child != storage.NilPage {
						return shape, fmt.Errorf("core verify: data node %d entry %x has child pointer", pid, e.Key)
					}
					shape.Records++
					if haveLast && keys.Compare(lastKey, e.Key) >= 0 {
						return shape, fmt.Errorf("core verify: record order violated across level 0 at %x", e.Key)
					}
					lastKey = keys.Clone(e.Key)
					haveLast = true
				} else {
					if e.Value != nil {
						return shape, fmt.Errorf("core verify: index node %d entry %x carries a value", pid, e.Key)
					}
					child, err := getNode(e.Child)
					if err != nil {
						return shape, fmt.Errorf("core verify: index term %x of page %d: %w", e.Key, pid, err)
					}
					if child.Level != level-1 {
						return shape, fmt.Errorf("core verify: index term %x of page %d points to level %d (want %d)", e.Key, pid, child.Level, level-1)
					}
					if child.Dead {
						return shape, fmt.Errorf("core verify: index term %x of page %d points to dead page %d", e.Key, pid, e.Child)
					}
					// Rule 3: the child must be responsible for the space
					// the term describes, i.e. its Low is the term key.
					if !keys.Equal(child.Low, e.Key) && !(child.Low == nil && i == 0 && n.Low == nil) {
						return shape, fmt.Errorf("core verify: index term %x of page %d but child low %x", e.Key, pid, child.Low)
					}
					if alloc, err := t.store.IsAllocated(e.Child); err != nil {
						return shape, err
					} else if !alloc {
						return shape, fmt.Errorf("core verify: index term %x of page %d references freed page %d", e.Key, pid, e.Child)
					}
				}
				shape.Entries++
			}
			if level > 0 {
				// Rule 4: terms must cover the directly contained space
				// from Low; an index node's first term starts its
				// coverage at or below Low.
				if len(n.Entries) == 0 {
					return shape, fmt.Errorf("core verify: index node %d is empty", pid)
				}
				if n.Low != nil && keys.Compare(n.Entries[0].Key, n.Low) > 0 {
					return shape, fmt.Errorf("core verify: index node %d coverage starts at %x, after low %x", pid, n.Entries[0].Key, n.Low)
				}
				if n.Low == nil && n.Entries[0].Key != nil && len(n.Entries[0].Key) > 0 {
					return shape, fmt.Errorf("core verify: leftmost index node %d coverage starts at %x, not -inf", pid, n.Entries[0].Key)
				}
			}
			shape.NodesAtLevel[level]++
			prevHigh = n.High
			started = true
			pid = n.Right
		}
		if !prevHigh.Unbounded {
			return shape, fmt.Errorf("core verify: level %d chain ends bounded at %v", level, prevHigh)
		}

		if level > 0 {
			first, err = getNode(leftmost)
			if err != nil {
				return shape, err
			}
			leftmost = first.Entries[0].Child
		}
	}
	if err := t.store.SpaceCheck(reachable); err != nil {
		return shape, fmt.Errorf("core verify: %w", err)
	}
	return shape, nil
}

// Count returns the number of records currently in the tree (quiescent
// helper for tests and experiments).
func (t *Tree) Count() (int, error) {
	shape, err := t.Verify()
	if err != nil {
		return 0, err
	}
	return shape.Records, nil
}
