// Package enc provides the minimal length-prefixed binary writer/reader
// used for page images and log-record payloads. All integers are little
// endian and byte strings are 4-byte length prefixed, with 0xFFFFFFFF
// reserved to distinguish a nil slice from an empty one (nil keys mean
// "-infinity" in interval bounds, so the distinction is load-bearing).
package enc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports a read past the end of the buffer.
var ErrTruncated = errors.New("enc: truncated input")

const nilMarker = math.MaxUint32

// Writer accumulates an encoded byte string.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a 16-bit integer.
func (w *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// U32 appends a 32-bit integer.
func (w *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// U64 appends a 64-bit integer.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// Bytes32 appends a length-prefixed byte string, preserving nil-ness.
func (w *Writer) Bytes32(b []byte) {
	if b == nil {
		w.U32(nilMarker)
		return
	}
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader consumes an encoding produced by Writer.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a 16-bit integer.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a 32-bit integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a 64-bit integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bytes32 reads a length-prefixed byte string. The result is a fresh copy
// and nil-ness is preserved.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n == nilMarker {
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
