package enc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	var w Writer
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0102030405060708)
	w.Bytes32([]byte("hello"))
	w.Bytes32(nil)
	w.Bytes32([]byte{})

	r := NewReader(w.Bytes())
	if r.U8() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("u8/bool round trip")
	}
	if r.U16() != 0xBEEF || r.U32() != 0xDEADBEEF || r.U64() != 0x0102030405060708 {
		t.Fatal("integer round trip")
	}
	if string(r.Bytes32()) != "hello" {
		t.Fatal("bytes round trip")
	}
	if r.Bytes32() != nil {
		t.Fatal("nil-ness not preserved")
	}
	if b := r.Bytes32(); b == nil || len(b) != 0 {
		t.Fatal("empty slice not preserved")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint64, b []byte, c uint16, d []byte) bool {
		var w Writer
		w.U64(a)
		w.Bytes32(b)
		w.U16(c)
		w.Bytes32(d)
		r := NewReader(w.Bytes())
		ga := r.U64()
		gb := r.Bytes32()
		gc := r.U16()
		gd := r.Bytes32()
		if r.Err() != nil {
			return false
		}
		eq := func(x, y []byte) bool {
			if x == nil || y == nil {
				return x == nil && y == nil
			}
			return bytes.Equal(x, y)
		}
		return ga == a && gc == c && eq(gb, b) && eq(gd, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var w Writer
	w.U64(42)
	w.Bytes32([]byte("payload"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.U64()
		_ = r.Bytes32()
		if cut < len(full) && r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadsAfterErrorReturnZero(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if r.U32() != 0 || r.Bytes32() != nil || r.Bool() {
		t.Fatal("post-error reads must be zero values")
	}
}

func TestBytes32CopyIsIndependent(t *testing.T) {
	var w Writer
	w.Bytes32([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	got[0] = 99
	r2 := NewReader(buf)
	if r2.Bytes32()[0] != 1 {
		t.Fatal("decoded slice aliases the input buffer")
	}
}
