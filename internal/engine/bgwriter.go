package engine

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// bgWriter paces dirty-page write-back in the background so the dirty
// page table a checkpoint captures — and with it restart's redo window
// and the WAL segments that must be kept live — stays short. Each tick
// it flushes the pages with the OLDEST recLSNs first: those are exactly
// the pages pinning the recycle horizon down. After a checkpoint it
// targets every page whose recLSN predates that checkpoint, so by the
// next checkpoint the horizon has moved past it and the segments in
// between are recyclable.
type bgWriter struct {
	e        *Engine
	interval time.Duration
	batch    int
	target   atomic.Uint64 // flush everything with recLSN below this
	flushed  atomic.Int64
	ticks    atomic.Int64
	rearmed  atomic.Int64 // pages whose batched flush failed and were requeued
	done     chan struct{}
	stopped  chan struct{}
}

func startBgWriter(e *Engine, interval time.Duration, batch int) *bgWriter {
	if batch <= 0 {
		batch = 32
	}
	w := &bgWriter{e: e, interval: interval, batch: batch,
		done: make(chan struct{}), stopped: make(chan struct{})}
	go w.run()
	return w
}

// noteCheckpoint records the latest checkpoint LSN: pages dirtied before
// it become the writer's priority set.
func (w *bgWriter) noteCheckpoint(lsn wal.LSN) { w.target.Store(uint64(lsn)) }

func (w *bgWriter) stop() {
	close(w.done)
	<-w.stopped
}

// Stats returns pages flushed by the writer and ticks run.
func (w *bgWriter) stats() (flushed, ticks int64) {
	return w.flushed.Load(), w.ticks.Load()
}

func (w *bgWriter) run() {
	defer close(w.stopped)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.tick()
		}
	}
}

type dirtyRef struct {
	pool *storage.Pool
	pid  storage.PageID
	rec  wal.LSN
}

func (w *bgWriter) tick() {
	w.ticks.Add(1)
	if w.e.Degraded() {
		return
	}
	var dirty []dirtyRef
	for _, p := range w.e.Pools() {
		for pid, rec := range p.DirtyPages() {
			dirty = append(dirty, dirtyRef{pool: p, pid: pid, rec: rec})
		}
	}
	if len(dirty) == 0 {
		return
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].rec < dirty[j].rec })
	n := w.batch
	// Everything below the last checkpoint is overdue: clearing it is
	// what lets the next checkpoint advance the horizon, so allow a
	// deeper sweep than the steady-state batch.
	if tgt := wal.LSN(w.target.Load()); tgt != wal.NilLSN {
		overdue := sort.Search(len(dirty), func(i int) bool { return dirty[i].rec >= tgt })
		if overdue > n {
			n = overdue
			if max := 4 * w.batch; n > max {
				n = max
			}
		}
	}
	if n > len(dirty) {
		n = len(dirty)
	}
	// Flush as sorted per-pool batches: each batch pays one log force for
	// its maximum pageLSN instead of one per page, and the recLSN sort
	// means each batch drains the oldest redo-window pins first.
	type poolBatch struct {
		pool *storage.Pool
		pids []storage.PageID
	}
	var batches []poolBatch
	idx := make(map[*storage.Pool]int)
	for _, d := range dirty[:n] {
		i, ok := idx[d.pool]
		if !ok {
			i = len(batches)
			idx[d.pool] = i
			batches = append(batches, poolBatch{pool: d.pool})
		}
		batches[i].pids = append(batches[i].pids, d.pid)
	}
	for _, b := range batches {
		select {
		case <-w.done:
			return
		default:
		}
		// A failed flush leaves the page dirty; FlushBatch reports which
		// pages failed so they are explicitly re-armed (counted) for the
		// next tick's collection rather than silently dropped from the
		// round. (They stay in the pool's dirty table, so the next tick's
		// DirtyPages sweep re-collects them — or gives up for good once
		// the engine is degraded.)
		flushed, failed, _ := b.pool.FlushBatch(b.pids)
		w.flushed.Add(int64(flushed))
		if len(failed) > 0 {
			w.rearmed.Add(int64(len(failed)))
		}
	}
}

// WriteBackStats returns the background writer's pages-flushed and tick
// counters (zero when the writer is disabled).
func (e *Engine) WriteBackStats() (flushed, ticks int64) {
	if e.bg == nil {
		return 0, 0
	}
	return e.bg.stats()
}
