// Package engine wires the substrates — write-ahead log, lock manager,
// buffer pools, transaction manager, restart recovery — into one database
// environment, and simulates crashes: Crash snapshots the stable state
// (disk images plus the forced log prefix), and Restarted rebuilds an
// environment from such a snapshot exactly the way a real system comes
// back up.
package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/lock"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options configure an engine.
type Options struct {
	// PageOriented selects page-oriented record UNDO (§4.2): undo happens
	// on the page of the original update, so data-node splits that move
	// uncommitted records must run inside the updating transaction under
	// a move lock. When false, record undo is logical (re-traversal) and
	// every split is an independent atomic action.
	PageOriented bool
	// ForceOnAACommit disables relative durability for atomic actions
	// (ablation for experiment T12).
	ForceOnAACommit bool
	// PoolCapacity bounds each buffer pool in frames; 0 = unbounded.
	PoolCapacity int
	// Injector, when non-nil, threads a fault injector through the WAL,
	// the transaction manager, and every store's pool and disk: log syncs
	// probe wal.sync, eviction write-backs probe pool.evict, page I/O
	// probes disk.write / disk.read (stores attach behind a FaultyDisk),
	// and commits probe the txn crash points. A nil injector costs
	// nothing on any of those paths.
	Injector *fault.Injector
	// RecoveryWorkers is the restart parallelism: the number of
	// page-partitioned redo workers and concurrent loser-undo workers
	// recovery runs with. 0 means GOMAXPROCS.
	RecoveryWorkers int
	// SerialRestart selects the classic two-scan serial restart instead of
	// the parallel pipeline — the oracle path equivalence tests and the
	// T15 experiment compare against.
	SerialRestart bool
	// DataDir, when non-empty, makes the engine file-backed: the WAL
	// lives in segment files under DataDir and every store's pages in a
	// checksummed dual-slot page file. Use Open (not New) to construct a
	// file-backed engine so a previous incarnation's state is replayed.
	DataDir string
	// SegmentSize is the WAL segment data capacity in bytes (0 =
	// wal.DefaultSegmentSize).
	SegmentSize int
	// SlotSize is the per-page slot size of file-backed stores (0 =
	// storage.DefaultSlotSize). Each page owns two slots.
	SlotSize int
	// Sync selects the fsync policy of the file-backed WAL.
	Sync wal.SyncPolicy
	// WriteBackInterval enables the background writer: every interval it
	// flushes the dirtiest-oldest pages so checkpoints find a short DPT
	// and restart's redo window stays small. Zero disables it.
	WriteBackInterval time.Duration
	// WriteBackBatch bounds pages flushed per background-writer tick
	// (0 = 32).
	WriteBackBatch int
	// SerialCommit disables the pipelined commit path: group commit runs
	// one write+sync round at a time and user commits hold their locks
	// across the force (the pre-pipeline behavior). The T19 experiment's
	// baseline; production leaves it false.
	SerialCommit bool
	// PrefetchWindow enables scan read-ahead on every store's pool: scans
	// hand the pool leaf-successor hints and an async worker warms those
	// pages before the scan's own fetch, bounded to this many outstanding
	// requests. Zero disables prefetching.
	PrefetchWindow int
}

// ErrDegraded is the typed error returned for writes once the log
// device has permanently failed and the engine serves reads only. It is
// the WAL's sticky failure sentinel: errors.Is(err, ErrDegraded)
// matches every rejected commit after degradation.
var ErrDegraded = wal.ErrLogFailed

// Engine is one database environment.
type Engine struct {
	Opts  Options
	Log   *wal.Log
	Locks *lock.Manager
	Reg   *storage.Registry
	TM    *txn.Manager

	mu      sync.Mutex
	stores  map[uint32]*storage.Store
	closers []func()

	fileWAL   *wal.FileWAL
	fileDisks map[uint32]*storage.FileDisk
	bg        *bgWriter
}

func newEngine(opts Options, log *wal.Log) *Engine {
	e := &Engine{
		Opts:   opts,
		Log:    log,
		Locks:  lock.NewManager(),
		Reg:    storage.NewRegistry(),
		stores: make(map[uint32]*storage.Store),
	}
	if opts.Injector != nil {
		log.SetInjector(opts.Injector)
	}
	log.SetPipelined(!opts.SerialCommit)
	e.TM = txn.NewManager(log, e.Locks, e.Reg, txn.Options{
		ForceOnAACommit:  opts.ForceOnAACommit,
		EarlyLockRelease: !opts.SerialCommit,
	})
	if opts.Injector != nil {
		e.TM.SetInjector(opts.Injector)
	}
	storage.RegisterMetaHandlers(e.Reg)
	return e
}

// Degraded reports whether the engine is in read-only degraded mode:
// the log device has failed, so no new update can become durable.
// Committed, already-stable data remains readable.
func (e *Engine) Degraded() bool { return e.Log.Damaged() }

// New creates a fresh environment with an empty log.
func New(opts Options) *Engine {
	return newEngine(opts, wal.New())
}

// Open creates a file-backed environment rooted at opts.DataDir,
// replaying any previous incarnation's WAL segments. recovered reports
// whether a prior log was found; if so the caller must run the usual
// restart sequence (register kinds, AddStore, AnalyzeAndRedo, re-open
// trees, FinishRecovery) before using the engine — exactly the protocol
// Restarted callers follow, with the crash image coming from real files.
func Open(opts Options) (e *Engine, recovered bool, err error) {
	if opts.DataDir == "" {
		return nil, false, fmt.Errorf("engine: Open requires DataDir")
	}
	fw, rd, err := wal.OpenFileWAL(filepath.Join(opts.DataDir, "wal"), opts.SegmentSize, opts.Sync)
	if err != nil {
		return nil, false, err
	}
	var l *wal.Log
	if rd != nil {
		l = wal.NewFromImage(rd)
		recovered = true
	} else {
		l = wal.New()
	}
	l.SetSink(fw)
	e = newEngine(opts, l)
	e.fileWAL = fw
	if opts.WriteBackInterval > 0 {
		e.bg = startBgWriter(e, opts.WriteBackInterval, opts.WriteBackBatch)
	}
	return e, recovered, nil
}

// AddStore creates a store over a fresh disk — or, on a file-backed
// engine, over the store's page file (which restart reads its stable
// images from). Each access-method instance gets its own store ID and
// codec.
func (e *Engine) AddStore(storeID uint32, codec storage.Codec) *storage.Store {
	if e.Opts.DataDir == "" {
		return e.AttachStore(storeID, codec, storage.NewDisk())
	}
	path := filepath.Join(e.Opts.DataDir, fmt.Sprintf("store-%d.pages", storeID))
	fd, err := storage.OpenFileDisk(path, e.Opts.SlotSize)
	if err != nil {
		panic(fmt.Sprintf("engine: open page file %s: %v", path, err))
	}
	e.mu.Lock()
	if e.fileDisks == nil {
		e.fileDisks = make(map[uint32]*storage.FileDisk)
	}
	e.fileDisks[storeID] = fd
	e.mu.Unlock()
	return e.AttachStore(storeID, codec, fd)
}

// AttachStore creates a store over an existing disk image (restart
// path). With an injector configured, the disk is wrapped in a
// FaultyDisk so page I/O probes the disk failpoints.
func (e *Engine) AttachStore(storeID uint32, codec storage.Codec, disk storage.Disk) *storage.Store {
	if e.Opts.Injector != nil {
		disk = storage.NewFaultyDisk(disk, e.Opts.Injector)
	}
	pool := storage.NewPool(storeID, disk, e.Log, codec, e.Opts.PoolCapacity)
	if e.Opts.Injector != nil {
		pool.SetInjector(e.Opts.Injector)
	}
	pool.EnablePrefetch(e.Opts.PrefetchWindow)
	st := storage.NewStore(pool, e.Reg)
	e.mu.Lock()
	if _, dup := e.stores[storeID]; dup {
		e.mu.Unlock()
		panic(fmt.Sprintf("engine: duplicate store %d", storeID))
	}
	e.stores[storeID] = st
	e.mu.Unlock()
	return st
}

// Store returns a previously added store.
func (e *Engine) Store(storeID uint32) *storage.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stores[storeID]
}

// Pools returns every store's pool.
func (e *Engine) Pools() []*storage.Pool {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*storage.Pool, 0, len(e.stores))
	for _, s := range e.stores {
		out = append(out, s.Pool)
	}
	return out
}

// BeginSnapshot captures a consistent read snapshot: a point in version
// time plus the set of transactions in flight at capture. Reads through
// it (tsb.SnapshotGet / SnapshotScan) take no locks and never block
// writers; the caller must Release it so version GC can advance.
func (e *Engine) BeginSnapshot() *txn.Snapshot { return e.TM.BeginSnapshot(nil) }

// Checkpoint takes a fuzzy checkpoint over all stores. On a file-backed
// engine it then syncs every page file and recycles WAL segments below
// the checkpoint's horizon — in that order: redo below the horizon is
// only impossible once the page images that replace it are durable.
func (e *Engine) Checkpoint() (wal.LSN, error) {
	lsn, horizon, err := recovery.TakeCheckpointHorizon(e.Log, e.TM, e.Pools()...)
	if err != nil {
		return lsn, err
	}
	if e.fileWAL != nil && horizon != wal.NilLSN {
		if err := e.syncFileDisks(); err != nil {
			return lsn, err
		}
		if err := e.Log.Recycle(horizon); err != nil {
			return lsn, err
		}
	}
	if e.bg != nil {
		e.bg.noteCheckpoint(lsn)
	}
	return lsn, nil
}

// syncFileDisks fsyncs every file-backed store's page file.
func (e *Engine) syncFileDisks() error {
	e.mu.Lock()
	disks := make([]*storage.FileDisk, 0, len(e.fileDisks))
	for _, d := range e.fileDisks {
		disks = append(disks, d)
	}
	e.mu.Unlock()
	for _, d := range disks {
		if err := d.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// FileStats returns the file-backed layer's physical-work counters:
// the WAL sink's and each store's page-file stats. Zero values on a
// memory-backed engine.
func (e *Engine) FileStats() (wal.FileWALStats, map[uint32]storage.FileDiskStats) {
	var ws wal.FileWALStats
	if e.fileWAL != nil {
		ws = e.fileWAL.Stats()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.fileDisks) == 0 {
		return ws, nil
	}
	ds := make(map[uint32]storage.FileDiskStats, len(e.fileDisks))
	for id, d := range e.fileDisks {
		ds[id] = d.Stats()
	}
	return ws, ds
}

// FlushAll flushes every pool (forcing the log first per page, WAL
// protocol) and returns the number of pages written. Pages whose flush
// fails stay dirty; the sweep continues and the first error is
// returned alongside the count.
func (e *Engine) FlushAll() (int, error) {
	n := 0
	var first error
	for _, p := range e.Pools() {
		fn, err := p.FlushAll()
		n += fn
		if err != nil && first == nil {
			first = err
		}
	}
	return n, first
}

// RegisterCloser registers fn to run during Close, before the final log
// force and pool flush. Access methods register their shutdown (which
// must drain lazy-completion queues) here; closers run in registration
// order, so a tree layered on another store shuts down after it.
func (e *Engine) RegisterCloser(fn func()) {
	e.mu.Lock()
	e.closers = append(e.closers, fn)
	e.mu.Unlock()
}

// Close shuts the environment down in dependency order: first every
// registered access-method closer — each drains its lazy-completion
// queue to empty, running every scheduled posting and consolidation to
// commit, and only then stops its workers — then one log force, then a
// full pool flush. The ordering is the point: queues are volatile, so a
// completion that was scheduled but not yet run would simply vanish at
// shutdown, and a close-then-reopen would come up with intermediate
// states (unposted siblings, half-merged parents) that nothing is left
// to repair until a traversal stumbles over them. Draining first means
// the stable state a reopen recovers from contains no structure change
// that was promised but dropped.
func (e *Engine) Close() error {
	if e.bg != nil {
		e.bg.stop()
	}
	e.mu.Lock()
	closers := append([]func(){}, e.closers...)
	e.closers = nil
	e.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
	// Prefetchers stop before the final flush: an in-flight read-ahead
	// must not race the pools' shutdown writes.
	for _, p := range e.Pools() {
		p.StopPrefetch()
	}
	if err := e.Log.ForceAll(); err != nil {
		return err
	}
	_, err := e.FlushAll()
	if e.fileWAL != nil {
		if serr := e.syncFileDisks(); err == nil {
			err = serr
		}
		e.mu.Lock()
		disks := e.fileDisks
		e.fileDisks = nil
		e.mu.Unlock()
		for _, d := range disks {
			if cerr := d.Close(); err == nil {
				err = cerr
			}
		}
		if cerr := e.fileWAL.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CrashImage is the stable state surviving a simulated crash.
type CrashImage struct {
	LogImage *wal.Reader
	Disks    map[uint32]*storage.MemDisk
}

// Crash snapshots the stable state: disk images plus the forced log
// prefix. If truncateAt is non-nil the log is cut there instead (it must
// be a record boundary at or before the stable point); the crash matrix
// uses this to test every prefix of a run. The engine itself is left
// untouched — callers simply stop using it, as a crashed process would.
func (e *Engine) Crash(truncateAt *wal.LSN) *CrashImage {
	img := &CrashImage{
		LogImage: e.Log.CrashImage(truncateAt),
		Disks:    make(map[uint32]*storage.MemDisk),
	}
	e.mu.Lock()
	for id, s := range e.stores {
		img.Disks[id] = s.Pool.Disk().Snapshot()
	}
	e.mu.Unlock()
	return img
}

// Restarted builds a post-crash environment over img's stable state. The
// caller must then: register its access-method record kinds on Reg,
// AttachStore each store with img.Disks[id], run AnalyzeAndRedo, re-open
// its trees, and finally run the returned Pending's UndoLosers — the
// two-phase split exists because logical record undo needs the trees
// open, and opening a tree needs the redone meta pages. Recover bundles
// the phases for callers without that ordering constraint.
func Restarted(img *CrashImage, opts Options) *Engine {
	return newEngine(opts, wal.NewFromImage(img.LogImage))
}

// recoveryOpts translates the engine options into restart options.
func (e *Engine) recoveryOpts() recovery.Opts {
	return recovery.Opts{Workers: e.Opts.RecoveryWorkers, Serial: e.Opts.SerialRestart}
}

// AnalyzeAndRedo runs restart analysis and redo. The transaction manager
// is seeded with the recovered transaction-ID and version-clock high
// waters here — before the caller re-opens its trees, which read the
// clock high water to reseed their version clocks.
func (e *Engine) AnalyzeAndRedo() (*recovery.Pending, error) {
	p, err := recovery.AnalyzeAndRedoOpts(e.Log, e.Reg, e.recoveryOpts())
	if p != nil {
		e.TM.SeedRecovered(p.Stats.MaxTxnID, p.Stats.ClockHW)
	}
	return p, err
}

// FinishRecovery runs the undo pass.
func (e *Engine) FinishRecovery(p *recovery.Pending) error {
	return p.UndoLosers(e.TM)
}

// Recover runs the complete restart (analysis, redo, undo) in one call.
func (e *Engine) Recover() (recovery.Stats, error) {
	return recovery.RestartOpts(e.Log, e.Reg, e.TM, e.recoveryOpts())
}
