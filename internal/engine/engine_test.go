package engine

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

// byteCodec stores raw byte slices.
type byteCodec struct{}

func (byteCodec) EncodePage(v any) ([]byte, error) { return append([]byte(nil), v.([]byte)...), nil }
func (byteCodec) DecodePage(b []byte) (any, error) { return append([]byte(nil), b...), nil }

// A trivial record kind for engine-level tests: set page contents.
const kindSet wal.Kind = 250

func registerSet(reg *storage.Registry) {
	reg.Register(kindSet, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			f.Data = append([]byte(nil), rec.Payload...)
			return nil
		},
	})
}

func TestEngineMultiStoreCrashRestart(t *testing.T) {
	e := New(Options{})
	registerSet(e.Reg)
	stA := e.AddStore(1, byteCodec{})
	stB := e.AddStore(2, byteCodec{})

	aa := e.TM.BeginAtomicAction()
	if err := stA.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	if err := stB.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	write := func(st *storage.Store, pid storage.PageID, val string) {
		f, err := st.Pool.Create(pid)
		if err != nil {
			t.Fatal(err)
		}
		f.Latch.AcquireX()
		lsn := aa.LogUpdate(st.Pool.StoreID, uint64(pid), kindSet, []byte(val))
		f.Data = []byte(val)
		f.MarkDirty(lsn)
		f.Latch.ReleaseX()
		st.Pool.Unpin(f)
	}
	write(stA, 5, "store-a")
	write(stB, 5, "store-b")
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Log.ForceAll()

	img := e.Crash(nil)
	if len(img.Disks) != 2 {
		t.Fatalf("crash image has %d disks", len(img.Disks))
	}
	e2 := Restarted(img, Options{})
	registerSet(e2.Reg)
	stA2 := e2.AttachStore(1, byteCodec{}, img.Disks[1])
	stB2 := e2.AttachStore(2, byteCodec{}, img.Disks[2])
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		st   *storage.Store
		want string
	}{{stA2, "store-a"}, {stB2, "store-b"}} {
		f, err := tc.st.Pool.Fetch(5)
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
		if string(f.Data.([]byte)) != tc.want {
			t.Fatalf("got %q want %q", f.Data, tc.want)
		}
		tc.st.Pool.Unpin(f)
	}
}

func TestEngineCheckpointAnchor(t *testing.T) {
	e := New(Options{})
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	_ = aa.Commit()
	lsn, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if e.Log.CheckpointLSN() != lsn {
		t.Fatal("anchor not recorded")
	}
	img := e.Crash(nil)
	if img.LogImage.CheckpointLSN() != lsn {
		t.Fatal("anchor lost across crash")
	}
}

func TestEngineDuplicateStorePanics(t *testing.T) {
	e := New(Options{})
	e.AddStore(1, byteCodec{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate store id did not panic")
		}
	}()
	e.AddStore(1, byteCodec{})
}

func TestEngineFlushAllBoundsRedo(t *testing.T) {
	e := New(Options{})
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	f, err := st.Pool.Create(9)
	if err != nil {
		t.Fatal(err)
	}
	f.Latch.AcquireX()
	lsn := aa.LogUpdate(1, 9, kindSet, []byte("x"))
	f.Data = []byte("x")
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	st.Pool.Unpin(f)
	_ = aa.Commit()
	if err := e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if n, err := e.FlushAll(); err != nil || n == 0 {
		t.Fatalf("flush all: n=%d err=%v", n, err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	img := e.Crash(nil)
	e2 := Restarted(img, Options{})
	registerSet(e2.Reg)
	e2.AttachStore(1, byteCodec{}, img.Disks[1])
	stats, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RedoneRecords != 0 {
		t.Fatalf("redo after flush+checkpoint did %d records, want 0", stats.RedoneRecords)
	}
}

func TestStoreMissingFromImage(t *testing.T) {
	e := New(Options{})
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	if _, err := st.Pool.Fetch(77); !errors.Is(err, storage.ErrPageNotFound) {
		t.Fatalf("err = %v", err)
	}
}
