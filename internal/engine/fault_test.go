package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/wal"
)

// commitOne runs one transaction writing val to its own page.
func commitOne(t testing.TB, e *Engine, st *storage.Store, pid storage.PageID, val string) error {
	t.Helper()
	tx := e.TM.Begin()
	f, err := st.Pool.FetchOrCreate(pid)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	f.Latch.AcquireX()
	lsn := tx.LogUpdate(st.Pool.StoreID, uint64(pid), kindSet, []byte(val))
	f.Data = []byte(val)
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	st.Pool.Unpin(f)
	return tx.Commit()
}

// TestGroupCommitTransientSyncFault injects a transient fault into the
// group-commit leader's force. Followers must not be acknowledged until
// a force actually succeeds — and since transients are retried, every
// committer must come back with a durable commit and an undamaged log.
func TestGroupCommitTransientSyncFault(t *testing.T) {
	inj := fault.New(21)
	e := New(Options{Injector: inj})
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}

	inj.Arm(wal.FPSync, fault.Spec{Kind: fault.Transient, Count: 3})
	const committers = 8
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = commitOne(t, e, st, storage.PageID(10+i), "x")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d failed across a transient sync fault: %v", i, err)
		}
	}
	if e.Degraded() {
		t.Fatal("engine degraded by a recovered transient fault")
	}
	if inj.Hits(wal.FPSync) == 0 {
		t.Fatal("no sync probed the failpoint")
	}
	// Every acked commit really is durable: crash and recover, all
	// values must be present with no losers.
	img := e.Crash(nil)
	e2 := Restarted(img, Options{})
	registerSet(e2.Reg)
	st2 := e2.AttachStore(1, byteCodec{}, img.Disks[1])
	stats, err := e2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoserTxns != 0 {
		t.Fatalf("%d acked commits rolled back", stats.LoserTxns)
	}
	for i := 0; i < committers; i++ {
		f, err := st2.Pool.Fetch(storage.PageID(10 + i))
		if err != nil {
			t.Fatalf("page %d: %v", 10+i, err)
		}
		if string(f.Data.([]byte)) != "x" {
			t.Fatalf("page %d lost its committed value", 10+i)
		}
		st2.Pool.Unpin(f)
	}
}

// TestPermanentSyncFaultRejectsAndRollsBackCommits kills the log device
// and verifies the commit protocol end to end: every committer gets the
// typed degradation error, the transaction is rolled back (no ghost on
// recovery is possible since the log never acks), and the engine
// reports Degraded while recovery of the pre-fault state still works.
func TestPermanentSyncFaultRejectsAndRollsBackCommits(t *testing.T) {
	inj := fault.New(22)
	e := New(Options{Injector: inj})
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatal(err)
	}
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := commitOne(t, e, st, 5, "before"); err != nil {
		t.Fatal(err)
	}
	if err := e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	inj.Arm(wal.FPSync, fault.Spec{Kind: fault.Permanent, Count: -1})
	const committers = 6
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = commitOne(t, e, st, storage.PageID(20+i), "ghost")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("committer %d acked on a dead log device", i)
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("committer %d: %v is not ErrDegraded", i, err)
		}
	}
	if !e.Degraded() {
		t.Fatal("engine does not report degraded mode")
	}

	// Recovery from the frozen stable state: the pre-fault commit is
	// there, none of the rejected commits appear.
	img := e.Crash(nil)
	e2 := Restarted(img, Options{})
	registerSet(e2.Reg)
	st2 := e2.AttachStore(1, byteCodec{}, img.Disks[1])
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	f, err := st2.Pool.Fetch(5)
	if err != nil || string(f.Data.([]byte)) != "before" {
		t.Fatalf("pre-fault commit lost: %v", err)
	}
	st2.Pool.Unpin(f)
	for i := 0; i < committers; i++ {
		if f, err := st2.Pool.Fetch(storage.PageID(20 + i)); err == nil {
			if string(f.Data.([]byte)) == "ghost" {
				t.Fatalf("rejected commit %d resurrected on recovery", i)
			}
			st2.Pool.Unpin(f)
		}
	}
}
