package engine

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

// fileWorkload runs one deterministic, single-threaded workload against
// an engine: bootstrap the store, write pages via committed atomic
// actions, flush and checkpoint midway so the crash image mixes
// already-stable pages with redo-only tail updates.
func fileWorkload(t *testing.T, e *Engine, st *storage.Store) {
	t.Helper()
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if err := aa.Commit(); err != nil {
		t.Fatalf("bootstrap commit: %v", err)
	}
	write := func(pid storage.PageID, val string, create bool) {
		aa := e.TM.BeginAtomicAction()
		var f *storage.Frame
		var err error
		if create {
			f, err = st.Pool.Create(pid)
		} else {
			f, err = st.Pool.Fetch(pid)
		}
		if err != nil {
			t.Fatalf("page %d: %v", pid, err)
		}
		f.Latch.AcquireX()
		lsn := aa.LogUpdate(st.Pool.StoreID, uint64(pid), kindSet, []byte(val))
		f.Data = []byte(val)
		f.MarkDirty(lsn)
		f.Latch.ReleaseX()
		st.Pool.Unpin(f)
		if err := aa.Commit(); err != nil {
			t.Fatalf("commit page %d: %v", pid, err)
		}
	}
	for i := 0; i < 40; i++ {
		pid := storage.PageID(2 + i)
		write(pid, fmt.Sprintf("first.%d", pid), true)
	}
	// Midpoint: make the first half stable, then checkpoint. On the
	// file engine this also syncs the page file and recycles segments.
	if _, err := e.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Tail updates after the checkpoint: stable only in the log, so
	// recovery must redo them onto the flushed images.
	for i := 0; i < 40; i += 2 {
		pid := storage.PageID(2 + i)
		write(pid, fmt.Sprintf("second.%d", pid), false)
	}
	if err := e.Log.ForceAll(); err != nil {
		t.Fatalf("force: %v", err)
	}
}

// TestEngineFileMemRecoveryEquivalence runs the identical workload on a
// memory-backed engine and a file-backed engine, crashes both (the mem
// engine via the crash image, the file engine by abandoning the process
// state and replaying its directory), recovers both, and demands the
// recovered disk images be byte-identical. The file layer — CRC framing,
// segment stitching, master anchors, dual-slot page files — must be
// invisible to recovery semantics.
func TestEngineFileMemRecoveryEquivalence(t *testing.T) {
	// Memory side.
	em := New(Options{})
	registerSet(em.Reg)
	stm := em.AddStore(1, byteCodec{})
	fileWorkload(t, em, stm)

	// File side: small segments so the workload spans several and the
	// checkpoint actually recycles some.
	dir := t.TempDir()
	ef, recovered, err := Open(Options{DataDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if recovered {
		t.Fatalf("fresh dir claims recovery")
	}
	registerSet(ef.Reg)
	stf := ef.AddStore(1, byteCodec{})
	fileWorkload(t, ef, stf)

	// Crash both. The mem engine snapshots its stable state; the file
	// engine is simply abandoned — no Close, no final flush — and its
	// next incarnation replays the real files.
	img := em.Crash(nil)
	em2 := Restarted(img, Options{})
	registerSet(em2.Reg)
	stm2 := em2.AttachStore(1, byteCodec{}, img.Disks[1])
	if _, err := em2.Recover(); err != nil {
		t.Fatalf("mem recover: %v", err)
	}

	ef2, recovered, err := Open(Options{DataDir: dir, SegmentSize: 4096})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !recovered {
		t.Fatalf("reopen found no log to recover")
	}
	registerSet(ef2.Reg)
	stf2 := ef2.AddStore(1, byteCodec{})
	if _, err := ef2.Recover(); err != nil {
		t.Fatalf("file recover: %v", err)
	}
	ws, _ := ef2.FileStats()
	if ws.ReplayRecords == 0 {
		t.Fatalf("file replay read no records")
	}

	// Materialize both recovered states and compare byte for byte.
	if _, err := em2.FlushAll(); err != nil {
		t.Fatalf("mem flush: %v", err)
	}
	if _, err := ef2.FlushAll(); err != nil {
		t.Fatalf("file flush: %v", err)
	}
	sm := stm2.Pool.Disk().Snapshot()
	sf := stf2.Pool.Disk().Snapshot()
	if sm.Len() != sf.Len() {
		t.Fatalf("recovered page counts differ: mem %d, file %d", sm.Len(), sf.Len())
	}
	for _, pid := range sm.PageIDs() {
		a, aok, aerr := sm.Read(pid)
		b, bok, berr := sf.Read(pid)
		if aerr != nil || berr != nil || aok != bok {
			t.Fatalf("page %d: mem ok=%v err=%v, file ok=%v err=%v", pid, aok, aerr, bok, berr)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("recovered page %d differs:\n mem  %q\n file %q", pid, a, b)
		}
	}
	if err := ef2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestEngineFileCloseReopen checks the clean-shutdown path: Close syncs
// everything, and the next Open still replays the log and recovers the
// same state (a clean shutdown is just a crash with no losers).
func TestEngineFileCloseReopen(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	fileWorkload(t, e, st)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	e2, recovered, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !recovered {
		t.Fatalf("reopen found no log")
	}
	registerSet(e2.Reg)
	st2 := e2.AddStore(1, byteCodec{})
	if _, err := e2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	check := func(pid storage.PageID, want string) {
		f, err := st2.Pool.Fetch(pid)
		if err != nil {
			t.Fatalf("fetch %d: %v", pid, err)
		}
		if got := string(f.Data.([]byte)); got != want {
			t.Fatalf("page %d = %q, want %q", pid, got, want)
		}
		st2.Pool.Unpin(f)
	}
	check(2, "second.2")
	check(3, "first.3")
	if err := e2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

// TestEngineFileBackgroundWriter checks that the background writer
// actually drains the dirty page table without any explicit flush.
func TestEngineFileBackgroundWriter(t *testing.T) {
	dir := t.TempDir()
	e, _, err := Open(Options{DataDir: dir, WriteBackInterval: time.Millisecond, WriteBackBatch: 8})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	registerSet(e.Reg)
	st := e.AddStore(1, byteCodec{})
	aa := e.TM.BeginAtomicAction()
	if err := st.Bootstrap(aa); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if err := aa.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for i := 0; i < 30; i++ {
		aa := e.TM.BeginAtomicAction()
		pid := storage.PageID(2 + i)
		f, err := st.Pool.Create(pid)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		f.Latch.AcquireX()
		lsn := aa.LogUpdate(1, uint64(pid), kindSet, []byte("bg"))
		f.Data = []byte("bg")
		f.MarkDirty(lsn)
		f.Latch.ReleaseX()
		st.Pool.Unpin(f)
		if err := aa.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(st.Pool.DirtyPages()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background writer left %d dirty pages", len(st.Pool.DirtyPages()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	flushed, ticks := e.WriteBackStats()
	if flushed == 0 || ticks == 0 {
		t.Fatalf("writer stats: flushed=%d ticks=%d", flushed, ticks)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
