// Package fault is the fault-injection substrate for the storage, WAL,
// and transaction layers. Production code declares named failpoints and
// calls Injector.Check at each one; tests and the torture harness arm a
// subset with counted, probabilistic, or seeded-random triggers. The
// injector is compiled in unconditionally but costs nothing when
// disarmed: Check on a nil or empty injector is two predictable
// branches and an atomic load, with no allocation and no lock.
//
// Faults come in three kinds. A Transient fault models a retryable I/O
// error (the next attempt may succeed). A Permanent fault models a dead
// device; callers are expected to latch it sticky. A Torn fault models
// a partially-persisted multi-part write: the device keeps an old or
// prefix image and the caller must behave as if only that much reached
// stable storage.
//
// Independently of its kind, any armed point may also carry Crash:
// firing it trips a process-wide crash latch that freezes simulated
// stable state (all further stable writes and log syncs fail without
// side effects), which is how the torture harness stops the world at an
// arbitrary instant and then runs recovery against exactly the state a
// real crash would have left behind.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies what an injected fault does to the operation it hits.
type Kind uint8

const (
	// None is used for crash-only trigger points: Check returns nil
	// (the operation itself does not fail) but the crash latch trips.
	None Kind = iota
	// Transient failures may succeed if retried.
	Transient
	// Permanent failures model a dead device and never go away.
	Permanent
	// Torn failures persist only part of the write (for a page, the
	// stale prior image; for a log sync, a prefix ending at a record
	// boundary).
	Torn
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Torn:
		return "torn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the sentinel wrapped by every injected fault error;
// errors.Is(err, fault.ErrInjected) distinguishes simulated faults from
// genuine bugs anywhere up the stack.
var ErrInjected = errors.New("injected fault")

// Error is the concrete error returned by Check when a fault fires.
type Error struct {
	Point string  // failpoint name
	Kind  Kind    // what flavor of failure
	Hit   int64   // which hit of the point fired (1-based)
	Frac  float64 // seeded uniform [0,1) draw, for partial effects (e.g. where a torn sync tears)
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s fault at %q (hit %d)", e.Kind, e.Point, e.Hit)
}

func (e *Error) Unwrap() error { return ErrInjected }

// AsError extracts the injected *Error from an error chain, or nil.
func AsError(err error) *Error {
	var fe *Error
	if errors.As(err, &fe) {
		return fe
	}
	return nil
}

// IsTransient reports whether err carries an injected transient fault.
func IsTransient(err error) bool {
	fe := AsError(err)
	return fe != nil && fe.Kind == Transient
}

// IsPermanent reports whether err carries an injected permanent fault.
func IsPermanent(err error) bool {
	fe := AsError(err)
	return fe != nil && fe.Kind == Permanent
}

// IsTorn reports whether err carries an injected torn-write fault.
func IsTorn(err error) bool {
	fe := AsError(err)
	return fe != nil && fe.Kind == Torn
}

// Spec describes when an armed failpoint fires and what it does.
// The zero Spec fires once, deterministically, on the first hit, as a
// crash-less None fault (i.e. a no-op) — arm with at least Kind or
// Crash set to make it do something.
type Spec struct {
	Kind Kind
	// After fires the point starting at the After-th hit (1-based).
	// Zero means the first hit.
	After int64
	// Count bounds how many times the point fires once eligible.
	// Zero means once; negative means every eligible hit.
	Count int64
	// Prob, if nonzero, fires each eligible hit with this probability
	// using the injector's seeded RNG instead of deterministically.
	Prob float64
	// Crash additionally trips the injector's crash latch when the
	// point fires.
	Crash bool
	// Delay, if nonzero, stalls the caller for this duration when the
	// point fires, after the trip is recorded and outside the injector's
	// lock (so concurrent probes of other points never queue behind the
	// stall). A Kind None spec with Delay is pure latency injection: the
	// operation succeeds, just late — how tests freeze a WAL sync in
	// flight to observe the flush pipeline's overlap deterministically.
	Delay time.Duration
}

// Trip records one firing, for post-mortem reporting.
type Trip struct {
	Point string
	Kind  Kind
	Hit   int64
}

func (t Trip) String() string {
	return fmt.Sprintf("%s@%q hit=%d", t.Kind, t.Point, t.Hit)
}

type point struct {
	spec  Spec
	hits  int64
	fired int64
}

// Injector holds a set of armed failpoints. The zero value and the nil
// pointer are both valid, permanently-disarmed injectors.
type Injector struct {
	armed   atomic.Int32 // number of armed points; fast-path gate
	crashed atomic.Bool

	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
	trips  []Trip
}

// New returns an injector whose probabilistic and partial-effect draws
// come from a deterministic seeded source, so every failure schedule is
// reproducible from its seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*point),
	}
}

// Arm installs (or replaces) the spec for a named failpoint.
func (i *Injector) Arm(name string, s Spec) {
	if s.After <= 0 {
		s.After = 1
	}
	if s.Count == 0 {
		s.Count = 1
	}
	i.mu.Lock()
	if i.points == nil {
		i.points = make(map[string]*point)
	}
	if _, ok := i.points[name]; !ok {
		i.armed.Add(1)
	}
	i.points[name] = &point{spec: s}
	i.mu.Unlock()
}

// Disarm removes a failpoint; pending hits no longer fire.
func (i *Injector) Disarm(name string) {
	i.mu.Lock()
	if _, ok := i.points[name]; ok {
		delete(i.points, name)
		i.armed.Add(-1)
	}
	i.mu.Unlock()
}

// Check is the failpoint probe called from production code. It returns
// nil unless name is armed and its trigger condition is met on this
// hit, in which case it returns an *Error of the armed Kind (or nil
// for a crash-only point) after recording the trip and, if requested,
// tripping the crash latch.
//
// The fast path — nil receiver or no armed points — takes no lock and
// allocates nothing.
func (i *Injector) Check(name string) error {
	if i == nil || i.armed.Load() == 0 {
		return nil
	}
	return i.check(name)
}

func (i *Injector) check(name string) error {
	i.mu.Lock()
	p := i.points[name]
	if p == nil {
		i.mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits < p.spec.After {
		i.mu.Unlock()
		return nil
	}
	if p.spec.Count >= 0 && p.fired >= p.spec.Count {
		i.mu.Unlock()
		return nil
	}
	if p.spec.Prob > 0 && i.rng.Float64() >= p.spec.Prob {
		i.mu.Unlock()
		return nil
	}
	p.fired++
	frac := i.rng.Float64()
	tr := Trip{Point: name, Kind: p.spec.Kind, Hit: p.hits}
	i.trips = append(i.trips, tr)
	if p.spec.Crash {
		i.crashed.Store(true)
	}
	kind := p.spec.Kind
	delay := p.spec.Delay
	i.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if kind == None {
		return nil
	}
	return &Error{Point: name, Kind: kind, Hit: tr.Hit, Frac: frac}
}

// Crashed reports whether a crash-flagged failpoint has fired. The
// stable layers consult this to freeze simulated durable state.
func (i *Injector) Crashed() bool {
	return i != nil && i.crashed.Load()
}

// TripCrash trips the crash latch directly (a "clean" crash with no
// associated I/O fault), freezing stable state from this instant.
func (i *Injector) TripCrash() {
	i.crashed.Store(true)
}

// Trips returns a copy of every firing so far, in order.
func (i *Injector) Trips() []Trip {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	out := append([]Trip(nil), i.trips...)
	i.mu.Unlock()
	return out
}

// Hits returns how many times the named point has been probed,
// whether or not it fired.
func (i *Injector) Hits(name string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if p := i.points[name]; p != nil {
		return p.hits
	}
	return 0
}
