package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilAndDisarmedCheck(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Check("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if nilInj.Crashed() {
		t.Fatal("nil injector crashed")
	}
	inj := New(1)
	if err := inj.Check("anything"); err != nil {
		t.Fatalf("disarmed injector fired: %v", err)
	}
}

func TestCountedTrigger(t *testing.T) {
	inj := New(1)
	inj.Arm("p", Spec{Kind: Transient, After: 3, Count: 2})
	var fired []int
	for hit := 1; hit <= 6; hit++ {
		if err := inj.Check("p"); err != nil {
			fired = append(fired, hit)
			if !IsTransient(err) {
				t.Fatalf("hit %d: wrong kind: %v", hit, err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: does not wrap ErrInjected", hit)
			}
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fired)
	}
	if got := inj.Hits("p"); got != 6 {
		t.Fatalf("Hits = %d, want 6", got)
	}
}

func TestUnlimitedCount(t *testing.T) {
	inj := New(1)
	inj.Arm("p", Spec{Kind: Permanent, Count: -1})
	for hit := 1; hit <= 5; hit++ {
		if err := inj.Check("p"); !IsPermanent(err) {
			t.Fatalf("hit %d: want permanent fault, got %v", hit, err)
		}
	}
}

func TestCrashOnlyPoint(t *testing.T) {
	inj := New(1)
	inj.Arm("p", Spec{After: 2, Crash: true})
	if err := inj.Check("p"); err != nil || inj.Crashed() {
		t.Fatalf("fired early: err=%v crashed=%v", err, inj.Crashed())
	}
	if err := inj.Check("p"); err != nil {
		t.Fatalf("crash-only point returned error: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("crash latch did not trip")
	}
	trips := inj.Trips()
	if len(trips) != 1 || trips[0].Point != "p" || trips[0].Hit != 2 {
		t.Fatalf("trips = %v", trips)
	}
}

func TestTornCarriesFrac(t *testing.T) {
	inj := New(7)
	inj.Arm("p", Spec{Kind: Torn, Crash: true})
	err := inj.Check("p")
	if !IsTorn(err) {
		t.Fatalf("want torn fault, got %v", err)
	}
	fe := AsError(err)
	if fe.Frac < 0 || fe.Frac >= 1 {
		t.Fatalf("Frac = %v, want [0,1)", fe.Frac)
	}
	if !inj.Crashed() {
		t.Fatal("torn+crash spec did not trip crash latch")
	}
}

func TestSeededReproducibility(t *testing.T) {
	run := func(seed int64) []int {
		inj := New(seed)
		inj.Arm("p", Spec{Kind: Transient, Prob: 0.3, Count: -1})
		var fired []int
		for hit := 1; hit <= 200; hit++ {
			if inj.Check("p") != nil {
				fired = append(fired, hit)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("probabilistic trigger degenerate: fired %d/200", len(a))
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDisarmStopsFiring(t *testing.T) {
	inj := New(1)
	inj.Arm("p", Spec{Kind: Transient, Count: -1})
	if inj.Check("p") == nil {
		t.Fatal("armed point did not fire")
	}
	inj.Disarm("p")
	if err := inj.Check("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	// Fully disarmed injector takes the fast path again.
	if inj.armed.Load() != 0 {
		t.Fatalf("armed count = %d after disarm", inj.armed.Load())
	}
}

func BenchmarkCheckDisarmed(b *testing.B) {
	inj := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := inj.Check("wal.sync"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckNil(b *testing.B) {
	var inj *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := inj.Check("wal.sync"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDelayStallsCaller(t *testing.T) {
	inj := New(1)
	inj.Arm("slow", Spec{Kind: None, Count: -1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Check("slow"); err != nil {
		t.Fatalf("latency-only failpoint returned error: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("Check returned after %v, want >= 20ms stall", el)
	}
	if inj.Crashed() {
		t.Fatal("delay spec tripped the crash latch")
	}
}

func TestDelayComposesWithKind(t *testing.T) {
	inj := New(2)
	inj.Arm("p", Spec{Kind: Transient, Count: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	err := inj.Check("p")
	if !IsTransient(err) {
		t.Fatalf("want transient error after stall, got %v", err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("fault fired after %v without the stall", el)
	}
	// Count exhausted: no further stall or error.
	start = time.Now()
	if err := inj.Check("p"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("exhausted failpoint still stalled %v", el)
	}
}
