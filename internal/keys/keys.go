// Package keys provides order-preserving key encodings and bound arithmetic
// shared by every access method in this repository.
//
// A Key is an opaque byte string compared lexicographically. The encodings
// below are order-preserving: for two values a < b of the same type,
// Compare(Encode(a), Encode(b)) < 0. Keys encoded from different helper
// types should not be mixed within one index.
package keys

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Key is an opaque, lexicographically ordered byte string.
type Key []byte

// Compare returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func Compare(a, b Key) int { return bytes.Compare(a, b) }

// Equal reports whether a and b are byte-wise identical.
func Equal(a, b Key) bool { return bytes.Equal(a, b) }

// Clone returns a copy of k that does not alias its storage. Cloning a nil
// key returns nil.
func Clone(k Key) Key {
	if k == nil {
		return nil
	}
	c := make(Key, len(k))
	copy(c, k)
	return c
}

// Uint64 encodes v as an 8-byte big-endian key, which preserves numeric
// order under lexicographic comparison.
func Uint64(v uint64) Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// ToUint64 decodes a key produced by Uint64. It panics if k is not exactly
// 8 bytes, since that indicates keys of mixed encodings in one index.
func ToUint64(k Key) uint64 {
	if len(k) != 8 {
		panic(fmt.Sprintf("keys: ToUint64 on %d-byte key", len(k)))
	}
	return binary.BigEndian.Uint64(k)
}

// Int64 encodes v order-preservingly by flipping the sign bit, so negative
// values sort before positive ones.
func Int64(v int64) Key {
	return Uint64(uint64(v) ^ (1 << 63))
}

// ToInt64 decodes a key produced by Int64.
func ToInt64(k Key) int64 {
	return int64(ToUint64(k) ^ (1 << 63))
}

// Float64 encodes v order-preservingly (IEEE 754 total order for non-NaN
// values): positive floats get the sign bit set, negative floats are
// bit-complemented.
func Float64(v float64) Key {
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return Uint64(u)
}

// ToFloat64 decodes a key produced by Float64.
func ToFloat64(k Key) float64 {
	u := ToUint64(k)
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// String encodes s as a key. Plain byte strings already compare
// lexicographically, so the encoding is the identity copy.
func String(s string) Key { return Key(s) }

// ToString decodes a key produced by String.
func ToString(k Key) string { return string(k) }

// Composite concatenates parts into one key using escaped 0x00 separators:
// 0x00 bytes inside a part are encoded as 0x00 0xFF, and parts are joined
// with 0x00 0x01. The encoding preserves order part-by-part and never lets
// a longer first part sort between two keys that share a shorter first part.
func Composite(parts ...Key) Key {
	var out Key
	for i, p := range parts {
		if i > 0 {
			out = append(out, 0x00, 0x01)
		}
		for _, b := range p {
			if b == 0x00 {
				out = append(out, 0x00, 0xFF)
			} else {
				out = append(out, b)
			}
		}
	}
	return out
}

// SplitComposite undoes Composite, returning the original parts.
func SplitComposite(k Key) []Key {
	var parts []Key
	cur := Key{}
	for i := 0; i < len(k); i++ {
		if k[i] == 0x00 && i+1 < len(k) {
			switch k[i+1] {
			case 0x01:
				parts = append(parts, cur)
				cur = Key{}
				i++
				continue
			case 0xFF:
				cur = append(cur, 0x00)
				i++
				continue
			}
		}
		cur = append(cur, k[i])
	}
	parts = append(parts, cur)
	return parts
}

// Bound is a one-sided boundary of a key interval. The zero Bound is the
// interval's "unbounded" side: -infinity for a low bound, +infinity for a
// high bound, depending on context.
type Bound struct {
	// Key is the boundary value; ignored when Unbounded is true.
	Key Key
	// Unbounded marks an infinite bound.
	Unbounded bool
}

// Inf is the unbounded boundary.
var Inf = Bound{Unbounded: true}

// At returns a finite bound at k.
func At(k Key) Bound { return Bound{Key: Clone(k)} }

// LessHigh reports whether high bound a is strictly less than high bound b,
// treating Unbounded as +infinity.
func (a Bound) LessHigh(b Bound) bool {
	switch {
	case a.Unbounded:
		return false
	case b.Unbounded:
		return true
	default:
		return Compare(a.Key, b.Key) < 0
	}
}

// ContainsBelow reports whether key k lies strictly below this bound when
// the bound is used as an exclusive upper limit (Unbounded means +infinity).
func (a Bound) ContainsBelow(k Key) bool {
	return a.Unbounded || Compare(k, a.Key) < 0
}

// EqualBound reports whether two bounds are identical.
func (a Bound) EqualBound(b Bound) bool {
	if a.Unbounded || b.Unbounded {
		return a.Unbounded == b.Unbounded
	}
	return Equal(a.Key, b.Key)
}

// Interval is the half-open key interval [Low, High). A node's
// responsibility and its directly-contained space are both Intervals.
type Interval struct {
	Low  Key   // inclusive; nil means -infinity
	High Bound // exclusive; Unbounded means +infinity
}

// EntireSpace is the interval covering every key.
var EntireSpace = Interval{Low: nil, High: Inf}

// Contains reports whether k lies in the interval.
func (iv Interval) Contains(k Key) bool {
	if iv.Low != nil && Compare(k, iv.Low) < 0 {
		return false
	}
	return iv.High.ContainsBelow(k)
}

// ContainsInterval reports whether other lies entirely within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if iv.Low != nil && (other.Low == nil || Compare(other.Low, iv.Low) < 0) {
		return false
	}
	if !iv.High.Unbounded && (other.High.Unbounded || Compare(other.High.Key, iv.High.Key) > 0) {
		return false
	}
	return true
}

// Empty reports whether the interval contains no keys.
func (iv Interval) Empty() bool {
	if iv.High.Unbounded {
		return false
	}
	// A nil Low is -infinity, equivalent to the minimum (empty) key.
	return Compare(iv.Low, iv.High.Key) >= 0
}

// String renders the interval for diagnostics.
func (iv Interval) String() string {
	lo := "-inf"
	if iv.Low != nil {
		lo = fmt.Sprintf("%x", []byte(iv.Low))
	}
	hi := "+inf"
	if !iv.High.Unbounded {
		hi = fmt.Sprintf("%x", []byte(iv.High.Key))
	}
	return "[" + lo + ", " + hi + ")"
}
