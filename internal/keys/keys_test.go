package keys

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUint64OrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		cmp := Compare(Uint64(a), Uint64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool { return ToUint64(Uint64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := Compare(Int64(a), Int64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		if ToInt64(Int64(v)) != v {
			t.Fatalf("round trip %d", v)
		}
	}
}

func TestFloat64OrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := Compare(Float64(a), Float64(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.Inf(-1), -1.5, -0.0, 0.0, 2.25, math.Inf(1)} {
		if got := ToFloat64(Float64(v)); got != v && !(v == 0 && got == 0) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestCompositeRoundTrip(t *testing.T) {
	f := func(a, b, c []byte) bool {
		parts := SplitComposite(Composite(Key(a), Key(b), Key(c)))
		if len(parts) != 3 {
			return false
		}
		eq := func(x []byte, y Key) bool {
			return bytes.Equal(x, y) || (len(x) == 0 && len(y) == 0)
		}
		return eq(a, parts[0]) && eq(b, parts[1]) && eq(c, parts[2])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeOrdering(t *testing.T) {
	// Part-wise order must be preserved: a shorter first part never sorts
	// between two keys sharing a longer first part.
	k1 := Composite(String("ab"), String("z"))
	k2 := Composite(String("abc"), String("a"))
	k3 := Composite(String("abd"), String("a"))
	if !(Compare(k1, k2) < 0 && Compare(k2, k3) < 0) {
		t.Fatalf("composite ordering broken: %x %x %x", k1, k2, k3)
	}
	// Embedded zero bytes must not confuse part boundaries.
	a := Composite(Key{0x00}, Key{0x01})
	b := Composite(Key{0x00, 0x00}, Key{})
	pa := SplitComposite(a)
	pb := SplitComposite(b)
	if len(pa) != 2 || len(pb) != 2 || !Equal(pa[0], Key{0x00}) || !Equal(pb[0], Key{0x00, 0x00}) {
		t.Fatalf("zero-byte parts mangled: %v %v", pa, pb)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Low: Uint64(10), High: At(Uint64(20))}
	for _, tc := range []struct {
		k    uint64
		want bool
	}{{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {25, false}} {
		if got := iv.Contains(Uint64(tc.k)); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
	if !EntireSpace.Contains(Uint64(0)) || !EntireSpace.Contains(Uint64(math.MaxUint64)) {
		t.Fatal("EntireSpace must contain everything")
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	outer := Interval{Low: Uint64(10), High: At(Uint64(50))}
	inner := Interval{Low: Uint64(20), High: At(Uint64(30))}
	if !outer.ContainsInterval(inner) {
		t.Fatal("outer should contain inner")
	}
	if inner.ContainsInterval(outer) {
		t.Fatal("inner should not contain outer")
	}
	if !EntireSpace.ContainsInterval(outer) {
		t.Fatal("entire space contains all")
	}
	if outer.ContainsInterval(EntireSpace) {
		t.Fatal("bounded interval cannot contain the entire space")
	}
}

func TestBounds(t *testing.T) {
	if !At(Uint64(5)).LessHigh(Inf) {
		t.Fatal("finite < +inf")
	}
	if Inf.LessHigh(At(Uint64(5))) {
		t.Fatal("+inf not < finite")
	}
	if Inf.LessHigh(Inf) {
		t.Fatal("+inf not < +inf")
	}
	if !Inf.ContainsBelow(Uint64(math.MaxUint64)) {
		t.Fatal("+inf bound contains all")
	}
	if !At(Uint64(5)).EqualBound(At(Uint64(5))) || At(Uint64(5)).EqualBound(Inf) {
		t.Fatal("EqualBound broken")
	}
}

func TestIntervalEmpty(t *testing.T) {
	if (Interval{Low: Uint64(5), High: At(Uint64(5))}).Empty() != true {
		t.Fatal("[5,5) is empty")
	}
	if (Interval{Low: Uint64(5), High: At(Uint64(6))}).Empty() {
		t.Fatal("[5,6) is not empty")
	}
	if EntireSpace.Empty() {
		t.Fatal("entire space not empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	k := Uint64(42)
	c := Clone(k)
	c[0] = 0xFF
	if Equal(k, c) {
		t.Fatal("clone aliases original")
	}
	if Clone(nil) != nil {
		t.Fatal("clone of nil must be nil")
	}
}
