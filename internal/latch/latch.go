// Package latch implements the short-term node latches of Lomet &
// Salzberg §4.1: share (S), update (U) and exclusive (X) modes, with
// U-to-X promotion and deadlock avoidance by resource ordering.
//
// Latches are semaphores whose usage pattern guarantees freedom from
// deadlock; they never involve the database lock manager (package lock)
// and never conflict with database locks. Deadlock freedom comes from two
// holder-side rules the paper states:
//
//  1. Resources are latched in a fixed order: parents before children,
//     containing nodes before the contained nodes their side pointers
//     reference, and space-management information last.
//  2. S latches are never promoted. U latches may be promoted to X, but
//     only while the holder holds no latch on a higher-ordered resource.
//
// The package enforces rule 2 mechanically (promotion is only available
// through the U handle) and offers an optional per-goroutine order checker
// (see Tracker) that test builds use to assert rule 1.
package latch

import (
	"fmt"
	"sync"
)

// Mode is a latch mode.
type Mode int

const (
	// S is share mode: compatible with S and U.
	S Mode = iota
	// U is update mode: compatible with S, incompatible with U and X.
	// Only a U holder may promote to X.
	U
	// X is exclusive mode: incompatible with everything.
	X
)

// String renders the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Latch is an S/U/X latch. The zero value is an unheld latch.
//
// Fairness: a pending X (or promoting U) blocks new S acquisitions, so
// writers cannot starve. A pending U does not block readers, matching the
// "U allows sharing by readers" semantics of Gray et al. cited in §4.1.1.
type Latch struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int  // granted S holders
	uHeld   bool // granted U holder exists
	xHeld   bool // granted X holder exists
	// xWait counts goroutines waiting for X or promoting U->X; while
	// non-zero, new S requests queue behind them.
	xWait int
}

func (l *Latch) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
}

// AcquireS takes the latch in share mode.
func (l *Latch) AcquireS() {
	l.mu.Lock()
	l.init()
	for l.xHeld || l.xWait > 0 {
		l.cond.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// TryAcquireS takes the latch in share mode if that is possible without
// waiting, and reports whether it did.
func (l *Latch) TryAcquireS() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && l.xWait == 0
	if ok {
		l.readers++
	}
	l.mu.Unlock()
	return ok
}

// ReleaseS releases a share-mode hold.
func (l *Latch) ReleaseS() {
	l.mu.Lock()
	l.init()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("latch: ReleaseS with no S holders")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// AcquireU takes the latch in update mode. At most one goroutine holds U;
// concurrent S holders are permitted.
func (l *Latch) AcquireU() {
	l.mu.Lock()
	l.init()
	for l.xHeld || l.uHeld || l.xWait > 0 {
		l.cond.Wait()
	}
	l.uHeld = true
	l.mu.Unlock()
}

// TryAcquireU takes the latch in update mode without waiting, and reports
// whether it did.
func (l *Latch) TryAcquireU() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && !l.uHeld && l.xWait == 0
	if ok {
		l.uHeld = true
	}
	l.mu.Unlock()
	return ok
}

// ReleaseU releases an update-mode hold.
func (l *Latch) ReleaseU() {
	l.mu.Lock()
	l.init()
	if !l.uHeld {
		l.mu.Unlock()
		panic("latch: ReleaseU with no U holder")
	}
	l.uHeld = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Promote converts the caller's U hold into an X hold, waiting for current
// readers to drain. Per §4.1.1 the caller must hold no latch on any
// higher-ordered resource when promoting; Tracker-enabled builds assert
// this. Promotion cannot deadlock against another promoter because only
// one U holder exists at a time.
func (l *Latch) Promote() {
	l.mu.Lock()
	l.init()
	if !l.uHeld {
		l.mu.Unlock()
		panic("latch: Promote without U hold")
	}
	l.xWait++
	for l.readers > 0 {
		l.cond.Wait()
	}
	l.xWait--
	l.uHeld = false
	l.xHeld = true
	l.mu.Unlock()
}

// Demote converts the caller's X hold back into a U hold, readmitting
// readers without releasing the latch entirely.
func (l *Latch) Demote() {
	l.mu.Lock()
	l.init()
	if !l.xHeld {
		l.mu.Unlock()
		panic("latch: Demote without X hold")
	}
	l.xHeld = false
	l.uHeld = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// AcquireX takes the latch in exclusive mode.
func (l *Latch) AcquireX() {
	l.mu.Lock()
	l.init()
	l.xWait++
	for l.xHeld || l.uHeld || l.readers > 0 {
		l.cond.Wait()
	}
	l.xWait--
	l.xHeld = true
	l.mu.Unlock()
}

// TryAcquireX takes the latch in exclusive mode without waiting, and
// reports whether it did.
func (l *Latch) TryAcquireX() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && !l.uHeld && l.readers == 0
	if ok {
		l.xHeld = true
	}
	l.mu.Unlock()
	return ok
}

// ReleaseX releases an exclusive-mode hold.
func (l *Latch) ReleaseX() {
	l.mu.Lock()
	l.init()
	if !l.xHeld {
		l.mu.Unlock()
		panic("latch: ReleaseX with no X holder")
	}
	l.xHeld = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Acquire takes the latch in the given mode.
func (l *Latch) Acquire(m Mode) {
	switch m {
	case S:
		l.AcquireS()
	case U:
		l.AcquireU()
	case X:
		l.AcquireX()
	default:
		panic("latch: unknown mode")
	}
}

// Release releases a hold of the given mode.
func (l *Latch) Release(m Mode) {
	switch m {
	case S:
		l.ReleaseS()
	case U:
		l.ReleaseU()
	case X:
		l.ReleaseX()
	default:
		panic("latch: unknown mode")
	}
}

// Held reports a snapshot of whether any holder exists, for diagnostics
// and well-formedness checks only; the answer may be stale immediately.
func (l *Latch) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.xHeld || l.uHeld || l.readers > 0
}
