// Package latch implements the short-term node latches of Lomet &
// Salzberg §4.1: share (S), update (U) and exclusive (X) modes, with
// U-to-X promotion and deadlock avoidance by resource ordering.
//
// Latches are semaphores whose usage pattern guarantees freedom from
// deadlock; they never involve the database lock manager (package lock)
// and never conflict with database locks. Deadlock freedom comes from two
// holder-side rules the paper states:
//
//  1. Resources are latched in a fixed order: parents before children,
//     containing nodes before the contained nodes their side pointers
//     reference, and space-management information last.
//  2. S latches are never promoted. U latches may be promoted to X, but
//     only while the holder holds no latch on a higher-ordered resource.
//
// The package enforces rule 2 mechanically (promotion is only available
// through the U handle) and offers an optional per-goroutine order checker
// (see Tracker) that test builds use to assert rule 1.
//
// # Version counter and optimistic reads
//
// Every latch carries a monotonically increasing version counter with
// seqlock parity semantics: the counter is bumped once when exclusive
// access is granted (AcquireX, a successful TryAcquireX, or a U->X
// Promote), making it odd, and once when exclusive access ends (ReleaseX
// or an X->U Demote), making it even again. S and U transitions do not
// touch it — only transitions that change whether the protected data may
// be mutated do. The counter therefore encodes two facts at once:
//
//   - parity: an odd value means a writer holds X right now;
//   - history: any change between two reads means a writer held X in
//     between, so data derived from the first read may be stale.
//
// OptimisticRead returns the current version and whether it is even
// (quiescent); Validate re-reads the counter and reports whether it still
// equals an earlier observation. A reader that captures an immutable
// snapshot of the protected data together with an even version v can
// later prove the snapshot current by Validate(v): the counter is
// monotonic, so an unchanged value means no exclusive grant — and hence
// no mutation — happened in between. Version reads the counter for
// holders of an S or U latch, under which it is stable and even (a
// promotion cannot complete while readers are present, and an X acquire
// cannot complete while any hold exists).
package latch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Mode is a latch mode.
type Mode int

const (
	// S is share mode: compatible with S and U.
	S Mode = iota
	// U is update mode: compatible with S, incompatible with U and X.
	// Only a U holder may promote to X.
	U
	// X is exclusive mode: incompatible with everything.
	X
)

// String renders the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Latch is an S/U/X latch. The zero value is an unheld latch.
//
// Fairness: a pending X (or promoting U) blocks new S acquisitions, so
// writers cannot starve. A pending U does not block readers, matching the
// "U allows sharing by readers" semantics of Gray et al. cited in §4.1.1.
type Latch struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int  // granted S holders
	uHeld   bool // granted U holder exists
	xHeld   bool // granted X holder exists
	// xWait counts goroutines waiting for X or promoting U->X; while
	// non-zero, new S requests queue behind them.
	xWait int

	// version is the seqlock-style counter documented in the package
	// comment: bumped to odd when X is granted, back to even when X ends.
	// All bumps happen while holding mu, but it is read without mu by
	// optimistic readers, hence atomic.
	version atomic.Uint64
}

// sAcquireSpins bounds the AcquireS fast path: a few try-then-yield
// rounds before falling into the blocking (writer-fair) slow path. Spins
// may barge past a pending X while other readers still hold the latch
// (see TryAcquireS); the bound keeps that from starving the writer.
const sAcquireSpins = 3

func (l *Latch) init() {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
}

// AcquireS takes the latch in share mode. A bounded try-then-yield fast
// path lets short S holds ride out a transient X (or a pending promoter
// that other readers are already holding out) without the full queue
// dance; after sAcquireSpins rounds it blocks in the writer-fair slow
// path, so a pending X still cannot be starved.
func (l *Latch) AcquireS() {
	for i := 0; i < sAcquireSpins; i++ {
		if l.TryAcquireS() {
			return
		}
		runtime.Gosched()
	}
	l.mu.Lock()
	l.init()
	for l.xHeld || l.xWait > 0 {
		l.cond.Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// TryAcquireS takes the latch in share mode if that is possible without
// waiting, and reports whether it did. A pending X (xWait > 0) fails the
// attempt only when it could actually be granted next (no readers
// present): while other readers still hold the latch the writer's drain
// condition is false anyway, so admitting one more S hold does not delay
// the grant it is queued behind — but refusing it would turn one pending
// promoter into a stampede of failed try-latches. Once the last reader
// leaves, pending writers again win over new try-acquires.
func (l *Latch) TryAcquireS() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && (l.xWait == 0 || l.readers > 0)
	if ok {
		l.readers++
	}
	l.mu.Unlock()
	return ok
}

// ReleaseS releases a share-mode hold.
func (l *Latch) ReleaseS() {
	l.mu.Lock()
	l.init()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("latch: ReleaseS with no S holders")
	}
	l.readers--
	if l.readers == 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// AcquireU takes the latch in update mode. At most one goroutine holds U;
// concurrent S holders are permitted.
func (l *Latch) AcquireU() {
	l.mu.Lock()
	l.init()
	for l.xHeld || l.uHeld || l.xWait > 0 {
		l.cond.Wait()
	}
	l.uHeld = true
	l.mu.Unlock()
}

// TryAcquireU takes the latch in update mode without waiting, and reports
// whether it did.
func (l *Latch) TryAcquireU() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && !l.uHeld && l.xWait == 0
	if ok {
		l.uHeld = true
	}
	l.mu.Unlock()
	return ok
}

// ReleaseU releases an update-mode hold.
func (l *Latch) ReleaseU() {
	l.mu.Lock()
	l.init()
	if !l.uHeld {
		l.mu.Unlock()
		panic("latch: ReleaseU with no U holder")
	}
	l.uHeld = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Promote converts the caller's U hold into an X hold, waiting for current
// readers to drain. Per §4.1.1 the caller must hold no latch on any
// higher-ordered resource when promoting; Tracker-enabled builds assert
// this. Promotion cannot deadlock against another promoter because only
// one U holder exists at a time.
func (l *Latch) Promote() {
	l.mu.Lock()
	l.init()
	if !l.uHeld {
		l.mu.Unlock()
		panic("latch: Promote without U hold")
	}
	l.xWait++
	for l.readers > 0 {
		l.cond.Wait()
	}
	l.xWait--
	l.uHeld = false
	l.xHeld = true
	l.version.Add(1) // even -> odd: exclusive access granted
	l.mu.Unlock()
}

// Demote converts the caller's X hold back into a U hold, readmitting
// readers without releasing the latch entirely.
func (l *Latch) Demote() {
	l.mu.Lock()
	l.init()
	if !l.xHeld {
		l.mu.Unlock()
		panic("latch: Demote without X hold")
	}
	l.xHeld = false
	l.uHeld = true
	l.version.Add(1) // odd -> even: exclusive access over
	l.cond.Broadcast()
	l.mu.Unlock()
}

// AcquireX takes the latch in exclusive mode.
func (l *Latch) AcquireX() {
	l.mu.Lock()
	l.init()
	l.xWait++
	for l.xHeld || l.uHeld || l.readers > 0 {
		l.cond.Wait()
	}
	l.xWait--
	l.xHeld = true
	l.version.Add(1) // even -> odd: exclusive access granted
	l.mu.Unlock()
}

// TryAcquireX takes the latch in exclusive mode without waiting, and
// reports whether it did.
func (l *Latch) TryAcquireX() bool {
	l.mu.Lock()
	l.init()
	ok := !l.xHeld && !l.uHeld && l.readers == 0
	if ok {
		l.xHeld = true
		l.version.Add(1) // even -> odd: exclusive access granted
	}
	l.mu.Unlock()
	return ok
}

// ReleaseX releases an exclusive-mode hold.
func (l *Latch) ReleaseX() {
	l.mu.Lock()
	l.init()
	if !l.xHeld {
		l.mu.Unlock()
		panic("latch: ReleaseX with no X holder")
	}
	l.xHeld = false
	l.version.Add(1) // odd -> even: exclusive access over
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Acquire takes the latch in the given mode.
func (l *Latch) Acquire(m Mode) {
	switch m {
	case S:
		l.AcquireS()
	case U:
		l.AcquireU()
	case X:
		l.AcquireX()
	default:
		panic("latch: unknown mode")
	}
}

// Release releases a hold of the given mode.
func (l *Latch) Release(m Mode) {
	switch m {
	case S:
		l.ReleaseS()
	case U:
		l.ReleaseU()
	case X:
		l.ReleaseX()
	default:
		panic("latch: unknown mode")
	}
}

// OptimisticRead returns the latch's current version and whether it is
// even, i.e. no exclusive holder exists at this instant. A reader that
// goes on to examine data protected by the latch must hold an immutable
// snapshot of it (published by a past holder) and afterwards confirm the
// snapshot with Validate; OptimisticRead itself takes no mutex and
// establishes no exclusion.
func (l *Latch) OptimisticRead() (version uint64, ok bool) {
	v := l.version.Load()
	return v, v&1 == 0
}

// Validate reports whether the latch's version still equals an earlier
// OptimisticRead (or Version) observation. Because the counter is
// monotonic and every exclusive grant bumps it, true means no writer held
// X between the two reads — anything derived from state current at the
// first read is still current.
func (l *Latch) Validate(version uint64) bool {
	return l.version.Load() == version
}

// Version returns the current version counter. Under an S or U hold the
// value is stable and even: no X grant can complete while the hold
// exists, so it identifies the protected data's current state — the
// natural tag for a snapshot taken under that hold.
func (l *Latch) Version() uint64 {
	return l.version.Load()
}

// Held reports a snapshot of whether any holder exists, for diagnostics
// and well-formedness checks only; the answer may be stale immediately.
func (l *Latch) Held() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.xHeld || l.uHeld || l.readers > 0
}
