package latch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedReaders(t *testing.T) {
	var l Latch
	const n = 8
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.AcquireS()
			v := inside.Add(1)
			for {
				m := maxInside.Load()
				if v <= m || maxInside.CompareAndSwap(m, v) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inside.Add(-1)
			l.ReleaseS()
		}()
	}
	wg.Wait()
	if maxInside.Load() < 2 {
		t.Fatalf("S latches did not share: max concurrency %d", maxInside.Load())
	}
}

func TestExclusiveExcludes(t *testing.T) {
	var l Latch
	var counter int // intentionally unsynchronized; latch must protect it
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.AcquireX()
				counter++
				l.ReleaseX()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestUpdateModeAllowsReaders(t *testing.T) {
	var l Latch
	l.AcquireU()
	done := make(chan struct{})
	go func() {
		l.AcquireS() // must not block on a U holder
		l.ReleaseS()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("S latch blocked by U holder")
	}
	l.ReleaseU()
}

func TestUpdateModeExcludesUpdaters(t *testing.T) {
	var l Latch
	l.AcquireU()
	if l.TryAcquireU() {
		t.Fatal("second U granted")
	}
	if l.TryAcquireX() {
		t.Fatal("X granted while U held")
	}
	l.ReleaseU()
	if !l.TryAcquireU() {
		t.Fatal("U not granted after release")
	}
	l.ReleaseU()
}

func TestPromotionWaitsForReaders(t *testing.T) {
	var l Latch
	l.AcquireS()
	var promoted atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.AcquireU()
		l.Promote()
		promoted.Store(true)
		l.ReleaseX()
	}()
	time.Sleep(10 * time.Millisecond)
	if promoted.Load() {
		t.Fatal("promotion completed while a reader held S")
	}
	l.ReleaseS()
	wg.Wait()
	if !promoted.Load() {
		t.Fatal("promotion never completed")
	}
}

func TestPromotionBlocksNewReaders(t *testing.T) {
	// While the promoter is parked and another reader still holds S, a
	// late reader may barge (its admission cannot delay the promoter,
	// whose drain condition is already false — see TryAcquireS). The
	// promotion must still complete once the readers leave: no lost
	// wakeup, no starvation.
	var l Latch
	l.AcquireS() // reader in place
	var uStarted sync.WaitGroup
	uStarted.Add(1)
	var promoted atomic.Bool
	promoterDone := make(chan struct{})
	go func() {
		l.AcquireU()
		uStarted.Done()
		l.Promote()
		promoted.Store(true)
		l.ReleaseX()
		close(promoterDone)
	}()
	uStarted.Wait()
	time.Sleep(5 * time.Millisecond) // let Promote park in xWait
	if !l.TryAcquireS() {
		t.Fatal("TryAcquireS failed while the latch was only S-held (promoter convoy)")
	}
	if promoted.Load() {
		t.Fatal("promotion completed while readers held S")
	}
	l.ReleaseS() // barged reader
	l.ReleaseS() // original reader; promoter must now win
	<-promoterDone
	if !promoted.Load() {
		t.Fatal("promotion never completed")
	}
	// With the latch free again a plain S acquire must succeed.
	l.AcquireS()
	l.ReleaseS()
}

func TestDemote(t *testing.T) {
	var l Latch
	l.AcquireX()
	l.Demote()
	if !l.TryAcquireS() {
		t.Fatal("reader blocked after demote to U")
	}
	l.ReleaseS()
	if l.TryAcquireX() {
		t.Fatal("X granted while demoted U held")
	}
	l.ReleaseU()
}

func TestTryAcquire(t *testing.T) {
	var l Latch
	if !l.TryAcquireX() {
		t.Fatal("TryAcquireX on free latch failed")
	}
	if l.TryAcquireS() || l.TryAcquireU() || l.TryAcquireX() {
		t.Fatal("acquisition granted while X held")
	}
	l.ReleaseX()
	if !l.TryAcquireS() {
		t.Fatal("TryAcquireS failed on free latch")
	}
	if !l.TryAcquireU() {
		t.Fatal("U must share with S")
	}
	l.ReleaseS()
	l.ReleaseU()
}

func TestWriterNotStarved(t *testing.T) {
	var l Latch
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Continuous stream of readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.AcquireS()
				l.ReleaseS()
			}
		}()
	}
	acquired := make(chan struct{})
	go func() {
		l.AcquireX()
		l.ReleaseX()
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("writer starved by readers")
	}
	close(stop)
	wg.Wait()
}

func TestReleasePanics(t *testing.T) {
	for name, fn := range map[string]func(*Latch){
		"ReleaseS": func(l *Latch) { l.ReleaseS() },
		"ReleaseU": func(l *Latch) { l.ReleaseU() },
		"ReleaseX": func(l *Latch) { l.ReleaseX() },
		"Promote":  func(l *Latch) { l.Promote() },
		"Demote":   func(l *Latch) { l.Demote() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on unheld latch did not panic", name)
				}
			}()
			var l Latch
			fn(&l)
		}()
	}
}

func TestTrackerOrderViolation(t *testing.T) {
	tr := &Tracker{Enabled: true}
	var a, b Latch
	a.AcquireS()
	b.AcquireS()
	tr.Acquired(&b, 10, S)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("descending-rank acquisition did not panic")
			}
		}()
		tr.Acquired(&a, 5, S)
	}()
	tr.Released(&b)
	a.ReleaseS()
	b.ReleaseS()
}

func TestTrackerPromotionRule(t *testing.T) {
	tr := &Tracker{Enabled: true}
	var low, high Latch
	low.AcquireU()
	high.AcquireU()
	tr.Acquired(&low, 1, U)
	tr.Acquired(&high, 2, U)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("promotion under a higher-ranked hold did not panic")
			}
		}()
		tr.Promoted(&low)
	}()
	tr.Released(&high)
	high.ReleaseU()
	// With nothing held above, promotion is permitted; lower-ranked
	// holds do not matter.
	var lower Latch
	lower.AcquireX()
	tr2 := &Tracker{Enabled: true}
	tr2.Acquired(&lower, 0, X)
	tr2.Acquired(&low, 1, U)
	tr2.Promoted(&low) // must not panic
	tr2.Released(&low)
	tr2.Released(&lower)
	lower.ReleaseX()
	tr.Released(&low)
	low.ReleaseU()
}

func TestTrackerLeakDetection(t *testing.T) {
	tr := &Tracker{Enabled: true}
	var l Latch
	l.AcquireS()
	tr.Acquired(&l, 1, S)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AssertNoneHeld with a leak did not panic")
			}
		}()
		tr.AssertNoneHeld()
	}()
	tr.Released(&l)
	tr.AssertNoneHeld() // clean now
	l.ReleaseS()
}

func TestHoldTimerPercentile(t *testing.T) {
	var h HoldTimer
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if p := h.Percentile(50); p < 40*time.Microsecond || p > 60*time.Microsecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(100); p != 100*time.Microsecond {
		t.Fatalf("p100 = %v", p)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	var empty HoldTimer
	if empty.Percentile(99) != 0 {
		t.Fatal("empty timer percentile must be 0")
	}
}
