package latch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVersionParity(t *testing.T) {
	var l Latch
	v0, ok := l.OptimisticRead()
	if !ok || v0 != 0 {
		t.Fatalf("fresh latch: version=%d ok=%v, want 0 true", v0, ok)
	}

	l.AcquireX()
	if v, ok := l.OptimisticRead(); ok || v&1 == 0 {
		t.Fatalf("under X: version=%d ok=%v, want odd and false", v, ok)
	}
	l.ReleaseX()
	v1, ok := l.OptimisticRead()
	if !ok || v1 != v0+2 {
		t.Fatalf("after X cycle: version=%d ok=%v, want %d true", v1, ok, v0+2)
	}
	if l.Validate(v0) {
		t.Fatal("Validate accepted a pre-write version")
	}
	if !l.Validate(v1) {
		t.Fatal("Validate rejected the current version")
	}

	// S and U holds do not move the counter.
	l.AcquireS()
	l.ReleaseS()
	l.AcquireU()
	l.ReleaseU()
	if v, _ := l.OptimisticRead(); v != v1 {
		t.Fatalf("S/U cycle moved version to %d, want %d", v, v1)
	}

	// Promote bumps to odd, Demote back to even; a full U->X->U->release
	// cycle costs exactly one write generation.
	l.AcquireU()
	l.Promote()
	if v, ok := l.OptimisticRead(); ok || v != v1+1 {
		t.Fatalf("after promote: version=%d ok=%v, want %d false", v, ok, v1+1)
	}
	l.Demote()
	if v, ok := l.OptimisticRead(); !ok || v != v1+2 {
		t.Fatalf("after demote: version=%d ok=%v, want %d true", v, ok, v1+2)
	}
	l.ReleaseU()

	if !l.TryAcquireX() {
		t.Fatal("TryAcquireX failed on a free latch")
	}
	if v, _ := l.OptimisticRead(); v&1 == 0 {
		t.Fatalf("TryAcquireX did not bump version to odd (got %d)", v)
	}
	l.ReleaseX()
}

// TestVersionUnderSIsStable pins the Version contract navigation relies
// on: under an S hold the counter is even and cannot move.
func TestVersionUnderSIsStable(t *testing.T) {
	var l Latch
	l.AcquireS()
	v := l.Version()
	if v&1 != 0 {
		t.Fatalf("version %d odd under S hold", v)
	}
	done := make(chan struct{})
	go func() {
		l.AcquireX() // must block until the S hold drops
		l.ReleaseX()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	if !l.Validate(v) {
		t.Fatal("version moved while S was held")
	}
	l.ReleaseS()
	<-done
	if l.Validate(v) {
		t.Fatal("version did not move across the writer's X cycle")
	}
}

// TestOptimisticReadDetectsWriter runs a seqlock-style torture: a writer
// flips a two-word value under X while readers snapshot it between
// OptimisticRead/Validate pairs. A validated read must never observe a
// torn pair.
func TestOptimisticReadDetectsWriter(t *testing.T) {
	var l Latch
	var a, b atomic.Uint64 // stand-ins for latch-protected state
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.AcquireX()
			a.Store(i)
			b.Store(i)
			l.ReleaseX()
		}
	}()
	validated, torn := 0, 0
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		v, ok := l.OptimisticRead()
		if !ok {
			continue
		}
		x, y := a.Load(), b.Load()
		if !l.Validate(v) {
			continue
		}
		validated++
		if x != y {
			torn++
		}
	}
	close(stop)
	wg.Wait()
	if torn != 0 {
		t.Fatalf("%d torn reads slipped through validation (of %d validated)", torn, validated)
	}
	if validated == 0 {
		t.Fatal("no read ever validated; optimistic path unusable under writes")
	}
}

// TestNoLostWakeups storms a latch with S acquirers (blocking and try),
// U promoters and X writers, and then checks the latch is fully free: a
// lost wakeup would strand a goroutine and fail the final acquisition or
// the WaitGroup join. The barging TryAcquireS path must not starve the
// writers either — every writer must finish its quota.
func TestNoLostWakeups(t *testing.T) {
	var l Latch
	const (
		readers   = 8
		writers   = 4
		promoters = 2
		rounds    = 500
	)
	var sGrants, xGrants atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if r%2 == 0 {
					l.AcquireS()
				} else if !l.TryAcquireS() {
					continue
				}
				sGrants.Add(1)
				l.ReleaseS()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				l.AcquireX()
				xGrants.Add(1)
				l.ReleaseX()
			}
		}()
	}
	for i := 0; i < promoters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				l.AcquireU()
				l.Promote()
				xGrants.Add(1)
				l.Demote()
				l.ReleaseU()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("storm deadlocked: lost wakeup or starvation")
	}
	if got, want := xGrants.Load(), int64((writers+promoters)*rounds); got != want {
		t.Fatalf("writers finished %d exclusive grants, want %d", got, want)
	}
	if v, ok := l.OptimisticRead(); !ok {
		t.Fatalf("latch left with odd version %d after storm", v)
	} else if want := 2 * uint64((writers+promoters)*rounds); v != want {
		t.Fatalf("version %d after storm, want %d (2 per exclusive grant)", v, want)
	}
	if !l.TryAcquireX() {
		t.Fatal("latch not free after storm")
	}
	l.ReleaseX()
}
