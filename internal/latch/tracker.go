package latch

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Rank orders latchable resources for deadlock avoidance (§4.1.1): if every
// action acquires latches in non-decreasing Rank order, the potential-delay
// graph stays acyclic without being materialized. Index trees rank parent
// nodes before children, containing nodes before the contained nodes their
// side pointers reference, and space-management information last (highest).
type Rank uint64

// Tracker is an optional per-operation order checker. Each tree operation
// that participates in checking creates one Tracker (they are not shared
// between goroutines) and reports acquisitions and releases to it. When
// Enabled is false every method is a cheap no-op, so production paths can
// keep the calls in place.
type Tracker struct {
	// Enabled turns checking on. The zero Tracker is disabled.
	Enabled bool
	held    []trackedHold
}

type trackedHold struct {
	l    *Latch
	rank Rank
	mode Mode
}

// Acquired records that the operation now holds l at rank in mode, and
// panics if the acquisition violates resource ordering. Equal ranks are
// permitted (latch coupling holds parent and child briefly; the child's
// rank must be >= the parent's).
func (t *Tracker) Acquired(l *Latch, rank Rank, mode Mode) {
	if t == nil || !t.Enabled {
		return
	}
	for _, h := range t.held {
		if h.rank > rank {
			panic(fmt.Sprintf("latch: order violation: acquiring rank %d while holding rank %d", rank, h.rank))
		}
	}
	t.held = append(t.held, trackedHold{l, rank, mode})
}

// Promoted records a U->X promotion of l and panics if the operation
// holds ANY latch ranked above l — the §4.1.1 rule: "the promotion
// request is not made while the requester holds latches on higher ordered
// resources". The rule is load-bearing: promotion waits for S holders to
// drain, and a coupled reader drains by acquiring the next latch DOWN the
// order — if the promoter already holds that latch (in any conflicting
// mode), reader and promoter wait on each other forever. Multi-node
// structure changes therefore promote strictly top-down, finishing each
// node's promotion before latching the next.
func (t *Tracker) Promoted(l *Latch) {
	if t == nil || !t.Enabled {
		return
	}
	for i := range t.held {
		if t.held[i].l == l {
			if t.held[i].mode != U {
				panic("latch: Promoted on a non-U hold")
			}
			for _, h := range t.held {
				if h.rank > t.held[i].rank {
					panic("latch: promotion while holding a higher-ranked latch")
				}
			}
			t.held[i].mode = X
			return
		}
	}
	panic("latch: Promoted on unheld latch")
}

// Released records that the operation dropped its hold on l.
func (t *Tracker) Released(l *Latch) {
	if t == nil || !t.Enabled {
		return
	}
	for i := range t.held {
		if t.held[i].l == l {
			t.held = append(t.held[:i], t.held[i+1:]...)
			return
		}
	}
	panic("latch: Released on unheld latch")
}

// Reset prepares the tracker for reuse by a new operation, keeping the
// held-slice capacity so pooled operation contexts stay allocation-free.
func (t *Tracker) Reset(enabled bool) {
	t.Enabled = enabled
	t.held = t.held[:0]
}

// HeldCount returns the number of holds currently recorded.
func (t *Tracker) HeldCount() int {
	if t == nil {
		return 0
	}
	return len(t.held)
}

// AssertNoneHeld panics if the operation still records any holds. Tree
// operations call this on exit to catch latch leaks in tests.
func (t *Tracker) AssertNoneHeld() {
	if t == nil || !t.Enabled {
		return
	}
	if len(t.held) != 0 {
		modes := make([]string, len(t.held))
		for i, h := range t.held {
			modes[i] = fmt.Sprintf("rank=%d mode=%v", h.rank, h.mode)
		}
		sort.Strings(modes)
		panic(fmt.Sprintf("latch: %d latches leaked: %v", len(t.held), modes))
	}
}

// HoldTimer measures latch hold durations for experiment T6 (atomic
// actions above the leaf level are short). It is safe for concurrent use.
type HoldTimer struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one hold duration.
func (h *HoldTimer) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Snapshot returns a copy of all recorded durations.
func (h *HoldTimer) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Percentile returns the p-th percentile (0..100) of recorded hold times,
// or zero if none were recorded.
func (h *HoldTimer) Percentile(p float64) time.Duration {
	s := h.Snapshot()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Count returns how many holds were recorded.
func (h *HoldTimer) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}
