package lock

import (
	"testing"

	"repro/internal/wal"
)

func TestTryLockDepBatchGrantsAll(t *testing.T) {
	m := NewManager()
	names := make([]Name, 40)
	for i := range names {
		names[i] = KeyName(5, []byte{byte(i), byte(i >> 4)})
	}
	const a = wal.TxnID(1)
	dep, fail := m.TryLockDepBatch(a, names, X)
	if fail != -1 {
		t.Fatalf("batch failed at %d", fail)
	}
	if dep != 0 {
		t.Fatalf("dep = %d on fresh locks", dep)
	}
	for _, n := range names {
		if mode, held := m.HeldMode(a, n); !held || mode != X {
			t.Fatalf("name %v not held X after batch", n)
		}
	}
	// Re-acquiring the same batch hits the already-held fast path.
	if _, fail := m.TryLockDepBatch(a, names, X); fail != -1 {
		t.Fatalf("re-batch failed at %d", fail)
	}
	// A duplicate name inside one batch is granted on the held path too.
	dup := []Name{names[0], names[0], names[1]}
	if _, fail := m.TryLockDepBatch(a, dup, X); fail != -1 {
		t.Fatalf("dup batch failed at %d", fail)
	}
	m.ReleaseAll(a)
}

func TestTryLockDepBatchConflictKeepsPrefix(t *testing.T) {
	m := NewManager()
	names := make([]Name, 10)
	for i := range names {
		names[i] = PageName(9, uint64(i))
	}
	const a, b = wal.TxnID(1), wal.TxnID(2)
	if err := m.Lock(b, names[6], X); err != nil {
		t.Fatal(err)
	}
	_, fail := m.TryLockDepBatch(a, names, X)
	if fail != 6 {
		t.Fatalf("fail index = %d, want 6", fail)
	}
	// The conflicting name itself was not granted. Other names may or may
	// not have been attempted yet (stripes are processed as groups, and
	// the batch stops at the first stripe containing a conflict), but
	// whatever WAS granted stays held — the caller is two-phase.
	if _, held := m.HeldMode(a, names[6]); held {
		t.Fatal("conflicting name reported held")
	}
	granted := 0
	for i, n := range names {
		if i == 6 {
			continue
		}
		if _, held := m.HeldMode(a, n); held {
			granted++
		}
	}
	if granted == 0 {
		t.Fatal("no name granted before the conflict")
	}
	// After the holder releases, a retry sees held names fast and grants
	// the rest.
	m.ReleaseAll(b)
	if _, fail := m.TryLockDepBatch(a, names, X); fail != -1 {
		t.Fatalf("retry failed at %d", fail)
	}
	m.ReleaseAll(a)
}

func TestTryLockDepBatchSharedAndUpgrade(t *testing.T) {
	m := NewManager()
	names := []Name{PageName(2, 1), PageName(2, 2), PageName(2, 3)}
	const a, b = wal.TxnID(3), wal.TxnID(4)
	if _, fail := m.TryLockDepBatch(a, names, S); fail != -1 {
		t.Fatalf("S batch failed at %d", fail)
	}
	// Another reader shares.
	if _, fail := m.TryLockDepBatch(b, names, S); fail != -1 {
		t.Fatalf("second S batch failed at %d", fail)
	}
	// Upgrade to X must fail while the other reader holds S.
	if _, fail := m.TryLockDepBatch(a, names, X); fail == -1 {
		t.Fatal("X upgrade batch granted over a concurrent S holder")
	}
	m.ReleaseAll(b)
	// Alone, the upgrade goes through in place.
	if _, fail := m.TryLockDepBatch(a, names, X); fail != -1 {
		t.Fatalf("upgrade batch failed at %d", fail)
	}
	for _, n := range names {
		if mode, held := m.HeldMode(a, n); !held || mode != X {
			t.Fatalf("name %v not upgraded to X", n)
		}
	}
	m.ReleaseAll(a)
}

// TestTryLockDepBatchDep: batch acquisition must surface the ELR commit
// dependency left behind by an early-released writer, exactly like the
// single-name TryLockDep path.
func TestTryLockDepBatchDep(t *testing.T) {
	m := NewManager()
	names := []Name{KeyName(7, []byte("k1")), KeyName(7, []byte("k2"))}
	const writer, reader = wal.TxnID(1), wal.TxnID(2)
	for _, n := range names {
		if err := m.Lock(writer, n, X); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAllAt(writer, 500) // early release: locks carry dep tag 500
	dep, fail := m.TryLockDepBatch(reader, names, S)
	if fail != -1 {
		t.Fatalf("batch failed at %d", fail)
	}
	if dep != 500 {
		t.Fatalf("dep = %d, want 500", dep)
	}
	m.NoteStable(501)
	m.ReleaseAll(reader)
}

func TestTryLockDepBatchNoAllocs(t *testing.T) {
	m := NewManager()
	names := make([]Name, 16)
	for i := range names {
		names[i] = PageName(3, uint64(i))
	}
	const txn = wal.TxnID(9)
	for i := 0; i < 100; i++ {
		if _, fail := m.TryLockDepBatch(txn, names, X); fail != -1 {
			t.Fatalf("warm batch failed at %d", fail)
		}
		m.ReleaseAll(txn)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, fail := m.TryLockDepBatch(txn, names, X); fail != -1 {
			panic("batch failed")
		}
		m.ReleaseAll(txn)
	})
	if avg != 0 {
		t.Fatalf("batch lock cycle allocates %.1f objects per run, want 0", avg)
	}
}
