package lock

import (
	"sync/atomic"
	"testing"

	"repro/internal/wal"
)

// BenchmarkLockUncontended is the fast-path cost of one Lock plus its
// share of a ReleaseAll, single-threaded. The PR 2 acceptance bar is
// zero allocations per operation.
func BenchmarkLockUncontended(b *testing.B) {
	m := NewManager()
	space := SpaceID("bench", "t")
	txn := wal.TxnID(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(txn, PageName(space, uint64(i%64)), X); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}

// BenchmarkLockParallel measures disjoint-name lock throughput across
// goroutines; with striping, different names rarely share a mutex.
func BenchmarkLockParallel(b *testing.B) {
	m := NewManager()
	space := SpaceID("bench", "t")
	var next atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		txn := wal.TxnID(next.Add(1))
		i := 0
		for pb.Next() {
			name := PageName(space, uint64(txn)<<16|uint64(i%16))
			if err := m.Lock(txn, name, X); err != nil {
				b.Fatal(err)
			}
			i++
			if i%16 == 0 {
				m.ReleaseAll(txn)
			}
		}
		m.ReleaseAll(txn)
	})
}

// BenchmarkTryLockUncontended is the TryLock fast path (the hot call in
// consolidation and move-lock probes).
func BenchmarkTryLockUncontended(b *testing.B) {
	m := NewManager()
	space := SpaceID("bench", "t")
	txn := wal.TxnID(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !m.TryLock(txn, PageName(space, uint64(i%64)), IX) {
			b.Fatal("trylock failed uncontended")
		}
		m.ReleaseAll(txn)
	}
}

// BenchmarkKeyName is the record-name construction cost that replaced a
// fmt.Sprintf per lock call.
func BenchmarkKeyName(b *testing.B) {
	key := []byte("user:12345678")
	space := SpaceID("bench", "t")
	b.ReportAllocs()
	var sink Name
	for i := 0; i < b.N; i++ {
		sink = KeyName(space, key)
	}
	_ = sink
}
