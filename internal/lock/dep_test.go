package lock

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/wal"
)

// waitForWaiters polls until at least `want` blocking waits have been
// recorded — the waiter is queued under the stripe lock before the
// counter is visible, so a subsequent release is guaranteed to grant it.
func waitForWaiters(t *testing.T, m *Manager, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w, _ := m.Stats(); w >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never blocked")
		}
		runtime.Gosched()
	}
}

// TestDepTagInheritAndFilter: a lock released at a commit LSN tags the
// entry; a later acquirer inherits the tag as a commit dependency; once
// stability covers the LSN the dependency disappears.
func TestDepTagInheritAndFilter(t *testing.T) {
	m := NewManager()
	n := PageName(1, 7)
	if err := m.Lock(1, n, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllAt(1, 500)

	dep, err := m.LockDep(2, n, S)
	if err != nil {
		t.Fatal(err)
	}
	if dep != 500 {
		t.Fatalf("inherited dep = %d, want 500", dep)
	}
	m.ReleaseAll(2)

	// The record at 500 is stable once the stable point passes it.
	m.NoteStable(501)
	dep, err = m.LockDep(3, n, S)
	if err != nil {
		t.Fatal(err)
	}
	if dep != 0 {
		t.Fatalf("dep = %d after stability covered it, want 0", dep)
	}
	m.ReleaseAll(3)
}

// TestDepRetainsEmptyEntry: an empty lock entry carrying an unstable
// dependency must NOT be freed — a reader acquiring the name later
// still has to inherit the writer's commit LSN. Once stability covers
// the LSN, the retained entry is swept and recycled.
func TestDepRetainsEmptyEntry(t *testing.T) {
	m := NewManager()
	n := KeyName(2, []byte("retained"))
	if err := m.Lock(10, n, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAllAt(10, 900)
	if got := m.PendingDeps(); got != 1 {
		t.Fatalf("pending dep entries = %d, want 1 (entry was freed, dep lost)", got)
	}

	// A fresh acquirer of the otherwise-empty entry inherits the dep.
	dep, ok := m.TryLockDep(11, n, X)
	if !ok || dep != 900 {
		t.Fatalf("TryLockDep = (%d, %v), want (900, true)", dep, ok)
	}
	m.ReleaseAll(11)

	// Stability covers the LSN: sweep activity (any release on the
	// stripe) drains the retained entry.
	m.NoteStable(901)
	if err := m.Lock(12, n, S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(12)
	if got := m.PendingDeps(); got != 0 {
		t.Fatalf("pending dep entries = %d after stability, want 0", got)
	}
	if dep, _ := m.TryLockDep(13, n, S); dep != 0 {
		t.Fatalf("stale dep %d resurfaced after sweep", dep)
	}
	m.ReleaseAll(13)
}

// TestDepThroughWaiterGrant: a waiter blocked behind the releasing
// writer receives the dependency through the grant itself.
func TestDepThroughWaiterGrant(t *testing.T) {
	m := NewManager()
	n := PageName(3, 9)
	if err := m.Lock(20, n, X); err != nil {
		t.Fatal(err)
	}
	got := make(chan uint64, 1)
	errCh := make(chan error, 1)
	go func() {
		dep, err := m.LockDep(21, n, X)
		errCh <- err
		got <- dep
	}()
	waitForWaiters(t, m, 1)
	m.ReleaseAllAt(20, 777)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if dep := <-got; dep != 777 {
		t.Fatalf("waiter inherited dep %d, want 777", dep)
	}
	m.ReleaseAll(21)
}

// TestDepBookkeepingZeroAlloc: the early-lock-release hot path — tagged
// release, retained entry, dependent acquire, stability sweep — must
// not allocate in steady state.
func TestDepBookkeepingZeroAlloc(t *testing.T) {
	m := NewManager()
	names := make([]Name, 8)
	for i := range names {
		names[i] = PageName(4, uint64(i))
	}
	const writer = wal.TxnID(100)
	const reader = wal.TxnID(101)
	lsn := uint64(1000)
	cycle := func() {
		for _, n := range names {
			if err := m.Lock(writer, n, X); err != nil {
				panic(err)
			}
		}
		lsn += 10
		m.ReleaseAllAt(writer, lsn)
		for _, n := range names {
			if _, ok := m.TryLockDep(reader, n, S); !ok {
				panic("reader blocked on released lock")
			}
		}
		m.NoteStable(lsn + 1)
		m.ReleaseAll(reader)
	}
	// Warm freelists, map buckets, and the pending ring.
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("dep bookkeeping cycle allocates %.1f objects per run, want 0", avg)
	}
}
