// Package lock is the database lock manager of §4.1.2 and §4.2.2. Unlike
// latches (package latch), locks are held to transaction end (two-phase),
// are known to a deadlock detector, and include the paper's move lock:
//
//	"For page-oriented undo, a move lock is required that conflicts with
//	 non-commutative updates. ... Since reads do not require undo,
//	 concurrent reads can be tolerated. Hence, move locks are compatible
//	 with share mode locks. ... a move lock must be distinguished from a
//	 share lock. A transaction encountering a move lock on a sibling
//	 traversal does not schedule an index posting."
//
// Deadlocks among lock holders are detected with a waits-for graph and
// resolved by aborting the requester (ErrDeadlock). Latch-lock deadlocks
// are prevented by the No-Wait rule, which callers implement by releasing
// conflicting latches before calling Lock.
package lock

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/wal"
)

// Mode is a database lock mode.
type Mode int

const (
	// S is share mode.
	S Mode = iota
	// IX is intention-exclusive at page granularity: an updating
	// transaction holds IX on the leaf it changed (plus X on the record),
	// which is what a page-granule move lock must wait for. IX holders
	// tolerate each other and readers.
	IX
	// MV is the move lock: compatible with S (reads need no undo),
	// incompatible with IX (updaters), X and other MV.
	MV
	// X is exclusive mode.
	X
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case IX:
		return "IX"
	case MV:
		return "MV"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports whether a holder in mode a permits a holder in mode b.
func Compatible(a, b Mode) bool {
	switch {
	case a == S && b != X, b == S && a != X:
		return true
	case a == IX && b == IX:
		return true
	default:
		return false
	}
}

// stronger reports whether a subsumes b for upgrade purposes
// (S < IX < MV < X; upgrades only ever move up this chain).
func stronger(a, b Mode) bool { return a > b }

// ErrDeadlock reports that granting the request would complete a cycle in
// the waits-for graph; the requester should abort.
var ErrDeadlock = errors.New("lock: deadlock detected")

type holder struct {
	txn  wal.TxnID
	mode Mode
}

type waiter struct {
	txn     wal.TxnID
	mode    Mode
	upgrade bool
	ready   chan error // closed-with-value when granted or aborted
}

type lockState struct {
	holders []holder
	queue   []*waiter
}

// Manager is the lock manager. It is safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	// byTxn tracks every name a transaction holds, for ReleaseAll.
	byTxn map[wal.TxnID]map[string]struct{}
	// waitingOn maps a blocked transaction to the transactions it waits
	// for, for cycle detection.
	waitingOn map[wal.TxnID]map[wal.TxnID]struct{}

	waits     int64
	deadlocks int64
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:     make(map[string]*lockState),
		byTxn:     make(map[wal.TxnID]map[string]struct{}),
		waitingOn: make(map[wal.TxnID]map[wal.TxnID]struct{}),
	}
}

// Lock acquires name in mode for txn, blocking until granted. Re-requests
// are upgrades: the transaction ends up holding the stronger of its
// current and requested modes. Lock returns ErrDeadlock if waiting would
// close a waits-for cycle; the transaction must then abort.
func (m *Manager) Lock(txn wal.TxnID, name string, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[name]
	if ls == nil {
		ls = &lockState{}
		m.locks[name] = ls
	}

	cur, held := ls.holderMode(txn)
	if held && !stronger(mode, cur) {
		m.mu.Unlock()
		return nil // already held at sufficient strength
	}

	w := &waiter{txn: txn, mode: mode, upgrade: held, ready: make(chan error, 1)}
	if held {
		// Upgrades go to the head of the queue: the holder already
		// excludes conflicting newcomers, and queue-jumping bounds the
		// promotion wait.
		ls.queue = append([]*waiter{w}, ls.queue...)
	} else {
		ls.queue = append(ls.queue, w)
	}
	m.grantLocked(name, ls)

	select {
	case err := <-w.ready:
		m.mu.Unlock()
		return err
	default:
	}

	// We must wait. Record waits-for edges and check for a cycle.
	blockers := ls.blockersOf(w)
	if m.wouldDeadlock(txn, blockers) {
		ls.removeWaiter(w)
		m.deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	m.waitingOn[txn] = blockers
	m.waits++
	m.mu.Unlock()

	err := <-w.ready

	m.mu.Lock()
	delete(m.waitingOn, txn)
	m.mu.Unlock()
	return err
}

// holderMode returns txn's current mode on the lock.
func (ls *lockState) holderMode(txn wal.TxnID) (Mode, bool) {
	for _, h := range ls.holders {
		if h.txn == txn {
			return h.mode, true
		}
	}
	return 0, false
}

// blockersOf returns the set of transactions preventing w from being
// granted right now: incompatible holders plus earlier queued waiters.
func (ls *lockState) blockersOf(w *waiter) map[wal.TxnID]struct{} {
	out := make(map[wal.TxnID]struct{})
	for _, h := range ls.holders {
		if h.txn != w.txn && !Compatible(h.mode, w.mode) {
			out[h.txn] = struct{}{}
		}
	}
	for _, q := range ls.queue {
		if q == w {
			break
		}
		if q.txn != w.txn {
			out[q.txn] = struct{}{}
		}
	}
	return out
}

func (ls *lockState) removeWaiter(w *waiter) {
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// wouldDeadlock reports whether txn transitively waits for itself given
// the new blocker set. Caller holds m.mu.
func (m *Manager) wouldDeadlock(txn wal.TxnID, blockers map[wal.TxnID]struct{}) bool {
	seen := make(map[wal.TxnID]struct{})
	var visit func(t wal.TxnID) bool
	visit = func(t wal.TxnID) bool {
		if t == txn {
			return true
		}
		if _, ok := seen[t]; ok {
			return false
		}
		seen[t] = struct{}{}
		for next := range m.waitingOn[t] {
			if visit(next) {
				return true
			}
		}
		return false
	}
	for b := range blockers {
		if visit(b) {
			return true
		}
	}
	return false
}

// grantLocked grants queued waiters in FIFO order while they remain
// compatible with the holders, stopping at the first that is not (no
// overtaking, so writers are not starved). Caller holds m.mu.
func (m *Manager) grantLocked(name string, ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		compatible := true
		for _, h := range ls.holders {
			if h.txn == w.txn {
				continue
			}
			if !Compatible(h.mode, w.mode) {
				compatible = false
				break
			}
		}
		if !compatible {
			return
		}
		ls.queue = ls.queue[1:]
		if w.upgrade {
			for i := range ls.holders {
				if ls.holders[i].txn == w.txn {
					ls.holders[i].mode = w.mode
					break
				}
			}
		} else {
			ls.holders = append(ls.holders, holder{txn: w.txn, mode: w.mode})
			if m.byTxn[w.txn] == nil {
				m.byTxn[w.txn] = make(map[string]struct{})
			}
			m.byTxn[w.txn][name] = struct{}{}
		}
		w.ready <- nil
	}
}

// TryLock acquires name in mode for txn only if that needs no waiting, and
// reports whether it did (or already held it strongly enough).
func (m *Manager) TryLock(txn wal.TxnID, name string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[name]
	if ls == nil {
		ls = &lockState{}
		m.locks[name] = ls
	}
	cur, held := ls.holderMode(txn)
	if held && !stronger(mode, cur) {
		return true
	}
	if len(ls.queue) > 0 {
		return false
	}
	for _, h := range ls.holders {
		if h.txn != txn && !Compatible(h.mode, mode) {
			return false
		}
	}
	if held {
		for i := range ls.holders {
			if ls.holders[i].txn == txn {
				ls.holders[i].mode = mode
			}
		}
		return true
	}
	ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
	if m.byTxn[txn] == nil {
		m.byTxn[txn] = make(map[string]struct{})
	}
	m.byTxn[txn][name] = struct{}{}
	return true
}

// Unlock releases txn's hold on name before transaction end. Only safe
// for locks that are not needed for two-phase correctness (e.g. test
// scaffolding); transactions normally use ReleaseAll at commit or abort.
func (m *Manager) Unlock(txn wal.TxnID, name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.unlockLocked(txn, name)
}

func (m *Manager) unlockLocked(txn wal.TxnID, name string) {
	ls := m.locks[name]
	if ls == nil {
		return
	}
	for i, h := range ls.holders {
		if h.txn == txn {
			ls.holders = append(ls.holders[:i], ls.holders[i+1:]...)
			break
		}
	}
	if set := m.byTxn[txn]; set != nil {
		delete(set, name)
		if len(set) == 0 {
			delete(m.byTxn, txn)
		}
	}
	m.grantLocked(name, ls)
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, name)
	}
}

// ReleaseAll releases every lock txn holds, at commit or abort.
func (m *Manager) ReleaseAll(txn wal.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.byTxn[txn]
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	for _, name := range names {
		m.unlockLocked(txn, name)
	}
}

// HeldMode returns the mode txn holds on name, if any.
func (m *Manager) HeldMode(txn wal.TxnID, name string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[name]
	if ls == nil {
		return 0, false
	}
	return ls.holderMode(txn)
}

// MoveLocked reports whether ANY transaction holds a move lock on name. A
// traversal that crosses a sibling pointer calls this to honor "a
// transaction encountering a move lock ... does not schedule an index
// posting" (§4.2.2). The rule applies even to the moving transaction's
// own traversals: the posting must wait for its commit regardless of who
// notices the unposted sibling.
func (m *Manager) MoveLocked(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[name]
	if ls == nil {
		return false
	}
	for _, h := range ls.holders {
		if h.mode == MV {
			return true
		}
	}
	return false
}

// Stats returns the number of blocking waits and detected deadlocks.
func (m *Manager) Stats() (waits, deadlocks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits, m.deadlocks
}

// HeldCount returns how many locks txn currently holds.
func (m *Manager) HeldCount(txn wal.TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byTxn[txn])
}
