// Package lock is the database lock manager of §4.1.2 and §4.2.2. Unlike
// latches (package latch), locks are held to transaction end (two-phase),
// are known to a deadlock detector, and include the paper's move lock:
//
//	"For page-oriented undo, a move lock is required that conflicts with
//	 non-commutative updates. ... Since reads do not require undo,
//	 concurrent reads can be tolerated. Hence, move locks are compatible
//	 with share mode locks. ... a move lock must be distinguished from a
//	 share lock. A transaction encountering a move lock on a sibling
//	 traversal does not schedule an index posting."
//
// Deadlocks among lock holders are detected with a waits-for graph and
// resolved by aborting the requester (ErrDeadlock). Latch-lock deadlocks
// are prevented by the No-Wait rule, which callers implement by releasing
// conflicting latches before calling Lock.
//
// # Concurrency structure
//
// The manager is striped: lock names hash onto a fixed power-of-two array
// of stripes, each with its own mutex, lock table and per-transaction
// lock lists, so uncontended Lock/TryLock/Unlock/ReleaseAll on different
// names proceed in parallel (the transaction-side twin of the sharded
// buffer pool). A per-transaction stripe bitmask lets ReleaseAll visit
// only the stripes the transaction actually used.
//
// The waits-for graph lives in a separate detector component guarded by
// its own mutex, consulted only when a requester must actually block —
// the uncontended paths never touch it. The internal lock order is
// stripe.mu → detector.mu, and the detector never calls back into a
// stripe, so the manager's own mutexes cannot deadlock. Registering the
// new waiter's edges and running the cycle check atomically under
// detector.mu guarantees that when two transactions concurrently form a
// cycle across different stripes, the second one to register observes the
// first one's edges and aborts.
package lock

import (
	"errors"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// Mode is a database lock mode.
type Mode int

const (
	// S is share mode.
	S Mode = iota
	// IX is intention-exclusive at page granularity: an updating
	// transaction holds IX on the leaf it changed (plus X on the record),
	// which is what a page-granule move lock must wait for. IX holders
	// tolerate each other and readers.
	IX
	// MV is the move lock: compatible with S (reads need no undo),
	// incompatible with IX (updaters), X and other MV.
	MV
	// X is exclusive mode.
	X
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case IX:
		return "IX"
	case MV:
		return "MV"
	case X:
		return "X"
	default:
		return "Mode(?)"
	}
}

// Compatible reports whether a holder in mode a permits a holder in mode b.
func Compatible(a, b Mode) bool {
	switch {
	case a == S && b != X, b == S && a != X:
		return true
	case a == IX && b == IX:
		return true
	default:
		return false
	}
}

// stronger reports whether a subsumes b for upgrade purposes
// (S < IX < MV < X; upgrades only ever move up this chain).
func stronger(a, b Mode) bool { return a > b }

// ErrDeadlock reports that granting the request would complete a cycle in
// the waits-for graph; the requester should abort.
var ErrDeadlock = errors.New("lock: deadlock detected")

type holder struct {
	txn  wal.TxnID
	mode Mode
}

type waiter struct {
	txn     wal.TxnID
	mode    Mode
	upgrade bool
	dep     uint64        // lock's depLSN at grant time, published via ready
	ready   chan struct{} // buffered; receives when granted
}

type lockState struct {
	holders []holder
	queue   []*waiter
	// depLSN is the commit-dependency high water: the largest commit LSN
	// of any early-lock-release committer that released this lock while
	// its commit record was not yet stable. A transaction acquiring the
	// lock can observe that committer's state, so its own commit must not
	// be acknowledged before depLSN is in the log's stable prefix.
	depLSN uint64
	// retained marks an entry with no holders or waiters that is parked
	// on the stripe's pending list only because depLSN is still above the
	// stable prefix.
	retained bool
}

// holderMode returns txn's current mode on the lock.
func (ls *lockState) holderMode(txn wal.TxnID) (Mode, bool) {
	for _, h := range ls.holders {
		if h.txn == txn {
			return h.mode, true
		}
	}
	return 0, false
}

// grantableNow reports whether the request could be granted without
// queuing: an upgrade only needs the other holders to be compatible (it
// would jump the queue anyway); a fresh request must additionally find
// the queue empty (no overtaking, so writers are not starved).
func (ls *lockState) grantableNow(txn wal.TxnID, mode Mode, upgrade bool) bool {
	if !upgrade && len(ls.queue) > 0 {
		return false
	}
	for _, h := range ls.holders {
		if h.txn != txn && !Compatible(h.mode, mode) {
			return false
		}
	}
	return true
}

// blockersOf returns the set of transactions preventing w from being
// granted right now: incompatible holders plus earlier queued waiters.
func (ls *lockState) blockersOf(w *waiter) map[wal.TxnID]struct{} {
	out := make(map[wal.TxnID]struct{})
	for _, h := range ls.holders {
		if h.txn != w.txn && !Compatible(h.mode, w.mode) {
			out[h.txn] = struct{}{}
		}
	}
	for _, q := range ls.queue {
		if q == w {
			break
		}
		if q.txn != w.txn {
			out[q.txn] = struct{}{}
		}
	}
	return out
}

func (ls *lockState) removeWaiter(w *waiter) {
	for i, q := range ls.queue {
		if q == w {
			copy(ls.queue[i:], ls.queue[i+1:])
			ls.queue = ls.queue[:len(ls.queue)-1]
			return
		}
	}
}

// Freelist bounds, per stripe. Beyond these, retired objects go to the GC.
const (
	maxFreeStates = 64
	maxFreeNames  = 32
)

// stripe is one shard of the lock table. Counters are plain ints guarded
// by mu; StatsSnapshot aggregates them.
type stripe struct {
	mu    sync.Mutex
	locks map[Name]*lockState
	// byTxn lists every name a transaction holds in this stripe, for
	// ReleaseAll and HeldCount.
	byTxn map[wal.TxnID][]Name

	// freeStates and freeNames recycle lockState structs and name slices
	// so the steady-state acquire/release cycle does not allocate.
	freeStates []*lockState
	freeNames  [][]Name

	// pending holds names of retained dependency-only entries, in rough
	// park order; sweepPending prunes a bounded few per stripe visit once
	// the stable prefix passes their depLSN.
	pending []Name

	waits     int64
	deadlocks int64
	grants    int64

	_ [32]byte // keep neighboring stripe mutexes off one cache line
}

func (s *stripe) takeState() *lockState {
	if n := len(s.freeStates); n > 0 {
		ls := s.freeStates[n-1]
		s.freeStates = s.freeStates[:n-1]
		return ls
	}
	return &lockState{holders: make([]holder, 0, 4)}
}

func (s *stripe) takeNames() []Name {
	if n := len(s.freeNames); n > 0 {
		ns := s.freeNames[n-1]
		s.freeNames = s.freeNames[:n-1]
		return ns
	}
	return make([]Name, 0, 8)
}

func (s *stripe) recycleNames(ns []Name) {
	if len(s.freeNames) < maxFreeNames {
		s.freeNames = append(s.freeNames, ns[:0])
	}
}

// getState returns the lock state for name, creating it if absent.
// Caller holds s.mu.
func (s *stripe) getState(name Name) *lockState {
	ls, ok := s.locks[name]
	if !ok {
		ls = s.takeState()
		s.locks[name] = ls
	}
	return ls
}

// maybeFree retires an empty lock state — unless it still carries a
// commit dependency above the stable prefix, in which case the entry is
// parked on the stripe's pending list instead: a later acquirer must
// still find and inherit the dependency until stability passes it.
// Entries already parked are only ever freed by sweepPending, so a
// pending name can never alias a recycled state. Caller holds s.mu.
func (s *stripe) maybeFree(name Name, ls *lockState, stable uint64) {
	if len(ls.holders) != 0 || len(ls.queue) != 0 {
		return
	}
	if ls.depLSN != 0 && ls.depLSN >= stable {
		// The record at depLSN is stable only once depLSN < stable (the
		// stable point is one past the last durable byte).
		if !ls.retained {
			ls.retained = true
			s.pending = append(s.pending, name)
		}
		return
	}
	if ls.retained {
		return
	}
	s.freeState(name, ls)
}

// freeState deletes the entry and recycles the state struct. Caller
// holds s.mu; the entry must not be on the pending list.
func (s *stripe) freeState(name Name, ls *lockState) {
	delete(s.locks, name)
	if len(s.freeStates) < maxFreeStates {
		ls.holders = ls.holders[:0]
		ls.queue = ls.queue[:0]
		ls.depLSN = 0
		ls.retained = false
		s.freeStates = append(s.freeStates, ls)
	}
}

// sweepPending frees a bounded few parked dependency-only entries whose
// depLSN the stable prefix has passed. Entries park in roughly
// ascending depLSN order, so a still-pinned head ends the sweep early.
// An entry that was re-acquired while parked is unparked here and
// re-parks (or frees) on its next release. Caller holds s.mu.
func (s *stripe) sweepPending(stable uint64) {
	const sweepBatch = 4
	for n := 0; n < sweepBatch && len(s.pending) > 0; n++ {
		name := s.pending[0]
		ls, ok := s.locks[name]
		if ok && ls.depLSN != 0 && ls.depLSN >= stable && len(ls.holders) == 0 && len(ls.queue) == 0 {
			return
		}
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:len(s.pending)-1]
		if !ok {
			continue
		}
		ls.retained = false
		s.maybeFree(name, ls, stable)
	}
}

// addOwned records that txn now holds name in this stripe. Caller holds
// s.mu.
func (s *stripe) addOwned(txn wal.TxnID, name Name) {
	ns, ok := s.byTxn[txn]
	if !ok {
		ns = s.takeNames()
	}
	s.byTxn[txn] = append(ns, name)
}

// grantQueued grants queued waiters in FIFO order while they remain
// compatible with the holders, stopping at the first that is not (no
// overtaking, so writers are not starved). Caller holds s.mu.
func (s *stripe) grantQueued(name Name, ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		compatible := true
		for _, h := range ls.holders {
			if h.txn == w.txn {
				continue
			}
			if !Compatible(h.mode, w.mode) {
				compatible = false
				break
			}
		}
		if !compatible {
			return
		}
		copy(ls.queue, ls.queue[1:])
		ls.queue = ls.queue[:len(ls.queue)-1]
		if w.upgrade {
			for i := range ls.holders {
				if ls.holders[i].txn == w.txn {
					ls.holders[i].mode = w.mode
					break
				}
			}
		} else {
			ls.holders = append(ls.holders, holder{txn: w.txn, mode: w.mode})
			s.addOwned(w.txn, name)
		}
		s.grants++
		w.dep = ls.depLSN
		w.ready <- struct{}{}
	}
}

// releaseLocked drops txn's hold on name (if any) and wakes newly
// grantable waiters. It does NOT maintain byTxn; callers do, because
// Unlock removes one entry while ReleaseAll consumes the whole list.
// depLSN, if nonzero, is raised onto the entry first (an early-lock-
// release commit tagging its dependency). Caller holds s.mu.
func (s *stripe) releaseLocked(txn wal.TxnID, name Name, depLSN, stable uint64) {
	ls, ok := s.locks[name]
	if !ok {
		return
	}
	if depLSN > ls.depLSN && depLSN >= stable {
		ls.depLSN = depLSN
	}
	for i := range ls.holders {
		if ls.holders[i].txn == txn {
			last := len(ls.holders) - 1
			ls.holders[i] = ls.holders[last]
			ls.holders = ls.holders[:last]
			break
		}
	}
	s.grantQueued(name, ls)
	s.maybeFree(name, ls, stable)
}

// detector owns the waits-for graph. It is consulted only when a request
// must block; grants and releases never touch it. Lock order:
// stripe.mu → detector.mu (the detector never calls into a stripe).
type detector struct {
	mu sync.Mutex
	// waitingOn maps a blocked transaction to the transactions it waits
	// for, for cycle detection.
	waitingOn map[wal.TxnID]map[wal.TxnID]struct{}
}

// blockOrDetect atomically checks whether blocking txn on blockers would
// close a waits-for cycle, and if not, registers the edges. The
// registration and check are one critical section so that of two
// transactions concurrently completing a cycle, the second observes the
// first's edges and aborts.
func (d *detector) blockOrDetect(txn wal.TxnID, blockers map[wal.TxnID]struct{}) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[wal.TxnID]struct{})
	var visit func(t wal.TxnID) bool
	visit = func(t wal.TxnID) bool {
		if t == txn {
			return true
		}
		if _, ok := seen[t]; ok {
			return false
		}
		seen[t] = struct{}{}
		for next := range d.waitingOn[t] {
			if visit(next) {
				return true
			}
		}
		return false
	}
	for b := range blockers {
		if visit(b) {
			return ErrDeadlock
		}
	}
	d.waitingOn[txn] = blockers
	return nil
}

// clear removes txn's waits-for edges after its wait ends.
func (d *detector) clear(txn wal.TxnID) {
	d.mu.Lock()
	delete(d.waitingOn, txn)
	d.mu.Unlock()
}

// ownerShards is the size of the small hash table mapping a transaction
// to the bitmask of stripes it holds locks in.
const ownerShards = 16

type ownerShard struct {
	mu    sync.Mutex
	masks map[wal.TxnID]uint64
}

// Manager is the lock manager. It is safe for concurrent use.
type Manager struct {
	stripes    []stripe
	stripeMask uint64
	det        detector
	owners     [ownerShards]ownerShard

	// stable is the manager's view of the log's stable prefix (one past
	// the last durable byte), lifted by NoteStable. Dependencies at or
	// below it are already durable and never surface to acquirers.
	stable atomic.Uint64
}

// NoteStable lifts the manager's view of the log's stable prefix.
// Commit dependencies at or below lsn are durable: parked
// dependency-only entries below it become freeable and acquirers no
// longer inherit them.
func (m *Manager) NoteStable(lsn uint64) {
	for {
		cur := m.stable.Load()
		if lsn <= cur || m.stable.CompareAndSwap(cur, lsn) {
			return
		}
	}
}

// stripeCount picks a power of two near GOMAXPROCS, at least 8 (so
// striping is exercised even on small machines) and at most 64 (the
// per-transaction stripe mask is one uint64).
func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	c := 8
	for c < n && c < 64 {
		c <<= 1
	}
	return c
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	n := stripeCount()
	m := &Manager{
		stripes:    make([]stripe, n),
		stripeMask: uint64(n - 1),
	}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[Name]*lockState)
		m.stripes[i].byTxn = make(map[wal.TxnID][]Name)
	}
	m.det.waitingOn = make(map[wal.TxnID]map[wal.TxnID]struct{})
	for i := range m.owners {
		m.owners[i].masks = make(map[wal.TxnID]uint64)
	}
	return m
}

func (m *Manager) stripeIndex(name Name) uint64 {
	return name.stripeHash() & m.stripeMask
}

func (m *Manager) ownerShard(txn wal.TxnID) *ownerShard {
	return &m.owners[uint64(txn)&(ownerShards-1)]
}

// noteStripe marks stripe idx in txn's stripe mask. It is always called
// by the transaction's own goroutine (after its Lock/TryLock returns
// success), never while holding a stripe mutex, so the owner table never
// nests with stripe mutexes. ReleaseAll is ordered after every Lock call
// returns, so the bit is always set before it can matter.
func (m *Manager) noteStripe(txn wal.TxnID, idx uint64) {
	o := m.ownerShard(txn)
	o.mu.Lock()
	o.masks[txn] |= 1 << idx
	o.mu.Unlock()
}

// Lock acquires name in mode for txn, blocking until granted. Re-requests
// are upgrades: the transaction ends up holding the stronger of its
// current and requested modes. Lock returns ErrDeadlock if waiting would
// close a waits-for cycle; the transaction must then abort.
func (m *Manager) Lock(txn wal.TxnID, name Name, mode Mode) error {
	_, err := m.LockDep(txn, name, mode)
	return err
}

// LockDep is Lock returning, additionally, the lock's commit-dependency
// LSN: nonzero when an early-lock-release committer released this lock
// while its commit record (at that LSN) was not yet stable. The caller
// can now observe that committer's state and must not acknowledge its
// own commit before the dependency is stable. Dependencies the stable
// prefix already covers are filtered to zero.
func (m *Manager) LockDep(txn wal.TxnID, name Name, mode Mode) (uint64, error) {
	idx := m.stripeIndex(name)
	s := &m.stripes[idx]
	s.mu.Lock()
	ls := s.getState(name)

	cur, held := ls.holderMode(txn)
	if held && !stronger(mode, cur) {
		dep := ls.depLSN
		s.mu.Unlock()
		return m.filterDep(dep), nil // already held at sufficient strength
	}

	// Fast path: grantable immediately — no waiter, no channel, no
	// detector involvement.
	if ls.grantableNow(txn, mode, held) {
		if held {
			for i := range ls.holders {
				if ls.holders[i].txn == txn {
					ls.holders[i].mode = mode
					break
				}
			}
		} else {
			ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
			s.addOwned(txn, name)
		}
		s.grants++
		dep := ls.depLSN
		s.mu.Unlock()
		if !held {
			m.noteStripe(txn, idx)
		}
		return m.filterDep(dep), nil
	}

	// Slow path: enqueue, then consult the deadlock detector before
	// blocking. Upgrades go to the head of the queue: the holder already
	// excludes conflicting newcomers, and queue-jumping bounds the
	// promotion wait.
	w := &waiter{txn: txn, mode: mode, upgrade: held, ready: make(chan struct{}, 1)}
	if held {
		ls.queue = append(ls.queue, nil)
		copy(ls.queue[1:], ls.queue)
		ls.queue[0] = w
	} else {
		ls.queue = append(ls.queue, w)
	}

	blockers := ls.blockersOf(w)
	if err := m.det.blockOrDetect(txn, blockers); err != nil {
		ls.removeWaiter(w)
		s.deadlocks++
		s.maybeFree(name, ls, m.stable.Load())
		s.mu.Unlock()
		return 0, err
	}
	s.waits++
	s.mu.Unlock()

	<-w.ready
	m.det.clear(txn)
	if !held {
		m.noteStripe(txn, idx)
	}
	return m.filterDep(w.dep), nil
}

// filterDep drops a dependency the stable prefix already covers.
func (m *Manager) filterDep(dep uint64) uint64 {
	if dep != 0 && dep < m.stable.Load() {
		return 0
	}
	return dep
}

// TryLock acquires name in mode for txn only if that needs no waiting, and
// reports whether it did (or already held it strongly enough). Unlike
// Lock, a TryLock upgrade does not jump a non-empty queue: it simply
// fails, preserving the queue's no-overtaking guarantee.
func (m *Manager) TryLock(txn wal.TxnID, name Name, mode Mode) bool {
	_, ok := m.TryLockDep(txn, name, mode)
	return ok
}

// TryLockDep is TryLock returning, additionally, the lock's
// commit-dependency LSN on success (see LockDep).
func (m *Manager) TryLockDep(txn wal.TxnID, name Name, mode Mode) (uint64, bool) {
	idx := m.stripeIndex(name)
	s := &m.stripes[idx]
	s.mu.Lock()
	ls, ok := s.locks[name]
	if !ok {
		ls = s.takeState()
		s.locks[name] = ls
		ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
		s.addOwned(txn, name)
		s.grants++
		s.mu.Unlock()
		m.noteStripe(txn, idx)
		return 0, true
	}
	cur, held := ls.holderMode(txn)
	if held && !stronger(mode, cur) {
		dep := ls.depLSN
		s.mu.Unlock()
		return m.filterDep(dep), true
	}
	if len(ls.queue) > 0 {
		s.mu.Unlock()
		return 0, false
	}
	for _, h := range ls.holders {
		if h.txn != txn && !Compatible(h.mode, mode) {
			s.mu.Unlock()
			return 0, false
		}
	}
	if held {
		for i := range ls.holders {
			if ls.holders[i].txn == txn {
				ls.holders[i].mode = mode
				break
			}
		}
		s.grants++
		dep := ls.depLSN
		s.mu.Unlock()
		return m.filterDep(dep), true
	}
	ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
	s.addOwned(txn, name)
	s.grants++
	dep := ls.depLSN
	s.mu.Unlock()
	m.noteStripe(txn, idx)
	return m.filterDep(dep), true
}

// TryLockDepBatch acquires names in order for txn, stopping at the first
// name that would need waiting. Names mapping to the same stripe are
// granted under one acquisition of that stripe's mutex, so a sorted key
// batch whose record locks hash together pays one lock-manager
// interaction instead of one per key. Returns the maximum
// commit-dependency LSN across the granted names and the index of the
// first failure (-1 when every name was granted). Granted names are NOT
// rolled back on failure — the caller is two-phase and keeps them; a
// retry finds them on the already-held fast path.
func (m *Manager) TryLockDepBatch(txn wal.TxnID, names []Name, mode Mode) (uint64, int) {
	var maxDep uint64
	var visited uint64 // stripes already fully processed (≤64 stripes)
	for i := range names {
		idx := m.stripeIndex(names[i])
		if visited&(1<<idx) != 0 {
			continue
		}
		visited |= 1 << idx
		s := &m.stripes[idx]
		newHold := false
		fail := -1
		s.mu.Lock()
		for j := i; j < len(names); j++ {
			if m.stripeIndex(names[j]) != idx {
				continue
			}
			dep, granted, fresh := s.tryGrantLocked(txn, names[j], mode)
			if !granted {
				fail = j
				break
			}
			newHold = newHold || fresh
			if dep > maxDep {
				maxDep = dep
			}
		}
		s.mu.Unlock()
		// noteStripe only after dropping the stripe mutex (owner-table
		// discipline: it never nests with stripe mutexes).
		if newHold {
			m.noteStripe(txn, idx)
		}
		if fail >= 0 {
			return m.filterDep(maxDep), fail
		}
	}
	return m.filterDep(maxDep), -1
}

// tryGrantLocked is TryLockDep's grant logic for one name, run under the
// owning stripe's mutex. fresh reports that txn gained a hold it did not
// have before (the caller must noteStripe after unlocking). The returned
// dep is unfiltered.
func (s *stripe) tryGrantLocked(txn wal.TxnID, name Name, mode Mode) (dep uint64, granted, fresh bool) {
	ls, ok := s.locks[name]
	if !ok {
		ls = s.takeState()
		s.locks[name] = ls
		ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
		s.addOwned(txn, name)
		s.grants++
		return 0, true, true
	}
	cur, held := ls.holderMode(txn)
	if held && !stronger(mode, cur) {
		return ls.depLSN, true, false
	}
	if len(ls.queue) > 0 {
		return 0, false, false
	}
	for _, h := range ls.holders {
		if h.txn != txn && !Compatible(h.mode, mode) {
			return 0, false, false
		}
	}
	if held {
		for i := range ls.holders {
			if ls.holders[i].txn == txn {
				ls.holders[i].mode = mode
				break
			}
		}
		s.grants++
		return ls.depLSN, true, false
	}
	ls.holders = append(ls.holders, holder{txn: txn, mode: mode})
	s.addOwned(txn, name)
	s.grants++
	return ls.depLSN, true, true
}

// Unlock releases txn's hold on name before transaction end. Only safe
// for locks that are not needed for two-phase correctness (e.g. test
// scaffolding); transactions normally use ReleaseAll at commit or abort.
func (m *Manager) Unlock(txn wal.TxnID, name Name) {
	s := &m.stripes[m.stripeIndex(name)]
	s.mu.Lock()
	if ns, ok := s.byTxn[txn]; ok {
		for i := range ns {
			if ns[i] == name {
				last := len(ns) - 1
				ns[i] = ns[last]
				ns = ns[:last]
				break
			}
		}
		if len(ns) == 0 {
			delete(s.byTxn, txn)
			s.recycleNames(ns)
		} else {
			s.byTxn[txn] = ns
		}
	}
	st := m.stable.Load()
	s.sweepPending(st)
	s.releaseLocked(txn, name, 0, st)
	s.mu.Unlock()
	// The stripe-mask bit stays set; ReleaseAll tolerates stripes with no
	// remaining entries.
}

// ReleaseAll releases every lock txn holds, at commit or abort. It visits
// only the stripes the transaction used, guided by its stripe mask.
func (m *Manager) ReleaseAll(txn wal.TxnID) {
	m.releaseAll(txn, 0)
}

// ReleaseAllAt is ReleaseAll for an early-lock-release commit: the
// transaction's locks are released while its commit record (at
// commitLSN) is still only in the log buffer, and every released
// entry's depLSN high water is raised to commitLSN. Later acquirers
// inherit the dependency and must not be acknowledged before commitLSN
// is stable.
func (m *Manager) ReleaseAllAt(txn wal.TxnID, commitLSN uint64) {
	m.releaseAll(txn, commitLSN)
}

func (m *Manager) releaseAll(txn wal.TxnID, depLSN uint64) {
	o := m.ownerShard(txn)
	o.mu.Lock()
	mask := o.masks[txn]
	delete(o.masks, txn)
	o.mu.Unlock()

	st := m.stable.Load()
	for mask != 0 {
		idx := bits.TrailingZeros64(mask)
		mask &^= 1 << idx
		s := &m.stripes[idx]
		s.mu.Lock()
		s.sweepPending(st)
		if ns, ok := s.byTxn[txn]; ok {
			delete(s.byTxn, txn)
			for _, name := range ns {
				s.releaseLocked(txn, name, depLSN, st)
			}
			s.recycleNames(ns)
		}
		s.mu.Unlock()
	}
}

// HeldMode returns the mode txn holds on name, if any.
func (m *Manager) HeldMode(txn wal.TxnID, name Name) (Mode, bool) {
	s := &m.stripes[m.stripeIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.locks[name]
	if !ok {
		return 0, false
	}
	return ls.holderMode(txn)
}

// MoveLocked reports whether ANY transaction holds a move lock on name. A
// traversal that crosses a sibling pointer calls this to honor "a
// transaction encountering a move lock ... does not schedule an index
// posting" (§4.2.2). The rule applies even to the moving transaction's
// own traversals: the posting must wait for its commit regardless of who
// notices the unposted sibling.
func (m *Manager) MoveLocked(name Name) bool {
	s := &m.stripes[m.stripeIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.locks[name]
	if !ok {
		return false
	}
	for _, h := range ls.holders {
		if h.mode == MV {
			return true
		}
	}
	return false
}

// HeldCount returns how many locks txn currently holds.
func (m *Manager) HeldCount(txn wal.TxnID) int {
	o := m.ownerShard(txn)
	o.mu.Lock()
	mask := o.masks[txn]
	o.mu.Unlock()

	total := 0
	for mask != 0 {
		idx := bits.TrailingZeros64(mask)
		mask &^= 1 << idx
		s := &m.stripes[idx]
		s.mu.Lock()
		total += len(s.byTxn[txn])
		s.mu.Unlock()
	}
	return total
}

// PendingDeps returns how many dependency-only lock entries are parked
// awaiting stability, across all stripes (observability and tests).
func (m *Manager) PendingDeps() int {
	total := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		total += len(s.pending)
		s.mu.Unlock()
	}
	return total
}

// Stats returns the number of blocking waits and detected deadlocks.
func (m *Manager) Stats() (waits, deadlocks int64) {
	st := m.StatsSnapshot()
	return st.Waits, st.Deadlocks
}

// Grants returns the total number of lock grants so far; deltas around a
// workload demonstrate whether a code path locks at all.
func (m *Manager) Grants() int64 { return m.StatsSnapshot().Grants }

// StripeStats is one stripe's counters.
type StripeStats struct {
	Locks  int // live lock-table entries at snapshot time
	Waits  int64
	Grants int64
}

// ManagerStats is a consistent-enough snapshot of the manager's counters
// for observability; each stripe is sampled under its own mutex.
type ManagerStats struct {
	Stripes   int
	Waits     int64
	Deadlocks int64
	Grants    int64
	PerStripe []StripeStats
}

// StatsSnapshot samples every stripe's counters.
func (m *Manager) StatsSnapshot() ManagerStats {
	st := ManagerStats{
		Stripes:   len(m.stripes),
		PerStripe: make([]StripeStats, len(m.stripes)),
	}
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		st.PerStripe[i] = StripeStats{Locks: len(s.locks), Waits: s.waits, Grants: s.grants}
		st.Waits += s.waits
		st.Deadlocks += s.deadlocks
		st.Grants += s.grants
		s.mu.Unlock()
	}
	return st
}
