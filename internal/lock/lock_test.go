package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

func TestCompatibilityMatrix(t *testing.T) {
	want := map[[2]Mode]bool{
		{S, S}: true, {S, IX}: true, {S, MV}: true, {S, X}: false,
		{IX, S}: true, {IX, IX}: true, {IX, MV}: false, {IX, X}: false,
		{MV, S}: true, {MV, IX}: false, {MV, MV}: false, {MV, X}: false,
		{X, S}: false, {X, IX}: false, {X, MV}: false, {X, X}: false,
	}
	for pair, w := range want {
		if got := Compatible(pair[0], pair[1]); got != w {
			t.Errorf("Compatible(%v, %v) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
}

func TestSharedGrants(t *testing.T) {
	m := NewManager()
	for i := wal.TxnID(1); i <= 5; i++ {
		if err := m.Lock(i, "a", S); err != nil {
			t.Fatal(err)
		}
	}
	// A move lock is compatible with the readers.
	if err := m.Lock(6, "a", MV); err != nil {
		t.Fatal(err)
	}
	// An updater is not.
	if m.TryLock(7, "a", IX) {
		t.Fatal("IX granted alongside MV")
	}
	for i := wal.TxnID(1); i <= 6; i++ {
		m.ReleaseAll(i)
	}
	if !m.TryLock(7, "a", IX) {
		t.Fatal("IX not granted after releases")
	}
}

func TestBlockingAndFIFO(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", X); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Lock(wal.TxnID(i), "k", X); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			m.ReleaseAll(wal.TxnID(i))
		}(i)
		time.Sleep(10 * time.Millisecond) // establish queue order
	}
	m.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order = %v, want FIFO [2 3 4]", order)
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "k", S); err != nil {
		t.Fatal(err)
	}
	// 1 upgrades to X: must wait for 2.
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, "k", X) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another S holder exists")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.HeldMode(1, "k"); !ok || mode != X {
		t.Fatalf("mode = %v ok=%v, want X", mode, ok)
	}
	// Downgrade requests are no-ops.
	if err := m.Lock(1, "k", S); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.HeldMode(1, "k"); mode != X {
		t.Fatal("downgrade changed the held mode")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "b", X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// txn 1 waits for b (held by 2).
		if err := m.Lock(1, "b", X); err != nil {
			t.Errorf("txn 1: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// txn 2 requests a (held by 1): cycle, must be refused.
	err := m.Lock(2, "a", X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim aborts, releasing b; txn 1 proceeds.
	m.ReleaseAll(2)
	wg.Wait()
	m.ReleaseAll(1)
	if w, d := m.Stats(); d != 1 || w == 0 {
		t.Fatalf("stats waits=%d deadlocks=%d", w, d)
	}
}

func TestSelfUpgradeDeadlock(t *testing.T) {
	// Two IX holders both upgrading to MV on the same name is the
	// canonical move-lock deadlock; the second requester must be refused.
	m := NewManager()
	if err := m.Lock(1, "p", IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, "p", IX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, "p", MV) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Lock(2, "p", MV)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader: err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
	m.ReleaseAll(1)
}

func TestMoveLocked(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "p", MV); err != nil {
		t.Fatal(err)
	}
	if !m.MoveLocked("p") {
		t.Fatal("MoveLocked must see the holder")
	}
	if m.MoveLocked("q") {
		t.Fatal("MoveLocked on unlocked name")
	}
	m.ReleaseAll(1)
	if m.MoveLocked("p") {
		t.Fatal("MoveLocked after release")
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, "b", X); err != nil {
		t.Fatal(err)
	}
	var granted atomic.Int32
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if err := m.Lock(2, name, S); err == nil {
				granted.Add(1)
			}
		}(name)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted.Load() != 2 {
		t.Fatalf("granted = %d, want 2", granted.Load())
	}
	if m.HeldCount(1) != 0 || m.HeldCount(2) != 2 {
		t.Fatalf("held counts: %d %d", m.HeldCount(1), m.HeldCount(2))
	}
}

func TestTryLockQueueRespect(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, "k", S); err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = m.Lock(2, "k", X) // parks in queue
	}()
	time.Sleep(20 * time.Millisecond)
	// A TryLock S would be compatible with the holder but must not jump
	// the queued X waiter.
	if m.TryLock(3, "k", S) {
		t.Fatal("TryLock overtook a queued writer")
	}
	m.ReleaseAll(1)
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2)
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const workers = 8
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := wal.TxnID(w + 1)
			for i := 0; i < 200; i++ {
				name := names[(w+i)%len(names)]
				err := m.Lock(id, name, S)
				if err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if i%10 == 0 {
					// occasional exclusive; deadlock possible by design —
					// victims release and move on.
					if err := m.Lock(id, name, X); err != nil && !errors.Is(err, ErrDeadlock) {
						t.Errorf("upgrade: %v", err)
						return
					}
				}
				m.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
}
