package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// nm builds a record lock name for tests.
func nm(s string) Name { return KeyName(1, []byte(s)) }

func TestCompatibilityMatrix(t *testing.T) {
	want := map[[2]Mode]bool{
		{S, S}: true, {S, IX}: true, {S, MV}: true, {S, X}: false,
		{IX, S}: true, {IX, IX}: true, {IX, MV}: false, {IX, X}: false,
		{MV, S}: true, {MV, IX}: false, {MV, MV}: false, {MV, X}: false,
		{X, S}: false, {X, IX}: false, {X, MV}: false, {X, X}: false,
	}
	for pair, w := range want {
		if got := Compatible(pair[0], pair[1]); got != w {
			t.Errorf("Compatible(%v, %v) = %v, want %v", pair[0], pair[1], got, w)
		}
	}
}

func TestNames(t *testing.T) {
	if PageName(1, 7) == KeyName(1, []byte{7}) {
		t.Fatal("page and record namespaces must not collide on kind")
	}
	if PageName(1, 7) != PageName(1, 7) {
		t.Fatal("names must be comparable values")
	}
	if PageName(1, 7) == PageName(2, 7) {
		t.Fatal("distinct spaces must give distinct names")
	}
	if SpaceID("pitree", "t1") == SpaceID("pitree", "t2") {
		t.Fatal("space ids for distinct trees collided")
	}
	if SpaceID("ab", "c") == SpaceID("a", "bc") {
		t.Fatal("space id must separate class and name")
	}
	if PointName(1, 3, 4) == PointName(1, 4, 3) {
		t.Fatal("point name must distinguish coordinate order")
	}
}

func TestSharedGrants(t *testing.T) {
	m := NewManager()
	a := nm("a")
	for i := wal.TxnID(1); i <= 5; i++ {
		if err := m.Lock(i, a, S); err != nil {
			t.Fatal(err)
		}
	}
	// A move lock is compatible with the readers.
	if err := m.Lock(6, a, MV); err != nil {
		t.Fatal(err)
	}
	// An updater is not.
	if m.TryLock(7, a, IX) {
		t.Fatal("IX granted alongside MV")
	}
	for i := wal.TxnID(1); i <= 6; i++ {
		m.ReleaseAll(i)
	}
	if !m.TryLock(7, a, IX) {
		t.Fatal("IX not granted after releases")
	}
}

func TestBlockingAndFIFO(t *testing.T) {
	m := NewManager()
	k := nm("k")
	if err := m.Lock(1, k, X); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 2; i <= 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := m.Lock(wal.TxnID(i), k, X); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			m.ReleaseAll(wal.TxnID(i))
		}(i)
		time.Sleep(10 * time.Millisecond) // establish queue order
	}
	m.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order = %v, want FIFO [2 3 4]", order)
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager()
	k := nm("k")
	if err := m.Lock(1, k, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, k, S); err != nil {
		t.Fatal(err)
	}
	// 1 upgrades to X: must wait for 2.
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, k, X) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another S holder exists")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if mode, ok := m.HeldMode(1, k); !ok || mode != X {
		t.Fatalf("mode = %v ok=%v, want X", mode, ok)
	}
	// Downgrade requests are no-ops.
	if err := m.Lock(1, k, S); err != nil {
		t.Fatal(err)
	}
	if mode, _ := m.HeldMode(1, k); mode != X {
		t.Fatal("downgrade changed the held mode")
	}
}

// TestUpgradeQueueJump checks the promotion fairness rule: an upgrader
// goes to the head of the queue, ahead of earlier plain waiters, because
// the holder already excludes conflicting newcomers and queue-jumping
// bounds the promotion wait.
func TestUpgradeQueueJump(t *testing.T) {
	m := NewManager()
	k := nm("k")
	if err := m.Lock(1, k, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, k, S); err != nil {
		t.Fatal(err)
	}

	var order []int
	var mu sync.Mutex
	note := func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}

	// txn 3 queues first, wanting X (blocked by both S holders).
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := m.Lock(3, k, X); err != nil {
			t.Errorf("txn 3: %v", err)
			return
		}
		note(3)
		m.ReleaseAll(3)
	}()
	time.Sleep(20 * time.Millisecond)

	// txn 1 then upgrades S→X: queued behind 3 in arrival order, but the
	// upgrade must jump ahead of it.
	go func() {
		defer wg.Done()
		if err := m.Lock(1, k, X); err != nil {
			t.Errorf("txn 1 upgrade: %v", err)
			return
		}
		note(1)
		m.ReleaseAll(1)
	}()
	time.Sleep(20 * time.Millisecond)

	m.ReleaseAll(2) // drop the other S holder; upgrade becomes grantable
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("grant order = %v, want upgrade first [1 3]", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	a, b := nm("a"), nm("b")
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// txn 1 waits for b (held by 2).
		if err := m.Lock(1, b, X); err != nil {
			t.Errorf("txn 1: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// txn 2 requests a (held by 1): cycle, must be refused.
	err := m.Lock(2, a, X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim aborts, releasing b; txn 1 proceeds.
	m.ReleaseAll(2)
	wg.Wait()
	m.ReleaseAll(1)
	if w, d := m.Stats(); d != 1 || w == 0 {
		t.Fatalf("stats waits=%d deadlocks=%d", w, d)
	}
}

// TestCrossStripeDeadlock pins the two resources to different stripes
// (distinct page ids spread by the stripe hash) so the waits-for cycle
// spans stripes; the shared detector must still see it.
func TestCrossStripeDeadlock(t *testing.T) {
	m := NewManager()
	a, b := PageName(1, 1), PageName(1, 2)
	if m.stripeIndex(a) == m.stripeIndex(b) {
		// Extremely unlikely with ≥8 stripes and splitmix64, but keep the
		// test honest: find another pid on a different stripe.
		for pid := uint64(3); ; pid++ {
			b = PageName(1, pid)
			if m.stripeIndex(a) != m.stripeIndex(b) {
				break
			}
		}
	}
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, b, X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(1, b, X) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.Lock(2, a, X); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock across stripes", err)
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
}

func TestSelfUpgradeDeadlock(t *testing.T) {
	// Two IX holders both upgrading to MV on the same name is the
	// canonical move-lock deadlock; the second requester must be refused.
	m := NewManager()
	p := nm("p")
	if err := m.Lock(1, p, IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, p, IX); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, p, MV) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Lock(2, p, MV)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader: err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatalf("first upgrader: %v", err)
	}
	m.ReleaseAll(1)
}

// TestConcurrentMVUpgraders races pairs of move-lock upgraders on one
// name, in both flavors the matrix allows:
//
//   - S→MV: move locks are compatible with share locks, so concurrent
//     upgraders must serialize WITHOUT deadlock — each ends up holding MV
//     in turn.
//   - IX→MV: the T7 promotion conflict. MV conflicts with IX, so each
//     upgrader blocks on the other's IX; exactly one is refused with
//     ErrDeadlock (the victim aborts) and the survivor proceeds to MV.
func TestConcurrentMVUpgraders(t *testing.T) {
	m := NewManager()
	p := nm("p")
	var deadlocks atomic.Int64
	for round := 0; round < 50; round++ {
		t1 := wal.TxnID(2*round + 1)
		t2 := wal.TxnID(2*round + 2)
		base := S
		if round%2 == 1 {
			base = IX
		}
		if err := m.Lock(t1, p, base); err != nil {
			t.Fatal(err)
		}
		if err := m.Lock(t2, p, base); err != nil {
			t.Fatal(err)
		}
		var roundDeadlocks atomic.Int64
		var wg sync.WaitGroup
		for _, id := range []wal.TxnID{t1, t2} {
			wg.Add(1)
			go func(id wal.TxnID) {
				defer wg.Done()
				err := m.Lock(id, p, MV)
				if errors.Is(err, ErrDeadlock) {
					roundDeadlocks.Add(1)
					m.ReleaseAll(id) // victim aborts
					return
				}
				if err != nil {
					t.Errorf("txn %d: %v", id, err)
					return
				}
				if mode, ok := m.HeldMode(id, p); !ok || mode != MV {
					t.Errorf("txn %d: survivor holds %v, want MV", id, mode)
				}
				m.ReleaseAll(id)
			}(id)
		}
		wg.Wait()
		if base == S && roundDeadlocks.Load() != 0 {
			t.Fatalf("round %d: S→MV upgraders deadlocked; MV must be S-compatible", round)
		}
		if base == IX && roundDeadlocks.Load() != 1 {
			t.Fatalf("round %d: IX→MV upgraders saw %d deadlocks, want exactly 1",
				round, roundDeadlocks.Load())
		}
		deadlocks.Add(roundDeadlocks.Load())
		if m.MoveLocked(p) {
			t.Fatal("name still move-locked after round")
		}
	}
	if _, d := m.Stats(); d != deadlocks.Load() {
		t.Fatalf("manager counted %d deadlocks, test saw %d", d, deadlocks.Load())
	}
}

func TestMoveLocked(t *testing.T) {
	m := NewManager()
	p, q := nm("p"), nm("q")
	if err := m.Lock(1, p, MV); err != nil {
		t.Fatal(err)
	}
	if !m.MoveLocked(p) {
		t.Fatal("MoveLocked must see the holder")
	}
	if m.MoveLocked(q) {
		t.Fatal("MoveLocked on unlocked name")
	}
	m.ReleaseAll(1)
	if m.MoveLocked(p) {
		t.Fatal("MoveLocked after release")
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager()
	a, b := nm("a"), nm("b")
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, b, X); err != nil {
		t.Fatal(err)
	}
	var granted atomic.Int32
	var wg sync.WaitGroup
	for _, name := range []Name{a, b} {
		wg.Add(1)
		go func(name Name) {
			defer wg.Done()
			if err := m.Lock(2, name, S); err == nil {
				granted.Add(1)
			}
		}(name)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted.Load() != 2 {
		t.Fatalf("granted = %d, want 2", granted.Load())
	}
	if m.HeldCount(1) != 0 || m.HeldCount(2) != 2 {
		t.Fatalf("held counts: %d %d", m.HeldCount(1), m.HeldCount(2))
	}
}

func TestTryLockQueueRespect(t *testing.T) {
	m := NewManager()
	k := nm("k")
	if err := m.Lock(1, k, S); err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = m.Lock(2, k, X) // parks in queue
	}()
	time.Sleep(20 * time.Millisecond)
	// A TryLock S would be compatible with the holder but must not jump
	// the queued X waiter.
	if m.TryLock(3, k, S) {
		t.Fatal("TryLock overtook a queued writer")
	}
	m.ReleaseAll(1)
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(2)
}

// TestReleaseAllRacesTryLock hammers one set of names with transactions
// that TryLock a few and ReleaseAll, while others Lock and ReleaseAll.
// Run under -race this checks the striped fast paths, the owner-mask
// bookkeeping and the freelists against each other; afterwards every
// name must be free.
func TestReleaseAllRacesTryLock(t *testing.T) {
	m := NewManager()
	names := make([]Name, 16)
	for i := range names {
		names[i] = PageName(7, uint64(i))
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := wal.TxnID(w + 1)
			for i := 0; i < 500; i++ {
				if w%2 == 0 {
					for j := 0; j < 4; j++ {
						m.TryLock(id, names[(w+i+j)%len(names)], IX)
					}
				} else {
					name := names[(w+i)%len(names)]
					if err := m.Lock(id, name, S); err != nil && !errors.Is(err, ErrDeadlock) {
						t.Errorf("lock: %v", err)
						return
					}
				}
				m.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
	for i, name := range names {
		if m.MoveLocked(name) {
			t.Fatalf("name %d move-locked after quiesce", i)
		}
	}
	st := m.StatsSnapshot()
	for i, ps := range st.PerStripe {
		if ps.Locks != 0 {
			t.Fatalf("stripe %d has %d live lock entries after quiesce", i, ps.Locks)
		}
	}
	if st.Grants == 0 {
		t.Fatal("no grants counted")
	}
}

// TestUncontendedNoAllocs pins the zero-allocation guarantee of the
// uncontended Lock/TryLock/ReleaseAll cycle; the striped manager's
// freelists make the steady state allocation-free.
func TestUncontendedNoAllocs(t *testing.T) {
	m := NewManager()
	names := make([]Name, 8)
	for i := range names {
		names[i] = PageName(3, uint64(i))
	}
	const txn = wal.TxnID(9)
	// Warm the freelists and map buckets.
	for i := 0; i < 100; i++ {
		for _, n := range names {
			if err := m.Lock(txn, n, X); err != nil {
				t.Fatal(err)
			}
		}
		m.ReleaseAll(txn)
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, n := range names {
			_ = m.Lock(txn, n, X)
		}
		m.ReleaseAll(txn)
	})
	if avg != 0 {
		t.Fatalf("uncontended lock cycle allocates %.1f objects per run, want 0", avg)
	}
	avg = testing.AllocsPerRun(200, func() {
		for _, n := range names {
			m.TryLock(txn, n, IX)
		}
		m.ReleaseAll(txn)
	})
	if avg != 0 {
		t.Fatalf("uncontended trylock cycle allocates %.1f objects per run, want 0", avg)
	}
}

func TestStatsSnapshot(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, nm("a"), X); err != nil {
		t.Fatal(err)
	}
	st := m.StatsSnapshot()
	if st.Stripes != len(m.stripes) || len(st.PerStripe) != st.Stripes {
		t.Fatalf("snapshot shape: %+v", st)
	}
	if st.Grants != 1 {
		t.Fatalf("grants = %d, want 1", st.Grants)
	}
	live := 0
	for _, ps := range st.PerStripe {
		live += ps.Locks
	}
	if live != 1 {
		t.Fatalf("live locks = %d, want 1", live)
	}
	m.ReleaseAll(1)
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const workers = 8
	var wg sync.WaitGroup
	names := []Name{nm("a"), nm("b"), nm("c"), nm("d")}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := wal.TxnID(w + 1)
			for i := 0; i < 200; i++ {
				name := names[(w+i)%len(names)]
				err := m.Lock(id, name, S)
				if err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if i%10 == 0 {
					// occasional exclusive; deadlock possible by design —
					// victims release and move on.
					if err := m.Lock(id, name, X); err != nil && !errors.Is(err, ErrDeadlock) {
						t.Errorf("upgrade: %v", err)
						return
					}
				}
				m.ReleaseAll(id)
			}
		}(w)
	}
	wg.Wait()
}
