package lock

import "fmt"

// Name identifies a lockable resource as a packed value: a lock space
// (which tree or store the resource belongs to), a kind discriminant
// (page vs record vs point), and a 64-bit resource discriminant (a page
// id, or a fingerprint of a variable-length key). Names are comparable
// and hash without allocating, unlike the former string names which cost
// a fmt.Sprintf and a heap allocation per lock call.
//
// Record and point names fingerprint their keys with FNV-1a, so two
// distinct keys can collide onto one Name. A collision makes two records
// share one lock — false sharing, which can only over-serialize (extra
// blocking, a spurious conflict or deadlock abort), never under-lock, so
// two-phase locking and the move-lock protocol remain correct.
type Name struct {
	space uint32
	kind  uint8
	disc  uint64
}

// Lock-name kinds. Pages and records live in disjoint sub-namespaces even
// when a page id happens to equal a key fingerprint.
const (
	kindPage uint8 = iota + 1
	kindRecord
	kindPoint
)

// FNV constants (FNV-1a, 32- and 64-bit variants).
const (
	fnvOffset32 uint32 = 2166136261
	fnvPrime32  uint32 = 16777619
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// SpaceID derives a lock-space id from a class tag (e.g. "pitree") and an
// instance name (e.g. the tree name). Distinct trees get distinct spaces
// with high probability; a collision merges two lock namespaces, which is
// safe (false sharing only). Trees compute this once at construction.
func SpaceID(class, name string) uint32 {
	h := fnvOffset32
	for i := 0; i < len(class); i++ {
		h ^= uint32(class[i])
		h *= fnvPrime32
	}
	// Separator byte so ("ab","c") and ("a","bc") differ.
	h ^= 0xff
	h *= fnvPrime32
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= fnvPrime32
	}
	return h
}

// PageName names a page-granularity lock.
func PageName(space uint32, pid uint64) Name {
	return Name{space: space, kind: kindPage, disc: pid}
}

// KeyName names a record-granularity lock by key fingerprint.
func KeyName(space uint32, key []byte) Name {
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return Name{space: space, kind: kindRecord, disc: h}
}

// PointName names a record-granularity lock on a 2-D point.
func PointName(space uint32, x, y uint64) Name {
	h := fnvOffset64
	for s := 0; s < 64; s += 8 {
		h ^= (x >> s) & 0xff
		h *= fnvPrime64
	}
	for s := 0; s < 64; s += 8 {
		h ^= (y >> s) & 0xff
		h *= fnvPrime64
	}
	return Name{space: space, kind: kindPoint, disc: h}
}

// String renders the name for diagnostics and error messages. It
// allocates, so it stays off the lock fast path.
func (n Name) String() string {
	var k string
	switch n.kind {
	case kindPage:
		k = "p"
	case kindRecord:
		k = "r"
	case kindPoint:
		k = "pt"
	default:
		k = "?"
	}
	return fmt.Sprintf("%s:%08x:%x", k, n.space, n.disc)
}

// stripeHash spreads the name over stripes with a splitmix64-style
// finalizer; page ids are sequential, so the raw discriminant alone would
// clump onto a few stripes.
func (n Name) stripeHash() uint64 {
	z := n.disc ^ (uint64(n.space) << 24) ^ (uint64(n.kind) << 56)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
