// Package maint paces background structure maintenance — node
// consolidation, history reclamation, free-space recycling — against
// foreground load. The trees' lazy-completion workers ask the shared
// Governor for admission before each maintenance task; the governor
// spends a per-second budget of tasks, stretched when the buffer pool is
// under replacement pressure (the same signal the clock hands chase) and
// suspended entirely when the task queue grows past its high-water mark:
// a deep queue means the utilization signal is real and falling behind,
// at which point delaying merges only makes the backlog (and descent
// paths over half-empty nodes) worse.
package maint

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultHighWater is the queue depth above which pacing is bypassed.
const DefaultHighWater = 64

// maxPause bounds one admission wait so drains and shutdowns never stall
// behind the pacer.
const maxPause = 50 * time.Millisecond

// Governor is a token-bucket admission controller for maintenance work.
// The zero value and the nil pointer are valid, unpaced governors.
type Governor struct {
	budget int           // tasks per second; <= 0 means unpaced
	high   int           // queue depth that bypasses pacing
	press  func() float64 // foreground pressure 0..1; may be nil

	mu     sync.Mutex
	tokens float64
	last   time.Time

	admits    atomic.Int64
	throttled atomic.Int64
	bypasses  atomic.Int64
	waitNanos atomic.Int64
	depth     atomic.Int64
	maxDepth  atomic.Int64
}

// New returns a governor admitting at most budgetPerSec maintenance tasks
// per second (<= 0 for unpaced), bypassing pacing when the reported queue
// depth reaches highWater (<= 0 for DefaultHighWater). pressure, if
// non-nil, reports foreground pool pressure in [0, 1]; admission slows by
// up to 4x as it approaches 1.
func New(budgetPerSec, highWater int, pressure func() float64) *Governor {
	if highWater <= 0 {
		highWater = DefaultHighWater
	}
	return &Governor{budget: budgetPerSec, high: highWater, press: pressure, last: time.Now()}
}

// Admit blocks (briefly, bounded) until the caller may run one
// maintenance task. Safe on a nil governor.
func (g *Governor) Admit(queueDepth int) {
	if g == nil {
		return
	}
	g.noteDepth(queueDepth)
	g.admits.Add(1)
	if g.budget <= 0 {
		return
	}
	if queueDepth >= g.high {
		g.bypasses.Add(1)
		return
	}
	rate := float64(g.budget)
	if g.press != nil {
		if p := g.press(); p > 0 {
			if p > 1 {
				p = 1
			}
			rate /= 1 + 3*p
		}
	}
	g.mu.Lock()
	now := time.Now()
	g.tokens += now.Sub(g.last).Seconds() * rate
	g.last = now
	if g.tokens > float64(g.budget) {
		g.tokens = float64(g.budget) // at most one second of burst
	}
	if g.tokens >= 1 {
		g.tokens--
		g.mu.Unlock()
		return
	}
	wait := time.Duration((1 - g.tokens) / rate * float64(time.Second))
	g.tokens = 0
	g.mu.Unlock()
	if wait > maxPause {
		wait = maxPause
	}
	g.throttled.Add(1)
	g.waitNanos.Add(int64(wait))
	time.Sleep(wait)
}

func (g *Governor) noteDepth(d int) {
	g.depth.Store(int64(d))
	for {
		m := g.maxDepth.Load()
		if int64(d) <= m || g.maxDepth.CompareAndSwap(m, int64(d)) {
			return
		}
	}
}

// Stats is a snapshot of the governor's pacing behaviour.
type Stats struct {
	Admits     int64
	Throttled  int64
	Bypasses   int64
	WaitTotal  time.Duration
	QueueDepth int64
	MaxDepth   int64
}

// Stats snapshots the counters. Safe on a nil governor.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Admits:     g.admits.Load(),
		Throttled:  g.throttled.Load(),
		Bypasses:   g.bypasses.Load(),
		WaitTotal:  time.Duration(g.waitNanos.Load()),
		QueueDepth: g.depth.Load(),
		MaxDepth:   g.maxDepth.Load(),
	}
}
