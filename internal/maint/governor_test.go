package maint

import (
	"testing"
	"time"
)

func TestNilAndUnpacedAdmitImmediately(t *testing.T) {
	var g *Governor
	g.Admit(10) // must not panic
	g2 := New(0, 0, nil)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		g2.Admit(i)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("unpaced governor slept: %v", el)
	}
	if s := g2.Stats(); s.Admits != 1000 || s.Throttled != 0 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s := g2.Stats(); s.MaxDepth != 999 {
		t.Fatalf("max depth gauge = %d, want 999", s.MaxDepth)
	}
}

func TestBudgetThrottles(t *testing.T) {
	g := New(100, 1<<30, nil) // 100/s, high water unreachable
	start := time.Now()
	// Drain the initial burst plus a few paced admissions.
	for i := 0; i < 110; i++ {
		g.Admit(0)
	}
	el := time.Since(start)
	s := g.Stats()
	if s.Throttled == 0 {
		t.Fatalf("expected throttling past the burst; stats %+v after %v", s, el)
	}
}

func TestHighWaterBypassesPacing(t *testing.T) {
	g := New(1, 4, nil) // 1/s: pacing would be obvious
	start := time.Now()
	for i := 0; i < 200; i++ {
		g.Admit(10) // depth above high water
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("high-water admissions paced anyway: %v", el)
	}
	if s := g.Stats(); s.Bypasses == 0 {
		t.Fatalf("expected bypasses, stats %+v", s)
	}
}

func TestPressureStretchesPacing(t *testing.T) {
	calls := 0
	g := New(1000, 1<<30, func() float64 { calls++; return 1 })
	for i := 0; i < 10; i++ {
		g.Admit(0)
	}
	if calls == 0 {
		t.Fatal("pressure fn never consulted")
	}
}
