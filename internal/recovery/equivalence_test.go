package recovery

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// The equivalence oracle: randomized crash workloads recovered by the
// serial two-scan restart and by the parallel pipeline must agree — page
// images byte-identical after redo (repeating history is deterministic),
// page contents identical after undo (CLR LSNs depend on worker
// interleaving, so only the 8-byte pageLSN header may differ), and all
// ATT/DPT-derived stats equal. Run under -race this also exercises
// concurrent Adopt/RollbackLoser and the redo workers' pool traffic.

// buildWorkload drives a random mix of transactions, atomic actions,
// aborts, steals (FlushAll) and fuzzy checkpoints against e. Atomic
// actions mix counter updates with free-space-map traffic (page
// alloc/free), so every restart path replays KindMetaAlloc/Free records
// and their compensations — the records the space audit oracle checks.
func buildWorkload(rng *rand.Rand, e *env) {
	boot := e.tm.BeginAtomicAction()
	if err := e.store.Bootstrap(boot); err != nil {
		panic(err)
	}
	if err := boot.Commit(); err != nil {
		panic(err)
	}
	var active []*txn.Txn
	var owned []storage.PageID // pages durably allocated by committed AAs
	ops := 300 + rng.Intn(400)
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 12: // begin a user transaction
			if len(active) < 8 {
				active = append(active, e.tm.Begin())
			}
		case r < 18: // atomic action, committed or abandoned mid-flight
			aa := e.tm.BeginAtomicAction()
			var got []storage.PageID
			var gave []int
			if rng.Intn(3) == 0 { // space op instead of counter updates
				if len(owned) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(owned))
					if e.store.Free(aa, nil, owned[k]) == nil {
						gave = append(gave, k)
					}
				} else if pid, err := e.store.Alloc(aa, nil); err == nil {
					got = append(got, pid)
				}
			} else {
				for j := 0; j <= rng.Intn(2); j++ {
					e.add(aa, storage.PageID(2+rng.Intn(40)), int64(1+rng.Intn(99)))
				}
			}
			if rng.Intn(4) > 0 && aa.Commit() == nil {
				owned = append(owned, got...)
				for _, k := range gave {
					owned = append(owned[:k], owned[k+1:]...)
				}
			}
		case r < 70: // update under a random active transaction
			if len(active) > 0 {
				e.add(active[rng.Intn(len(active))], storage.PageID(2+rng.Intn(40)), int64(1+rng.Intn(99)))
			}
		case r < 82: // commit
			if len(active) > 0 {
				k := rng.Intn(len(active))
				_ = active[k].Commit()
				active = append(active[:k], active[k+1:]...)
			}
		case r < 88: // abort (rollback CLRs land in the log)
			if len(active) > 0 {
				k := rng.Intn(len(active))
				_ = active[k].Abort()
				active = append(active[:k], active[k+1:]...)
			}
		case r < 96: // steal: dirty pages (loser pages included) reach disk
			_, _ = e.pool.FlushAll()
		default: // fuzzy checkpoint
			_, _ = TakeCheckpoint(e.log, e.tm, e.pool)
		}
	}
	if rng.Intn(2) == 0 {
		e.log.ForceAll() // expose in-flight updates to the crash
	}
}

// pickCut chooses a random truncation point among the physically possible
// ones: the WAL protocol forces the log before a page is flushed, so a
// real crash can never pair a stable page with a log that lacks the
// records the page already reflects. Cuts below a stable pageLSN would
// fabricate such a state, and in it recovery outcomes legitimately depend
// on fresh CLR LSNs — not a divergence the oracle should flag.
func pickCut(rng *rand.Rand, e *env) wal.LSN {
	bounds := e.log.CrashImage(nil).Boundaries()
	maxStable := wal.NilLSN
	for _, pid := range e.pool.Disk().PageIDs() {
		if lsn, ok := e.pool.StablePageLSN(pid); ok && lsn > maxStable {
			maxStable = lsn
		}
	}
	lo := 0
	for lo < len(bounds)-1 && bounds[lo] <= maxStable {
		lo++ // first boundary past the newest stable page's last record
	}
	return bounds[lo+rng.Intn(len(bounds)-lo)]
}

type restartResult struct {
	stats    Stats
	redoDisk *storage.MemDisk // flushed right after AnalyzeAndRedo
	undoDisk *storage.MemDisk // flushed after UndoLosers
	space    SpaceImage       // audited space state of store 1
}

// runRestart recovers e's stable state truncated at cut with o, flushing
// and snapshotting the disk after each phase.
func runRestart(t *testing.T, e *env, cut wal.LSN, o Opts) restartResult {
	t.Helper()
	e2 := e.crash(&cut)
	p, err := AnalyzeAndRedoOpts(e2.log, e2.reg, o)
	if err != nil {
		t.Fatalf("analyze+redo (%+v): %v", o, err)
	}
	if _, err := e2.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	redoDisk := e2.pool.Disk().Snapshot()
	if err := p.UndoLosers(e2.tm); err != nil {
		t.Fatalf("undo (%+v): %v", o, err)
	}
	if _, err := e2.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Space audit: replay alloc/free traffic (including the undo pass's
	// CLRs) against the shadow alternation model, then cross-check the
	// shadow's final state with the free-space map recovery rebuilt.
	shadow, err := AuditSpace(e2.log.FullImage())
	if err != nil {
		t.Fatalf("space audit (%+v): %v", o, err)
	}
	if err := CheckSpace(shadow, e2.pool); err != nil {
		t.Fatalf("space check (%+v): %v", o, err)
	}
	return restartResult{stats: p.Stats, redoDisk: redoDisk, undoDisk: e2.pool.Disk().Snapshot(), space: shadow[1]}
}

func imageMap(d *storage.MemDisk) map[storage.PageID][]byte {
	m := make(map[storage.PageID][]byte, d.Len())
	for _, pid := range d.PageIDs() {
		img, _, _ := d.Read(pid)
		m[pid] = img
	}
	return m
}

// compareDisks requires the same page set with equal images; stripLSN
// drops the 8-byte pageLSN header from the comparison (undo phase).
func compareDisks(t *testing.T, label string, want, got *storage.MemDisk, stripLSN bool) {
	t.Helper()
	w, g := imageMap(want), imageMap(got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d stable pages vs %d", label, len(w), len(g))
	}
	for pid, wi := range w {
		gi, ok := g[pid]
		if !ok {
			t.Fatalf("%s: page %d missing", label, pid)
		}
		if stripLSN {
			if len(wi) < 8 || len(gi) < 8 {
				t.Fatalf("%s: page %d short image", label, pid)
			}
			wi, gi = wi[8:], gi[8:]
		}
		if !bytes.Equal(wi, gi) {
			t.Fatalf("%s: page %d images differ", label, pid)
		}
	}
}

func compareStats(t *testing.T, label string, want, got Stats) {
	t.Helper()
	type row struct {
		name string
		w, g int
	}
	for _, r := range []row{
		{"AnalyzedRecords", want.AnalyzedRecords, got.AnalyzedRecords},
		{"RedoneRecords", want.RedoneRecords, got.RedoneRecords},
		{"RedoSkipped", want.RedoSkipped, got.RedoSkipped},
		{"RedoStartLSN", int(want.RedoStartLSN), int(got.RedoStartLSN)},
		{"LoserTxns", want.LoserTxns, got.LoserTxns},
		{"LoserActions", want.LoserActions, got.LoserActions},
		{"WinnerTxns", want.WinnerTxns, got.WinnerTxns},
	} {
		if r.w != r.g {
			t.Fatalf("%s: %s = %d, serial oracle says %d", label, r.name, r.g, r.w)
		}
	}
}

func TestSerialParallelEquivalence(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	sawSpill, sawLosers, sawSkip := false, false, false
	sawAlloc, sawFree := false, false
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 3))
			e := newEnv(storage.NewDisk(), wal.New())
			buildWorkload(rng, e)
			cut := pickCut(rng, e)

			serial := runRestart(t, e, cut, Opts{Serial: true})
			sawLosers = sawLosers || serial.stats.LoserTxns+serial.stats.LoserActions > 1
			sawAlloc = sawAlloc || serial.space.Next > uint64(storage.MetaPage)+1
			sawFree = sawFree || len(serial.space.Free) > 0
			for _, o := range []Opts{
				{Workers: 1},                  // fused scan, inline apply
				{Workers: 4},                  // page-partitioned workers + concurrent undo
				{Workers: 4, PlanBudget: 200}, // forces the spill fallback on any non-trivial log
			} {
				par := runRestart(t, e, cut, o)
				label := fmt.Sprintf("workers=%d budget=%d", o.Workers, o.PlanBudget)
				compareStats(t, label, serial.stats, par.stats)
				compareDisks(t, label+" after redo", serial.redoDisk, par.redoDisk, false)
				compareDisks(t, label+" after undo", serial.undoDisk, par.undoDisk, true)
				sawSpill = sawSpill || par.stats.PlanSpilled
				sawSkip = sawSkip || par.stats.FetchSkippedPages > 0
			}
		})
	}
	if !sawSpill {
		t.Error("no seed exercised the plan-spill fallback")
	}
	if !sawLosers {
		t.Error("no seed produced losers; workload too tame to trust")
	}
	if !sawSkip {
		t.Error("no seed exercised the redo fetch-skip")
	}
	if !sawAlloc || !sawFree {
		t.Errorf("space traffic too tame to trust the audit: alloc=%v free=%v", sawAlloc, sawFree)
	}
}
