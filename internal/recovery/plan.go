package recovery

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/wal"
)

// pageKey identifies one page across stores.
type pageKey struct {
	store uint32
	page  uint64
}

// hash spreads pages across redo workers; the multiply-shift mix keeps
// sequentially allocated page IDs off the same worker.
func (k pageKey) hash() uint64 {
	h := k.page ^ uint64(k.store)<<32 ^ uint64(k.store)
	return (h * 0x9E3779B97F4A7C15) >> 17
}

// pagePlan is one page's slice of the redo plan: the ascending offsets of
// the update/CLR records at or past the page's recLSN — exactly the
// records the serial redo scan would apply to it.
type pagePlan struct {
	key  pageKey
	offs []wal.LSN
}

// redoPlan is the fused analysis scan's product. Memory is bounded: if
// the plan would exceed its budget it spills — planning stops, the pages
// are released, and restart falls back to the serial redo scan over the
// already-built dirty page table.
type redoPlan struct {
	pages   map[pageKey]*pagePlan
	records int
	bytes   int
	budget  int
	spilled bool
}

// pagePlanBytes approximates the fixed cost of one planned page (map
// entry, struct, slice header) for budget accounting.
const pagePlanBytes = 96

func newRedoPlan(budget int) *redoPlan {
	return &redoPlan{pages: make(map[pageKey]*pagePlan), budget: budget}
}

// add plans one record. A no-op after a spill.
func (pl *redoPlan) add(store uint32, page uint64, lsn wal.LSN) {
	pl.appendTo(pl.page(store, page), lsn)
}

// page returns (store,page)'s plan entry, creating it on first sight.
// Nil after a spill. Callers caching the pointer must drop it once
// pl.spilled flips: the pages map is released but a cached entry would
// keep accumulating invisibly.
func (pl *redoPlan) page(store uint32, page uint64) *pagePlan {
	if pl.spilled {
		return nil
	}
	k := pageKey{store: store, page: page}
	pp := pl.pages[k]
	if pp == nil {
		pp = &pagePlan{key: k}
		pl.pages[k] = pp
		pl.bytes += pagePlanBytes
	}
	return pp
}

// appendTo plans lsn on pp (from page). A no-op after a spill.
func (pl *redoPlan) appendTo(pp *pagePlan, lsn wal.LSN) {
	if pl.spilled || pp == nil {
		return
	}
	pp.offs = append(pp.offs, lsn)
	pl.records++
	pl.bytes += 8
	if pl.bytes > pl.budget {
		pl.spilled = true
		pl.pages = nil // release; the serial fallback re-derives everything
	}
}

// execute applies the plan: pages are hashed onto workers, each worker
// pins its page once and applies that page's records in LSN order through
// the batched registry path, prefetching upcoming pages through the pool.
// Page-oriented redo needs no cross-page order — repeating history is
// per-page (§4.3) — so workers never coordinate.
func (pl *redoPlan) execute(img *wal.Reader, reg *storage.Registry, workers int, st *Stats) error {
	if len(pl.pages) == 0 {
		return nil
	}
	if workers > len(pl.pages) {
		workers = len(pl.pages)
	}
	buckets := make([][]*pagePlan, workers)
	for k, pp := range pl.pages {
		w := int(k.hash() % uint64(workers))
		buckets[w] = append(buckets[w], pp)
	}
	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		firstErr     error
		skippedPages atomic.Int64
		skippedRecs  atomic.Int64
	)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue // hashing can leave a worker with no pages
		}
		// Deterministic per-worker order (and page-ID locality for the
		// prefetcher): map iteration order must not leak into fetch order.
		sort.Slice(bucket, func(i, j int) bool {
			a, b := bucket[i].key, bucket[j].key
			if a.store != b.store {
				return a.store < b.store
			}
			return a.page < b.page
		})
		wg.Add(1)
		go func(pages []*pagePlan) {
			defer wg.Done()
			sp, sr, err := redoWorker(img, reg, pages)
			skippedPages.Add(int64(sp))
			skippedRecs.Add(int64(sr))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(bucket)
	}
	wg.Wait()
	st.FetchSkippedPages = int(skippedPages.Load())
	st.FetchSkippedRecords = int(skippedRecs.Load())
	return firstErr
}

// prefetchAhead bounds how many pages a worker's prefetcher may run in
// front of the batch applier — enough to hide the read+decode, small
// enough not to thrash a bounded pool.
const prefetchAhead = 2

// coveredByDisk reports whether pid's stable image already reflects every
// planned record. Buffered frames only ever run ahead of the stable image
// (flushes write buffered state), so a covering stable image proves any
// buffered frame is covered too, and the page can be dropped from the
// plan without fetching it: the redo fetch-skip.
func coveredByDisk(pool *storage.Pool, pp *pagePlan) bool {
	lsn, ok := pool.StablePageLSN(storage.PageID(pp.key.page))
	return ok && lsn >= pp.offs[len(pp.offs)-1]
}

// redoWorker drains one worker's share of the plan: per page, one
// fetch-skip probe, then one batched apply of the page's records in LSN
// order. A companion goroutine prefetches upcoming pages through the pool
// so the apply path finds them buffered.
func redoWorker(img *wal.Reader, reg *storage.Registry, pages []*pagePlan) (skippedPages, skippedRecs int, err error) {
	tickets := make(chan struct{}, prefetchAhead)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for _, pp := range pages[1:] { // the worker fetches pages[0] itself immediately
			select {
			case tickets <- struct{}{}:
			case <-stop:
				return
			}
			if pool, perr := reg.Pool(pp.key.store); perr == nil && !coveredByDisk(pool, pp) {
				pool.Prefetch(storage.PageID(pp.key.page))
			}
		}
	}()

	var recs []wal.Record
	for i, pp := range pages {
		pool, perr := reg.Pool(pp.key.store)
		if perr != nil {
			return skippedPages, skippedRecs, perr
		}
		if coveredByDisk(pool, pp) {
			skippedPages++
			skippedRecs += len(pp.offs)
		} else {
			if cap(recs) < len(pp.offs) {
				recs = make([]wal.Record, len(pp.offs))
			}
			recs = recs[:len(pp.offs)]
			for j, off := range pp.offs {
				if rerr := img.RecordAtInto(off, &recs[j]); rerr != nil {
					return skippedPages, skippedRecs, fmt.Errorf("redo plan read at %d: %w", off, rerr)
				}
			}
			if _, aerr := reg.ApplyRedoBatch(pp.key.store, storage.PageID(pp.key.page), recs); aerr != nil {
				return skippedPages, skippedRecs, aerr
			}
		}
		if i < len(pages)-1 {
			// Release one prefetch ticket per processed page, keeping the
			// prefetcher at most prefetchAhead pages in front.
			select {
			case <-tickets:
			default:
			}
		}
	}
	return skippedPages, skippedRecs, nil
}
