// Package recovery implements restart after a crash: the classic
// analysis / redo / undo passes (repeating history, then rolling back
// losers with CLRs), which is one of the recovery methods the paper's
// atomic actions are designed to compose with (§4.3).
//
// The decisive property for the Π-tree is what restart does NOT do: it
// takes no special measures for interrupted structure changes (innovation
// 4). A crash between the node-split atomic action and the index-posting
// atomic action simply leaves the committed split in place — a well-formed
// intermediate state — and rolls back only actions that had not committed.
// The tree completes the change lazily during normal processing.
//
// Restart itself is parallel (DESIGN.md §7). The analysis scan doubles as
// a redo planner — it records, per dirty page, the offsets of the
// update/CLR records past that page's recLSN — so the log image is decoded
// once instead of twice, with zero payload copies. The plan is then
// executed by page-partitioned workers: redo is page-oriented, so LSN
// order matters only within a page and workers never coordinate. Losers
// are likewise independent (their surviving updates were protected by
// locks at the crash, and atomic-action compensations commute, §4.3), so
// undo drains them from a work queue, preserving backward order only
// within each transaction. The classic two-scan serial restart is kept
// behind Opts.Serial as the oracle the pipeline is equivalence-tested
// against and as the fallback when the redo plan outgrows its memory
// budget.
package recovery

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// AttEntry is one transaction-table row in a checkpoint.
type AttEntry struct {
	ID        wal.TxnID
	LastLSN   wal.LSN
	FirstLSN  wal.LSN // begin record; zero in images from before the field existed
	System    bool
	Committed bool
}

// Checkpoint is the fuzzy-checkpoint payload: the live transaction table
// and, per store, the dirty page table (page -> recLSN). StartLSN is the
// log end observed before the tables were snapshotted: records appended
// while the snapshot was being taken land between StartLSN and the
// checkpoint record itself, so analysis must scan from StartLSN or it
// would miss pages they dirtied. (Zero in images from before the field
// existed; analysis then falls back to the checkpoint record's LSN.)
type Checkpoint struct {
	StartLSN wal.LSN
	ATT      []AttEntry
	DPT      map[uint32]map[uint64]wal.LSN
	// MaxTxnID and ClockHW are the transaction-ID and version-clock high
	// waters at checkpoint time. Analysis raises them with what the scan
	// finds past StartLSN; together they let restart reseed ID allocation
	// and the trees' version clocks without replaying the whole log.
	// (Zero in images from before the fields existed — gob tolerates
	// missing fields — in which case the scan alone decides.)
	MaxTxnID wal.TxnID
	ClockHW  uint64
	// Space is the per-store free-space snapshot (high-water mark plus
	// free list) at checkpoint time. Like the DPT it is fuzzy: alloc/free
	// records appended between StartLSN and the checkpoint record may
	// already be reflected in it, so the space audit replays that window
	// idempotently and asserts ordering only past the checkpoint. (Nil in
	// images from before the field existed; the audit then replays from
	// the log's start.)
	Space map[uint32]SpaceImage
}

// SpaceImage is one store's space state inside a checkpoint.
type SpaceImage struct {
	Next uint64
	Free []uint64
}

func encodeCheckpoint(c *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// TakeCheckpoint writes a fuzzy checkpoint covering the given pools and
// the transaction manager's live table, forces it, and records it as the
// log's checkpoint anchor. It returns the checkpoint's LSN.
func TakeCheckpoint(log *wal.Log, tm *txn.Manager, pools ...*storage.Pool) (wal.LSN, error) {
	lsn, _, err := TakeCheckpointHorizon(log, tm, pools...)
	return lsn, err
}

// TakeCheckpointHorizon is TakeCheckpoint also returning the WAL recycle
// horizon this checkpoint establishes: the lowest LSN any future restart
// could need, min(StartLSN, every DPT recLSN, every active transaction's
// FirstLSN). Segments wholly below it are dead — analysis scans from
// StartLSN at the earliest, redo from the oldest recLSN, and undo walks
// no loser chain below its begin record. A zero FirstLSN (adopted loser
// of unknown origin) pins the horizon at NilLSN: no recycling.
func TakeCheckpointHorizon(log *wal.Log, tm *txn.Manager, pools ...*storage.Pool) (wal.LSN, wal.LSN, error) {
	c := Checkpoint{StartLSN: log.EndLSN(), DPT: make(map[uint32]map[uint64]wal.LSN)}
	c.MaxTxnID, c.ClockHW = tm.RecoveryBounds()
	horizon := c.StartLSN
	for _, e := range tm.SnapshotATT() {
		c.ATT = append(c.ATT, AttEntry{ID: e.ID, LastLSN: e.LastLSN, FirstLSN: e.FirstLSN, System: e.System, Committed: e.Committed})
		if e.FirstLSN == wal.NilLSN {
			horizon = wal.NilLSN
		} else if horizon != wal.NilLSN && e.FirstLSN < horizon {
			horizon = e.FirstLSN
		}
	}
	for _, p := range pools {
		dpt := make(map[uint64]wal.LSN)
		for pid, rec := range p.DirtyPages() {
			dpt[uint64(pid)] = rec
			if horizon != wal.NilLSN && rec != wal.NilLSN && rec < horizon {
				horizon = rec
			}
		}
		c.DPT[p.StoreID] = dpt
		if next, free, ok := p.SpaceSnapshot(); ok {
			img := SpaceImage{Next: uint64(next), Free: make([]uint64, len(free))}
			for i, pid := range free {
				img.Free[i] = uint64(pid)
			}
			if c.Space == nil {
				c.Space = make(map[uint32]SpaceImage)
			}
			c.Space[p.StoreID] = img
		}
	}
	payload, err := encodeCheckpoint(&c)
	if err != nil {
		return wal.NilLSN, wal.NilLSN, err
	}
	lsn := log.Append(&wal.Record{Type: wal.RecCheckpoint, Payload: payload})
	// The anchor is advanced only after the checkpoint record is stable;
	// an unforced anchor would point restart at a record that did not
	// survive.
	if err := log.Force(lsn); err != nil {
		return wal.NilLSN, wal.NilLSN, fmt.Errorf("recovery: checkpoint not stable: %w", err)
	}
	log.NoteCheckpoint(lsn)
	return lsn, horizon, nil
}

// Opts configures a restart.
type Opts struct {
	// Workers is the restart parallelism: the redo plan is partitioned
	// across this many workers by (store,page) hash, and the undo pass
	// rolls losers back from a queue drained by this many workers.
	// 0 means GOMAXPROCS.
	Workers int
	// Serial selects the classic two-scan restart: separate analysis and
	// redo passes over the log, records applied one at a time, losers
	// undone one after another in descending last-LSN order. It is the
	// oracle the parallel pipeline is equivalence-tested against, and the
	// path the spill fallback reuses.
	Serial bool
	// PlanBudget bounds the fused scan's in-memory redo plan in bytes
	// (~8 per planned record plus a per-page overhead). If the plan would
	// exceed it, planning stops and redo falls back to the serial scan
	// over the already-built dirty page table. 0 means 256 MiB.
	PlanBudget int
}

const defaultPlanBudget = 256 << 20

func (o Opts) withDefaults() Opts {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Serial {
		o.Workers = 1
	}
	if o.PlanBudget <= 0 {
		o.PlanBudget = defaultPlanBudget
	}
	return o
}

// Stats summarizes one restart.
type Stats struct {
	// AnalyzedRecords is the number of records scanned in analysis.
	AnalyzedRecords int
	// RedoneRecords is the number of update/CLR records whose effects
	// were (conditionally) reapplied.
	RedoneRecords int
	// RedoSkipped counts records filtered out by the dirty page table.
	RedoSkipped int
	// LoserTxns / LoserActions are rolled-back user transactions and
	// atomic actions.
	LoserTxns    int
	LoserActions int
	// WinnerTxns is the number of committed-but-unended transactions that
	// only needed their end records.
	WinnerTxns int
	// RedoStartLSN is where the serial redo scan begins (the earliest
	// recLSN in the final dirty page table); the fused path reports the
	// same value for comparability even though its plan already carries
	// exact per-page offsets.
	RedoStartLSN wal.LSN

	// Workers is the parallelism redo and undo ran with.
	Workers int
	// PlannedPages / PlannedRecords describe the fused scan's redo plan
	// (zero on the serial path and after a spill).
	PlannedPages   int
	PlannedRecords int
	// PlanSpilled reports that the plan exceeded Opts.PlanBudget and redo
	// fell back to the serial scan.
	PlanSpilled bool
	// FetchSkippedPages / FetchSkippedRecords count planned pages whose
	// stable image already covered every planned record and were dropped
	// from the plan without being fetched through the pool. Their records
	// still count as RedoneRecords — they were conditionally reapplied
	// with the condition false — keeping the counter comparable with the
	// serial path, where the pageLSN guard makes the same records no-ops.
	FetchSkippedPages   int
	FetchSkippedRecords int
	// AnalysisTime, RedoTime, UndoTime are per-phase wall times.
	AnalysisTime time.Duration
	RedoTime     time.Duration
	UndoTime     time.Duration

	// MaxTxnID is the largest transaction ID seen anywhere in the stable
	// log (checkpoint high water included); ClockHW is the largest version
	// timestamp any committer stamped into its commit record. Restart
	// seeds the transaction manager with both so new IDs and version
	// timestamps never collide with survivors.
	MaxTxnID wal.TxnID
	ClockHW  uint64
}

// recsPerSec returns n/d in records per second.
func recsPerSec(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// AnalysisRate and RedoRate are records/s for the two forward phases.
func (s Stats) AnalysisRate() float64 { return recsPerSec(s.AnalyzedRecords, s.AnalysisTime) }
func (s Stats) RedoRate() float64     { return recsPerSec(s.RedoneRecords, s.RedoTime) }

// Summary renders the restart's per-phase breakdown on one line for
// operational logs (pitree-verify prints it after every recovery).
func (s Stats) Summary() string {
	redo := fmt.Sprintf("redo %v (%d rec, %.2fM rec/s, %d workers",
		s.RedoTime.Round(time.Microsecond), s.RedoneRecords, s.RedoRate()/1e6, s.Workers)
	switch {
	case s.PlanSpilled:
		redo += ", plan spilled"
	case s.FetchSkippedPages > 0:
		redo += fmt.Sprintf(", %d pages fetch-skipped", s.FetchSkippedPages)
	}
	redo += ")"
	return fmt.Sprintf("analysis %v (%d rec, %.2fM rec/s) | %s | undo %v (%d losers, %d actions, %d winners)",
		s.AnalysisTime.Round(time.Microsecond), s.AnalyzedRecords, s.AnalysisRate()/1e6,
		redo,
		s.UndoTime.Round(time.Microsecond), s.LoserTxns, s.LoserActions, s.WinnerTxns)
}

type attState struct {
	lastLSN   wal.LSN
	system    bool
	committed bool
}

// Pending is the state between the redo and undo passes of a restart.
// Splitting the passes lets access methods re-open their trees (which
// needs the redone meta pages) before undo runs (which needs the trees
// bound when record undo is logical).
type Pending struct {
	// Stats accumulates across both phases.
	Stats   Stats
	losers  []pendingTxn
	workers int
}

type pendingTxn struct {
	id        wal.TxnID
	lastLSN   wal.LSN
	system    bool
	committed bool
}

// Restart performs full crash recovery: analysis, redo, undo. log must
// have been created with wal.NewFromImage over the crash image, so that
// the undo pass can read pre-crash records and append CLRs with
// continuous LSNs. reg must have all pools and handlers registered
// (exactly as during normal operation), and tm must be a fresh
// transaction manager over log, reg, and a fresh lock manager.
func Restart(log *wal.Log, reg *storage.Registry, tm *txn.Manager) (Stats, error) {
	return RestartOpts(log, reg, tm, Opts{})
}

// RestartOpts is Restart with explicit restart options.
func RestartOpts(log *wal.Log, reg *storage.Registry, tm *txn.Manager, o Opts) (Stats, error) {
	p, err := AnalyzeAndRedoOpts(log, reg, o)
	if err != nil {
		return p.Stats, err
	}
	if err := p.UndoLosers(tm); err != nil {
		return p.Stats, err
	}
	return p.Stats, nil
}

// AnalyzeAndRedo runs the analysis and redo passes with default options:
// it rebuilds the transaction and dirty page tables from the last stable
// checkpoint and repeats history so every page reflects exactly the
// stable log. The returned Pending carries the losers for UndoLosers.
func AnalyzeAndRedo(log *wal.Log, reg *storage.Registry) (*Pending, error) {
	return AnalyzeAndRedoOpts(log, reg, Opts{})
}

// AnalyzeAndRedoOpts is AnalyzeAndRedo with explicit restart options.
func AnalyzeAndRedoOpts(log *wal.Log, reg *storage.Registry, o Opts) (*Pending, error) {
	o = o.withDefaults()
	p := &Pending{workers: o.Workers}
	st := &p.Stats
	st.Workers = o.Workers
	img := log.FullImage()

	// --- Analysis (fused with redo planning unless Serial) ------------
	began := time.Now()
	att := make(map[wal.TxnID]*attState)
	dpt := make(map[uint32]map[uint64]wal.LSN) // store -> page -> recLSN
	scanFrom, err := loadCheckpoint(img, att, dpt, st)
	if err != nil {
		return p, err
	}
	var plan *redoPlan
	if !o.Serial {
		plan = newRedoPlan(o.PlanBudget)
	}
	analyze(img, att, dpt, scanFrom, plan, st)
	st.AnalysisTime = time.Since(began)

	// --- Redo: repeat history -----------------------------------------
	began = time.Now()
	st.RedoStartLSN = redoStart(img, dpt)
	if plan != nil && plan.spilled {
		// The plan outgrew its budget mid-scan. Analysis is complete, so
		// fall back to the classic redo scan over the final DPT; its skip
		// counting replaces the partial plan's.
		st.PlanSpilled = true
		st.RedoSkipped = 0
		plan = nil
	}
	var rerr error
	if plan != nil {
		st.PlannedPages = len(plan.pages)
		st.PlannedRecords = plan.records
		// Planned records are exactly those the serial redo scan would
		// apply; record the count up front — fetch-skipped pages still
		// count as conditionally reapplied (see Stats).
		st.RedoneRecords = plan.records
		rerr = plan.execute(img, reg, o.Workers, st)
	} else {
		rerr = redoScan(img, reg, dpt, st)
	}
	st.RedoTime = time.Since(began)
	if rerr != nil {
		return p, fmt.Errorf("recovery redo: %w", rerr)
	}

	// Collect losers sorted by descending last LSN, matching the single
	// backward scan of ARIES (our per-page compensations commute, but the
	// order keeps the log tidy and the behaviour canonical).
	ids := make([]wal.TxnID, 0, len(att))
	for id := range att {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return att[ids[i]].lastLSN > att[ids[j]].lastLSN })
	for _, id := range ids {
		e := att[id]
		p.losers = append(p.losers, pendingTxn{id: id, lastLSN: e.lastLSN, system: e.system, committed: e.committed})
	}
	return p, nil
}

// loadCheckpoint decodes the image's checkpoint anchor (if any) into att
// and dpt and returns where the analysis scan must begin.
func loadCheckpoint(img *wal.Reader, att map[wal.TxnID]*attState, dpt map[uint32]map[uint64]wal.LSN, st *Stats) (wal.LSN, error) {
	ckpt := img.CheckpointLSN()
	if ckpt == wal.NilLSN {
		return wal.NilLSN, nil
	}
	rec, err := img.Read(ckpt)
	if err != nil || rec.Type != wal.RecCheckpoint {
		return wal.NilLSN, fmt.Errorf("recovery: bad checkpoint anchor at %d: %v", ckpt, err)
	}
	c, err := decodeCheckpoint(rec.Payload)
	if err != nil {
		return wal.NilLSN, fmt.Errorf("recovery: decode checkpoint: %w", err)
	}
	st.MaxTxnID = c.MaxTxnID
	st.ClockHW = c.ClockHW
	for _, e := range c.ATT {
		att[e.ID] = &attState{lastLSN: e.LastLSN, system: e.System, committed: e.Committed}
	}
	for store, pages := range c.DPT {
		dpt[store] = make(map[uint64]wal.LSN, len(pages))
		for pid, rec := range pages {
			dpt[store][pid] = rec
		}
	}
	scanFrom := ckpt
	if c.StartLSN != wal.NilLSN && c.StartLSN < scanFrom {
		// The checkpoint is fuzzy: its tables were snapshotted some time
		// before the record itself was appended. Re-scan that window so
		// updates racing the snapshot still reach the ATT/DPT. Replaying
		// pre-snapshot records over the snapshot is harmless: it can only
		// add conservative DPT entries (redo is pageLSN-guarded) and the
		// ATT converges to the same rows.
		scanFrom = c.StartLSN
	}
	return scanFrom, nil
}

// analyze runs the analysis scan from scanFrom, mutating att and dpt in
// place. With plan non-nil it is the fused pass: every update/CLR at or
// past its page's recLSN is planned inline (the ones the serial redo scan
// would apply) and skips are counted exactly as the serial scan would
// count them, so the two paths report identical stats. The fused pass
// reads the image through the zero-copy scan; analysis retains no
// payloads.
func analyze(img *wal.Reader, att map[wal.TxnID]*attState, dpt map[uint32]map[uint64]wal.LSN,
	scanFrom wal.LSN, plan *redoPlan, st *Stats) {

	// minCkpt is the earliest recLSN carried in from the checkpoint DPT
	// (max LSN when it is empty). The serial redo scan starts at the
	// earliest recLSN of the *final* DPT, which is below scanFrom exactly
	// when a checkpoint-DPT page was dirtied before the checkpoint began.
	minCkpt := ^wal.LSN(0)
	for _, pages := range dpt {
		for _, rec := range pages {
			if rec < minCkpt {
				minCkpt = rec
			}
		}
	}

	if plan != nil && minCkpt < scanFrom {
		// Planning pre-scan over [minCkpt, scanFrom): the serial path's
		// redo scan re-reads this window for checkpoint-DPT pages; the
		// fused path reads it here, planning records at or past their
		// page's recLSN and counting the rest as skipped, exactly as the
		// serial scan would. Analysis stays off: the checkpoint tables
		// already summarize this prefix.
		img.ScanShared(minCkpt, func(rec *wal.Record) bool {
			if rec.LSN >= scanFrom {
				return false
			}
			if (rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR) || rec.PageID == uint64(storage.NilPage) {
				return true
			}
			if recLSN, ok := dpt[rec.StoreID][rec.PageID]; ok && rec.LSN >= recLSN {
				plan.add(rec.StoreID, rec.PageID, rec.LSN)
			} else {
				st.RedoSkipped++
			}
			return true
		})
	}

	// newState recycles attState structs freed by RecEnd: short
	// transactions (every atomic action) are born and ended inside one
	// scan, and without the freelist each costs a heap allocation on a
	// path that runs once per logged transaction.
	var free []*attState
	newState := func(s attState) *attState {
		if n := len(free); n > 0 {
			e := free[n-1]
			free = free[:n-1]
			*e = s
			return e
		}
		e := new(attState)
		*e = s
		return e
	}

	// anyAdded flips once analysis inserts a new DPT entry; from then on
	// (the scan is in ascending LSN order) the final redo start is at or
	// below the current position, so the serial redo scan would see — and
	// count — every subsequent filtered record.
	anyAdded := false
	// One-entry cache of the last planned page: updates arrive in long
	// same-page runs (consecutive inserts hit one leaf until it splits),
	// and a hit bypasses both the DPT lookup and the plan's map lookup.
	var (
		cValid  bool
		cStore  uint32
		cPage   uint64
		cRecLSN wal.LSN
		cPlan   *pagePlan
	)
	fn := func(rec *wal.Record) bool {
		st.AnalyzedRecords++
		if rec.TxnID > st.MaxTxnID {
			st.MaxTxnID = rec.TxnID
		}
		switch rec.Type {
		case wal.RecBegin:
			att[rec.TxnID] = newState(attState{lastLSN: rec.LSN, system: rec.IsSystem()})
		case wal.RecUpdate, wal.RecCLR:
			e := att[rec.TxnID]
			if e == nil {
				e = newState(attState{system: rec.IsSystem()})
				att[rec.TxnID] = e
			}
			e.lastLSN = rec.LSN
			if rec.PageID == uint64(storage.NilPage) {
				break
			}
			var recLSN wal.LSN
			if cValid && rec.StoreID == cStore && rec.PageID == cPage {
				recLSN = cRecLSN
			} else {
				m := dpt[rec.StoreID]
				if m == nil {
					m = make(map[uint64]wal.LSN)
					dpt[rec.StoreID] = m
				}
				var ok bool
				recLSN, ok = m[rec.PageID]
				if !ok {
					recLSN = rec.LSN
					m[rec.PageID] = recLSN
					anyAdded = true
				}
				cValid, cStore, cPage, cRecLSN, cPlan = true, rec.StoreID, rec.PageID, recLSN, nil
			}
			if plan == nil {
				break
			}
			if rec.LSN >= recLSN {
				if cPlan == nil {
					cPlan = plan.page(rec.StoreID, rec.PageID)
				}
				plan.appendTo(cPlan, rec.LSN)
				if plan.spilled {
					cValid, cPlan = false, nil
				}
			} else if rec.LSN >= minCkpt || anyAdded {
				// Count the skip only if the serial redo scan (starting
				// at the final DPT's earliest recLSN) would reach this
				// record and filter it.
				st.RedoSkipped++
			}
		case wal.RecDummyCLR, wal.RecAbort:
			e := att[rec.TxnID]
			if e == nil {
				e = newState(attState{system: rec.IsSystem()})
				att[rec.TxnID] = e
			}
			e.lastLSN = rec.LSN
		case wal.RecCommit:
			// Committers stamp their version timestamp into the commit
			// record; the running max reconstructs the clock high water
			// (records from before the stamp existed carry no payload).
			if len(rec.Payload) >= 8 {
				if cts := binary.LittleEndian.Uint64(rec.Payload); cts > st.ClockHW {
					st.ClockHW = cts
				}
			}
			if e := att[rec.TxnID]; e != nil {
				e.committed = true
				e.lastLSN = rec.LSN
			} else {
				att[rec.TxnID] = newState(attState{lastLSN: rec.LSN, system: rec.IsSystem(), committed: true})
			}
		case wal.RecEnd:
			if e := att[rec.TxnID]; e != nil {
				free = append(free, e)
				delete(att, rec.TxnID)
			}
		case wal.RecCheckpoint:
			// Snapshot already loaded if this was the anchor; a non-anchor
			// checkpoint record adds nothing.
		}
		return true
	}
	if plan != nil {
		img.ScanShared(scanFrom, fn)
	} else {
		img.Scan(scanFrom, func(rec wal.Record) bool { return fn(&rec) })
	}
}

// redoStart returns where the serial redo scan begins: the earliest
// recLSN in the final dirty page table, or the image end when nothing is
// dirty.
func redoStart(img *wal.Reader, dpt map[uint32]map[uint64]wal.LSN) wal.LSN {
	start := img.EndLSN()
	for _, pages := range dpt {
		for _, rec := range pages {
			if rec < start {
				start = rec
			}
		}
	}
	return start
}

// redoScan is the classic second pass: scan forward from the earliest
// recLSN, applying every update/CLR the dirty page table admits, one
// record at a time. The serial oracle and the spill fallback run it.
func redoScan(img *wal.Reader, reg *storage.Registry, dpt map[uint32]map[uint64]wal.LSN, st *Stats) error {
	var redoErr error
	img.Scan(st.RedoStartLSN, func(rec wal.Record) bool {
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			return true
		}
		if rec.PageID == uint64(storage.NilPage) {
			return true
		}
		pages := dpt[rec.StoreID]
		recLSN, dirty := pages[rec.PageID]
		if !dirty || rec.LSN < recLSN {
			st.RedoSkipped++
			return true
		}
		if err := reg.ApplyRedo(&rec); err != nil {
			redoErr = err
			return false
		}
		st.RedoneRecords++
		return true
	})
	return redoErr
}

// undoCounters accumulate the undo pass's outcomes; atomics so the
// parallel path folds them in without a lock.
type undoCounters struct {
	winners atomic.Int64
	txns    atomic.Int64
	actions atomic.Int64
}

// settleOne adopts one surviving transaction and settles it: winners get
// their end records, losers roll back with CLRs.
func settleOne(tm *txn.Manager, e pendingTxn, c *undoCounters) error {
	t := tm.Adopt(e.id, e.system, e.lastLSN)
	if e.committed {
		t.FinishRecovered()
		c.winners.Add(1)
		return nil
	}
	if err := t.RollbackLoser(); err != nil {
		return fmt.Errorf("recovery undo of txn %d: %w", e.id, err)
	}
	if e.system {
		c.actions.Add(1)
	} else {
		c.txns.Add(1)
	}
	return nil
}

// UndoLosers is the undo pass: committed-but-unended transactions get
// their end records; every other surviving transaction — user or atomic
// action — is rolled back with CLRs, which is exactly the all-or-nothing
// guarantee the paper's atomic actions rely on (§4.3).
//
// With restart parallelism above one, losers are settled by a pool of
// workers draining a queue. They are independent: each loser's surviving
// updates were protected by the locks it held at the crash (user
// transactions) or are structure changes whose compensations commute
// (atomic actions, §4.3), logical undo takes tree latches only, and CLRs
// interleave safely through the concurrent WAL. Backward order is
// preserved within each transaction — the only order undo requires.
func (p *Pending) UndoLosers(tm *txn.Manager) error {
	began := time.Now()
	st := &p.Stats
	// Seed ID allocation and the recovered clock high water (idempotent;
	// engine restarts seed earlier, before trees re-open) so adoption and
	// post-restart work never reuse a surviving ID or timestamp.
	tm.SeedRecovered(st.MaxTxnID, st.ClockHW)
	var c undoCounters
	defer func() {
		st.WinnerTxns += int(c.winners.Load())
		st.LoserTxns += int(c.txns.Load())
		st.LoserActions += int(c.actions.Load())
		st.UndoTime += time.Since(began)
		p.losers = nil
	}()

	workers := p.workers
	if workers > len(p.losers) {
		workers = len(p.losers)
	}
	if workers <= 1 {
		// Serial oracle path (and the trivial sizes): one backward pass
		// in descending last-LSN order, stopping at the first failure.
		for _, e := range p.losers {
			if err := settleOne(tm, e, &c); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	queue := make(chan pendingTxn)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range queue {
				if err := settleOne(tm, e, &c); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	// Feed in descending last-LSN order so the drain approximates the
	// canonical backward pass even though strict cross-loser order is not
	// required.
	for _, e := range p.losers {
		queue <- e
	}
	close(queue)
	wg.Wait()
	return firstErr
}
