// Package recovery implements restart after a crash: the classic
// analysis / redo / undo passes (repeating history, then rolling back
// losers with CLRs), which is one of the recovery methods the paper's
// atomic actions are designed to compose with (§4.3).
//
// The decisive property for the Π-tree is what restart does NOT do: it
// takes no special measures for interrupted structure changes (innovation
// 4). A crash between the node-split atomic action and the index-posting
// atomic action simply leaves the committed split in place — a well-formed
// intermediate state — and rolls back only actions that had not committed.
// The tree completes the change lazily during normal processing.
package recovery

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// AttEntry is one transaction-table row in a checkpoint.
type AttEntry struct {
	ID        wal.TxnID
	LastLSN   wal.LSN
	System    bool
	Committed bool
}

// Checkpoint is the fuzzy-checkpoint payload: the live transaction table
// and, per store, the dirty page table (page -> recLSN). StartLSN is the
// log end observed before the tables were snapshotted: records appended
// while the snapshot was being taken land between StartLSN and the
// checkpoint record itself, so analysis must scan from StartLSN or it
// would miss pages they dirtied. (Zero in images from before the field
// existed; analysis then falls back to the checkpoint record's LSN.)
type Checkpoint struct {
	StartLSN wal.LSN
	ATT      []AttEntry
	DPT      map[uint32]map[uint64]wal.LSN
}

func encodeCheckpoint(c *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCheckpoint(b []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// TakeCheckpoint writes a fuzzy checkpoint covering the given pools and
// the transaction manager's live table, forces it, and records it as the
// log's checkpoint anchor. It returns the checkpoint's LSN.
func TakeCheckpoint(log *wal.Log, tm *txn.Manager, pools ...*storage.Pool) (wal.LSN, error) {
	c := Checkpoint{StartLSN: log.EndLSN(), DPT: make(map[uint32]map[uint64]wal.LSN)}
	for _, e := range tm.SnapshotATT() {
		c.ATT = append(c.ATT, AttEntry{ID: e.ID, LastLSN: e.LastLSN, System: e.System, Committed: e.Committed})
	}
	for _, p := range pools {
		dpt := make(map[uint64]wal.LSN)
		for pid, rec := range p.DirtyPages() {
			dpt[uint64(pid)] = rec
		}
		c.DPT[p.StoreID] = dpt
	}
	payload, err := encodeCheckpoint(&c)
	if err != nil {
		return wal.NilLSN, err
	}
	lsn := log.Append(&wal.Record{Type: wal.RecCheckpoint, Payload: payload})
	// The anchor is advanced only after the checkpoint record is stable;
	// an unforced anchor would point restart at a record that did not
	// survive.
	if err := log.Force(lsn); err != nil {
		return wal.NilLSN, fmt.Errorf("recovery: checkpoint not stable: %w", err)
	}
	log.NoteCheckpoint(lsn)
	return lsn, nil
}

// Stats summarizes one restart.
type Stats struct {
	// AnalyzedRecords is the number of records scanned in analysis.
	AnalyzedRecords int
	// RedoneRecords is the number of update/CLR records whose effects
	// were (conditionally) reapplied.
	RedoneRecords int
	// RedoSkipped counts records filtered out by the dirty page table.
	RedoSkipped int
	// LoserTxns / LoserActions are rolled-back user transactions and
	// atomic actions.
	LoserTxns    int
	LoserActions int
	// WinnerTxns is the number of committed-but-unended transactions that
	// only needed their end records.
	WinnerTxns int
	// RedoStartLSN is where the redo scan began.
	RedoStartLSN wal.LSN
}

type attState struct {
	lastLSN   wal.LSN
	system    bool
	committed bool
}

// Pending is the state between the redo and undo passes of a restart.
// Splitting the passes lets access methods re-open their trees (which
// needs the redone meta pages) before undo runs (which needs the trees
// bound when record undo is logical).
type Pending struct {
	// Stats accumulates across both phases.
	Stats  Stats
	losers []pendingTxn
}

type pendingTxn struct {
	id        wal.TxnID
	lastLSN   wal.LSN
	system    bool
	committed bool
}

// Restart performs full crash recovery: analysis, redo, undo. log must
// have been created with wal.NewFromImage over the crash image, so that
// the undo pass can read pre-crash records and append CLRs with
// continuous LSNs. reg must have all pools and handlers registered
// (exactly as during normal operation), and tm must be a fresh
// transaction manager over log, reg, and a fresh lock manager.
func Restart(log *wal.Log, reg *storage.Registry, tm *txn.Manager) (Stats, error) {
	p, err := AnalyzeAndRedo(log, reg)
	if err != nil {
		return p.Stats, err
	}
	if err := p.UndoLosers(tm); err != nil {
		return p.Stats, err
	}
	return p.Stats, nil
}

// AnalyzeAndRedo runs the analysis and redo passes: it rebuilds the
// transaction and dirty page tables from the last stable checkpoint and
// repeats history so every page reflects exactly the stable log. The
// returned Pending carries the losers for UndoLosers.
func AnalyzeAndRedo(log *wal.Log, reg *storage.Registry) (*Pending, error) {
	p := &Pending{}
	st := &p.Stats
	img := log.FullImage()

	// --- Analysis ---------------------------------------------------
	att := make(map[wal.TxnID]*attState)
	dpt := make(map[uint32]map[uint64]wal.LSN) // store -> page -> recLSN
	scanFrom := wal.NilLSN

	if ckpt := img.CheckpointLSN(); ckpt != wal.NilLSN {
		rec, err := img.Read(ckpt)
		if err != nil || rec.Type != wal.RecCheckpoint {
			return p, fmt.Errorf("recovery: bad checkpoint anchor at %d: %v", ckpt, err)
		}
		c, err := decodeCheckpoint(rec.Payload)
		if err != nil {
			return p, fmt.Errorf("recovery: decode checkpoint: %w", err)
		}
		for _, e := range c.ATT {
			att[e.ID] = &attState{lastLSN: e.LastLSN, system: e.System, committed: e.Committed}
		}
		for store, pages := range c.DPT {
			dpt[store] = make(map[uint64]wal.LSN, len(pages))
			for pid, rec := range pages {
				dpt[store][pid] = rec
			}
		}
		scanFrom = ckpt
		if c.StartLSN != wal.NilLSN && c.StartLSN < scanFrom {
			// The checkpoint is fuzzy: its tables were snapshotted some time
			// before the record itself was appended. Re-scan that window so
			// updates racing the snapshot still reach the ATT/DPT. Replaying
			// pre-snapshot records over the snapshot is harmless: it can only
			// add conservative DPT entries (redo is pageLSN-guarded) and the
			// ATT converges to the same rows.
			scanFrom = c.StartLSN
		}
	}

	noteDirty := func(store uint32, page uint64, lsn wal.LSN) {
		if page == uint64(storage.NilPage) {
			return
		}
		m := dpt[store]
		if m == nil {
			m = make(map[uint64]wal.LSN)
			dpt[store] = m
		}
		if _, ok := m[page]; !ok {
			m[page] = lsn
		}
	}

	img.Scan(scanFrom, func(rec wal.Record) bool {
		st.AnalyzedRecords++
		switch rec.Type {
		case wal.RecBegin:
			att[rec.TxnID] = &attState{lastLSN: rec.LSN, system: rec.IsSystem()}
		case wal.RecUpdate, wal.RecCLR:
			e := att[rec.TxnID]
			if e == nil {
				e = &attState{system: rec.IsSystem()}
				att[rec.TxnID] = e
			}
			e.lastLSN = rec.LSN
			noteDirty(rec.StoreID, rec.PageID, rec.LSN)
		case wal.RecDummyCLR, wal.RecAbort:
			e := att[rec.TxnID]
			if e == nil {
				e = &attState{system: rec.IsSystem()}
				att[rec.TxnID] = e
			}
			e.lastLSN = rec.LSN
		case wal.RecCommit:
			if e := att[rec.TxnID]; e != nil {
				e.committed = true
				e.lastLSN = rec.LSN
			} else {
				att[rec.TxnID] = &attState{lastLSN: rec.LSN, system: rec.IsSystem(), committed: true}
			}
		case wal.RecEnd:
			delete(att, rec.TxnID)
		case wal.RecCheckpoint:
			// Snapshot already loaded if this was the anchor; a non-anchor
			// checkpoint record adds nothing.
		}
		return true
	})

	// --- Redo: repeat history from the earliest recLSN ----------------
	redoStart := img.EndLSN()
	for _, pages := range dpt {
		for _, rec := range pages {
			if rec < redoStart {
				redoStart = rec
			}
		}
	}
	if len(dpt) == 0 {
		redoStart = img.EndLSN() // nothing dirty: no redo needed
	}
	st.RedoStartLSN = redoStart

	var redoErr error
	img.Scan(redoStart, func(rec wal.Record) bool {
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			return true
		}
		if rec.PageID == uint64(storage.NilPage) {
			return true
		}
		pages := dpt[rec.StoreID]
		recLSN, dirty := pages[rec.PageID]
		if !dirty || rec.LSN < recLSN {
			st.RedoSkipped++
			return true
		}
		if err := reg.ApplyRedo(&rec); err != nil {
			redoErr = err
			return false
		}
		st.RedoneRecords++
		return true
	})
	if redoErr != nil {
		return p, fmt.Errorf("recovery redo: %w", redoErr)
	}

	// Collect losers sorted by descending last LSN, matching the single
	// backward scan of ARIES (our per-page compensations commute, but the
	// order keeps the log tidy and the behaviour canonical).
	ids := make([]wal.TxnID, 0, len(att))
	for id := range att {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return att[ids[i]].lastLSN > att[ids[j]].lastLSN })
	for _, id := range ids {
		e := att[id]
		p.losers = append(p.losers, pendingTxn{id: id, lastLSN: e.lastLSN, system: e.system, committed: e.committed})
	}
	return p, nil
}

// UndoLosers is the undo pass: committed-but-unended transactions get
// their end records; every other surviving transaction — user or atomic
// action — is rolled back with CLRs, which is exactly the all-or-nothing
// guarantee the paper's atomic actions rely on (§4.3).
func (p *Pending) UndoLosers(tm *txn.Manager) error {
	st := &p.Stats
	for _, e := range p.losers {
		t := tm.Adopt(e.id, e.system, e.lastLSN)
		if e.committed {
			t.FinishRecovered()
			st.WinnerTxns++
			continue
		}
		if err := t.RollbackLoser(); err != nil {
			return fmt.Errorf("recovery undo of txn %d: %w", e.id, err)
		}
		if e.system {
			st.LoserActions++
		} else {
			st.LoserTxns++
		}
	}
	p.losers = nil
	return nil
}
