package recovery

import (
	"encoding/binary"
	"testing"

	"repro/internal/lock"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// The counter fixture mirrors the one in package txn: pages hold a single
// int64 and records carry deltas, so recovered states are easy to assert.
const counterKind wal.Kind = 200

type counter struct{ v int64 }

type counterCodec struct{}

func (counterCodec) EncodePage(v any) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v.(*counter).v))
	return b[:], nil
}

func (counterCodec) DecodePage(b []byte) (any, error) {
	return &counter{v: int64(binary.LittleEndian.Uint64(b))}, nil
}

func delta(d int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d))
	return b[:]
}

func registerCounter(reg *storage.Registry) {
	reg.Register(counterKind, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			if f.Data == nil {
				f.Data = &counter{}
			}
			f.Data.(*counter).v += int64(binary.LittleEndian.Uint64(rec.Payload))
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			d := int64(binary.LittleEndian.Uint64(rec.Payload))
			return storage.Compensation{Kind: counterKind, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: delta(-d)}, nil
		},
	})
}

type env struct {
	log   *wal.Log
	reg   *storage.Registry
	tm    *txn.Manager
	pool  *storage.Pool
	store *storage.Store
}

func newEnv(disk storage.Disk, log *wal.Log) *env {
	reg := storage.NewRegistry()
	registerCounter(reg)
	storage.RegisterMetaHandlers(reg)
	tm := txn.NewManager(log, lock.NewManager(), reg, txn.Options{})
	pool := storage.NewPool(1, disk, log, counterCodec{}, 0)
	reg.AddPool(pool)
	return &env{log: log, reg: reg, tm: tm, pool: pool, store: &storage.Store{Pool: pool}}
}

func (e *env) add(t *txn.Txn, pid storage.PageID, d int64) {
	f, err := e.pool.FetchOrCreate(pid)
	if err != nil {
		panic(err)
	}
	f.Latch.AcquireX()
	if f.Data == nil {
		f.Data = &counter{}
	}
	lsn := t.LogUpdate(1, uint64(pid), counterKind, delta(d))
	f.Data.(*counter).v += d
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	e.pool.Unpin(f)
}

func (e *env) value(t testing.TB, pid storage.PageID) int64 {
	f, err := e.pool.FetchOrCreate(pid)
	if err != nil {
		t.Fatal(err)
	}
	defer e.pool.Unpin(f)
	if f.Data == nil {
		return 0
	}
	return f.Data.(*counter).v
}

// crash builds a restarted environment from e's stable state.
func (e *env) crash(truncateAt *wal.LSN) *env {
	img := e.log.CrashImage(truncateAt)
	return newEnv(e.pool.Disk().Snapshot(), wal.NewFromImage(img))
}

func TestRedoRebuildsFromEmptyDisk(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	tx := e.tm.Begin()
	e.add(tx, 5, 10)
	e.add(tx, 6, 20)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Nothing flushed: disk is empty; redo must recreate both pages.
	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	// The end record may trail the commit's force and be lost, in which
	// case restart re-ends the winner; either way nothing is undone.
	if st.RedoneRecords == 0 || st.LoserTxns != 0 || st.WinnerTxns > 1 {
		t.Fatalf("stats: %+v", st)
	}
	if e2.value(t, 5) != 10 || e2.value(t, 6) != 20 {
		t.Fatalf("recovered values: %d %d", e2.value(t, 5), e2.value(t, 6))
	}
}

func TestLoserRolledBack(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	tc := e.tm.Begin()
	e.add(tc, 5, 10)
	if err := tc.Commit(); err != nil {
		t.Fatal(err)
	}
	tl := e.tm.Begin()
	e.add(tl, 5, 100)
	e.add(tl, 6, 100)
	e.log.ForceAll() // loser's updates reach the stable log, then crash

	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoserTxns != 1 {
		t.Fatalf("losers = %d", st.LoserTxns)
	}
	if e2.value(t, 5) != 10 || e2.value(t, 6) != 0 {
		t.Fatalf("values after undo: %d %d", e2.value(t, 5), e2.value(t, 6))
	}
}

func TestLoserAtomicActionRolledBack(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	aa := e.tm.BeginAtomicAction()
	e.add(aa, 5, 7)
	e.log.ForceAll() // crash before the AA commits

	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoserActions != 1 {
		t.Fatalf("loser actions = %d", st.LoserActions)
	}
	if e2.value(t, 5) != 0 {
		t.Fatal("atomic action not all-or-nothing")
	}
}

func TestUnforcedAACommitLostEntirely(t *testing.T) {
	// Relative durability: an unforced AA commit may be lost wholesale,
	// which is fine because nothing durable can depend on it.
	e := newEnv(storage.NewDisk(), wal.New())
	aa := e.tm.BeginAtomicAction()
	e.add(aa, 5, 7)
	if err := aa.Commit(); err != nil {
		t.Fatal(err)
	}
	// No force at all: stable log is empty.
	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if e2.value(t, 5) != 0 {
		t.Fatal("unstable AA effects resurrected")
	}
	if st.AnalyzedRecords != 0 {
		t.Fatalf("analyzed %d records of an empty stable log", st.AnalyzedRecords)
	}
}

func TestCommittedButUnendedGetsEnd(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	tx := e.tm.Begin()
	e.add(tx, 5, 3)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Truncate right after the commit record: drop the end record.
	img := e.log.FullImage()
	var commitLSN wal.LSN
	var afterCommit wal.LSN
	img.Scan(wal.NilLSN, func(r wal.Record) bool {
		if r.Type == wal.RecCommit {
			commitLSN = r.LSN
		} else if commitLSN != wal.NilLSN && afterCommit == wal.NilLSN {
			afterCommit = r.LSN
		}
		return true
	})
	if afterCommit == wal.NilLSN {
		t.Fatal("no record after commit")
	}
	e2 := e.crash(&afterCommit)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.WinnerTxns != 1 {
		t.Fatalf("winners = %d", st.WinnerTxns)
	}
	if e2.value(t, 5) != 3 {
		t.Fatal("committed effect lost")
	}
}

func TestIdempotentRestart(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	tx := e.tm.Begin()
	e.add(tx, 5, 10)
	_ = tx.Commit()
	tl := e.tm.Begin()
	e.add(tl, 5, 99)
	e.log.ForceAll()

	// First restart.
	e2 := e.crash(nil)
	if _, err := Restart(e2.log, e2.reg, e2.tm); err != nil {
		t.Fatal(err)
	}
	if e2.value(t, 5) != 10 {
		t.Fatal("first restart wrong")
	}
	// Crash again immediately (including the restart's own CLRs) and
	// restart a second time: same result.
	e2.log.ForceAll()
	e3 := e2.crash(nil)
	if _, err := Restart(e3.log, e3.reg, e3.tm); err != nil {
		t.Fatal(err)
	}
	if e3.value(t, 5) != 10 {
		t.Fatal("second restart diverged")
	}
}

func TestCheckpointBoundsRedo(t *testing.T) {
	e := newEnv(storage.NewDisk(), wal.New())
	for i := 0; i < 20; i++ {
		tx := e.tm.Begin()
		e.add(tx, storage.PageID(10+i%3), 1)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Flush everything, then checkpoint: the DPT is empty, so restart
	// should redo (almost) nothing.
	e.pool.FlushAll()
	if _, err := TakeCheckpoint(e.log, e.tm, e.pool); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := e.tm.Begin()
		e.add(tx, 10, 1)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.RedoneRecords > 6 {
		t.Fatalf("redo did %d records; checkpoint should have bounded it", st.RedoneRecords)
	}
	if e2.value(t, 10) != 7+5 {
		t.Fatalf("page 10 = %d", e2.value(t, 10))
	}
}

func TestAnalysisSeesThroughCheckpoint(t *testing.T) {
	// A transaction active across a checkpoint must still be undone if
	// it never commits.
	e := newEnv(storage.NewDisk(), wal.New())
	tl := e.tm.Begin()
	e.add(tl, 5, 50)
	if _, err := TakeCheckpoint(e.log, e.tm, e.pool); err != nil {
		t.Fatal(err)
	}
	e.add(tl, 6, 60)
	e.log.ForceAll()

	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoserTxns != 1 {
		t.Fatalf("losers = %d", st.LoserTxns)
	}
	if e2.value(t, 5) != 0 || e2.value(t, 6) != 0 {
		t.Fatalf("values: %d %d", e2.value(t, 5), e2.value(t, 6))
	}
}

func TestFlushedLoserPagesUndone(t *testing.T) {
	// The hard ARIES case: a loser's dirty page reaches disk (steal),
	// so undo must compensate on the stable image.
	e := newEnv(storage.NewDisk(), wal.New())
	tl := e.tm.Begin()
	e.add(tl, 5, 42)
	e.pool.FlushAll() // steal: forces log, writes page
	e2 := e.crash(nil)
	st, err := Restart(e2.log, e2.reg, e2.tm)
	if err != nil {
		t.Fatal(err)
	}
	if st.LoserTxns != 1 {
		t.Fatalf("losers = %d", st.LoserTxns)
	}
	if e2.value(t, 5) != 0 {
		t.Fatalf("page 5 = %d after undo of flushed loser", e2.value(t, 5))
	}
}
