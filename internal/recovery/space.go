package recovery

// The free-space audit: an independent oracle over the stable log's
// space-management records. The persistent free-space map is replayed by
// ordinary redo like any other page state, but its correctness argument
// is global — a page must alternate strictly between allocated and free
// across the whole history, or recycling hands one page to two owners
// (double allocation) or resurrects freed state. AuditSpace replays the
// alloc/free records (updates AND the CLRs undo appends) against a shadow
// model that enforces exactly that alternation, independent of the meta
// page's own redo path; CheckSpace then closes the loop by comparing the
// shadow's final state with the free-space map recovery actually rebuilt.
// The serial-vs-parallel equivalence test and the torture harness run
// both after every restart.

import (
	"fmt"
	"sort"

	"repro/internal/storage"
	"repro/internal/wal"
)

// spaceShadow models one store's space state during the audit replay.
type spaceShadow struct {
	next   uint64
	free   map[uint64]bool
	seeded bool // formatted, or seeded from a checkpoint snapshot
}

func (s *spaceShadow) applyLoose(kind wal.Kind, pid uint64) {
	// Tolerant replay for the fuzzy checkpoint window: the record may
	// already be reflected in the snapshot, so apply idempotently.
	switch kind {
	case storage.KindMetaAlloc:
		delete(s.free, pid)
		if pid >= s.next {
			s.next = pid + 1
		}
	case storage.KindMetaFree:
		s.free[pid] = true
	}
}

func (s *spaceShadow) applyStrict(store uint32, lsn wal.LSN, kind wal.Kind, pid uint64) error {
	switch kind {
	case storage.KindMetaAlloc:
		switch {
		case s.free[pid]:
			delete(s.free, pid)
		case pid == s.next:
			s.next = pid + 1
		default:
			return fmt.Errorf("recovery: space audit: store %d lsn %d allocates page %d while it is allocated (next %d)",
				store, lsn, pid, s.next)
		}
	case storage.KindMetaFree:
		if pid >= s.next || s.free[pid] || pid == uint64(storage.MetaPage) {
			return fmt.Errorf("recovery: space audit: store %d lsn %d frees page %d which is not allocated (next %d, free %v)",
				store, lsn, pid, s.next, s.free[pid])
		}
		s.free[pid] = true
	}
	return nil
}

// AuditSpace scans the image's space records in LSN order and returns the
// final shadow state per store, or the first alloc/free ordering
// violation. When the image carries a checkpoint with a space snapshot,
// the shadow seeds from it and the scan starts at the checkpoint's
// StartLSN (the fuzzy window up to the checkpoint record replays
// tolerantly); otherwise the scan covers the whole image, which must then
// begin with the stores' format records.
func AuditSpace(img *wal.Reader) (map[uint32]SpaceImage, error) {
	shadows := make(map[uint32]*spaceShadow)
	scanFrom := wal.LSN(wal.NilLSN)
	strictFrom := wal.LSN(wal.NilLSN)

	if ckpt := img.CheckpointLSN(); ckpt != wal.NilLSN {
		rec, err := img.Read(ckpt)
		if err == nil && rec.Type == wal.RecCheckpoint {
			if c, err := decodeCheckpoint(rec.Payload); err == nil && c.Space != nil {
				for store, si := range c.Space {
					sh := &spaceShadow{next: si.Next, free: make(map[uint64]bool, len(si.Free)), seeded: true}
					for _, pid := range si.Free {
						sh.free[pid] = true
					}
					shadows[store] = sh
				}
				scanFrom = ckpt
				if c.StartLSN != wal.NilLSN && c.StartLSN < scanFrom {
					scanFrom = c.StartLSN
				}
				strictFrom = ckpt + 1 // past the checkpoint record itself
			}
		}
	}

	var verr error
	img.Scan(scanFrom, func(rec wal.Record) bool {
		if rec.Type != wal.RecUpdate && rec.Type != wal.RecCLR {
			return true
		}
		if rec.PageID != uint64(storage.MetaPage) {
			return true
		}
		switch rec.Kind {
		case storage.KindMetaFormat:
			shadows[rec.StoreID] = &spaceShadow{
				next:   uint64(storage.MetaPage) + 1,
				free:   make(map[uint64]bool),
				seeded: true,
			}
			return true
		case storage.KindMetaAlloc, storage.KindMetaFree:
		default:
			return true
		}
		pid, err := storage.DecodePID(rec.Payload)
		if err != nil {
			verr = fmt.Errorf("recovery: space audit: store %d lsn %d: %w", rec.StoreID, rec.LSN, err)
			return false
		}
		sh := shadows[rec.StoreID]
		if sh == nil {
			// Space records for a store with no format record and no
			// checkpoint snapshot: the image predates this store's
			// coverage, so track it tolerantly (nothing to assert against).
			sh = &spaceShadow{free: make(map[uint64]bool)}
			shadows[rec.StoreID] = sh
		}
		if !sh.seeded || rec.LSN < strictFrom {
			sh.applyLoose(rec.Kind, uint64(pid))
			return true
		}
		if err := sh.applyStrict(rec.StoreID, rec.LSN, rec.Kind, uint64(pid)); err != nil {
			verr = err
			return false
		}
		return true
	})
	if verr != nil {
		return nil, verr
	}

	out := make(map[uint32]SpaceImage, len(shadows))
	for store, sh := range shadows {
		if !sh.seeded {
			continue // partial view; final state is not meaningful
		}
		img := SpaceImage{Next: sh.next, Free: make([]uint64, 0, len(sh.free))}
		for pid := range sh.free {
			img.Free = append(img.Free, pid)
		}
		sort.Slice(img.Free, func(i, j int) bool { return img.Free[i] < img.Free[j] })
		out[store] = img
	}
	return out, nil
}

// CheckSpace compares an audit's final shadow state against the
// free-space map recovery actually rebuilt in each pool's meta page: the
// high-water marks must match and the free lists must hold the same page
// set. Pools without a meta page (or absent from the shadow) are skipped.
func CheckSpace(shadow map[uint32]SpaceImage, pools ...*storage.Pool) error {
	for _, p := range pools {
		want, ok := shadow[p.StoreID]
		if !ok {
			continue
		}
		next, free, ok := p.SpaceSnapshot()
		if !ok {
			return fmt.Errorf("recovery: space audit: store %d has space history but no recovered meta page", p.StoreID)
		}
		if uint64(next) != want.Next {
			return fmt.Errorf("recovery: space audit: store %d recovered high-water %d, shadow says %d", p.StoreID, next, want.Next)
		}
		if len(free) != len(want.Free) {
			return fmt.Errorf("recovery: space audit: store %d recovered %d free pages, shadow says %d", p.StoreID, len(free), len(want.Free))
		}
		set := make(map[uint64]bool, len(free))
		for _, pid := range free {
			set[uint64(pid)] = true
		}
		for _, pid := range want.Free {
			if !set[pid] {
				return fmt.Errorf("recovery: space audit: store %d free list is missing page %d", p.StoreID, pid)
			}
		}
	}
	return nil
}
