package spatial

// Consolidation of empty data nodes (Options.Reclaim).
//
// A data node whose points are all deleted is pure overhead: descents
// route through it, its parent carries a term for it, and its page stays
// allocated forever under pure CNS. The absorber reverses the split that
// created it: the delegator (the node whose sibling term references the
// victim) takes the victim's region back into its direct region, the
// victim's index term is removed from its parent, and the page goes to
// the store's free-space map — one atomic action, pre-image undo.
//
// Safety conditions, each re-verified under latches before the cut:
//
//  1. NEWEST DELEGATION: the victim is its delegator's LAST sibling term.
//     Delegations nest LIFO — each split halves the then-current direct
//     region — so only the newest term's rect unions with the direct
//     region to a rectangle (the exact pre-split region). Older victims
//     become absorbable as the ones delegated after them go first.
//  2. EMPTY: the victim has no points and no delegations of its own (a
//     sibling term in the victim would be stranded by the free).
//  3. SINGLE PARENT (§3.3): the victim's index term is not Clipped. A
//     clipped term marks a possibly multi-parent child, and the mark is
//     sticky, so an unclipped term seen under the parent's latch proves
//     exactly one parent references the victim. CanConsolidate is the
//     quiescent census form of the same test, used to pre-screen.
//  4. ROUTING SURVIVOR: some other term in the parent contains the
//     victim's rect, so points in the re-absorbed region keep a search
//     path (the delegator's own term qualifies: the victim's region was
//     split out of it, and term rects are never shrunk). The parent also
//     keeps at least one term — index nodes never go empty.
//  5. NO PENDING TASK: no completion task names the victim (tasks stay
//     in the pending set until done), and none can be newly scheduled:
//     scheduling requires reading the delegator's sibling term, which
//     the cut holds X until commit. A task scheduled from a stale
//     optimistic snapshot after the free is screened out by deadPages in
//     postTerm.
//
// Readers cannot be stranded on the victim: under Reclaim every latched
// traversal couples (Tree.step, RegionQuery's held-parent DFS) and the
// optimistic descent re-validates the source of its final edge, so a
// reader either holds the victim's latch — which the absorber's X
// acquisition waits out — or arrives after the cut and never sees the
// edge. The victim's own region is empty of data, so no reader loses
// results; it just routes through the delegator afterwards.
//
// Crash consistency: the three edits (absorb, term removal, free) are
// one atomic action — redo replays all, an incomplete action undoes all,
// so the page is free if and only if it is unlinked from both the
// sibling chain and the index.

import (
	"repro/internal/latch"
	"repro/internal/storage"
)

// absorbCand is one (delegator, victim) pair found by the scan.
type absorbCand struct {
	deleg, victim storage.PageID
}

// RunConsolidation sweeps the tree absorbing every reclaimable empty
// data node, repeating until a pass makes no progress (absorbing a
// victim exposes the delegation before it). Returns pages freed.
func (t *Tree) RunConsolidation() (int, error) {
	if !t.opts.Reclaim {
		return 0, nil
	}
	total := 0
	for {
		n, err := t.absorbPass()
		total += n
		if n == 0 || err != nil {
			return total, err
		}
	}
}

// absorbPass scans once for empty newest-delegated data nodes and tries
// to absorb each. Serialized by absorbMu: concurrent passes would race
// to absorb the same victim, and the loser's abort would restore state
// the winner already changed.
func (t *Tree) absorbPass() (int, error) {
	t.absorbMu.Lock()
	defer t.absorbMu.Unlock()

	cands, err := t.scanAbsorbCandidates()
	if err != nil {
		return 0, err
	}
	freed := 0
	for _, c := range cands {
		// §3.3 census pre-screen; the authoritative test is the Clipped
		// mark on the term, checked under the parent's latch.
		if ok, err := t.CanConsolidate(c.victim); err != nil {
			return freed, err
		} else if !ok {
			t.Stats.AbsorbMultiParent.Add(1)
			continue
		}
		n, err := t.absorbAction(c.deleg, c.victim)
		freed += n
		if err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// scanAbsorbCandidates walks every reachable node (one S latch at a
// time, cloning under it — CNS reading, same as the tsb GC scan) and
// collects delegators whose newest sibling is an empty data node.
// Everything is re-verified under latches before any cut, so a stale
// observation costs only a wasted attempt.
func (t *Tree) scanAbsorbCandidates() ([]absorbCand, error) {
	pool := t.store.Pool
	snap := func(pid storage.PageID) (*Node, error) {
		f, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		defer pool.Unpin(f)
		f.Latch.AcquireS()
		defer f.Latch.ReleaseS()
		n, ok := f.Data.(*Node)
		if !ok {
			return nil, nil
		}
		return n.clone(), nil
	}
	var cands []absorbCand
	seen := make(map[storage.PageID]bool)
	isEmptyData := func(pid storage.PageID) (bool, error) {
		n, err := snap(pid)
		if err != nil {
			return false, err
		}
		return n != nil && n.IsData() && len(n.Entries) == 0 && len(n.Sibs) == 0, nil
	}
	var visit func(pid storage.PageID) error
	visit = func(pid storage.PageID) error {
		if seen[pid] {
			return nil
		}
		seen[pid] = true
		cp, err := snap(pid)
		if err != nil {
			return err
		}
		if cp == nil {
			return nil
		}
		if ns := len(cp.Sibs); ns > 0 && cp.IsData() {
			newest := cp.Sibs[ns-1]
			if empty, err := isEmptyData(newest.Pid); err != nil {
				return err
			} else if empty {
				cands = append(cands, absorbCand{deleg: pid, victim: newest.Pid})
			}
		}
		for _, s := range cp.Sibs {
			if err := visit(s.Pid); err != nil {
				return err
			}
		}
		if !cp.IsData() {
			for _, e := range cp.Entries {
				if err := visit(e.Child); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := visit(t.root); err != nil {
		return nil, err
	}
	return cands, nil
}

// absorbAction performs one absorb as an atomic action, re-verifying
// every condition under latches (parent U→X at level 1, then delegator
// U→X, then victim X — descending rank order; promotions happen before
// any lower latch is taken, §4.1.1, so coupled readers drain downward).
// Returns 1 if the victim's page was freed, 0 if any screen failed.
func (t *Tree) absorbAction(delegPid, victimPid storage.PageID) (int, error) {
	freed := 0
	err := t.retryLoop(func() error {
		freed = 0
		o := t.newOp(nil)
		defer o.done()

		// The victim's sole parent lies on the search path of its term's
		// low corner: an unclipped term was never cut by its holder's
		// splits, so the rect sits inside the holder's direct region.
		// First read the rect from the delegator (unlatched screen).
		rect, ok, err := t.newestSibRect(delegPid, victimPid)
		if err != nil || !ok {
			return err
		}
		corner := Point{X: rect.X0, Y: rect.Y0}
		parent, err := t.descend(o, corner, 1, latch.U, false)
		if err != nil {
			return err
		}
		i, ok := parent.n.termFor(victimPid)
		if !ok {
			// Unposted (completion pending) or already elsewhere: defer.
			o.release(&parent)
			t.Stats.AbsorbDeferred.Add(1)
			return nil
		}
		term := parent.n.Entries[i]
		if term.Clipped {
			o.release(&parent)
			t.Stats.AbsorbMultiParent.Add(1)
			return nil
		}
		if len(parent.n.Entries) <= 1 {
			o.release(&parent)
			return nil
		}
		survivor := false
		for j, e := range parent.n.Entries {
			if j != i && e.Rect.ContainsRect(term.Rect) {
				survivor = true
				break
			}
		}
		if !survivor {
			o.release(&parent)
			t.Stats.AbsorbDeferred.Add(1)
			return nil
		}
		o.promote(&parent)

		deleg, err := o.acquire(delegPid, latch.U, 0)
		if err != nil {
			o.release(&parent)
			return err
		}
		ns := len(deleg.n.Sibs)
		if ns == 0 || deleg.n.Sibs[ns-1].Pid != victimPid || deleg.n.Sibs[ns-1].Rect != term.Rect || !deleg.n.IsData() {
			o.release(&deleg)
			o.release(&parent)
			return nil
		}
		// With the delegator still only U-latched no new task can commit a
		// read of its sibling term after this test... promotion to X comes
		// first, and scheduling from latched traversals needs the S latch
		// the X excludes. Tasks already scheduled (or running) are visible
		// in the pending set; stale-snapshot schedules after the free are
		// postTerm's deadPages problem.
		if t.comp.refsChild(victimPid) {
			o.release(&deleg)
			o.release(&parent)
			t.Stats.AbsorbDeferred.Add(1)
			return nil
		}
		o.promote(&deleg)

		victim, err := o.acquire(victimPid, latch.X, 0)
		if err != nil {
			o.release(&deleg)
			o.release(&parent)
			return err
		}
		if !victim.n.IsData() || len(victim.n.Entries) != 0 || len(victim.n.Sibs) != 0 {
			o.release(&victim)
			o.release(&deleg)
			o.release(&parent)
			return nil
		}

		aa := t.tm.BeginAtomicAction()
		fail := func(err error) error {
			o.release(&victim)
			o.release(&deleg)
			o.release(&parent)
			_ = aa.Abort()
			return err
		}
		pre := deleg.n.clone()
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(deleg.pid()), KindAbsorbSib, encAbsorbSib(pre))
		applyAbsorbSib(deleg.n)
		deleg.f.MarkDirty(lsn)
		lsn = aa.LogUpdate(t.store.Pool.StoreID, uint64(parent.pid()), KindRemoveTerm, encTerm(term))
		parent.n.Entries = append(parent.n.Entries[:i], parent.n.Entries[i+1:]...)
		parent.f.MarkDirty(lsn)
		if err := t.store.Free(aa, &o.tr, victimPid); err != nil {
			return fail(err)
		}
		if err := t.store.Pool.Probe(storage.FPConsolidate); err != nil {
			return fail(err)
		}
		cerr := aa.Commit()
		if cerr == nil {
			t.deadPages.Store(victimPid, struct{}{})
		}
		o.release(&victim)
		o.release(&deleg)
		o.release(&parent)
		if cerr != nil {
			return cerr
		}
		t.Stats.Absorbs.Add(1)
		freed = 1
		return nil
	})
	return freed, err
}

// newestSibRect reads (under a momentary S latch) the rect of deleg's
// newest sibling term, confirming it still references victim.
func (t *Tree) newestSibRect(delegPid, victimPid storage.PageID) (Rect, bool, error) {
	pool := t.store.Pool
	f, err := pool.Fetch(delegPid)
	if err != nil {
		return Rect{}, false, err
	}
	defer pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	n, ok := f.Data.(*Node)
	if !ok || len(n.Sibs) == 0 {
		return Rect{}, false, nil
	}
	s := n.Sibs[len(n.Sibs)-1]
	if s.Pid != victimPid {
		return Rect{}, false, nil
	}
	return s.Rect, true, nil
}
