package spatial

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/maint"
	"repro/internal/storage"
)

// fillPoints inserts count distinct random points, returning them in
// insertion order (deterministic given the seed).
func fillPoints(t testing.TB, fx *fixture, rng *rand.Rand, count int) []Point {
	t.Helper()
	seen := make(map[Point]bool, count)
	pts := make([]Point, 0, count)
	for len(pts) < count {
		p := randPoint(rng)
		if seen[p] {
			continue
		}
		seen[p] = true
		if err := fx.tree.Insert(nil, p, []byte(fmt.Sprintf("v%d", len(pts)))); err != nil {
			t.Fatalf("insert %v: %v", p, err)
		}
		pts = append(pts, p)
	}
	return pts
}

// TestAbsorbReclaimsEmptyNodes: deleting most points empties data nodes;
// with Reclaim on, consolidation absorbs them back into their delegators
// and frees their pages, later inserts recycle those pages, and searches
// through the shrunken tree stay correct.
func TestAbsorbReclaimsEmptyNodes(t *testing.T) {
	opts := smallOpts()
	opts.Reclaim = true
	fx := newFixture(t, opts)
	rng := rand.New(rand.NewSource(17))
	pts := fillPoints(t, fx, rng, 300)
	if fx.mustVerify(t).DataNodes < 4 {
		t.Fatal("too few splits to exercise absorption")
	}

	const keep = 10
	for _, p := range pts[keep:] {
		if err := fx.tree.Delete(nil, p); err != nil {
			t.Fatalf("delete %v: %v", p, err)
		}
	}
	fx.tree.DrainCompletions()
	if _, err := fx.tree.RunConsolidation(); err != nil {
		t.Fatalf("consolidation: %v", err)
	}
	if fx.tree.Stats.Absorbs.Load() == 0 {
		t.Fatal("no empty nodes were absorbed")
	}
	st, err := fx.tree.store.SpaceStats()
	if err != nil {
		t.Fatalf("space stats: %v", err)
	}
	if st.Freed == 0 || st.FreeLen == 0 {
		t.Fatalf("absorption freed no pages: %+v", st)
	}
	fx.mustVerify(t) // partition + free-vs-reachable cross-checks
	for i, p := range pts[:keep] {
		v, ok, err := fx.tree.Search(nil, p)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("survivor %v: %q ok=%v err=%v", p, v, ok, err)
		}
	}
	for _, p := range pts[keep:] {
		if _, ok, err := fx.tree.Search(nil, p); err != nil || ok {
			t.Fatalf("deleted point %v resurfaced: ok=%v err=%v", p, ok, err)
		}
	}

	// Refilling must split into recycled pages before extending the store.
	fillPoints(t, fx, rng, 300)
	st2, err := fx.tree.store.SpaceStats()
	if err != nil {
		t.Fatalf("space stats: %v", err)
	}
	if st2.Recycled == 0 {
		t.Fatal("refill splits did not recycle freed pages")
	}
	fx.mustVerify(t)
}

// TestAbsorbBoundsStoreGrowth: repeated fill/drain cycles allocate fewer
// pages with Reclaim on than off.
func TestAbsorbBoundsStoreGrowth(t *testing.T) {
	alloc := func(reclaim bool) int64 {
		opts := smallOpts()
		opts.Reclaim = reclaim
		fx := newFixture(t, opts)
		rng := rand.New(rand.NewSource(23))
		for cycle := 0; cycle < 4; cycle++ {
			pts := fillPoints(t, fx, rng, 200)
			for _, p := range pts {
				if err := fx.tree.Delete(nil, p); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
			fx.tree.DrainCompletions()
			if _, err := fx.tree.RunConsolidation(); err != nil {
				t.Fatalf("consolidation: %v", err)
			}
		}
		fx.mustVerify(t)
		pages, err := fx.tree.store.AllocatedPages()
		if err != nil {
			t.Fatalf("allocated pages: %v", err)
		}
		return pages
	}
	with, without := alloc(true), alloc(false)
	if with >= without {
		t.Fatalf("reclaim did not bound growth: %d pages with, %d without", with, without)
	}
}

// TestAbsorbCrashMidAction: a crash between the page free and the commit
// of an absorb action must undo the whole action — region restored to the
// delegator, term restored to the parent, page back in the allocated set
// — so recovery verifies and consolidation finishes the job afterwards.
func TestAbsorbCrashMidAction(t *testing.T) {
	inj := fault.New(0xA5B)
	opts := smallOpts()
	opts.Reclaim = true
	e := engine.New(engine.Options{Injector: inj})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "points", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fx := &fixture{e: e, b: b, tree: tree}

	rng := rand.New(rand.NewSource(31))
	pts := fillPoints(t, fx, rng, 300)
	fx.mustVerify(t)
	const keep = 5
	for _, p := range pts[keep:] {
		if err := fx.tree.Delete(nil, p); err != nil {
			t.Fatalf("delete %v: %v", p, err)
		}
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	// The third page free inside the consolidation sweep crashes.
	inj.Arm(storage.FPConsolidate, fault.Spec{Kind: fault.Transient, After: 2, Crash: true})
	if _, err := fx.tree.RunConsolidation(); err == nil {
		t.Fatal("armed consolidation failpoint never fired")
	}
	if !inj.Crashed() {
		t.Fatal("crash latch not tripped")
	}

	fx.e.Opts.Injector = nil
	fx2 := fx.crashRestart(t)
	fx2.mustVerify(t)
	for i, p := range pts {
		v, ok, err := fx2.tree.Search(nil, p)
		if err != nil {
			t.Fatalf("search %v after recovery: %v", p, err)
		}
		if i >= keep {
			if ok {
				t.Fatalf("deleted point %v resurfaced after recovery", p)
			}
		} else if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("surviving point %v after recovery: %q ok=%v", p, v, ok)
		}
	}

	// The victim whose absorb was interrupted is still empty and still
	// linked; consolidation resumes and reclaims it now.
	if _, err := fx2.tree.RunConsolidation(); err != nil {
		t.Fatalf("consolidation after recovery: %v", err)
	}
	if fx2.tree.Stats.Absorbs.Load() == 0 {
		t.Fatal("no absorption after recovery")
	}
	st2, err := fx2.tree.store.SpaceStats()
	if err != nil {
		t.Fatalf("space stats: %v", err)
	}
	if st2.Freed == 0 {
		t.Fatal("no pages freed after recovery")
	}
	fx2.mustVerify(t)
}

// TestAbsorbConcurrentChurn: async completion, a pacing governor, and two
// writer goroutines inserting and deleting disjoint point sets while
// background absorption runs. The §3.3 screens (clipped terms, pending
// tasks) must keep the tree verifiable throughout.
func TestAbsorbConcurrentChurn(t *testing.T) {
	opts := smallOpts()
	opts.Reclaim = true
	opts.SyncCompletion = false
	opts.Governor = maint.New(100000, 4, nil)
	fx := newFixture(t, opts)

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(41 + w)))
			for cycle := 0; cycle < 3; cycle++ {
				var mine []Point
				for len(mine) < 150 {
					p := randPoint(rng)
					err := fx.tree.Insert(nil, p, []byte{byte(w)})
					if err == ErrPointExists {
						continue
					}
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					mine = append(mine, p)
				}
				for _, p := range mine {
					if err := fx.tree.Delete(nil, p); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	fx.tree.DrainCompletions()
	if _, err := fx.tree.RunConsolidation(); err != nil {
		t.Fatalf("final consolidation: %v", err)
	}
	if fx.tree.Stats.Absorbs.Load() == 0 {
		t.Fatal("churn absorbed nothing")
	}
	fx.mustVerify(t)
}
