package spatial

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/storage"
)

// TestSpatialTornDataWriteMidSMORecovery mirrors the core torn-write
// scenario for the hB-tree variant: data-node splits frozen before
// their index postings, a torn page write during the flush, crash,
// restart. Every point must stay reachable (via side pointers) and lazy
// completion must converge the directory.
func TestSpatialTornDataWriteMidSMORecovery(t *testing.T) {
	inj := fault.New(0x5BA7)
	opts := smallOpts()
	opts.NoCompletion = true
	e := engine.New(engine.Options{Injector: inj})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "points", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fx := &fixture{e: e, b: b, tree: tree}

	rng := rand.New(rand.NewSource(42))
	const n = 150
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		pts[i] = randPoint(rng)
		if err := fx.tree.Insert(nil, pts[i], []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if fx.tree.Stats.DataSplits.Load() == 0 {
		t.Fatal("workload produced no data splits")
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	inj.Arm(storage.FPDiskWrite, fault.Spec{Kind: fault.Torn, After: 3})
	if _, err := fx.e.FlushAll(); !fault.IsTorn(err) {
		t.Fatalf("flush did not tear: %v", err)
	}
	inj.Disarm(storage.FPDiskWrite)

	fx.e.Opts.Injector = nil
	fx.tree.opts.NoCompletion = false
	fx2 := fx.crashRestart(t)

	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("tree ill-formed after torn-write recovery: %v", err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := fx2.tree.Search(nil, pts[i])
		if err != nil || !ok || string(v) != fmt.Sprintf("p%d", i) {
			t.Fatalf("point %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if fx2.tree.Stats.SideTraversals.Load() == 0 {
		t.Fatal("expected side traversals through unposted splits")
	}
	fx2.tree.DrainCompletions()
	if fx2.tree.Stats.PostsPerformed.Load() == 0 {
		t.Fatal("lazy completion performed no postings")
	}
	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("after completion: %v", err)
	}
}
