package spatial

import (
	"fmt"
	"sync"

	"repro/internal/enc"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Log record kinds owned by the spatial Π-tree (range 60..75).
const (
	// KindFormat installs a complete node image on a fresh page.
	KindFormat wal.Kind = 60
	// KindRestore replaces a node with a stored pre-image (compensation).
	KindRestore wal.Kind = 61
	// KindSplitOff delegates one half of a node's direct region to a new
	// sibling: entries in the half leave, index terms cut by the
	// hyperplane are clipped (kept AND copied), and a sibling term is
	// appended.
	KindSplitOff wal.Kind = 62
	// KindInsertPoint adds a data entry.
	KindInsertPoint wal.Kind = 63
	// KindRemovePoint deletes a data entry.
	KindRemovePoint wal.Kind = 64
	// KindPostTerm adds an index term.
	KindPostTerm wal.Kind = 65
	// KindRemoveTerm deletes an index term by child.
	KindRemoveTerm wal.Kind = 66
	// KindRootGrow turns the root into an index node one level up.
	KindRootGrow wal.Kind = 67
	// KindAbsorbSib re-absorbs the node's NEWEST delegated sibling region
	// (Options.Reclaim): the last sibling term is removed and the direct
	// region grows back to their union — which is exactly the node's
	// pre-split direct region, and therefore rectangular, only for the
	// newest term (delegations nest LIFO). Payload: the node's pre-image
	// (for undo); redo derives the cut from the node's own state. The
	// freed victim's page is returned to the store in the same atomic
	// action, alongside the removal of its parent index term.
	KindAbsorbSib wal.Kind = 68
)

// --- payloads ----------------------------------------------------------------

func encSplitOff(alongX bool, coord uint64, sib storage.PageID, pre *Node) []byte {
	var w enc.Writer
	w.Bool(alongX)
	w.U64(coord)
	w.U64(uint64(sib))
	encodeNode(&w, pre)
	return w.Bytes()
}

func decSplitOff(b []byte) (alongX bool, coord uint64, sib storage.PageID, pre *Node, err error) {
	r := enc.NewReader(b)
	alongX = r.Bool()
	coord = r.U64()
	sib = storage.PageID(r.U64())
	pre, err = decodeNode(r)
	return
}

func encPoint(e Entry) []byte {
	var w enc.Writer
	w.U64(e.P.X)
	w.U64(e.P.Y)
	w.Bytes32(e.Value)
	return w.Bytes()
}

func decPoint(b []byte) (Entry, error) {
	r := enc.NewReader(b)
	var e Entry
	e.P.X = r.U64()
	e.P.Y = r.U64()
	e.Value = r.Bytes32()
	return e, r.Err()
}

func encTerm(e Entry) []byte {
	var w enc.Writer
	encodeRect(&w, e.Rect)
	w.U64(uint64(e.Child))
	w.Bool(e.Clipped)
	return w.Bytes()
}

func decTerm(b []byte) (Entry, error) {
	r := enc.NewReader(b)
	var e Entry
	e.Rect = decodeRect(r)
	e.Child = storage.PageID(r.U64())
	e.Clipped = r.Bool()
	return e, r.Err()
}

func encRootGrow(termA, termB Entry, pre *Node) []byte {
	var w enc.Writer
	encodeEntry(&w, termA)
	encodeEntry(&w, termB)
	encodeNode(&w, pre)
	return w.Bytes()
}

func decRootGrow(b []byte) (termA, termB Entry, pre *Node, err error) {
	r := enc.NewReader(b)
	termA = decodeEntry(r)
	termB = decodeEntry(r)
	pre, err = decodeNode(r)
	return
}

// applySplitOff is the shared runtime/redo semantics of KindSplitOff.
func applySplitOff(n *Node, alongX bool, coord uint64, sib storage.PageID) {
	var kept, off Rect
	if alongX {
		kept, off = n.Direct.SplitX(coord)
	} else {
		kept, off = n.Direct.SplitY(coord)
	}
	out := n.Entries[:0:0]
	for _, e := range n.Entries {
		if n.IsData() {
			if kept.Contains(e.P) {
				out = append(out, e)
			}
			continue
		}
		switch {
		case !e.Rect.Intersects(off):
			out = append(out, e) // fully kept
		case !e.Rect.Intersects(kept):
			// fully delegated: leaves this node
		default:
			// Clipped: the child's region crosses the hyperplane, so its
			// term stays here AND goes to the sibling — the child is now
			// multi-parent (§3.2.2, §3.3).
			e.Clipped = true
			out = append(out, e)
		}
	}
	n.Entries = out
	n.Direct = kept
	n.Sibs = append(n.Sibs, SibTerm{Rect: off, Pid: sib})
}

// splitOffContents returns what the new sibling receives.
func splitOffContents(pre *Node, alongX bool, coord uint64) (entries []Entry, off Rect, clipped int) {
	var kept Rect
	if alongX {
		kept, off = pre.Direct.SplitX(coord)
	} else {
		kept, off = pre.Direct.SplitY(coord)
	}
	for _, e := range pre.Entries {
		if pre.IsData() {
			if off.Contains(e.P) {
				c := e
				if e.Value != nil {
					c.Value = append([]byte(nil), e.Value...)
				}
				entries = append(entries, c)
			}
			continue
		}
		switch {
		case !e.Rect.Intersects(off):
		case !e.Rect.Intersects(kept):
			entries = append(entries, e)
		default:
			c := e
			c.Clipped = true
			entries = append(entries, c)
			clipped++
		}
	}
	return entries, off, clipped
}

// encAbsorbSib carries the delegator's pre-image for compensation.
func encAbsorbSib(pre *Node) []byte { return encNodeImage(pre) }

// applyAbsorbSib is the shared runtime/redo semantics of KindAbsorbSib:
// pop the newest sibling term and grow the direct region back over it.
func applyAbsorbSib(n *Node) {
	s := n.Sibs[len(n.Sibs)-1]
	n.Sibs = n.Sibs[:len(n.Sibs)-1]
	n.Direct = rectUnion(n.Direct, s.Rect)
}

// rectUnion returns the bounding rectangle of a and b; the absorber only
// unions halves of one split, for which the bound IS the exact union.
func rectUnion(a, b Rect) Rect {
	return Rect{
		X0: minU(a.X0, b.X0), Y0: minU(a.Y0, b.Y0),
		X1: maxU(a.X1, b.X1), Y1: maxU(a.Y1, b.Y1),
	}
}

// splitHelps reports whether cutting pre at the plane actually shrinks
// it: with heavy clipping a split can leave (nearly) all terms in both
// halves, and a split that does not reduce the node is useless — the
// caller soft-overflows instead of splitting forever.
func splitHelps(pre *Node, alongX bool, coord uint64) bool {
	var kept, off Rect
	if alongX {
		kept, off = pre.Direct.SplitX(coord)
	} else {
		kept, off = pre.Direct.SplitY(coord)
	}
	keptN, offN := 0, 0
	for _, e := range pre.Entries {
		if pre.IsData() {
			if kept.Contains(e.P) {
				keptN++
			} else {
				offN++
			}
			continue
		}
		ik := e.Rect.Intersects(kept)
		io := e.Rect.Intersects(off)
		if ik {
			keptN++
		}
		if io {
			offN++
		}
	}
	return keptN < len(pre.Entries) && offN < len(pre.Entries) && keptN > 0 && offN > 0
}

// --- binding & registration ---------------------------------------------------

// Binding connects record kinds to live trees for logical undo.
type Binding struct {
	mu    sync.RWMutex
	trees map[uint32]*Tree
}

// Bind registers a tree for its store ID.
func (b *Binding) Bind(t *Tree) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trees[t.store.Pool.StoreID] = t
}

func (b *Binding) tree(storeID uint32) (*Tree, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.trees[storeID]
	if !ok {
		return nil, fmt.Errorf("spatial: no tree bound for store %d", storeID)
	}
	return t, nil
}

func nodeOf(f *storage.Frame) (*Node, error) {
	n, ok := f.Data.(*Node)
	if !ok {
		return nil, fmt.Errorf("spatial: page %d holds %T, not a node", f.ID, f.Data)
	}
	return n, nil
}

// Register installs the spatial record kinds. Point undo is logical
// (re-traversal), so every structure change is an independent atomic
// action.
func Register(reg *storage.Registry) *Binding {
	b := &Binding{trees: make(map[uint32]*Tree)}

	restore := func(rec *wal.Record, pre *Node) (storage.Compensation, error) {
		return storage.Compensation{Kind: KindRestore, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
	}

	reg.Register(KindFormat, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
	})
	reg.Register(KindRestore, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
	})
	reg.Register(KindSplitOff, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			alongX, coord, sib, _, err := decSplitOff(rec.Payload)
			if err != nil {
				return err
			}
			applySplitOff(n, alongX, coord, sib)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, _, pre, err := decSplitOff(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindInsertPoint, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decPoint(rec.Payload)
			if err != nil {
				return err
			}
			n.insertPoint(e)
			return nil
		},
		LogicalUndo: func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			e, err := decPoint(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoInsert(rec, e)
		},
	})
	reg.Register(KindRemovePoint, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decPoint(rec.Payload)
			if err != nil {
				return err
			}
			n.removePoint(e.P)
			return nil
		},
		LogicalUndo: func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			e, err := decPoint(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoRemove(rec, e)
		},
	})
	reg.Register(KindPostTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			if _, dup := n.termFor(e.Child); !dup {
				n.Entries = append(n.Entries, e)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindRemoveTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindRemoveTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			if i, ok := n.termFor(e.Child); ok {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindPostTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindAbsorbSib, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			applyAbsorbSib(n)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			pre, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindRootGrow, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			termA, termB, _, err := decRootGrow(rec.Payload)
			if err != nil {
				return err
			}
			n.Level++
			n.Entries = []Entry{termA, termB}
			n.Direct = FullSpace()
			n.Sibs = nil
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decRootGrow(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	return b
}
