// Package spatial implements a multi-attribute Π-tree over a
// two-dimensional point space, standing in for the hB-tree of §2.2.3
// (see DESIGN.md for the substitution): nodes are responsible for
// rectangular regions described directly rather than with intra-node
// kd-tree fragments, which preserves exactly the behaviours the paper
// uses the hB-tree to motivate —
//
//   - splits by hyperplane on EITHER attribute (§2.2.3, Figure 2);
//   - multiple sibling terms per node ("any node except the root can
//     contain sibling terms to contained nodes", §2.1.1): a node's
//     directly contained region shrinks by halving, each delegated half
//     recorded as a (rectangle, side pointer) sibling term;
//   - CLIPPING (§3.2.2): an index split whose hyperplane cuts through a
//     child's region places the child's term in both parents, marked as
//     multi-parent;
//   - the consolidation constraint of §3.3: a multi-parent (clipped)
//     child must not be consolidated until a single parent references
//     it; CanConsolidate exposes the test.
//
// Nodes are immortal here (no consolidation is performed — the CNS
// invariant), so traversals hold one latch at a time.
package spatial

import (
	"fmt"
	"sort"

	"repro/internal/enc"
	"repro/internal/storage"
)

// MaxCoord is the exclusive upper bound of both coordinates: the search
// space is [0, MaxCoord) x [0, MaxCoord).
const MaxCoord uint64 = 1 << 32

// Point is a location in the two-dimensional key space.
type Point struct {
	X, Y uint64
}

// Less orders points lexicographically (for entry sorting only).
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Rect is the half-open rectangle [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 uint64
}

// FullSpace covers every point.
func FullSpace() Rect { return Rect{0, 0, MaxCoord, MaxCoord} }

// Contains reports whether p lies in r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Area returns the rectangle's area (coordinates are bounded by 2^32, so
// the product fits in uint64... only for each side; total area of the
// full space overflows, so Area works on the halved regions actually
// stored and the verifier sums with big arithmetic).
func (r Rect) Area() (hi, lo uint64) {
	w := r.X1 - r.X0
	h := r.Y1 - r.Y0
	// 64x64 -> 128 bit multiply via 32-bit limbs (w, h <= 2^32).
	prod := func(a, b uint64) (uint64, uint64) {
		ahi, alo := a>>32, a&0xFFFFFFFF
		bhi, blo := b>>32, b&0xFFFFFFFF
		ll := alo * blo
		lh := alo * bhi
		hl := ahi * blo
		hh := ahi * bhi
		mid := lh + hl
		carry := uint64(0)
		if mid < lh {
			carry = 1 << 32
		}
		lo := ll + mid<<32
		c2 := uint64(0)
		if lo < ll {
			c2 = 1
		}
		hi := hh + mid>>32 + carry + c2
		return hi, lo
	}
	return prod(w, h)
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// SplitX cuts r at x, returning the low and high halves.
func (r Rect) SplitX(x uint64) (Rect, Rect) {
	return Rect{r.X0, r.Y0, x, r.Y1}, Rect{x, r.Y0, r.X1, r.Y1}
}

// SplitY cuts r at y.
func (r Rect) SplitY(y uint64) (Rect, Rect) {
	return Rect{r.X0, r.Y0, r.X1, y}, Rect{r.X0, y, r.X1, r.Y1}
}

// String renders the rectangle.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// SibTerm delegates a sub-rectangle to a contained sibling node (§2.1.1).
type SibTerm struct {
	Rect Rect
	Pid  storage.PageID
}

// Entry is a data point (level 0) or an index term (levels >= 1).
type Entry struct {
	// Data fields.
	P     Point
	Value []byte
	// Index fields: the child is responsible for Rect.
	Rect  Rect
	Child storage.PageID
	// Clipped marks a multi-parent child (§3.3): its term was placed in
	// more than one parent by clipping.
	Clipped bool
}

// Node is one page of the spatial Π-tree.
type Node struct {
	Level int
	// Direct is the directly contained region: the node's original
	// responsibility minus everything delegated through Sibs.
	Direct Rect
	// Sibs are the node's sibling terms, newest last.
	Sibs    []SibTerm
	Entries []Entry
}

// IsData reports whether the node holds points.
func (n *Node) IsData() bool { return n.Level == 0 }

// routeSib returns the sibling term whose region contains p, if any.
func (n *Node) routeSib(p Point) (SibTerm, bool) {
	for _, s := range n.Sibs {
		if s.Rect.Contains(p) {
			return s, true
		}
	}
	return SibTerm{}, false
}

// findPoint returns the index of p among the entries.
func (n *Node) findPoint(p Point) (int, bool) {
	i := sort.Search(len(n.Entries), func(i int) bool {
		return !n.Entries[i].P.Less(p)
	})
	if i < len(n.Entries) && n.Entries[i].P == p {
		return i, true
	}
	return i, false
}

// insertPoint places a data entry in sorted position; false on duplicate.
func (n *Node) insertPoint(e Entry) bool {
	i, dup := n.findPoint(e.P)
	if dup {
		return false
	}
	n.Entries = append(n.Entries, Entry{})
	copy(n.Entries[i+1:], n.Entries[i:])
	n.Entries[i] = e
	return true
}

// removePoint deletes the entry at p.
func (n *Node) removePoint(p Point) (Entry, bool) {
	i, ok := n.findPoint(p)
	if !ok {
		return Entry{}, false
	}
	e := n.Entries[i]
	n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
	return e, true
}

// termFor returns the position of the term referencing child.
func (n *Node) termFor(child storage.PageID) (int, bool) {
	for i := range n.Entries {
		if n.Entries[i].Child == child {
			return i, true
		}
	}
	return 0, false
}

// chooseChild picks the index term to descend to for p: the term whose
// rect contains p (approximately contained: lazy posting may leave only
// a containing ancestor's term, whose node's side pointers finish the
// search). Preference goes to the smallest containing rect — the most
// specific child.
func (n *Node) chooseChild(p Point) (Entry, bool) {
	best := -1
	for i := range n.Entries {
		if !n.Entries[i].Rect.Contains(p) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		if n.Entries[best].Rect.ContainsRect(n.Entries[i].Rect) {
			best = i
		}
	}
	if best == -1 {
		return Entry{}, false
	}
	return n.Entries[best], true
}

// clone returns a deep copy.
func (n *Node) clone() *Node {
	c := &Node{Level: n.Level, Direct: n.Direct}
	c.Sibs = append([]SibTerm(nil), n.Sibs...)
	c.Entries = make([]Entry, len(n.Entries))
	for i, e := range n.Entries {
		c.Entries[i] = e
		if e.Value != nil {
			c.Entries[i].Value = append([]byte(nil), e.Value...)
		}
	}
	return c
}

// --- serialization ----------------------------------------------------------

func encodeRect(w *enc.Writer, r Rect) {
	w.U64(r.X0)
	w.U64(r.Y0)
	w.U64(r.X1)
	w.U64(r.Y1)
}

func decodeRect(r *enc.Reader) Rect {
	return Rect{X0: r.U64(), Y0: r.U64(), X1: r.U64(), Y1: r.U64()}
}

func encodeEntry(w *enc.Writer, e Entry) {
	w.U64(e.P.X)
	w.U64(e.P.Y)
	w.Bytes32(e.Value)
	encodeRect(w, e.Rect)
	w.U64(uint64(e.Child))
	w.Bool(e.Clipped)
}

func decodeEntry(r *enc.Reader) Entry {
	var e Entry
	e.P.X = r.U64()
	e.P.Y = r.U64()
	e.Value = r.Bytes32()
	e.Rect = decodeRect(r)
	e.Child = storage.PageID(r.U64())
	e.Clipped = r.Bool()
	return e
}

func encodeNode(w *enc.Writer, n *Node) {
	w.U16(uint16(n.Level))
	encodeRect(w, n.Direct)
	w.U32(uint32(len(n.Sibs)))
	for _, s := range n.Sibs {
		encodeRect(w, s.Rect)
		w.U64(uint64(s.Pid))
	}
	w.U32(uint32(len(n.Entries)))
	for _, e := range n.Entries {
		encodeEntry(w, e)
	}
}

func decodeNode(r *enc.Reader) (*Node, error) {
	n := &Node{}
	n.Level = int(r.U16())
	n.Direct = decodeRect(r)
	ns := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	for i := 0; i < ns; i++ {
		s := SibTerm{Rect: decodeRect(r)}
		s.Pid = storage.PageID(r.U64())
		n.Sibs = append(n.Sibs, s)
	}
	ne := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	n.Entries = make([]Entry, 0, ne)
	for i := 0; i < ne; i++ {
		n.Entries = append(n.Entries, decodeEntry(r))
	}
	return n, r.Err()
}

func encNodeImage(n *Node) []byte {
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes()
}

// Codec is the storage.Codec for spatial pages.
type Codec struct{}

// EncodePage implements storage.Codec.
func (Codec) EncodePage(v any) ([]byte, error) {
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("spatial: cannot encode page of type %T", v)
	}
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes(), nil
}

// DecodePage implements storage.Codec.
func (Codec) DecodePage(b []byte) (any, error) {
	return decodeNode(enc.NewReader(b))
}
