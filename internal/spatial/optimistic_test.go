package spatial

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSpatialOptimisticHitRatio checks that a warm read-only workload
// serves interior navigation almost entirely from validated snapshots.
func TestSpatialOptimisticHitRatio(t *testing.T) {
	opts := Options{DataCapacity: 16, IndexCapacity: 16, CompletionWorkers: 2}
	fx := newFixture(t, opts)
	rng := rand.New(rand.NewSource(42))
	var pts []Point
	for len(pts) < 1200 {
		p := randPoint(rng)
		if err := fx.tree.Insert(nil, p, []byte(fmt.Sprintf("v%d", len(pts)))); err != nil {
			if err == ErrPointExists {
				continue
			}
			t.Fatalf("insert: %v", err)
		}
		pts = append(pts, p)
	}
	fx.tree.DrainCompletions()
	fx.tree.Stats.OptimisticHits.Store(0)
	fx.tree.Stats.OptimisticRetries.Store(0)
	fx.tree.Stats.OptimisticFallbacks.Store(0)
	for _, p := range pts {
		if _, ok, err := fx.tree.Search(nil, p); err != nil || !ok {
			t.Fatalf("search %v: found=%v err=%v", p, ok, err)
		}
	}
	hits := fx.tree.Stats.OptimisticHits.Load()
	retries := fx.tree.Stats.OptimisticRetries.Load()
	if hits == 0 {
		t.Fatal("no optimistic hits on a read-only workload")
	}
	if ratio := float64(hits) / float64(hits+retries); ratio < 0.90 {
		t.Fatalf("optimistic hit ratio %.3f (hits=%d retries=%d), want >= 0.90", ratio, hits, retries)
	}
	if fb := fx.tree.Stats.OptimisticFallbacks.Load(); fb != 0 {
		t.Fatalf("%d pessimistic fallbacks on a read-only workload", fb)
	}
}

// TestSpatialOptimisticSMOStorm runs optimistic readers against
// continuous data and index splits (with clipping producing multi-parent
// nodes). Every stable point must stay reachable at every moment.
func TestSpatialOptimisticSMOStorm(t *testing.T) {
	opts := Options{DataCapacity: 8, IndexCapacity: 8, CompletionWorkers: 2}
	fx := newFixture(t, opts)

	// Stable points on a sparse grid; churn happens everywhere around
	// them.
	rng := rand.New(rand.NewSource(7))
	stable := make(map[Point]string)
	var stablePts []Point
	for len(stablePts) < 250 {
		p := randPoint(rng)
		if _, dup := stable[p]; dup {
			continue
		}
		v := fmt.Sprintf("s%d", len(stablePts))
		if err := fx.tree.Insert(nil, p, []byte(v)); err != nil {
			if err == ErrPointExists {
				continue
			}
			t.Fatalf("insert stable: %v", err)
		}
		stable[p] = v
		stablePts = append(stablePts, p)
	}

	const writers = 4
	const searchers = 4
	const opsPerWriter = 1500
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+searchers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer stop.Store(true)
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var mine []Point
			for i := 0; i < opsPerWriter; i++ {
				if len(mine) > 0 && rng.Intn(3) == 0 {
					j := rng.Intn(len(mine))
					if err := fx.tree.Delete(nil, mine[j]); err != nil && err != ErrPointNotFound {
						errs <- fmt.Errorf("writer %d delete: %v", w, err)
						return
					}
					mine = append(mine[:j], mine[j+1:]...)
					continue
				}
				p := randPoint(rng)
				if _, isStable := stable[p]; isStable {
					continue
				}
				err := fx.tree.Insert(nil, p, []byte("c"))
				if err == ErrPointExists {
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d insert: %v", w, err)
					return
				}
				mine = append(mine, p)
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for !stop.Load() {
				p := stablePts[rng.Intn(len(stablePts))]
				v, ok, err := fx.tree.Search(nil, p)
				if err != nil {
					errs <- fmt.Errorf("searcher %d: %v", s, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("ghost miss: stable point %v not found", p)
					return
				}
				if string(v) != stable[p] {
					errs <- fmt.Errorf("stable point %v: value %q, want %q", p, v, stable[p])
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fx.tree.Stats.OptimisticHits.Load() == 0 {
		t.Fatal("storm exercised no optimistic visits")
	}
	fx.mustVerify(t)
	for p, want := range stable {
		if v, ok, err := fx.tree.Search(nil, p); err != nil || !ok || string(v) != want {
			t.Fatalf("post-storm search %v: %q %v %v", p, v, ok, err)
		}
	}
}
