package spatial

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/wal"
)

// TestSpatialCrashMatrix crashes at sampled log boundaries of a 2-D
// workload and verifies the recovered tree partitions the space exactly
// with only committed points visible.
func TestSpatialCrashMatrix(t *testing.T) {
	fx := newFixture(t, Options{DataCapacity: 4, IndexCapacity: 4, SyncCompletion: true, CheckLatchOrder: true})
	rng := rand.New(rand.NewSource(21))

	type insertion struct {
		p          Point
		committed  wal.LSN
		wasAborted bool
	}
	var log []insertion
	for i := 0; i < 30; i++ {
		tx := fx.e.TM.Begin()
		p := randPoint(rng)
		if err := fx.tree.Insert(tx, p, []byte("v")); err != nil {
			t.Fatal(err)
		}
		ins := insertion{p: p}
		if i%5 == 3 {
			_ = tx.Abort()
			ins.wasAborted = true
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			ins.committed = fx.e.Log.EndLSN()
		}
		log = append(log, ins)
		if i%6 == 5 {
			fx.tree.DrainCompletions()
		}
	}
	fx.tree.DrainCompletions()
	fx.e.Log.ForceAll()

	boundaries := fx.e.Log.FullImage().Boundaries()
	for bi := 0; bi < len(boundaries); bi += 4 {
		cut := boundaries[bi]
		img := fx.e.Crash(&cut)
		e2 := engine.Restarted(img, fx.e.Opts)
		b2 := Register(e2.Reg)
		st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
		pend, err := e2.AnalyzeAndRedo()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		tree2, err := Open(st2, e2.TM, e2.Locks, b2, "points", fx.tree.opts)
		if err != nil {
			_ = pend.UndoLosers(e2.TM)
			continue
		}
		if err := e2.FinishRecovery(pend); err != nil {
			t.Fatalf("cut %d: undo: %v", cut, err)
		}
		if _, err := st2.Root("points"); err != nil {
			tree2.Close()
			continue
		}
		if _, err := tree2.Verify(); err != nil {
			t.Fatalf("cut %d: ill-formed: %v", cut, err)
		}
		for _, ins := range log {
			_, ok, err := tree2.Search(nil, ins.p)
			if err != nil {
				t.Fatalf("cut %d: search: %v", cut, err)
			}
			switch {
			case ins.wasAborted && ok:
				t.Fatalf("cut %d: aborted point %v present", cut, ins.p)
			case ins.committed != 0 && cut >= ins.committed && !ok:
				t.Fatalf("cut %d: committed point %v lost", cut, ins.p)
			}
		}
		tree2.Close()
	}
}
