package spatial

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/storage"
	"repro/internal/wal"
)

// postTask asks for the index term describing child (responsible for
// rect) to be posted at parentLevel, in the parent on the search path of
// rect's low corner. Other parents of a clipped child are updated when
// their own search paths traverse the sibling pointer (§3.2.2).
//
// A task with absorb set instead requests one background consolidation
// pass (Options.Reclaim): all such requests collapse into a single
// pending task, since a pass sweeps every candidate anyway.
type postTask struct {
	parentLevel int
	child       storage.PageID
	rect        Rect
	absorb      bool
}

func (t postTask) key() string {
	if t.absorb {
		return "absorb"
	}
	return fmt.Sprintf("%d:%d", t.parentLevel, t.child)
}

type completer struct {
	t        *Tree
	mu       sync.Mutex
	cond     *sync.Cond
	tasks    []postTask
	pending  map[string]struct{}
	active   int
	stopped  bool
	draining atomic.Bool
	wg       sync.WaitGroup
}

func newCompleter(t *Tree) *completer {
	c := &completer{t: t, pending: make(map[string]struct{})}
	c.cond = sync.NewCond(&c.mu)
	if !t.opts.SyncCompletion {
		for i := 0; i < t.opts.CompletionWorkers; i++ {
			c.wg.Add(1)
			go c.worker()
		}
	}
	return c
}

func (c *completer) schedule(task postTask) {
	if c.t.opts.NoCompletion {
		return
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if _, dup := c.pending[task.key()]; dup {
		c.mu.Unlock()
		return
	}
	c.pending[task.key()] = struct{}{}
	c.tasks = append(c.tasks, task)
	c.t.Stats.PostsScheduled.Add(1)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pop hands out a task. The pending key stays set until done(task): a
// popped-but-running task must still be visible to refsChild, which the
// absorber consults before freeing a page a running postTerm may name.
func (c *completer) pop(block bool) (postTask, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.tasks) == 0 {
		if !block || c.stopped {
			return postTask{}, false
		}
		c.cond.Wait()
	}
	task := c.tasks[0]
	c.tasks = c.tasks[1:]
	c.active++
	return task, true
}

func (c *completer) done(task postTask) {
	c.mu.Lock()
	delete(c.pending, task.key())
	c.active--
	c.cond.Broadcast()
	c.mu.Unlock()
}

// depth reports the current queue depth (scheduled, unpopped tasks).
func (c *completer) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks)
}

// refsChild reports whether a level-1 posting task referencing pid is
// pending or running. Data-node postings are the only tasks that can name
// a reclaimable page; the absorber defers freeing while one is live.
func (c *completer) refsChild(pid storage.PageID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.pending[fmt.Sprintf("%d:%d", 1, pid)]
	return ok
}

func (c *completer) worker() {
	defer c.wg.Done()
	for {
		task, ok := c.pop(true)
		if !ok {
			return
		}
		// Absorb passes are maintenance: pace them with the governor so
		// background consolidation never convoys foreground writers. Term
		// postings run unpaced (the foreground is already navigating
		// around the unposted structure). Draining bypasses the pacer.
		if task.absorb && !c.draining.Load() {
			c.t.opts.Governor.Admit(c.depth())
		}
		c.t.run(task)
		c.done(task)
	}
}

func (c *completer) drain() {
	if c.t.opts.SyncCompletion {
		for {
			task, ok := c.pop(false)
			if !ok {
				return
			}
			c.t.run(task)
			c.done(task)
		}
	}
	c.mu.Lock()
	for len(c.tasks) > 0 || c.active > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

func (c *completer) stop() {
	c.mu.Lock()
	c.stopped = true
	c.tasks = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// closeDrain is the orderly shutdown: work off every pending completion,
// then stop the workers. Nothing pending is discarded, so a close-then-
// reopen never finds a scheduled posting or absorb silently dropped.
func (c *completer) closeDrain() {
	c.draining.Store(true)
	c.drain()
	c.stop()
}

// run dispatches one completing task: an absorb pass or a term posting.
func (t *Tree) run(task postTask) {
	if task.absorb {
		_, _ = t.absorbPass()
		return
	}
	t.postTerm(task)
}

// notePendingSib schedules the posting for a sibling term crossed during
// a traversal (lazy completion). The delegated rectangle IS the sibling's
// responsibility.
func (t *Tree) notePendingSib(n *Node, sib SibTerm) {
	t.comp.schedule(postTask{parentLevel: n.Level + 1, child: sib.Pid, rect: sib.Rect})
}

// choosePlane picks a split hyperplane for the X-latched node: the wider
// axis first, at the median boundary coordinate of the node's contents,
// falling back to the other axis and then the geometric midpoint. ok is
// false only when the direct region cannot be cut (unit-width on both
// axes).
func choosePlane(n *Node) (alongX bool, coord uint64, ok bool) {
	d := n.Direct
	tryAxis := func(alongX bool) (uint64, bool) {
		lo, hi := d.Y0, d.Y1
		if alongX {
			lo, hi = d.X0, d.X1
		}
		if hi-lo < 2 {
			return 0, false
		}
		var cands []uint64
		seen := map[uint64]bool{}
		add := func(c uint64) {
			if c > lo && c < hi && !seen[c] {
				seen[c] = true
				cands = append(cands, c)
			}
		}
		for _, e := range n.Entries {
			if n.IsData() {
				if alongX {
					add(e.P.X)
				} else {
					add(e.P.Y)
				}
			} else {
				if alongX {
					add(e.Rect.X0)
					add(e.Rect.X1)
				} else {
					add(e.Rect.Y0)
					add(e.Rect.Y1)
				}
			}
		}
		if len(cands) == 0 {
			return lo + (hi-lo)/2, true // geometric midpoint
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		return cands[len(cands)/2], true
	}
	wideX := d.X1-d.X0 >= d.Y1-d.Y0
	if c, ok := tryAxis(wideX); ok {
		return wideX, c, true
	}
	if c, ok := tryAxis(!wideX); ok {
		return !wideX, c, true
	}
	return false, 0, false
}

// splitNodeAction splits the U-latched data node as an independent
// atomic action: half of its direct region is delegated to a fresh
// sibling via a sibling term (§3.2.1), and the posting of the sibling's
// index term is scheduled as a separate action (step 6).
func (t *Tree) splitNodeAction(o *opCtx, leaf *nref) error {
	aa := t.tm.BeginAtomicAction()
	o.promote(leaf)
	n := leaf.n
	alongX, coord, ok := choosePlane(n)
	if !ok {
		o.release(leaf)
		_ = aa.Abort()
		t.Stats.SoftOverflows.Add(1)
		return nil
	}
	pre := n.clone()
	sibPid, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		o.release(leaf)
		_ = aa.Abort()
		return err
	}
	entries, off, clipped := splitOffContents(pre, alongX, coord)
	sib := &Node{Level: n.Level, Direct: off, Entries: entries}
	if err := t.logFormat(o, aa, sibPid, sib); err != nil {
		o.release(leaf)
		_ = aa.Abort()
		return err
	}
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindSplitOff, encSplitOff(alongX, coord, sibPid, pre))
	applySplitOff(n, alongX, coord, sibPid)
	leaf.f.MarkDirty(lsn)
	t.Stats.DataSplits.Add(1)
	t.Stats.ClippedTerms.Add(int64(clipped))

	cerr := aa.Commit()
	o.release(leaf)
	if cerr != nil {
		return cerr
	}
	t.comp.schedule(postTask{parentLevel: 1, child: sibPid, rect: off})
	return nil
}

// postTerm is the completing atomic action: post the child's index term
// in the parent on the search path of the child's low corner, splitting
// the parent (with clipping) or growing the root as needed. Latches are
// retained until the action commits.
func (t *Tree) postTerm(task postTask) {
	_ = t.retryLoop(func() error {
		// A task scheduled from a stale optimistic snapshot can name a
		// page the absorber already freed; posting a term for it (or for
		// whatever the recycled page now holds) would corrupt the index.
		if _, dead := t.deadPages.Load(task.child); dead {
			t.Stats.PostsNoop.Add(1)
			return nil
		}
		o := t.newOp(nil)
		defer o.done()
		corner := Point{X: task.rect.X0, Y: task.rect.Y0}
		node, err := t.descend(o, corner, task.parentLevel, latch.U, false)
		if err != nil {
			if err == errLevelGone {
				t.Stats.PostsNoop.Add(1)
				return nil
			}
			return err
		}
		if _, posted := node.n.termFor(task.child); posted {
			t.Stats.PostsNoop.Add(1)
			o.release(&node)
			return nil
		}

		aa := t.tm.BeginAtomicAction()
		var held []nref
		releaseAll := func() {
			o.release(&node)
			for i := len(held) - 1; i >= 0; i-- {
				o.release(&held[i])
			}
			held = nil
		}
		o.promote(&node)

		for len(node.n.Entries) >= t.opts.IndexCapacity {
			alongX, coord, ok := choosePlane(node.n)
			if !ok || (node.pid() != t.root && !splitHelps(node.n, alongX, coord)) {
				// No cut reduces this node (heavy clipping keeps spanning
				// terms in both halves): grow past nominal capacity
				// rather than split unproductively.
				t.Stats.SoftOverflows.Add(1)
				break
			}
			if node.pid() == t.root {
				next, err := t.growRootAction(o, aa, &node, alongX, coord, corner)
				if err != nil {
					releaseAll()
					_ = aa.Abort()
					return err
				}
				held = append(held, node)
				node = next
				continue
			}
			pre := node.n.clone()
			sibPid, err := t.store.Alloc(aa, &o.tr)
			if err != nil {
				releaseAll()
				_ = aa.Abort()
				return err
			}
			entries, off, clipped := splitOffContents(pre, alongX, coord)
			sib := &Node{Level: node.n.Level, Direct: off, Entries: entries}
			if err := t.logFormat(o, aa, sibPid, sib); err != nil {
				releaseAll()
				_ = aa.Abort()
				return err
			}
			lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindSplitOff, encSplitOff(alongX, coord, sibPid, pre))
			applySplitOff(node.n, alongX, coord, sibPid)
			node.f.MarkDirty(lsn)
			t.Stats.IndexSplits.Add(1)
			t.Stats.ClippedTerms.Add(int64(clipped))
			t.comp.schedule(postTask{parentLevel: node.n.Level + 1, child: sibPid, rect: off})
			if off.Contains(corner) {
				next, err := o.acquire(sibPid, latch.X, node.n.Level)
				if err != nil {
					releaseAll()
					_ = aa.Abort()
					return err
				}
				held = append(held, node)
				node = next
			}
		}

		term := Entry{Rect: task.rect, Child: task.child}
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindPostTerm, encTerm(term))
		node.n.Entries = append(node.n.Entries, term)
		node.f.MarkDirty(lsn)
		err = aa.Commit()
		releaseAll()
		if err != nil {
			return err
		}
		t.Stats.PostsPerformed.Add(1)
		return nil
	})
}

// logFormat creates and logs a fresh node image under the action.
func (t *Tree) logFormat(o *opCtx, aa logUpdater, pid storage.PageID, n *Node) error {
	f, err := t.store.Pool.Create(pid)
	if err != nil {
		return err
	}
	f.Latch.AcquireX()
	o.tr.Acquired(&f.Latch, o.rank(n.Level), latch.X)
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(pid), KindFormat, encNodeImage(n))
	f.Data = n
	f.MarkDirty(lsn)
	o.tr.Released(&f.Latch)
	f.Latch.ReleaseX()
	t.store.Pool.Unpin(f)
	return nil
}

type logUpdater interface {
	LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN
}

// growRootAction raises the tree height: the root's contents move to two
// new nodes split by the hyperplane, the lower node carrying a sibling
// term for the upper, and the root becomes an index node one level up
// with a term for each half. Returns the half containing corner,
// X-latched.
func (t *Tree) growRootAction(o *opCtx, aa logUpdater, root *nref, alongX bool, coord uint64, corner Point) (nref, error) {
	n := root.n
	pre := n.clone()
	pidB, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		return nref{}, err
	}
	pidA, err := t.store.Alloc(aa, &o.tr)
	if err != nil {
		return nref{}, err
	}
	entriesB, off, clippedB := splitOffContents(pre, alongX, coord)
	nodeB := &Node{Level: pre.Level, Direct: off, Entries: entriesB}

	var kept Rect
	if alongX {
		kept, _ = pre.Direct.SplitX(coord)
	} else {
		kept, _ = pre.Direct.SplitY(coord)
	}
	nodeA := &Node{Level: pre.Level, Direct: kept, Sibs: append([]SibTerm(nil), pre.Sibs...)}
	nodeA.Sibs = append(nodeA.Sibs, SibTerm{Rect: off, Pid: pidB})
	for _, e := range pre.Entries {
		switch {
		case !e.Rect.Intersects(off):
			nodeA.Entries = append(nodeA.Entries, e)
		case !e.Rect.Intersects(kept):
		default:
			c := e
			c.Clipped = true
			nodeA.Entries = append(nodeA.Entries, c)
		}
	}
	if err := t.logFormat(o, aa, pidB, nodeB); err != nil {
		return nref{}, err
	}
	if err := t.logFormat(o, aa, pidA, nodeA); err != nil {
		return nref{}, err
	}

	termA := Entry{Rect: kept, Child: pidA}
	termB := Entry{Rect: off, Child: pidB}
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(root.pid()), KindRootGrow, encRootGrow(termA, termB, pre))
	n.Level++
	n.Entries = []Entry{termA, termB}
	n.Direct = FullSpace()
	n.Sibs = nil
	root.f.MarkDirty(lsn)
	t.Stats.RootGrowths.Add(1)
	t.Stats.ClippedTerms.Add(int64(clippedB))

	pid := pidA
	if off.Contains(corner) {
		pid = pidB
	}
	return o.acquire(pid, latch.X, pre.Level)
}
