package spatial

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
)

const testStoreID = 11

type fixture struct {
	e    *engine.Engine
	b    *Binding
	tree *Tree
}

func smallOpts() Options {
	return Options{
		DataCapacity:    8,
		IndexCapacity:   8,
		SyncCompletion:  true,
		CheckLatchOrder: true,
	}
}

func newFixture(t testing.TB, opts Options) *fixture {
	t.Helper()
	e := engine.New(engine.Options{})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "points", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	t.Cleanup(tree.Close)
	return &fixture{e: e, b: b, tree: tree}
}

func (fx *fixture) crashRestart(t testing.TB) *fixture {
	t.Helper()
	img := fx.e.Crash(nil)
	fx.tree.Close()
	e2 := engine.Restarted(img, fx.e.Opts)
	b2 := Register(e2.Reg)
	st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
	p, err := e2.AnalyzeAndRedo()
	if err != nil {
		t.Fatalf("analyze+redo: %v", err)
	}
	tree2, err := Open(st2, e2.TM, e2.Locks, b2, "points", fx.tree.opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := e2.FinishRecovery(p); err != nil {
		t.Fatalf("undo: %v", err)
	}
	t.Cleanup(tree2.Close)
	return &fixture{e: e2, b: b2, tree: tree2}
}

func (fx *fixture) mustVerify(t testing.TB) Shape {
	t.Helper()
	fx.tree.DrainCompletions()
	shape, err := fx.tree.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return shape
}

func pt(x, y uint64) Point { return Point{X: x, Y: y} }

func randPoint(rng *rand.Rand) Point {
	return Point{X: rng.Uint64() % MaxCoord, Y: rng.Uint64() % MaxCoord}
}

func TestInsertSearchBasics(t *testing.T) {
	fx := newFixture(t, smallOpts())
	rng := rand.New(rand.NewSource(5))
	pts := make(map[Point]string)
	for i := 0; i < 300; i++ {
		p := randPoint(rng)
		if _, dup := pts[p]; dup {
			continue
		}
		v := fmt.Sprintf("v%d", i)
		if err := fx.tree.Insert(nil, p, []byte(v)); err != nil {
			t.Fatalf("insert %v: %v", p, err)
		}
		pts[p] = v
	}
	for p, want := range pts {
		v, ok, err := fx.tree.Search(nil, p)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("search %v: %q %v %v", p, v, ok, err)
		}
	}
	if _, ok, _ := fx.tree.Search(nil, pt(1, 1)); ok {
		if _, present := pts[pt(1, 1)]; !present {
			t.Fatal("phantom point")
		}
	}
	shape := fx.mustVerify(t)
	if shape.Points != len(pts) {
		t.Fatalf("points = %d, want %d", shape.Points, len(pts))
	}
	if shape.DataNodes < 2 {
		t.Fatal("no splits happened")
	}
	if err := fx.tree.Insert(nil, firstKey(pts), []byte("dup")); err != ErrPointExists {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func firstKey(m map[Point]string) Point {
	for p := range m {
		return p
	}
	return Point{}
}

func TestDelete(t *testing.T) {
	fx := newFixture(t, smallOpts())
	rng := rand.New(rand.NewSource(6))
	var pts []Point
	for i := 0; i < 200; i++ {
		p := randPoint(rng)
		if err := fx.tree.Insert(nil, p, []byte("x")); err == nil {
			pts = append(pts, p)
		}
	}
	for i, p := range pts {
		if i%2 == 0 {
			if err := fx.tree.Delete(nil, p); err != nil {
				t.Fatalf("delete %v: %v", p, err)
			}
		}
	}
	if err := fx.tree.Delete(nil, pts[0]); err != ErrPointNotFound {
		t.Fatalf("double delete: %v", err)
	}
	for i, p := range pts {
		_, ok, err := fx.tree.Search(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if (i%2 == 0) == ok {
			t.Fatalf("point %d presence = %v", i, ok)
		}
	}
	fx.mustVerify(t)
}

func TestRegionQuery(t *testing.T) {
	fx := newFixture(t, smallOpts())
	// A grid of points at multiples of 2^24.
	const step = 1 << 24
	const side = 24
	for x := uint64(0); x < side; x++ {
		for y := uint64(0); y < side; y++ {
			if err := fx.tree.Insert(nil, pt(x*step, y*step), []byte{byte(x), byte(y)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	fx.mustVerify(t)
	q := Rect{X0: 3 * step, Y0: 5 * step, X1: 11 * step, Y1: 9 * step}
	got := make(map[Point]bool)
	err := fx.tree.RegionQuery(q, func(p Point, v []byte) bool {
		got[p] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for x := uint64(0); x < side; x++ {
		for y := uint64(0); y < side; y++ {
			p := pt(x*step, y*step)
			if q.Contains(p) {
				want++
				if !got[p] {
					t.Fatalf("region query missed %v", p)
				}
			} else if got[p] {
				t.Fatalf("region query returned %v outside %v", p, q)
			}
		}
	}
	if len(got) != want {
		t.Fatalf("region query: %d hits, want %d", len(got), want)
	}
}

func TestClippingProducesMultiParents(t *testing.T) {
	opts := smallOpts()
	opts.IndexCapacity = 4
	fx := newFixture(t, opts)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		p := randPoint(rng)
		if err := fx.tree.Insert(nil, p, []byte("v")); err != nil && err != ErrPointExists {
			t.Fatal(err)
		}
	}
	shape := fx.mustVerify(t)
	if shape.Height < 3 {
		t.Fatalf("height %d: want a multi-level index", shape.Height)
	}
	if fx.tree.Stats.ClippedTerms.Load() == 0 {
		t.Fatal("workload produced no clipping; the multi-attribute machinery is untested")
	}
	// §3.3: a clipped (multi-parent) child must be detected as not
	// consolidatable; find one via the index walk.
	var clippedChild storage.PageID
	err := fx.tree.walkIndex(func(n *Node) bool {
		for _, e := range n.Entries {
			if e.Clipped {
				clippedChild = e.Child
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if clippedChild != storage.NilPage {
		ok, err := fx.tree.CanConsolidate(clippedChild)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("clipped child reported consolidatable")
		}
	}
	if shape.Clipped == 0 {
		t.Fatal("verifier saw no clipped terms")
	}
}

func TestCrashRecoveryPoints(t *testing.T) {
	fx := newFixture(t, smallOpts())
	rng := rand.New(rand.NewSource(8))
	pts := make(map[Point]bool)
	for i := 0; i < 250; i++ {
		p := randPoint(rng)
		if err := fx.tree.Insert(nil, p, []byte("v")); err == nil {
			pts[p] = true
		}
	}
	fx.tree.DrainCompletions()
	fx.e.Log.ForceAll()
	fx2 := fx.crashRestart(t)
	shape := fx2.mustVerify(t)
	if shape.Points != len(pts) {
		t.Fatalf("points after restart = %d, want %d", shape.Points, len(pts))
	}
	for p := range pts {
		if _, ok, err := fx2.tree.Search(nil, p); err != nil || !ok {
			t.Fatalf("point %v lost: %v", p, err)
		}
	}
}

func TestAbortUndoesPoints(t *testing.T) {
	fx := newFixture(t, smallOpts())
	if err := fx.tree.Insert(nil, pt(10, 10), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	tx := fx.e.TM.Begin()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		if err := fx.tree.Insert(tx, randPoint(rng), []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.tree.Delete(tx, pt(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	fx.tree.DrainCompletions()
	shape, err := fx.tree.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if shape.Points != 1 {
		t.Fatalf("points = %d, want only the survivor", shape.Points)
	}
	if v, ok, _ := fx.tree.Search(nil, pt(10, 10)); !ok || string(v) != "keep" {
		t.Fatalf("survivor: %q %v", v, ok)
	}
}

func TestConcurrentInserts(t *testing.T) {
	opts := smallOpts()
	opts.SyncCompletion = false
	fx := newFixture(t, opts)
	const workers = 6
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				p := Point{X: rng.Uint64() % MaxCoord, Y: (uint64(w)<<28 + rng.Uint64()%(1<<28)) % MaxCoord}
				if err := fx.tree.Insert(nil, p, []byte{byte(w)}); err != nil && err != ErrPointExists {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	fx.mustVerify(t)
}
