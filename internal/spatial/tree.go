package spatial

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/maint"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Options configure one spatial tree.
type Options struct {
	// DataCapacity and IndexCapacity are maximum entry counts. Defaults
	// 64, 64; minimum 4.
	DataCapacity  int
	IndexCapacity int
	// SyncCompletion, CompletionWorkers and NoCompletion mirror the
	// other trees' lazy-completion controls.
	SyncCompletion    bool
	CompletionWorkers int
	NoCompletion      bool
	// CheckLatchOrder enables per-operation latch order assertions.
	CheckLatchOrder bool
	// PessimisticDescent disables the optimistic (version-validated)
	// interior navigation, forcing every descent through the latched
	// path. For comparison runs and targeted tests.
	PessimisticDescent bool
	// Reclaim makes empty data nodes mortal: a data node whose points are
	// all gone is re-absorbed by the sibling that delegated it and its
	// page returned to the store's free-space map (see absorb.go). The
	// pure-CNS one-latch-at-a-time discipline is selectively upgraded to
	// latch coupling on the edges a free can cut.
	Reclaim bool
	// Governor, if set, paces background absorb passes so maintenance
	// never convoys foreground writers. Nil means unpaced.
	Governor *maint.Governor
}

func (o Options) normalized() Options {
	if o.DataCapacity <= 0 {
		o.DataCapacity = 64
	}
	if o.DataCapacity < 4 {
		o.DataCapacity = 4
	}
	if o.IndexCapacity <= 0 {
		o.IndexCapacity = 64
	}
	if o.IndexCapacity < 4 {
		o.IndexCapacity = 4
	}
	if o.CompletionWorkers <= 0 {
		o.CompletionWorkers = 2
	}
	return o
}

// Stats counts spatial tree events.
type Stats struct {
	Inserts        atomic.Int64
	Deletes        atomic.Int64
	Searches       atomic.Int64
	RegionQueries  atomic.Int64
	DataSplits     atomic.Int64
	IndexSplits    atomic.Int64
	RootGrowths    atomic.Int64
	SideTraversals atomic.Int64
	PostsScheduled atomic.Int64
	PostsPerformed atomic.Int64
	PostsNoop      atomic.Int64
	ClippedTerms   atomic.Int64
	SoftOverflows  atomic.Int64
	Restarts       atomic.Int64

	// Optimistic descent counters: hits are interior-node visits served
	// from a validated snapshot without latching; retries are snapshot
	// refreshes or validation failures; fallbacks are whole descents
	// abandoned to the latched path.
	OptimisticHits      atomic.Int64
	OptimisticRetries   atomic.Int64
	OptimisticFallbacks atomic.Int64

	// Consolidation (Options.Reclaim) counters: Absorbs counts freed
	// empty data nodes; AbsorbMultiParent counts absorbs refused by the
	// §3.3 constraint (a clipped term marks a possibly multi-parent
	// child); AbsorbDeferred counts absorbs put off because the victim's
	// term is unposted or a completion task still names it.
	Absorbs           atomic.Int64
	AbsorbMultiParent atomic.Int64
	AbsorbDeferred    atomic.Int64
}

// Tree is one multi-attribute Π-tree. Nodes are immortal by default (no
// consolidation is performed), so the CNS invariant governs traversals;
// under Options.Reclaim, empty data nodes are absorbed and freed, and the
// edges that can be cut are traversed with latch coupling instead.
type Tree struct {
	Name string

	// lockSpace is the tree's lock namespace, derived once from Name.
	lockSpace uint32

	store   *storage.Store
	tm      *txn.Manager
	lm      *lock.Manager
	binding *Binding
	opts    Options
	root    storage.PageID
	comp    *completer
	opPool  sync.Pool

	// absorbMu serializes absorb passes (background task vs on-demand
	// RunConsolidation): concurrent passes would race to absorb the same
	// victim and the loser's abort would re-post terms the winner removed.
	absorbMu sync.Mutex
	// deadPages is the volatile set of freed page IDs, consulted by
	// postTerm so a stale completion task (scheduled from an optimistic
	// snapshot read before the cut) never posts a term for — or recycled
	// impostor of — a freed page. Volatile like the completion queue; the
	// two die together in a crash.
	deadPages sync.Map

	// rootf caches the root's buffer frame with one permanent pin (the
	// root page ID is fixed and the root is never de-allocated); see the
	// core package's rootFrame.
	rootf atomic.Pointer[storage.Frame]

	Stats Stats
}

// ErrPointExists reports a duplicate insert.
var ErrPointExists = errors.New("spatial: point already exists")

// ErrPointNotFound reports a missing point.
var ErrPointNotFound = errors.New("spatial: point not found")

var errRetry = errors.New("spatial: internal retry")

// Create builds a new spatial tree: a level-1 root over one data node
// covering the full space.
func Create(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	t := &Tree{Name: name, lockSpace: lock.SpaceID("spatial", name), store: store, tm: tm, lm: lm, binding: b, opts: opts.normalized()}
	aa := tm.BeginAtomicAction()
	o := t.newOp(nil)

	if f, err := store.Pool.Fetch(storage.MetaPage); err == nil {
		store.Pool.Unpin(f)
	} else if errors.Is(err, storage.ErrPageNotFound) {
		if err := store.Bootstrap(aa); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	rootPid, err := store.Alloc(aa, &o.tr)
	if err != nil {
		return nil, err
	}
	dataPid, err := store.Alloc(aa, &o.tr)
	if err != nil {
		return nil, err
	}
	data := &Node{Level: 0, Direct: FullSpace()}
	root := &Node{Level: 1, Direct: FullSpace(), Entries: []Entry{{Rect: FullSpace(), Child: dataPid}}}
	for _, nn := range []struct {
		pid  storage.PageID
		node *Node
	}{{dataPid, data}, {rootPid, root}} {
		f, err := store.Pool.Create(nn.pid)
		if err != nil {
			return nil, err
		}
		f.Latch.AcquireX()
		lsn := aa.LogUpdate(store.Pool.StoreID, uint64(nn.pid), KindFormat, encNodeImage(nn.node))
		f.Data = nn.node
		f.MarkDirty(lsn)
		f.Latch.ReleaseX()
		store.Pool.Unpin(f)
	}
	if err := store.SetRoot(aa, &o.tr, name, rootPid); err != nil {
		return nil, err
	}
	if err := aa.Commit(); err != nil {
		return nil, err
	}
	t.root = rootPid
	t.comp = newCompleter(t)
	b.Bind(t)
	return t, nil
}

// Open attaches to an existing spatial tree after restart.
func Open(store *storage.Store, tm *txn.Manager, lm *lock.Manager, b *Binding, name string, opts Options) (*Tree, error) {
	rootPid, err := store.Root(name)
	if err != nil {
		return nil, err
	}
	t := &Tree{Name: name, lockSpace: lock.SpaceID("spatial", name), store: store, tm: tm, lm: lm, binding: b, opts: opts.normalized(), root: rootPid}
	t.comp = newCompleter(t)
	b.Bind(t)
	return t, nil
}

// Close drains pending completions (nothing scheduled is discarded, so a
// close-then-reopen never finds a posting or absorb silently dropped),
// stops the workers, and drops the cached root pin.
func (t *Tree) Close() {
	t.comp.closeDrain()
	if f := t.rootf.Swap(nil); f != nil {
		t.store.Pool.Unpin(f)
	}
}

// rootFrame returns the root's frame pinned for the caller via the cache
// in t.rootf; the first call keeps one extra permanent pin.
func (t *Tree) rootFrame() (*storage.Frame, error) {
	if f := t.rootf.Load(); f != nil {
		f.Pin()
		return f, nil
	}
	f, err := t.store.Pool.Fetch(t.root)
	if err != nil {
		return nil, err
	}
	if !t.rootf.CompareAndSwap(nil, f) {
		return f, nil // lost the cache race; our fetch pin is the caller's
	}
	f.Pin()
	return f, nil
}

// DrainCompletions blocks until scheduled completing actions ran.
func (t *Tree) DrainCompletions() { t.comp.drain() }

// Options returns the normalized options.
func (t *Tree) Options() Options { return t.opts }

func (t *Tree) recLockName(p Point) lock.Name {
	return lock.PointName(t.lockSpace, p.X, p.Y)
}

// --- operation context -------------------------------------------------------

type opCtx struct {
	t   *Tree
	txn *txn.Txn
	tr  latch.Tracker
	seq uint64
}

// newOp checks out a pooled operation context; done returns it. Pooling
// keeps the tracker's hold slice (and the context itself) off the
// per-operation allocation path.
func (t *Tree) newOp(tx *txn.Txn) *opCtx {
	o, _ := t.opPool.Get().(*opCtx)
	if o == nil {
		o = new(opCtx)
	}
	o.t = t
	o.txn = tx
	o.seq = 0
	o.tr.Reset(t.opts.CheckLatchOrder)
	return o
}

func (o *opCtx) done() {
	o.tr.AssertNoneHeld()
	o.txn = nil
	o.t.opPool.Put(o)
}

const maxLevel = 63

func (o *opCtx) rank(level int) latch.Rank {
	o.seq++
	return latch.Rank(uint64(maxLevel-level)<<40 | (o.seq & (1<<40 - 1)))
}

type nref struct {
	f    *storage.Frame
	n    *Node
	mode latch.Mode
}

func (r *nref) pid() storage.PageID { return r.f.ID }

func (o *opCtx) acquire(pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	f, err := o.t.store.Pool.Fetch(pid)
	if err != nil {
		return nref{}, err
	}
	f.Latch.Acquire(mode)
	o.tr.Acquired(&f.Latch, o.rank(level), mode)
	n, ok := f.Data.(*Node)
	if !ok {
		o.tr.Released(&f.Latch)
		f.Latch.Release(mode)
		o.t.store.Pool.Unpin(f)
		return nref{}, fmt.Errorf("spatial: page %d holds %T", pid, f.Data)
	}
	return nref{f: f, n: n, mode: mode}, nil
}

func (o *opCtx) release(r *nref) {
	if r.f == nil {
		return
	}
	o.tr.Released(&r.f.Latch)
	r.f.Latch.Release(r.mode)
	o.t.store.Pool.Unpin(r.f)
	r.f = nil
	r.n = nil
}

func (o *opCtx) promote(r *nref) {
	r.f.Latch.Promote()
	o.tr.Promoted(&r.f.Latch)
	r.mode = latch.X
}

// step follows one edge from cur to pid. Under pure CNS the source latch
// drops before the target is acquired (one latch at a time; the target is
// immortal). Under Reclaim, traversals latch-couple: the target is
// acquired while the source latch is still held, so the absorber — which
// holds the edge's source X while it frees the target — cannot free a
// page between a reader's pointer load and its latch acquisition. Ranks
// ascend source-to-target (same level: seq order; child level: higher
// rank), so coupling respects the latch order.
func (t *Tree) step(o *opCtx, cur *nref, pid storage.PageID, mode latch.Mode, level int) (nref, error) {
	if t.opts.Reclaim {
		next, err := o.acquire(pid, mode, level)
		o.release(cur)
		return next, err
	}
	o.release(cur)
	return o.acquire(pid, mode, level)
}

var errLevelGone = errors.New("spatial: target level does not exist yet")

// descend walks to the node at stopLevel whose directly contained region
// includes p, latched in finalMode. Side traversals through sibling
// terms schedule completing postings when sched is true. Interior levels
// are navigated optimistically (version-validated snapshot reads, no
// latches); after bounded validation failures the descent falls back to
// the latched path.
func (t *Tree) descend(o *opCtx, p Point, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	if !t.opts.PessimisticDescent {
		if r, err, ok := t.descendOptimistic(o, p, stopLevel, finalMode, sched); ok {
			return r, err
		}
		t.Stats.OptimisticFallbacks.Add(1)
	}
	return t.descendLatched(o, p, stopLevel, finalMode, sched)
}

// descendLatched is the fully latched descent (CNS: one latch at a
// time).
func (t *Tree) descendLatched(o *opCtx, p Point, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	cur, err := o.acquire(t.root, latch.S, maxLevel)
	if err != nil {
		return nref{}, err
	}
	if cur.n.Level < stopLevel {
		o.release(&cur)
		return nref{}, errLevelGone
	}
	if cur.n.Level == stopLevel && finalMode != latch.S {
		lvl := cur.n.Level
		o.release(&cur)
		cur, err = o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err
		}
		if cur.n.Level != stopLevel {
			o.release(&cur)
			return nref{}, errRetry
		}
	}
	return t.descendFrom(o, cur, p, stopLevel, finalMode, sched)
}

// descendFrom continues a latched descent from cur (already latched, at
// or above stopLevel). The optimistic descent also lands here for the
// final level's side traversals, which always run latched.
func (t *Tree) descendFrom(o *opCtx, cur nref, p Point, stopLevel int, finalMode latch.Mode, sched bool) (nref, error) {
	for {
		for !cur.n.Direct.Contains(p) {
			sib, ok := cur.n.routeSib(p)
			if !ok {
				o.release(&cur)
				return nref{}, errRetry
			}
			t.Stats.SideTraversals.Add(1)
			if sched {
				t.notePendingSib(cur.n, sib)
			}
			next, err := t.step(o, &cur, sib.Pid, cur.mode, cur.n.Level)
			if err != nil {
				return nref{}, err
			}
			cur = next
		}
		if cur.n.Level == stopLevel {
			return cur, nil
		}
		e, ok := cur.n.chooseChild(p)
		if !ok {
			o.release(&cur)
			return nref{}, errRetry
		}
		childLevel := cur.n.Level - 1
		childMode := latch.S
		if childLevel == stopLevel {
			childMode = finalMode
		}
		next, err := t.step(o, &cur, e.Child, childMode, childLevel)
		if err != nil {
			return nref{}, err
		}
		cur = next
	}
}

// --- optimistic descent ------------------------------------------------------

// optRetries bounds full-descent restarts after validation failures
// before the operation falls back to the latched path.
const optRetries = 3

// navRef is an unlatched, pinned view of a node: an immutable snapshot n
// proved current at latch version v. The pin keeps the frame (and its
// version counter) from being recycled while the reference is live.
type navRef struct {
	f *storage.Frame
	n *Node
	v uint64
}

// optCounters accumulates a descent's snapshot-read outcomes locally;
// the shared Stats words are touched once per operation, not per level.
type optCounters struct {
	hits    int64
	retries int64
}

// navLoad returns a validated snapshot of the pinned frame f; see the
// core package's navLoad for the protocol. ok is false when the frame
// does not hold a node (the caller falls back to the latched path).
func (t *Tree) navLoad(f *storage.Frame, c *optCounters) (navRef, bool) {
	if data, pub, ok := f.NavSnapshot(); ok {
		if v, quiet := f.Latch.OptimisticRead(); quiet && v == pub {
			n, isNode := data.(*Node)
			if !isNode {
				return navRef{}, false
			}
			c.hits++
			return navRef{f: f, n: n, v: v}, true
		}
		c.retries++
	}
	f.Latch.AcquireS()
	n, isNode := f.Data.(*Node)
	if !isNode {
		f.Latch.ReleaseS()
		return navRef{}, false
	}
	snap := n.clone()
	v := f.Latch.Version()
	f.PublishNav(snap, v)
	f.Latch.ReleaseS()
	return navRef{f: f, n: snap, v: v}, true
}

// descendOptimistic runs bounded optimistic passes from the root; ok is
// false when the budget is exhausted and the caller must fall back.
func (t *Tree) descendOptimistic(o *opCtx, p Point, stopLevel int, finalMode latch.Mode, sched bool) (nref, error, bool) {
	var c optCounters
	r, err, ok := nref{}, error(nil), false
	for attempt := 0; attempt <= optRetries; attempt++ {
		var done bool
		r, err, done = t.optPass(o, &c, p, stopLevel, finalMode, sched)
		if done {
			ok = true
			break
		}
	}
	if c.hits > 0 {
		t.Stats.OptimisticHits.Add(c.hits)
	}
	if c.retries > 0 {
		t.Stats.OptimisticRetries.Add(c.retries)
	}
	return r, err, ok
}

// optPass is one optimistic descent from the root. The spatial tree
// obeys the CNS invariant on interior nodes — they never move and are
// never de-allocated — so, as in the TSB tree, an interior pointer read
// from a validated snapshot always names a live node and no source
// re-validation is needed after following it; a stale snapshot routes
// like a slightly earlier latched reader, and sibling terms make every
// well-formed state navigable. Under Options.Reclaim, DATA nodes are the
// exception (empty ones are absorbed and freed), so the final
// interior-to-data edge re-validates the source after latching the
// child. The final node is latched in finalMode and its side traversals
// run latched in descendFrom.
func (t *Tree) optPass(o *opCtx, c *optCounters, p Point, stopLevel int, finalMode latch.Mode, sched bool) (nref, error, bool) {
	pool := t.store.Pool
	f, err := t.rootFrame()
	if err != nil {
		return nref{}, err, true
	}
	cur, ok := t.navLoad(f, c)
	if !ok {
		pool.Unpin(f)
		return nref{}, nil, false
	}
	if cur.n.Level < stopLevel {
		pool.Unpin(f)
		return nref{}, errLevelGone, true
	}
	if cur.n.Level == stopLevel {
		// The root is the target: latch it and re-check like the latched
		// path does (the root never moves).
		lvl := cur.n.Level
		pool.Unpin(f)
		r, err := o.acquire(t.root, finalMode, lvl)
		if err != nil {
			return nref{}, err, true
		}
		if r.n.Level != stopLevel {
			o.release(&r)
			return nref{}, errRetry, true
		}
		r2, err := t.descendFrom(o, r, p, stopLevel, finalMode, sched)
		return r2, err, true
	}

	for {
		// Side traversal on validated snapshots.
		if !cur.n.Direct.Contains(p) {
			sib, ok := cur.n.routeSib(p)
			if !ok {
				pool.Unpin(cur.f)
				return nref{}, errRetry, true
			}
			t.Stats.SideTraversals.Add(1)
			if sched {
				t.notePendingSib(cur.n, sib)
			}
			next, err, done := t.optStep(cur, c, sib.Pid, cur.n.Level)
			if !done {
				return nref{}, nil, false
			}
			if err != nil {
				return nref{}, err, true
			}
			cur = next
			continue
		}

		e, ok := cur.n.chooseChild(p)
		if !ok {
			pool.Unpin(cur.f)
			return nref{}, errRetry, true
		}
		childLevel := cur.n.Level - 1
		if childLevel == stopLevel {
			// Final edge: latch the child in finalMode. Pure CNS needs no
			// source validation — the child is immortal. Under Reclaim,
			// data nodes can be freed, so the source snapshot must still
			// be current once the child latch is held: a validated source
			// proves the edge existed at acquisition time, and from then
			// on the absorber (which holds the source X to commit) cannot
			// have freed the latched child. A stale source aborts the
			// pass; so does a fetch error on a stale source (the pointer
			// may name a freed, dropped page).
			r, err := o.acquire(e.Child, finalMode, childLevel)
			if t.opts.Reclaim {
				if err != nil {
					stale := !cur.f.Latch.Validate(cur.v)
					pool.Unpin(cur.f)
					if stale {
						return nref{}, nil, false
					}
					return nref{}, err, true
				}
				if !cur.f.Latch.Validate(cur.v) {
					o.release(&r)
					pool.Unpin(cur.f)
					return nref{}, nil, false
				}
			}
			pool.Unpin(cur.f)
			if err != nil {
				return nref{}, err, true
			}
			if r.n.Level != stopLevel {
				o.release(&r)
				return nref{}, nil, false
			}
			r2, err := t.descendFrom(o, r, p, stopLevel, finalMode, sched)
			return r2, err, true
		}
		next, err, done := t.optStep(cur, c, e.Child, childLevel)
		if !done {
			return nref{}, nil, false
		}
		if err != nil {
			return nref{}, err, true
		}
		cur = next
	}
}

// optStep follows one edge from cur to pid (expected at level). cur's
// pin is consumed. CNS: the target is immortal, so no source
// re-validation is performed after loading it. done=false aborts the
// pass (non-node frame or defensive level mismatch).
func (t *Tree) optStep(cur navRef, c *optCounters, pid storage.PageID, level int) (navRef, error, bool) {
	pool := t.store.Pool
	pool.Unpin(cur.f)
	nf, err := pool.Fetch(pid)
	if err != nil {
		return navRef{}, err, true
	}
	next, ok := t.navLoad(nf, c)
	if !ok {
		pool.Unpin(nf)
		return navRef{}, nil, false
	}
	if next.n.Level != level {
		pool.Unpin(nf)
		return navRef{}, nil, false
	}
	return next, nil, true
}

func (t *Tree) retryLoop(fn func() error) error {
	for {
		err := fn()
		if errors.Is(err, errRetry) {
			t.Stats.Restarts.Add(1)
			continue
		}
		return err
	}
}

// --- public operations ---------------------------------------------------------

// Insert adds a point with its value; ErrPointExists on duplicates. With
// a nil transaction the insert runs as its own atomic action.
func (t *Tree) Insert(tx *txn.Txn, p Point, value []byte) error {
	t.Stats.Inserts.Add(1)
	return t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		leaf, err := t.descend(o, p, 0, latch.U, true)
		if err != nil {
			return err
		}
		if tx != nil && !tx.TryLock(t.recLockName(p), lock.X) {
			o.release(&leaf)
			if err := tx.Lock(t.recLockName(p), lock.X); err != nil {
				return err
			}
			return errRetry
		}
		if _, dup := leaf.n.findPoint(p); dup {
			o.release(&leaf)
			return ErrPointExists
		}
		if len(leaf.n.Entries) >= t.opts.DataCapacity {
			if err := t.splitNodeAction(o, &leaf); err != nil {
				return err
			}
			return errRetry
		}
		var lg *txn.Txn
		if tx != nil {
			lg = tx
		} else {
			lg = t.tm.BeginAtomicAction()
		}
		o.promote(&leaf)
		e := Entry{P: p, Value: append([]byte(nil), value...)}
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindInsertPoint, encPoint(e))
		leaf.n.insertPoint(e)
		leaf.f.MarkDirty(lsn)
		if tx == nil {
			if cerr := lg.Commit(); cerr != nil {
				o.release(&leaf)
				return cerr
			}
		}
		o.release(&leaf)
		return nil
	})
}

// Delete removes a point; ErrPointNotFound if absent.
func (t *Tree) Delete(tx *txn.Txn, p Point) error {
	t.Stats.Deletes.Add(1)
	return t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		leaf, err := t.descend(o, p, 0, latch.U, true)
		if err != nil {
			return err
		}
		if tx != nil && !tx.TryLock(t.recLockName(p), lock.X) {
			o.release(&leaf)
			if err := tx.Lock(t.recLockName(p), lock.X); err != nil {
				return err
			}
			return errRetry
		}
		i, ok := leaf.n.findPoint(p)
		if !ok {
			o.release(&leaf)
			return ErrPointNotFound
		}
		old := leaf.n.Entries[i]
		o.promote(&leaf)
		var lg *txn.Txn
		if tx != nil {
			lg = tx
		} else {
			lg = t.tm.BeginAtomicAction()
		}
		lsn := lg.LogUpdate(t.store.Pool.StoreID, uint64(leaf.pid()), KindRemovePoint, encPoint(old))
		leaf.n.removePoint(p)
		leaf.f.MarkDirty(lsn)
		emptied := len(leaf.n.Entries) == 0 && len(leaf.n.Sibs) == 0
		if tx == nil {
			if cerr := lg.Commit(); cerr != nil {
				o.release(&leaf)
				return cerr
			}
		}
		o.release(&leaf)
		if emptied && t.opts.Reclaim {
			// The leaf may now be absorbable; schedule a background pass.
			// If this delete belongs to a transaction that later aborts,
			// logical undo re-inserts the point through a fresh descent,
			// so absorbing under an uncommitted delete is safe.
			t.comp.schedule(postTask{absorb: true})
		}
		return nil
	})
}

// Search returns the value stored at p.
func (t *Tree) Search(tx *txn.Txn, p Point) ([]byte, bool, error) {
	t.Stats.Searches.Add(1)
	var val []byte
	var found bool
	err := t.retryLoop(func() error {
		o := t.newOp(tx)
		defer o.done()
		leaf, err := t.descend(o, p, 0, latch.S, true)
		if err != nil {
			return err
		}
		if tx != nil && !tx.TryLock(t.recLockName(p), lock.S) {
			o.release(&leaf)
			if err := tx.Lock(t.recLockName(p), lock.S); err != nil {
				return err
			}
			return errRetry
		}
		if i, ok := leaf.n.findPoint(p); ok {
			val = append([]byte(nil), leaf.n.Entries[i].Value...)
			found = true
		} else {
			val, found = nil, false
		}
		o.release(&leaf)
		return nil
	})
	return val, found, err
}

// RegionQuery calls fn for every point in q. Visits are latch-consistent
// per node; nodes reachable through multiple (clipped) parents are
// visited once. Under Options.Reclaim the holder of each edge stays
// S-latched while its children are visited (DFS latch coupling), so a
// collected data-node pid cannot be freed before its visit; pure CNS
// releases each node before recursing.
func (t *Tree) RegionQuery(q Rect, fn func(p Point, v []byte) bool) error {
	t.Stats.RegionQueries.Add(1)
	o := t.newOp(nil)
	defer o.done()
	seen := make(map[storage.PageID]bool)
	var visit func(pid storage.PageID, level int) (bool, error)
	visit = func(pid storage.PageID, level int) (bool, error) {
		if seen[pid] {
			return true, nil
		}
		seen[pid] = true
		r, err := o.acquire(pid, latch.S, level)
		if err != nil {
			return false, err
		}
		// Collect what to do before releasing the latch (CNS: children
		// are immortal, so the collected pids stay valid).
		type kid struct {
			pid   storage.PageID
			level int
		}
		var kids []kid
		type hit struct {
			p Point
			v []byte
		}
		var hits []hit
		for _, s := range r.n.Sibs {
			if s.Rect.Intersects(q) {
				kids = append(kids, kid{s.Pid, r.n.Level})
			}
		}
		if r.n.IsData() {
			for _, e := range r.n.Entries {
				if q.Contains(e.P) {
					hits = append(hits, hit{e.P, append([]byte(nil), e.Value...)})
				}
			}
		} else {
			for _, e := range r.n.Entries {
				if e.Rect.Intersects(q) {
					kids = append(kids, kid{e.Child, r.n.Level - 1})
				}
			}
		}
		if !t.opts.Reclaim {
			o.release(&r)
		} else {
			defer o.release(&r)
		}
		for _, h := range hits {
			if !fn(h.p, h.v) {
				return false, nil
			}
		}
		for _, k := range kids {
			cont, err := visit(k.pid, k.level)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := visit(t.root, maxLevel)
	return err
}

// CanConsolidate reports whether the child could legally be consolidated
// under §3.3: it must be referenced by index terms in a single parent.
// Clipped terms mark multi-parent children, which must not be
// consolidated until a single parent remains. (This tree performs no
// consolidation; the predicate exposes the paper's constraint for tests
// and experiments.)
func (t *Tree) CanConsolidate(child storage.PageID) (bool, error) {
	parents := 0
	err := t.walkIndex(func(n *Node) bool {
		for _, e := range n.Entries {
			if e.Child == child {
				parents++
				if e.Clipped {
					// Marked multi-parent: assume more parents exist.
					parents++
				}
			}
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return parents == 1, nil
}

// walkIndex visits every index node once (quiescent helper).
func (t *Tree) walkIndex(fn func(n *Node) bool) error {
	pool := t.store.Pool
	seen := make(map[storage.PageID]bool)
	var visit func(pid storage.PageID) (bool, error)
	visit = func(pid storage.PageID) (bool, error) {
		if seen[pid] {
			return true, nil
		}
		seen[pid] = true
		f, err := pool.Fetch(pid)
		if err != nil {
			return false, err
		}
		// Momentary S latch for the clone: the walk also backs the §3.3
		// census taken by background consolidation, which runs against
		// live writers.
		f.Latch.AcquireS()
		n, ok := f.Data.(*Node)
		if !ok {
			f.Latch.ReleaseS()
			pool.Unpin(f)
			return false, fmt.Errorf("spatial: page %d holds %T", pid, f.Data)
		}
		if n.IsData() {
			f.Latch.ReleaseS()
			pool.Unpin(f)
			return true, nil
		}
		cp := n.clone()
		f.Latch.ReleaseS()
		pool.Unpin(f)
		if !fn(cp) {
			return false, nil
		}
		for _, s := range cp.Sibs {
			if cont, err := visit(s.Pid); err != nil || !cont {
				return cont, err
			}
		}
		for _, e := range cp.Entries {
			if cont, err := visit(e.Child); err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err := visit(t.root)
	return err
}

// logicalUndoInsert compensates an insert by removing the point from
// wherever it now lives.
func (t *Tree) logicalUndoInsert(rec *wal.Record, e Entry) error {
	tx, ok := t.tm.Lookup(rec.TxnID)
	if !ok {
		return fmt.Errorf("spatial: logical undo for unknown txn %d", rec.TxnID)
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		leaf, err := t.descend(o, e.P, 0, latch.U, false)
		if err != nil {
			return err
		}
		if i, ok := leaf.n.findPoint(e.P); ok {
			old := leaf.n.Entries[i]
			o.promote(&leaf)
			lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(leaf.pid()), KindRemovePoint, encPoint(old), rec.PrevLSN)
			leaf.n.removePoint(e.P)
			leaf.f.MarkDirty(lsn)
		} else {
			tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
		}
		o.release(&leaf)
		return nil
	})
}

// logicalUndoRemove compensates a delete by re-inserting the point.
func (t *Tree) logicalUndoRemove(rec *wal.Record, e Entry) error {
	tx, ok := t.tm.Lookup(rec.TxnID)
	if !ok {
		return fmt.Errorf("spatial: logical undo for unknown txn %d", rec.TxnID)
	}
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		leaf, err := t.descend(o, e.P, 0, latch.U, false)
		if err != nil {
			return err
		}
		if len(leaf.n.Entries) >= t.opts.DataCapacity {
			if err := t.splitNodeAction(o, &leaf); err != nil {
				return err
			}
			return errRetry
		}
		if _, dup := leaf.n.findPoint(e.P); dup {
			o.release(&leaf)
			tx.LogCLR(0, 0, 0, nil, rec.PrevLSN)
			return nil
		}
		o.promote(&leaf)
		lsn := tx.LogCLR(t.store.Pool.StoreID, uint64(leaf.pid()), KindInsertPoint, encPoint(e), rec.PrevLSN)
		leaf.n.insertPoint(Entry{P: e.P, Value: append([]byte(nil), e.Value...)})
		leaf.f.MarkDirty(lsn)
		o.release(&leaf)
		return nil
	})
}
