package spatial

import (
	"fmt"

	"repro/internal/storage"
)

// Shape summarizes a verified spatial tree.
type Shape struct {
	Height     int
	IndexNodes int
	DataNodes  int
	Points     int
	Clipped    int // clipped (multi-parent) index terms observed
}

// Verify checks well-formedness at a quiescent point:
//
//   - the direct regions of all reachable data nodes PARTITION the full
//     space: pairwise disjoint, total area exactly MaxCoord^2;
//   - every point lies in its node's direct region;
//   - every index term and sibling term references an allocated page;
//     index terms reference nodes one level down whose responsibility
//     (direct region plus delegations) contains the term's rectangle.
func (t *Tree) Verify() (Shape, error) {
	var shape Shape
	pool := t.store.Pool

	getNode := func(pid storage.PageID) (*Node, error) {
		f, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		defer pool.Unpin(f)
		n, ok := f.Data.(*Node)
		if !ok {
			return nil, fmt.Errorf("page %d holds %T", pid, f.Data)
		}
		return n.clone(), nil
	}

	root, err := getNode(t.root)
	if err != nil {
		return shape, fmt.Errorf("spatial verify: root: %w", err)
	}
	shape.Height = root.Level + 1

	// BFS over every reachable node, deduplicating (clipping and sibling
	// terms make the graph a DAG).
	type item struct {
		pid   storage.PageID
		level int
	}
	seen := map[storage.PageID]bool{t.root: true}
	queue := []item{{t.root, root.Level}}
	var dataRects []Rect
	var dataPids []storage.PageID

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n, err := getNode(it.pid)
		if err != nil {
			return shape, fmt.Errorf("spatial verify: page %d: %w", it.pid, err)
		}
		if n.Level != it.level {
			return shape, fmt.Errorf("spatial verify: page %d level %d, expected %d", it.pid, n.Level, it.level)
		}
		if alloc, err := t.store.IsAllocated(it.pid); err != nil || !alloc {
			return shape, fmt.Errorf("spatial verify: reachable page %d not allocated", it.pid)
		}
		for _, s := range n.Sibs {
			if s.Rect.Empty() {
				return shape, fmt.Errorf("spatial verify: page %d has empty sibling rect", it.pid)
			}
			if s.Rect.Intersects(n.Direct) {
				return shape, fmt.Errorf("spatial verify: page %d sibling rect %v overlaps direct %v", it.pid, s.Rect, n.Direct)
			}
			if !seen[s.Pid] {
				seen[s.Pid] = true
				queue = append(queue, item{s.Pid, n.Level})
			}
		}
		if n.IsData() {
			shape.DataNodes++
			shape.Points += len(n.Entries)
			for _, e := range n.Entries {
				if !n.Direct.Contains(e.P) {
					return shape, fmt.Errorf("spatial verify: point (%d,%d) outside direct %v of page %d", e.P.X, e.P.Y, n.Direct, it.pid)
				}
			}
			dataRects = append(dataRects, n.Direct)
			dataPids = append(dataPids, it.pid)
			continue
		}
		shape.IndexNodes++
		for _, e := range n.Entries {
			if e.Clipped {
				shape.Clipped++
			}
			child, err := getNode(e.Child)
			if err != nil {
				return shape, fmt.Errorf("spatial verify: term child %d: %w", e.Child, err)
			}
			if child.Level != n.Level-1 {
				return shape, fmt.Errorf("spatial verify: term child %d level %d, want %d", e.Child, child.Level, n.Level-1)
			}
			// The child must be responsible for the term's rectangle:
			// its direct region plus delegated regions must cover it.
			if !coveredBy(e.Rect, child) {
				return shape, fmt.Errorf("spatial verify: child %d not responsible for term rect %v (direct %v, %d sibs)", e.Child, e.Rect, child.Direct, len(child.Sibs))
			}
			if !seen[e.Child] {
				seen[e.Child] = true
				queue = append(queue, item{e.Child, n.Level - 1})
			}
		}
	}

	// Partition check: pairwise disjoint and exact total area.
	for i := range dataRects {
		for j := i + 1; j < len(dataRects); j++ {
			if dataRects[i].Intersects(dataRects[j]) {
				return shape, fmt.Errorf("spatial verify: data regions overlap: page %d %v vs page %d %v",
					dataPids[i], dataRects[i], dataPids[j], dataRects[j])
			}
		}
	}
	var sumHi, sumLo uint64
	for _, r := range dataRects {
		hi, lo := r.Area()
		sumLo += lo
		if sumLo < lo {
			sumHi++
		}
		sumHi += hi
	}
	// Full space area = 2^64 exactly: hi=1, lo=0.
	if sumHi != 1 || sumLo != 0 {
		return shape, fmt.Errorf("spatial verify: data regions cover area (%d,%d), want the full space", sumHi, sumLo)
	}
	// The BFS seen-set is exactly the reachable set; cross-check it
	// against the store's free-space map.
	if err := t.store.SpaceCheck(seen); err != nil {
		return shape, fmt.Errorf("spatial verify: %w", err)
	}
	return shape, nil
}

// coveredBy reports whether rect is covered by the node's responsibility:
// its direct region plus its delegated sibling rects, recursively not
// needed — delegation rects are responsibility by definition (§2.1.1).
func coveredBy(rect Rect, n *Node) bool {
	// Fast path: direct containment.
	if n.Direct.ContainsRect(rect) {
		return true
	}
	// General: every corner-region of rect must fall in direct or a sib.
	// Because all regions arise from recursive halving of rect itself,
	// checking that rect minus (direct + sibs) is empty via area
	// accounting is exact.
	regions := append([]Rect{n.Direct}, nil...)
	for _, s := range n.Sibs {
		regions = append(regions, s.Rect)
	}
	var wantHi, wantLo uint64 = rect.Area()
	var sumHi, sumLo uint64
	for _, r := range regions {
		inter := intersect(rect, r)
		if inter.Empty() {
			continue
		}
		hi, lo := inter.Area()
		sumLo += lo
		if sumLo < lo {
			sumHi++
		}
		sumHi += hi
	}
	// Regions are pairwise disjoint, so equality means exact cover.
	return sumHi == wantHi && sumLo == wantLo
}

func intersect(a, b Rect) Rect {
	r := Rect{
		X0: maxU(a.X0, b.X0), Y0: maxU(a.Y0, b.Y0),
		X1: minU(a.X1, b.X1), Y1: minU(a.Y1, b.Y1),
	}
	if r.X0 >= r.X1 || r.Y0 >= r.Y1 {
		return Rect{}
	}
	return r
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
