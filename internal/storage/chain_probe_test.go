package storage

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/wal"
)

// chainCodec stores pages as 8 bytes naming the successor page, so the
// prefetcher's chain walk can be driven directly.
type chainCodec struct{}

func (chainCodec) EncodePage(v any) ([]byte, error) { return v.([]byte), nil }
func (chainCodec) DecodePage(b []byte) (any, error) {
	return append([]byte(nil), b...), nil
}
func (chainCodec) SuccessorHint(data any) PageID {
	b, ok := data.([]byte)
	if !ok || len(b) < 8 {
		return NilPage
	}
	return PageID(binary.LittleEndian.Uint64(b))
}

// TestPrefetchChainWalksSuccessors: one hint warms the whole chain up to
// the window depth, and foreground fetches of the warmed pages count as
// prefetch hits.
func TestPrefetchChainWalksSuccessors(t *testing.T) {
	log := wal.New()
	p := NewPool(1, NewDisk(), log, chainCodec{}, 64)
	lg := &testLogger{log: log}
	const n = 32
	for i := 1; i <= n; i++ {
		next := make([]byte, 8)
		if i < n {
			binary.LittleEndian.PutUint64(next, uint64(i+1))
		}
		dirtyPage(t, p, lg, PageID(i), next)
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		p.Drop(PageID(i))
	}

	p.EnablePrefetch(8)
	defer p.StopPrefetch()
	p.PrefetchAsync(1)

	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().PrefetchIssued < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().PrefetchIssued; got != 8 {
		t.Fatalf("chain issued %d reads, want window depth 8", got)
	}
	for i := 1; i <= 8; i++ {
		f, err := p.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	if got := p.Stats().PrefetchHit; got != 8 {
		t.Fatalf("foreground consumed %d prefetch hits, want 8", got)
	}
	if got := p.Stats().PrefetchWasted; got != 0 {
		t.Fatalf("PrefetchWasted = %d, want 0", got)
	}
}
