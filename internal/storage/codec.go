package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec translates a store's decoded page contents to and from bytes. Each
// access method supplies one Codec for all of its node types; the pool
// handles the meta page itself.
type Codec interface {
	// EncodePage serializes v. It must not retain v.
	EncodePage(v any) ([]byte, error)
	// DecodePage parses bytes produced by EncodePage.
	DecodePage(b []byte) (any, error)
}

// SuccessorCodec is an optional Codec extension for scan read-ahead: it
// extracts the forward side pointer from a decoded page so the pool's
// prefetcher can chain along a scan's traversal order without help from
// the access method. Return NilPage when the page has no successor (or
// is not a scannable leaf). The pool calls it under the frame's S latch;
// the implementation must only read data.
type SuccessorCodec interface {
	SuccessorHint(data any) PageID
}

// Page images on disk are framed as:
//
//	[0:8]  pageLSN (little endian)
//	[8]    type tag: tagMeta for the meta page, tagUser for codec pages
//	[9:]   content
const (
	tagMeta byte = 0
	tagUser byte = 1
)

var errShortImage = errors.New("storage: page image too short")

func frameImage(pageLSN uint64, tag byte, content []byte) []byte {
	img := make([]byte, 9+len(content))
	binary.LittleEndian.PutUint64(img[0:8], pageLSN)
	img[8] = tag
	copy(img[9:], content)
	return img
}

func unframeImage(img []byte) (pageLSN uint64, tag byte, content []byte, err error) {
	if len(img) < 9 {
		return 0, 0, nil, errShortImage
	}
	return binary.LittleEndian.Uint64(img[0:8]), img[8], img[9:], nil
}

// encodeFrameData serializes a frame's decoded contents using the store
// codec or the built-in meta codec.
func (p *Pool) encodeFrameData(data any) (tag byte, content []byte, err error) {
	if m, ok := data.(*Meta); ok {
		return tagMeta, m.encode(), nil
	}
	content, err = p.codec.EncodePage(data)
	return tagUser, content, err
}

// decodeFrameData parses a stable image's content portion.
func (p *Pool) decodeFrameData(tag byte, content []byte) (any, error) {
	switch tag {
	case tagMeta:
		return decodeMeta(content)
	case tagUser:
		return p.codec.DecodePage(content)
	default:
		return nil, fmt.Errorf("storage: unknown page tag %d", tag)
	}
}
