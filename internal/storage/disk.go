// Package storage provides the paged stable store and buffer pool under
// every access method in this repository, with the write-ahead-log
// protocol the paper assumes (§4.3.1): a dirty page is never written to
// the stable layer before the log records that dirtied it are forced.
//
// A simulated crash discards everything volatile — buffer pool contents
// and the unforced log tail — and restarts from the stable page images
// plus the stable log prefix, which is exactly the state a real system
// recovers from.
//
// The stable layer is failable: Disk is an interface whose Write and
// Read return errors, and FaultyDisk wraps any Disk with an injector
// that can fail or tear individual I/Os.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// PageID identifies a page within one store. NilPage (0) is never a valid
// page; MetaPage (1) holds the store's space-management information and
// root directory.
type PageID uint64

const (
	// NilPage is the null page ID.
	NilPage PageID = 0
	// MetaPage is the fixed ID of the space-management page.
	MetaPage PageID = 1
)

// Disk is the stable layer under one store: page ID to last flushed
// image. Images include an 8-byte pageLSN header followed by a type tag
// and the codec-encoded content. Implementations must be safe for
// concurrent use, and Write and Read may fail — the pool retries
// transient errors and propagates the rest.
type Disk interface {
	// Write atomically replaces the stable image of pid. The page write
	// itself is atomic, as sector-sized writes are on real devices;
	// torn multi-page states are represented by some pages having old
	// images and others new.
	Write(pid PageID, img []byte) error
	// Read returns the stable image of pid; ok=false means the page was
	// never flushed (not an error).
	Read(pid PageID) (img []byte, ok bool, err error)
	// Snapshot returns an independent in-memory copy of the current
	// stable state, used to build crash images while the original keeps
	// running. Snapshotting never fails: it copies what is stable now.
	Snapshot() *MemDisk
	// Len returns the number of stable pages.
	Len() int
	// PageIDs returns the IDs of all stable pages, in no particular order.
	PageIDs() []PageID
}

// MemDisk is the in-memory Disk used everywhere: a map from page ID to
// its last flushed image. MemDisk itself never fails; wrap it in a
// FaultyDisk to inject failures.
type MemDisk struct {
	mu    sync.RWMutex
	pages map[PageID][]byte
}

// NewDisk returns an empty stable store.
func NewDisk() *MemDisk {
	return &MemDisk{pages: make(map[PageID][]byte)}
}

// Write atomically replaces the stable image of pid.
func (d *MemDisk) Write(pid PageID, img []byte) error {
	cp := make([]byte, len(img))
	copy(cp, img)
	d.mu.Lock()
	d.pages[pid] = cp
	d.mu.Unlock()
	return nil
}

// Read returns the stable image of pid, or ok=false if the page was never
// flushed.
func (d *MemDisk) Read(pid PageID) (img []byte, ok bool, err error) {
	d.mu.RLock()
	img, ok = d.pages[pid]
	d.mu.RUnlock()
	return img, ok, nil
}

// Snapshot returns an independent copy of the stable layer.
func (d *MemDisk) Snapshot() *MemDisk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := make(map[PageID][]byte, len(d.pages))
	for pid, img := range d.pages {
		b := make([]byte, len(img))
		copy(b, img)
		cp[pid] = b
	}
	return &MemDisk{pages: cp}
}

// Len returns the number of stable pages.
func (d *MemDisk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PageIDs returns the IDs of all stable pages, in no particular order.
func (d *MemDisk) PageIDs() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PageID, 0, len(d.pages))
	for pid := range d.pages {
		out = append(out, pid)
	}
	return out
}

// Failpoint names owned by the stable layer.
const (
	// FPDiskWrite fires inside FaultyDisk.Write, before the image
	// reaches the underlying device. A Torn fault here means the stale
	// prior image persists (the new image never lands); Transient and
	// Permanent faults fail the write outright.
	FPDiskWrite = "disk.write"
	// FPDiskRead fires inside FaultyDisk.Read before the device read.
	FPDiskRead = "disk.read"
)

// ErrDiskFailed is wrapped by every error a permanently-failed or
// crash-frozen FaultyDisk returns.
var ErrDiskFailed = errors.New("storage: stable device failed")

// ErrTornPage reports a page whose stable image failed its checksum — a
// torn or corrupt on-disk page with no intact prior version to fall back
// to. errors.Is(err, ErrTornPage) classifies it; recovery treats it as
// fatal because redo needs some intact base image to start from.
var ErrTornPage = errors.New("storage: torn or corrupt page")

// PartialWriter is the optional real-tearing surface of a Disk: write
// only the first n bytes of the framed on-disk form of img — a genuine
// partial pwrite, as a device that lost power mid-write leaves behind.
// The stable image of pid must remain readable as its prior version
// (careful replacement), matching MemDisk's simulated torn-write
// semantics where the old image persists.
type PartialWriter interface {
	WritePartial(pid PageID, img []byte, frac float64) error
}

// FaultyDisk wraps a Disk with an injector. Besides the armed
// failpoints it enforces two latches: a permanent fault breaks the
// device for good (every later write fails), and once the injector's
// crash latch trips no write reaches stable storage — the wrapped
// disk's contents are frozen at the instant of the crash, which is the
// state recovery will be run against.
type FaultyDisk struct {
	inner  Disk
	inj    *fault.Injector
	broken atomic.Bool
}

// NewFaultyDisk wraps inner so that inj's disk.write / disk.read
// failpoints apply to it.
func NewFaultyDisk(inner Disk, inj *fault.Injector) *FaultyDisk {
	return &FaultyDisk{inner: inner, inj: inj}
}

// Write checks the disk.write failpoint and then delegates. On a Torn
// fault the underlying device keeps the old image and the caller gets
// an error, so it must keep the page dirty; on Permanent the device
// latches broken.
func (d *FaultyDisk) Write(pid PageID, img []byte) error {
	if d.inj.Crashed() {
		return fmt.Errorf("storage: write page %d after crash: %w", pid, ErrDiskFailed)
	}
	if d.broken.Load() {
		return fmt.Errorf("storage: write page %d: %w", pid, ErrDiskFailed)
	}
	if err := d.inj.Check(FPDiskWrite); err != nil {
		if fault.IsPermanent(err) {
			d.broken.Store(true)
		}
		if fault.IsTorn(err) {
			if pw, ok := d.inner.(PartialWriter); ok {
				// File-backed device: tear for real — a seeded prefix of
				// the framed page lands on disk. The dual-slot layout
				// keeps the prior image intact, so the observable
				// semantics match MemDisk's simulated tear.
				_ = pw.WritePartial(pid, img, fault.AsError(err).Frac)
			}
		}
		return fmt.Errorf("storage: write page %d: %w", pid, err)
	}
	if d.inj.Crashed() {
		// A crash-only trip on this very write: the machine died before
		// the image landed.
		return fmt.Errorf("storage: write page %d after crash: %w", pid, ErrDiskFailed)
	}
	return d.inner.Write(pid, img)
}

// Read checks the disk.read failpoint and then delegates. Reads keep
// working after a crash or a broken-for-writes latch: the frozen images
// remain readable, which is what lets degraded mode serve queries.
func (d *FaultyDisk) Read(pid PageID) ([]byte, bool, error) {
	if err := d.inj.Check(FPDiskRead); err != nil {
		return nil, false, fmt.Errorf("storage: read page %d: %w", pid, err)
	}
	return d.inner.Read(pid)
}

// Snapshot copies the wrapped device's current (possibly frozen) state.
func (d *FaultyDisk) Snapshot() *MemDisk { return d.inner.Snapshot() }

// Len returns the number of stable pages on the wrapped device.
func (d *FaultyDisk) Len() int { return d.inner.Len() }

// PageIDs returns the wrapped device's page IDs.
func (d *FaultyDisk) PageIDs() []PageID { return d.inner.PageIDs() }

// LatencyDisk wraps a Disk and adds a fixed delay to every Read,
// emulating device read latency. Benchmarks use it to measure latency
// hiding (scan read-ahead) on hosts whose temp filesystems answer reads
// from memory: without emulated latency there is no stall to overlap,
// and the experiment would measure only the prefetcher's overhead.
// Writes are not delayed — the pool's write-back path is asynchronous
// already and is not what read-ahead targets.
type LatencyDisk struct {
	inner   Disk
	readLat time.Duration
}

// NewLatencyDisk wraps inner with readLat of emulated read latency.
func NewLatencyDisk(inner Disk, readLat time.Duration) *LatencyDisk {
	return &LatencyDisk{inner: inner, readLat: readLat}
}

// Write delegates unchanged.
func (d *LatencyDisk) Write(pid PageID, img []byte) error { return d.inner.Write(pid, img) }

// Read sleeps the emulated latency, then delegates.
func (d *LatencyDisk) Read(pid PageID) (img []byte, ok bool, err error) {
	time.Sleep(d.readLat)
	return d.inner.Read(pid)
}

// Snapshot delegates unchanged.
func (d *LatencyDisk) Snapshot() *MemDisk { return d.inner.Snapshot() }

// Len delegates unchanged.
func (d *LatencyDisk) Len() int { return d.inner.Len() }

// PageIDs delegates unchanged.
func (d *LatencyDisk) PageIDs() []PageID { return d.inner.PageIDs() }
