// Package storage provides the paged stable store and buffer pool under
// every access method in this repository, with the write-ahead-log
// protocol the paper assumes (§4.3.1): a dirty page is never written to
// the stable layer before the log records that dirtied it are forced.
//
// A simulated crash discards everything volatile — buffer pool contents
// and the unforced log tail — and restarts from the stable page images
// plus the stable log prefix, which is exactly the state a real system
// recovers from.
package storage

import (
	"sync"
)

// PageID identifies a page within one store. NilPage (0) is never a valid
// page; MetaPage (1) holds the store's space-management information and
// root directory.
type PageID uint64

const (
	// NilPage is the null page ID.
	NilPage PageID = 0
	// MetaPage is the fixed ID of the space-management page.
	MetaPage PageID = 1
)

// Disk is the stable layer: a map from page ID to its last flushed image.
// Images include an 8-byte pageLSN header followed by a type tag and the
// codec-encoded content. Disk is safe for concurrent use.
type Disk struct {
	mu    sync.RWMutex
	pages map[PageID][]byte
}

// NewDisk returns an empty stable store.
func NewDisk() *Disk {
	return &Disk{pages: make(map[PageID][]byte)}
}

// Write atomically replaces the stable image of pid. The page write itself
// is atomic, as sector-sized writes are on real devices; torn multi-page
// states are represented by some pages having old images and others new.
func (d *Disk) Write(pid PageID, img []byte) {
	cp := make([]byte, len(img))
	copy(cp, img)
	d.mu.Lock()
	d.pages[pid] = cp
	d.mu.Unlock()
}

// Read returns the stable image of pid, or ok=false if the page was never
// flushed.
func (d *Disk) Read(pid PageID) (img []byte, ok bool) {
	d.mu.RLock()
	img, ok = d.pages[pid]
	d.mu.RUnlock()
	return img, ok
}

// Snapshot returns an independent copy of the stable layer, used to build
// crash images while the original keeps running.
func (d *Disk) Snapshot() *Disk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := make(map[PageID][]byte, len(d.pages))
	for pid, img := range d.pages {
		b := make([]byte, len(img))
		copy(b, img)
		cp[pid] = b
	}
	return &Disk{pages: cp}
}

// Len returns the number of stable pages.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PageIDs returns the IDs of all stable pages, in no particular order.
func (d *Disk) PageIDs() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PageID, 0, len(d.pages))
	for pid := range d.pages {
		out = append(out, pid)
	}
	return out
}
