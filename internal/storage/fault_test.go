package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/wal"
)

// newFaultyPool builds a pool over a FaultyDisk wired to a fresh seeded
// injector, with the injector also on the pool's eviction path.
func newFaultyPool(capacity int, seed int64) (*Pool, *wal.Log, *fault.Injector) {
	log := wal.New()
	inj := fault.New(seed)
	p := NewPool(1, NewFaultyDisk(NewDisk(), inj), log, byteCodec{}, capacity)
	p.SetInjector(inj)
	return p, log, inj
}

func dirtyPage(t testing.TB, p *Pool, lg *testLogger, pid PageID, b []byte) {
	t.Helper()
	f := mustCreate(t, p, pid)
	f.Latch.AcquireX()
	f.Data = append([]byte(nil), b...)
	f.MarkDirty(lg.LogUpdate(p.StoreID, uint64(pid), 0, nil))
	f.Latch.ReleaseX()
	p.Unpin(f)
}

func TestFlushTransientDiskFaultRetried(t *testing.T) {
	p, log, inj := newFaultyPool(0, 1)
	lg := &testLogger{log: log}
	dirtyPage(t, p, lg, 3, []byte("survives"))
	inj.Arm(FPDiskWrite, fault.Spec{Kind: fault.Transient, Count: 2})
	if err := p.FlushPage(3); err != nil {
		t.Fatalf("transient write fault not retried: %v", err)
	}
	if len(p.DirtyPages()) != 0 {
		t.Fatal("page still dirty after successful flush")
	}
	img, ok, err := p.Disk().Read(3)
	if err != nil || !ok {
		t.Fatalf("stable image missing: %v %v", ok, err)
	}
	_, _, content, err := unframeImage(img)
	if err != nil || !bytes.Equal(content, []byte("survives")) {
		t.Fatalf("stable image %q err=%v", content, err)
	}
}

func TestTornPageWriteKeepsStaleImageAndDirtyFrame(t *testing.T) {
	p, log, inj := newFaultyPool(0, 2)
	lg := &testLogger{log: log}
	dirtyPage(t, p, lg, 3, []byte("old"))
	if err := p.FlushPage(3); err != nil {
		t.Fatal(err)
	}

	// Dirty it again, then tear the write-back: the stale "old" image
	// must persist and the frame must stay dirty so a later flush (or
	// redo) still covers the page.
	f, err := p.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	f.Latch.AcquireX()
	f.Data = []byte("new")
	f.MarkDirty(lg.LogUpdate(p.StoreID, 3, 0, nil))
	f.Latch.ReleaseX()
	p.Unpin(f)

	inj.Arm(FPDiskWrite, fault.Spec{Kind: fault.Torn})
	err = p.FlushPage(3)
	if !fault.IsTorn(err) {
		t.Fatalf("flush over torn write: %v", err)
	}
	if len(p.DirtyPages()) != 1 {
		t.Fatal("torn flush cleaned the frame")
	}
	img, ok, rerr := p.Disk().Read(3)
	if rerr != nil || !ok {
		t.Fatalf("stable image gone: %v %v", ok, rerr)
	}
	if _, _, content, _ := unframeImage(img); !bytes.Equal(content, []byte("old")) {
		t.Fatalf("stable image is %q, want the stale %q", content, "old")
	}
	// Disarmed, the retry path flushes the new contents.
	inj.Disarm(FPDiskWrite)
	if err := p.FlushPage(3); err != nil {
		t.Fatal(err)
	}
	img, _, _ = p.Disk().Read(3)
	if _, _, content, _ := unframeImage(img); !bytes.Equal(content, []byte("new")) {
		t.Fatalf("stable image is %q after reflush", content)
	}
}

func TestPermanentDiskFaultLatchesBroken(t *testing.T) {
	p, log, inj := newFaultyPool(0, 3)
	lg := &testLogger{log: log}
	dirtyPage(t, p, lg, 3, []byte("x"))
	inj.Arm(FPDiskWrite, fault.Spec{Kind: fault.Permanent})
	if err := p.FlushPage(3); !fault.IsPermanent(err) {
		t.Fatalf("flush on dead device: %v", err)
	}
	// The device is broken for good, even with the point disarmed.
	inj.Disarm(FPDiskWrite)
	if err := p.FlushPage(3); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("flush after permanent fault: %v", err)
	}
	// Reads keep working: degraded mode serves what is stable.
	if _, _, err := p.Disk().Read(3); err != nil {
		t.Fatalf("read on write-dead device: %v", err)
	}
}

func TestEvictionWriteBackFailureKeepsVictimBuffered(t *testing.T) {
	const capacity = 4
	p, log, inj := newFaultyPool(capacity, 4)
	lg := &testLogger{log: log}
	for pid := PageID(2); pid < 2+capacity; pid++ {
		dirtyPage(t, p, lg, pid, []byte{byte(pid)})
	}
	// The next create must evict a dirty victim; fail that write-back.
	inj.Arm(FPPoolEvict, fault.Spec{Kind: fault.Permanent})
	_, err := p.Create(50)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("create over failed eviction: %v", err)
	}
	inj.Disarm(FPPoolEvict)
	// Nothing was lost: every original page is intact (the victim was
	// reattached — its contents existed nowhere else) and still dirty.
	if got := len(p.DirtyPages()); got != capacity {
		t.Fatalf("dirty pages = %d, want %d", got, capacity)
	}
	for pid := PageID(2); pid < 2+capacity; pid++ {
		f, err := p.Fetch(pid)
		if err != nil {
			t.Fatalf("fetch %d: %v", pid, err)
		}
		if f.Data.([]byte)[0] != byte(pid) {
			t.Fatalf("page %d contents lost", pid)
		}
		p.Unpin(f)
	}
	// And the failed create did not leave a ghost frame.
	if _, err := p.Fetch(50); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("fetch of failed create: %v", err)
	}
}

func TestFetchReadTransientRetried(t *testing.T) {
	p, log, inj := newFaultyPool(2, 5)
	lg := &testLogger{log: log}
	for pid := PageID(2); pid < 8; pid++ {
		dirtyPage(t, p, lg, pid, []byte{byte(pid)})
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	inj.Arm(FPDiskRead, fault.Spec{Kind: fault.Transient, Count: 2})
	// Sweep: some fetch must miss and re-read from disk through the
	// transient fault.
	for pid := PageID(2); pid < 8; pid++ {
		f, err := p.Fetch(pid)
		if err != nil {
			t.Fatalf("fetch %d: %v", pid, err)
		}
		if f.Data.([]byte)[0] != byte(pid) {
			t.Fatalf("page %d corrupted", pid)
		}
		p.Unpin(f)
	}
	if inj.Hits(FPDiskRead) == 0 {
		t.Fatal("no disk reads probed the failpoint")
	}
}

func TestCrashLatchFreezesDisk(t *testing.T) {
	p, log, inj := newFaultyPool(0, 6)
	lg := &testLogger{log: log}
	dirtyPage(t, p, lg, 3, []byte("stable"))
	if err := p.FlushPage(3); err != nil {
		t.Fatal(err)
	}
	snapBefore := p.Disk().Snapshot()

	// Dirty again, crash, and try to flush: nothing may reach the disk.
	f, _ := p.Fetch(3)
	f.Latch.AcquireX()
	f.Data = []byte("volatile")
	f.MarkDirty(lg.LogUpdate(p.StoreID, 3, 0, nil))
	f.Latch.ReleaseX()
	p.Unpin(f)
	inj.TripCrash()
	if err := p.FlushPage(3); !errors.Is(err, ErrDiskFailed) {
		t.Fatalf("flush after crash: %v", err)
	}
	imgA, _, _ := snapBefore.Read(3)
	imgB, ok, err := p.Disk().Read(3)
	if err != nil || !ok || !bytes.Equal(imgA, imgB) {
		t.Fatal("disk image changed after the crash instant")
	}
}
