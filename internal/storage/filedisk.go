// FileDisk: a page-addressed data file with per-page checksums, torn-page
// detection, and careful replacement.
//
// Each page owns two fixed-size slots (ping-pong). A write always targets
// the slot NOT holding the current image and carries a monotonically
// increasing sequence number, so the prior image stays intact until the
// new one is completely on disk — the paper's careful replacement
// discipline (§2.2) realized at the file layer. A torn write therefore
// leaves the page readable at its previous version, which is exactly the
// semantics the in-memory fault simulation (FaultyDisk over MemDisk)
// models, and what keeps the MemDisk-vs-FileDisk recovery equivalence
// oracle exact.
//
// On-disk format (little-endian):
//
//	file header (32 bytes):
//	  [0:8)   magic "PITRPAGE"
//	  [8:12)  format version (1)
//	  [12:16) slot size in bytes
//	  [16:20) CRC32C over bytes [0:16)
//	  [20:32) zero pad
//
//	page pid (pid >= 1) occupies two slots at
//	  off(pid, s) = 32 + (pid-1)*2*slotSize + s*slotSize, s in {0,1}
//
//	slot frame (28-byte header + content):
//	  [0:4)   magic "PGSL"
//	  [4:12)  sequence number (monotone per page; higher wins)
//	  [12:20) page ID (self-check against cross-linked offsets)
//	  [20:24) content length
//	  [24:28) CRC32C over bytes [4:24) + content
//	  [28:..) page image (pageLSN header + tag + codec content)
//
// Reads verify the active slot's checksum; on open both slots are
// scanned and the newest intact one wins. Both slots present but corrupt
// means the stable image is genuinely lost — ErrTornPage, fatal, because
// redo needs an intact base image. One corrupt slot and one zero slot is
// a torn FIRST write: the page was never completely flushed, so it reads
// as never-written (ok=false) and redo recreates it from the log.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

const (
	fdHdrLen   = 32
	fdMagic    = "PITRPAGE"
	fdVersion  = 1
	slotHdrLen = 28
	slotMagic  = 0x4c534750 // "PGSL"
	// DefaultSlotSize is the default per-slot size; an image must fit in
	// slotSize-slotHdrLen bytes.
	DefaultSlotSize = 8192
)

var fdCRCTable = crc32.MakeTable(crc32.Castagnoli)

// FileDiskStats counts the data file's physical work.
type FileDiskStats struct {
	PagesWritten   int64
	BytesWritten   int64
	PartialWrites  int64
	ChecksumChecks int64 // slot checksum verifications (reads + open scan)
	ChecksumFails  int64
	Fsyncs         int64
}

type fdSlotState struct {
	active int    // slot holding the current image (0 or 1)
	seq    uint64 // its sequence number
	torn   bool   // both slots corrupt: image lost
}

// FileDisk implements Disk over a real file. Write is a single pwrite
// with no fsync — data-page durability rides on Sync(), which the engine
// calls at checkpoints before recycling log segments (write-ahead
// ordering: a page's log records are always forced before the page is
// flushed, and its segments are only recycled after the page is synced).
type FileDisk struct {
	path     string
	slotSize int

	mu    sync.RWMutex
	f     *os.File
	pages map[PageID]*fdSlotState

	checks atomic.Int64
	fails  atomic.Int64
	writes atomic.Int64
	bytes  atomic.Int64
	parts  atomic.Int64
	syncs  atomic.Int64
}

// OpenFileDisk opens or creates the page file at path. slotSize <= 0
// means DefaultSlotSize. An existing file is scanned: every page's
// newest intact slot becomes its stable image.
func OpenFileDisk(path string, slotSize int) (*FileDisk, error) {
	if slotSize <= 0 {
		slotSize = DefaultSlotSize
	}
	if slotSize < slotHdrLen+16 {
		return nil, fmt.Errorf("storage: slot size %d too small", slotSize)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	d := &FileDisk{path: path, slotSize: slotSize, f: f, pages: make(map[PageID]*fdSlotState)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [fdHdrLen]byte
		copy(hdr[0:8], fdMagic)
		binary.LittleEndian.PutUint32(hdr[8:], fdVersion)
		binary.LittleEndian.PutUint32(hdr[12:], uint32(slotSize))
		binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[0:16], fdCRCTable))
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	var hdr [fdHdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s: %w", path, ErrTornPage)
	}
	if string(hdr[0:8]) != fdMagic ||
		binary.LittleEndian.Uint32(hdr[8:]) != fdVersion ||
		binary.LittleEndian.Uint32(hdr[16:]) != crc32.Checksum(hdr[0:16], fdCRCTable) {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s header corrupt: %w", path, ErrTornPage)
	}
	d.slotSize = int(binary.LittleEndian.Uint32(hdr[12:]))
	if err := d.scan(st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// scan walks every slot pair, electing each page's newest intact image.
func (d *FileDisk) scan(size int64) error {
	pairBytes := int64(2 * d.slotSize)
	npages := (size - fdHdrLen + pairBytes - 1) / pairBytes
	buf := make([]byte, pairBytes)
	for i := int64(0); i < npages; i++ {
		off := fdHdrLen + i*pairBytes
		n, _ := d.f.ReadAt(buf, off)
		pid := PageID(i + 1)
		pair := buf[:n]
		var st fdSlotState
		haveValid := false
		nonzeroCorrupt := 0
		for s := 0; s < 2; s++ {
			lo := s * d.slotSize
			if lo >= len(pair) {
				break
			}
			hi := lo + d.slotSize
			if hi > len(pair) {
				hi = len(pair)
			}
			slot := pair[lo:hi]
			img, seq, ok := d.verifySlot(slot, pid)
			if ok {
				if !haveValid || seq > st.seq {
					st.active, st.seq = s, seq
				}
				haveValid = true
				_ = img
			} else if !allZero(slot) {
				nonzeroCorrupt++
			}
		}
		switch {
		case haveValid:
			cp := st
			d.pages[pid] = &cp
		case nonzeroCorrupt >= 2:
			// Both versions corrupt: the stable image is lost for good.
			d.pages[pid] = &fdSlotState{torn: true}
		default:
			// All-zero (never written) or a single torn first write:
			// the page reads as never flushed.
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// verifySlot checks one slot frame; returns the content and sequence.
func (d *FileDisk) verifySlot(slot []byte, pid PageID) ([]byte, uint64, bool) {
	d.checks.Add(1)
	if len(slot) < slotHdrLen || binary.LittleEndian.Uint32(slot[0:]) != slotMagic {
		return nil, 0, false
	}
	seq := binary.LittleEndian.Uint64(slot[4:])
	if PageID(binary.LittleEndian.Uint64(slot[12:])) != pid {
		d.fails.Add(1)
		return nil, 0, false
	}
	ln := int(binary.LittleEndian.Uint32(slot[20:]))
	if ln < 0 || slotHdrLen+ln > len(slot) {
		d.fails.Add(1)
		return nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(slot[24:])
	h := crc32.Checksum(slot[4:24], fdCRCTable)
	h = crc32.Update(h, fdCRCTable, slot[slotHdrLen:slotHdrLen+ln])
	if h != crc {
		d.fails.Add(1)
		return nil, 0, false
	}
	return slot[slotHdrLen : slotHdrLen+ln], seq, true
}

func (d *FileDisk) slotOff(pid PageID, slot int) int64 {
	return fdHdrLen + (int64(pid)-1)*2*int64(d.slotSize) + int64(slot)*int64(d.slotSize)
}

// frameSlot builds the on-disk slot frame for img.
func (d *FileDisk) frameSlot(pid PageID, seq uint64, img []byte) ([]byte, error) {
	if len(img) > d.slotSize-slotHdrLen {
		return nil, fmt.Errorf("storage: page %d image %dB exceeds slot capacity %dB", pid, len(img), d.slotSize-slotHdrLen)
	}
	b := make([]byte, slotHdrLen+len(img))
	binary.LittleEndian.PutUint32(b[0:], slotMagic)
	binary.LittleEndian.PutUint64(b[4:], seq)
	binary.LittleEndian.PutUint64(b[12:], uint64(pid))
	binary.LittleEndian.PutUint32(b[20:], uint32(len(img)))
	copy(b[slotHdrLen:], img)
	h := crc32.Checksum(b[4:24], fdCRCTable)
	h = crc32.Update(h, fdCRCTable, b[slotHdrLen:])
	binary.LittleEndian.PutUint32(b[24:], h)
	return b, nil
}

// Write replaces the stable image of pid via careful replacement: the
// frame lands in the inactive slot and only then does the in-memory
// election flip to it.
func (d *FileDisk) Write(pid PageID, img []byte) error {
	if pid == NilPage {
		return errors.New("storage: write to nil page")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.pages[pid]
	target, seq := 0, uint64(1)
	if st != nil && !st.torn {
		target, seq = 1-st.active, st.seq+1
	}
	b, err := d.frameSlot(pid, seq, img)
	if err != nil {
		return err
	}
	if _, err := d.f.WriteAt(b, d.slotOff(pid, target)); err != nil {
		return err
	}
	d.writes.Add(1)
	d.bytes.Add(int64(len(b)))
	if st == nil || st.torn {
		d.pages[pid] = &fdSlotState{active: target, seq: seq}
	} else {
		st.active, st.seq = target, seq
	}
	return nil
}

// WritePartial writes only a seeded prefix of the framed image into the
// target slot — a genuine torn pwrite. The in-memory election is NOT
// updated: the prior image (or never-written state) remains the page's
// stable version, and a post-crash rescan elects the same way because
// the partial frame fails its checksum.
func (d *FileDisk) WritePartial(pid PageID, img []byte, frac float64) error {
	if pid == NilPage {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.pages[pid]
	target, seq := 0, uint64(1)
	if st != nil && !st.torn {
		target, seq = 1-st.active, st.seq+1
	}
	b, err := d.frameSlot(pid, seq, img)
	if err != nil {
		return err
	}
	n := int(frac * float64(len(b)))
	if n >= len(b) {
		n = len(b) - 1 // a complete frame would not be torn
	}
	if n <= 0 {
		return nil
	}
	if _, err := d.f.WriteAt(b[:n], d.slotOff(pid, target)); err != nil {
		return err
	}
	d.parts.Add(1)
	return nil
}

// Read returns the stable image of pid, verifying its checksum.
func (d *FileDisk) Read(pid PageID) ([]byte, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.readLocked(pid)
}

func (d *FileDisk) readLocked(pid PageID) ([]byte, bool, error) {
	st := d.pages[pid]
	if st == nil {
		return nil, false, nil
	}
	if st.torn {
		return nil, false, fmt.Errorf("storage: page %d: both slots corrupt: %w", pid, ErrTornPage)
	}
	slot := make([]byte, d.slotSize)
	n, _ := d.f.ReadAt(slot, d.slotOff(pid, st.active))
	img, _, ok := d.verifySlot(slot[:n], pid)
	if !ok {
		return nil, false, fmt.Errorf("storage: page %d slot %d checksum mismatch: %w", pid, st.active, ErrTornPage)
	}
	cp := make([]byte, len(img))
	copy(cp, img)
	return cp, true, nil
}

// Snapshot copies every intact stable image into a MemDisk.
func (d *FileDisk) Snapshot() *MemDisk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := make(map[PageID][]byte, len(d.pages))
	for pid, st := range d.pages {
		if st.torn {
			continue
		}
		if img, ok, err := d.readLocked(pid); err == nil && ok {
			cp[pid] = img
		}
	}
	return &MemDisk{pages: cp}
}

// Len returns the number of stable pages.
func (d *FileDisk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PageIDs returns the IDs of all stable pages.
func (d *FileDisk) PageIDs() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]PageID, 0, len(d.pages))
	for pid := range d.pages {
		out = append(out, pid)
	}
	return out
}

// Sync fsyncs the page file. The engine calls this at checkpoints,
// before log segments below the new horizon are recycled.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.syncs.Add(1)
	return nil
}

// Close closes the page file without syncing.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// Stats returns a snapshot of the physical-work counters.
func (d *FileDisk) Stats() FileDiskStats {
	return FileDiskStats{
		PagesWritten:   d.writes.Load(),
		BytesWritten:   d.bytes.Load(),
		PartialWrites:  d.parts.Load(),
		ChecksumChecks: d.checks.Load(),
		ChecksumFails:  d.fails.Load(),
		Fsyncs:         d.syncs.Load(),
	}
}
