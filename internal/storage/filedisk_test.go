package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func mkImage(pid PageID, fill byte, n int) []byte {
	img := make([]byte, n)
	for i := range img {
		img[i] = fill ^ byte(pid)
	}
	return img
}

func TestFileDiskRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := map[PageID][]byte{}
	for pid := PageID(1); pid <= 20; pid++ {
		// Overwrite several times so both slots see traffic.
		for v := 0; v < 3; v++ {
			img := mkImage(pid, byte('A'+v), 64+int(pid))
			if err := d.Write(pid, img); err != nil {
				t.Fatalf("write %d: %v", pid, err)
			}
			want[pid] = img
		}
	}
	for pid, img := range want {
		got, ok, err := d.Read(pid)
		if err != nil || !ok || !bytes.Equal(got, img) {
			t.Fatalf("read %d: ok=%v err=%v", pid, ok, err)
		}
	}
	if _, ok, err := d.Read(99); ok || err != nil {
		t.Fatalf("read unwritten page: ok=%v err=%v", ok, err)
	}
	d.Close()

	// Reopen: the scan elects the newest slot of every page.
	d2, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != len(want) {
		t.Fatalf("reopen len %d, want %d", d2.Len(), len(want))
	}
	for pid, img := range want {
		got, ok, err := d2.Read(pid)
		if err != nil || !ok || !bytes.Equal(got, img) {
			t.Fatalf("reopen read %d: ok=%v err=%v", pid, ok, err)
		}
	}
	if d2.Stats().ChecksumChecks == 0 {
		t.Fatalf("reopen verified no checksums")
	}
}

func TestFileDiskChecksumMismatchRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	img1 := mkImage(3, 'x', 100)
	img2 := mkImage(3, 'y', 100)
	if err := d.Write(3, img1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.Write(3, img2); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Corrupt the ACTIVE slot under the cache: the live read fails its
	// checksum with the typed sentinel.
	st := d.pages[3]
	off := d.slotOff(3, st.active)
	if _, err := d.f.WriteAt([]byte{0xde, 0xad}, off+slotHdrLen+10); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	_, _, err = d.Read(3)
	if !errors.Is(err, ErrTornPage) {
		t.Fatalf("read of corrupt slot: %v, want ErrTornPage", err)
	}
	if d.Stats().ChecksumFails == 0 {
		t.Fatalf("no checksum failure counted")
	}
	d.Close()

	// Reopen: careful replacement falls back to the intact older slot.
	d2, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok, err := d2.Read(3)
	if err != nil || !ok || !bytes.Equal(got, img1) {
		t.Fatalf("fallback read: ok=%v err=%v (want prior image)", ok, err)
	}
	// Corrupt the fallback too: now the image is genuinely lost and the
	// page reads as torn — the fatal case.
	st2 := d2.pages[3]
	if _, err := d2.f.WriteAt([]byte{0xbe, 0xef}, d2.slotOff(3, st2.active)+slotHdrLen+5); err != nil {
		t.Fatalf("corrupt 2: %v", err)
	}
	d2.Close()
	d3, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	defer d3.Close()
	_, _, err = d3.Read(3)
	if !errors.Is(err, ErrTornPage) {
		t.Fatalf("both-slots-corrupt read: %v, want ErrTornPage", err)
	}
}

func TestFileDiskPartialWriteKeepsPriorImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	prior := mkImage(5, 'p', 120)
	if err := d.Write(5, prior); err != nil {
		t.Fatalf("write: %v", err)
	}
	torn := mkImage(5, 'q', 120)
	for _, frac := range []float64{0.1, 0.5, 0.97, 1.0} {
		if err := d.WritePartial(5, torn, frac); err != nil {
			t.Fatalf("partial %v: %v", frac, err)
		}
		got, ok, err := d.Read(5)
		if err != nil || !ok || !bytes.Equal(got, prior) {
			t.Fatalf("after tear %v: ok=%v err=%v (want prior image)", frac, ok, err)
		}
	}
	if d.Stats().PartialWrites == 0 {
		t.Fatalf("no partial writes counted")
	}
	d.Close()

	// A crash after the torn write rescans and still elects the prior
	// image: the partial frame fails its checksum.
	d2, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, ok, err := d2.Read(5)
	if err != nil || !ok || !bytes.Equal(got, prior) {
		t.Fatalf("post-crash read: ok=%v err=%v (want prior image)", ok, err)
	}
	d2.Close()

	// A torn FIRST write (no prior version) reads as never-written.
	path2 := filepath.Join(t.TempDir(), "pages2.db")
	d3, err := OpenFileDisk(path2, 512)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if err := d3.WritePartial(7, mkImage(7, 'z', 80), 0.6); err != nil {
		t.Fatalf("partial first write: %v", err)
	}
	if _, ok, err := d3.Read(7); ok || err != nil {
		t.Fatalf("torn first write visible: ok=%v err=%v", ok, err)
	}
	d3.Close()
	d4, err := OpenFileDisk(path2, 512)
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	defer d4.Close()
	if _, ok, err := d4.Read(7); ok || err != nil {
		t.Fatalf("torn first write visible after rescan: ok=%v err=%v", ok, err)
	}
}

// TestFileDiskFaultyTornMapsToPartialWrite checks the injector plumbing:
// a fault.Torn on disk.write over a FileDisk produces a genuine partial
// pwrite (not just a dropped write), while the page stays readable at
// its prior version — the same observable semantics MemDisk simulates.
func TestFileDiskFaultyTornMapsToPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fd, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer fd.Close()
	inj := fault.New(42)
	d := NewFaultyDisk(fd, inj)
	prior := mkImage(2, 'm', 90)
	if err := d.Write(2, prior); err != nil {
		t.Fatalf("write: %v", err)
	}
	inj.Arm(FPDiskWrite, fault.Spec{Kind: fault.Torn})
	err = d.Write(2, mkImage(2, 'n', 90))
	if err == nil || !fault.IsTorn(err) {
		t.Fatalf("torn write error = %v", err)
	}
	if fd.Stats().PartialWrites != 1 {
		t.Fatalf("partial writes = %d, want 1 (real bytes must land)", fd.Stats().PartialWrites)
	}
	got, ok, rerr := d.Read(2)
	if rerr != nil || !ok || !bytes.Equal(got, prior) {
		t.Fatalf("read after torn write: ok=%v err=%v (want prior image)", ok, rerr)
	}
}

func TestFileDiskSnapshotEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fd, err := OpenFileDisk(path, 1024)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer fd.Close()
	md := NewDisk()
	for pid := PageID(1); pid <= 30; pid++ {
		img := mkImage(pid, byte(pid*3), 50+int(pid)*7)
		if err := fd.Write(pid, img); err != nil {
			t.Fatalf("fd write: %v", err)
		}
		if err := md.Write(pid, img); err != nil {
			t.Fatalf("md write: %v", err)
		}
	}
	sf, sm := fd.Snapshot(), md.Snapshot()
	if sf.Len() != sm.Len() {
		t.Fatalf("snapshot len %d vs %d", sf.Len(), sm.Len())
	}
	for _, pid := range sm.PageIDs() {
		a, _, _ := sf.Read(pid)
		b, _, _ := sm.Read(pid)
		if !bytes.Equal(a, b) {
			t.Fatalf("snapshot image %d differs", pid)
		}
	}
}

func TestFileDiskImageTooLarge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path, 256)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	if err := d.Write(1, make([]byte, 256)); err == nil {
		t.Fatalf("oversized image accepted")
	}
	if err := d.Write(1, make([]byte, 256-slotHdrLen)); err != nil {
		t.Fatalf("max-size image rejected: %v", err)
	}
}

func TestFileDiskHeaderCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := OpenFileDisk(path, 512)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := d.Write(1, mkImage(1, 'h', 40)); err != nil {
		t.Fatalf("write: %v", err)
	}
	d.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("raw open: %v", err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 3); err != nil {
		t.Fatalf("corrupt header: %v", err)
	}
	f.Close()
	if _, err := OpenFileDisk(path, 512); !errors.Is(err, ErrTornPage) {
		t.Fatalf("corrupt header open: %v, want ErrTornPage", err)
	}
}
