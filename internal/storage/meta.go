package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Meta is the decoded contents of a store's space-management page. The
// paper orders space-management information last in the latch order
// (§4.1.1); callers must therefore latch the meta frame only while holding
// no intention of latching further pages.
//
// Meta is mutated only through logged operations (see Alloc/Free/SetRoot
// kinds registered by this package with the recovery registry), so its
// state is reconstructed by redo like any other page.
type Meta struct {
	// Next is the next never-allocated page ID.
	Next PageID
	// Free holds de-allocated page IDs available for reuse, kept sorted
	// ascending. The sorted order is canonical: it makes the encoded meta
	// page a pure function of the free SET, so restarts that replay
	// de-allocation compensations in different worker interleavings
	// (parallel undo) still converge to byte-identical meta images — the
	// property the serial-vs-parallel equivalence oracle asserts.
	Free []PageID
	// Roots maps index names to their root page IDs. Roots never move and
	// are never de-allocated (§5.2.2 strategy (a) relies on this).
	Roots map[string]PageID
}

// NewMeta returns the initial meta contents for an empty store: page IDs
// begin after the meta page itself.
func NewMeta() *Meta {
	return &Meta{Next: MetaPage + 1, Roots: make(map[string]PageID)}
}

// AllocLocal takes a page ID from the free list or the never-allocated
// range. The caller must hold the meta frame's X latch and must log the
// operation (KindMetaAlloc) itself. The pop takes the largest free ID —
// O(1), and deterministic given the free set.
func (m *Meta) AllocLocal() PageID {
	if n := len(m.Free); n > 0 {
		pid := m.Free[n-1]
		m.Free = m.Free[:n-1]
		return pid
	}
	pid := m.Next
	m.Next++
	return pid
}

// freePos returns the sorted-insert position of pid and whether it is
// already present.
func (m *Meta) freePos(pid PageID) (int, bool) {
	i := sort.Search(len(m.Free), func(j int) bool { return m.Free[j] >= pid })
	return i, i < len(m.Free) && m.Free[i] == pid
}

// FreeLocal returns pid to the free list at its sorted position. Caller
// holds the X latch and logs the operation (KindMetaFree).
func (m *Meta) FreeLocal(pid PageID) {
	i, present := m.freePos(pid)
	if present {
		return
	}
	m.Free = append(m.Free, 0)
	copy(m.Free[i+1:], m.Free[i:])
	m.Free[i] = pid
}

// RemoveFree withdraws pid from the free list if present, used by redo and
// undo to keep replay idempotent.
func (m *Meta) RemoveFree(pid PageID) {
	i, present := m.freePos(pid)
	if !present {
		return
	}
	m.Free = append(m.Free[:i], m.Free[i+1:]...)
}

// IsFree reports whether pid is on the free list.
func (m *Meta) IsFree(pid PageID) bool {
	_, present := m.freePos(pid)
	return present
}

// encode serializes the meta page.
func (m *Meta) encode() []byte {
	names := make([]string, 0, len(m.Roots))
	for n := range m.Roots {
		names = append(names, n)
	}
	sort.Strings(names)
	var b []byte
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	put64(uint64(m.Next))
	put64(uint64(len(m.Free)))
	for _, f := range m.Free {
		put64(uint64(f))
	}
	put64(uint64(len(names)))
	for _, n := range names {
		put64(uint64(len(n)))
		b = append(b, n...)
		put64(uint64(m.Roots[n]))
	}
	return b
}

func decodeMeta(b []byte) (*Meta, error) {
	m := &Meta{Roots: make(map[string]PageID)}
	off := 0
	get64 := func() (uint64, error) {
		if off+8 > len(b) {
			return 0, fmt.Errorf("storage: truncated meta page")
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, nil
	}
	v, err := get64()
	if err != nil {
		return nil, err
	}
	m.Next = PageID(v)
	nfree, err := get64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nfree; i++ {
		f, err := get64()
		if err != nil {
			return nil, err
		}
		m.FreeLocal(PageID(f))
	}
	nroots, err := get64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nroots; i++ {
		nlen, err := get64()
		if err != nil {
			return nil, err
		}
		if off+int(nlen) > len(b) {
			return nil, fmt.Errorf("storage: truncated meta root name")
		}
		name := string(b[off : off+int(nlen)])
		off += int(nlen)
		pid, err := get64()
		if err != nil {
			return nil, err
		}
		m.Roots[name] = PageID(pid)
	}
	return m, nil
}
