package storage

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/latch"
	"repro/internal/wal"
)

// ErrPageNotFound reports a Fetch of a page that is neither buffered nor
// stable.
var ErrPageNotFound = errors.New("storage: page not found")

// FPPoolEvict is the failpoint probed at the start of each dirty-victim
// write-back (eviction's flush of a detached frame). Arming it with a
// crash trigger stops the world mid-eviction; arming it with a fault
// kind fails the write-back, which reattaches the victim to its shard.
const FPPoolEvict = "pool.evict"

// diskRetries bounds retries of an injected transient disk fault within
// one logical page I/O.
const diskRetries = 3

// dirtyBit is the dirty flag packed into Frame.meta's top bit; the low 63
// bits hold the pageLSN. LSNs are byte offsets into the in-memory log and
// never reach 2^63.
const dirtyBit = uint64(1) << 63

// Frame is a buffered page. The decoded contents (Data) are protected by
// the frame's Latch: mutate only under X, read under S or U. Bookkeeping
// (pageLSN+dirty packed into one atomic word, recLSN in another) is
// lock-free so that PageLSN — read on every node visit during a search —
// and fuzzy-checkpoint snapshots never contend on a mutex.
//
// Protocol: pin (via Fetch/Create) before latching; unlatch before
// unpinning. A pinned frame is never evicted.
type Frame struct {
	ID    PageID
	Latch latch.Latch
	// Data is the decoded page content; nil for a created-but-unformatted
	// page (only recovery and fresh allocations see that state).
	Data any

	meta atomic.Uint64 // dirtyBit | pageLSN
	// recLSN is the LSN that first dirtied the page since it was last
	// clean. It goes stale (not zeroed) when a flush cleans the page and
	// is rewritten on the next clean->dirty transition; a reader that
	// races a flush therefore sees a recLSN at most one incarnation old,
	// which only starts redo earlier — never too late.
	recLSN atomic.Uint64

	pins atomic.Int64
	ref      atomic.Uint32 // clock reference bit (bounded pools)
	clockIdx int           // position in the owning shard's clock ring; shard mu

	// preloaded marks a frame warmed by the async prefetcher and not yet
	// touched by a foreground fetch; the first fetch that finds it set
	// counts a prefetch hit, eviction before that counts a waste.
	preloaded atomic.Bool

	// loading marks a pinned placeholder whose disk read is still in
	// flight (bounded pools). Concurrent fetchers of the same page pin the
	// placeholder and park on loadCh — created lazily by the first waiter,
	// so the common no-waiter miss pays no allocation — instead of reading
	// the stable image themselves. loadErr is the read's result. All three
	// fields are written only under the owning shard's mu; the loader
	// writes loadErr (and the page contents) before closing loadCh, so
	// waiters observe them through the close.
	loading bool
	loadCh  chan struct{}
	loadErr error

	// nav is the frame's published navigation snapshot: an immutable copy
	// of Data paired with the latch version it was current at. Optimistic
	// traversals read it without any latch and prove it current by
	// re-checking the version (see latch.Latch's package comment); a
	// holder of the latch publishes a fresh copy when the stored one has
	// gone stale. It is advisory — clearing or losing it only costs the
	// next reader a brief S-latched refresh.
	nav atomic.Pointer[navSnap]
}

// navSnap pairs an immutable decoded snapshot of a frame's contents with
// the latch version it was current at. data is never mutated after
// publication.
type navSnap struct {
	version uint64
	data    any
}

// NavSnapshot returns the published navigation snapshot and the latch
// version it was taken at; ok is false when none is published. The
// snapshot is only known to reflect the frame's current contents if
// f.Latch.Validate(version) (or an OptimisticRead returning the same even
// version) succeeds after the caller has finished deriving from it.
func (f *Frame) NavSnapshot() (data any, version uint64, ok bool) {
	s := f.nav.Load()
	if s == nil {
		return nil, 0, false
	}
	return s.data, s.version, true
}

// PublishNav publishes data as the frame's navigation snapshot current at
// version. Call while holding the frame's latch (any mode) with data an
// immutable deep copy of Data and version the latch's Version() under
// that hold.
func (f *Frame) PublishNav(data any, version uint64) {
	f.nav.Store(&navSnap{version: version, data: data})
}

// ClearNav drops the published snapshot. The pool calls it when a frame
// shell is recycled for a different page, where the old page's snapshot
// paired with the surviving version counter could otherwise masquerade as
// current for the new page.
func (f *Frame) ClearNav() {
	f.nav.Store(nil)
}

// Pin takes an additional pin on a frame the caller already holds pinned.
// The precondition matters: bounded-pool pins are normally taken under the
// owning shard's mu so eviction can trust a zero count, but incrementing a
// count that is already non-zero cannot race an evictor (it only considers
// frames with pins == 0). Release with Pool.Unpin as usual.
func (f *Frame) Pin() {
	if f.pins.Add(1) <= 1 {
		panic(fmt.Sprintf("storage: Pin of unpinned page %d", f.ID))
	}
}

// PageLSN returns the frame's current page LSN (its state identifier,
// §5.2: "log sequence numbers are used for state identifiers in many
// commercial systems").
func (f *Frame) PageLSN() wal.LSN {
	return wal.LSN(f.meta.Load() &^ dirtyBit)
}

// MarkDirty records that the update logged at lsn changed this page. Call
// under the frame's X latch, after appending the log record.
func (f *Frame) MarkDirty(lsn wal.LSN) {
	for {
		old := f.meta.Load()
		if old&dirtyBit == 0 {
			// Clean -> dirty: publish recLSN before the dirty bit so any
			// reader that observes dirty also observes a recLSN.
			f.recLSN.Store(uint64(lsn))
		}
		if f.meta.CompareAndSwap(old, dirtyBit|uint64(lsn)) {
			return
		}
	}
}

// SetPageLSN overwrites the page LSN; recovery uses it when installing
// redo results.
func (f *Frame) SetPageLSN(lsn wal.LSN) {
	f.MarkDirty(lsn)
}

// Dirty reports whether the frame has unflushed changes.
func (f *Frame) Dirty() bool {
	return f.meta.Load()&dirtyBit != 0
}

// dirtySnapshot returns the frame's recLSN if it is dirty. MarkDirty
// publishes recLSN before the dirty bit, so a dirty observation always
// has a usable recLSN; racing a concurrent flush can only yield the
// previous (lower, conservative) incarnation's value.
func (f *Frame) dirtySnapshot() (wal.LSN, bool) {
	if f.meta.Load()&dirtyBit == 0 {
		return wal.NilLSN, false
	}
	return wal.LSN(f.recLSN.Load()), true
}

// ftChunkBits sizes frameTable chunks: 512 slots (4KB of pointers) each.
const ftChunkBits = 9
const ftChunkSize = 1 << ftChunkBits

// ftChunk is one fixed block of page-table slots. Chunks are allocated
// once and never replaced, so a slot address is stable for the table's
// lifetime regardless of spine growth.
type ftChunk [ftChunkSize]atomic.Pointer[Frame]

// frameTable is the unbounded regime's page table. Page IDs are dense
// small integers (Meta allocates them sequentially from 1, reusing freed
// IDs LIFO), so instead of a hash map the table is a spine of chunk
// pointers indexed directly by page ID: a lookup is two atomic loads and
// an index — no hashing, no interface boxing, no lock. This is the
// hottest read in the system (every node visit of every descent fetches
// its frame), which is why it gets a bespoke structure.
//
// The spine is copy-on-write: growth builds a longer []*ftChunk and
// publishes it atomically; all mutations (install, delete, growth) happen
// under mu. Because chunks are shared between spine generations, a reader
// holding a stale spine sees current slot values for every chunk it can
// reach — staleness can only make it miss a chunk added after it loaded
// the spine, and the miss path re-checks under mu.
type frameTable struct {
	mu    sync.Mutex
	spine atomic.Pointer[[]*ftChunk]
}

// get returns the frame for pid, or nil.
func (t *frameTable) get(pid PageID) *Frame {
	s := t.spine.Load()
	if s == nil {
		return nil
	}
	ci := uint64(pid) >> ftChunkBits
	if ci >= uint64(len(*s)) {
		return nil
	}
	return (*s)[ci][uint64(pid)&(ftChunkSize-1)].Load()
}

// getOrInstall returns the existing frame for pid, or installs f and
// returns it; installed reports whether f won.
func (t *frameTable) getOrInstall(pid PageID, f *Frame) (frame *Frame, installed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := t.slotLocked(pid)
	if cur := slot.Load(); cur != nil {
		return cur, false
	}
	slot.Store(f)
	return f, true
}

// delete clears pid's slot.
func (t *frameTable) delete(pid PageID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.spine.Load()
	if s == nil {
		return
	}
	ci := uint64(pid) >> ftChunkBits
	if ci >= uint64(len(*s)) {
		return
	}
	(*s)[ci][uint64(pid)&(ftChunkSize-1)].Store(nil)
}

// slotLocked returns pid's slot, growing the spine as needed. Caller
// holds mu.
func (t *frameTable) slotLocked(pid PageID) *atomic.Pointer[Frame] {
	ci := uint64(pid) >> ftChunkBits
	s := t.spine.Load()
	var old []*ftChunk
	if s != nil {
		old = *s
	}
	if ci >= uint64(len(old)) {
		n := uint64(len(old)) * 2
		if n < 8 {
			n = 8
		}
		for n <= ci {
			n *= 2
		}
		grown := make([]*ftChunk, n)
		copy(grown, old)
		for i := len(old); i < len(grown); i++ {
			grown[i] = new(ftChunk)
		}
		t.spine.Store(&grown)
		old = grown
	}
	return &old[ci][uint64(pid)&(ftChunkSize-1)]
}

// forEach calls fn for every installed frame.
func (t *frameTable) forEach(fn func(f *Frame)) {
	s := t.spine.Load()
	if s == nil {
		return
	}
	for _, c := range *s {
		for i := range c {
			if f := c[i].Load(); f != nil {
				fn(f)
			}
		}
	}
}

// PoolStats are cumulative pool counters.
type PoolStats struct {
	Flushes   int64 // dirty pages written to the stable layer
	Misses    int64 // fetches that had to read the stable layer
	Hits      int64 // fetches served from a buffered frame
	Evictions int64 // frames removed by replacement (bounded pools)

	// Async read-ahead counters (EnablePrefetch).
	PrefetchIssued int64 // read-aheads that started a disk read
	PrefetchHit    int64 // foreground fetches served by a prefetched frame
	PrefetchWasted int64 // prefetched frames evicted untouched, or reads dropped/failed
}

// HitRatio returns hits/(hits+misses), or 0 with no traffic.
func (s PoolStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Pool is the buffer pool for one store. It enforces the WAL protocol: a
// dirty page is flushed only after the log is forced through its pageLSN.
//
// Two regimes:
//   - unbounded (capacity 0): frames live in a lock-free map and are
//     never evicted — node visits take no pool-wide lock, which is what
//     lets the concurrency experiments scale;
//   - bounded: the page table is sharded (shard count a power of two
//     near GOMAXPROCS) with a per-shard map and clock-sweep
//     (second-chance) eviction, so a fetch touches only its shard and
//     never a pool-wide lock.
type Pool struct {
	StoreID uint32
	disk    Disk
	log     *wal.Log
	codec   Codec
	cap     int // 0 = unbounded
	inj     *fault.Injector // set once before concurrent use; may be nil

	// Unbounded regime.
	ftab frameTable // PageID-indexed; see frameTable

	// Bounded regime.
	shards    []poolShard
	shardMask uint64

	flushCount atomic.Int64
	missCount  atomic.Int64
	hitCount   atomic.Int64 // unbounded regime; bounded hits are per-shard

	// Async read-ahead (prefetch.go). pf is set by EnablePrefetch before
	// concurrent use and cleared by StopPrefetch.
	pf             *prefetcher
	prefetchIssued atomic.Int64
	prefetchHit    atomic.Int64
	prefetchWasted atomic.Int64
}

// poolShard is one slice of a bounded pool's page table. All pins on
// bounded frames are taken while holding the owning shard's mu, which is
// what lets eviction trust a zero pin count: with the pin-before-latch
// protocol, pins == 0 under mu means no one holds (or can acquire) the
// frame's latch, so the evictor has exclusive access without touching it.
type poolShard struct {
	mu     sync.Mutex
	frames map[PageID]*Frame
	clock  []*Frame // unordered ring swept by the clock hand
	hand   int
	cap    int // this shard's share of the pool capacity
	// flushing holds detached dirty victims whose write-back is still in
	// flight, keyed by page ID. A page is in frames or in flushing, never
	// both: installers wait for the write to land before re-reading the
	// stable image, or a fetch could resurrect the pre-flush contents.
	flushing map[PageID]*flushOp
	// Counters kept plain (not atomic): they are only touched under mu,
	// which keeps the hit path free of cross-shard cache-line traffic.
	hits      int64
	evictions int64
	pfWasted  int64 // prefetched frames evicted before any foreground fetch
	// free parks recycled Frame shells. Eviction proved pins == 0 under
	// mu, so no goroutine retains a usable reference and the struct can be
	// reissued for a different page without a fresh allocation.
	free []*Frame
}

// flushOp is one in-flight eviction write-back. The evictor owns f
// exclusively (it was detached with pins == 0 under the shard mu, and
// nothing in the map can hand out new pins). done — created lazily,
// under the shard mu, by the first fetcher that needs to wait — is
// closed once the stable image is current and the page may be re-read
// from disk.
type flushOp struct {
	f    *Frame
	done chan struct{}
}

// wait parks the caller until the write-back completes. Caller holds
// sh.mu, which wait releases before blocking and reacquires after.
func (op *flushOp) wait(sh *poolShard) {
	if op.done == nil {
		op.done = make(chan struct{})
	}
	ch := op.done
	sh.mu.Unlock()
	<-ch
	sh.mu.Lock()
}

// maxFreeFrames bounds a shard's recycle list; in steady state eviction
// and installation alternate, so it rarely holds more than one entry.
const maxFreeFrames = 8

// takeFrame returns a frame shell to install: a recycled one when
// available, else a fresh allocation. Caller holds sh.mu and must set ID,
// Data, and meta before publishing it in the map.
func (sh *poolShard) takeFrame() *Frame {
	if n := len(sh.free); n > 0 {
		f := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return f
	}
	return &Frame{}
}

// recycle parks an evicted frame for reuse. Caller holds sh.mu and has
// proved pins == 0 under it.
func (sh *poolShard) recycle(f *Frame) {
	if len(sh.free) < maxFreeFrames {
		f.Data = nil // release the page contents to the collector now
		f.ClearNav() // the snapshot must not survive into the next page
		f.preloaded.Store(false)
		sh.free = append(sh.free, f)
	}
}

// shardCount picks a power-of-two shard count near GOMAXPROCS, shrunk so
// every shard keeps a useful share of the capacity.
func shardCount(capacity int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 32 {
		n <<= 1
	}
	for n > 1 && capacity/n < 4 {
		n >>= 1
	}
	return n
}

// NewPool returns a pool over disk logging to log. capacity is the maximum
// number of buffered frames (0 for unbounded). codec handles all non-meta
// pages of the store.
func NewPool(storeID uint32, disk Disk, log *wal.Log, codec Codec, capacity int) *Pool {
	p := &Pool{
		StoreID: storeID,
		disk:    disk,
		log:     log,
		codec:   codec,
		cap:     capacity,
	}
	if capacity > 0 {
		n := shardCount(capacity)
		p.shards = make([]poolShard, n)
		p.shardMask = uint64(n - 1)
		for i := range p.shards {
			sh := &p.shards[i]
			sh.frames = make(map[PageID]*Frame)
			sh.flushing = make(map[PageID]*flushOp)
			sh.cap = capacity / n
			if i < capacity%n {
				sh.cap++
			}
		}
	}
	return p
}

// shard returns the shard owning pid.
func (p *Pool) shard(pid PageID) *poolShard {
	// Fibonacci hash spreads sequential page IDs across shards.
	return &p.shards[(uint64(pid)*0x9E3779B97F4A7C15>>33)&p.shardMask]
}

// Disk returns the pool's stable layer.
func (p *Pool) Disk() Disk { return p.disk }

// SetInjector attaches a fault injector whose pool.evict failpoint
// governs dirty-victim write-backs. Must be called before the pool is
// used concurrently.
func (p *Pool) SetInjector(inj *fault.Injector) { p.inj = inj }

// Probe checks the named failpoint against the pool's injector (if any).
// Trees use it for failpoints that live above the storage layer proper
// (consolidation commits, space management) without carrying their own
// injector reference.
func (p *Pool) Probe(name string) error { return p.inj.Check(name) }

// Log returns the pool's write-ahead log.
func (p *Pool) Log() *wal.Log { return p.log }

// Fetch returns the frame for pid, pinned. The caller must Unpin it.
func (p *Pool) Fetch(pid PageID) (*Frame, error) {
	return p.fetch(pid, false)
}

// fetch is Fetch with the prefetcher's warm mode: a warm miss tags the
// loading placeholder as preloaded BEFORE the disk read, so a foreground
// fetch that arrives while the read is in flight consumes the tag as a
// prefetch hit — the overlap it got is exactly what the counter means.
// A warm fetch itself never consumes the tag (the worker's own hit-path
// visit is not a prefetch hit).
func (p *Pool) fetch(pid PageID, warm bool) (*Frame, error) {
	if p.cap == 0 {
		if f := p.ftab.get(pid); f != nil {
			f.pins.Add(1)
			p.hitCount.Add(1)
			if !warm && f.preloaded.Swap(false) {
				p.prefetchHit.Add(1)
			}
			return f, nil
		}
		f, err := p.loadFromDisk(pid)
		if err != nil {
			return nil, err
		}
		if warm {
			f.preloaded.Store(true)
		}
		// Another goroutine may install first; both read the same stable
		// image, so dropping ours is safe.
		af, _ := p.ftab.getOrInstall(pid, f)
		af.pins.Add(1)
		return af, nil
	}

	sh := p.shard(pid)
	sh.mu.Lock()
	for {
		if f, ok := sh.frames[pid]; ok {
			f.pins.Add(1)
			f.ref.Store(1)
			sh.hits++
			if !warm && f.preloaded.Swap(false) {
				p.prefetchHit.Add(1)
			}
			if !f.loading {
				sh.mu.Unlock()
				return f, nil
			}
			// Another fetcher's disk read is in flight; wait for it to
			// publish the contents (or fail) instead of decoding a second
			// copy.
			if f.loadCh == nil {
				f.loadCh = make(chan struct{})
			}
			ch := f.loadCh
			sh.mu.Unlock()
			<-ch
			if err := f.loadErr; err != nil {
				p.Unpin(f)
				return nil, err
			}
			return f, nil
		}
		op, ok := sh.flushing[pid]
		if !ok {
			break
		}
		// An evictor is writing this page back; wait for the write to
		// land. Reading the stable image now could install the pre-flush
		// contents over the newer ones.
		op.wait(sh)
	}
	// Miss: publish a pinned loading placeholder under the lock, then do
	// the expensive disk read and decode outside it so they never
	// serialize the shard. The pin keeps the evictor away and the loading
	// marker parks concurrent fetchers of the same page, so the window
	// between lookup and install can never admit a stale image over newer
	// buffered (or freshly flushed) state.
	f := sh.takeFrame()
	f.ID = pid
	f.Data = nil
	f.meta.Store(0)
	f.loading = true
	f.loadErr = nil
	f.pins.Add(1)
	if warm {
		f.preloaded.Store(true)
	}
	victims := sh.install(f)
	sh.mu.Unlock()
	err := p.writeBack(sh, victims)

	var lsn uint64
	var data any
	if err == nil {
		lsn, data, err = p.readPage(pid)
	}
	sh.mu.Lock()
	if err != nil {
		// Withdraw the placeholder. Waiters still pin it and will read
		// loadErr after the close; the frame is not recycled. Clear any
		// warm tag so the dead frame's later recycling isn't counted as
		// a wasted prefetch on top of the failed read.
		f.preloaded.Store(false)
		sh.removeAt(f.clockIdx)
		f.loadErr = err
		f.pins.Add(-1)
	} else {
		f.Data = data
		f.meta.Store(lsn &^ dirtyBit)
	}
	f.loading = false
	ch := f.loadCh
	f.loadCh = nil
	sh.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// readPage reads and decodes the stable image of pid, retrying injected
// transient read faults with a short backoff.
func (p *Pool) readPage(pid PageID) (lsn uint64, data any, err error) {
	var img []byte
	var ok bool
	for attempt := 0; ; attempt++ {
		img, ok, err = p.disk.Read(pid)
		if err == nil || !fault.IsTransient(err) || attempt >= diskRetries {
			break
		}
		time.Sleep(time.Microsecond << attempt)
	}
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, fmt.Errorf("%w: page %d", ErrPageNotFound, pid)
	}
	p.missCount.Add(1)
	lsn, tag, content, err := unframeImage(img)
	if err != nil {
		return 0, nil, err
	}
	data, err = p.decodeFrameData(tag, content)
	if err != nil {
		return 0, nil, err
	}
	return lsn, data, nil
}

// loadFromDisk reads and decodes the stable image of pid into a fresh
// frame (unbounded regime).
func (p *Pool) loadFromDisk(pid PageID) (*Frame, error) {
	lsn, data, err := p.readPage(pid)
	if err != nil {
		return nil, err
	}
	f := &Frame{ID: pid, Data: data}
	f.meta.Store(lsn &^ dirtyBit)
	return f, nil
}

// Create returns a pinned frame for a page that does not yet have valid
// contents: a freshly allocated page, or a page recovery is about to
// re-format. Data is nil and pageLSN zero unless a stale buffered frame
// for pid already exists, in which case that frame is reused. Create
// fails only if making room required a write-back that failed.
func (p *Pool) Create(pid PageID) (*Frame, error) {
	if p.cap == 0 {
		f := &Frame{ID: pid}
		af, _ := p.ftab.getOrInstall(pid, f)
		af.pins.Add(1)
		return af, nil
	}
	sh := p.shard(pid)
	sh.mu.Lock()
	for {
		if f, ok := sh.frames[pid]; ok {
			f.pins.Add(1)
			f.ref.Store(1)
			if !f.loading {
				sh.mu.Unlock()
				return f, nil
			}
			if f.loadCh == nil {
				f.loadCh = make(chan struct{})
			}
			ch := f.loadCh
			sh.mu.Unlock()
			<-ch
			if f.loadErr != nil {
				// The loader failed and withdrew its placeholder; install
				// a fresh empty frame instead.
				p.Unpin(f)
				sh.mu.Lock()
				continue
			}
			return f, nil
		}
		op, ok := sh.flushing[pid]
		if !ok {
			break
		}
		op.wait(sh)
	}
	f := sh.takeFrame()
	f.ID = pid
	f.Data = nil
	f.meta.Store(0)
	f.pins.Add(1)
	victims := sh.install(f)
	sh.mu.Unlock()
	if err := p.writeBack(sh, victims); err != nil {
		// Withdraw the empty frame unless another goroutine already
		// pinned it (a concurrent creator will format it); either way
		// the caller gets the error.
		sh.mu.Lock()
		if cur, ok := sh.frames[pid]; ok && cur == f && f.pins.Load() == 1 {
			sh.removeAt(f.clockIdx)
			f.pins.Add(-1)
			sh.recycle(f)
		} else {
			f.pins.Add(-1)
		}
		sh.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// FetchOrCreate fetches pid if buffered or stable, and otherwise creates
// an empty frame for it; recovery uses it while replaying formats of
// pages that never reached the disk.
func (p *Pool) FetchOrCreate(pid PageID) (*Frame, error) {
	f, err := p.Fetch(pid)
	if err == nil {
		return f, nil
	}
	if errors.Is(err, ErrPageNotFound) {
		return p.Create(pid)
	}
	return nil, err
}

// install adds f to the shard and detaches victims past capacity,
// returning the dirty ones for the caller to write back via writeBack
// after dropping sh.mu. Caller holds sh.mu.
func (sh *poolShard) install(f *Frame) []*flushOp {
	sh.frames[f.ID] = f
	f.ref.Store(1)
	f.clockIdx = len(sh.clock)
	sh.clock = append(sh.clock, f)
	var victims []*flushOp
	for len(sh.frames) > sh.cap {
		op, found := sh.detachVictim()
		if !found {
			break // everything pinned: allow temporary overflow
		}
		if op != nil {
			victims = append(victims, op)
		}
	}
	return victims
}

// detachVictim runs the clock hand until it finds an unpinned frame
// whose reference bit is clear and removes it from the shard. Giving
// every frame one second chance bounds the sweep at two laps. A clean
// victim is recycled on the spot; a dirty one is registered in
// sh.flushing and returned for write-back outside the lock — once
// detached with pins == 0 nothing can re-dirty it, so the dirty
// decision is stable. found is false when every frame is pinned or
// referenced. Caller holds sh.mu; see poolShard for why a zero pin
// count is sufficient exclusion.
func (sh *poolShard) detachVictim() (op *flushOp, found bool) {
	for scanned := 2 * len(sh.clock); scanned > 0; scanned-- {
		if sh.hand >= len(sh.clock) {
			sh.hand = 0
		}
		f := sh.clock[sh.hand]
		if f.pins.Load() != 0 {
			sh.hand++
			continue
		}
		if f.ref.Swap(0) != 0 {
			sh.hand++ // second chance
			continue
		}
		sh.removeAt(f.clockIdx)
		sh.evictions++
		if f.preloaded.Swap(false) {
			sh.pfWasted++
		}
		if !f.Dirty() {
			sh.recycle(f)
			return nil, true
		}
		op = &flushOp{f: f}
		sh.flushing[f.ID] = op
		return op, true
	}
	return nil, false
}

// writeBack flushes detached dirty victims and retires their in-flight
// entries, waking fetchers parked on those pages. It runs without sh.mu
// held: flush forces the log, and log.Force can wait out in-flight
// appenders — a wait that must stall only this page, not every fetch on
// the shard.
//
// A victim whose flush fails is reattached to the shard (temporarily
// over capacity) instead of recycled: its dirty contents exist nowhere
// else, so dropping the frame would lose committed-but-unflushed
// updates. Parked fetchers are woken either way; on the failure path
// they re-find the page in the shard map. All victims are processed
// even after a failure; the first error is returned.
func (p *Pool) writeBack(sh *poolShard, victims []*flushOp) error {
	var first error
	for _, op := range victims {
		err := p.inj.Check(FPPoolEvict)
		if err == nil {
			err = p.flush(op.f)
		}
		sh.mu.Lock()
		delete(sh.flushing, op.f.ID)
		if err != nil {
			sh.reattach(op.f)
			if first == nil {
				first = err
			}
		} else {
			sh.recycle(op.f)
		}
		ch := op.done
		sh.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	}
	return first
}

// reattach returns a detached victim to the shard after a failed
// write-back. Caller holds sh.mu.
func (sh *poolShard) reattach(f *Frame) {
	sh.frames[f.ID] = f
	f.ref.Store(1)
	f.clockIdx = len(sh.clock)
	sh.clock = append(sh.clock, f)
}

// removeAt deletes the clock ring entry at i by swapping in the last
// entry. Caller holds sh.mu.
func (sh *poolShard) removeAt(i int) {
	f := sh.clock[i]
	last := len(sh.clock) - 1
	sh.clock[i] = sh.clock[last]
	sh.clock[i].clockIdx = i
	sh.clock[last] = nil
	sh.clock = sh.clock[:last]
	delete(sh.frames, f.ID)
}

// flush writes f to disk if dirty, forcing the log first (WAL protocol).
// The caller must hold the frame's latch or have otherwise excluded
// mutators (eviction relies on pins == 0 under the shard lock). On any
// error — encode failure, log force failure, or a disk write that
// failed or tore — the frame stays dirty, so the page remains in the
// dirty page table and a later flush (or redo after a crash) still
// covers it.
func (p *Pool) flush(f *Frame) error {
	m := f.meta.Load()
	if m&dirtyBit == 0 || f.Data == nil {
		return nil
	}
	lsn := wal.LSN(m &^ dirtyBit)
	tag, content, err := p.encodeFrameData(f.Data)
	if err != nil {
		return fmt.Errorf("storage: encode page %d: %w", f.ID, err)
	}
	if err := p.log.Force(lsn); err != nil {
		return fmt.Errorf("storage: flush page %d: %w", f.ID, err)
	}
	if err := p.writeImage(f.ID, frameImage(uint64(lsn), tag, content)); err != nil {
		return err
	}
	// Clean again; recLSN is left stale (see its comment). A lost race
	// means a concurrent flusher of the same contents already cleaned it.
	if f.meta.CompareAndSwap(m, uint64(lsn)) {
		p.flushCount.Add(1)
	}
	return nil
}

// writeImage writes one page image to the stable layer, retrying
// injected transient faults with a short backoff.
func (p *Pool) writeImage(pid PageID, img []byte) error {
	for attempt := 0; ; attempt++ {
		err := p.disk.Write(pid, img)
		if err == nil || !fault.IsTransient(err) || attempt >= diskRetries {
			return err
		}
		time.Sleep(time.Microsecond << attempt)
	}
}

// Prefetch warms pid into the pool without retaining a pin: a best-effort
// read-ahead hook for restart's redo workers, whose companion prefetcher
// decodes upcoming pages while the worker applies the current one. Misses
// and errors are ignored — the worker's own fetch repeats the read and
// reports them.
func (p *Pool) Prefetch(pid PageID) {
	if f, err := p.Fetch(pid); err == nil {
		p.Unpin(f)
	}
}

// StablePageLSN returns the pageLSN recorded in pid's stable image without
// buffering or decoding the page, or ok=false if the page was never
// flushed (or the read failed — conservative; the caller's fetch will
// surface a persistent error). Restart redo uses it to drop pages whose
// stable image already covers every planned record: flushes only ever
// write buffered state, so a buffered frame can never be behind the stable
// image, and a covering stable pageLSN proves the planned records are
// reflected wherever the page currently lives.
func (p *Pool) StablePageLSN(pid PageID) (wal.LSN, bool) {
	img, ok, err := p.disk.Read(pid)
	if err != nil || !ok {
		return wal.NilLSN, false
	}
	lsn, _, _, err := unframeImage(img)
	if err != nil {
		return wal.NilLSN, false
	}
	return wal.LSN(lsn), true
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	if f.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.ID))
	}
}

// Drop removes pid from the pool without flushing, discarding buffered
// changes; used when a page is de-allocated. The stable image, if any,
// remains (recovery replays history over it).
func (p *Pool) Drop(pid PageID) {
	if p.cap == 0 {
		if f := p.ftab.get(pid); f != nil {
			if f.pins.Load() > 0 {
				panic(fmt.Sprintf("storage: drop of pinned page %d", pid))
			}
			p.ftab.delete(pid)
		}
		return
	}
	sh := p.shard(pid)
	sh.mu.Lock()
	if f, ok := sh.frames[pid]; ok {
		if f.pins.Load() > 0 {
			sh.mu.Unlock()
			panic(fmt.Sprintf("storage: drop of pinned page %d", pid))
		}
		sh.removeAt(f.clockIdx)
		sh.recycle(f)
	}
	sh.mu.Unlock()
}

// FlushPage flushes pid if it is buffered and dirty. The caller must not
// hold the frame's latch; FlushPage takes an S latch to exclude mutators.
func (p *Pool) FlushPage(pid PageID) error {
	f, ok := p.lookupPinned(pid)
	if !ok {
		return nil
	}
	f.Latch.AcquireS()
	err := p.flush(f)
	f.Latch.ReleaseS()
	p.Unpin(f)
	return err
}

// FlushBatch flushes a batch of pages with one log force covering the
// whole batch instead of one per page: the maximum pageLSN across the
// batch is forced first, so the per-page flushes find the log already
// stable (each still re-checks, catching pages re-dirtied above the
// batch force). Returns the number of pages written, the page IDs whose
// flush failed (they stay dirty and must be re-armed by the caller for
// a later round), and the first error.
func (p *Pool) FlushBatch(pids []PageID) (int, []PageID, error) {
	frames := make([]*Frame, 0, len(pids))
	var maxLSN wal.LSN
	for _, pid := range pids {
		f, ok := p.lookupPinned(pid)
		if !ok {
			continue
		}
		frames = append(frames, f)
		if m := f.meta.Load(); m&dirtyBit != 0 {
			if lsn := wal.LSN(m &^ dirtyBit); lsn > maxLSN {
				maxLSN = lsn
			}
		}
	}
	var first error
	var failed []PageID
	if err := p.log.Force(maxLSN); err != nil {
		first = fmt.Errorf("storage: flush batch: %w", err)
		for _, f := range frames {
			failed = append(failed, f.ID)
			p.Unpin(f)
		}
		return 0, failed, first
	}
	flushed := 0
	for _, f := range frames {
		f.Latch.AcquireS()
		wasDirty := f.Dirty()
		err := p.flush(f)
		f.Latch.ReleaseS()
		if err != nil {
			failed = append(failed, f.ID)
			if first == nil {
				first = err
			}
		} else if wasDirty {
			flushed++
		}
		p.Unpin(f)
	}
	return flushed, failed, first
}

// lookupPinned returns the buffered frame for pid pinned, if present.
func (p *Pool) lookupPinned(pid PageID) (*Frame, bool) {
	if p.cap == 0 {
		f := p.ftab.get(pid)
		if f == nil {
			return nil, false
		}
		f.pins.Add(1)
		return f, true
	}
	sh := p.shard(pid)
	sh.mu.Lock()
	for {
		if f, ok := sh.frames[pid]; ok {
			f.pins.Add(1)
			sh.mu.Unlock()
			return f, true
		}
		op, ok := sh.flushing[pid]
		if !ok {
			sh.mu.Unlock()
			return nil, false
		}
		// An evictor is writing the page back; FlushPage promises the
		// stable image is current on return, so wait the write out.
		op.wait(sh)
	}
}

// snapshotFrames returns all buffered frames, pinned: bounded-pool pins
// are taken under each shard's mu, so frames in the snapshot cannot be
// evicted (and their flushes cannot race an evictor's) until the caller
// unpins them.
func (p *Pool) snapshotFrames() []*Frame {
	var out []*Frame
	if p.cap == 0 {
		p.ftab.forEach(func(f *Frame) {
			f.pins.Add(1)
			out = append(out, f)
		})
		return out
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			f.pins.Add(1)
			out = append(out, f)
		}
		sh.mu.Unlock()
	}
	return out
}

// FlushAll flushes every dirty frame whose latch is immediately available
// (a fuzzy sweep; concurrently latched pages are skipped) and returns the
// number flushed. A page whose flush fails stays dirty; the sweep
// continues past it and the first error is returned alongside the count.
func (p *Pool) FlushAll() (int, error) {
	flushed := 0
	var first error
	for _, f := range p.snapshotFrames() {
		if f.Latch.TryAcquireS() {
			wasDirty := f.Dirty()
			err := p.flush(f)
			f.Latch.ReleaseS()
			if err != nil {
				if first == nil {
					first = err
				}
			} else if wasDirty {
				flushed++
			}
		}
		p.Unpin(f)
	}
	return flushed, first
}

// DirtyPages snapshots the dirty page table: page ID to recLSN (the LSN
// that first dirtied it). Fuzzy checkpoints log this.
func (p *Pool) DirtyPages() map[PageID]wal.LSN {
	out := make(map[PageID]wal.LSN)
	if p.cap == 0 {
		for _, f := range p.snapshotFrames() {
			if rec, dirty := f.dirtySnapshot(); dirty {
				out[f.ID] = rec
			}
			p.Unpin(f)
		}
		return out
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, f := range sh.frames {
			if rec, dirty := f.dirtySnapshot(); dirty {
				out[f.ID] = rec
			}
		}
		// A detached victim mid-write-back is still dirty in memory until
		// its image lands; the checkpoint must not drop it from the dirty
		// page table. Once its flush cleans it, the stable image is
		// current and omitting it is correct.
		for pid, op := range sh.flushing {
			if rec, dirty := op.f.dirtySnapshot(); dirty {
				out[pid] = rec
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats returns cumulative pool counters.
func (p *Pool) Stats() PoolStats {
	s := PoolStats{
		Flushes:        p.flushCount.Load(),
		Misses:         p.missCount.Load(),
		Hits:           p.hitCount.Load(),
		PrefetchIssued: p.prefetchIssued.Load(),
		PrefetchHit:    p.prefetchHit.Load(),
		PrefetchWasted: p.prefetchWasted.Load(),
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Evictions += sh.evictions
		s.PrefetchWasted += sh.pfWasted
		sh.mu.Unlock()
	}
	return s
}

// BufferedCount returns the number of frames currently buffered.
func (p *Pool) BufferedCount() int {
	frames := p.snapshotFrames()
	for _, f := range frames {
		p.Unpin(f)
	}
	return len(frames)
}
