package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/wal"
)

// ErrPageNotFound reports a Fetch of a page that is neither buffered nor
// stable.
var ErrPageNotFound = errors.New("storage: page not found")

// Frame is a buffered page. The decoded contents (Data) are protected by
// the frame's Latch: mutate only under X, read under S or U. Bookkeeping
// (pageLSN, dirty, recLSN) has its own tiny mutex so fuzzy checkpoints can
// snapshot it without latching the page.
//
// Protocol: pin (via Fetch/Create) before latching; unlatch before
// unpinning. A pinned frame is never evicted.
type Frame struct {
	ID    PageID
	Latch latch.Latch
	// Data is the decoded page content; nil for a created-but-unformatted
	// page (only recovery and fresh allocations see that state).
	Data any

	meta    sync.Mutex
	pageLSN wal.LSN
	dirty   bool
	recLSN  wal.LSN // LSN that first dirtied the page since it was last clean

	pins atomic.Int64
	elem *list.Element // bounded pools only
}

// PageLSN returns the frame's current page LSN (its state identifier,
// §5.2: "log sequence numbers are used for state identifiers in many
// commercial systems").
func (f *Frame) PageLSN() wal.LSN {
	f.meta.Lock()
	defer f.meta.Unlock()
	return f.pageLSN
}

// MarkDirty records that the update logged at lsn changed this page. Call
// under the frame's X latch, after appending the log record.
func (f *Frame) MarkDirty(lsn wal.LSN) {
	f.meta.Lock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
	f.pageLSN = lsn
	f.meta.Unlock()
}

// SetPageLSN overwrites the page LSN; recovery uses it when installing
// redo results.
func (f *Frame) SetPageLSN(lsn wal.LSN) {
	f.meta.Lock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
	f.pageLSN = lsn
	f.meta.Unlock()
}

// Dirty reports whether the frame has unflushed changes.
func (f *Frame) Dirty() bool {
	f.meta.Lock()
	defer f.meta.Unlock()
	return f.dirty
}

// Pool is the buffer pool for one store. It enforces the WAL protocol: a
// dirty page is flushed only after the log is forced through its pageLSN.
//
// Two regimes:
//   - unbounded (capacity 0): frames live in a lock-free map and are
//     never evicted — node visits take no pool-wide lock, which is what
//     lets the concurrency experiments scale;
//   - bounded: a mutex-guarded map with LRU eviction of unpinned,
//     unlatched frames.
type Pool struct {
	StoreID uint32
	disk    *Disk
	log     *wal.Log
	codec   Codec
	cap     int // 0 = unbounded

	// Unbounded regime.
	fmap sync.Map // PageID -> *Frame

	// Bounded regime.
	mu     sync.Mutex
	frames map[PageID]*Frame
	lru    *list.List // least-recently fetched at front

	flushCount atomic.Int64
	missCount  atomic.Int64
}

// NewPool returns a pool over disk logging to log. capacity is the maximum
// number of buffered frames (0 for unbounded). codec handles all non-meta
// pages of the store.
func NewPool(storeID uint32, disk *Disk, log *wal.Log, codec Codec, capacity int) *Pool {
	p := &Pool{
		StoreID: storeID,
		disk:    disk,
		log:     log,
		codec:   codec,
		cap:     capacity,
	}
	if capacity > 0 {
		p.frames = make(map[PageID]*Frame)
		p.lru = list.New()
	}
	return p
}

// Disk returns the pool's stable layer.
func (p *Pool) Disk() *Disk { return p.disk }

// Log returns the pool's write-ahead log.
func (p *Pool) Log() *wal.Log { return p.log }

// Fetch returns the frame for pid, pinned. The caller must Unpin it.
func (p *Pool) Fetch(pid PageID) (*Frame, error) {
	if p.cap == 0 {
		if v, ok := p.fmap.Load(pid); ok {
			f := v.(*Frame)
			f.pins.Add(1)
			return f, nil
		}
		f, err := p.loadFromDisk(pid)
		if err != nil {
			return nil, err
		}
		actual, loaded := p.fmap.LoadOrStore(pid, f)
		af := actual.(*Frame)
		if loaded {
			// Another goroutine installed it first; both read the same
			// stable image, so dropping ours is safe.
			af.pins.Add(1)
			return af, nil
		}
		af.pins.Add(1)
		return af, nil
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pid]; ok {
		f.pins.Add(1)
		p.lru.MoveToBack(f.elem)
		return f, nil
	}
	f, err := p.loadFromDisk(pid)
	if err != nil {
		return nil, err
	}
	f.pins.Add(1)
	p.installLocked(f)
	return f, nil
}

// loadFromDisk reads and decodes the stable image of pid.
func (p *Pool) loadFromDisk(pid PageID) (*Frame, error) {
	img, ok := p.disk.Read(pid)
	if !ok {
		return nil, fmt.Errorf("%w: page %d", ErrPageNotFound, pid)
	}
	p.missCount.Add(1)
	lsn, tag, content, err := unframeImage(img)
	if err != nil {
		return nil, err
	}
	data, err := p.decodeFrameData(tag, content)
	if err != nil {
		return nil, err
	}
	return &Frame{ID: pid, Data: data, pageLSN: wal.LSN(lsn)}, nil
}

// Create returns a pinned frame for a page that does not yet have valid
// contents: a freshly allocated page, or a page recovery is about to
// re-format. Data is nil and pageLSN zero unless a stale buffered frame
// for pid already exists, in which case that frame is reused.
func (p *Pool) Create(pid PageID) *Frame {
	if p.cap == 0 {
		f := &Frame{ID: pid}
		actual, _ := p.fmap.LoadOrStore(pid, f)
		af := actual.(*Frame)
		af.pins.Add(1)
		return af
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[pid]; ok {
		f.pins.Add(1)
		p.lru.MoveToBack(f.elem)
		return f
	}
	f := &Frame{ID: pid}
	f.pins.Add(1)
	p.installLocked(f)
	return f
}

// FetchOrCreate fetches pid if buffered or stable, and otherwise creates
// an empty frame for it; recovery uses it while replaying formats of
// pages that never reached the disk.
func (p *Pool) FetchOrCreate(pid PageID) (*Frame, error) {
	f, err := p.Fetch(pid)
	if err == nil {
		return f, nil
	}
	if errors.Is(err, ErrPageNotFound) {
		return p.Create(pid), nil
	}
	return nil, err
}

// installLocked adds f to the bounded pool, evicting if over capacity.
// Caller holds p.mu.
func (p *Pool) installLocked(f *Frame) {
	f.elem = p.lru.PushBack(f)
	p.frames[f.ID] = f
	p.evictLocked(len(p.frames) - p.cap)
}

// evictLocked tries to evict up to n frames. Caller holds p.mu.
func (p *Pool) evictLocked(n int) {
	e := p.lru.Front()
	for n > 0 && e != nil {
		next := e.Next()
		f := e.Value.(*Frame)
		if f.pins.Load() == 0 && f.Latch.TryAcquireX() {
			if f.pins.Load() == 0 {
				p.flush(f)
				delete(p.frames, f.ID)
				p.lru.Remove(e)
				n--
			}
			f.Latch.ReleaseX()
		}
		e = next
	}
}

// flush writes f to disk if dirty, forcing the log first (WAL protocol).
// The caller must hold the frame's latch or have otherwise excluded
// mutators.
func (p *Pool) flush(f *Frame) {
	f.meta.Lock()
	dirty := f.dirty
	lsn := f.pageLSN
	f.meta.Unlock()
	if !dirty || f.Data == nil {
		return
	}
	tag, content, err := p.encodeFrameData(f.Data)
	if err != nil {
		// Encoding a buffered page can only fail on a programming error;
		// surface it loudly rather than silently losing the page.
		panic(fmt.Sprintf("storage: encode page %d: %v", f.ID, err))
	}
	p.log.Force(lsn)
	p.disk.Write(f.ID, frameImage(uint64(lsn), tag, content))
	f.meta.Lock()
	f.dirty = false
	f.recLSN = wal.NilLSN
	f.meta.Unlock()
	p.flushCount.Add(1)
}

// Unpin releases one pin on f.
func (p *Pool) Unpin(f *Frame) {
	if f.pins.Add(-1) < 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.ID))
	}
}

// Drop removes pid from the pool without flushing, discarding buffered
// changes; used when a page is de-allocated. The stable image, if any,
// remains (recovery replays history over it).
func (p *Pool) Drop(pid PageID) {
	if p.cap == 0 {
		if v, ok := p.fmap.Load(pid); ok {
			if v.(*Frame).pins.Load() > 0 {
				panic(fmt.Sprintf("storage: drop of pinned page %d", pid))
			}
			p.fmap.Delete(pid)
		}
		return
	}
	p.mu.Lock()
	if f, ok := p.frames[pid]; ok {
		if f.pins.Load() > 0 {
			p.mu.Unlock()
			panic(fmt.Sprintf("storage: drop of pinned page %d", pid))
		}
		p.lru.Remove(f.elem)
		delete(p.frames, pid)
	}
	p.mu.Unlock()
}

// FlushPage flushes pid if it is buffered and dirty. The caller must not
// hold the frame's latch; FlushPage takes an S latch to exclude mutators.
func (p *Pool) FlushPage(pid PageID) {
	f, ok := p.lookup(pid)
	if !ok {
		return
	}
	f.pins.Add(1)
	f.Latch.AcquireS()
	p.flush(f)
	f.Latch.ReleaseS()
	p.Unpin(f)
}

// lookup returns the buffered frame for pid, if any, without pinning.
func (p *Pool) lookup(pid PageID) (*Frame, bool) {
	if p.cap == 0 {
		v, ok := p.fmap.Load(pid)
		if !ok {
			return nil, false
		}
		return v.(*Frame), true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pid]
	return f, ok
}

// snapshotFrames returns all buffered frames.
func (p *Pool) snapshotFrames() []*Frame {
	var out []*Frame
	if p.cap == 0 {
		p.fmap.Range(func(_, v any) bool {
			out = append(out, v.(*Frame))
			return true
		})
		return out
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		out = append(out, f)
	}
	return out
}

// FlushAll flushes every dirty frame whose latch is immediately available
// (a fuzzy sweep; concurrently latched pages are skipped) and returns the
// number flushed.
func (p *Pool) FlushAll() int {
	flushed := 0
	for _, f := range p.snapshotFrames() {
		if f.Latch.TryAcquireS() {
			if f.Dirty() {
				flushed++
			}
			p.flush(f)
			f.Latch.ReleaseS()
		}
	}
	return flushed
}

// DirtyPages snapshots the dirty page table: page ID to recLSN (the LSN
// that first dirtied it). Fuzzy checkpoints log this.
func (p *Pool) DirtyPages() map[PageID]wal.LSN {
	out := make(map[PageID]wal.LSN)
	for _, f := range p.snapshotFrames() {
		f.meta.Lock()
		if f.dirty {
			out[f.ID] = f.recLSN
		}
		f.meta.Unlock()
	}
	return out
}

// Stats returns flush and miss counters.
func (p *Pool) Stats() (flushes, misses int64) {
	return p.flushCount.Load(), p.missCount.Load()
}

// BufferedCount returns the number of frames currently buffered.
func (p *Pool) BufferedCount() int {
	return len(p.snapshotFrames())
}
