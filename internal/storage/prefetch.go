package storage

import "sync"

// FPPoolPrefetch is the failpoint probed before every asynchronous
// read-ahead issued by the pool's prefetcher. A fault here only drops the
// prefetch (counted as wasted): the foreground Fetch that follows repeats
// the read synchronously and reports any real error itself, so an
// injected prefetch fault degrades scans to synchronous fetching and can
// never surface wrong data.
const FPPoolPrefetch = "pool.prefetch"

// prefetcher is the pool's bounded-window async read-ahead worker. Scans
// feed it leaf successor hints (the next leaf's page ID, known from the
// current leaf's side pointer). A single-step hint arrives only a
// callback's width ahead of the foreground fetch — too late to hide a
// disk read — so the worker treats each hint as a chain seed: it walks
// the side-pointer chain (via the codec's SuccessorHint, when the codec
// provides one) up to `depth` pages past the scan's position, reading
// ahead of the foreground rather than trailing it. Hints that arrive
// while the worker is mid-chain are dropped rather than queued —
// read-ahead is advisory and must never apply backpressure to the scan
// driving it.
type prefetcher struct {
	req   chan PageID
	done  chan struct{}
	depth int
	wg    sync.WaitGroup
}

// EnablePrefetch starts the pool's async prefetcher with the given
// request-window size. Idempotent: enabling an already-enabled pool is a
// no-op. window <= 0 leaves prefetching disabled. Must be called before
// the pool is used concurrently (engine wiring calls it at store attach).
func (p *Pool) EnablePrefetch(window int) {
	if window <= 0 || p.pf != nil {
		return
	}
	pf := &prefetcher{
		req:   make(chan PageID, window),
		done:  make(chan struct{}),
		depth: window,
	}
	p.pf = pf
	pf.wg.Add(1)
	go func() {
		defer pf.wg.Done()
		for {
			select {
			case <-pf.done:
				return
			case pid := <-pf.req:
				// Drain to the newest hint: queued hints are stale
				// position fixes from leaves the scan already passed,
				// and a chain from a stale seed spends its whole step
				// budget re-walking warmed ground without ever reaching
				// the frontier. Only the latest position is worth
				// chaining from.
			drain:
				for {
					select {
					case pid = <-pf.req:
					default:
						break drain
					}
				}
				p.prefetchChain(pid, pf)
			}
		}
	}()
}

// StopPrefetch stops the prefetcher and waits for its in-flight read to
// finish. Idempotent; safe on a pool that never enabled prefetching.
func (p *Pool) StopPrefetch() {
	pf := p.pf
	if pf == nil {
		return
	}
	p.pf = nil
	close(pf.done)
	pf.wg.Wait()
}

// PrefetchAsync requests an async read-ahead of pid. Non-blocking: with
// prefetching disabled, pid nil, or the window full, the hint is dropped.
func (p *Pool) PrefetchAsync(pid PageID) {
	pf := p.pf
	if pf == nil || pid == NilPage {
		return
	}
	select {
	case pf.req <- pid:
	default:
		// Window full: the worker is behind; dropping the hint just means
		// the scan's own fetch does the read synchronously.
	}
}

// prefetchChain services one read-ahead request: starting from the
// hinted page, walk the side-pointer chain and read pages in until
// pf.depth reads have been issued. Pages already resident are walked
// through free — they don't consume the read budget — so a hint from a
// scan whose recent span is still buffered skips to the cold frontier
// and then runs a full window of reads PAST it; this is what actually
// puts the worker ahead of the foreground (a budget that counted
// resident skips would exhaust itself re-covering warmed ground and
// never lead the scan by more than a page). The step cap — total walk
// length, resident or not — bounds how far the frontier can run ahead
// of the scan: each hint is a fresh position fix, and capping the walk
// at twice the window keeps the lead inside the pool's ability to hold
// warmed pages until the scan arrives (an uncapped walk laps the scan
// and its pages are evicted unconsumed). The walk also stops at the
// chain's end, at the first failed read, or when the codec cannot
// supply successors (chain length 1 — the single-page behavior).
func (p *Pool) prefetchChain(pid PageID, pf *prefetcher) {
	issued := 0
	for steps := 0; issued < pf.depth && steps < pf.depth*2 && pid != NilPage; steps++ {
		select {
		case <-pf.done:
			return
		default:
		}
		next, didIO, ok := p.warmOne(pid)
		if !ok {
			return
		}
		if didIO {
			issued++
		}
		pid = next
	}
}

// warmOne makes pid resident (reading it from disk if needed) and
// returns its successor page for the chain walk. A page read here is
// tagged so the foreground fetch that consumes it counts as a prefetch
// hit. A failed read (injected or real) only counts as wasted — the
// foreground path repeats it and owns the error. didIO reports whether
// a read was issued; ok is false when the walk cannot continue (read
// failed or faulted).
func (p *Pool) warmOne(pid PageID) (next PageID, didIO, ok bool) {
	f := p.peek(pid)
	if f == nil {
		if err := p.inj.Check(FPPoolPrefetch); err != nil {
			p.prefetchWasted.Add(1)
			return NilPage, false, false
		}
		p.prefetchIssued.Add(1)
		didIO = true
		var err error
		// Warm mode tags the loading placeholder before the read, so a
		// foreground fetch overlapping the read still counts as a hit.
		f, err = p.fetch(pid, true)
		if err != nil {
			p.prefetchWasted.Add(1)
			return NilPage, true, false
		}
	}
	next = NilPage
	if sc, chains := p.codec.(SuccessorCodec); chains {
		// The successor lives in the decoded page, which writers mutate
		// under the frame's X latch; a brief S hold makes the read safe.
		f.Latch.AcquireS()
		next = sc.SuccessorHint(f.Data)
		f.Latch.ReleaseS()
	}
	p.Unpin(f)
	return next, didIO, true
}

// resident reports whether pid is currently buffered, without pinning or
// loading it. Advisory: the answer can go stale immediately.
func (p *Pool) resident(pid PageID) bool {
	if p.cap == 0 {
		return p.ftab.get(pid) != nil
	}
	sh := p.shard(pid)
	sh.mu.Lock()
	_, ok := sh.frames[pid]
	sh.mu.Unlock()
	return ok
}

// peek returns pid's frame, pinned, if it is already resident and fully
// loaded — without touching hit or prefetch accounting (the walk is
// bookkeeping-invisible when it does no I/O). nil when the page is
// absent or a concurrent fetch is still loading it.
func (p *Pool) peek(pid PageID) *Frame {
	if p.cap == 0 {
		if f := p.ftab.get(pid); f != nil {
			f.pins.Add(1)
			return f
		}
		return nil
	}
	sh := p.shard(pid)
	sh.mu.Lock()
	f, ok := sh.frames[pid]
	if !ok || f.loading {
		sh.mu.Unlock()
		return nil
	}
	f.pins.Add(1)
	sh.mu.Unlock()
	return f
}
