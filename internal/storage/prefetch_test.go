package storage

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fault"
)

// waitPrefetch polls until the prefetcher has drained pid into the pool
// (or the deadline passes); the worker is asynchronous by design.
func waitPrefetch(t testing.TB, p *Pool, pid PageID) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.resident(pid) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("page %d never became resident via prefetch", pid)
}

func seedPrefetchPages(t testing.TB, p *Pool, lg *testLogger, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		dirtyPage(t, p, lg, PageID(i), []byte{byte(i)})
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchWarmsAndCounts(t *testing.T) {
	p, log, _ := newFaultyPool(4, 30)
	lg := &testLogger{log: log}
	seedPrefetchPages(t, p, lg, 8)
	// Evict everything so prefetches do real reads.
	for i := 1; i <= 8; i++ {
		p.Drop(PageID(i))
	}
	p.EnablePrefetch(4)
	defer p.StopPrefetch()

	p.PrefetchAsync(3)
	waitPrefetch(t, p, 3)
	st := p.Stats()
	if st.PrefetchIssued != 1 {
		t.Fatalf("PrefetchIssued = %d, want 1", st.PrefetchIssued)
	}
	// The foreground fetch that consumes the warmed page counts as a hit
	// and reads the right bytes.
	f, err := p.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data.([]byte), []byte{3}) {
		t.Fatalf("prefetched page content %v", f.Data)
	}
	p.Unpin(f)
	if st := p.Stats(); st.PrefetchHit != 1 {
		t.Fatalf("PrefetchHit = %d, want 1", st.PrefetchHit)
	}
	// A second fetch of the same page is a plain hit, not a prefetch hit.
	f, _ = p.Fetch(3)
	p.Unpin(f)
	if st := p.Stats(); st.PrefetchHit != 1 {
		t.Fatalf("PrefetchHit moved to %d on a plain re-fetch", st.PrefetchHit)
	}

	// Prefetching a resident page is a no-op.
	p.PrefetchAsync(3)
	time.Sleep(10 * time.Millisecond)
	if st := p.Stats(); st.PrefetchIssued != 1 {
		t.Fatalf("resident prefetch issued a read: %d", st.PrefetchIssued)
	}

	// NilPage and disabled-pool hints are dropped silently.
	p.PrefetchAsync(NilPage)
	p.StopPrefetch()
	p.PrefetchAsync(5)
	p.StopPrefetch() // idempotent
}

// TestPrefetchFaultDegradesToSyncFetch: a fault at pool.prefetch drops
// the read-ahead (counted wasted); the foreground fetch then reads the
// page itself and sees correct data.
func TestPrefetchFaultDegradesToSyncFetch(t *testing.T) {
	p, log, inj := newFaultyPool(4, 31)
	lg := &testLogger{log: log}
	seedPrefetchPages(t, p, lg, 4)
	for i := 1; i <= 4; i++ {
		p.Drop(PageID(i))
	}
	p.EnablePrefetch(2)
	defer p.StopPrefetch()

	inj.Arm(FPPoolPrefetch, fault.Spec{Kind: fault.Transient, Count: -1})
	p.PrefetchAsync(2)
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().PrefetchWasted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := p.Stats()
	if st.PrefetchWasted == 0 {
		t.Fatal("injected prefetch fault never counted as wasted")
	}
	if st.PrefetchIssued != 0 {
		t.Fatalf("faulted prefetch counted as issued: %d", st.PrefetchIssued)
	}
	if p.resident(2) {
		t.Fatal("faulted prefetch still warmed the page")
	}
	// The scan's own fetch does the read synchronously and correctly.
	f, err := p.Fetch(2)
	if err != nil {
		t.Fatalf("foreground fetch after prefetch fault: %v", err)
	}
	if !bytes.Equal(f.Data.([]byte), []byte{2}) {
		t.Fatalf("foreground fetch content %v", f.Data)
	}
	p.Unpin(f)
	if st := p.Stats(); st.PrefetchHit != 0 {
		t.Fatalf("degraded fetch counted as prefetch hit: %d", st.PrefetchHit)
	}
}

// TestPrefetchEvictedBeforeUseCountsWasted: a warmed page evicted before
// the scan reaches it moves the tag to the wasted counter.
func TestPrefetchEvictedBeforeUseCountsWasted(t *testing.T) {
	p, log, _ := newFaultyPool(2, 32)
	lg := &testLogger{log: log}
	seedPrefetchPages(t, p, lg, 6)
	for i := 1; i <= 6; i++ {
		p.Drop(PageID(i))
	}
	p.EnablePrefetch(2)
	defer p.StopPrefetch()

	p.PrefetchAsync(1)
	waitPrefetch(t, p, 1)
	// Flood the tiny pool so the warmed frame is evicted unused.
	for i := 2; i <= 6; i++ {
		f, err := p.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f)
	}
	st := p.Stats()
	if st.PrefetchWasted+st.PrefetchHit == 0 {
		t.Fatalf("warmed page neither hit nor wasted: %+v", st)
	}
}
