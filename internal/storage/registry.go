package storage

import (
	"fmt"
	"sync"

	"repro/internal/wal"
)

// Compensation describes the page-oriented inverse of a logged update: the
// operation that, applied through its Kind's Redo, undoes the original.
// Rollback appends it as a CLR and applies it; restart redo replays the
// CLR like any other record, which is what makes undo idempotent.
type Compensation struct {
	Kind    wal.Kind
	StoreID uint32
	PageID  PageID
	Payload []byte
}

// Handler gives redo/undo semantics to one record Kind.
type Handler struct {
	// Redo applies the record's effect to the frame's decoded contents.
	// The driver holds the frame's X latch, has verified pageLSN <
	// rec.LSN, and sets the new pageLSN afterwards. Redo must be a pure
	// function of (page state, record).
	Redo func(f *Frame, rec *wal.Record) error
	// MakeUndo returns the page-oriented compensation for rec. It must
	// not touch pages. Nil for redo-only kinds (never undone).
	MakeUndo func(rec *wal.Record) (Compensation, error)
	// LogicalUndo, if set, performs a non-page-oriented undo: a full
	// logical operation (e.g. a tree re-traversal delete) that does its
	// own logging, ending with a CLR whose UndoNext is rec.PrevLSN. When
	// set it takes precedence over MakeUndo during rollback.
	LogicalUndo func(rec *wal.Record) error
}

// Registry maps record Kinds to Handlers and store IDs to Pools. One
// Registry serves a whole environment (all stores sharing a log); both the
// transaction manager (rollback) and restart recovery drive it.
type Registry struct {
	mu       sync.RWMutex
	handlers map[wal.Kind]Handler
	pools    map[uint32]*Pool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		handlers: make(map[wal.Kind]Handler),
		pools:    make(map[uint32]*Pool),
	}
}

// Register installs the handler for kind. Registering a kind twice panics:
// kinds are compile-time constants and a collision is a coding error.
func (r *Registry) Register(kind wal.Kind, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.handlers[kind]; dup {
		panic(fmt.Sprintf("storage: duplicate handler for kind %d", kind))
	}
	r.handlers[kind] = h
}

// AddPool associates a store ID with its pool.
func (r *Registry) AddPool(p *Pool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.pools[p.StoreID]; dup {
		panic(fmt.Sprintf("storage: duplicate pool for store %d", p.StoreID))
	}
	r.pools[p.StoreID] = p
}

// Pool returns the pool for storeID.
func (r *Registry) Pool(storeID uint32) (*Pool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pools[storeID]
	if !ok {
		return nil, fmt.Errorf("storage: no pool for store %d", storeID)
	}
	return p, nil
}

// Handler returns the handler for kind.
func (r *Registry) Handler(kind wal.Kind) (Handler, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.handlers[kind]
	if !ok {
		return Handler{}, fmt.Errorf("storage: no handler for kind %d", kind)
	}
	return h, nil
}

// ApplyRedo applies rec to its page if the page has not already seen it
// (the pageLSN test), fetching or creating the frame as needed. It is the
// single code path used both when compensations are applied during normal
// rollback and when history is repeated at restart.
func (r *Registry) ApplyRedo(rec *wal.Record) error {
	h, err := r.Handler(rec.Kind)
	if err != nil {
		return err
	}
	p, err := r.Pool(rec.StoreID)
	if err != nil {
		return err
	}
	f, err := p.FetchOrCreate(PageID(rec.PageID))
	if err != nil {
		return err
	}
	defer p.Unpin(f)
	f.Latch.AcquireX()
	defer f.Latch.ReleaseX()
	if f.PageLSN() >= rec.LSN {
		return nil // already reflected
	}
	if err := h.Redo(f, rec); err != nil {
		return fmt.Errorf("redo kind %d page %d at LSN %d: %w", rec.Kind, rec.PageID, rec.LSN, err)
	}
	f.SetPageLSN(rec.LSN)
	return nil
}

// ApplyRedoFrame applies rec to an already-pinned, already-X-latched
// frame with the same pageLSN guard as ApplyRedo. Rollback uses it to
// append a CLR and apply it under one latch hold: per-page append order
// then equals apply order, so the guard can never mistake a concurrent
// transaction's later CLR for "rec already applied" and drop a
// compensation from the buffered page.
func (r *Registry) ApplyRedoFrame(f *Frame, rec *wal.Record) error {
	h, err := r.Handler(rec.Kind)
	if err != nil {
		return err
	}
	if f.PageLSN() >= rec.LSN {
		return nil // already reflected
	}
	if err := h.Redo(f, rec); err != nil {
		return fmt.Errorf("redo kind %d page %d at LSN %d: %w", rec.Kind, rec.PageID, rec.LSN, err)
	}
	f.SetPageLSN(rec.LSN)
	return nil
}

// ApplyRedoBatch applies one page's planned redo records — ascending LSN,
// all addressed to (storeID, pid) — fetching, pinning and X-latching the
// frame once for the whole batch instead of once per record. Every record
// still takes the pageLSN test individually and advances pageLSN as it
// applies, so the resulting page state is byte-identical with a loop of
// ApplyRedo calls. Restart's page-partitioned redo workers drive it;
// rec.Payload may alias the log image (Redo handlers treat payloads as
// read-only). It returns how many records actually applied.
func (r *Registry) ApplyRedoBatch(storeID uint32, pid PageID, recs []wal.Record) (int, error) {
	p, err := r.Pool(storeID)
	if err != nil {
		return 0, err
	}
	f, err := p.FetchOrCreate(pid)
	if err != nil {
		return 0, err
	}
	defer p.Unpin(f)
	f.Latch.AcquireX()
	defer f.Latch.ReleaseX()
	// One handler-table lock for the batch; Redo handlers never call back
	// into the registry, and registration is complete before restart runs.
	r.mu.RLock()
	defer r.mu.RUnlock()
	applied := 0
	for i := range recs {
		rec := &recs[i]
		if f.PageLSN() >= rec.LSN {
			continue // already reflected
		}
		h, ok := r.handlers[rec.Kind]
		if !ok {
			return applied, fmt.Errorf("storage: no handler for kind %d", rec.Kind)
		}
		if err := h.Redo(f, rec); err != nil {
			return applied, fmt.Errorf("redo kind %d page %d at LSN %d: %w", rec.Kind, rec.PageID, rec.LSN, err)
		}
		f.SetPageLSN(rec.LSN)
		applied++
	}
	return applied, nil
}
