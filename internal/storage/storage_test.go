package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/latch"
	"repro/internal/wal"
)

// byteCodec stores raw byte slices as pages.
type byteCodec struct{}

func (byteCodec) EncodePage(v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("byteCodec: %T", v)
	}
	return append([]byte(nil), b...), nil
}

func (byteCodec) DecodePage(b []byte) (any, error) {
	return append([]byte(nil), b...), nil
}

// testLogger is a minimal UpdateLogger chaining into a log.
type testLogger struct {
	log  *wal.Log
	last wal.LSN
}

func (l *testLogger) LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN {
	l.last = l.log.Append(&wal.Record{
		Type: wal.RecUpdate, Kind: kind, TxnID: 99, PrevLSN: l.last,
		StoreID: storeID, PageID: pageID, Payload: payload,
	})
	return l.last
}

func newTestPool(capacity int) (*Pool, *wal.Log) {
	log := wal.New()
	return NewPool(1, NewDisk(), log, byteCodec{}, capacity), log
}

func mustCreate(t testing.TB, p *Pool, pid PageID) *Frame {
	t.Helper()
	f, err := p.Create(pid)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPoolCreateFetchUnpin(t *testing.T) {
	p, _ := newTestPool(0)
	f := mustCreate(t, p, 5)
	f.Latch.AcquireX()
	f.Data = []byte("hello")
	f.MarkDirty(10)
	f.Latch.ReleaseX()
	p.Unpin(f)

	g, err := p.Fetch(5)
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Data.([]byte)) != "hello" {
		t.Fatalf("data = %q", g.Data)
	}
	if g.PageLSN() != 10 {
		t.Fatalf("pageLSN = %d", g.PageLSN())
	}
	p.Unpin(g)
}

func TestFetchMissing(t *testing.T) {
	p, _ := newTestPool(0)
	if _, err := p.Fetch(42); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("err = %v, want ErrPageNotFound", err)
	}
	f, err := p.FetchOrCreate(42)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data != nil {
		t.Fatal("FetchOrCreate of missing page must have nil Data")
	}
	p.Unpin(f)
}

func TestFlushRoundTripAndWALProtocol(t *testing.T) {
	p, log := newTestPool(0)
	f := mustCreate(t, p, 3)
	f.Latch.AcquireX()
	lsn := log.Append(&wal.Record{Type: wal.RecUpdate, StoreID: 1, PageID: 3})
	f.Data = []byte("persisted")
	f.MarkDirty(lsn)
	f.Latch.ReleaseX()
	p.Unpin(f)

	if log.StableLSN() > lsn {
		t.Fatal("log unexpectedly stable before flush")
	}
	if err := p.FlushPage(3); err != nil {
		t.Fatal(err)
	}
	// WAL protocol: the flush must have forced the log through pageLSN.
	if log.StableLSN() <= lsn {
		t.Fatal("flush did not force the log first")
	}

	// Re-read through a fresh pool over the same disk.
	p2 := NewPool(1, p.Disk(), log, byteCodec{}, 0)
	g, err := p2.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Data.([]byte)) != "persisted" || g.PageLSN() != lsn {
		t.Fatalf("after reload: %q lsn=%d", g.Data, g.PageLSN())
	}
	p2.Unpin(g)
}

func TestEvictionRespectsCapacityAndPins(t *testing.T) {
	p, _ := newTestPool(4)
	var pinned *Frame
	for i := PageID(10); i < 20; i++ {
		f := mustCreate(t, p, i)
		f.Latch.AcquireX()
		f.Data = []byte{byte(i)}
		f.MarkDirty(wal.LSN(i))
		f.Latch.ReleaseX()
		if i == 10 {
			pinned = f // keep pinned
		} else {
			p.Unpin(f)
		}
	}
	if p.BufferedCount() > 5 { // capacity 4 + 1 pinned overflow allowance
		t.Fatalf("buffered = %d", p.BufferedCount())
	}
	// The pinned page must still be buffered.
	g, err := p.Fetch(10)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g)
	p.Unpin(pinned)
	// Evicted dirty pages must be readable from disk.
	h, err := p.Fetch(11)
	if err != nil {
		t.Fatal(err)
	}
	if h.Data.([]byte)[0] != 11 {
		t.Fatalf("evicted page corrupted: %v", h.Data)
	}
	p.Unpin(h)
}

func TestDirtyPagesSnapshot(t *testing.T) {
	p, _ := newTestPool(0)
	for i := PageID(2); i < 5; i++ {
		f := mustCreate(t, p, i)
		f.Latch.AcquireX()
		f.Data = []byte{1}
		f.MarkDirty(wal.LSN(i * 100))
		f.Latch.ReleaseX()
		p.Unpin(f)
	}
	dpt := p.DirtyPages()
	if len(dpt) != 3 {
		t.Fatalf("dirty pages = %d", len(dpt))
	}
	if dpt[3] != 300 {
		t.Fatalf("recLSN of page 3 = %d, want 300 (first dirtying LSN)", dpt[3])
	}
	// Updating again must not change recLSN.
	f, _ := p.Fetch(3)
	f.Latch.AcquireX()
	f.MarkDirty(999)
	f.Latch.ReleaseX()
	p.Unpin(f)
	if p.DirtyPages()[3] != 300 {
		t.Fatal("recLSN moved on second update")
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(p.DirtyPages()) != 0 {
		t.Fatal("dirty pages remain after FlushAll")
	}
}

func TestDiskSnapshotIndependence(t *testing.T) {
	d := NewDisk()
	_ = d.Write(1, []byte{1, 2, 3})
	snap := d.Snapshot()
	_ = d.Write(1, []byte{9})
	_ = d.Write(2, []byte{8})
	img, ok, err := snap.Read(1)
	if err != nil || !ok || len(img) != 3 {
		t.Fatalf("snapshot changed: %v %v %v", img, ok, err)
	}
	if _, ok, _ := snap.Read(2); ok {
		t.Fatal("snapshot gained a page")
	}
	if snap.Len() != 1 || d.Len() != 2 {
		t.Fatalf("lens %d %d", snap.Len(), d.Len())
	}
}

func TestMetaAllocFreeReuse(t *testing.T) {
	m := NewMeta()
	a := m.AllocLocal()
	b := m.AllocLocal()
	if a != MetaPage+1 || b != a+1 {
		t.Fatalf("alloc sequence: %d %d", a, b)
	}
	m.FreeLocal(a)
	if !m.IsFree(a) {
		t.Fatal("freed page not free")
	}
	if c := m.AllocLocal(); c != a {
		t.Fatalf("LIFO reuse: got %d, want %d", c, a)
	}
	if m.IsFree(a) {
		t.Fatal("reallocated page still free")
	}
}

func TestMetaEncodeDecode(t *testing.T) {
	m := NewMeta()
	m.AllocLocal()
	m.AllocLocal()
	m.FreeLocal(2)
	m.Roots["tree-a"] = 3
	m.Roots["tree-b"] = 4

	got, err := decodeMeta(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Next != m.Next || len(got.Free) != 1 || got.Free[0] != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Roots["tree-a"] != 3 || got.Roots["tree-b"] != 4 {
		t.Fatalf("roots: %v", got.Roots)
	}
}

func TestStoreLoggedAllocFree(t *testing.T) {
	log := wal.New()
	reg := NewRegistry()
	RegisterMetaHandlers(reg)
	pool := NewPool(1, NewDisk(), log, byteCodec{}, 0)
	st := NewStore(pool, reg)
	lg := &testLogger{log: log}
	tr := &latch.Tracker{}

	if err := st.Bootstrap(lg); err != nil {
		t.Fatal(err)
	}
	pid, err := st.Alloc(lg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.IsAllocated(pid); !ok {
		t.Fatal("allocated page not allocated")
	}
	if err := st.SetRoot(lg, tr, "r", pid); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Root("r"); err != nil || got != pid {
		t.Fatalf("root = %d, %v", got, err)
	}
	if err := st.Free(lg, tr, pid); err != nil {
		t.Fatal(err)
	}
	if ok, _ := st.IsAllocated(pid); ok {
		t.Fatal("freed page still allocated")
	}
	if err := st.Free(lg, tr, pid); err == nil {
		t.Fatal("double free not rejected")
	}
	if err := st.Free(lg, tr, MetaPage); err == nil {
		t.Fatal("freeing the meta page not rejected")
	}
}

func TestMetaRedoIdempotence(t *testing.T) {
	log := wal.New()
	reg := NewRegistry()
	RegisterMetaHandlers(reg)
	pool := NewPool(1, NewDisk(), log, byteCodec{}, 0)
	st := NewStore(pool, reg)
	lg := &testLogger{log: log}
	tr := &latch.Tracker{}
	if err := st.Bootstrap(lg); err != nil {
		t.Fatal(err)
	}
	pid, _ := st.Alloc(lg, tr)

	// Replaying the whole log against a fresh pool must reproduce the
	// same meta state, and a second replay must change nothing.
	replay := func(reg2 *Registry, log2 *wal.Log) {
		img := log2.FullImage()
		img.Scan(wal.NilLSN, func(rec wal.Record) bool {
			if rec.Type == wal.RecUpdate {
				if err := reg2.ApplyRedo(&rec); err != nil {
					t.Fatalf("redo: %v", err)
				}
			}
			return true
		})
	}
	reg2 := NewRegistry()
	RegisterMetaHandlers(reg2)
	pool2 := NewPool(1, NewDisk(), log, byteCodec{}, 0)
	st2 := NewStore(pool2, reg2)
	replay(reg2, log)
	replay(reg2, log) // idempotent second pass

	if ok, err := st2.IsAllocated(pid); err != nil || !ok {
		t.Fatalf("replayed alloc missing: %v %v", ok, err)
	}
}

func TestConcurrentFetchers(t *testing.T) {
	p, _ := newTestPool(8)
	for i := PageID(2); i < 34; i++ {
		f := mustCreate(t, p, i)
		f.Latch.AcquireX()
		f.Data = []byte{byte(i)}
		f.MarkDirty(wal.LSN(i))
		f.Latch.ReleaseX()
		p.Unpin(f)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				pid := PageID(2 + (i*7+w)%32)
				f, err := p.Fetch(pid)
				if err != nil {
					t.Errorf("fetch %d: %v", pid, err)
					return
				}
				f.Latch.AcquireS()
				if f.Data.([]byte)[0] != byte(pid) {
					t.Errorf("page %d corrupted", pid)
				}
				f.Latch.ReleaseS()
				p.Unpin(f)
			}
		}(w)
	}
	wg.Wait()
}
