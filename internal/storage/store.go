package storage

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"repro/internal/latch"
	"repro/internal/wal"
)

// Record kinds owned by package storage (meta-page operations). Other
// packages allocate from their own ranges; see each package's kinds file.
const (
	// KindMetaFormat initializes an empty meta page.
	KindMetaFormat wal.Kind = 1
	// KindMetaAlloc records allocation of one page ID.
	KindMetaAlloc wal.Kind = 2
	// KindMetaFree records de-allocation of one page ID.
	KindMetaFree wal.Kind = 3
	// KindMetaSetRoot records a root-directory entry.
	KindMetaSetRoot wal.Kind = 4
)

// MetaRank is the latch rank of the space-management page: strictly last,
// per §4.1.1 ("space management information can be ordered last").
const MetaRank latch.Rank = 1<<63 - 1

// FPStoreFree is the failpoint probed at the top of Store.Free, before
// the meta page is touched: arming it with Crash simulates dying in the
// middle of a consolidation's de-allocation step.
const FPStoreFree = "store.free"

// FPConsolidate is the failpoint trees probe immediately before
// committing a consolidation/reclamation atomic action (core merge, TSB
// history reap, spatial absorb). Arming it with Crash exercises recovery
// against a half-done merge.
const FPConsolidate = "tree.consolidate"

// UpdateLogger is the slice of a transaction (or atomic action) that
// logged page operations need: append an update record to the caller's
// undo chain. *txn.Txn implements it.
type UpdateLogger interface {
	// LogUpdate appends a RecUpdate for (storeID, pageID, kind, payload)
	// linked into the caller's chain, and returns its LSN.
	LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN
}

// Store bundles a pool with logged space management: page allocation,
// de-allocation and the root directory all go through the meta page so
// that restart recovery reconstructs them exactly.
type Store struct {
	Pool *Pool
	// Space counts allocation traffic since open (in-memory observability;
	// the durable truth is the meta page).
	Space SpaceCounters

	// barred holds free-list entries that are not yet allocatable because
	// the action that freed them has not committed. Handing such a page to
	// a new owner would be a double allocation if the freeing action then
	// aborts (its compensation re-allocates the page). The free-list insert
	// itself stays immediate — page state must match the logged state or a
	// steal could flush a meta image ahead of its pageLSN — so only the
	// recycling side is gated. Guarded by the meta frame's latch, and
	// deliberately in-memory: a crash discards it, which is safe because
	// restart resolves every action (commit or undo) before new allocation
	// traffic exists. A bar whose action aborts goes stale and is
	// overwritten when the page is freed again; until then the page merely
	// sits out of the recycling pool.
	barred map[PageID]bool
}

// SpaceCounters tracks the free-space map's runtime behaviour.
type SpaceCounters struct {
	// Recycled counts allocations served from the free list; Extended
	// counts allocations that grew the store's high-water mark.
	Recycled atomic.Int64
	Extended atomic.Int64
	// Freed counts pages returned to the free list.
	Freed atomic.Int64
}

// SpaceStats is a point-in-time snapshot of the store's space state.
type SpaceStats struct {
	Next     PageID
	FreeLen  int
	Recycled int64
	Extended int64
	Freed    int64
}

// SpaceStats snapshots the meta page (briefly S-latched) and the counters.
func (s *Store) SpaceStats() (SpaceStats, error) {
	var st SpaceStats
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return st, err
	}
	f.Latch.AcquireS()
	if m, ok := f.Data.(*Meta); ok {
		st.Next = m.Next
		st.FreeLen = len(m.Free)
	}
	f.Latch.ReleaseS()
	s.Pool.Unpin(f)
	st.Recycled = s.Space.Recycled.Load()
	st.Extended = s.Space.Extended.Load()
	st.Freed = s.Space.Freed.Load()
	return st, nil
}

// AllocatedPages reports how many pages are currently allocated (excluding
// the meta page): the high-water mark minus the free list. This is the
// quantity the churn experiments assert stays bounded.
func (s *Store) AllocatedPages() (int64, error) {
	st, err := s.SpaceStats()
	if err != nil {
		return 0, err
	}
	return int64(st.Next) - 1 - int64(st.FreeLen), nil
}

// SpaceCheck verifies the free-space map invariants against the set of
// pages a tree walk found reachable: no free page is reachable, every
// free page is below the high-water mark and appears exactly once, and
// every reachable page is allocated. Tree Verify implementations call it
// with their visited-page set.
func (s *Store) SpaceCheck(reachable map[PageID]bool) error {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, ok := f.Data.(*Meta)
	if !ok {
		return fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	seen := make(map[PageID]bool, len(m.Free))
	for _, pid := range m.Free {
		if pid == MetaPage || pid >= m.Next {
			return fmt.Errorf("storage: store %d free list holds out-of-range page %d (next %d)", s.Pool.StoreID, pid, m.Next)
		}
		if seen[pid] {
			return fmt.Errorf("storage: store %d free list holds page %d twice", s.Pool.StoreID, pid)
		}
		seen[pid] = true
		if reachable[pid] {
			return fmt.Errorf("storage: store %d page %d is both free and reachable", s.Pool.StoreID, pid)
		}
	}
	for pid := range reachable {
		if pid >= m.Next {
			return fmt.Errorf("storage: store %d reachable page %d above high-water mark %d", s.Pool.StoreID, pid, m.Next)
		}
	}
	return nil
}

// SpaceSnapshot reads the pool's space state — high-water mark and a copy
// of the free list — under a momentary S latch on the meta page. ok is
// false when the pool has no formatted meta page (a store that never
// bootstrapped); callers treat that as "nothing to snapshot". The recovery
// checkpoint embeds the snapshot so restart's space audit can seed its
// shadow model without replaying the whole log prefix.
func (p *Pool) SpaceSnapshot() (next PageID, free []PageID, ok bool) {
	f, err := p.Fetch(MetaPage)
	if err != nil {
		return 0, nil, false
	}
	defer p.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, isMeta := f.Data.(*Meta)
	if !isMeta {
		return 0, nil, false
	}
	return m.Next, append([]PageID(nil), m.Free...), true
}

// NewStore creates a store over the pool and registers the pool with reg.
func NewStore(p *Pool, reg *Registry) *Store {
	reg.AddPool(p)
	return &Store{Pool: p}
}

// Bootstrap formats the meta page inside the caller's transaction or
// atomic action. It must be the first operation on a fresh store.
func (s *Store) Bootstrap(lg UpdateLogger) error {
	f, err := s.Pool.Create(MetaPage)
	if err != nil {
		return err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireX()
	defer f.Latch.ReleaseX()
	if f.Data != nil {
		return fmt.Errorf("storage: bootstrap of non-empty store %d", s.Pool.StoreID)
	}
	f.Data = NewMeta()
	lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaFormat, nil)
	f.MarkDirty(lsn)
	return nil
}

// withMeta runs fn with the meta frame X-latched.
func (s *Store) withMeta(t *latch.Tracker, fn func(f *Frame, m *Meta) error) error {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireX()
	t.Acquired(&f.Latch, MetaRank, latch.X)
	defer func() {
		t.Released(&f.Latch)
		f.Latch.ReleaseX()
	}()
	m, ok := f.Data.(*Meta)
	if !ok {
		return fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	return fn(f, m)
}

// Alloc allocates a page ID, logging the allocation in lg's chain. The
// meta latch is acquired and released inside, honoring the "space
// management last" order; t, if enabled, asserts it. Recycling takes the
// largest unbarred free entry; barred entries (freed by uncommitted
// actions) are passed over.
func (s *Store) Alloc(lg UpdateLogger, t *latch.Tracker) (PageID, error) {
	var pid PageID
	err := s.withMeta(t, func(f *Frame, m *Meta) error {
		pid = NilPage
		for i := len(m.Free) - 1; i >= 0; i-- {
			if !s.barred[m.Free[i]] {
				pid = m.Free[i]
				m.Free = append(m.Free[:i], m.Free[i+1:]...)
				break
			}
		}
		recycled := pid != NilPage
		if !recycled {
			pid = m.Next
			m.Next++
		}
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaAlloc, encodePID(pid))
		f.MarkDirty(lsn)
		if recycled {
			s.Space.Recycled.Add(1)
		} else {
			s.Space.Extended.Add(1)
		}
		return nil
	})
	return pid, err
}

// committer is the optional slice of UpdateLogger that Free uses to lift
// a page's re-allocation bar once the freeing action commits. *txn.Txn
// implements it; loggers without it (bare test harnesses) get the page
// recyclable immediately.
type committer interface {
	OnCommit(func())
}

// Free returns pid to the free list, logging the de-allocation. The page
// enters the list immediately (so the meta image always matches its
// pageLSN) but stays barred from recycling until lg commits — see
// Store.barred. The fault.FPStoreFree probe fires before the meta page
// changes, so a crash armed there tests recovery racing a de-allocation.
func (s *Store) Free(lg UpdateLogger, t *latch.Tracker, pid PageID) error {
	if err := s.Pool.Probe(FPStoreFree); err != nil {
		return err
	}
	return s.withMeta(t, func(f *Frame, m *Meta) error {
		if m.IsFree(pid) || pid >= m.Next || pid == MetaPage {
			return fmt.Errorf("storage: free of invalid page %d", pid)
		}
		m.FreeLocal(pid)
		s.Space.Freed.Add(1)
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaFree, encodePID(pid))
		f.MarkDirty(lsn)
		if c, ok := lg.(committer); ok {
			if s.barred == nil {
				s.barred = make(map[PageID]bool)
			}
			s.barred[pid] = true
			c.OnCommit(func() { s.unbar(pid) })
		}
		return nil
	})
}

// unbar makes pid recyclable again; runs from the freeing action's commit
// hook, after its locks are released.
func (s *Store) unbar(pid PageID) {
	_ = s.withMeta(nil, func(f *Frame, m *Meta) error {
		delete(s.barred, pid)
		return nil
	})
}

// SetRoot records name -> pid in the root directory.
func (s *Store) SetRoot(lg UpdateLogger, t *latch.Tracker, name string, pid PageID) error {
	return s.withMeta(t, func(f *Frame, m *Meta) error {
		m.Roots[name] = pid
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaSetRoot, encodeSetRoot(name, pid))
		f.MarkDirty(lsn)
		return nil
	})
}

// Root looks up a root directory entry.
func (s *Store) Root(name string) (PageID, error) {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return NilPage, err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, ok := f.Data.(*Meta)
	if !ok {
		return NilPage, fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	pid, ok := m.Roots[name]
	if !ok || pid == NilPage {
		return NilPage, fmt.Errorf("storage: no root named %q in store %d", name, s.Pool.StoreID)
	}
	return pid, nil
}

// IsAllocated reports whether pid is currently allocated (not on the free
// list and below the high-water mark). Node-consolidation verification in
// CP mode uses it in tests.
func (s *Store) IsAllocated(pid PageID) (bool, error) {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return false, err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, ok := f.Data.(*Meta)
	if !ok {
		return false, fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	return pid < m.Next && pid != MetaPage && !m.IsFree(pid), nil
}

func encodePID(pid PageID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(pid))
	return b[:]
}

func decodePID(b []byte) (PageID, error) {
	if len(b) != 8 {
		return NilPage, fmt.Errorf("storage: bad pid payload length %d", len(b))
	}
	return PageID(binary.LittleEndian.Uint64(b)), nil
}

// DecodePID parses a KindMetaAlloc/KindMetaFree payload. The recovery
// space audit uses it to replay alloc/free traffic against its shadow.
func DecodePID(b []byte) (PageID, error) { return decodePID(b) }

func encodeSetRoot(name string, pid PageID) []byte {
	b := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(b, uint64(pid))
	copy(b[8:], name)
	return b
}

func decodeSetRoot(b []byte) (string, PageID, error) {
	if len(b) < 8 {
		return "", NilPage, fmt.Errorf("storage: bad setroot payload length %d", len(b))
	}
	return string(b[8:]), PageID(binary.LittleEndian.Uint64(b)), nil
}

// RegisterMetaHandlers installs redo/undo for the meta-page kinds. Call
// once per environment (registry), not per store.
func RegisterMetaHandlers(reg *Registry) {
	reg.Register(KindMetaFormat, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			f.Data = NewMeta()
			return nil
		},
		// Formatting the meta page is never undone: it happens once at
		// store creation, before anything can depend on it.
		MakeUndo: nil,
	})
	reg.Register(KindMetaAlloc, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: alloc redo on non-meta page")
			}
			pid, err := decodePID(rec.Payload)
			if err != nil {
				return err
			}
			m.RemoveFree(pid)
			if pid >= m.Next {
				m.Next = pid + 1
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			return Compensation{Kind: KindMetaFree, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindMetaFree, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: free redo on non-meta page")
			}
			pid, err := decodePID(rec.Payload)
			if err != nil {
				return err
			}
			if !m.IsFree(pid) {
				m.FreeLocal(pid)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			return Compensation{Kind: KindMetaAlloc, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindMetaSetRoot, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: setroot redo on non-meta page")
			}
			name, pid, err := decodeSetRoot(rec.Payload)
			if err != nil {
				return err
			}
			m.Roots[name] = pid
			return nil
		},
		// Root creation happens in the index-creation atomic action; undo
		// removes the entry.
		LogicalUndo: nil,
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			// Compensate by pointing the name at NilPage; lookups treat
			// that as absent. (Index creation aborting is the only path.)
			name, _, err := decodeSetRoot(rec.Payload)
			if err != nil {
				return Compensation{}, err
			}
			return Compensation{Kind: KindMetaSetRoot, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: encodeSetRoot(name, NilPage)}, nil
		},
	})
}
