package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/latch"
	"repro/internal/wal"
)

// Record kinds owned by package storage (meta-page operations). Other
// packages allocate from their own ranges; see each package's kinds file.
const (
	// KindMetaFormat initializes an empty meta page.
	KindMetaFormat wal.Kind = 1
	// KindMetaAlloc records allocation of one page ID.
	KindMetaAlloc wal.Kind = 2
	// KindMetaFree records de-allocation of one page ID.
	KindMetaFree wal.Kind = 3
	// KindMetaSetRoot records a root-directory entry.
	KindMetaSetRoot wal.Kind = 4
)

// MetaRank is the latch rank of the space-management page: strictly last,
// per §4.1.1 ("space management information can be ordered last").
const MetaRank latch.Rank = 1<<63 - 1

// UpdateLogger is the slice of a transaction (or atomic action) that
// logged page operations need: append an update record to the caller's
// undo chain. *txn.Txn implements it.
type UpdateLogger interface {
	// LogUpdate appends a RecUpdate for (storeID, pageID, kind, payload)
	// linked into the caller's chain, and returns its LSN.
	LogUpdate(storeID uint32, pageID uint64, kind wal.Kind, payload []byte) wal.LSN
}

// Store bundles a pool with logged space management: page allocation,
// de-allocation and the root directory all go through the meta page so
// that restart recovery reconstructs them exactly.
type Store struct {
	Pool *Pool
}

// NewStore creates a store over the pool and registers the pool with reg.
func NewStore(p *Pool, reg *Registry) *Store {
	reg.AddPool(p)
	return &Store{Pool: p}
}

// Bootstrap formats the meta page inside the caller's transaction or
// atomic action. It must be the first operation on a fresh store.
func (s *Store) Bootstrap(lg UpdateLogger) error {
	f, err := s.Pool.Create(MetaPage)
	if err != nil {
		return err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireX()
	defer f.Latch.ReleaseX()
	if f.Data != nil {
		return fmt.Errorf("storage: bootstrap of non-empty store %d", s.Pool.StoreID)
	}
	f.Data = NewMeta()
	lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaFormat, nil)
	f.MarkDirty(lsn)
	return nil
}

// withMeta runs fn with the meta frame X-latched.
func (s *Store) withMeta(t *latch.Tracker, fn func(f *Frame, m *Meta) error) error {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireX()
	t.Acquired(&f.Latch, MetaRank, latch.X)
	defer func() {
		t.Released(&f.Latch)
		f.Latch.ReleaseX()
	}()
	m, ok := f.Data.(*Meta)
	if !ok {
		return fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	return fn(f, m)
}

// Alloc allocates a page ID, logging the allocation in lg's chain. The
// meta latch is acquired and released inside, honoring the "space
// management last" order; t, if enabled, asserts it.
func (s *Store) Alloc(lg UpdateLogger, t *latch.Tracker) (PageID, error) {
	var pid PageID
	err := s.withMeta(t, func(f *Frame, m *Meta) error {
		pid = m.AllocLocal()
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaAlloc, encodePID(pid))
		f.MarkDirty(lsn)
		return nil
	})
	return pid, err
}

// Free returns pid to the free list, logging the de-allocation.
func (s *Store) Free(lg UpdateLogger, t *latch.Tracker, pid PageID) error {
	return s.withMeta(t, func(f *Frame, m *Meta) error {
		if m.IsFree(pid) || pid >= m.Next || pid == MetaPage {
			return fmt.Errorf("storage: free of invalid page %d", pid)
		}
		m.FreeLocal(pid)
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaFree, encodePID(pid))
		f.MarkDirty(lsn)
		return nil
	})
}

// SetRoot records name -> pid in the root directory.
func (s *Store) SetRoot(lg UpdateLogger, t *latch.Tracker, name string, pid PageID) error {
	return s.withMeta(t, func(f *Frame, m *Meta) error {
		m.Roots[name] = pid
		lsn := lg.LogUpdate(s.Pool.StoreID, uint64(MetaPage), KindMetaSetRoot, encodeSetRoot(name, pid))
		f.MarkDirty(lsn)
		return nil
	})
}

// Root looks up a root directory entry.
func (s *Store) Root(name string) (PageID, error) {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return NilPage, err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, ok := f.Data.(*Meta)
	if !ok {
		return NilPage, fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	pid, ok := m.Roots[name]
	if !ok || pid == NilPage {
		return NilPage, fmt.Errorf("storage: no root named %q in store %d", name, s.Pool.StoreID)
	}
	return pid, nil
}

// IsAllocated reports whether pid is currently allocated (not on the free
// list and below the high-water mark). Node-consolidation verification in
// CP mode uses it in tests.
func (s *Store) IsAllocated(pid PageID) (bool, error) {
	f, err := s.Pool.Fetch(MetaPage)
	if err != nil {
		return false, err
	}
	defer s.Pool.Unpin(f)
	f.Latch.AcquireS()
	defer f.Latch.ReleaseS()
	m, ok := f.Data.(*Meta)
	if !ok {
		return false, fmt.Errorf("storage: meta page of store %d has wrong type %T", s.Pool.StoreID, f.Data)
	}
	return pid < m.Next && pid != MetaPage && !m.IsFree(pid), nil
}

func encodePID(pid PageID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(pid))
	return b[:]
}

func decodePID(b []byte) (PageID, error) {
	if len(b) != 8 {
		return NilPage, fmt.Errorf("storage: bad pid payload length %d", len(b))
	}
	return PageID(binary.LittleEndian.Uint64(b)), nil
}

func encodeSetRoot(name string, pid PageID) []byte {
	b := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(b, uint64(pid))
	copy(b[8:], name)
	return b
}

func decodeSetRoot(b []byte) (string, PageID, error) {
	if len(b) < 8 {
		return "", NilPage, fmt.Errorf("storage: bad setroot payload length %d", len(b))
	}
	return string(b[8:]), PageID(binary.LittleEndian.Uint64(b)), nil
}

// RegisterMetaHandlers installs redo/undo for the meta-page kinds. Call
// once per environment (registry), not per store.
func RegisterMetaHandlers(reg *Registry) {
	reg.Register(KindMetaFormat, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			f.Data = NewMeta()
			return nil
		},
		// Formatting the meta page is never undone: it happens once at
		// store creation, before anything can depend on it.
		MakeUndo: nil,
	})
	reg.Register(KindMetaAlloc, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: alloc redo on non-meta page")
			}
			pid, err := decodePID(rec.Payload)
			if err != nil {
				return err
			}
			m.RemoveFree(pid)
			if pid >= m.Next {
				m.Next = pid + 1
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			return Compensation{Kind: KindMetaFree, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindMetaFree, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: free redo on non-meta page")
			}
			pid, err := decodePID(rec.Payload)
			if err != nil {
				return err
			}
			if !m.IsFree(pid) {
				m.FreeLocal(pid)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			return Compensation{Kind: KindMetaAlloc, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindMetaSetRoot, Handler{
		Redo: func(f *Frame, rec *wal.Record) error {
			m, ok := f.Data.(*Meta)
			if !ok {
				return fmt.Errorf("storage: setroot redo on non-meta page")
			}
			name, pid, err := decodeSetRoot(rec.Payload)
			if err != nil {
				return err
			}
			m.Roots[name] = pid
			return nil
		},
		// Root creation happens in the index-creation atomic action; undo
		// removes the entry.
		LogicalUndo: nil,
		MakeUndo: func(rec *wal.Record) (Compensation, error) {
			// Compensate by pointing the name at NilPage; lookups treat
			// that as absent. (Index creation aborting is the only path.)
			name, _, err := decodeSetRoot(rec.Payload)
			if err != nil {
				return Compensation{}, err
			}
			return Compensation{Kind: KindMetaSetRoot, StoreID: rec.StoreID, PageID: PageID(rec.PageID), Payload: encodeSetRoot(name, NilPage)}, nil
		},
	})
}
