package storage

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wal"
)

// seedPages creates pages [2, 2+n) with one-byte contents, logging each
// format, and leaves every image on disk.
func seedPages(t *testing.T, p *Pool, logger *testLogger, n int) {
	t.Helper()
	for pid := PageID(2); pid < PageID(2+n); pid++ {
		f := mustCreate(t, p, pid)
		f.Latch.AcquireX()
		f.Data = []byte{byte(pid)}
		f.MarkDirty(logger.LogUpdate(p.StoreID, uint64(pid), 0, nil))
		f.Latch.ReleaseX()
		p.Unpin(f)
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedEvictionAccounting pins down the Stats bookkeeping of the
// bounded pool: evictions count replacement victims, every dirty victim
// is flushed exactly once, and the hit/miss split matches residency.
func TestBoundedEvictionAccounting(t *testing.T) {
	const capacity, n = 4, 12 // capacity 4 keeps a single shard: deterministic
	p, lg := newTestPool(capacity)
	logger := &testLogger{log: lg}
	for pid := PageID(2); pid < PageID(2+n); pid++ {
		f := mustCreate(t, p, pid)
		f.Latch.AcquireX()
		f.Data = []byte{byte(pid)}
		f.MarkDirty(logger.LogUpdate(p.StoreID, uint64(pid), 0, nil))
		f.Latch.ReleaseX()
		p.Unpin(f)
	}

	s := p.Stats()
	if s.Evictions != n-capacity {
		t.Errorf("evictions = %d, want %d", s.Evictions, n-capacity)
	}
	if s.Flushes != s.Evictions {
		t.Errorf("flushes = %d, want %d (every victim was dirty)", s.Flushes, s.Evictions)
	}
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("hits/misses = %d/%d before any Fetch", s.Hits, s.Misses)
	}
	if got := p.BufferedCount(); got != capacity {
		t.Errorf("buffered = %d, want %d", got, capacity)
	}

	// A page just installed is resident: two back-to-back fetches are a
	// hit each, and return the same frame.
	last := PageID(2 + n - 1)
	f1, err := p.Fetch(last)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.Fetch(last)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("resident page refetched into a different frame")
	}
	p.Unpin(f1)
	p.Unpin(f2)
	s2 := p.Stats()
	if s2.Hits != s.Hits+2 || s2.Misses != s.Misses {
		t.Errorf("hits/misses = %d/%d after two resident fetches, want %d/%d",
			s2.Hits, s2.Misses, s.Hits+2, s.Misses)
	}

	// Sweep all n pages: at most capacity can be resident, so at least
	// n-capacity fetches must miss, and every page must decode its image.
	for pid := PageID(2); pid < PageID(2+n); pid++ {
		f, err := p.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		if b := f.Data.([]byte); b[0] != byte(pid) {
			t.Errorf("page %d contents = %d", pid, b[0])
		}
		p.Unpin(f)
	}
	s3 := p.Stats()
	if got := (s3.Hits + s3.Misses) - (s2.Hits + s2.Misses); got != int64(n) {
		t.Errorf("sweep recorded %d fetches, want %d", got, n)
	}
	if got := s3.Misses - s2.Misses; got < int64(n-capacity) {
		t.Errorf("sweep misses = %d, want >= %d", got, n-capacity)
	}
	if r := s3.HitRatio(); r <= 0 || r >= 1 {
		t.Errorf("hit ratio = %v, want in (0, 1)", r)
	}
}

// TestFetchEvictChurn drives fully-unpinned re-fetches of a tiny bounded
// pool so that fetch misses, eviction write-backs, and re-installs of the
// same pages race constantly; run it under -race. Each page carries a
// counter incremented under the X latch, and every increment bumps a
// per-page high-water mark. Observing a counter below the mark means a
// fetch installed a stale stable image over newer contents (the
// fetch/evict race: a lost update). Unlike TestCheckpointStress, workers
// drop every pin between operations, so the pool is free to evict and
// reload the page under them between increments.
func TestFetchEvictChurn(t *testing.T) {
	const (
		capacity = 4
		nPages   = 16
		workers  = 8
		incs     = 3000
	)
	p, lg := newTestPool(capacity)
	logger := &testLogger{log: lg}
	for pid := PageID(2); pid < PageID(2+nPages); pid++ {
		f := mustCreate(t, p, pid)
		f.Latch.AcquireX()
		f.Data = make([]byte, 8)
		f.MarkDirty(logger.LogUpdate(p.StoreID, uint64(pid), 0, nil))
		f.Latch.ReleaseX()
		p.Unpin(f)
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}

	var hi [nPages]atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := uint64(w)*0x9E3779B97F4A7C15 + 1
			var last wal.LSN
			for i := 0; i < incs; i++ {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				idx := (rnd >> 32) % nPages
				pid := PageID(2 + idx)
				f, err := p.Fetch(pid)
				if err != nil {
					t.Errorf("fetch %d: %v", pid, err)
					return
				}
				f.Latch.AcquireX()
				b := f.Data.([]byte)
				v := binary.LittleEndian.Uint64(b)
				// The X latch serializes increments of one page, so under
				// it the high-water mark is exact: a lower counter means a
				// stale image was installed over newer contents.
				if prev := hi[idx].Load(); v < prev {
					t.Errorf("page %d: counter %d after %d was observed — lost update", pid, v, prev)
				}
				binary.LittleEndian.PutUint64(b, v+1)
				hi[idx].Store(v + 1)
				lsn := lg.Append(&wal.Record{
					Type: wal.RecUpdate, TxnID: wal.TxnID(w + 1), PrevLSN: last,
					StoreID: p.StoreID, PageID: uint64(pid),
				})
				last = lsn
				f.MarkDirty(lsn)
				f.Latch.ReleaseX()
				p.Unpin(f)
			}
		}(w)
	}
	wg.Wait()

	total := uint64(0)
	for idx := uint64(0); idx < nPages; idx++ {
		f, err := p.Fetch(PageID(2 + idx))
		if err != nil {
			t.Fatal(err)
		}
		v := binary.LittleEndian.Uint64(f.Data.([]byte))
		if want := hi[idx].Load(); v != want {
			t.Errorf("page %d: final counter %d, want %d", 2+idx, v, want)
		}
		total += v
		p.Unpin(f)
	}
	if total != workers*incs {
		t.Errorf("total increments = %d, want %d", total, workers*incs)
	}
	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	checkWALRule(t, p, lg)
}

// checkWALRule asserts that every stable page image carries a pageLSN at
// or below the log's stable watermark — the write-ahead rule. The disk is
// snapshotted before reading StableLSN: the watermark is monotonic and
// every image in the snapshot was forced before it was written, so the
// later watermark read can only over-approximate.
func checkWALRule(t *testing.T, p *Pool, lg *wal.Log) {
	t.Helper()
	snap := p.Disk().Snapshot()
	stable := lg.StableLSN()
	for pid, img := range snap.pages {
		lsn, _, _, err := unframeImage(img)
		if err != nil {
			t.Errorf("page %d: bad stable image: %v", pid, err)
			continue
		}
		if wal.LSN(lsn) > stable {
			t.Errorf("WAL rule violated: page %d stable image has LSN %d > stable %d",
				pid, lsn, stable)
		}
	}
}

// TestCheckpointStress hammers a small bounded pool from many goroutines
// (fetch, re-fetch, dirty, unpin) while a checkpointer concurrently takes
// DirtyPages snapshots and fuzzy FlushAll sweeps. Run it under -race. It
// asserts that a pinned frame is never evicted (a re-fetch while pinned
// must return the identical frame) and that no flush ever violates the
// write-ahead rule.
func TestCheckpointStress(t *testing.T) {
	const (
		capacity = 16
		nPages   = 64
		workers  = 8
		ckpts    = 40
	)
	p, lg := newTestPool(capacity)
	seedPages(t, p, &testLogger{log: lg}, nPages)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := uint64(w)*0x9E3779B97F4A7C15 + 1
			var last wal.LSN
			for {
				select {
				case <-stop:
					return
				default:
				}
				rnd = rnd*6364136223846793005 + 1442695040888963407
				pid := PageID(2 + (rnd>>32)%nPages)
				f, err := p.Fetch(pid)
				if err != nil {
					t.Errorf("fetch %d: %v", pid, err)
					return
				}
				if f.ID != pid {
					t.Errorf("fetch %d returned frame for page %d", pid, f.ID)
				}
				// While f is pinned it cannot be evicted, so a second
				// fetch must find the very same frame.
				g, err := p.Fetch(pid)
				if err != nil {
					t.Errorf("refetch %d: %v", pid, err)
					p.Unpin(f)
					return
				}
				if g != f {
					t.Errorf("page %d: pinned frame was evicted and reloaded", pid)
				}
				p.Unpin(g)
				if rnd%4 == 0 {
					f.Latch.AcquireX()
					lsn := lg.Append(&wal.Record{
						Type: wal.RecUpdate, TxnID: wal.TxnID(w + 1), PrevLSN: last,
						StoreID: p.StoreID, PageID: uint64(pid),
					})
					last = lsn
					f.MarkDirty(lsn)
					f.Latch.ReleaseX()
				}
				p.Unpin(f)
			}
		}(w)
	}

	for i := 0; i < ckpts; i++ {
		dpt := p.DirtyPages()
		for pid, rec := range dpt {
			if rec == wal.NilLSN {
				t.Errorf("checkpoint %d: dirty page %d with nil recLSN", i, pid)
			}
		}
		if _, err := p.FlushAll(); err != nil {
			t.Errorf("checkpoint %d flush: %v", i, err)
		}
		checkWALRule(t, p, lg)
	}
	close(stop)
	wg.Wait()

	if _, err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	checkWALRule(t, p, lg)
	if got := p.BufferedCount(); got > capacity+workers {
		t.Errorf("buffered = %d after quiesce, want <= %d", got, capacity+workers)
	}
}
