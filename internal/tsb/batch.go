package tsb

import (
	"errors"
	"sync"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/wal"
)

// FPBatchApply is the failpoint probed in the batched write path after a
// run's locks are granted but before anything is logged or applied (same
// name and placement as the core tree's, so one torture round covers
// both).
const FPBatchApply = "core.batchapply"

var errBatchArgs = errors.New("tsb: batch argument slices have different lengths")

// batchScratch mirrors the core tree's pooled per-batch working storage.
type batchScratch struct {
	idx   []int
	names []lock.Name
	ups   []txn.GroupUpdate
}

var batchScratchPool sync.Pool

func takeBatchScratch(n int) *batchScratch {
	sc, _ := batchScratchPool.Get().(*batchScratch)
	if sc == nil {
		sc = new(batchScratch)
	}
	if cap(sc.idx) < n {
		sc.idx = make([]int, n)
	}
	sc.idx = sc.idx[:n]
	for i := range sc.idx {
		sc.idx[i] = i
	}
	return sc
}

func putBatchScratch(sc *batchScratch) {
	for i := range sc.ups {
		sc.ups[i] = txn.GroupUpdate{}
	}
	sc.ups = sc.ups[:0]
	batchScratchPool.Put(sc)
}

// sortIdx sorts the index permutation by key (insertion sort; batches are
// modest and this keeps the read path allocation-free).
func sortIdx(idx []int, ks []keys.Key) {
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && keys.Compare(ks[idx[j-1]], ks[idx[j]]) > 0 {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
}

// runEnd extends a run starting at pos over every following batch key the
// current leaf's key range contains.
func runEnd(leaf *nref, ks []keys.Key, idx []int, pos int) int {
	end := pos + 1
	for end < len(idx) && leaf.n.Rect.ContainsKey(ks[idx[end]]) {
		end++
	}
	return end
}

// lockRun takes a run's record locks in one lock-manager interaction,
// with the usual No-Wait dance on conflict (see the core tree's lockRun).
func (t *Tree) lockRun(o *opCtx, leaf *nref, ks []keys.Key, run []int, sc *batchScratch, mode lock.Mode) error {
	if o.txn == nil {
		return nil
	}
	names := sc.names[:0]
	for _, i := range run {
		names = append(names, t.recLockName(ks[i]))
	}
	sc.names = names
	fail := o.txn.TryLockBatch(names, mode)
	if fail < 0 {
		return nil
	}
	o.release(leaf)
	if err := o.txn.Lock(names[fail], mode); err != nil {
		return err
	}
	return errRetry
}

// MultiPut writes a new version of every ks[i] with vals[i], grouped into
// leaf-runs: one descent, one latch hold, one lock-manager interaction,
// and one group append of the run's KindPut records per distinct current
// leaf. Each version still gets its own strictly-increasing timestamp and
// its own log record, so time splits, logical undo, and snapshot
// visibility are untouched. ks need not be sorted.
func (t *Tree) MultiPut(tx *txn.Txn, ks []keys.Key, vals [][]byte) error {
	if len(vals) != len(ks) {
		return errBatchArgs
	}
	return t.batchPut(tx, ks, vals, false)
}

// MultiDelete writes a tombstone version of every key, batched like
// MultiPut; as-of reads at earlier times still see the old versions.
func (t *Tree) MultiDelete(tx *txn.Txn, ks []keys.Key) error {
	return t.batchPut(tx, ks, nil, true)
}

func (t *Tree) batchPut(tx *txn.Txn, ks []keys.Key, vals [][]byte, deleted bool) error {
	if len(ks) == 0 {
		return nil
	}
	sc := takeBatchScratch(len(ks))
	defer putBatchScratch(sc)
	sortIdx(sc.idx, ks)
	pos := 0
	for pos < len(ks) {
		if err := t.retryLoop(func() error {
			return t.putRun(tx, ks, vals, deleted, sc, &pos)
		}); err != nil {
			return err
		}
	}
	return nil
}

// putRun applies one leaf-run of a batched put; see the core tree's
// mutateRun for the shape. The run stops early when the leaf fills; the
// remainder re-descends and splits first.
func (t *Tree) putRun(tx *txn.Txn, ks []keys.Key, vals [][]byte, deleted bool, sc *batchScratch, pos *int) error {
	o := t.newOp(tx)
	defer o.done()
	leaf, err := t.descend(o, ks[sc.idx[*pos]], NoEnd-1, 0, latch.U, true)
	if err != nil {
		return err
	}
	if !leaf.n.Current() {
		o.release(&leaf)
		return errRetry
	}
	end := runEnd(&leaf, ks, sc.idx, *pos)
	run := sc.idx[*pos:end]

	if err := t.lockRun(o, &leaf, ks, run, sc, lock.X); err != nil {
		return err
	}

	if len(leaf.n.Entries) >= t.opts.DataCapacity {
		if err := t.splitData(o, &leaf); err != nil {
			return err
		}
		return errRetry
	}

	lg := tx
	if lg == nil {
		lg = t.tm.BeginAtomicAction()
	}

	// Crash/fault point between runs (nothing logged or applied yet).
	if err := t.store.Pool.Probe(FPBatchApply); err != nil {
		if tx == nil {
			_ = lg.Abort()
		}
		o.release(&leaf)
		return err
	}

	o.promote(&leaf)
	var writer wal.TxnID
	if tx != nil {
		writer = tx.ID
	}
	ups := sc.ups[:0]
	applied := 0
	for _, i := range run {
		if len(leaf.n.Entries) >= t.opts.DataCapacity {
			break // leaf filled mid-run; the rest re-descends and splits
		}
		var value []byte
		if !deleted {
			value = vals[i]
		}
		e := Entry{Key: keys.Clone(ks[i]), Start: t.tick(), Value: append([]byte(nil), value...), Deleted: deleted, Txn: writer}
		ups = append(ups, txn.GroupUpdate{Kind: KindPut, Payload: encPut(e)})
		leaf.n.insertVersion(e)
		t.Stats.Puts.Add(1)
		applied++
	}
	sc.ups = ups
	if len(ups) > 0 {
		first, last := lg.LogUpdateGroup(t.store.Pool.StoreID, uint64(leaf.pid()), ups)
		// Both marks matter: the first publishes recLSN covering the whole
		// run if the page was clean, the second advances pageLSN to the
		// run's last record.
		leaf.f.MarkDirty(first)
		leaf.f.MarkDirty(last)
	}
	t.Stats.BatchOps.Add(1)
	t.Stats.LeafVisitsSaved.Add(int64(applied - 1))
	if tx == nil {
		if cerr := lg.Commit(); cerr != nil {
			o.release(&leaf)
			return cerr
		}
	}
	o.release(&leaf)
	*pos += applied
	return nil
}

// MultiGet looks up the current value of a batch of keys with one descent
// and one latch hold per distinct current leaf. found[i] and vals[i]
// report ks[i]; values are appended to vals[i][:0] so reused slices pay
// no per-hit allocation. With a non-nil transaction each run's record S
// locks are taken in a single lock-manager interaction.
func (t *Tree) MultiGet(tx *txn.Txn, ks []keys.Key, vals [][]byte, found []bool) error {
	if len(vals) != len(ks) || len(found) != len(ks) {
		return errBatchArgs
	}
	if len(ks) == 0 {
		return nil
	}
	t.Stats.Gets.Add(int64(len(ks)))
	sc := takeBatchScratch(len(ks))
	defer putBatchScratch(sc)
	sortIdx(sc.idx, ks)
	pos := 0
	for pos < len(ks) {
		if err := t.retryLoop(func() error {
			o := t.newOp(tx)
			defer o.done()
			leaf, err := t.descend(o, ks[sc.idx[pos]], NoEnd-1, 0, latch.S, true)
			if err != nil {
				return err
			}
			end := runEnd(&leaf, ks, sc.idx, pos)
			run := sc.idx[pos:end]
			if err := t.lockRun(o, &leaf, ks, run, sc, lock.S); err != nil {
				return err
			}
			now := t.Now()
			for _, i := range run {
				if j, ok := leaf.n.searchVersion(ks[i], now); ok && !leaf.n.Entries[j].Deleted {
					vals[i] = append(vals[i][:0], leaf.n.Entries[j].Value...)
					found[i] = true
				} else {
					found[i] = false
				}
			}
			o.release(&leaf)
			t.Stats.BatchOps.Add(1)
			t.Stats.LeafVisitsSaved.Add(int64(len(run) - 1))
			pos = end
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
