package tsb

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/keys"
)

func TestMultiPutMultiGetRoundTrip(t *testing.T) {
	fx := newFixture(t, smallOpts())
	rng := rand.New(rand.NewSource(20))
	const n = 300
	perm := rng.Perm(n)
	var ks []keys.Key
	var vs [][]byte
	for _, i := range perm {
		ks = append(ks, keys.Uint64(uint64(i)))
		vs = append(vs, []byte(fmt.Sprintf("v-%d", i)))
	}
	for lo := 0; lo < n; lo += 64 {
		hi := min(lo+64, n)
		if err := fx.tree.MultiPut(nil, ks[lo:hi], vs[lo:hi]); err != nil {
			t.Fatalf("MultiPut: %v", err)
		}
	}
	if got := fx.tree.Stats.BatchOps.Load(); got == 0 {
		t.Fatal("BatchOps stayed zero")
	}
	if got := fx.tree.Stats.LeafVisitsSaved.Load(); got == 0 {
		t.Fatal("LeafVisitsSaved stayed zero")
	}

	gk := make([]keys.Key, 0, n+50)
	for i := 0; i < n+50; i++ {
		gk = append(gk, keys.Uint64(uint64(i)))
	}
	rng.Shuffle(len(gk), func(i, j int) { gk[i], gk[j] = gk[j], gk[i] })
	gv := make([][]byte, len(gk))
	found := make([]bool, len(gk))
	if err := fx.tree.MultiGet(nil, gk, gv, found); err != nil {
		t.Fatalf("MultiGet: %v", err)
	}
	for i, k := range gk {
		id := keys.ToUint64(k)
		if id < n {
			if !found[i] || string(gv[i]) != fmt.Sprintf("v-%d", id) {
				t.Fatalf("key %d: found=%v val=%q", id, found[i], gv[i])
			}
		} else if found[i] {
			t.Fatalf("absent key %d reported found", id)
		}
	}

	// Batched tombstones: current reads miss, as-of reads still see the
	// old versions.
	before := fx.tree.Now()
	var dk []keys.Key
	for i := 0; i < n; i += 3 {
		dk = append(dk, keys.Uint64(uint64(i)))
	}
	if err := fx.tree.MultiDelete(nil, dk); err != nil {
		t.Fatalf("MultiDelete: %v", err)
	}
	for i := 0; i < n; i++ {
		_, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if (i%3 == 0) == ok {
			t.Fatalf("key %d after tombstone: present=%v", i, ok)
		}
	}
	for i := 0; i < n; i += 3 {
		v, ok, err := fx.tree.GetAsOf(nil, keys.Uint64(uint64(i)), before)
		if err != nil || !ok || string(v) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("as-of read of %d: ok=%v v=%q err=%v", i, ok, v, err)
		}
	}
	if _, err := fx.tree.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestMultiPutMatchesLoopedPuts requires the batch path and the per-key
// path to agree on final current contents for identical upsert streams.
func TestMultiPutMatchesLoopedPuts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fxA := newFixture(t, smallOpts())
	fxB := newFixture(t, smallOpts())
	for r := 0; r < 15; r++ {
		var ks []keys.Key
		var vs [][]byte
		for i := 0; i < 80; i++ {
			k := uint64(rng.Intn(400))
			ks = append(ks, keys.Uint64(k))
			vs = append(vs, []byte(fmt.Sprintf("r%d-%d", r, k)))
		}
		if err := fxA.tree.MultiPut(nil, ks, vs); err != nil {
			t.Fatalf("MultiPut: %v", err)
		}
		for i := range ks {
			if err := fxB.tree.Put(nil, ks[i], vs[i]); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	type kv struct{ k, v string }
	collect := func(tr *Tree) []kv {
		var out []kv
		if err := tr.ScanAsOf(tr.Now(), nil, nil, func(k keys.Key, v []byte) bool {
			out = append(out, kv{string(k), string(v)})
			return true
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		return out
	}
	a, b := collect(fxA.tree), collect(fxB.tree)
	if len(a) != len(b) {
		t.Fatalf("content diverged: %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultiPutTxnAbort(t *testing.T) {
	fx := newFixture(t, smallOpts())
	var ks []keys.Key
	var vs [][]byte
	for i := 0; i < 40; i++ {
		ks = append(ks, keys.Uint64(uint64(i)))
		vs = append(vs, []byte(fmt.Sprintf("keep-%d", i)))
	}
	tx := fx.e.TM.Begin()
	if err := fx.tree.MultiPut(tx, ks, vs); err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := fx.e.TM.Begin()
	vs2 := make([][]byte, len(ks))
	for i := range vs2 {
		vs2[i] = []byte("doomed")
	}
	if err := fx.tree.MultiPut(tx2, ks, vs2); err != nil {
		t.Fatalf("MultiPut in tx2: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	fx.tree.DrainCompletions()
	for i := 0; i < 40; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("keep-%d", i) {
			t.Fatalf("key %d after abort: ok=%v v=%q err=%v", i, ok, v, err)
		}
	}
	if _, err := fx.tree.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestBatchCheckpointRecLSN mirrors the core tree's test of the same
// name: the batched put's group append must mark the leaf dirty with the
// group's first LSN (recLSN) as well as its last (pageLSN), or a fuzzy
// checkpoint between the run and the next flush makes redo drop the
// run's earlier records after a crash.
func TestBatchCheckpointRecLSN(t *testing.T) {
	opts := smallOpts()
	opts.DataCapacity = 32 // one leaf holds seeds plus batched versions
	fx := newFixture(t, opts)
	var ks []keys.Key
	var vs [][]byte
	for i := 0; i < 6; i++ {
		ks = append(ks, keys.Uint64(uint64(i)))
		if err := fx.tree.Put(nil, ks[i], []byte(fmt.Sprintf("seed-%d", i))); err != nil {
			t.Fatalf("seed put: %v", err)
		}
		vs = append(vs, []byte(fmt.Sprintf("group-%d", i)))
	}
	fx.tree.DrainCompletions()
	if _, err := fx.e.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	if err := fx.tree.MultiPut(nil, ks, vs); err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	if _, err := fx.e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatalf("force: %v", err)
	}

	fx2 := fx.crashRestart(t)
	fx2.mustVerify(t)
	for i := 0; i < 6; i++ {
		v, ok, err := fx2.tree.Get(nil, ks[i])
		if err != nil || !ok {
			t.Fatalf("key %d: ok=%v err=%v", i, ok, err)
		}
		if string(v) != string(vs[i]) {
			t.Fatalf("key %d = %q after recovery, batch committed %q", i, v, vs[i])
		}
	}
}
