package tsb

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
	"repro/internal/storage"
)

// TestTSBTornDataWriteMidSMORecovery mirrors the core torn-write
// scenario for the TSB-tree: crash with key splits frozen between their
// two atomic actions and one page write torn during the final flush.
// Restart repeats history over the stale image; the split siblings stay
// reachable through sibling walks and lazy completion posts the missing
// index terms.
func TestTSBTornDataWriteMidSMORecovery(t *testing.T) {
	inj := fault.New(0x75B)
	opts := smallOpts()
	opts.NoCompletion = true
	e := engine.New(engine.Options{Injector: inj})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "versions", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fx := &fixture{e: e, b: b, tree: tree}

	const n = 120
	for i := 0; i < n; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if fx.tree.Stats.KeySplits.Load() == 0 {
		t.Fatal("workload produced no key splits")
	}
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	inj.Arm(storage.FPDiskWrite, fault.Spec{Kind: fault.Torn, After: 3})
	if _, err := fx.e.FlushAll(); !fault.IsTorn(err) {
		t.Fatalf("flush did not tear: %v", err)
	}
	inj.Disarm(storage.FPDiskWrite)

	fx.e.Opts.Injector = nil
	fx.tree.opts.NoCompletion = false
	fx2 := fx.crashRestart(t)

	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("tree ill-formed after torn-write recovery: %v", err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := fx2.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if fx2.tree.Stats.KeySibWalks.Load() == 0 {
		t.Fatal("expected sibling walks through unposted splits")
	}
	fx2.tree.DrainCompletions()
	if fx2.tree.Stats.PostsPerformed.Load() == 0 {
		t.Fatal("lazy completion performed no postings")
	}
	if _, err := fx2.tree.Verify(); err != nil {
		t.Fatalf("after completion: %v", err)
	}
}
