package tsb

// Watermark-driven version garbage collection.
//
// Historical nodes whose entire time range lies below the transaction
// manager's visibility horizon (the oldest timestamp any live snapshot or
// active transaction can still read) hold versions nobody can ever see
// again. GC retires them IN PLACE: entries are cleared and the node is
// marked Retired, but the page is never freed and its rectangle and
// sibling pointers survive, so a stale traversal mid-flight through the
// chain still lands on well-formed (empty) nodes — the CNS invariant is
// preserved. The newest node of each reclaimed suffix also clears its own
// history pointer, cutting the older retired nodes out of the chain; at
// most one retired node stays linked per chain between passes.
//
// Pin safety: a victim has TimeHigh <= horizon. A snapshot reader only
// descends past a node when the newest sub-TimeLow version it carries is
// invisible to the snapshot: either it starts after the snapshot's read
// timestamp, or its writer was in flight at capture — and in-flight
// writers' versions start above their begin clocks, which the snapshot's
// pin folds in (txn.Snapshot.pin; the writer may well have committed and
// left the active set by the time GC runs, so the active set alone is
// not enough). Either way the invisible version starts strictly above
// the snapshot's pin, and the horizon is at most every live snapshot's
// pin. The reader enters a node N only when such an invisible version
// sits above N's time range, so N.TimeHigh > Start > pin >= horizon:
// a victim (TimeHigh <= horizon) is never entered by a live snapshot.
//
// Each victim is one atomic action: remove its level-1 index terms (all
// of them — clipping can spread terms over several parents), then clear
// the node, holding every latch to commit. Redo replays the retirement;
// undo restores the pre-image and re-posts the terms.

import (
	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/storage"
)

// gcVictim is a chain node selected for retirement, captured under latch.
type gcVictim struct {
	pid     storage.PageID
	rect    Rect
	retired bool
	entries int
}

// RunGC sweeps every history chain in the tree once, retiring all nodes
// below the current visibility horizon. It returns the number of nodes
// retired. Background GC (Options.GC) runs the same per-chain pass off
// committed time splits; RunGC is the on-demand whole-tree form.
func (t *Tree) RunGC() (int, error) {
	retired := 0
	var cursor keys.Key
	for {
		var head storage.PageID
		var next keys.Key
		done := false
		err := t.retryLoop(func() error {
			o := t.newOp(nil)
			defer o.done()
			leaf, err := t.descend(o, cursor, NoEnd-1, 0, latch.S, false)
			if err != nil {
				return err
			}
			head = leaf.pid()
			if leaf.n.Rect.KeyHigh.Unbounded {
				done = true
			} else {
				next = keys.Clone(leaf.n.Rect.KeyHigh.Key)
			}
			o.release(&leaf)
			return nil
		})
		if err != nil {
			return retired, err
		}
		n, err := t.gcChain(head)
		retired += n
		if err != nil {
			return retired, err
		}
		if t.opts.Reclaim {
			if _, err := t.reclaimChain(head); err != nil {
				return retired, err
			}
		}
		if done {
			return retired, nil
		}
		cursor = next
	}
}

// gcChain retires the reclaimable suffix of the history chain hanging off
// the current node head. Serialized per tree: concurrent passes would
// race to retire the same victim and the loser's abort would re-post
// index terms the winner removed.
func (t *Tree) gcChain(head storage.PageID) (int, error) {
	t.gcMu.Lock()
	defer t.gcMu.Unlock()
	t.Stats.GCPasses.Add(1)

	horizon := t.tm.VisibilityHorizon()
	if horizon == 0 {
		return 0, nil
	}

	// Phase 1: walk the chain newest-to-oldest (one S latch at a time;
	// CNS makes the saved HistSib trustworthy) and collect the suffix of
	// nodes whose whole time range is below the horizon. The current node
	// (TimeHigh = NoEnd) is never a victim.
	var victims []gcVictim
	o := t.newOp(nil)
	cur, err := o.acquire(head, latch.S, 0)
	if err != nil {
		o.done()
		return 0, err
	}
	for {
		n := cur.n
		if n.Rect.TimeHigh <= horizon {
			victims = append(victims, gcVictim{
				pid:     cur.pid(),
				rect:    cloneRect(n.Rect),
				retired: n.Retired,
				entries: len(n.Entries),
			})
		}
		sib := n.HistSib
		if sib == storage.NilPage {
			break
		}
		next, err := t.step(o, &cur, sib, latch.S, 0)
		if err != nil {
			o.done()
			return 0, err
		}
		cur = next
	}
	o.release(&cur)
	o.done()

	// Phase 2: retire oldest-first so a crash mid-pass leaves a chain
	// whose reclaimed tail is contiguous. Only the newest victim (index
	// 0) unlinks: it is the one that stays reachable, and dropping its
	// history pointer cuts the rest loose. Already-retired nodes (kept
	// linked by an earlier pass) need no new action. Under Reclaim
	// nothing unlinks here — retired nodes must stay reachable so the
	// page reaper can walk to the tail and free it (the cut happens
	// there, one tail at a time, with the page returned to the store).
	retired := 0
	for i := len(victims) - 1; i >= 0; i-- {
		v := victims[i]
		if v.retired {
			continue
		}
		if err := t.retireNode(v, i == 0 && !t.opts.Reclaim); err != nil {
			return retired, err
		}
		retired++
		t.Stats.GCRetiredNodes.Add(1)
		t.Stats.GCReclaimedVersions.Add(int64(v.entries))
	}
	return retired, nil
}

// retireNode removes the victim's level-1 index terms and clears it, as
// one atomic action holding all latches to commit (the postTerm idiom).
// Clipped terms mean several level-1 parents can reference the victim, so
// the removal walks the key-sibling chain across the victim's key range.
func (t *Tree) retireNode(v gcVictim, unlink bool) error {
	return t.retryLoop(func() error {
		o := t.newOp(nil)
		defer o.done()
		node, err := t.descend(o, v.rect.KeyLow, NoEnd-1, 1, latch.U, false)
		if err != nil {
			return err
		}
		aa := t.tm.BeginAtomicAction()
		var held []nref
		releaseAll := func() {
			o.release(&node)
			for i := len(held) - 1; i >= 0; i-- {
				o.release(&held[i])
			}
			held = nil
		}
		fail := func(err error) error {
			releaseAll()
			_ = aa.Abort()
			return err
		}
		for {
			if i, ok := node.n.termFor(v.pid); ok && len(node.n.Entries) > 1 {
				// Never remove a level-1 node's last term: an empty index
				// node is unnavigable (and fails verification). One stale
				// term to a retired node is harmless — it still routes to
				// a well-formed empty page.
				if node.mode != latch.X {
					o.promote(&node)
				}
				e := node.n.Entries[i]
				lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(node.pid()), KindRemoveTerm, encTerm(e))
				node.n.Entries = append(node.n.Entries[:i], node.n.Entries[i+1:]...)
				node.f.MarkDirty(lsn)
				t.Stats.GCRemovedTerms.Add(1)
			}
			if node.n.Rect.KeyHigh.Unbounded {
				break
			}
			if !v.rect.KeyHigh.Unbounded && keys.Compare(node.n.Rect.KeyHigh.Key, v.rect.KeyHigh.Key) >= 0 {
				break
			}
			sib := node.n.KeySib
			if sib == storage.NilPage {
				break
			}
			next, err := o.acquire(sib, latch.U, 1)
			if err != nil {
				return fail(err)
			}
			held = append(held, node)
			node = next
		}

		vic, err := o.acquire(v.pid, latch.X, 0)
		if err != nil {
			return fail(err)
		}
		if vic.n.Retired {
			// Lost a race we thought gcMu excluded (defensive): keep the
			// term removals, skip the retire.
			held = append(held, vic)
			err := aa.Commit()
			releaseAll()
			return err
		}
		pre := vic.n.clone()
		lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(vic.pid()), KindRetireNode, encRetire(unlink, pre))
		applyRetire(vic.n, unlink)
		vic.f.MarkDirty(lsn)
		held = append(held, vic)
		err = aa.Commit()
		releaseAll()
		return err
	})
}
