package tsb

import (
	"fmt"
	"sync"

	"repro/internal/enc"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Log record kinds owned by the TSB tree (range 40..59).
const (
	// KindFormat installs a complete node image on a fresh page.
	KindFormat wal.Kind = 40
	// KindTimeSplit trims a current node to [ts, now): versions dead
	// before ts leave for the new history sibling.
	KindTimeSplit wal.Kind = 41
	// KindRestoreImage replaces a node with a stored pre-image
	// (compensation for structural updates).
	KindRestoreImage wal.Kind = 42
	// KindKeySplit trims a node to the low part of its key range.
	KindKeySplit wal.Kind = 43
	// KindPut inserts one record version (possibly a tombstone).
	KindPut wal.Kind = 44
	// KindRemoveVersion removes an exact (key, start) version; it is the
	// logical-undo compensation for KindPut.
	KindRemoveVersion wal.Kind = 45
	// KindPostTerm adds a rectangle index term to a level-1 node.
	KindPostTerm wal.Kind = 46
	// KindRemoveTerm deletes a rectangle term by child page.
	KindRemoveTerm wal.Kind = 47
	// KindPostKeyTerm adds a key-only term to a level>=2 node.
	KindPostKeyTerm wal.Kind = 48
	// KindRemoveKeyTerm deletes a key-only term.
	KindRemoveKeyTerm wal.Kind = 49
	// KindIndexKeySplit trims an index node to the low part of its key
	// range, retaining CLIPPED terms whose rectangles span the boundary
	// (§3.2.2).
	KindIndexKeySplit wal.Kind = 50
	// KindRootGrow turns the root into an index node one level up.
	KindRootGrow wal.Kind = 51
	// KindRetireNode garbage-collects a historical node whose whole time
	// range fell below the visibility horizon: entries are cleared and the
	// node is marked Retired (the page is never freed — CNS). The payload
	// optionally also clears the history side pointer, cutting the chain
	// of already-retired older nodes loose when the suffix head retires.
	KindRetireNode wal.Kind = 52
	// KindCutHist unlinks a fully-retired history-chain tail from its sole
	// referencer so the tail's page can be freed and recycled
	// (Options.Reclaim): the logged node drops its history pointer and its
	// shared-edge mark. The tail's de-allocation is meta-logged by the
	// store's free record inside the same atomic action; undo restores the
	// pre-image (and the meta undo un-frees the page).
	KindCutHist wal.Kind = 53
)

// --- payload codecs --------------------------------------------------------

func encTimeSplit(ts uint64, hist storage.PageID, pre *Node) []byte {
	var w enc.Writer
	w.U64(ts)
	w.U64(uint64(hist))
	encodeNode(&w, pre)
	return w.Bytes()
}

func decTimeSplit(b []byte) (ts uint64, hist storage.PageID, pre *Node, err error) {
	r := enc.NewReader(b)
	ts = r.U64()
	hist = storage.PageID(r.U64())
	pre, err = decodeNode(r)
	return
}

func encKeySplit(k keys.Key, sib storage.PageID, pre *Node) []byte {
	var w enc.Writer
	w.Bytes32(k)
	w.U64(uint64(sib))
	encodeNode(&w, pre)
	return w.Bytes()
}

func decKeySplit(b []byte) (k keys.Key, sib storage.PageID, pre *Node, err error) {
	r := enc.NewReader(b)
	k = r.Bytes32()
	sib = storage.PageID(r.U64())
	pre, err = decodeNode(r)
	return
}

func encPut(e Entry) []byte {
	var w enc.Writer
	w.Bytes32(e.Key)
	w.U64(e.Start)
	w.Bytes32(e.Value)
	w.Bool(e.Deleted)
	w.U64(uint64(e.Txn))
	return w.Bytes()
}

func decPut(b []byte) (Entry, error) {
	r := enc.NewReader(b)
	var e Entry
	e.Key = r.Bytes32()
	e.Start = r.U64()
	e.Value = r.Bytes32()
	e.Deleted = r.Bool()
	e.Txn = wal.TxnID(r.U64())
	return e, r.Err()
}

func encVersionRef(k keys.Key, start uint64) []byte {
	var w enc.Writer
	w.Bytes32(k)
	w.U64(start)
	return w.Bytes()
}

func decVersionRef(b []byte) (keys.Key, uint64, error) {
	r := enc.NewReader(b)
	k := r.Bytes32()
	s := r.U64()
	return k, s, r.Err()
}

func encTerm(e Entry) []byte {
	var w enc.Writer
	w.U64(uint64(e.Child))
	encodeRect(&w, e.ChildRect)
	w.Bool(e.Clipped)
	return w.Bytes()
}

func decTerm(b []byte) (Entry, error) {
	r := enc.NewReader(b)
	var e Entry
	e.Child = storage.PageID(r.U64())
	e.ChildRect = decodeRect(r)
	e.Clipped = r.Bool()
	return e, r.Err()
}

func encKeyTerm(k keys.Key, child storage.PageID) []byte {
	var w enc.Writer
	w.Bytes32(k)
	w.U64(uint64(child))
	return w.Bytes()
}

func decKeyTerm(b []byte) (keys.Key, storage.PageID, error) {
	r := enc.NewReader(b)
	k := r.Bytes32()
	c := storage.PageID(r.U64())
	return k, c, r.Err()
}

func encRetire(unlink bool, pre *Node) []byte {
	var w enc.Writer
	w.Bool(unlink)
	encodeNode(&w, pre)
	return w.Bytes()
}

func decRetire(b []byte) (unlink bool, pre *Node, err error) {
	r := enc.NewReader(b)
	unlink = r.Bool()
	pre, err = decodeNode(r)
	return
}

// applyRetire garbage-collects a historical node in place: versions go,
// the rectangle and sibling pointers stay so stale traversals still
// navigate through it. unlink additionally drops the history pointer (the
// retiring node is the newest of the reclaimed suffix; everything behind
// it is already retired).
func applyRetire(n *Node, unlink bool) {
	n.Entries = nil
	n.Retired = true
	if unlink {
		n.HistSib = storage.NilPage
	}
}

func encCutHist(pre *Node) []byte { return encNodeImage(pre) }

// applyCutHist drops a node's history edge: the tail behind it is about
// to be (or was, on redo) de-allocated. The edge mark goes with the edge.
func applyCutHist(n *Node) {
	n.HistSib = storage.NilPage
	n.HistShared = false
}

func encRootGrow(termA, termB Entry, pre *Node) []byte {
	var w enc.Writer
	encodeEntry(&w, termA)
	encodeEntry(&w, termB)
	encodeNode(&w, pre)
	return w.Bytes()
}

func decRootGrow(b []byte) (termA, termB Entry, pre *Node, err error) {
	r := enc.NewReader(b)
	termA = decodeEntry(r)
	termB = decodeEntry(r)
	pre, err = decodeNode(r)
	return
}

// --- semantic helpers shared by runtime application and redo ----------------

// applyTimeSplit keeps, in the current node, every version alive at ts
// (the latest version of each key with Start < ts stays, copied semantics)
// plus every version with Start >= ts, then advances TimeLow and installs
// the history sibling. The old history edge — pointer AND shared mark —
// moved to the new history node (splitData builds its image that way), so
// the current node's new edge to it is fresh and single-referenced.
func applyTimeSplit(n *Node, ts uint64, hist storage.PageID) {
	kept := n.Entries[:0:0]
	for i, e := range n.Entries {
		if e.Start >= ts {
			kept = append(kept, e)
			continue
		}
		// Alive at ts iff no later version of the same key with
		// Start < ts... i.e. this is the last version of its key below
		// ts. Entries are sorted by (Key, Start).
		lastBelow := i+1 >= len(n.Entries) ||
			!keys.Equal(n.Entries[i+1].Key, e.Key) ||
			n.Entries[i+1].Start >= ts
		if lastBelow {
			kept = append(kept, e)
		}
	}
	n.Entries = kept
	n.Rect.TimeLow = ts
	n.HistSib = hist
	n.HistShared = false
}

// historyContents returns the versions the new history node receives:
// every version with Start < ts.
func historyContents(pre *Node, ts uint64) []Entry {
	var out []Entry
	for _, e := range pre.Entries {
		if e.Start < ts {
			out = append(out, cloneEntry(e))
		}
	}
	return out
}

// applyKeySplit trims a data node to keys below k. The new sibling copies
// the history pointer, so if one exists the edge is now reached from two
// current nodes: mark it shared on this side (the sibling's image carries
// its own mark) so reclamation never frees the chain's tail out from
// under the other referencer.
func applyKeySplit(n *Node, k keys.Key, sib storage.PageID) {
	kept := n.Entries[:0:0]
	for _, e := range n.Entries {
		if keys.Compare(e.Key, k) < 0 {
			kept = append(kept, e)
		}
	}
	n.Entries = kept
	n.Rect.KeyHigh = keys.At(k)
	n.KeySib = sib
	if n.HistSib != storage.NilPage {
		n.HistShared = true
	}
}

// applyIndexKeySplit trims an index node to keys below k, RETAINING
// clipped terms (level 1) whose rectangles span k; spanning terms are
// also marked Clipped, flagging their children as multi-parent (§3.3).
func applyIndexKeySplit(n *Node, k keys.Key, sib storage.PageID) {
	kept := n.Entries[:0:0]
	for _, e := range n.Entries {
		if n.Level == 1 {
			if keys.Compare(e.ChildRect.KeyLow, k) < 0 {
				if e.ChildRect.SpansKey(k) {
					e.Clipped = true
				}
				kept = append(kept, e)
			}
		} else {
			if keys.Compare(e.Key, k) < 0 {
				kept = append(kept, e)
			}
		}
	}
	n.Entries = kept
	n.Rect.KeyHigh = keys.At(k)
	n.KeySib = sib
}

// indexSiblingEntries returns the terms the new index sibling receives:
// those at or above k, plus clipped copies of spanning level-1 terms.
func indexSiblingEntries(pre *Node, k keys.Key) (entries []Entry, clipped int) {
	for _, e := range pre.Entries {
		if pre.Level == 1 {
			if keys.Compare(e.ChildRect.KeyLow, k) >= 0 {
				entries = append(entries, cloneEntry(e))
			} else if e.ChildRect.SpansKey(k) {
				c := cloneEntry(e)
				c.Clipped = true
				entries = append(entries, c)
				clipped++
			}
		} else {
			if keys.Compare(e.Key, k) >= 0 {
				entries = append(entries, cloneEntry(e))
			}
		}
	}
	return entries, clipped
}

// --- binding and registration -----------------------------------------------

// Binding connects record kinds to live trees for logical undo.
type Binding struct {
	mu    sync.RWMutex
	trees map[uint32]*Tree
}

// Bind registers a tree for its store ID.
func (b *Binding) Bind(t *Tree) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trees[t.store.Pool.StoreID] = t
}

func (b *Binding) tree(storeID uint32) (*Tree, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.trees[storeID]
	if !ok {
		return nil, fmt.Errorf("tsb: no tree bound for store %d", storeID)
	}
	return t, nil
}

func nodeOf(f *storage.Frame) (*Node, error) {
	n, ok := f.Data.(*Node)
	if !ok {
		return nil, fmt.Errorf("tsb: page %d holds %T, not a node", f.ID, f.Data)
	}
	return n, nil
}

// Register installs the TSB record kinds into reg. Record undo is always
// logical for the TSB tree — re-traversal by (key, start) — so structure
// changes are never constrained by record undo and all splits run as
// independent atomic actions (the paper's preferred regime, §6).
func Register(reg *storage.Registry) *Binding {
	b := &Binding{trees: make(map[uint32]*Tree)}

	restore := func(rec *wal.Record, pre *Node) (storage.Compensation, error) {
		return storage.Compensation{Kind: KindRestoreImage, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: encNodeImage(pre)}, nil
	}

	reg.Register(KindFormat, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
	})
	reg.Register(KindRestoreImage, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return err
			}
			f.Data = n
			return nil
		},
	})
	reg.Register(KindTimeSplit, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			ts, hist, _, err := decTimeSplit(rec.Payload)
			if err != nil {
				return err
			}
			applyTimeSplit(n, ts, hist)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decTimeSplit(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindKeySplit, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, sib, _, err := decKeySplit(rec.Payload)
			if err != nil {
				return err
			}
			applyKeySplit(n, k, sib)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decKeySplit(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindIndexKeySplit, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, sib, _, err := decKeySplit(rec.Payload)
			if err != nil {
				return err
			}
			applyIndexKeySplit(n, k, sib)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decKeySplit(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindPut, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decPut(rec.Payload)
			if err != nil {
				return err
			}
			n.insertVersion(e)
			return nil
		},
		LogicalUndo: func(rec *wal.Record) error {
			t, err := b.tree(rec.StoreID)
			if err != nil {
				return err
			}
			e, err := decPut(rec.Payload)
			if err != nil {
				return err
			}
			return t.logicalUndoPut(rec, e)
		},
	})
	reg.Register(KindRemoveVersion, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, start, err := decVersionRef(rec.Payload)
			if err != nil {
				return err
			}
			n.removeVersion(k, start)
			return nil
		},
		// CLR-only; never undone.
	})
	reg.Register(KindPostTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			if _, dup := n.termFor(e.Child); !dup {
				n.insertTerm(e)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindRemoveTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindRemoveTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			e, err := decTerm(rec.Payload)
			if err != nil {
				return err
			}
			if i, ok := n.termFor(e.Child); ok {
				n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindPostTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindPostKeyTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, child, err := decKeyTerm(rec.Payload)
			if err != nil {
				return err
			}
			n.insertKeyTerm(Entry{Key: k, Child: child})
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindRemoveKeyTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindRemoveKeyTerm, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			k, _, err := decKeyTerm(rec.Payload)
			if err != nil {
				return err
			}
			for i := range n.Entries {
				if keys.Equal(n.Entries[i].Key, k) {
					n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
					break
				}
			}
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			return storage.Compensation{Kind: KindPostKeyTerm, StoreID: rec.StoreID, PageID: storage.PageID(rec.PageID), Payload: rec.Payload}, nil
		},
	})
	reg.Register(KindRetireNode, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			unlink, _, err := decRetire(rec.Payload)
			if err != nil {
				return err
			}
			applyRetire(n, unlink)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, pre, err := decRetire(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindCutHist, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			applyCutHist(n)
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			pre, err := decodeNode(enc.NewReader(rec.Payload))
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	reg.Register(KindRootGrow, storage.Handler{
		Redo: func(f *storage.Frame, rec *wal.Record) error {
			n, err := nodeOf(f)
			if err != nil {
				return err
			}
			termA, termB, _, err := decRootGrow(rec.Payload)
			if err != nil {
				return err
			}
			n.Level++
			n.Entries = []Entry{termA, termB}
			n.Rect = EntireRect()
			n.KeySib = storage.NilPage
			n.HistSib = storage.NilPage
			return nil
		},
		MakeUndo: func(rec *wal.Record) (storage.Compensation, error) {
			_, _, pre, err := decRootGrow(rec.Payload)
			if err != nil {
				return storage.Compensation{}, err
			}
			return restore(rec, pre)
		},
	})
	return b
}
