// Package tsb implements the Time-Split B-tree of Lomet & Salzberg (1989)
// as a Π-tree instance (§2.2.2 of the 1992 paper): a versioned index over
// key × time, maintained with the same decomposed atomic actions, side
// pointers, and lazy index-term posting as the B-link instance in
// internal/core.
//
// Every node is responsible for a rectangle of key × time space. A node
// delegates the high part of its key range to a KEY SIBLING (key split)
// and the old part of its time range to a HISTORY SIBLING (time split):
//
//	"A time split produces a new (historical) node with the original node
//	 directly containing the more recent time. ... A key split produces a
//	 new (current) node ... The new node will contain a copy of the
//	 history sibling pointer. It makes the new current node responsible
//	 for not merely its current key space, but for the entire history of
//	 this key space."
//
// Historical nodes never split again, so nodes are immortal and the CNS
// invariant (§5.2.1) governs traversals: one latch at a time, trusted
// saved state. Index terms carry child rectangles; index-node key splits
// may CLIP a wide historical term into both halves (§3.2.2), which is the
// multi-parent machinery of the paper arising naturally.
package tsb

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/enc"
	"repro/internal/keys"
	"repro/internal/storage"
	"repro/internal/wal"
)

// NoEnd is the open upper time bound of current nodes and live versions.
const NoEnd uint64 = math.MaxUint64

// Rect is a rectangle in key × time space: keys in [KeyLow, KeyHigh),
// times in [TimeLow, TimeHigh). A nil KeyLow is the minimum key; an
// Unbounded KeyHigh and a TimeHigh of NoEnd are the open sides.
type Rect struct {
	KeyLow   keys.Key
	KeyHigh  keys.Bound
	TimeLow  uint64
	TimeHigh uint64
}

// EntireRect covers all keys at all times.
func EntireRect() Rect {
	return Rect{KeyLow: nil, KeyHigh: keys.Inf, TimeLow: 0, TimeHigh: NoEnd}
}

// Contains reports whether the rectangle contains the point (k, t).
func (r Rect) Contains(k keys.Key, t uint64) bool {
	if r.KeyLow != nil && keys.Compare(k, r.KeyLow) < 0 {
		return false
	}
	if !r.KeyHigh.ContainsBelow(k) {
		return false
	}
	return t >= r.TimeLow && t < r.TimeHigh
}

// ContainsKey reports whether k is within the key range.
func (r Rect) ContainsKey(k keys.Key) bool {
	if r.KeyLow != nil && keys.Compare(k, r.KeyLow) < 0 {
		return false
	}
	return r.KeyHigh.ContainsBelow(k)
}

// SpansKey reports whether the rectangle's key range strictly contains
// the boundary k in its interior (the clipping condition).
func (r Rect) SpansKey(k keys.Key) bool {
	if r.KeyLow != nil && keys.Compare(k, r.KeyLow) <= 0 {
		return false
	}
	return r.KeyHigh.ContainsBelow(k) || r.KeyHigh.Unbounded
}

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	kl := "-inf"
	if r.KeyLow != nil {
		kl = fmt.Sprintf("%x", []byte(r.KeyLow))
	}
	kh := "+inf"
	if !r.KeyHigh.Unbounded {
		kh = fmt.Sprintf("%x", []byte(r.KeyHigh.Key))
	}
	th := "now"
	if r.TimeHigh != NoEnd {
		th = fmt.Sprintf("%d", r.TimeHigh)
	}
	return fmt.Sprintf("[%s,%s)x[%d,%s)", kl, kh, r.TimeLow, th)
}

// Entry is one slot of a TSB node.
//
//   - Data nodes (level 0): a record VERSION — Key, Start (the version's
//     creation time), Value, and Deleted (a tombstone version). A version
//     is alive from Start until the next version of the same key.
//   - Index nodes (level 1): an index term — ChildRect and Child.
//   - Index nodes (level >= 2): a key-only term — Key (low bound), Child.
type Entry struct {
	Key     keys.Key
	Start   uint64
	Value   []byte
	Deleted bool
	// Txn is the writing transaction's ID for versions written inside a
	// user transaction; 0 for versions written by atomic actions (which
	// commit under the page latch, so they are atomically visible).
	// Snapshot reads resolve it against the in-flight-at-capture set.
	Txn       wal.TxnID
	Child     storage.PageID
	ChildRect Rect
	// Clipped marks a term installed under clipping: its child may have
	// further parents (§3.3's multi-parent mark).
	Clipped bool
}

// Node is the decoded contents of one TSB page.
type Node struct {
	// Level is 0 for data nodes.
	Level int
	// Rect is the node's DIRECTLY CONTAINED rectangle: KeyHigh and
	// TimeLow move as the node delegates space; KeyLow and TimeHigh are
	// fixed at creation (TimeHigh becomes fixed when a current node is
	// time-split into history).
	Rect Rect
	// KeySib is the side pointer to the node responsible for
	// [KeyHigh, ...) × the node's full history.
	KeySib storage.PageID
	// HistSib is the side pointer to the historical node responsible for
	// the node's key range at times before TimeLow.
	HistSib storage.PageID
	// Retired marks a historical node whose versions were garbage
	// collected: the node's entire time range fell below the visibility
	// horizon. The page is never freed or reused (CNS: nodes are
	// immortal, stale traversals may still arrive), but its entries are
	// cleared; the rectangle and sibling pointers stay so the node
	// remains navigable. Under Options.Reclaim, fully-unreferenced
	// retired chain tails ARE eventually freed; see reclaim.go.
	Retired bool
	// HistShared marks this node's history edge as possibly multi-
	// referenced: a key split copies the history pointer into the new
	// current node ("the new node will contain a copy of the history
	// sibling pointer"), after which two nodes reach the same chain. The
	// mark rides the edge forward — a time split transfers it to the new
	// history node along with the old pointer — and page reclamation
	// (Options.Reclaim) refuses to free a tail whose incoming edge
	// carries it, since a second referencer may exist.
	HistShared bool
	// Entries are sorted by (Key, Start) in data nodes, by
	// (KeyLow=Key of rect, TimeLow) in level-1 nodes, and by Key in
	// higher index nodes.
	Entries []Entry
}

// IsData reports whether the node is a data node.
func (n *Node) IsData() bool { return n.Level == 0 }

// Current reports whether the node's time range is open-ended.
func (n *Node) Current() bool { return n.Rect.TimeHigh == NoEnd }

// searchVersion returns the index of the live-at-t version of key, if
// any: the entry with the largest Start <= t among entries of that key.
func (n *Node) searchVersion(k keys.Key, t uint64) (int, bool) {
	// First entry with Key >= k.
	i := sort.Search(len(n.Entries), func(i int) bool {
		c := keys.Compare(n.Entries[i].Key, k)
		return c > 0 || (c == 0 && n.Entries[i].Start > t)
	})
	// The candidate is the previous entry if it is a version of k.
	if i == 0 {
		return 0, false
	}
	if !keys.Equal(n.Entries[i-1].Key, k) {
		return i - 1, false
	}
	return i - 1, true
}

// versionPos returns the insertion position for (k, start) and whether an
// identical version exists.
func (n *Node) versionPos(k keys.Key, start uint64) (int, bool) {
	i := sort.Search(len(n.Entries), func(i int) bool {
		c := keys.Compare(n.Entries[i].Key, k)
		return c > 0 || (c == 0 && n.Entries[i].Start >= start)
	})
	if i < len(n.Entries) && keys.Equal(n.Entries[i].Key, k) && n.Entries[i].Start == start {
		return i, true
	}
	return i, false
}

// insertVersion places a version at its sorted position; it reports false
// if an identical (key, start) version already exists.
func (n *Node) insertVersion(e Entry) bool {
	i, dup := n.versionPos(e.Key, e.Start)
	if dup {
		return false
	}
	n.Entries = append(n.Entries, Entry{})
	copy(n.Entries[i+1:], n.Entries[i:])
	n.Entries[i] = e
	return true
}

// removeVersion deletes the exact (key, start) version.
func (n *Node) removeVersion(k keys.Key, start uint64) bool {
	i, ok := n.versionPos(k, start)
	if !ok {
		return false
	}
	n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
	return true
}

// termPos returns the insertion position for a level-1 term sorted by
// (KeyLow, TimeLow), and whether a term for the same child exists.
func (n *Node) termFor(child storage.PageID) (int, bool) {
	for i := range n.Entries {
		if n.Entries[i].Child == child {
			return i, true
		}
	}
	return 0, false
}

// insertTerm places a level-1 rect-term sorted by (KeyLow, TimeLow).
func (n *Node) insertTerm(e Entry) {
	i := sort.Search(len(n.Entries), func(i int) bool {
		c := keys.Compare(n.Entries[i].ChildRect.KeyLow, e.ChildRect.KeyLow)
		return c > 0 || (c == 0 && n.Entries[i].ChildRect.TimeLow >= e.ChildRect.TimeLow)
	})
	n.Entries = append(n.Entries, Entry{})
	copy(n.Entries[i+1:], n.Entries[i:])
	n.Entries[i] = e
}

// chooseTerm picks the level-1 term to descend to for the point (k, t).
// Because posting is lazy, the containing term may be absent; the chosen
// child then only APPROXIMATELY contains the point and the data-level
// side pointers (key sibling, history sibling) finish the job. Priority:
//
//  1. a key-covering term with the largest TimeLow <= t (exact or the
//     closest newer-than-t start, since the child's history chain reaches
//     older times);
//  2. a key-covering term with the smallest TimeLow (t predates every
//     posted term: descend to the oldest and chase history siblings);
//  3. the term with the largest KeyLow <= k, most current first (key
//     sibling traversal will move right).
//
// ok is false only when no entry has KeyLow <= k, which a well-formed
// node never exhibits for points in its directly contained space.
func (n *Node) chooseTerm(k keys.Key, t uint64) (Entry, bool) {
	// containing: rect contains (k,t) exactly — prefer the largest
	// KeyLow (closest key group), then the largest TimeLow (tightest
	// time). current: rect covers k with an open time end — always a
	// safe landing (its history chain reaches all older times),
	// preferred with the largest KeyLow (closest current node). belowKey:
	// last resort when no rect covers k (only lower key groups posted):
	// prefer open-ended time so the landing has key siblings to follow.
	//
	// Terms are sorted by (KeyLow, TimeLow) with nil KeyLow first
	// (insertTerm; Verify asserts it), so the candidates — every term
	// with KeyLow <= k — are exactly the prefix [0, hi), and iterating
	// it BACKWARD enumerates them in preference order: largest KeyLow
	// first, largest TimeLow within a key group. The first containing
	// term found is therefore the most specific one, which makes the
	// common current-time lookup a binary search plus a handful of
	// entries instead of a full scan of a node that soft overflow may
	// have grown far past its nominal capacity.
	hi := sort.Search(len(n.Entries), func(i int) bool {
		return keys.Compare(n.Entries[i].ChildRect.KeyLow, k) > 0
	})
	current, belowKey := -1, -1
	for j := hi - 1; j >= 0; j-- {
		r := n.Entries[j].ChildRect
		if belowKey == -1 ||
			(r.TimeHigh == NoEnd && n.Entries[belowKey].ChildRect.TimeHigh != NoEnd) {
			belowKey = j
		}
		if !r.ContainsKey(k) {
			continue
		}
		if r.Contains(k, t) {
			return n.Entries[j], true
		}
		if r.TimeHigh == NoEnd && current == -1 {
			current = j
		}
	}
	switch {
	case current >= 0:
		return n.Entries[current], true
	case belowKey >= 0:
		return n.Entries[belowKey], true
	}
	return Entry{}, false
}

// keyChildFor is the level->=2 lookup: largest entry Key <= k.
func (n *Node) keyChildFor(k keys.Key) (Entry, bool) {
	i := sort.Search(len(n.Entries), func(i int) bool {
		return keys.Compare(n.Entries[i].Key, k) > 0
	})
	if i == 0 {
		return Entry{}, false
	}
	return n.Entries[i-1], true
}

// insertKeyTerm places a key-only term (level >= 2).
func (n *Node) insertKeyTerm(e Entry) bool {
	i := sort.Search(len(n.Entries), func(i int) bool {
		return keys.Compare(n.Entries[i].Key, e.Key) >= 0
	})
	if i < len(n.Entries) && keys.Equal(n.Entries[i].Key, e.Key) {
		return false
	}
	n.Entries = append(n.Entries, Entry{})
	copy(n.Entries[i+1:], n.Entries[i:])
	n.Entries[i] = e
	return true
}

// clone returns a deep copy.
func (n *Node) clone() *Node {
	c := &Node{Level: n.Level, Rect: cloneRect(n.Rect), KeySib: n.KeySib, HistSib: n.HistSib, Retired: n.Retired, HistShared: n.HistShared}
	c.Entries = make([]Entry, len(n.Entries))
	for i, e := range n.Entries {
		c.Entries[i] = cloneEntry(e)
	}
	return c
}

func cloneRect(r Rect) Rect {
	r.KeyLow = keys.Clone(r.KeyLow)
	r.KeyHigh.Key = keys.Clone(r.KeyHigh.Key)
	return r
}

func cloneEntry(e Entry) Entry {
	out := e
	out.Key = keys.Clone(e.Key)
	if e.Value != nil {
		out.Value = append([]byte(nil), e.Value...)
	}
	out.ChildRect = cloneRect(e.ChildRect)
	return out
}

// --- serialization --------------------------------------------------------

func encodeRect(w *enc.Writer, r Rect) {
	w.Bytes32(r.KeyLow)
	w.Bool(r.KeyHigh.Unbounded)
	w.Bytes32(r.KeyHigh.Key)
	w.U64(r.TimeLow)
	w.U64(r.TimeHigh)
}

func decodeRect(r *enc.Reader) Rect {
	var out Rect
	out.KeyLow = r.Bytes32()
	out.KeyHigh.Unbounded = r.Bool()
	out.KeyHigh.Key = r.Bytes32()
	out.TimeLow = r.U64()
	out.TimeHigh = r.U64()
	return out
}

func encodeEntry(w *enc.Writer, e Entry) {
	w.Bytes32(e.Key)
	w.U64(e.Start)
	w.Bytes32(e.Value)
	w.Bool(e.Deleted)
	w.U64(uint64(e.Txn))
	w.U64(uint64(e.Child))
	encodeRect(w, e.ChildRect)
	w.Bool(e.Clipped)
}

func decodeEntry(r *enc.Reader) Entry {
	var e Entry
	e.Key = r.Bytes32()
	e.Start = r.U64()
	e.Value = r.Bytes32()
	e.Deleted = r.Bool()
	e.Txn = wal.TxnID(r.U64())
	e.Child = storage.PageID(r.U64())
	e.ChildRect = decodeRect(r)
	e.Clipped = r.Bool()
	return e
}

func encodeNode(w *enc.Writer, n *Node) {
	w.U16(uint16(n.Level))
	encodeRect(w, n.Rect)
	w.U64(uint64(n.KeySib))
	w.U64(uint64(n.HistSib))
	w.Bool(n.Retired)
	w.Bool(n.HistShared)
	w.U32(uint32(len(n.Entries)))
	for _, e := range n.Entries {
		encodeEntry(w, e)
	}
}

func decodeNode(r *enc.Reader) (*Node, error) {
	n := &Node{}
	n.Level = int(r.U16())
	n.Rect = decodeRect(r)
	n.KeySib = storage.PageID(r.U64())
	n.HistSib = storage.PageID(r.U64())
	n.Retired = r.Bool()
	n.HistShared = r.Bool()
	cnt := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	n.Entries = make([]Entry, 0, cnt)
	for i := 0; i < cnt; i++ {
		n.Entries = append(n.Entries, decodeEntry(r))
	}
	return n, r.Err()
}

func encNodeImage(n *Node) []byte {
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes()
}

// Codec is the storage.Codec for TSB pages.
type Codec struct{}

// EncodePage implements storage.Codec.
func (Codec) EncodePage(v any) ([]byte, error) {
	n, ok := v.(*Node)
	if !ok {
		return nil, fmt.Errorf("tsb: cannot encode page of type %T", v)
	}
	var w enc.Writer
	encodeNode(&w, n)
	return w.Bytes(), nil
}

// DecodePage implements storage.Codec.
func (Codec) DecodePage(b []byte) (any, error) {
	return decodeNode(enc.NewReader(b))
}

// SuccessorHint implements storage.SuccessorCodec: a data node's
// key-order successor is its key sibling, the pointer a key-ordered
// scan at any time slice follows next. Index nodes and retired pages
// return no hint.
func (Codec) SuccessorHint(data any) storage.PageID {
	if n, ok := data.(*Node); ok && n.IsData() && !n.Retired {
		return n.KeySib
	}
	return storage.NilPage
}
