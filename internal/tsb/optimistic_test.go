package tsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keys"
)

// TestTSBOptimisticHitRatio checks that a warm read-only workload serves
// interior navigation almost entirely from validated snapshots.
func TestTSBOptimisticHitRatio(t *testing.T) {
	opts := Options{DataCapacity: 16, IndexCapacity: 16, CompletionWorkers: 2}
	fx := newFixture(t, opts)
	const n = 1500
	for i := 0; i < n; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	fx.tree.DrainCompletions()
	fx.tree.Stats.OptimisticHits.Store(0)
	fx.tree.Stats.OptimisticRetries.Store(0)
	fx.tree.Stats.OptimisticFallbacks.Store(0)
	for i := 0; i < n; i++ {
		if _, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i))); err != nil || !ok {
			t.Fatalf("get %d: found=%v err=%v", i, ok, err)
		}
	}
	hits := fx.tree.Stats.OptimisticHits.Load()
	retries := fx.tree.Stats.OptimisticRetries.Load()
	if hits == 0 {
		t.Fatal("no optimistic hits on a read-only workload")
	}
	if ratio := float64(hits) / float64(hits+retries); ratio < 0.90 {
		t.Fatalf("optimistic hit ratio %.3f (hits=%d retries=%d), want >= 0.90", ratio, hits, retries)
	}
	if fb := fx.tree.Stats.OptimisticFallbacks.Load(); fb != 0 {
		t.Fatalf("%d pessimistic fallbacks on a read-only workload", fb)
	}
}

// TestTSBOptimisticSMOStorm runs optimistic readers against continuous
// time splits and key splits. Every stable key must stay reachable at
// every moment — a ghost miss means an unlatched traversal escaped the
// tree's key-space responsibility chain.
func TestTSBOptimisticSMOStorm(t *testing.T) {
	opts := Options{DataCapacity: 8, IndexCapacity: 8, CompletionWorkers: 2}
	fx := newFixture(t, opts)

	const stable = 300
	for i := 0; i < stable; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i*1000)), []byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatalf("put stable %d: %v", i, err)
		}
	}

	const writers = 4
	const searchers = 4
	const putsPerWriter = 2500
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, writers+searchers)

	// Writers: repeated puts over a small churn key range force time
	// splits (version pileup) and key splits, all around the stable keys.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer stop.Store(true)
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < putsPerWriter; i++ {
				k := keys.Uint64(uint64(w*1000+1) + uint64(rng.Intn(500)))
				if err := fx.tree.Put(nil, k, []byte(fmt.Sprintf("c%d", i))); err != nil {
					errs <- fmt.Errorf("writer %d put: %v", w, err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for !stop.Load() {
				i := rng.Intn(stable)
				v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i*1000)))
				if err != nil {
					errs <- fmt.Errorf("searcher %d: %v", s, err)
					return
				}
				if !ok {
					errs <- fmt.Errorf("ghost miss: stable key %d not found", i*1000)
					return
				}
				if string(v) != fmt.Sprintf("s%d", i) {
					errs <- fmt.Errorf("stable key %d: value %q", i*1000, v)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fx.tree.Stats.OptimisticHits.Load() == 0 {
		t.Fatal("storm exercised no optimistic visits")
	}
	fx.mustVerify(t)
	for i := 0; i < stable; i++ {
		if _, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i*1000))); err != nil || !ok {
			t.Fatalf("post-storm get %d: found=%v err=%v", i*1000, ok, err)
		}
	}
}
