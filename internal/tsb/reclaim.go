package tsb

// Page reclamation for retired history-chain tails (Options.Reclaim).
//
// Version GC (gc.go) retires nodes in place but never frees them: under
// pure CNS a stale traversal may still arrive at any saved pointer, so
// pages are immortal. That leaks one page per retired node forever —
// under sustained churn the store grows without bound even though the
// live data is constant. Reclamation closes the loop: a retired node that
// is the TAIL of its history chain, referenced by exactly one history
// edge and by no level-1 index term and by no pending completion task,
// is unlinked from its referencer and its page returned to the store's
// free-space map, in one atomic action.
//
// Safety rests on five conditions, each checked under latches:
//
//  1. TAIL: the victim's own history pointer is nil, so freeing it strands
//     nothing behind it. Chains shrink strictly from the tail; interior
//     nodes are freed only after becoming tails themselves.
//  2. SOLE EDGE: the referencer's edge is not marked HistShared. A key
//     split copies the history pointer into the new current node, making
//     the chain head reachable twice; the mark (set on both halves,
//     transferred to the history node by later time splits) rides every
//     edge that may have a twin. A marked edge is never cut — the twin
//     may still route readers through it — so shared chains leak their
//     tails, bounded by the number of key splits (counted, accepted).
//  3. NO TERMS: no level-1 term references the victim (retireNode removes
//     them, but never a node's LAST term; a survivor blocks the free).
//     Zero is absorbing: postTerm refuses to post terms for a Retired
//     child, and the parent-latch serialization of retireNode vs postTerm
//     means no in-flight posting can resurrect one after the removal pass
//     — so a clean check stays clean.
//  4. NO PENDING TASK: no completion task naming the victim is queued or
//     running (the completer keeps tasks pending until done). A running
//     postTerm latches task.child to re-test state; if the page were
//     freed and recycled under it, it would read the impostor.
//  5. QUIESCED EDGE: the cut holds the referencer X and the victim X to
//     commit. Traversals latch-couple history edges under Reclaim
//     (Tree.step, carryRepair), so a reader either passes the referencer
//     before the cut — and then holds the victim's latch, which the
//     reaper's X acquisition waits out — or arrives after and finds the
//     edge gone. The X hold on the referencer also freezes HistShared
//     (only a key split of the chain head can set it) and stops new
//     noteHistSibling tasks from being scheduled against the victim
//     (scheduling requires reading the referencer).
//
// Snapshot safety is inherited from GC's horizon argument: a victim was
// retired because its whole time range lies below the visibility horizon,
// and no live snapshot ever enters such a node (see gc.go). Readers below
// the horizon (explicit GetAsOf at ancient times) already read truncated
// history from retirement; reclamation only changes whether the empty
// node they would have visited still exists, and the coupled walk makes
// the visit-or-stop decision atomic with the cut.
//
// Crash consistency: the cut (KindCutHist, pre-image undo) and the free
// (the store's meta records) are one atomic action — redo replays both,
// an incomplete action undoes both, so a page is free if and only if it
// is unlinked. The deadPages set and the completion queue are both
// volatile and die together in a crash.

import (
	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/storage"
)

// reclaimChain frees the reclaimable tail(s) of the history chain hanging
// off the current node head, one per atomic action, until the tail no
// longer qualifies. Returns the number of pages freed. Serialized by gcMu
// with version GC: while the reaper runs, the only concurrent structure
// change on the chain is a split of its current head.
func (t *Tree) reclaimChain(head storage.PageID) (int, error) {
	if !t.opts.Reclaim {
		return 0, nil
	}
	t.gcMu.Lock()
	defer t.gcMu.Unlock()
	freed := 0
	for {
		n, err := t.reclaimTail(head)
		freed += n
		if n == 0 || err != nil {
			return freed, err
		}
	}
}

// reclaimTail frees the chain's tail if every precondition holds; it
// returns 1 if a page was freed. Three episodes, in latch-rank order:
// first a walk to find the tail and its referencer (S, one at a time —
// gcMu makes interior nodes immutable and nothing else frees pages),
// then the no-terms sweep over level-1 parents (S, released before any
// data latch so ranks stay ascending), then the cut action itself.
func (t *Tree) reclaimTail(head storage.PageID) (int, error) {
	prevPid, tailPid, tailRect, tailRetired, err := t.findTail(head)
	if err != nil || tailPid == storage.NilPage || tailPid == head {
		return 0, err
	}
	if !tailRetired {
		return 0, nil
	}

	// Episode 2: no level-1 term may reference the victim. Clipping can
	// spread terms over several parents, so sweep the key-sibling chain
	// across the victim's key range (the same walk retireNode removes
	// along). Terms for a retired node are monotone-decreasing, so a
	// clean sweep cannot be invalidated later.
	clean, err := t.noTermsFor(tailRect, tailPid)
	if err != nil {
		return 0, err
	}
	if !clean {
		t.Stats.GCTermSkips.Add(1)
		return 0, nil
	}

	// Episode 3: the cut. Latch the referencer U, re-verify the edge,
	// promote to X (§4.1.1: before any lower latch, so coupled readers
	// drain downward), then latch the victim X and free it.
	o := t.newOp(nil)
	defer o.done()
	prev, err := o.acquire(prevPid, latch.U, 0)
	if err != nil {
		return 0, err
	}
	if prev.n.HistSib != tailPid {
		// The chain changed shape since the walk (only the head can, via
		// a concurrent time split); retry on the next pass.
		o.release(&prev)
		return 0, nil
	}
	if prev.n.HistShared {
		o.release(&prev)
		t.Stats.GCSharedSkips.Add(1)
		return 0, nil
	}
	o.promote(&prev)
	// With the sole incoming edge X-held, no new task can be scheduled
	// against the victim (noteHistSibling reads the referencer under its
	// latch); a task already pending or running defers the free.
	if t.comp.refsChild(tailPid) {
		o.release(&prev)
		t.Stats.GCDeferredFrees.Add(1)
		return 0, nil
	}
	tail, err := o.acquire(tailPid, latch.X, 0)
	if err != nil {
		o.release(&prev)
		return 0, err
	}
	if !tail.n.Retired || tail.n.HistSib != storage.NilPage || len(tail.n.Entries) != 0 {
		o.release(&tail)
		o.release(&prev)
		return 0, nil
	}

	aa := t.tm.BeginAtomicAction()
	pre := prev.n.clone()
	lsn := aa.LogUpdate(t.store.Pool.StoreID, uint64(prev.pid()), KindCutHist, encCutHist(pre))
	applyCutHist(prev.n)
	prev.f.MarkDirty(lsn)
	if err := t.store.Free(aa, &o.tr, tailPid); err != nil {
		o.release(&tail)
		o.release(&prev)
		_ = aa.Abort()
		return 0, err
	}
	if err := t.store.Pool.Probe(storage.FPConsolidate); err != nil {
		o.release(&tail)
		o.release(&prev)
		_ = aa.Abort()
		return 0, err
	}
	cerr := aa.Commit()
	if cerr == nil {
		// Any task for the victim scheduled from here on would read the
		// committed cut and never name it; marking before the latches drop
		// closes the set for good.
		t.deadPages.Store(tailPid, struct{}{})
	}
	o.release(&tail)
	o.release(&prev)
	if cerr != nil {
		return 0, cerr
	}
	t.Stats.GCFreedPages.Add(1)
	return 1, nil
}

// findTail walks the chain from head (S, one node at a time; gcMu holds
// interior nodes immutable) and returns the last node, its referencer,
// and the facts the caller screens on. tailPid == head means no history.
func (t *Tree) findTail(head storage.PageID) (prevPid, tailPid storage.PageID, rect Rect, retired bool, err error) {
	o := t.newOp(nil)
	defer o.done()
	cur, aerr := o.acquire(head, latch.S, 0)
	if aerr != nil {
		return storage.NilPage, storage.NilPage, Rect{}, false, aerr
	}
	prevPid, tailPid = storage.NilPage, head
	for {
		rect = cloneRect(cur.n.Rect)
		retired = cur.n.Retired
		sib := cur.n.HistSib
		if sib == storage.NilPage {
			o.release(&cur)
			return prevPid, tailPid, rect, retired, nil
		}
		prevPid, tailPid = tailPid, sib
		next, serr := t.step(o, &cur, sib, latch.S, 0)
		if serr != nil {
			return storage.NilPage, storage.NilPage, Rect{}, false, serr
		}
		cur = next
	}
}

// noTermsFor reports whether NO level-1 index term references pid,
// sweeping the key-sibling chain across rect's key range with S latches.
func (t *Tree) noTermsFor(rect Rect, pid storage.PageID) (bool, error) {
	found := false
	err := t.retryLoop(func() error {
		found = false
		o := t.newOp(nil)
		defer o.done()
		node, err := t.descend(o, rect.KeyLow, NoEnd-1, 1, latch.S, false)
		if err != nil {
			return err
		}
		for {
			if _, ok := node.n.termFor(pid); ok {
				found = true
				break
			}
			if node.n.Rect.KeyHigh.Unbounded {
				break
			}
			if !rect.KeyHigh.Unbounded && keys.Compare(node.n.Rect.KeyHigh.Key, rect.KeyHigh.Key) >= 0 {
				break
			}
			sib := node.n.KeySib
			if sib == storage.NilPage {
				break
			}
			next, err := t.step(o, &node, sib, latch.S, 1)
			if err != nil {
				return err
			}
			node = next
		}
		o.release(&node)
		return nil
	})
	return !found, err
}
