package tsb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/keys"
	"repro/internal/storage"
)

// churn overwrites the same n keys for the given rounds, forcing time
// splits that build history chains.
func churn(t testing.TB, fx *fixture, n, from, to int) {
	t.Helper()
	for round := from; round < to; round++ {
		for i := 0; i < n; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
}

// TestReclaimFreesRetiredTails: with Reclaim on, a GC pass over churned
// chains returns retired tail pages to the store's free-space map, and
// later splits recycle them instead of growing the file.
func TestReclaimFreesRetiredTails(t *testing.T) {
	opts := smallOpts()
	opts.Reclaim = true
	fx := newFixture(t, opts)
	const n = 8
	churn(t, fx, n, 0, 60)
	fx.tree.DrainCompletions()
	if fx.tree.Stats.TimeSplits.Load() == 0 {
		t.Fatal("churn produced no time splits; nothing to reclaim")
	}

	if _, err := fx.tree.RunGC(); err != nil {
		t.Fatalf("gc: %v", err)
	}
	freed := fx.tree.Stats.GCFreedPages.Load()
	if freed == 0 {
		t.Fatal("reclaim freed no pages")
	}
	st, err := fx.tree.store.SpaceStats()
	if err != nil {
		t.Fatalf("space stats: %v", err)
	}
	if st.Freed != freed {
		t.Fatalf("store counted %d frees, tree counted %d", st.Freed, freed)
	}
	if st.FreeLen == 0 {
		t.Fatal("free list empty despite frees and no reallocation")
	}
	fx.mustVerify(t) // includes the free-vs-reachable cross-check
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r59" {
			t.Fatalf("current read after reclaim: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}

	// New splits must draw from the free list before extending the store.
	churn(t, fx, n, 60, 90)
	fx.tree.DrainCompletions()
	st2, err := fx.tree.store.SpaceStats()
	if err != nil {
		t.Fatalf("space stats: %v", err)
	}
	if st2.Recycled == 0 {
		t.Fatal("post-reclaim splits did not recycle freed pages")
	}
	fx.mustVerify(t)
}

// TestReclaimBoundsStoreGrowth: the same sustained churn, GC'd each
// cycle, allocates strictly fewer pages with Reclaim on than off — the
// point of the whole mechanism.
func TestReclaimBoundsStoreGrowth(t *testing.T) {
	alloc := func(reclaim bool) int64 {
		opts := smallOpts()
		opts.Reclaim = reclaim
		fx := newFixture(t, opts)
		const n = 8
		for cycle := 0; cycle < 5; cycle++ {
			churn(t, fx, n, cycle*40, (cycle+1)*40)
			fx.tree.DrainCompletions()
			if _, err := fx.tree.RunGC(); err != nil {
				t.Fatalf("gc (reclaim=%v): %v", reclaim, err)
			}
		}
		fx.mustVerify(t)
		pages, err := fx.tree.store.AllocatedPages()
		if err != nil {
			t.Fatalf("allocated pages: %v", err)
		}
		return pages
	}
	with, without := alloc(true), alloc(false)
	if with >= without {
		t.Fatalf("reclaim did not bound growth: %d pages with, %d without", with, without)
	}
}

// TestReclaimRespectsSnapshotPin is the PR 6 interaction regression: a
// long-running snapshot races GC+reclaim passes. The snapshot's pin holds
// the visibility horizon down, so no node the snapshot can read is
// retired — and therefore none is freed — while it lives; releasing it
// opens the floodgate.
func TestReclaimRespectsSnapshotPin(t *testing.T) {
	opts := smallOpts()
	opts.Reclaim = true
	fx := newFixture(t, opts)
	const n = 8
	churn(t, fx, n, 0, 1)
	snap := fx.e.BeginSnapshot() // pins version time at round 0
	churn(t, fx, n, 1, 60)
	fx.tree.DrainCompletions()

	// Hammer the pinned snapshot from a reader while reclaim passes run:
	// the reader must never see a wrong value, an error, or a miss.
	stop := make(chan struct{})
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(i % n)
			v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(k), nil)
			if err != nil || !ok || string(v) != "r0" {
				select {
				case errc <- fmt.Errorf("pinned read key %d: %q ok=%v err=%v", k, v, ok, err):
				default:
				}
				return
			}
		}
	}()
	for pass := 0; pass < 4; pass++ {
		if _, err := fx.tree.RunGC(); err != nil {
			t.Fatalf("gc under pin: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	pinned := fx.tree.Stats.GCFreedPages.Load()
	fx.mustVerify(t)

	snap.Release()
	if _, err := fx.tree.RunGC(); err != nil {
		t.Fatalf("gc after release: %v", err)
	}
	if got := fx.tree.Stats.GCFreedPages.Load(); got <= pinned {
		t.Fatalf("releasing the snapshot freed nothing: %d then %d", pinned, got)
	}
	fx.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r59" {
			t.Fatalf("current read after reclaim: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestReclaimCrashDuringCut: crash in the middle of a cut+free atomic
// action (the failpoint fires between the free and the commit). Restart
// must undo both halves together — the chain edge restored if and only
// if the page is allocated — so verification's free-vs-reachable
// cross-check holds and reclamation can resume.
func TestReclaimCrashDuringCut(t *testing.T) {
	inj := fault.New(0xC07)
	opts := smallOpts()
	opts.Reclaim = true
	e := engine.New(engine.Options{Injector: inj})
	b := Register(e.Reg)
	st := e.AddStore(testStoreID, Codec{})
	tree, err := Create(st, e.TM, e.Locks, b, "versions", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fx := &fixture{e: e, b: b, tree: tree}

	const n = 8
	churn(t, fx, n, 0, 60)
	fx.tree.DrainCompletions()
	if err := fx.e.Log.ForceAll(); err != nil {
		t.Fatal(err)
	}

	inj.Arm(storage.FPConsolidate, fault.Spec{Kind: fault.Transient, After: 3, Crash: true})
	if _, err := fx.tree.RunGC(); err == nil {
		t.Fatal("armed cut failpoint never fired")
	}
	if !inj.Crashed() {
		t.Fatal("crash latch not tripped")
	}

	fx.e.Opts.Injector = nil
	fx2 := fx.crashRestart(t)
	fx2.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx2.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r59" {
			t.Fatalf("key %d after crash recovery: %q ok=%v err=%v", i, v, ok, err)
		}
	}

	// Reclamation resumes where the crash interrupted it.
	if _, err := fx2.tree.RunGC(); err != nil {
		t.Fatalf("gc after recovery: %v", err)
	}
	if fx2.tree.Stats.GCFreedPages.Load() == 0 {
		t.Fatal("no pages freed after recovery")
	}
	fx2.mustVerify(t)
	churn(t, fx2, n, 60, 75)
	fx2.mustVerify(t)
}

// TestReclaimBackgroundGC: with GC and Reclaim both on, the completion
// machinery frees pages with no RunGC call, under concurrent writers.
func TestReclaimBackgroundGC(t *testing.T) {
	opts := smallOpts()
	opts.GC = true
	opts.Reclaim = true
	opts.SyncCompletion = false
	fx := newFixture(t, opts)
	const n = 8
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 60; round++ {
				for i := 0; i < n; i++ {
					k := uint64(w*n + i)
					if err := fx.tree.Put(nil, keys.Uint64(k), []byte(fmt.Sprintf("w%dr%d", w, round))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	fx.tree.DrainCompletions()
	if _, err := fx.tree.RunGC(); err != nil {
		t.Fatalf("final gc: %v", err)
	}
	if fx.tree.Stats.GCFreedPages.Load() == 0 {
		t.Fatal("background gc+reclaim freed nothing")
	}
	fx.mustVerify(t)
	for w := 0; w < 2; w++ {
		for i := 0; i < n; i++ {
			k := uint64(w*n + i)
			v, ok, err := fx.tree.Get(nil, keys.Uint64(k))
			if err != nil || !ok || string(v) != fmt.Sprintf("w%dr59", w) {
				t.Fatalf("key %d: %q ok=%v err=%v", k, v, ok, err)
			}
		}
	}
}
