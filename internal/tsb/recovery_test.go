package tsb

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/keys"
	"repro/internal/wal"
)

// TestTSBCrashMatrix crashes at every log boundary of a versioned
// workload and verifies the recovered TSB tree is well-formed with
// exactly the surviving committed versions visible.
func TestTSBCrashMatrix(t *testing.T) {
	fx := newFixture(t, Options{DataCapacity: 4, IndexCapacity: 4, SyncCompletion: true, CheckLatchOrder: true})
	const n = 30

	committedBy := make(map[int]wal.LSN)
	beganAt := make(map[int]wal.LSN)
	aborted := make(map[int]bool)
	for i := 0; i < n; i++ {
		beganAt[i] = fx.e.Log.EndLSN()
		tx := fx.e.TM.Begin()
		k := keys.Uint64(uint64(i % 10)) // repeated keys: versions stack up
		if err := fx.tree.Put(tx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if i%6 == 2 {
			_ = tx.Abort()
			aborted[i] = true
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			committedBy[i] = fx.e.Log.EndLSN()
		}
		if i%7 == 6 {
			fx.tree.DrainCompletions()
		}
	}
	fx.tree.DrainCompletions()
	fx.e.Log.ForceAll()

	boundaries := fx.e.Log.FullImage().Boundaries()
	// The matrix is O(boundaries * restart); sample every third boundary
	// plus the ends to keep the test brisk.
	for bi := 0; bi < len(boundaries); bi += 3 {
		cut := boundaries[bi]
		img := fx.e.Crash(&cut)
		e2 := engine.Restarted(img, fx.e.Opts)
		b2 := Register(e2.Reg)
		st2 := e2.AttachStore(testStoreID, Codec{}, img.Disks[testStoreID])
		pend, err := e2.AnalyzeAndRedo()
		if err != nil {
			t.Fatalf("cut %d: analyze: %v", cut, err)
		}
		tree2, err := Open(st2, e2.TM, e2.Locks, b2, "versions", fx.tree.opts)
		if err != nil {
			_ = pend.UndoLosers(e2.TM)
			continue // cut precedes creation
		}
		if err := e2.FinishRecovery(pend); err != nil {
			t.Fatalf("cut %d: undo: %v", cut, err)
		}
		if _, err := st2.Root("versions"); err != nil {
			tree2.Close()
			continue
		}
		if _, err := tree2.Verify(); err != nil {
			t.Fatalf("cut %d: ill-formed: %v", cut, err)
		}
		// Visibility: for each key, the current value must be the latest
		// DEFINITELY-committed put, or any later put whose commit record
		// may lie in the ambiguous window (its transaction began before
		// the cut but our recorded commit LSN — which trails the end
		// record — is past it).
		latestIdx := make(map[int]int)
		for i := 0; i < n; i++ {
			if aborted[i] {
				continue
			}
			if lsn, ok := committedBy[i]; ok && cut >= lsn {
				latestIdx[i%10] = i
			}
		}
		for ki, li := range latestIdx {
			v, ok, err := tree2.Get(nil, keys.Uint64(uint64(ki)))
			if err != nil || !ok {
				t.Fatalf("cut %d: key %d missing (%v,%v)", cut, ki, ok, err)
			}
			acceptable := map[string]bool{fmt.Sprintf("v%d", li): true}
			for j := li + 1; j < n; j++ {
				if j%10 == ki && !aborted[j] && beganAt[j] <= cut {
					acceptable[fmt.Sprintf("v%d", j)] = true
				}
			}
			if !acceptable[string(v)] {
				t.Fatalf("cut %d: key %d got %q, not in acceptable set (latest definite v%d)", cut, ki, v, li)
			}
		}
		tree2.Close()
	}
}
