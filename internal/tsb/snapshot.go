package tsb

// Lock-free snapshot reads over the TSB tree's transaction-time history.
//
// A snapshot (txn.Snapshot) carries a read timestamp and the set of user
// transactions in flight when it was captured. A snapshot read returns,
// per key, the newest version visible under the snapshot's predicate —
// Start <= ts, writer not in flight at capture (or the reader itself).
// No database locks are ever taken: version starts are immutable, writers
// in flight at capture are invisible wholesale, and writers that begin
// later produce versions with starts above ts. Page latches (and PR 4's
// optimistic interior descent) provide the physical consistency; the
// snapshot provides the transactional consistency.
//
// The reads rely on the time-split copy semantics ("carryover"): when a
// node is time-split at ts, the current node keeps, for every key with
// versions below ts, the newest such version. Inductively every node
// contains, for every key with any version older than the node's TimeLow,
// the newest such version. Hence:
//
//   - a key entirely absent from a node has no versions anywhere at or
//     below the node's time range — the read stops, not found;
//   - a key whose oldest entry starts at/after the node's TimeLow has no
//     older versions — the read stops, not found;
//   - otherwise the key's oldest entry starts below TimeLow; if not even
//     it is visible, strictly older versions can only live in the history
//     sibling, and the read follows the chain.

import (
	"errors"

	"repro/internal/keys"
	"repro/internal/latch"
	"repro/internal/storage"
	"repro/internal/txn"
)

// keyGroup returns the index range [lo, hi) of key's versions in n's
// entries. Hand-rolled binary search: the closure sort.Search would need
// escapes and this sits on the zero-allocation point-read path.
func keyGroup(n *Node, key keys.Key) (int, int) {
	lo, hi := 0, len(n.Entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys.Compare(n.Entries[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	g := lo
	for g < len(n.Entries) && keys.Equal(n.Entries[g].Key, key) {
		g++
	}
	return lo, g
}

// SnapshotGet returns the value of key visible to snap, appending it to
// buf (pass a reused buffer for an allocation-free read; the returned
// slice aliases buf's array when capacity suffices). It takes no locks:
// the descent rides the optimistic interior navigation, the leaf is
// S-latched, and visibility is decided by the snapshot alone. A reader
// inside a transaction that passed itself to BeginSnapshot sees its own
// writes.
func (t *Tree) SnapshotGet(snap *txn.Snapshot, key keys.Key, buf []byte) ([]byte, bool, error) {
	t.Stats.SnapshotGets.Add(1)
	for {
		out, found, err := t.snapshotGetOnce(snap, key, buf)
		if err == nil || !errors.Is(err, errRetry) {
			return out, found, err
		}
		t.Stats.Restarts.Add(1)
	}
}

func (t *Tree) snapshotGetOnce(snap *txn.Snapshot, key keys.Key, buf []byte) ([]byte, bool, error) {
	o := t.newOp(nil)
	defer o.done()
	// Descend to the CURRENT leaf for the key (not the leaf covering the
	// snapshot timestamp): the reader's own writes start above the
	// snapshot ts, and the current node carries the newest below-TimeLow
	// version of every key, so the visibility chase starts here and walks
	// backwards only as far as invisible versions force it.
	cur, err := t.descend(o, key, NoEnd-1, 0, latch.S, true)
	if err != nil {
		return buf, false, err
	}
	for {
		n := cur.n
		lo, hi := keyGroup(n, key)
		for i := hi - 1; i >= lo; i-- {
			e := &n.Entries[i]
			if snap.Visible(e.Txn, e.Start) {
				if e.Deleted {
					o.release(&cur)
					return buf, false, nil
				}
				out := append(buf[:0], e.Value...)
				o.release(&cur)
				return out, true, nil
			}
		}
		// No visible version here. By carryover, older versions exist only
		// if the group's oldest entry itself predates the node's time
		// range (and is invisible — an in-flight writer's carried write).
		if hi == lo || n.Entries[lo].Start >= n.Rect.TimeLow || n.HistSib == storage.NilPage {
			o.release(&cur)
			return buf, false, nil
		}
		t.Stats.SnapshotHistWalks.Add(1)
		next, err := t.step(o, &cur, n.HistSib, latch.S, 0)
		if err != nil {
			return buf, false, err
		}
		cur = next
	}
}

// SnapshotScan calls fn for every key in [lo, hi) with a visible,
// non-deleted version under snap, in key order; hi may be nil for an
// unbounded scan. Like ScanAsOf it batches per current leaf under one
// S latch; keys whose visible version lies behind the leaf's history
// chain (an in-flight writer's carried version masks them) are resolved
// by per-key chases after the latch is released, so the latch hold time
// stays proportional to the leaf size.
func (t *Tree) SnapshotScan(snap *txn.Snapshot, lo, hi keys.Key, fn func(k keys.Key, v []byte) bool) error {
	t.Stats.SnapshotScans.Add(1)
	cursor := keys.Clone(lo)
	for {
		type rec struct {
			k     keys.Key
			v     []byte
			chase bool
		}
		var batch []rec
		var next keys.Key
		done := false
		err := t.retryLoop(func() error {
			batch = batch[:0]
			next, done = nil, false
			o := t.newOp(nil)
			defer o.done()
			leaf, err := t.descend(o, cursor, NoEnd-1, 0, latch.S, true)
			if err != nil {
				return err
			}
			n := leaf.n
			ents := n.Entries
			for i := 0; i < len(ents); {
				k := ents[i].Key
				j := i + 1
				for j < len(ents) && keys.Equal(ents[j].Key, k) {
					j++
				}
				if keys.Compare(k, cursor) >= 0 && (hi == nil || keys.Compare(k, hi) < 0) {
					resolved := false
					for p := j - 1; p >= i; p-- {
						e := &ents[p]
						if snap.Visible(e.Txn, e.Start) {
							if !e.Deleted {
								batch = append(batch, rec{k: keys.Clone(k), v: append([]byte(nil), e.Value...)})
							}
							resolved = true
							break
						}
					}
					if !resolved && ents[i].Start < n.Rect.TimeLow && n.HistSib != storage.NilPage {
						batch = append(batch, rec{k: keys.Clone(k), chase: true})
					}
				}
				i = j
			}
			if n.Rect.KeyHigh.Unbounded {
				done = true
			} else {
				next = keys.Clone(n.Rect.KeyHigh.Key)
				if hi != nil && keys.Compare(next, hi) >= 0 {
					done = true
				}
			}
			if !done {
				// Read-ahead of the key sibling; see ScanAsOf.
				t.store.Pool.PrefetchAsync(n.KeySib)
			}
			o.release(&leaf)
			return nil
		})
		if err != nil {
			return err
		}
		for _, r := range batch {
			v := r.v
			if r.chase {
				var found bool
				v, found, err = t.SnapshotGet(snap, r.k, nil)
				if err != nil {
					return err
				}
				if !found {
					continue
				}
			}
			if !fn(r.k, v) {
				return nil
			}
		}
		if done {
			return nil
		}
		cursor = next
	}
}
