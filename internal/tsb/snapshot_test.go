package tsb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/keys"
)

// TestSnapshotBasicVisibility: committed data is visible, missing keys are
// not, tombstones read as not-found.
func TestSnapshotBasicVisibility(t *testing.T) {
	fx := newFixture(t, smallOpts())
	for i := 0; i < 30; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := fx.tree.Delete(nil, keys.Uint64(7)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	snap := fx.e.BeginSnapshot()
	defer snap.Release()
	for i := 0; i < 30; i++ {
		v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
		if err != nil {
			t.Fatalf("snapshot get %d: %v", i, err)
		}
		if i == 7 {
			if ok {
				t.Fatalf("key 7: tombstone visible as %q", v)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: got %q ok=%v", i, v, ok)
		}
	}
	if _, ok, _ := fx.tree.SnapshotGet(snap, keys.Uint64(999), nil); ok {
		t.Fatal("found missing key")
	}
}

// TestSnapshotIgnoresRacingCommitter: a writer in flight at capture stays
// invisible even after it commits — including when its commit lands at
// the very next clock tick after the capture.
func TestSnapshotIgnoresRacingCommitter(t *testing.T) {
	fx := newFixture(t, smallOpts())
	k := keys.Uint64(1)
	if err := fx.tree.Put(nil, k, []byte("old")); err != nil {
		t.Fatalf("put: %v", err)
	}

	tx := fx.e.TM.Begin()
	if err := fx.tree.Put(tx, k, []byte("new")); err != nil {
		t.Fatalf("txn put: %v", err)
	}

	snap := fx.e.BeginSnapshot() // tx is in flight here
	defer snap.Release()

	if err := tx.Commit(); err != nil { // commits one tick after capture
		t.Fatalf("commit: %v", err)
	}

	v, ok, err := fx.tree.SnapshotGet(snap, k, nil)
	if err != nil || !ok || string(v) != "old" {
		t.Fatalf("snapshot saw racing committer: %q ok=%v err=%v", v, ok, err)
	}
	// Re-read: repeatable.
	v, ok, _ = fx.tree.SnapshotGet(snap, k, nil)
	if !ok || string(v) != "old" {
		t.Fatalf("snapshot not repeatable: %q ok=%v", v, ok)
	}
	// A fresh snapshot sees the commit.
	snap2 := fx.e.BeginSnapshot()
	defer snap2.Release()
	v, ok, _ = fx.tree.SnapshotGet(snap2, k, nil)
	if !ok || string(v) != "new" {
		t.Fatalf("fresh snapshot missed commit: %q ok=%v", v, ok)
	}
}

// TestSnapshotOwnWrites: a transaction reading through its own snapshot
// sees its uncommitted writes; other snapshots do not.
func TestSnapshotOwnWrites(t *testing.T) {
	fx := newFixture(t, smallOpts())
	k := keys.Uint64(42)
	if err := fx.tree.Put(nil, k, []byte("base")); err != nil {
		t.Fatalf("put: %v", err)
	}
	tx := fx.e.TM.Begin()
	if err := fx.tree.Put(tx, k, []byte("mine")); err != nil {
		t.Fatalf("txn put: %v", err)
	}
	own := fx.e.TM.BeginSnapshot(tx)
	defer own.Release()
	other := fx.e.BeginSnapshot()
	defer other.Release()

	if v, ok, _ := fx.tree.SnapshotGet(own, k, nil); !ok || string(v) != "mine" {
		t.Fatalf("own write invisible: %q ok=%v", v, ok)
	}
	if v, ok, _ := fx.tree.SnapshotGet(other, k, nil); !ok || string(v) != "base" {
		t.Fatalf("other snapshot saw uncommitted write: %q ok=%v", v, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestSnapshotRepeatableUnderChurn: while writers overwrite every key and
// force splits, each snapshot's reads stay frozen at its capture.
func TestSnapshotRepeatableUnderChurn(t *testing.T) {
	fx := newFixture(t, smallOpts())
	const n = 16
	writeRound := func(round int) {
		tx := fx.e.TM.Begin()
		for i := 0; i < n; i++ {
			if err := fx.tree.Put(tx, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	writeRound(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 1; !stop.Load(); round++ {
			writeRound(round)
		}
	}()

	for iter := 0; iter < 40; iter++ {
		snap := fx.e.BeginSnapshot()
		var want string
		for i := 0; i < n; i++ {
			v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
			if err != nil || !ok {
				t.Fatalf("iter %d key %d: ok=%v err=%v", iter, i, ok, err)
			}
			if i == 0 {
				want = string(v)
			} else if string(v) != want {
				t.Fatalf("iter %d: torn snapshot: key %d = %q, key 0 = %q", iter, i, v, want)
			}
		}
		// Repeat one read; it must not have moved.
		if v, ok, _ := fx.tree.SnapshotGet(snap, keys.Uint64(0), nil); !ok || string(v) != want {
			t.Fatalf("iter %d: repeat read moved: %q vs %q", iter, v, want)
		}
		snap.Release()
	}
	stop.Store(true)
	wg.Wait()
	fx.mustVerify(t)
}

// TestSnapshotScanMatchesScanAsOf: on a quiesced tree a snapshot scan and
// an as-of scan at the snapshot's timestamp return identical contents.
func TestSnapshotScanMatchesScanAsOf(t *testing.T) {
	fx := newFixture(t, smallOpts())
	for round := 0; round < 6; round++ {
		for i := 0; i < 40; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i*3)), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	if err := fx.tree.Delete(nil, keys.Uint64(9)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	fx.tree.DrainCompletions()

	snap := fx.e.BeginSnapshot()
	defer snap.Release()
	collect := func(scan func(fn func(k keys.Key, v []byte) bool) error) map[string]string {
		out := make(map[string]string)
		if err := scan(func(k keys.Key, v []byte) bool {
			out[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		return out
	}
	bySnap := collect(func(fn func(keys.Key, []byte) bool) error {
		return fx.tree.SnapshotScan(snap, nil, nil, fn)
	})
	byAsOf := collect(func(fn func(keys.Key, []byte) bool) error {
		return fx.tree.ScanAsOf(snap.TS(), nil, nil, fn)
	})
	if len(bySnap) != len(byAsOf) {
		t.Fatalf("size mismatch: snapshot %d vs as-of %d", len(bySnap), len(byAsOf))
	}
	for k, v := range byAsOf {
		if bySnap[k] != v {
			t.Fatalf("key %x: snapshot %q vs as-of %q", k, bySnap[k], v)
		}
	}
}

// TestGCRetiresHistory: with nothing pinning the horizon, RunGC retires
// the history chains a version churn built, and current reads survive.
func TestGCRetiresHistory(t *testing.T) {
	fx := newFixture(t, smallOpts())
	const n = 8
	for round := 0; round < 60; round++ {
		for i := 0; i < n; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	fx.tree.DrainCompletions()
	if fx.tree.Stats.TimeSplits.Load() == 0 {
		t.Fatal("churn produced no time splits; GC has nothing to test")
	}
	retired, err := fx.tree.RunGC()
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if retired == 0 {
		t.Fatal("gc retired nothing despite an open horizon")
	}
	if got := fx.tree.Stats.GCRetiredNodes.Load(); got != int64(retired) {
		t.Fatalf("stat mismatch: %d vs %d", got, retired)
	}
	if fx.tree.Stats.GCReclaimedVersions.Load() == 0 {
		t.Fatal("retired nodes reclaimed no versions")
	}
	fx.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r59" {
			t.Fatalf("current read after gc: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}
	// A second pass over the already-collected tree retires at most the
	// stub nodes the first pass left linked, then goes quiet.
	again, err := fx.tree.RunGC()
	if err != nil {
		t.Fatalf("second gc: %v", err)
	}
	if again > retired {
		t.Fatalf("second pass retired more (%d) than first (%d)", again, retired)
	}
	fx.mustVerify(t)
}

// TestGCPinnedByLongSnapshot: a long-running snapshot pins every version
// it can see; GC must leave its reads intact, and releasing it opens the
// horizon.
func TestGCPinnedByLongSnapshot(t *testing.T) {
	fx := newFixture(t, smallOpts())
	const n = 8
	write := func(round int) {
		for i := 0; i < n; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	write(0)
	snap := fx.e.BeginSnapshot() // pins version time at round 0
	for round := 1; round < 60; round++ {
		write(round)
	}
	fx.tree.DrainCompletions()

	if _, err := fx.tree.RunGC(); err != nil {
		t.Fatalf("gc: %v", err)
	}
	fx.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
		if err != nil || !ok || string(v) != "r0" {
			t.Fatalf("pinned read lost: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}

	snap.Release()
	retired, err := fx.tree.RunGC()
	if err != nil {
		t.Fatalf("gc after release: %v", err)
	}
	if retired == 0 {
		t.Fatal("releasing the snapshot did not open the horizon")
	}
	fx.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r59" {
			t.Fatalf("current read after gc: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestBackgroundGC: with Options.GC on, committed time splits schedule
// chain sweeps through the completion machinery — no RunGC call needed.
func TestBackgroundGC(t *testing.T) {
	opts := smallOpts()
	opts.GC = true
	fx := newFixture(t, opts)
	const n = 8
	for round := 0; round < 80; round++ {
		for i := 0; i < n; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	fx.tree.DrainCompletions()
	if fx.tree.Stats.GCRetiredNodes.Load() == 0 {
		t.Fatal("background GC retired nothing")
	}
	fx.mustVerify(t)
	for i := 0; i < n; i++ {
		v, ok, err := fx.tree.Get(nil, keys.Uint64(uint64(i)))
		if err != nil || !ok || string(v) != "r79" {
			t.Fatalf("current read: key %d %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestClockSeedSurvivesCrash is the regression test for the Open clock
// bug: the tree used to reseed its version clock from the log's end LSN —
// a byte offset, orders of magnitude above the version ticks — so
// post-restart timestamps jumped and as-of semantics warped. The clock
// must come back at most where it was (commit-stamp high water) and new
// versions must land strictly above every pre-crash one.
func TestClockSeedSurvivesCrash(t *testing.T) {
	fx := newFixture(t, smallOpts())
	pre := fx.e.TM.Begin()
	for i := 0; i < 20; i++ {
		if err := fx.tree.Put(pre, keys.Uint64(uint64(i)), []byte("pre")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := pre.Commit(); err != nil { // forces the log; the stable prefix holds the stamps
		t.Fatalf("commit: %v", err)
	}
	preNow := fx.tree.Now()

	// Crash with a transaction mid-flight (its versions roll back; its
	// ticks must still never be reissued to a *committed* survivor).
	tx := fx.e.TM.Begin()
	_ = fx.tree.Put(tx, keys.Uint64(3), []byte("loser"))

	fx2 := fx.crashRestart(t)
	postNow := fx2.tree.Now()
	if postNow > preNow {
		t.Fatalf("clock inflated across restart: pre %d post %d", preNow, postNow)
	}
	if postNow == 0 {
		t.Fatal("clock not reseeded at all")
	}
	// New writes go strictly above the reseeded clock; reads as of the
	// restart instant must not see them.
	if err := fx2.tree.Put(nil, keys.Uint64(3), []byte("fresh")); err != nil {
		t.Fatalf("post-restart put: %v", err)
	}
	if v, ok, _ := fx2.tree.GetAsOf(nil, keys.Uint64(3), postNow); !ok || string(v) != "pre" {
		t.Fatalf("fresh write leaked below the reseeded clock: %q ok=%v", v, ok)
	}
	if v, ok, _ := fx2.tree.Get(nil, keys.Uint64(3)); !ok || string(v) != "fresh" {
		t.Fatalf("current read: %q ok=%v", v, ok)
	}
	fx2.mustVerify(t)
}

// TestSnapshotCrossesRestart: snapshots over recovered state read the
// committed prefix (the restart torture runs the full chaos version).
func TestSnapshotCrossesRestart(t *testing.T) {
	fx := newFixture(t, smallOpts())
	for round := 0; round < 5; round++ {
		tx := fx.e.TM.Begin()
		for i := 0; i < 10; i++ {
			if err := fx.tree.Put(tx, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	// Loser in flight at the crash.
	loser := fx.e.TM.Begin()
	_ = fx.tree.Put(loser, keys.Uint64(4), []byte("ghost"))

	fx2 := fx.crashRestart(t)
	snap := fx2.e.BeginSnapshot()
	defer snap.Release()
	for i := 0; i < 10; i++ {
		v, ok, err := fx2.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
		if err != nil || !ok || string(v) != "r4" {
			t.Fatalf("key %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestSnapshotGetZeroAllocs: the point-read path with a caller buffer
// must not allocate.
func TestSnapshotGetZeroAllocs(t *testing.T) {
	fx := newFixture(t, Options{DataCapacity: 64, IndexCapacity: 64, SyncCompletion: true})
	for i := 0; i < 200; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	fx.tree.DrainCompletions()
	snap := fx.e.BeginSnapshot()
	defer snap.Release()
	key := keys.Uint64(123)
	buf := make([]byte, 0, 64)
	// Warm up pools (opCtx, nav snapshots).
	for i := 0; i < 10; i++ {
		if _, ok, err := fx.tree.SnapshotGet(snap, key, buf); !ok || err != nil {
			t.Fatalf("warmup: ok=%v err=%v", ok, err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		_, ok, err := fx.tree.SnapshotGet(snap, key, buf)
		if !ok || err != nil {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
	})
	if avg != 0 {
		t.Fatalf("SnapshotGet allocates: %.2f allocs/op", avg)
	}
}

// TestAbortRepairsCarriedVersion: a time split carries the newest
// below-split version of each key into the new current node — including
// an uncommitted one. When that writer aborts, logical undo must
// re-carry the committed predecessor in the same latched mutation as the
// removal; otherwise the node is left claiming "no older versions exist"
// and a snapshot reader returns not-found for a key with committed
// history. Each transaction writes every key twice so the undo also has
// to converge when the repair candidate is itself doomed.
func TestAbortRepairsCarriedVersion(t *testing.T) {
	fx := newFixture(t, smallOpts())
	const nKeys = 6
	want := make([]string, nKeys)
	for round := 0; round < 12; round++ {
		for i := 0; i < nKeys; i++ {
			want[i] = fmt.Sprintf("c%d-%d", round, i)
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(want[i])); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		// With DataCapacity 8, the twelve uncommitted puts overflow the
		// leaves mid-transaction, so the time splits performed here carry
		// doomed versions.
		tx := fx.e.TM.Begin()
		for _, v := range []string{"doomedA", "doomedB"} {
			for i := 0; i < nKeys; i++ {
				if err := fx.tree.Put(tx, keys.Uint64(uint64(i)), []byte(v)); err != nil {
					t.Fatalf("txn put: %v", err)
				}
			}
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("abort: %v", err)
		}
		snap := fx.e.BeginSnapshot()
		for i := 0; i < nKeys; i++ {
			v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
			if err != nil {
				t.Fatalf("round %d key %d: %v", round, i, err)
			}
			if !ok || string(v) != want[i] {
				t.Fatalf("round %d key %d: got %q ok=%v, want %q (carried aborted version not re-carried)", round, i, v, ok, want[i])
			}
		}
		snap.Release()
	}
	fx.mustVerify(t)
}

// TestGCPinnedByMaskedWriter: a snapshot's GC pin must be min(ts, begin
// clocks of its in-flight set), not ts alone. Here a writer is in flight
// at capture (its versions are masked for this snapshot forever) and
// commits right after, leaving the active set. The snapshot still reads
// AROUND the masked versions to their committed predecessors — which sit
// in history nodes whose whole time range precedes the snapshot's read
// timestamp. A horizon of min(snapshot ts, active begins) would retire
// exactly those nodes.
func TestGCPinnedByMaskedWriter(t *testing.T) {
	fx := newFixture(t, smallOpts())
	const nKeys = 6
	for i := 0; i < nKeys; i++ {
		if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte("old")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Writer in flight over every key, twice: with DataCapacity 8 the
	// uncommitted puts overflow the leaves, so time splits BEFORE the
	// capture carry the uncommitted versions forward and leave "old" in
	// history nodes with TimeHigh below the snapshot's read timestamp.
	tx := fx.e.TM.Begin()
	for _, v := range []string{"maskA", "maskB"} {
		for i := 0; i < nKeys; i++ {
			if err := fx.tree.Put(tx, keys.Uint64(uint64(i)), []byte(v)); err != nil {
				t.Fatalf("txn put: %v", err)
			}
		}
	}
	snap := fx.e.BeginSnapshot() // tx in flight: "mask*" invisible to snap
	if err := tx.Commit(); err != nil { // writer leaves the active set
		t.Fatalf("commit: %v", err)
	}
	// Post-capture churn so GC has fresh splits to look at.
	for round := 0; round < 20; round++ {
		for i := 0; i < nKeys; i++ {
			if err := fx.tree.Put(nil, keys.Uint64(uint64(i)), []byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}
	fx.tree.DrainCompletions()
	if _, err := fx.tree.RunGC(); err != nil {
		t.Fatalf("gc: %v", err)
	}
	fx.mustVerify(t)
	for i := 0; i < nKeys; i++ {
		v, ok, err := fx.tree.SnapshotGet(snap, keys.Uint64(uint64(i)), nil)
		if err != nil || !ok || string(v) != "old" {
			t.Fatalf("key %d: got %q ok=%v err=%v, want \"old\" (GC reclaimed versions a masked-writer snapshot still needed)", i, v, ok, err)
		}
	}
	snap.Release()
	retired, err := fx.tree.RunGC()
	if err != nil {
		t.Fatalf("gc after release: %v", err)
	}
	if retired == 0 {
		t.Fatal("releasing the snapshot did not open the horizon")
	}
	fx.mustVerify(t)
}
